// Package cloudsync is a toolkit for studying the network-level
// efficiency of cloud storage services, reproducing "Towards
// Network-level Efficiency for Cloud Storage Services" (IMC 2014).
//
// It provides a deterministic simulation of the full sync stack — a
// watched sync folder, a client engine with every design choice the
// paper measures (sync granularity, compression, deduplication,
// batched data sync, sync deferment), a cloud back end, and a network
// path with packet-level traffic accounting — plus calibrated profiles
// of the six services the paper studies and the TUE metric itself.
//
// A minimal measurement:
//
//	sim := cloudsync.New(cloudsync.Dropbox, cloudsync.PC)
//	sim.CreateRandomFile("photo.jpg", 1<<20)
//	sim.Run()
//	fmt.Printf("traffic=%d TUE=%.2f\n", sim.Traffic(), sim.TUE(1<<20))
//
// The experiment harness behind every table and figure of the paper
// lives in internal/core and is driven by cmd/tuebench and the
// repository's benchmarks.
package cloudsync

import (
	"fmt"
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/core"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/hardware"
	"cloudsync/internal/netem"
	"cloudsync/internal/service"
)

// Service identifies one of the six studied cloud storage services.
type Service = service.Name

// The six services, in the paper's table order.
const (
	GoogleDrive = service.GoogleDrive
	OneDrive    = service.OneDrive
	Dropbox     = service.Dropbox
	Box         = service.Box
	UbuntuOne   = service.UbuntuOne
	SugarSync   = service.SugarSync
	// Reference is the pseudo-service that combines every provider
	// recommendation the paper makes (IDS + BDS + compression +
	// cross-user full-file dedup + adaptive sync defer). PC access only.
	Reference = service.Reference
)

// Services returns all six services.
func Services() []Service { return service.All() }

// AccessMethod is how the simulated user reaches the service.
type AccessMethod = client.AccessMethod

// The three access methods.
const (
	PC     = client.PC
	Web    = client.Web
	Mobile = client.Mobile
)

// TUE computes the paper's Traffic Usage Efficiency metric,
// Eq. (1): total sync traffic over data update size.
func TUE(syncTraffic, dataUpdateSize int64) float64 {
	return core.TUE(syncTraffic, dataUpdateSize)
}

// Option customizes a Simulation.
type Option func(*service.Options)

// FromBeijing places the client at the paper's remote vantage point
// (≈1.6 Mbps up, 200–480 ms RTT).
func FromBeijing() Option {
	return func(o *service.Options) { o.Link = netem.Beijing() }
}

// WithNetwork sets a custom symmetric bandwidth and round-trip time —
// the equivalent of the paper's controlled packet filters.
func WithNetwork(bitsPerSecond int64, rtt time.Duration) Option {
	return func(o *service.Options) { o.Link = netem.Custom(bitsPerSecond, rtt) }
}

// WithHardware selects the client machine by its Table 4 name
// ("M1"–"M4", "B1"–"B4").
func WithHardware(name string) Option {
	return func(o *service.Options) {
		for _, p := range hardware.All() {
			if p.Name == name {
				o.Hardware = p
				return
			}
		}
		panic(fmt.Sprintf("cloudsync: unknown hardware profile %q", name))
	}
}

// WithUser sets the account name (default "alice").
func WithUser(user string) Option {
	return func(o *service.Options) { o.User = user }
}

// WithAdaptiveSyncDefer replaces the service's deferment policy with
// the paper's proposed ASD mechanism (Eq. 2).
func WithAdaptiveSyncDefer(epsilon, tmax time.Duration) Option {
	return func(o *service.Options) { o.Defer = deferpolicy.NewASD(epsilon, tmax) }
}

// SharedCloud attaches this simulation to another simulation's cloud,
// clock, and capture — how cross-user scenarios are built.
func SharedCloud(other *Simulation) Option {
	return func(o *service.Options) {
		o.Cloud = other.setup.Cloud
		o.Clock = other.setup.Clock
		o.Capture = other.setup.Capture
	}
}

// SharedCloudSeparateCapture attaches to another simulation's cloud
// and clock but keeps a private traffic capture, so each device's link
// can be measured independently (multi-device scenarios).
func SharedCloudSeparateCapture(other *Simulation) Option {
	return func(o *service.Options) {
		o.Cloud = other.setup.Cloud
		o.Clock = other.setup.Clock
	}
}

// WithAutoSyncRemote mirrors other devices' commits of the same
// account into this simulation's folder — the notification fan-out of
// the paper's Fig. 1.
func WithAutoSyncRemote() Option {
	return func(o *service.Options) { o.AutoSyncRemote = true }
}

// Simulation is one client↔cloud simulation of a service.
type Simulation struct {
	setup *service.Setup
	seed  int64
}

// New builds a simulation of the given service and access method.
func New(svc Service, access AccessMethod, opts ...Option) *Simulation {
	var o service.Options
	for _, opt := range opts {
		opt(&o)
	}
	return &Simulation{setup: service.NewSetup(svc, access, o), seed: 1}
}

func (s *Simulation) nextSeed() int64 {
	s.seed++
	return s.seed
}

// CreateRandomFile puts an incompressible ("highly compressed") file
// of the given size into the sync folder.
func (s *Simulation) CreateRandomFile(name string, size int64) error {
	return s.setup.FS.Create(name, content.Random(size, s.nextSeed()))
}

// CreateTextFile puts a compressible text file (random English words)
// of the given size into the sync folder.
func (s *Simulation) CreateTextFile(name string, size int64) error {
	return s.setup.FS.Create(name, content.Text(size, s.nextSeed()))
}

// CreateFileFromBytes puts literal data into the sync folder.
func (s *Simulation) CreateFileFromBytes(name string, data []byte) error {
	return s.setup.FS.Create(name, content.FromBytes(data))
}

// Append grows a file by n bytes of content-consistent data.
func (s *Simulation) Append(name string, n int64) error {
	return s.setup.FS.Append(name, n)
}

// ModifyByte flips one byte of a file at the given offset.
func (s *Simulation) ModifyByte(name string, off int64) error {
	return s.setup.FS.ModifyByte(name, off)
}

// Delete removes a file from the sync folder.
func (s *Simulation) Delete(name string) error {
	return s.setup.FS.Delete(name)
}

// Download fetches a file's content from the cloud (as Experiment 4's
// DN phase does).
func (s *Simulation) Download(name string) error {
	return s.setup.Client.Download(name, nil)
}

// At schedules an action at an absolute virtual time — the building
// block for frequent-modification workloads.
func (s *Simulation) At(t time.Duration, fn func()) {
	s.setup.Clock.Post(t, fn)
}

// Now reports the current virtual time.
func (s *Simulation) Now() time.Duration { return s.setup.Clock.Now() }

// Run drives the simulation until every pending event (sync deferment
// timers, in-flight sessions) has drained.
func (s *Simulation) Run() { s.setup.Clock.Run() }

// Traffic reports total sync traffic in bytes (both directions) since
// the simulation started or was last Reset.
func (s *Simulation) Traffic() int64 { return s.setup.Capture.TotalBytes() }

// TrafficUp and TrafficDown split the traffic by direction
// (client→cloud and cloud→client).
func (s *Simulation) TrafficUp() int64 { return s.setup.Capture.UpBytes() }

// TrafficDown reports cloud→client traffic.
func (s *Simulation) TrafficDown() int64 { return s.setup.Capture.DownBytes() }

// OverheadBytes reports traffic that carried no file content or
// protocol payload (framing, handshakes, acks).
func (s *Simulation) OverheadBytes() int64 { return s.setup.Capture.OverheadBytes() }

// TUE reports the Traffic Usage Efficiency of the traffic so far,
// relative to the given data update size.
func (s *Simulation) TUE(dataUpdateSize int64) float64 {
	return TUE(s.Traffic(), dataUpdateSize)
}

// ResetTraffic zeroes the traffic counters (the connection state is
// untouched), so subsequent measurements cover a single operation.
func (s *Simulation) ResetTraffic() { s.setup.Capture.Reset() }

// Sessions reports how many sync sessions the client has dispatched.
func (s *Simulation) Sessions() int { return s.setup.Client.Stats().Sessions }

// DedupSkips reports how many uploads deduplication fully avoided.
func (s *Simulation) DedupSkips() int { return s.setup.Client.Stats().DedupSkips }

// CloudFileSize reports the size of a file as stored in the cloud, or
// an error if it is not there.
func (s *Simulation) CloudFileSize(name string) (int64, error) {
	e, ok := s.setup.Cloud.File(s.setup.Client.Config().User, name)
	if !ok {
		return 0, fmt.Errorf("cloudsync: %q not in cloud", name)
	}
	return e.Blob.Size(), nil
}

// Flow returns the client↔cloud flow identifier used in the capture.
func (s *Simulation) Flow() capture.Flow {
	flows := s.setup.Capture.Flows()
	if len(flows) == 0 {
		return capture.Flow{}
	}
	return flows[0]
}
