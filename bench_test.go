package cloudsync

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact from scratch and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem`
// doubles as the reproduction harness (cmd/tuebench prints the full
// tables).

import (
	"testing"
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/core"
	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

// benchTrace is shared by the trace-driven benches.
var benchTrace []trace.Record

func getBenchTrace() []trace.Record {
	if benchTrace == nil {
		benchTrace = trace.Generate(trace.GenConfig{Seed: 1, Scale: 0.05})
	}
	return benchTrace
}

// BenchmarkFig2TraceCDF regenerates Fig. 2: the original- and
// compressed-size CDFs of the trace.
func BenchmarkFig2TraceCDF(b *testing.B) {
	recs := getBenchTrace()
	var smallFrac float64
	for i := 0; i < b.N; i++ {
		_, orig, _ := core.Fig2(recs)
		smallFrac = orig[3] // CDF at 100 KB
	}
	b.ReportMetric(smallFrac*100, "%files<100KB")
}

// BenchmarkTable6FileCreation regenerates Table 6: sync traffic of a
// compressed file creation across services, access methods, and sizes.
func BenchmarkTable6FileCreation(b *testing.B) {
	var tue1B float64
	for i := 0; i < b.N; i++ {
		cells := core.Experiment1(core.QuickSizes)
		for _, c := range cells {
			if c.Service == service.Dropbox && c.Access == client.PC && c.Param == 1 {
				tue1B = c.TUE
			}
		}
	}
	b.ReportMetric(tue1B, "TUE(dropbox,1B)")
}

// BenchmarkFig3TUEvsSize regenerates Fig. 3: TUE vs created-file size
// for PC clients.
func BenchmarkFig3TUEvsSize(b *testing.B) {
	var tue1MB float64
	for i := 0; i < b.N; i++ {
		cells := core.Experiment1PC([]int64{100 << 10, 1 << 20, 10 << 20})
		for _, c := range cells {
			if c.Service == service.GoogleDrive && c.Param == 1<<20 {
				tue1MB = c.TUE
			}
		}
	}
	b.ReportMetric(tue1MB, "TUE(gdrive,1MB)")
}

// BenchmarkTable7BatchedCreation regenerates Table 7: 100 × 1 KB
// batched creations and BDS detection.
func BenchmarkTable7BatchedCreation(b *testing.B) {
	var dropboxTUE float64
	for i := 0; i < b.N; i++ {
		for _, r := range core.Experiment1Batch() {
			if r.Service == service.Dropbox && r.Access == client.PC {
				dropboxTUE = r.TUE
			}
		}
	}
	b.ReportMetric(dropboxTUE, "TUE(dropbox,batch)")
}

// BenchmarkExp2FileDeletion regenerates Experiment 2: deletion traffic.
func BenchmarkExp2FileDeletion(b *testing.B) {
	var maxTraffic int64
	for i := 0; i < b.N; i++ {
		maxTraffic = 0
		for _, c := range core.Experiment2([]int64{10 << 20}) {
			if c.Traffic > maxTraffic {
				maxTraffic = c.Traffic
			}
		}
	}
	b.ReportMetric(float64(maxTraffic), "max-delete-bytes")
}

// BenchmarkFig4ByteModification regenerates Fig. 4: one-byte
// modification traffic, exposing each service's sync granularity.
func BenchmarkFig4ByteModification(b *testing.B) {
	var dropboxBytes int64
	for i := 0; i < b.N; i++ {
		for _, c := range core.Experiment3([]int64{1 << 20}) {
			if c.Service == service.Dropbox && c.Access == client.PC {
				dropboxBytes = c.Traffic
			}
		}
	}
	b.ReportMetric(float64(dropboxBytes), "dropbox-IDS-bytes")
}

// BenchmarkTable8Compression regenerates Table 8: 10 MB text file
// upload and download traffic per service and access method.
func BenchmarkTable8Compression(b *testing.B) {
	var dropboxUpMB float64
	for i := 0; i < b.N; i++ {
		for _, c := range core.Experiment4(10 << 20) {
			if c.Service == service.Dropbox && c.Access == client.PC {
				dropboxUpMB = float64(c.UpBytes) / (1 << 20)
			}
		}
	}
	b.ReportMetric(dropboxUpMB, "dropbox-UP-MB")
}

// BenchmarkTable9DedupGranularity regenerates Table 9 via Algorithm 1
// and the duplicate-file probes.
func BenchmarkTable9DedupGranularity(b *testing.B) {
	var dropboxBlockMB float64
	for i := 0; i < b.N; i++ {
		for _, r := range core.Experiment5() {
			if r.Service == service.Dropbox && r.SameUser == "4 MB" {
				dropboxBlockMB = 4
			}
		}
	}
	b.ReportMetric(dropboxBlockMB, "dropbox-block-MB")
}

// BenchmarkFig5DedupRatio regenerates Fig. 5: cross-user dedup ratio
// vs block size on the trace.
func BenchmarkFig5DedupRatio(b *testing.B) {
	recs := getBenchTrace()
	var fullFile float64
	for i := 0; i < b.N; i++ {
		points := core.Fig5(recs)
		fullFile = points[0].Ratio
	}
	b.ReportMetric(fullFile, "fullfile-ratio")
}

// BenchmarkFig6FrequentMods regenerates Fig. 6: the "X KB / X sec"
// appending workload for all six services.
func BenchmarkFig6FrequentMods(b *testing.B) {
	var boxTUE float64
	for i := 0; i < b.N; i++ {
		cells := core.Experiment6(service.All(), []float64{2, 11})
		for _, c := range cells {
			if c.Service == service.Box && c.Param == 2 {
				boxTUE = c.TUE
			}
		}
	}
	b.ReportMetric(boxTUE, "TUE(box,X=2)")
}

// BenchmarkASDvsFixed regenerates the § 6.1 ASD evaluation.
func BenchmarkASDvsFixed(b *testing.B) {
	var asdTUE float64
	for i := 0; i < b.N; i++ {
		for _, c := range core.ASDEvaluation(service.GoogleDrive, []float64{8}) {
			if c.Policy == "asd" {
				asdTUE = c.TUE
			}
		}
	}
	b.ReportMetric(asdTUE, "TUE(asd,X=8)")
}

// BenchmarkFig7Locations regenerates Fig. 7: Minnesota vs Beijing.
func BenchmarkFig7Locations(b *testing.B) {
	var bjTUE float64
	for i := 0; i < b.N; i++ {
		cells := core.Experiment7([]service.Name{service.Dropbox}, []float64{1})
		for _, c := range cells {
			if c.Location == "BJ" {
				bjTUE = c.TUE
			}
		}
	}
	b.ReportMetric(bjTUE, "TUE(dropbox,BJ,X=1)")
}

// BenchmarkFig8Network regenerates Fig. 8(a)/(b): bandwidth and
// latency sweeps.
func BenchmarkFig8Network(b *testing.B) {
	var slowTUE float64
	for i := 0; i < b.N; i++ {
		bw := core.Fig8a([]int64{1_600_000, 20_000_000})
		slowTUE = bw[0].TUE
		core.Fig8b([]time.Duration{40 * time.Millisecond, time.Second})
	}
	b.ReportMetric(slowTUE, "TUE(1.6Mbps)")
}

// BenchmarkFig8cHardware regenerates Fig. 8(c): the hardware sweep.
func BenchmarkFig8cHardware(b *testing.B) {
	var m2TUE float64
	for i := 0; i < b.N; i++ {
		for _, c := range core.Fig8c([]float64{1}) {
			if c.Machine == "M2" {
				m2TUE = c.TUE
			}
		}
	}
	b.ReportMetric(m2TUE, "TUE(M2,X=1)")
}

// BenchmarkTraceFindings regenerates the § 4–5 trace statistics.
func BenchmarkTraceFindings(b *testing.B) {
	recs := getBenchTrace()
	var compressible float64
	for i := 0; i < b.N; i++ {
		s := trace.Analyze(recs)
		compressible = s.CompressibleFraction
	}
	b.ReportMetric(compressible*100, "%compressible")
}

// BenchmarkMidLayerAblation regenerates the § 4.3 mid-layer ablation.
func BenchmarkMidLayerAblation(b *testing.B) {
	var transformBytes int64
	for i := 0; i < b.N; i++ {
		for _, r := range core.MidLayerAblation(1<<20, 20) {
			if r.Layer == "get-put-delete" {
				transformBytes = r.InternalBytes()
			}
		}
	}
	b.ReportMetric(float64(transformBytes), "transform-bytes")
}

// BenchmarkCompressDedupAblation regenerates the § 5.2 compression ×
// deduplication ablation.
func BenchmarkCompressDedupAblation(b *testing.B) {
	recs := getBenchTrace()
	var decompress int64
	for i := 0; i < b.N; i++ {
		for _, r := range core.CompressDedupAblation(recs, 4<<20) {
			if r.Compression && r.DecompressBytes > 0 {
				decompress = r.DecompressBytes
			}
		}
	}
	b.ReportMetric(float64(decompress), "decompress-bytes")
}

// BenchmarkReferenceDesign evaluates the combined provider
// recommendations against the six services.
func BenchmarkReferenceDesign(b *testing.B) {
	var worstEdge float64
	for i := 0; i < b.N; i++ {
		cells := core.ReferenceComparison()
		worstEdge = 0
		for _, c := range cells {
			if edge := c.Worst / c.Reference; edge > worstEdge {
				worstEdge = edge
			}
		}
	}
	b.ReportMetric(worstEdge, "max-savings-x")
}

// BenchmarkTraceReplay replays the trace workload through the engine
// under the Dropbox profile.
func BenchmarkTraceReplay(b *testing.B) {
	recs := trace.Generate(trace.GenConfig{Seed: 1, Scale: 0.01})
	var tue float64
	for i := 0; i < b.N; i++ {
		tue = core.TraceReplay(service.Dropbox, recs, 100).TUE
	}
	b.ReportMetric(tue, "TUE(replay)")
}

// BenchmarkTraceReplayAll replays the trace under all six services plus
// the reference design — the seven independent simulations fan out
// across the experiment worker pool.
func BenchmarkTraceReplayAll(b *testing.B) {
	recs := trace.Generate(trace.GenConfig{Seed: 1, Scale: 0.01})
	var tue float64
	for i := 0; i < b.N; i++ {
		results := core.TraceReplayAll(recs, 100)
		tue = results[0].TUE
	}
	b.ReportMetric(tue, "TUE(first)")
}

// BenchmarkChunkingAblation regenerates the chunking-discipline
// ablation (fixed vs content-defined vs rsync under insertions).
func BenchmarkChunkingAblation(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		cells := core.ChunkingAblation(6, 1<<20, 512)
		advantage = float64(cells[0].Uploaded) / float64(cells[1].Uploaded)
	}
	b.ReportMetric(advantage, "cdc-advantage-x")
}

// BenchmarkDefermentInference regenerates the § 6.1 deferment probes.
func BenchmarkDefermentInference(b *testing.B) {
	var t time.Duration
	for i := 0; i < b.N; i++ {
		t, _ = core.InferDeferment(service.GoogleDrive)
	}
	b.ReportMetric(t.Seconds(), "gdrive-defer-s")
}
