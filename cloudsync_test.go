package cloudsync

import (
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	sim := New(Dropbox, PC)
	if err := sim.CreateRandomFile("photo.jpg", 1<<20); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if sim.Traffic() < 1<<20 {
		t.Fatalf("traffic = %d, want ≥ file size", sim.Traffic())
	}
	tue := sim.TUE(1 << 20)
	if tue < 1.0 || tue > 1.6 {
		t.Fatalf("TUE = %.2f, want ≈ 1.3", tue)
	}
	size, err := sim.CloudFileSize("photo.jpg")
	if err != nil || size != 1<<20 {
		t.Fatalf("cloud size = %d, %v", size, err)
	}
	if sim.Sessions() == 0 {
		t.Fatal("no sessions recorded")
	}
}

func TestServicesEnumeration(t *testing.T) {
	if len(Services()) != 6 {
		t.Fatalf("Services() = %d", len(Services()))
	}
}

func TestReferenceDesignViaFacade(t *testing.T) {
	sim := New(Reference, PC)
	// Appends past any fixed-deferment boundary still batch (ASD), and
	// compressible content shrinks on the wire.
	sim.CreateTextFile("doc.txt", 1<<20)
	sim.Run()
	if tue := sim.TUE(1 << 20); tue > 0.8 {
		t.Fatalf("reference text TUE = %.2f, want < 0.8 (compression)", tue)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reference design on Web access should panic")
		}
	}()
	New(Reference, Web)
}

func TestTUEWrapper(t *testing.T) {
	if got := TUE(200, 100); got != 2.0 {
		t.Fatalf("TUE = %v", got)
	}
}

func TestResetTraffic(t *testing.T) {
	sim := New(GoogleDrive, PC)
	sim.CreateRandomFile("a", 1000)
	sim.Run()
	sim.ResetTraffic()
	if sim.Traffic() != 0 {
		t.Fatal("ResetTraffic did not zero counters")
	}
	sim.ModifyByte("a", 10)
	sim.Run()
	if sim.Traffic() == 0 {
		t.Fatal("no traffic after modify")
	}
}

func TestOptionsCompose(t *testing.T) {
	sim := New(Box, PC,
		FromBeijing(),
		WithHardware("M2"),
		WithUser("bob"),
	)
	sim.CreateRandomFile("f", 1000)
	sim.Run()
	if sim.Traffic() == 0 {
		t.Fatal("simulation with options produced no traffic")
	}
}

func TestWithNetworkAndASD(t *testing.T) {
	sim := New(GoogleDrive, PC,
		WithNetwork(8_000_000, 100*time.Millisecond),
		WithAdaptiveSyncDefer(500*time.Millisecond, time.Minute),
	)
	sim.CreateRandomFile("doc", 0)
	sim.Run()
	sim.ResetTraffic()
	// Appends every 8 s — past Google Drive's native 4.2 s deferment —
	// batch under ASD.
	for i := 1; i <= 32; i++ {
		sim.At(time.Duration(i)*8*time.Second, func() { sim.Append("doc", 1024) })
	}
	sim.Run()
	if tue := sim.TUE(32 * 1024); tue > 4 {
		t.Fatalf("ASD TUE = %.1f, want ≈ 1", tue)
	}
}

func TestWithUnknownHardwarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown hardware did not panic")
		}
	}()
	New(Dropbox, PC, WithHardware("M9"))
}

func TestSharedCloudDedup(t *testing.T) {
	alice := New(UbuntuOne, PC, WithUser("alice"))
	data := []byte("identical content shared by two users; long enough to matter")
	if err := alice.CreateFileFromBytes("shared.txt", data); err != nil {
		t.Fatal(err)
	}
	alice.Run()

	bob := New(UbuntuOne, PC, WithUser("bob"), SharedCloud(alice))
	if err := bob.CreateFileFromBytes("mine.txt", append([]byte(nil), data...)); err != nil {
		t.Fatal(err)
	}
	alice.Run() // shared clock
	if bob.DedupSkips() != 1 {
		t.Fatalf("cross-user dedup skips = %d, want 1", bob.DedupSkips())
	}
}

func TestDownloadAndDirections(t *testing.T) {
	sim := New(Dropbox, PC)
	sim.CreateTextFile("doc.txt", 200_000)
	sim.Run()
	up := sim.TrafficUp()
	sim.ResetTraffic()
	if err := sim.Download("doc.txt"); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if sim.TrafficDown() == 0 || sim.TrafficDown() < sim.TrafficUp() {
		t.Fatalf("download should be downstream-heavy: up=%d down=%d", sim.TrafficUp(), sim.TrafficDown())
	}
	if up == 0 {
		t.Fatal("upload produced no upstream traffic")
	}
	if sim.OverheadBytes() <= 0 {
		t.Fatal("overhead accounting missing")
	}
}

func TestFlowExposed(t *testing.T) {
	sim := New(SugarSync, Mobile)
	sim.CreateRandomFile("f", 100)
	sim.Run()
	f := sim.Flow()
	if f.Src == "" && f.Dst == "" {
		t.Fatal("flow not recorded")
	}
}
