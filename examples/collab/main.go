// Collaborative editing: a document receives a small append every few
// seconds — the paper's "X KB / X sec" workload (§ 6). Compare how the
// traffic balloons under Google Drive's fixed 4.2 s sync deferment
// once edits arrive slower than the deferment, and how the paper's
// proposed adaptive sync defer (ASD) keeps TUE near 1.
package main

import (
	"fmt"
	"time"

	"cloudsync"
)

// editSession appends `1 KB × X` every X seconds until 512 KB total and
// returns the sync traffic's TUE.
func editSession(sim *cloudsync.Simulation, xSec float64) float64 {
	const total = 512 << 10
	if err := sim.CreateRandomFile("draft.doc", 0); err != nil {
		panic(err)
	}
	sim.Run()
	sim.ResetTraffic()
	step := int64(xSec * 1024)
	period := time.Duration(xSec * float64(time.Second))
	var scheduled int64
	for i := 1; scheduled < total; i++ {
		n := step
		if scheduled+n > total {
			n = total - scheduled
		}
		scheduled += n
		grow := n
		sim.At(sim.Now()+time.Duration(i)*period, func() {
			if err := sim.Append("draft.doc", grow); err != nil {
				panic(err)
			}
		})
	}
	sim.Run()
	return sim.TUE(total)
}

func main() {
	fmt.Println("Collaborative editing under Google Drive's sync deferment (T ≈ 4.2 s)")
	fmt.Println()
	fmt.Printf("%-28s %-14s %-14s\n", "edit cadence", "native defer", "adaptive (ASD)")
	for _, x := range []float64{2, 5, 8, 15} {
		native := editSession(cloudsync.New(cloudsync.GoogleDrive, cloudsync.PC), x)
		asd := editSession(cloudsync.New(cloudsync.GoogleDrive, cloudsync.PC,
			cloudsync.WithAdaptiveSyncDefer(500*time.Millisecond, 45*time.Second)), x)
		fmt.Printf("every %4.0f s                 TUE %-10.1f TUE %-10.1f\n", x, native, asd)
	}
	fmt.Println()
	fmt.Println("Below the deferment (X ≤ 4.2 s) the fixed timer batches everything;")
	fmt.Println("past it, every edit re-uploads the whole growing file. ASD tracks the")
	fmt.Println("observed cadence and keeps batching at any edit rate.")
}
