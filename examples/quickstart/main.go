// Quickstart: simulate a Dropbox PC client, sync a few files, and
// inspect the traffic and TUE of each operation.
package main

import (
	"fmt"

	"cloudsync"
)

func mustNoErr(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	sim := cloudsync.New(cloudsync.Dropbox, cloudsync.PC)

	// 1. Create a 1 MB photo (incompressible content).
	mustNoErr(sim.CreateRandomFile("photos/beach.jpg", 1<<20))
	sim.Run()
	fmt.Printf("create 1MB photo: traffic %8d B  TUE %5.2f\n",
		sim.Traffic(), sim.TUE(1<<20))

	// 2. Modify one byte in the middle — incremental sync moves a
	// single chunk, not the file.
	sim.ResetTraffic()
	mustNoErr(sim.ModifyByte("photos/beach.jpg", 512<<10))
	sim.Run()
	fmt.Printf("modify 1 byte:    traffic %8d B  TUE %5.0f (vs %d for full-file sync)\n",
		sim.Traffic(), sim.TUE(1), 1<<20)

	// 3. A compressible document uploads smaller than its size.
	sim.ResetTraffic()
	mustNoErr(sim.CreateTextFile("docs/thesis.txt", 512<<10))
	sim.Run()
	fmt.Printf("create 512KB doc: traffic %8d B  TUE %5.2f (compression)\n",
		sim.Traffic(), sim.TUE(512<<10))

	// 4. An identical copy is deduplicated away.
	sim.ResetTraffic()
	mustNoErr(sim.CreateFileFromBytes("a.bin", make([]byte, 256<<10)))
	sim.Run()
	sim.ResetTraffic()
	mustNoErr(sim.CreateFileFromBytes("b.bin", make([]byte, 256<<10)))
	sim.Run()
	fmt.Printf("duplicate 256KB:  traffic %8d B  (dedup skips: %d)\n",
		sim.Traffic(), sim.DedupSkips())

	// 5. Deleting even a large file is nearly free (fake deletion).
	sim.ResetTraffic()
	mustNoErr(sim.Delete("photos/beach.jpg"))
	sim.Run()
	fmt.Printf("delete 1MB photo: traffic %8d B\n", sim.Traffic())
}
