// Multi-device sync: one user, a desktop and a laptop, both attached
// to the same cloud (Fig. 1's fan-out). A change committed on one
// device is pushed to and downloaded by the other; the example prints
// what each device's link carried.
package main

import (
	"fmt"
	"time"

	"cloudsync"
)

func main() {
	desktop := cloudsync.New(cloudsync.Dropbox, cloudsync.PC,
		cloudsync.WithUser("nina"), cloudsync.WithHardware("M1"),
		cloudsync.WithAutoSyncRemote())
	laptop := cloudsync.New(cloudsync.Dropbox, cloudsync.PC,
		cloudsync.WithUser("nina"), cloudsync.WithHardware("M3"),
		cloudsync.SharedCloudSeparateCapture(desktop),
		cloudsync.WithAutoSyncRemote())

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	// Nina saves a 2 MB presentation on the desktop.
	must(desktop.CreateRandomFile("talk/slides.key", 2<<20))
	desktop.Run()
	report("after desktop saves 2 MB of slides", desktop, laptop)

	// She keeps editing on the laptop (which now has the file).
	laptop.ResetTraffic()
	desktop.ResetTraffic()
	must(laptop.ModifyByte("talk/slides.key", 1<<20))
	laptop.Run()
	report("after a one-byte edit on the laptop", desktop, laptop)

	// Ten quick autosaves on the laptop, two seconds apart.
	laptop.ResetTraffic()
	desktop.ResetTraffic()
	for i := 1; i <= 10; i++ {
		must := must
		laptop.At(laptop.Now()+time.Duration(i)*2*time.Second, func() {
			must(laptop.Append("talk/slides.key", 4<<10))
		})
	}
	laptop.Run()
	report("after ten 4 KB autosaves on the laptop", desktop, laptop)

	if size, err := desktop.CloudFileSize("talk/slides.key"); err == nil {
		fmt.Printf("\ncloud now holds %.2f MB; both devices are in sync\n",
			float64(size)/(1<<20))
	}
	fmt.Println()
	fmt.Println("Note the desktop's download column in the last step: change")
	fmt.Println("propagation re-delivers the whole file per commit, so ten 40 KB of")
	fmt.Println("autosaved edits cost the idle device ~26 MB — the paper's TUE story")
	fmt.Println("replayed on the download side.")
}

func report(when string, desktop, laptop *cloudsync.Simulation) {
	fmt.Printf("%s:\n", when)
	fmt.Printf("  desktop link: %8d B up, %8d B down\n",
		desktop.TrafficUp(), desktop.TrafficDown())
	fmt.Printf("  laptop link:  %8d B up, %8d B down\n",
		laptop.TrafficUp(), laptop.TrafficDown())
}
