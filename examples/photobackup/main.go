// Photo backup: importing a folder of many small files at once — the
// workload behind Table 7. Services with batched data sync (BDS) move
// roughly the payload; services without it pay the per-file overhead
// hundreds of times.
package main

import (
	"fmt"

	"cloudsync"
)

func importFolder(svc cloudsync.Service, files int, fileSize int64) (traffic int64, tue float64) {
	sim := cloudsync.New(svc, cloudsync.PC)
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("camera/IMG_%04d.jpg", i)
		if err := sim.CreateRandomFile(name, fileSize); err != nil {
			panic(err)
		}
	}
	sim.Run()
	return sim.Traffic(), sim.TUE(int64(files) * fileSize)
}

func main() {
	const files = 200
	const fileSize = 4 << 10 // small thumbnails / sidecar files

	fmt.Printf("Importing %d × %d KB files into each service (PC client)\n\n",
		files, fileSize>>10)
	fmt.Printf("%-14s %12s %8s\n", "Service", "traffic", "TUE")
	for _, svc := range cloudsync.Services() {
		traffic, tue := importFolder(svc, files, fileSize)
		marker := ""
		if tue < 3 {
			marker = "  ← batched data sync"
		}
		fmt.Printf("%-14s %10.2f MB %8.1f%s\n",
			svc, float64(traffic)/(1<<20), tue, marker)
	}
	fmt.Println()
	fmt.Printf("payload is only %.2f MB — everything above that is overhead\n",
		float64(files*fileSize)/(1<<20))
}
