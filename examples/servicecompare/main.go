// Service comparison: run one realistic mixed workload — documents,
// photos, edits, a duplicate, a deletion — against all six services and
// both vantage points, and rank them by traffic efficiency. This is
// the "help users pick appropriate services" use the paper closes on.
package main

import (
	"fmt"
	"sort"

	"cloudsync"
)

// workload applies a realistic session and returns total traffic and
// the data update size.
func workload(sim *cloudsync.Simulation) (traffic, updateSize int64) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	// A 2 MB compressible report, edited twice.
	must(sim.CreateTextFile("report.docx", 2<<20))
	sim.Run()
	must(sim.ModifyByte("report.docx", 1<<20))
	sim.Run()
	must(sim.ModifyByte("report.docx", 100))
	sim.Run()
	// A 5 MB photo (incompressible).
	must(sim.CreateRandomFile("IMG_001.jpg", 5<<20))
	sim.Run()
	// The same photo copied into another folder (dedup opportunity).
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 7)
	}
	must(sim.CreateFileFromBytes("backup/copy1.bin", data))
	sim.Run()
	must(sim.CreateFileFromBytes("backup/copy2.bin", append([]byte(nil), data...)))
	sim.Run()
	// Twenty small notes in a burst.
	for i := 0; i < 20; i++ {
		must(sim.CreateTextFile(fmt.Sprintf("notes/n%02d.md", i), 2<<10))
	}
	sim.Run()
	// Clean up a scratch file.
	must(sim.CreateRandomFile("scratch.tmp", 1<<20))
	sim.Run()
	must(sim.Delete("scratch.tmp"))
	sim.Run()

	update := int64(2<<20) + 2 + 5<<20 + 2<<20 + 20*2<<10 + 1<<20
	return sim.Traffic(), update
}

func main() {
	type row struct {
		name string
		tue  float64
		mb   float64
	}
	for _, loc := range []struct {
		label string
		opts  []cloudsync.Option
	}{
		{"Minnesota (close to the cloud)", nil},
		{"Beijing (remote)", []cloudsync.Option{cloudsync.FromBeijing()}},
	} {
		var rows []row
		for _, svc := range cloudsync.Services() {
			sim := cloudsync.New(svc, cloudsync.PC, loc.opts...)
			traffic, update := workload(sim)
			rows = append(rows, row{svc.String(), cloudsync.TUE(traffic, update),
				float64(traffic) / (1 << 20)})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].tue < rows[j].tue })
		fmt.Printf("Mixed workload from %s\n", loc.label)
		fmt.Printf("  %-14s %10s %8s\n", "service", "traffic", "TUE")
		for i, r := range rows {
			fmt.Printf("  %-14s %8.2f MB %8.2f", r.name, r.mb, r.tue)
			if i == 0 {
				fmt.Print("   ← most traffic-efficient")
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
