module cloudsync

go 1.24
