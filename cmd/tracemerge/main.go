// Command tracemerge joins per-process span dumps (written by synccli
// -trace-dump, syncd -trace-dump, or obs.WriteDump) into one Chrome
// trace_event timeline: spans a server recorded under a propagated
// client context re-attach as children of the originating client
// operation, and the dumps' wall-clock epochs align the two timelines.
//
// Usage:
//
//	tracemerge -o merged.json client.jsonl server.jsonl
//
// Load the output in chrome://tracing or ui.perfetto.dev; each joined
// operation renders as one track with the client op on top and the
// server's work nested inside it. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudsync/internal/obs"
)

func main() {
	out := flag.String("o", "merged.json", "output Chrome trace_event file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracemerge [-o merged.json] dump.jsonl [dump.jsonl ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	dumps := make([]obs.TraceDump, 0, flag.NArg())
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		d, err := obs.ReadDump(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		dumps = append(dumps, d)
	}

	merged := obs.Merge(dumps...)
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := obs.WriteMergedChromeTrace(f, merged); err == nil {
		err = f.Close()
	}
	if err != nil {
		fail(fmt.Errorf("writing %s: %w", *out, err))
	}
	fmt.Printf("tracemerge: %d spans from %d dumps -> %s (open in chrome://tracing or Perfetto)\n",
		len(merged), len(dumps), *out)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracemerge: %v\n", err)
	os.Exit(1)
}
