// Command syncload is an open-loop load generator for the live sync
// service: it drives many concurrent trace-derived accounts against a
// syncd server over real TCP at a fixed offered arrival rate, and
// reports sustained throughput, latency quantiles (p50/p99/p999,
// measured from each operation's *scheduled* arrival, so queueing
// delay under overload is visible), and peak RSS.
//
// Open loop means the arrival schedule never slows down to match the
// server: operations arrive at -rate regardless of completions, each
// assigned round-robin to an account whose bounded queue absorbs
// bursts — a full queue drops the arrival (counted, not retried),
// exactly how a saturated service sheds load. This is the methodology
// that exposes the lockstep protocol's weakness: a closed loop would
// let one-round-trip-per-file pacing hide behind slower offered load.
//
// Each account uploads batches of small files with sizes drawn from
// the paper-calibrated trace (internal/trace), in one of three modes:
//
//	lockstep:  one Upload per file, each stalling on its replies
//	pipelined: UploadPipelined, a window of exchanges in flight
//	bundle:    UploadBundle, the whole batch in one framed exchange
//
// Without -addr it hosts the server in-process on a loopback TCP
// listener; -check then also verifies the traffic-attribution ledgers
// balance exactly against the metered wire bytes on both sides and
// exits non-zero on imbalance or any failed operation. -state-dir runs
// that in-process server durably (a per-mode subdirectory each), so
// the WAL group-commit phase shows up in the decomposition below.
//
// Each mode also prints a per-phase latency decomposition — client
// send-queue wait, wire round-trip, server inbound-queue wait, request
// handling, apply, and WAL fsync — from the same histograms syncd
// serves on /metrics, and folds the phase quantiles into the report's
// extras. With -trace-out, every account runs a tracer with cross-
// process context propagation, the -trace-top slowest operations per
// mode are kept (client spans per operation; the in-process server's
// spans are filtered to the kept operations), and the merged timeline
// is written as one Chrome trace_event file. The server-side tracer
// retains its spans for the whole mode, so -trace-out trades memory
// for visibility; the per-operation client tracers are reset after
// every operation.
//
// Output is a benchjson raw report (one entry per mode) suitable for
// `benchjson -compare` gating: make bench-load writes BENCH_load.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/obs"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/syncnet"
	"cloudsync/internal/trace"
)

func main() {
	os.Exit(run())
}

type config struct {
	addr        string
	accounts    int
	rate        float64
	duration    time.Duration
	modes       []string
	batch       int
	window      int
	maxInflight int
	maxSize     int64
	seed        int64
	jsonPath    string
	check       bool
	quiet       bool
	stateDir    string
	traceOut    string
	traceTop    int
}

func run() int {
	var cfg config
	var modes string
	flag.StringVar(&cfg.addr, "addr", "", "syncd address to load (empty = host an in-process server on loopback)")
	flag.IntVar(&cfg.accounts, "accounts", 1000, "concurrent accounts, one connection each")
	flag.Float64Var(&cfg.rate, "rate", 2000, "offered arrival rate in operations/second (one operation = one batch)")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "arrival window per mode")
	flag.StringVar(&modes, "modes", "lockstep,pipelined,bundle", "comma-separated modes to run: lockstep, pipelined, bundle")
	flag.IntVar(&cfg.batch, "batch", 8, "files per operation")
	flag.IntVar(&cfg.window, "window", 16, "pipelined mode: requests in flight per connection")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "in-process server read-ahead per connection (0 = default)")
	flag.Int64Var(&cfg.maxSize, "max-size", 32<<10, "cap on trace-derived file sizes in bytes")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for trace sizes and file content")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the benchjson raw report here (empty = stdout)")
	flag.BoolVar(&cfg.check, "check", false, "verify ledger exactness (in-process server only) and exit non-zero on imbalance or failed operations")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress per-mode progress lines and phase tables")
	flag.StringVar(&cfg.stateDir, "state-dir", "", "run the in-process server durably, one subdirectory per mode (empty = in-RAM; needs in-process server)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write a merged client+server Chrome trace of the slowest operations here")
	flag.IntVar(&cfg.traceTop, "trace-top", 8, "operations to keep per mode for -trace-out, slowest first")
	flag.Parse()

	for _, m := range strings.Split(modes, ",") {
		m = strings.TrimSpace(m)
		switch m {
		case "lockstep", "pipelined", "bundle":
			cfg.modes = append(cfg.modes, m)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "syncload: unknown mode %q\n", m)
			return 2
		}
	}
	if len(cfg.modes) == 0 || cfg.accounts < 1 || cfg.batch < 1 || cfg.rate <= 0 {
		fmt.Fprintln(os.Stderr, "syncload: need at least one mode, one account, one file per batch, and a positive rate")
		return 2
	}
	if cfg.check && cfg.addr != "" {
		fmt.Fprintln(os.Stderr, "syncload: -check needs the in-process server (omit -addr)")
		return 2
	}
	if cfg.stateDir != "" && cfg.addr != "" {
		fmt.Fprintln(os.Stderr, "syncload: -state-dir configures the in-process server (omit -addr)")
		return 2
	}
	if cfg.traceOut != "" && cfg.traceTop < 1 {
		fmt.Fprintln(os.Stderr, "syncload: -trace-top must be at least 1")
		return 2
	}

	sizes := traceSizes(cfg.seed, cfg.maxSize)
	rep := rawReport{Note: fmt.Sprintf(
		"syncload: %d accounts, %.0f ops/s offered for %v, %d files/op, trace-derived sizes ≤ %d B (seed %d); latency measured from scheduled arrival",
		cfg.accounts, cfg.rate, cfg.duration, cfg.batch, cfg.maxSize, cfg.seed)}

	failed := false
	var traceDumps []obs.TraceDump
	var traceKept int
	for _, mode := range cfg.modes {
		res, col, err := runMode(cfg, mode, sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syncload: mode %s: %v\n", mode, err)
			return 1
		}
		if !cfg.quiet {
			fmt.Fprintf(os.Stderr, "syncload: %-9s %8.0f files/s  p50 %6dµs  p99 %6dµs  p999 %6dµs  ops %d  dropped %d  failed %d\n",
				mode, res.Extra["reqs-per-sec"], int64(res.Extra["p50-us"]), int64(res.Extra["p99-us"]),
				int64(res.Extra["p999-us"]), int64(res.Extra["ops"]), int64(res.Extra["dropped-ops"]), int64(res.Extra["failed-ops"]))
		}
		if col != nil {
			traceDumps = append(traceDumps, col.dumps...)
			traceKept += col.kept
		}
		if cfg.check && res.Extra["failed-ops"] > 0 {
			fmt.Fprintf(os.Stderr, "syncload: mode %s: %d failed operations\n", mode, int64(res.Extra["failed-ops"]))
			failed = true
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if cfg.traceOut != "" {
		if err := writeMergedTrace(cfg.traceOut, traceDumps, traceKept); err != nil {
			fmt.Fprintf(os.Stderr, "syncload: %v\n", err)
			return 1
		}
	}

	out := os.Stdout
	if cfg.jsonPath != "" {
		f, err := os.Create(cfg.jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syncload: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "syncload: %v\n", err)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

// rawReport mirrors benchjson's -raw schema so bench-load output plugs
// straight into `benchjson -compare`.
type rawReport struct {
	Note       string     `json:"note"`
	Benchmarks []rawEntry `json:"benchmarks"`
}

type rawEntry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// traceSizes draws the small-file size population from the calibrated
// trace: every file under the cap that a scaled-down generation
// produces. The cap keeps the generator exercising the per-request
// path (the paper's problem case) rather than bulk bandwidth.
func traceSizes(seed, maxSize int64) []int64 {
	recs := trace.Generate(trace.GenConfig{Seed: seed, Scale: 0.02})
	sizes := make([]int64, 0, len(recs))
	for _, r := range recs {
		if r.OriginalSize <= maxSize {
			sizes = append(sizes, r.OriginalSize)
		}
	}
	if len(sizes) == 0 {
		sizes = []int64{4096}
	}
	return sizes
}

// arrival is one scheduled operation.
type arrival struct {
	at  time.Time // scheduled arrival, the latency epoch
	seq int64     // global operation number (names files uniquely)
}

type account struct {
	client *syncnet.Client
	queue  chan arrival
	tracer *obs.Tracer
}

func runMode(cfg config, mode string, sizes []int64) (rawEntry, *traceCollector, error) {
	resetPeakRSS()
	reg := obs.NewRegistry()
	var col *traceCollector
	var srvTracer *obs.Tracer
	if cfg.traceOut != "" {
		col = &traceCollector{top: cfg.traceTop, mode: mode}
		srvTracer = obs.NewTracer()
	}

	addr := cfg.addr
	var srv *syncnet.Server
	var srvLedger *ledger.Ledger
	if addr == "" {
		if cfg.check {
			srvLedger = ledger.New()
		}
		scfg := syncnet.ServerConfig{
			Compression: comp.None,
			MaxInflight: cfg.maxInflight,
			Ledger:      srvLedger,
			Metrics:     reg,
			Tracer:      srvTracer,
		}
		if cfg.stateDir != "" {
			scfg.StateDir = filepath.Join(cfg.stateDir, mode)
			if err := os.MkdirAll(scfg.StateDir, 0o755); err != nil {
				return rawEntry{}, nil, err
			}
		}
		var err error
		srv, err = syncnet.OpenServer(scfg)
		if err != nil {
			return rawEntry{}, nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return rawEntry{}, nil, err
		}
		go srv.Serve(l)
		defer srv.Close()
		addr = l.Addr().String()
	}

	latencyUS := reg.Histogram("syncload_latency_us", "Operation latency from scheduled arrival, microseconds.")
	queueWaitUS := reg.Histogram("syncload_queue_wait_us", "Microseconds an operation waited in its account's send queue before work started.")
	serviceUS := reg.Histogram("syncload_service_us", "Microseconds from an operation leaving its queue to its last acknowledgement.")
	var dropped, failedOps, files atomic.Int64

	cliLedger := ledger.New()
	accounts := make([]*account, cfg.accounts)
	var cliOpts []syncnet.ClientOption
	if cfg.check {
		cliOpts = append(cliOpts, syncnet.WithLedger(cliLedger))
	}
	cliOpts = append(cliOpts, syncnet.WithClientMetrics(reg))
	for i := range accounts {
		opts := cliOpts
		var tr *obs.Tracer
		if col != nil {
			tr = obs.NewTracer()
			opts = append(opts[:len(opts):len(opts)],
				syncnet.WithTracer(tr), syncnet.WithTraceContext())
		}
		c, err := syncnet.Dial("tcp", addr, fmt.Sprintf("load-%s-%04d", mode, i), "syncload", opts...)
		if err != nil {
			return rawEntry{}, nil, fmt.Errorf("dial account %d: %w", i, err)
		}
		accounts[i] = &account{client: c, queue: make(chan arrival, 4), tracer: tr}
	}

	var wg sync.WaitGroup
	for i, a := range accounts {
		wg.Add(1)
		go func(acct int, a *account) {
			defer wg.Done()
			// Deterministic per-account content source; data is
			// regenerated per file so bundle entries never share backing.
			rng := newXorshift(uint64(cfg.seed) ^ uint64(acct)*0x9E3779B97F4A7C15 ^ hashMode(mode))
			batch := make([]syncnet.FileUpload, cfg.batch)
			for arr := range a.queue {
				started := time.Now()
				queueWaitUS.Observe(started.Sub(arr.at).Microseconds())
				for j := range batch {
					size := sizes[int(uint64(arr.seq)*uint64(cfg.batch)+uint64(j))%len(sizes)]
					batch[j] = syncnet.FileUpload{
						Name: "op" + strconv.FormatInt(arr.seq, 36) + "/f" + strconv.Itoa(j),
						Data: rng.fill(make([]byte, size)),
					}
				}
				var err error
				switch mode {
				case "lockstep":
					for _, f := range batch {
						if _, err = a.client.Upload(f.Name, f.Data); err != nil {
							break
						}
					}
				case "pipelined":
					_, err = a.client.UploadPipelined(batch, cfg.window)
				case "bundle":
					_, err = a.client.UploadBundle(batch)
				}
				// The per-operation tracer is drained (and reset) whether
				// the operation succeeded or not, so tracing never grows
				// client memory with the run; only successes compete for
				// the slowest-operation reservoir.
				var spans []obs.SpanData
				if a.tracer != nil {
					spans = a.tracer.Spans()
					a.tracer.Reset()
				}
				if err != nil {
					failedOps.Add(1)
					continue
				}
				files.Add(int64(cfg.batch))
				lat := time.Since(arr.at)
				latencyUS.Observe(lat.Microseconds())
				serviceUS.Observe(time.Since(started).Microseconds())
				if col != nil {
					col.offer(lat.Microseconds(), obs.TraceDump{
						Process:     "syncload/" + mode,
						TraceID:     a.tracer.TraceID(),
						EpochUnixNs: a.tracer.EpochUnixNano(),
						Spans:       spans,
					})
				}
			}
		}(i, a)
	}

	// Open-loop pacer: arrivals fire on the fixed schedule and are
	// never deferred — a busy account's full queue sheds the operation
	// instead of slowing the offered load.
	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.rate)
	var seq int64
	for {
		at := start.Add(time.Duration(seq) * interval)
		if at.Sub(start) >= cfg.duration {
			break
		}
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		a := accounts[seq%int64(len(accounts))]
		select {
		case a.queue <- arrival{at: at, seq: seq}:
		default:
			dropped.Add(1)
		}
		seq++
	}
	for _, a := range accounts {
		close(a.queue)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var cliIn, cliOut int64
	for _, a := range accounts {
		a.client.Close()
		in, out := a.client.WireTotals()
		cliIn += in
		cliOut += out
	}

	entry := rawEntry{
		Name:    "SyncLoad/mode=" + mode,
		NsPerOp: meanNs(latencyUS),
		Extra: map[string]float64{
			"reqs-per-sec": float64(files.Load()) / elapsed.Seconds(),
			"ops-per-sec":  float64(latencyUS.Count()) / elapsed.Seconds(),
			"ops":          float64(latencyUS.Count()),
			"p50-us":       float64(latencyUS.Quantile(0.50)),
			"p99-us":       float64(latencyUS.Quantile(0.99)),
			"p999-us":      float64(latencyUS.Quantile(0.999)),
			"dropped-ops":  float64(dropped.Load()),
			"failed-ops":   float64(failedOps.Load()),
			"peak-rss-bytes": float64(readPeakRSS()),
		},
	}
	for _, ph := range phaseOrder(reg) {
		if ph.h.Count() == 0 {
			continue
		}
		entry.Extra[ph.key+"-p50-us"] = float64(ph.h.Quantile(0.50))
		entry.Extra[ph.key+"-p99-us"] = float64(ph.h.Quantile(0.99))
	}
	if !cfg.quiet {
		printPhaseTable(os.Stderr, mode, reg)
	}
	if col != nil {
		col.finish(obs.TraceDump{
			Process:     "syncd/" + mode,
			TraceID:     srvTracer.TraceID(),
			EpochUnixNs: srvTracer.EpochUnixNano(),
			Spans:       srvTracer.Spans(),
		})
	}

	if cfg.check {
		if err := srv.Close(); err != nil {
			return entry, col, fmt.Errorf("server close: %w", err)
		}
		st := srv.Stats()
		if got, want := srvLedger.Total(), st.BytesReceived+st.BytesSent; got != want {
			return entry, col, fmt.Errorf("server ledger total %d ≠ wire total %d (off by %+d)", got, want, got-want)
		}
		if got, want := cliLedger.Total(), cliIn+cliOut; got != want {
			return entry, col, fmt.Errorf("client ledger total %d ≠ wire total %d (off by %+d)", got, want, got-want)
		}
	}
	return entry, col, nil
}

// phase pairs a decomposition row with its Extra key and display label.
type phase struct {
	key   string
	label string
	h     *obs.Histogram
}

// phaseOrder lists the latency decomposition in causal order: where an
// operation's time goes from its scheduled arrival to the last ACK.
// Rows whose histogram never observed anything (e.g. server-side phases
// when loading a remote -addr, or the WAL phase without -state-dir) are
// skipped by the callers.
func phaseOrder(reg *obs.Registry) []phase {
	return []phase{
		{"queue-wait", "client send-queue wait", reg.Histogram("syncload_queue_wait_us", "")},
		{"reply-wait", "client wire round-trip wait", reg.Histogram("syncnet_client_reply_wait_us", "")},
		{"inbound-wait", "server inbound-queue wait", reg.Histogram("syncd_inbound_queue_wait_us", "")},
		{"request", "server request handling", reg.Histogram("syncd_request_duration_us", "")},
		{"apply", "server apply (in-memory)", reg.Histogram("syncd_apply_us", "")},
		{"fsync", "server WAL group commit", reg.Histogram("syncd_wal_fsync_duration_us", "")},
		{"service", "operation service (whole batch)", reg.Histogram("syncload_service_us", "")},
	}
}

// printPhaseTable renders the per-phase p50/p99 decomposition for one
// mode. Quantiles come from power-of-two-bucketed histograms, so two
// values within obs.QuantileStepTolerancePct of each other are the same
// bucket — read the table for orders of magnitude, not exact ratios.
func printPhaseTable(w io.Writer, mode string, reg *obs.Registry) {
	fmt.Fprintf(w, "syncload: %s phase decomposition (µs):\n", mode)
	fmt.Fprintf(w, "  %-32s %10s %10s %10s\n", "phase", "count", "p50", "p99")
	for _, ph := range phaseOrder(reg) {
		if ph.h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-32s %10d %10d %10d\n",
			ph.label, ph.h.Count(), ph.h.Quantile(0.50), ph.h.Quantile(0.99))
	}
}

// opTrace is one reservoir entry: an operation's latency and its span
// dump (the spans its account tracer recorded for just that op).
type opTrace struct {
	latUS int64
	dump  obs.TraceDump
}

// traceCollector keeps the -trace-top slowest successful operations of
// one mode and, on finish, joins them with the server spans they caused
// into mergeable per-process dumps.
type traceCollector struct {
	mu    sync.Mutex
	top   int
	mode  string
	ops   []opTrace
	kept  int
	dumps []obs.TraceDump
}

// offer competes one finished operation for the reservoir: below
// capacity it is kept, above it the current minimum-latency entry is
// evicted if this one was slower.
func (tc *traceCollector) offer(latUS int64, d obs.TraceDump) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if len(tc.ops) < tc.top {
		tc.ops = append(tc.ops, opTrace{latUS, d})
		return
	}
	min := 0
	for i := range tc.ops {
		if tc.ops[i].latUS < tc.ops[min].latUS {
			min = i
		}
	}
	if latUS > tc.ops[min].latUS {
		tc.ops[min] = opTrace{latUS, d}
	}
}

// finish resolves the reservoir against the server's span dump: kept
// operations from the same account fold into one client dump (their
// tracer — hence TraceID and epoch — is shared), and the server dump is
// filtered to the spans a kept operation caused (a span carrying a kept
// remote context, plus its local descendants; the server tracer assigns
// child IDs after parents, so one in-order pass closes the set).
func (tc *traceCollector) finish(srvDump obs.TraceDump) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.kept = len(tc.ops)

	groups := make(map[obs.TraceID]int)
	kept := make(map[obs.TraceID]map[uint64]bool)
	for _, op := range tc.ops {
		id := op.dump.TraceID
		if gi, ok := groups[id]; ok {
			tc.dumps[gi].Spans = append(tc.dumps[gi].Spans, op.dump.Spans...)
		} else {
			groups[id] = len(tc.dumps)
			tc.dumps = append(tc.dumps, op.dump)
		}
		if kept[id] == nil {
			kept[id] = make(map[uint64]bool)
		}
		for _, s := range op.dump.Spans {
			kept[id][s.ID] = true
		}
	}

	included := make(map[uint64]bool)
	var spans []obs.SpanData
	for _, s := range srvDump.Spans {
		ok := false
		switch {
		case s.RemoteParent != 0:
			ok = kept[s.RemoteTrace][s.RemoteParent]
		case s.Parent != 0:
			ok = included[s.Parent]
		}
		if ok {
			included[s.ID] = true
			spans = append(spans, s)
		}
	}
	if len(spans) > 0 {
		srvDump.Spans = spans
		tc.dumps = append(tc.dumps, srvDump)
	}
	tc.ops = nil
}

// writeMergedTrace merges every collected dump onto one timeline (the
// tracers share real wall clocks, so modes appear in sequence) and
// writes the Chrome trace_event file.
func writeMergedTrace(path string, dumps []obs.TraceDump, kept int) error {
	merged := obs.Merge(dumps...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteMergedChromeTrace(f, merged); err == nil {
		err = f.Close()
	}
	if err != nil {
		return fmt.Errorf("writing merged trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "syncload: merged trace of the %d slowest ops (%d spans) written to %s (open in chrome://tracing or Perfetto)\n",
		kept, len(merged), path)
	return nil
}

func meanNs(h *obs.Histogram) float64 {
	if h.Count() == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(h.Count()) * 1e3 // µs → ns
}

func hashMode(mode string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(mode); i++ {
		h = (h ^ uint64(mode[i])) * 1099511628211
	}
	return h
}

// xorshift is a tiny deterministic filler for file content; quality
// does not matter, distinctness and speed do.
type xorshift uint64

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 1
	}
	x := xorshift(seed)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) fill(p []byte) []byte {
	for i := 0; i+8 <= len(p); i += 8 {
		v := x.next()
		p[i] = byte(v)
		p[i+1] = byte(v >> 8)
		p[i+2] = byte(v >> 16)
		p[i+3] = byte(v >> 24)
		p[i+4] = byte(v >> 32)
		p[i+5] = byte(v >> 40)
		p[i+6] = byte(v >> 48)
		p[i+7] = byte(v >> 56)
	}
	for i := len(p) &^ 7; i < len(p); i++ {
		p[i] = byte(x.next())
	}
	return p
}

// resetPeakRSS drops the kernel's resident-set high-water mark to the
// current RSS (clear_refs code 5), so each mode's peak-rss-bytes
// reflects that mode rather than the process-wide maximum so far.
// Best-effort: on kernels without the knob the peaks are cumulative.
func resetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// readPeakRSS reports the process's peak resident set (VmHWM) in
// bytes, 0 where /proc is unavailable.
func readPeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
