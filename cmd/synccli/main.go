// Command synccli talks to a running syncd: upload (with automatic
// delta sync on re-upload), download, and delete files.
//
// Usage:
//
//	synccli -addr 127.0.0.1:7777 -user alice put local.txt remote.txt
//	synccli -user alice get remote.txt local-copy.txt
//	synccli -user alice rm remote.txt
//	synccli -retries 5 put big.bin remote.bin     # reconnect + resume
//	synccli -bundle put a.txt b.txt c.txt         # batch in one exchange
//	synccli -trace out.json -report put a.txt b   # spans + summary tree
//
// -trace writes the operation's span tree in Chrome trace_event format
// (load it in chrome://tracing or Perfetto); -report prints an indented
// per-stage summary with wire-byte counts to stderr. -trace-dump writes
// the run's span dump in the obs JSONL format; with -propagate (the
// default when tracing) the server's spans carry this run's context, so
// merging the two dumps with tracemerge yields one cross-process
// timeline. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/obs"
	"cloudsync/internal/syncnet"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: synccli [flags] <command> [args]

commands:
  put <local> <remote>   upload a file (delta sync if known)
  get <remote> <local>   download a file
  rm  <remote>           delete a file (after syncing it this session)

with -bundle, put takes any number of local files and uploads them as a
single bundled exchange, stored under their base names:

  synccli -bundle put a.txt b.txt c.txt

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7777", "syncd address")
		user      = flag.String("user", "alice", "account name")
		device    = flag.String("device", "cli", "device name")
		compress  = flag.Bool("compress", true, "compress uploads (must match syncd)")
		bundle    = flag.Bool("bundle", false, "put: upload all named local files as one bundled exchange")
		retries   = flag.Int("retries", 1, "attempts per operation (reconnect + resume on failure)")
		retryBase = flag.Duration("retry-base", 200*time.Millisecond, "initial reconnect backoff")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event file of this run's spans")
		traceDump = flag.String("trace-dump", "", "write this run's span dump (obs JSONL), mergeable with syncd's via tracemerge")
		propagate = flag.Bool("propagate", true, "with tracing on, send the trace context to the server so its spans join this run's trace")
		report    = flag.Bool("report", false, "print a per-stage span summary to stderr")
	)
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	var tracer *obs.Tracer
	if *traceOut != "" || *traceDump != "" || *report {
		tracer = obs.NewTracer()
	}
	// finish flushes the trace and report before any exit, success or
	// failure — a failed operation's spans are the interesting ones.
	finish := func() {
		if tracer == nil {
			return
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "synccli: %v\n", err)
				return
			}
			if err := tracer.WriteChromeTrace(f); err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "synccli: writing trace: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "synccli: trace written to %s (open in chrome://tracing or Perfetto)\n", *traceOut)
		}
		if *traceDump != "" {
			f, err := os.Create(*traceDump)
			if err != nil {
				fmt.Fprintf(os.Stderr, "synccli: %v\n", err)
				return
			}
			if err := obs.WriteDump(f, tracer.Dump("synccli")); err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "synccli: writing span dump: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "synccli: span dump written to %s (merge with tracemerge)\n", *traceDump)
		}
		if *report {
			fmt.Fprint(os.Stderr, tracer.Report())
		}
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "synccli: %v\n", err)
		finish()
		os.Exit(1)
	}

	var opts []syncnet.ClientOption
	if *compress {
		opts = append(opts, syncnet.WithCompression(comp.High))
	}
	if tracer != nil {
		opts = append(opts, syncnet.WithTracer(tracer))
		if *propagate {
			opts = append(opts, syncnet.WithTraceContext())
		}
	}
	if *retries > 1 {
		opts = append(opts, syncnet.WithRetry(syncnet.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   *retryBase,
			MaxDelay:    5 * time.Second,
			Seed:        1,
		}))
	}
	c, err := syncnet.Dial("tcp", *addr, *user, *device, opts...)
	if err != nil {
		fail(err)
	}
	defer c.Close()

	switch args[0] {
	case "put":
		if *bundle {
			if len(args) < 2 {
				usage()
			}
			files := make([]syncnet.FileUpload, 0, len(args)-1)
			for _, path := range args[1:] {
				data, err := os.ReadFile(path)
				if err != nil {
					fail(err)
				}
				files = append(files, syncnet.FileUpload{Name: filepath.Base(path), Data: data})
			}
			stats, err := c.UploadBundle(files)
			if err != nil {
				fail(err)
			}
			for i, st := range stats {
				if st.DedupHit {
					fmt.Printf("put %s: bundled, deduplicated (v%d)\n", files[i].Name, st.Version)
				} else {
					fmt.Printf("put %s: bundled (v%d, %d payload bytes)\n",
						files[i].Name, st.Version, st.PayloadBytes)
				}
			}
			if stats[0].Attempts > 1 {
				fmt.Printf("put: bundle took %d attempts\n", stats[0].Attempts)
			}
			finish()
			return
		}
		if len(args) != 3 {
			usage()
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			fail(err)
		}
		stats, err := c.Upload(args[2], data)
		if err != nil {
			fail(err)
		}
		switch {
		case stats.DedupHit:
			fmt.Printf("put %s: deduplicated (v%d, 0 payload bytes)\n", args[2], stats.Version)
		case stats.DeltaSync:
			fmt.Printf("put %s: delta sync (v%d, %d payload bytes)\n",
				args[2], stats.Version, stats.PayloadBytes)
		default:
			fmt.Printf("put %s: full upload (v%d, %d payload bytes)\n",
				args[2], stats.Version, stats.PayloadBytes)
		}
		if stats.Attempts > 1 {
			fmt.Printf("put %s: took %d attempts, resumed from payload byte %d\n",
				args[2], stats.Attempts, stats.ResumedFrom)
		}
	case "get":
		if len(args) != 3 {
			usage()
		}
		data, err := c.Download(args[1])
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("get %s: %d bytes\n", args[1], len(data))
	case "rm":
		if len(args) != 2 {
			usage()
		}
		// Deletion needs the file id; sync it into this session first.
		if _, err := c.Download(args[1]); err != nil {
			fail(err)
		}
		if err := c.Delete(args[1]); err != nil {
			fail(err)
		}
		fmt.Printf("rm %s: deleted (content retained server-side for rollback)\n", args[1])
	default:
		usage()
	}
	finish()
}
