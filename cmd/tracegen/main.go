// Command tracegen synthesizes a cloud storage trace calibrated to the
// statistics of the paper's real-world 153-user / 222,632-file trace
// (§ 3.1, Table 3) and writes it as CSV.
//
// Usage:
//
//	tracegen -scale 0.1 -seed 7 -o trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudsync/internal/trace"
)

func main() {
	var (
		scale = flag.Float64("scale", 1.0, "trace scale (1.0 = full 222,632 files)")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()

	recs := trace.Generate(trace.GenConfig{Seed: *seed, Scale: *scale})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, recs); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records (seed %d, scale %g)\n",
		len(recs), *seed, *scale)
}
