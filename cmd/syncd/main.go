// Command syncd runs the live cloudsync sync service on a TCP address:
// per-user namespaces, compression, full-file deduplication, rsync
// delta sync, and fake deletion — the sync mechanisms the paper
// recommends providers implement, end to end.
//
// Usage:
//
//	syncd -addr 127.0.0.1:7777 -compress -cross-user-dedup
//	syncd -obs-addr 127.0.0.1:8080   # live /metrics, /healthz, pprof
//
// With -state-dir, server state is durable: every acknowledged commit
// is group-committed to an append-only CRC-framed log before the ACK,
// and restarting syncd on the same directory replays it back (see
// docs/DURABILITY.md). The default remains purely in-RAM.
//
// For resilience testing, -fault-drop-bytes cuts every accepted
// connection after a seeded pseudo-random byte budget, so retrying
// clients exercise the resume protocol against a real listener, and
// -fault-crash-bytes arms an in-process kill -9: the group commit that
// would carry the durable log past a seeded offset writes only a torn
// prefix and the process exits for its supervisor to restart into
// recovery. With -obs-addr, a second HTTP listener serves
// Prometheus-text metrics at /metrics, a liveness probe at /healthz,
// and the standard net/http/pprof profiling endpoints (see
// docs/OBSERVABILITY.md).
//
// With -state-dir, a flight recorder keeps the last -flight-records
// handled requests in a lock-cheap ring; when the durable state
// crashes, the ring is dumped to <state-dir>/flight-<ts>.jsonl before
// the process exits — a black box for the post-mortem. -trace-dump
// writes the server's span dump on shutdown; merge it with a client's
// dump via the tracemerge command to get one cross-process timeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"cloudsync/internal/comp"
	"cloudsync/internal/obs"
	"cloudsync/internal/syncnet"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7777", "listen address")
		compress  = flag.Bool("compress", true, "compress content on the wire and at rest")
		crossUser = flag.Bool("cross-user-dedup", false, "share the dedup index across accounts")
		blockSize = flag.Int("block-size", 0, "delta-sync granularity in bytes (0 = default 8 KiB)")
		inflight  = flag.Int("max-inflight", 0,
			"requests read ahead per connection for pipelined clients (0 = default, 1 ≈ lockstep)")
		quiet    = flag.Bool("quiet", false, "suppress per-request logging")
		stateDir = flag.String("state-dir", "",
			"durable state directory: replay on start, group-commit before every ACK (empty = in-RAM)")

		faultBytes = flag.Int64("fault-drop-bytes", 0,
			"cut each connection after ~this many bytes (0 = no fault injection)")
		faultDrops = flag.Int("fault-max-drops", 0,
			"stop injecting after this many cuts (0 = unlimited)")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault-injection schedule seed")
		crashBytes = flag.Int64("fault-crash-bytes", 0,
			"kill -9 the durable state after ~this many log bytes (0 = off; needs -state-dir)")

		obsAddr = flag.String("obs-addr", "",
			"serve live /metrics (Prometheus text), /healthz and pprof on this address (empty = off)")
		flightRecords = flag.Int("flight-records", 512,
			"flight-recorder ring size: last N requests dumped to <state-dir>/flight-<ts>.jsonl on crash (0 = off; needs -state-dir)")
		traceDump = flag.String("trace-dump", "",
			"write the server's span dump (obs JSONL) here on shutdown, mergeable with client dumps via tracemerge")
	)
	flag.Parse()

	cfg := syncnet.ServerConfig{
		BlockSize:      *blockSize,
		CrossUserDedup: *crossUser,
		MaxInflight:    *inflight,
		StateDir:       *stateDir,
	}
	if *compress {
		cfg.Compression = comp.High
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if *flightRecords > 0 && *stateDir != "" {
		cfg.Flight = obs.NewFlightRecorder(*flightRecords)
	}
	var tracer *obs.Tracer
	if *traceDump != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}

	var reg *obs.Registry
	var obsSrv *obs.HTTPServer
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
		var err error
		obsSrv, err = obs.ListenAndServe(*obsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syncd: observability listener: %v\n", err)
			os.Exit(1)
		}
		log.Printf("syncd: observability on http://%s/metrics (+ /healthz, /debug/pprof/)", obsSrv.Addr())
	}

	// The durable state replays before the listener opens: a recovering
	// server never acknowledges a request against partial state.
	srv, err := syncnet.OpenServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncd: %v\n", err)
		os.Exit(1)
	}
	if *stateDir != "" {
		log.Printf("syncd: durable state in %s (%d log bytes replayed)", *stateDir, srv.StateLogBytes())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("syncd: listening on %s (compress=%v cross-user-dedup=%v)",
		l.Addr(), *compress, *crossUser)
	if *faultBytes > 0 || *crashBytes > 0 {
		sched := syncnet.NewFaultScheduler(syncnet.FaultPlan{
			Seed: *faultSeed, MeanDropBytes: *faultBytes, MaxDrops: *faultDrops,
			MeanCrashBytes: *crashBytes,
		})
		sched.SetMetrics(reg)
		if *faultBytes > 0 {
			l = sched.Listen(l)
			log.Printf("syncd: fault injection armed (~%d bytes/conn, max drops %d, seed %d)",
				*faultBytes, *faultDrops, *faultSeed)
		}
		if *crashBytes > 0 {
			if *stateDir == "" {
				fmt.Fprintln(os.Stderr, "syncd: -fault-crash-bytes requires -state-dir")
				os.Exit(1)
			}
			off := sched.ArmCrash(srv)
			log.Printf("syncd: crash point armed at durable-log offset %d (seed %d)", off, *faultSeed)
		}
	}

	// A dead durable state is a dead process: exit non-zero so a
	// supervisor restarts syncd into recovery on the same -state-dir.
	go func() {
		<-srv.CrashedC()
		log.Printf("syncd: durable state crashed; exiting for supervisor restart")
		os.Exit(3)
	}()

	if obsSrv != nil {
		// The server owns the observability endpoint's lifetime: Close
		// (below, on shutdown) drains the handlers, then closes it.
		srv.AttachCloser(obsSrv)
	}

	// SIGINT/SIGTERM close the listener; Serve returns, and the graceful
	// path below drains in-flight sessions and the obs endpoint.
	var shuttingDown atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("syncd: received %v, shutting down", sig)
		shuttingDown.Store(true)
		l.Close()
	}()

	err = srv.Serve(l)
	if err != nil && !shuttingDown.Load() {
		fmt.Fprintf(os.Stderr, "syncd: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "syncd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if tracer != nil {
		if err := writeDump(*traceDump, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "syncd: trace dump: %v\n", err)
			os.Exit(1)
		}
		log.Printf("syncd: span dump written to %s", *traceDump)
	}
	log.Printf("syncd: shutdown complete")
}

// writeDump writes the server tracer's span dump for tracemerge.
func writeDump(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteDump(f, tracer.Dump("syncd")); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
