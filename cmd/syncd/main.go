// Command syncd runs the live cloudsync sync service on a TCP address:
// per-user namespaces, compression, full-file deduplication, rsync
// delta sync, and fake deletion — the sync mechanisms the paper
// recommends providers implement, end to end.
//
// Usage:
//
//	syncd -addr 127.0.0.1:7777 -compress -cross-user-dedup
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"cloudsync/internal/comp"
	"cloudsync/internal/syncnet"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7777", "listen address")
		compress  = flag.Bool("compress", true, "compress content on the wire and at rest")
		crossUser = flag.Bool("cross-user-dedup", false, "share the dedup index across accounts")
		blockSize = flag.Int("block-size", 0, "delta-sync granularity in bytes (0 = default 8 KiB)")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	cfg := syncnet.ServerConfig{
		BlockSize:      *blockSize,
		CrossUserDedup: *crossUser,
	}
	if *compress {
		cfg.Compression = comp.High
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("syncd: listening on %s (compress=%v cross-user-dedup=%v)",
		l.Addr(), *compress, *crossUser)
	if err := syncnet.NewServer(cfg).Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "syncd: %v\n", err)
		os.Exit(1)
	}
}
