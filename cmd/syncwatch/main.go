// Command syncwatch is a live sync client for a real directory: it
// polls a local folder for changes and mirrors them to a running syncd
// — the full pipeline of the paper's Fig. 1 on an actual filesystem
// (watch → index → upload with dedup/compression/delta sync).
//
// Usage:
//
//	syncd -addr 127.0.0.1:7777 &
//	syncwatch -dir ~/Sync -addr 127.0.0.1:7777 -user alice
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/dirwatch"
	"cloudsync/internal/syncnet"
)

func main() {
	var (
		dir      = flag.String("dir", ".", "directory to watch and sync")
		addr     = flag.String("addr", "127.0.0.1:7777", "syncd address")
		user     = flag.String("user", "alice", "account name")
		interval = flag.Duration("interval", time.Second, "poll interval")
		compress = flag.Bool("compress", true, "compress uploads (must match syncd)")
		once     = flag.Bool("once", false, "scan and sync once, then exit")
	)
	flag.Parse()

	w, err := dirwatch.New(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncwatch: %v\n", err)
		os.Exit(1)
	}
	w.Ignore = func(path string) bool {
		base := path[strings.LastIndexByte(path, '/')+1:]
		return strings.HasPrefix(base, ".") || strings.HasSuffix(base, "~")
	}

	var opts []syncnet.ClientOption
	if *compress {
		opts = append(opts, syncnet.WithCompression(comp.High))
	}
	c, err := syncnet.Dial("tcp", *addr, *user, "syncwatch", opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncwatch: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	log.Printf("syncwatch: mirroring %s to %s as %s (every %v)", *dir, *addr, *user, *interval)
	for {
		changes, err := w.Scan()
		if err != nil {
			log.Printf("syncwatch: scan: %v", err)
		}
		for _, ch := range changes {
			if err := apply(c, w, ch); err != nil {
				log.Printf("syncwatch: %s %s: %v", ch.Op, ch.Path, err)
			}
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func apply(c *syncnet.Client, w *dirwatch.Watcher, ch dirwatch.Change) error {
	switch ch.Op {
	case dirwatch.Create, dirwatch.Modify:
		data, err := w.Read(ch.Path)
		if err != nil {
			return err
		}
		stats, err := c.Upload(ch.Path, data)
		if err != nil {
			return err
		}
		switch {
		case stats.DedupHit:
			log.Printf("syncwatch: %s v%d (deduplicated)", ch.Path, stats.Version)
		case stats.DeltaSync:
			log.Printf("syncwatch: %s v%d (delta, %d bytes)", ch.Path, stats.Version, stats.PayloadBytes)
		default:
			log.Printf("syncwatch: %s v%d (full, %d bytes)", ch.Path, stats.Version, stats.PayloadBytes)
		}
		return nil
	case dirwatch.Delete:
		if err := c.Delete(ch.Path); err != nil {
			return err
		}
		log.Printf("syncwatch: %s deleted", ch.Path)
		return nil
	default:
		return fmt.Errorf("unknown change %v", ch.Op)
	}
}
