// Command syncwatch is the watch-mode sync daemon: it mirrors a local
// directory to a running syncd through the full watch-mode pipeline —
// polling observer → debounced change buffer → pure planner →
// parallel executor → atomically persisted baseline. Sync deferment
// (including the paper's adaptive sync defer) is a planner policy
// knob, selected with -defer. The durable client state (the baseline)
// lives under -state-dir, DIR/.syncwatch by default; a crash at any
// point leaves either the old baseline or the new one, never a torn
// file (see docs/DURABILITY.md).
//
// Usage:
//
//	syncd -addr 127.0.0.1:7777 &
//	syncwatch -dir ~/Sync -addr 127.0.0.1:7777 -user alice -defer asd
//
// Modes:
//
//	-dry-run          plan against the persisted baseline and print the
//	                  action table without touching the network
//	-replay freqmod   replay the frequent-modification workload against
//	                  an in-memory server, comparing the configured
//	                  defer policy with no-defer (-explain adds per-cause
//	                  traffic attribution and TUE deltas)
//	-once             sync until converged, then exit
package main

import (
	"crypto/md5"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/dirwatch"
	"cloudsync/internal/planner"
	"cloudsync/internal/syncnet"
	"cloudsync/internal/watchsync"
)

type options struct {
	dir      string
	addr     string
	user     string
	device   string
	interval time.Duration
	debounce time.Duration
	stateDir string
	baseline string
	workers  int
	compress bool
	once     bool

	deferMode string
	fixedT    time.Duration
	epsilon   time.Duration
	tmax      time.Duration
	threshold int64
	maxDelay  time.Duration

	dryRun  bool
	replay  string
	explain bool
	files   int
	edits   int
	editGap time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.dir, "dir", ".", "directory to watch and sync")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7777", "syncd address")
	flag.StringVar(&o.user, "user", "alice", "account name")
	flag.StringVar(&o.device, "device", "syncwatch", "device name")
	flag.DurationVar(&o.interval, "interval", time.Second, "poll interval")
	flag.DurationVar(&o.debounce, "debounce", 500*time.Millisecond, "change buffer quiet window")
	flag.StringVar(&o.stateDir, "state-dir", "",
		"durable client state directory (default DIR/.syncwatch)")
	flag.StringVar(&o.baseline, "baseline", "", "baseline path (default STATE-DIR/baseline.json)")
	flag.IntVar(&o.workers, "workers", 2, "parallel transfer workers")
	flag.BoolVar(&o.compress, "compress", true, "compress uploads (must match syncd)")
	flag.BoolVar(&o.once, "once", false, "sync until converged, then exit")
	flag.StringVar(&o.deferMode, "defer", "none", "sync deferment policy: none, fixed, asd, uds")
	flag.DurationVar(&o.fixedT, "defer-fixed", 5*time.Second, "deferment for -defer fixed")
	flag.DurationVar(&o.epsilon, "epsilon", 100*time.Millisecond, "ASD epsilon (Eq. 2)")
	flag.DurationVar(&o.tmax, "tmax", 10*time.Second, "ASD maximum deferment (Eq. 2)")
	flag.Int64Var(&o.threshold, "uds-threshold", 1<<20, "UDS size threshold (bytes)")
	flag.DurationVar(&o.maxDelay, "uds-delay", 4*time.Second, "UDS maximum linger")
	flag.BoolVar(&o.dryRun, "dry-run", false, "print the plan against the baseline and exit")
	flag.StringVar(&o.replay, "replay", "", "replay a canned workload (freqmod) and exit")
	flag.BoolVar(&o.explain, "explain", false, "with -replay: print per-cause ledgers and TUE deltas")
	flag.IntVar(&o.files, "files", 2, "with -replay: files in the workload")
	flag.IntVar(&o.edits, "edits", 8, "with -replay: edits per file")
	flag.DurationVar(&o.editGap, "edit-interval", 500*time.Millisecond, "with -replay: virtual time between edits")
	flag.Parse()

	if o.stateDir == "" {
		o.stateDir = filepath.Join(o.dir, ".syncwatch")
	}
	if o.baseline == "" {
		o.baseline = filepath.Join(o.stateDir, "baseline.json")
	}

	var err error
	switch {
	case o.dryRun:
		err = runDryRun(o, os.Stdout)
	case o.replay != "":
		err = runReplay(o, os.Stdout)
	default:
		err = runDaemon(o, nil)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "syncwatch: %v\n", err)
		os.Exit(1)
	}
}

// deferConfig translates the policy flags.
func deferConfig(o options) (planner.DeferConfig, error) {
	cfg := planner.DeferConfig{
		FixedT:    o.fixedT,
		Epsilon:   o.epsilon,
		TMax:      o.tmax,
		Threshold: o.threshold,
		MaxDelay:  o.maxDelay,
	}
	switch o.deferMode {
	case "none":
		cfg.Mode = planner.DeferNone
	case "fixed":
		cfg.Mode = planner.DeferFixed
	case "asd":
		cfg.Mode = planner.DeferASD
	case "uds":
		cfg.Mode = planner.DeferUDS
	default:
		return cfg, fmt.Errorf("unknown -defer mode %q", o.deferMode)
	}
	return cfg, nil
}

// ignored filters hidden files, editor droppings, and the syncwatch
// state directory itself out of the watched tree.
func ignored(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if strings.HasPrefix(seg, ".") || strings.HasSuffix(seg, "~") {
			return true
		}
	}
	return false
}

// runDryRun plans one round against the persisted baseline — remote
// unknown, no write timestamps, so the plan depends only on tree
// content and baseline — and prints the stable action table. It never
// opens a connection.
func runDryRun(o options, out io.Writer) error {
	w, err := dirwatch.New(o.dir)
	if err != nil {
		return err
	}
	w.Ignore = ignored
	changes, err := w.Scan()
	if err != nil {
		return err
	}
	baseline, err := watchsync.LoadBaseline(o.baseline)
	if err != nil {
		return err
	}
	in := planner.Input{Baseline: baseline}
	present := make(map[string]bool, len(changes))
	for _, ch := range changes {
		if ch.Op == dirwatch.Delete {
			continue // first scan reports only creates
		}
		data, err := w.Read(ch.Path)
		if err != nil {
			return err
		}
		present[ch.Path] = true
		in.Changes = append(in.Changes, planner.Change{
			Path: ch.Path, Size: int64(len(data)), MD5: contentMD5(data),
		})
	}
	// Baseline entries not on disk anymore are pending removals.
	removed := make([]string, 0)
	for path := range baseline {
		if !present[path] {
			removed = append(removed, path)
		}
	}
	sort.Strings(removed)
	for _, path := range removed {
		in.Changes = append(in.Changes, planner.Change{Path: path, Remove: true})
	}
	_, err = io.WriteString(out, planner.FormatTable(planner.Plan(in)))
	return err
}

// runReplay replays the named workload under the configured defer
// policy AND under no-defer, then prints the comparison — the paper's
// frequent-modification experiment as a command.
func runReplay(o options, out io.Writer) error {
	if o.replay != "freqmod" {
		return fmt.Errorf("unknown -replay workload %q (have: freqmod)", o.replay)
	}
	policy, err := deferConfig(o)
	if err != nil {
		return err
	}
	if policy.Mode == planner.DeferNone {
		policy = planner.DeferConfig{Mode: planner.DeferASD, Epsilon: o.epsilon, TMax: o.tmax}
		fmt.Fprintf(out, "(-defer none would compare no-defer against itself; using asd)\n\n")
	}
	base := watchsync.ReplayConfig{
		Files: o.files, Edits: o.edits, Interval: o.editGap,
		Step: o.editGap / 5, Seed: 42, Debounce: 0,
	}
	noneCfg, polCfg := base, base
	polCfg.Defer = policy

	none, err := watchsync.ReplayFreqMod(noneCfg)
	if err != nil {
		return err
	}
	pol, err := watchsync.ReplayFreqMod(polCfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "freqmod: %d files, %d edits each, one edit per %v\n\n",
		o.files, o.edits, o.editGap)
	fmt.Fprintf(out, "%-22s %14s %14s\n", "", "no-defer", policy.Mode.String())
	row := func(label string, a, b any) { fmt.Fprintf(out, "%-22s %14v %14v\n", label, a, b) }
	row("sync points", none.SyncPoints, pol.SyncPoints)
	row("full uploads", none.Uploads, pol.Uploads)
	row("delta syncs", none.Deltas, pol.Deltas)
	row("deferred rounds", none.Deferred, pol.Deferred)
	row("client wire bytes", none.ClientWire, pol.ClientWire)
	row("server wire bytes", none.ServerWire, pol.ServerWire)
	row("fresh bytes", none.FreshBytes, pol.FreshBytes)
	row("TUE", fmt.Sprintf("%.3f", none.TUE()), fmt.Sprintf("%.3f", pol.TUE()))
	saved := none.ClientWire - pol.ClientWire
	fmt.Fprintf(out, "\n%v saves %d wire bytes (%.1f%%), TUE %.3f -> %.3f\n",
		policy.Mode, saved, 100*float64(saved)/float64(none.ClientWire),
		none.TUE(), pol.TUE())

	if o.explain {
		fmt.Fprintf(out, "\n%s\n", none.ClientLedger.Table("no-defer client traffic by cause"))
		fmt.Fprintf(out, "%s\n", pol.ClientLedger.Table(policy.Mode.String()+" client traffic by cause"))
		fmt.Fprintf(out, "per-cause delta (no-defer minus %v):\n", policy.Mode)
		diff := none.ClientLedger
		for i := range diff {
			diff[i] -= pol.ClientLedger[i]
		}
		fmt.Fprintf(out, "%s\n", diff.Table("saved by deferment"))
	}
	return nil
}

// runDaemon is the live loop: wall time is mapped onto the virtual
// clock from a startup epoch, and the pipeline's wake hints bound each
// sleep. stop, when non-nil, requests a clean shutdown (tests use it;
// the CLI runs until killed).
func runDaemon(o options, stop <-chan struct{}) error {
	policy, err := deferConfig(o)
	if err != nil {
		return err
	}
	if o.workers < 1 {
		o.workers = 1
	}
	if err := os.MkdirAll(filepath.Dir(o.baseline), 0o755); err != nil {
		return err
	}
	w, err := dirwatch.New(o.dir)
	if err != nil {
		return err
	}
	w.Ignore = ignored

	var copts []syncnet.ClientOption
	if o.compress {
		copts = append(copts, syncnet.WithCompression(comp.High))
	}
	clients := make([]*syncnet.Client, o.workers)
	for i := range clients {
		c, err := syncnet.Dial("tcp", o.addr, o.user, fmt.Sprintf("%s-w%d", o.device, i), copts...)
		if err != nil {
			return err
		}
		defer c.Close()
		clients[i] = c
	}

	epoch := time.Now()
	src := watchsync.NewDirSource(w, epoch)
	pipe := watchsync.NewPipeline(src, watchsync.NewExecutor(clients...), watchsync.Config{
		Debounce:     o.debounce,
		Defer:        policy,
		BaselinePath: o.baseline,
	})
	if err := pipe.Bootstrap(); err != nil {
		return err
	}
	log.Printf("syncwatch: mirroring %s to %s as %s (poll %v, debounce %v, defer %v, %d workers)",
		o.dir, o.addr, o.user, o.interval, o.debounce, policy.Mode, o.workers)

	synced := false
	for {
		now := time.Since(epoch)
		if err := pipe.Poll(now); err != nil {
			log.Printf("syncwatch: scan: %v", err)
		}
		st, wakeAt, wake, err := pipe.Tick(now)
		if err != nil {
			return err
		}
		if st.Uploads+st.Deltas+st.Deletes+st.Errors > 0 {
			log.Printf("syncwatch: %d up, %d delta, %d del, %d deferred, %d errors (%d payload B)",
				st.Uploads, st.Deltas, st.Deletes, st.Deferred, st.Errors, st.WireBytes)
		}
		if o.once {
			if pipe.PendingPaths() == 0 && synced {
				return nil
			}
			synced = true
		}
		sleep := o.interval
		if wake {
			if d := wakeAt - time.Since(epoch); d < sleep {
				sleep = d
			}
		}
		if sleep < 10*time.Millisecond {
			sleep = 10 * time.Millisecond
		}
		select {
		case <-stop:
			return nil
		case <-time.After(sleep):
		}
	}
}

func contentMD5(data []byte) [16]byte { return md5.Sum(data) }
