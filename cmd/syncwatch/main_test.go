package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/syncnet"
)

// TestDryRunGolden pins `syncwatch -dry-run` output byte for byte: a
// committed fixture tree and baseline plan to a stable text table. The
// fixture covers all four action kinds — a file modified since the
// baseline, a new file, a baseline entry deleted from disk, and an
// unchanged file.
func TestDryRunGolden(t *testing.T) {
	var got bytes.Buffer
	err := runDryRun(options{
		dir:      "testdata/tree",
		baseline: filepath.Join("testdata", "baseline.json"),
	}, &got)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "dryrun.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Fatalf("dry-run output drifted from testdata/dryrun.golden:\n got:\n%s\nwant:\n%s",
			got.String(), want)
	}
}

// TestDryRunDeterministic: two runs over the same tree must agree —
// the golden is only meaningful if the output carries no ambient
// state (mtimes, map order, wall clock).
func TestDryRunDeterministic(t *testing.T) {
	run := func() string {
		var b bytes.Buffer
		if err := runDryRun(options{dir: "testdata/tree", baseline: "testdata/baseline.json"}, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("dry-run not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestReplayCommand smoke-tests `-replay freqmod -explain`: the
// comparison must report savings and the explain tables must balance.
func TestReplayCommand(t *testing.T) {
	var out bytes.Buffer
	err := runReplay(options{
		replay: "freqmod", explain: true,
		deferMode: "asd", epsilon: 200 * time.Millisecond, tmax: 5 * time.Second,
		files: 1, edits: 4, editGap: 500 * time.Millisecond,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sync points", "client wire bytes", "TUE", "saves", "traffic by cause"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("replay output missing %q:\n%s", want, out.String())
		}
	}
}

// syncGoroutines returns stacks of goroutines currently inside sync
// code — the daemon loop, executor workers, server handlers.
func syncGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if (strings.Contains(g, "cloudsync/internal/syncnet") ||
			strings.Contains(g, "cloudsync/internal/watchsync") ||
			strings.Contains(g, "runDaemon")) &&
			!strings.Contains(g, "runtime.Stack") &&
			!strings.Contains(g, "testing.tRunner") {
			out = append(out, g)
		}
	}
	return out
}

// TestDaemonSmoke runs the real daemon loop against an in-process
// server over TCP: create files, wait for convergence, modify, delete,
// wait again, shut down, and verify no goroutine survives.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test sleeps on real time")
	}
	srv := syncnet.NewServer(syncnet.ServerConfig{Compression: comp.High})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("hello.txt", "hello watch mode")
	writeFile("docs/spec.md", "# spec\ncontent")

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runDaemon(options{
			dir:      dir,
			addr:     l.Addr().String(),
			user:     "smoke",
			device:   "smoketest",
			interval: 20 * time.Millisecond,
			debounce: 10 * time.Millisecond,
			baseline: filepath.Join(dir, ".syncwatch", "baseline.json"),
			workers:  2,
			compress: true,
			deferMode: "none",
		}, stop)
	}()

	waitFor := func(desc string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; server snapshot: %v", desc, srv.Snapshot("smoke"))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	content := func(name string) string {
		f, ok := srv.Snapshot("smoke")[name]
		if !ok || f.Deleted {
			return ""
		}
		return string(f.Data)
	}

	waitFor("initial sync", func() bool {
		return content("hello.txt") == "hello watch mode" && content("docs/spec.md") == "# spec\ncontent"
	})
	writeFile("hello.txt", "hello watch mode, edited")
	waitFor("modify sync", func() bool { return content("hello.txt") == "hello watch mode, edited" })
	if err := os.Remove(filepath.Join(dir, "docs", "spec.md")); err != nil {
		t.Fatal(err)
	}
	waitFor("delete sync", func() bool {
		f, ok := srv.Snapshot("smoke")["docs/spec.md"]
		return ok && f.Deleted
	})

	// The baseline must have been persisted for the next generation.
	if _, err := os.Stat(filepath.Join(dir, ".syncwatch", "baseline.json")); err != nil {
		t.Fatalf("baseline not persisted: %v", err)
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("daemon exited with %v", err)
	}
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		leaked := syncGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutine(s) leaked:\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
