package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudsync/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden table snapshot")

// quickTables renders every experiment with the -quick configuration,
// exactly as `tuebench -quick` would, minus the wall-clock chrome.
func quickTables() string {
	core.ResetContentSeeds()
	cfg := config{quick: true, scale: 0.05, seed: 1}
	var b strings.Builder
	for _, e := range experiments {
		fmt.Fprintf(&b, "== %s ==\n%s\n", e.name, e.run(cfg))
	}
	return b.String()
}

// TestQuickGolden pins the full `tuebench -quick` output byte-for-byte
// against testdata/quick.golden. Any change to a simulated table —
// calibration, rendering, seed handling, experiment order — shows up
// here as a diff; intentional changes regenerate the snapshot with
//
//	go test ./cmd/tuebench -run TestQuickGolden -update
func TestQuickGolden(t *testing.T) {
	got := quickTables()
	golden := filepath.Join("testdata", "quick.golden")

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden snapshot (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("output diverges from %s at line %d:\n  golden: %q\n  got:    %q\n"+
				"(regenerate intentionally with: go test ./cmd/tuebench -run TestQuickGolden -update)",
				golden, i+1, w, g)
		}
	}
	t.Fatalf("output differs from %s in trailing bytes (got %d, want %d)", golden, len(got), len(want))
}
