// Command tuebench regenerates every table and figure of "Towards
// Network-level Efficiency for Cloud Storage Services" (IMC 2014) from
// the simulation and prints them as text tables.
//
// Usage:
//
//	tuebench                     # run everything (full parameter sweeps)
//	tuebench -quick              # reduced sweeps
//	tuebench -experiment fig6    # one artifact
//	tuebench -workers 8          # experiment worker-pool size (1 = sequential)
//	tuebench -list               # list artifact names
//	tuebench -trace out.json     # Chrome trace of per-cell runtimes
//	tuebench -explain            # per-cause TUE decomposition tables
//	tuebench -ledger-out l.json  # per-cell cause breakdown for tuediff
//	tuebench scale -n 8          # N× user-population scale replay
//
// The scale subcommand replays the trace with every user as an
// independent account (all accounts of one service sharing one sharded
// cloud) at 1× and N× the user population, checks per-service TUE is
// identical at both multiples, and reports wall time, allocations, and
// peak RSS as benchmark lines (make bench-scale → BENCH_scale.json).
//
// -trace records one span per simulated experiment cell (wall-clock
// timed, so the trace shows where regeneration time goes across the
// worker pool) and writes Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto. Tracing never changes the tables.
//
// -explain selects the decomposition artifact: each cell's sync traffic
// split into the attribution ledger's causes (metadata, payload, dedup
// probes, delta literals/copy references, resume, retransmit, framing),
// asserted to sum exactly to the cell's wire bytes. -ledger-out writes
// the same decomposition as deterministic JSON; cmd/tuediff compares
// two such dumps and flags per-cause drift.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cloudsync/internal/core"
	"cloudsync/internal/netem"
	"cloudsync/internal/obs"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

type experiment struct {
	name string
	desc string
	run  func(cfg config) string
}

type config struct {
	quick bool
	scale float64
	seed  int64
}

func (c config) sizes() []int64 {
	if c.quick {
		return core.QuickSizes
	}
	return core.PaperSizes
}

func (c config) xs() []float64 {
	if c.quick {
		return core.QuickXs()
	}
	return core.PaperXs()
}

func (c config) trace() []trace.Record {
	return trace.Generate(trace.GenConfig{Seed: c.seed, Scale: c.scale})
}

var experiments = []experiment{
	{"fig2", "trace size CDFs (Fig. 2)", func(c config) string {
		points, orig, comp := core.Fig2(c.trace())
		return core.RenderFig2(points, orig, comp)
	}},
	{"findings", "trace statistics vs the paper (§§ 4-5)", func(c config) string {
		return core.RenderFindings(trace.Analyze(c.trace()))
	}},
	{"table6", "file-creation traffic (Table 6)", func(c config) string {
		sizes := core.TableSizes
		if c.quick {
			sizes = core.QuickSizes
		}
		return core.RenderTable6(core.Experiment1(sizes), sizes)
	}},
	{"fig3", "TUE vs file size, PC clients (Fig. 3)", func(c config) string {
		return core.RenderFig3(core.Experiment1PC(c.sizes()))
	}},
	{"table7", "100×1KB batched creation / BDS detection (Table 7)", func(c config) string {
		return core.RenderTable7(core.Experiment1Batch())
	}},
	{"exp2", "file-deletion traffic (Experiment 2)", func(c config) string {
		sizes := []int64{1 << 10, 1 << 20, 10 << 20}
		if c.quick {
			sizes = []int64{1 << 20}
		}
		return core.RenderExp2(core.Experiment2(sizes))
	}},
	{"fig4", "one-byte modification traffic (Fig. 4)", func(c config) string {
		sizes := []int64{1 << 10, 10 << 10, 100 << 10, 1 << 20}
		if c.quick {
			sizes = []int64{10 << 10, 1 << 20}
		}
		return core.RenderFig4(core.Experiment3(sizes))
	}},
	{"table8", "10MB text creation+download / compression (Table 8)", func(c config) string {
		size := int64(10 << 20)
		if c.quick {
			size = 2 << 20
		}
		out := core.RenderTable8(core.Experiment4(size))
		return out + fmt.Sprintf("(best-effort compression of the text corpus: %.2f of original)\n",
			core.TextIdealRatio(size))
	}},
	{"table9", "deduplication granularity via Algorithm 1 (Table 9)", func(c config) string {
		return core.RenderTable9(core.Experiment5())
	}},
	{"fig5", "dedup ratio vs block size, trace-driven (Fig. 5)", func(c config) string {
		return core.RenderFig5(core.Fig5(c.trace()))
	}},
	{"fig6", "X KB/X sec appends, all services (Fig. 6)", func(c config) string {
		return core.RenderFig6(core.Experiment6(service.All(), c.xs()), service.All())
	}},
	{"defer", "fixed-deferment inference (§ 6.1)", func(c config) string {
		measured := map[service.Name]time.Duration{}
		for _, d := range core.InferDeferments(service.All()) {
			if d.Detected {
				measured[d.Service] = d.Delay
			}
		}
		return core.RenderDeferments(measured)
	}},
	{"asd", "ASD vs fixed deferment vs UDS (§ 6.1)", func(c config) string {
		xs := []float64{5, 6, 8, 10, 15, 20}
		if c.quick {
			xs = []float64{6, 10}
		}
		return core.RenderPolicies(core.ASDEvaluation(service.GoogleDrive, xs))
	}},
	{"fig7", "Minnesota vs Beijing (Fig. 7)", func(c config) string {
		svcs := []service.Name{service.OneDrive, service.Box, service.Dropbox}
		return core.RenderFig7(core.Experiment7(svcs, c.xs()))
	}},
	{"fig8a", "bandwidth sweep, Dropbox 1KB/s (Fig. 8a)", func(c config) string {
		return core.RenderFig8ab(core.Fig8a(core.Fig8aBandwidths), "bandwidth")
	}},
	{"fig8b", "latency sweep, Dropbox 1KB/s (Fig. 8b)", func(c config) string {
		return core.RenderFig8ab(core.Fig8b(core.Fig8bLatencies), "latency")
	}},
	{"fig8c", "hardware sweep, Dropbox (Fig. 8c)", func(c config) string {
		return core.RenderFig8c(core.Fig8c(c.xs()))
	}},
	{"reference", "reference design (all recommendations) vs services", func(c config) string {
		return core.RenderReference(core.ReferenceComparison())
	}},
	{"midlayer", "REST mid-layer ablation (§ 4.3)", func(c config) string {
		return core.RenderMidLayer(core.MidLayerAblation(4<<20, 50))
	}},
	{"compdedup", "compression × dedup ablation (§ 5.2)", func(c config) string {
		return core.RenderCompressDedup(core.CompressDedupAblation(c.trace(), 4<<20))
	}},
	{"replay", "trace replay under every service + cost estimate", func(c config) string {
		scale := c.scale
		if scale > 0.05 {
			scale = 0.05 // the engine replay needs no more for stable ratios
		}
		recs := trace.Generate(trace.GenConfig{Seed: c.seed, Scale: scale})
		return core.RenderReplay(core.TraceReplayAll(recs, 1/scale))
	}},
	{"reliability", "resumable vs restart uploads on flaky links", func(c config) string {
		size := int64(64 << 20)
		if c.quick {
			size = 16 << 20
		}
		mtbfs := []time.Duration{30 * time.Second, time.Minute, 5 * time.Minute, 30 * time.Minute}
		return core.RenderReliability(
			core.ReliabilityAblation(size, netem.Beijing(), 4<<20, mtbfs), size)
	}},
	{"chunking", "fixed vs content-defined chunking vs rsync on insertions", func(c config) string {
		versions, size, edit := 10, int64(2<<20), 1024
		if c.quick {
			versions, size = 4, 512<<10
		}
		return core.RenderChunking(core.ChunkingAblation(versions, size, edit), versions, size, edit)
	}},
	{"faults", "TUE under injected exchange loss x link (fault injection)", func(c config) string {
		probs := core.FaultLossProbs
		if c.quick {
			probs = core.QuickFaultLossProbs
		}
		return core.RenderFaultSweep(core.FaultSweep(probs))
	}},
	{"explain", "per-cause traffic decomposition / explainable TUE", func(c config) string {
		return core.RenderExplain(core.ExplainAll(c.quick))
	}},
}

// extraExperiments are opt-in artifacts: runnable by explicit
// -experiment name, never part of "all" or the pinned golden set.
// Content seeds are a process-global sequence, so an experiment that
// ran implicitly would shift the seeds — and the tables — of every
// experiment after it.
var extraExperiments = []experiment{
	{"chunkingnc", "chunking ablation plus a normalized (two-mask) content-defined row", func(c config) string {
		versions, size, edit := 10, int64(2<<20), 1024
		if c.quick {
			versions, size = 4, 512<<10
		}
		return core.RenderChunking(core.ChunkingAblationNC(versions, size, edit), versions, size, edit)
	}},
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scale" {
		runScale(os.Args[2:])
		return
	}
	var (
		name      = flag.String("experiment", "all", "artifact to regenerate (see -list)")
		quick     = flag.Bool("quick", false, "reduced parameter sweeps")
		scale     = flag.Float64("scale", 0.05, "trace scale (1.0 = full 222,632 files)")
		seed      = flag.Int64("seed", 1, "trace generation seed")
		workers   = flag.Int("workers", 0, "experiment worker-pool size (0 = GOMAXPROCS; 1 = sequential)")
		list      = flag.Bool("list", false, "list artifact names and exit")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event file of per-cell runtimes")
		explain   = flag.Bool("explain", false, "shorthand for -experiment explain (per-cause TUE decomposition)")
		ledgerOut = flag.String("ledger-out", "", "write the explain experiment's per-cell cause breakdown as JSON (for tuediff)")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)
	if *explain {
		*name = "explain"
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		core.SetTracer(tracer)
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		for _, e := range extraExperiments {
			fmt.Printf("%-10s %s (extra; not part of \"all\")\n", e.name, e.desc)
		}
		return
	}
	cfg := config{quick: *quick, scale: *scale, seed: *seed}

	selected := map[string]bool{}
	for _, n := range strings.Split(*name, ",") {
		selected[strings.TrimSpace(n)] = true
	}
	runnable := append(append([]experiment(nil), experiments...), extraExperiments...)
	known := map[string]bool{}
	for _, e := range runnable {
		known[e.name] = true
	}
	extra := map[string]bool{}
	for _, e := range extraExperiments {
		extra[e.name] = true
	}
	for n := range selected {
		if n != "all" && !known[n] {
			var names []string
			for _, e := range runnable {
				names = append(names, e.name)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "tuebench: unknown experiment %q (known: %s)\n",
				n, strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range runnable {
		// "all" is the pinned artifact set; extras run only by name.
		if !selected[e.name] && !(selected["all"] && !extra[e.name]) {
			continue
		}
		t0 := time.Now()
		out := e.run(cfg)
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	fmt.Printf("regenerated %d artifact(s) in %v (%d worker(s))\n",
		ran, time.Since(start).Round(time.Millisecond), parallel.Workers())

	if *ledgerOut != "" {
		// The dump is regenerated from a fresh seed state, so its bytes
		// are identical no matter which artifacts ran above — two builds
		// can always be tuediff'ed against each other.
		core.ResetContentSeeds()
		f, err := os.Create(*ledgerOut)
		if err == nil {
			err = writeLedgerDump(f, core.ExplainAll(*quick))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuebench: writing ledger dump: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tuebench: ledger dump written to %s\n", *ledgerOut)
	}

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuebench: %v\n", err)
			os.Exit(1)
		}
		if err := tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tuebench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tuebench: trace written to %s (%d spans; open in chrome://tracing or Perfetto)\n",
			*traceOut, len(tracer.Spans()))
	}
}
