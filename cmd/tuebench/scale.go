package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudsync/internal/core"
	"cloudsync/internal/parallel"
	"cloudsync/internal/trace"
)

// runScale is the `tuebench scale` mode: replay the trace at an N×
// synthetic user population on the worker pool and report wall time,
// heap allocation, peak RSS, and per-service TUE stability against the
// 1× baseline (replayed first, under the same per-account semantics).
//
// Besides the human table, the run prints `go test -bench`-style
// result lines, so the output pipes straight through
// internal/obs/benchjson -raw into BENCH_scale.json (make bench-scale).
// Custom units (peak-rss-bytes, tue-*) ride along as extra metrics.
func runScale(args []string) {
	fs := flag.NewFlagSet("tuebench scale", flag.ExitOnError)
	var (
		n       = fs.Int("n", 8, "user-population multiplier")
		scale   = fs.Float64("scale", 0.01, "trace scale (1.0 = full 222,632 files)")
		seed    = fs.Int64("seed", 1, "trace generation seed")
		workers = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS; 1 = sequential)")
	)
	fs.Parse(args)
	if *n < 1 {
		fmt.Fprintf(os.Stderr, "tuebench scale: -n %d must be >= 1\n", *n)
		os.Exit(2)
	}
	parallel.SetWorkers(*workers)

	recs := trace.Generate(trace.GenConfig{Seed: *seed, Scale: *scale})
	base := core.ScaleReplay(recs, 1)
	scaled := base
	if *n > 1 {
		scaled = core.ScaleReplay(recs, *n)
	}

	fmt.Print(core.RenderScale(base, scaled))
	fmt.Println()
	printScaleBench(base)
	if *n > 1 {
		printScaleBench(scaled)
	}

	for i, sr := range scaled.Services {
		if sr.TUE != base.Services[i].TUE {
			fmt.Fprintf(os.Stderr, "tuebench scale: TUE drift on %s: n=1 %v vs n=%d %v\n",
				sr.Service, base.Services[i].TUE, scaled.Multiplier, sr.TUE)
			os.Exit(1)
		}
	}
}

// printScaleBench emits one benchmark-format line for a scale run.
func printScaleBench(r core.ScaleResult) {
	fmt.Printf("BenchmarkScaleReplay/n=%d\t%8d\t%d ns/op\t%d B/op\t%d allocs/op\t%d peak-rss-bytes",
		r.Multiplier, 1, r.Wall.Nanoseconds(), r.AllocBytes, r.AllocObjects, r.PeakRSSBytes)
	for _, sr := range r.Services {
		fmt.Printf("\t%.6g %s", sr.TUE, "tue-"+serviceSlug(sr.Service))
	}
	fmt.Println()
}

func serviceSlug(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "-")
}
