package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cloudsync/internal/core"
)

// renderLedgerDump produces the exact bytes `tuebench -quick
// -ledger-out` writes.
func renderLedgerDump(t *testing.T) []byte {
	t.Helper()
	core.ResetContentSeeds()
	var b bytes.Buffer
	if err := writeLedgerDump(&b, core.ExplainAll(true)); err != nil {
		t.Fatalf("writeLedgerDump: %v", err)
	}
	return b.Bytes()
}

// TestLedgerDumpGolden pins the quick ledger dump byte-for-byte against
// testdata/ledger-quick.golden.json — the file CI diffs fresh builds
// against with cmd/tuediff. Intentional attribution changes regenerate
// it with
//
//	go test ./cmd/tuebench -run TestLedgerDumpGolden -update
func TestLedgerDumpGolden(t *testing.T) {
	got := renderLedgerDump(t)
	golden := filepath.Join("testdata", "ledger-quick.golden.json")

	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden dump (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ledger dump differs from %s\n(inspect with: go run ./cmd/tuediff %s <(go run ./cmd/tuebench -quick -ledger-out /dev/stdout);\n regenerate intentionally with: go test ./cmd/tuebench -run TestLedgerDumpGolden -update)",
			golden, golden)
	}
}

// TestLedgerDumpDeterministic asserts two in-process regenerations are
// byte-identical and structurally sound: every cell's causes sum to its
// traffic.
func TestLedgerDumpDeterministic(t *testing.T) {
	a, b := renderLedgerDump(t), renderLedgerDump(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two ledger dumps from the same process differ")
	}
	var dump ledgerDump
	if err := json.Unmarshal(a, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(dump.Cells) == 0 {
		t.Fatal("dump has no cells")
	}
	for key, cell := range dump.Cells {
		if got := cell.Causes.Total(); got != cell.Traffic {
			t.Errorf("%s: causes sum to %d, traffic %d", key, got, cell.Traffic)
		}
	}
}
