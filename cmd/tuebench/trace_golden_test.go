package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cloudsync/internal/core"
	"cloudsync/internal/obs"
)

// TestQuickGoldenWithTracing re-renders the full -quick table set with
// a live tracer installed and pins it against the same golden as the
// untraced run: instrumentation must never perturb simulated results.
// A tracing-induced divergence — an extra RNG draw, a reordered pass,
// a span leaking into output — fails here byte-for-byte.
func TestQuickGoldenWithTracing(t *testing.T) {
	var clock time.Duration
	tr := obs.NewSimTracer(func() time.Duration { clock += time.Microsecond; return clock })
	core.SetTracer(tr)
	defer core.SetTracer(nil)

	got := quickTables()
	want, err := os.ReadFile(filepath.Join("testdata", "quick.golden"))
	if err != nil {
		t.Fatalf("reading golden snapshot: %v", err)
	}
	if got != string(want) {
		t.Fatal("tuebench -quick output changed when tracing was enabled; " +
			"instrumentation must be invisible to simulated results " +
			"(run TestQuickGolden for the line-level diff)")
	}
	if len(tr.Spans()) == 0 {
		t.Fatal("tracer recorded no spans — the traced run was not actually traced")
	}
}
