package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"cloudsync/internal/core"
	"cloudsync/internal/obs/ledger"
)

// ledgerDump is the on-disk shape of `tuebench -ledger-out`: one entry
// per explain-experiment cell, keyed "section/service/param", each
// carrying its full per-cause byte breakdown. The dump is what
// cmd/tuediff consumes to flag attribution drift between two builds.
type ledgerDump struct {
	// Cells maps "section/service/param" to that cell's decomposition.
	Cells map[string]ledgerDumpCell `json:"cells"`
}

type ledgerDumpCell struct {
	Causes  ledger.Snapshot `json:"causes"`
	Traffic int64           `json:"traffic"`
}

// dumpKey names a cell deterministically. Sizes print as plain byte
// counts and loss probabilities as %g, so keys are stable across runs
// and readable in diffs.
func dumpKey(section string, c core.ExplainCell) string {
	var param string
	switch section {
	case "faults":
		param = strconv.FormatFloat(c.Param, 'g', -1, 64)
	default:
		param = strconv.FormatInt(int64(c.Param), 10)
	}
	return section + "/" + c.Service.String() + "/" + param
}

// buildLedgerDump flattens an explain result into the dump shape.
func buildLedgerDump(res core.ExplainResult) ledgerDump {
	dump := ledgerDump{Cells: map[string]ledgerDumpCell{}}
	for section, cells := range map[string][]core.ExplainCell{
		"creation": res.Creation, "modification": res.Modification, "faults": res.Faults,
	} {
		for _, c := range cells {
			key := dumpKey(section, c)
			if _, dup := dump.Cells[key]; dup {
				panic(fmt.Sprintf("tuebench: duplicate ledger dump key %q", key))
			}
			dump.Cells[key] = ledgerDumpCell{Causes: c.Causes, Traffic: c.Traffic}
		}
	}
	return dump
}

// writeLedgerDump renders an explain result as the canonical JSON dump
// (sorted keys, indented — stable bytes for goldens and diffs).
func writeLedgerDump(w io.Writer, res core.ExplainResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildLedgerDump(res))
}
