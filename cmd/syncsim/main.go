// Command syncsim runs a single ad-hoc sync simulation from flags: one
// service, one access method, one operation, one network/hardware
// configuration — and prints the resulting traffic and TUE. It is the
// quickest way to poke at a single cell of the paper's design space.
//
// Examples:
//
//	syncsim -service dropbox -op create -size 10485760
//	syncsim -service "google drive" -op append -x 5 -total 1048576
//	syncsim -service box -access mobile -op modify -size 1048576 -bj
//	syncsim -service dropbox -op create -trace out.json -report
//
// -trace writes the simulation's span tree (sync rounds, sessions,
// network activity, all on the virtual clock) as Chrome trace_event
// JSON; -report prints the same tree as indented text. See
// docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/hardware"
	"cloudsync/internal/metrics"
	"cloudsync/internal/netem"
	"cloudsync/internal/obs"
	"cloudsync/internal/service"
	"cloudsync/internal/simclock"
)

func parseService(s string) (service.Name, error) {
	for _, n := range service.All() {
		if strings.EqualFold(n.String(), s) ||
			strings.EqualFold(strings.ReplaceAll(n.String(), " ", ""), s) {
			return n, nil
		}
	}
	return 0, fmt.Errorf("unknown service %q", s)
}

func parseAccess(s string) (client.AccessMethod, error) {
	switch strings.ToLower(s) {
	case "pc":
		return client.PC, nil
	case "web":
		return client.Web, nil
	case "mobile":
		return client.Mobile, nil
	}
	return 0, fmt.Errorf("unknown access method %q (pc, web, mobile)", s)
}

func parseHardware(s string) (hardware.Profile, error) {
	for _, p := range hardware.All() {
		if strings.EqualFold(p.Name, s) {
			return p, nil
		}
	}
	return hardware.Profile{}, fmt.Errorf("unknown machine %q (M1-M4, B1-B4)", s)
}

func main() {
	var (
		svcName = flag.String("service", "dropbox", "service (google drive, onedrive, dropbox, box, ubuntu one, sugarsync)")
		access  = flag.String("access", "pc", "access method (pc, web, mobile)")
		op      = flag.String("op", "create", "operation (create, modify, delete, download, append, batch)")
		size    = flag.Int64("size", 1<<20, "file size in bytes")
		text    = flag.Bool("text", false, "compressible text content instead of random")
		x       = flag.Float64("x", 1, "append period in seconds (op=append)")
		total   = flag.Int64("total", 1<<20, "total appended bytes (op=append)")
		count   = flag.Int("count", 100, "file count (op=batch)")
		bj      = flag.Bool("bj", false, "run from the Beijing vantage point")
		bps     = flag.Int64("bps", 0, "custom bandwidth in bits/s (overrides -bj)")
		rttMs   = flag.Int("rtt", 0, "custom RTT in milliseconds (with -bps)")
		machine = flag.String("hw", "M1", "client machine (Table 4: M1-M4, B1-B4)")

		traceOut = flag.String("trace", "", "write a Chrome trace_event file of the run's spans (virtual clock)")
		report   = flag.Bool("report", false, "print the span tree as indented text")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "syncsim: %v\n", err)
		os.Exit(1)
	}

	svc, err := parseService(*svcName)
	if err != nil {
		fail(err)
	}
	acc, err := parseAccess(*access)
	if err != nil {
		fail(err)
	}
	hw, err := parseHardware(*machine)
	if err != nil {
		fail(err)
	}
	opts := service.Options{Hardware: hw}
	if *bj {
		opts.Link = netem.Beijing()
	}
	if *bps > 0 {
		opts.Link = netem.Custom(*bps, time.Duration(*rttMs)*time.Millisecond)
	}
	var tracer *obs.Tracer
	if *traceOut != "" || *report {
		// The tracer reads the same virtual clock the setup runs on, so
		// span timestamps are deterministic simulation time.
		clk := simclock.New()
		tracer = obs.NewSimTracer(clk.Now)
		opts.Clock = clk
		opts.Tracer = tracer
	}
	s := service.NewSetup(svc, acc, opts)

	mkBlob := func(seed int64) *content.Blob {
		if *text {
			return content.Text(*size, seed)
		}
		return content.Random(*size, seed)
	}

	var updateSize int64
	switch *op {
	case "create":
		if err := s.FS.Create("file.bin", mkBlob(1)); err != nil {
			fail(err)
		}
		updateSize = *size
	case "modify":
		if err := s.FS.Create("file.bin", mkBlob(1)); err != nil {
			fail(err)
		}
		s.Clock.Run()
		s.Capture.Reset()
		if err := s.FS.ModifyByte("file.bin", *size/2); err != nil {
			fail(err)
		}
		updateSize = 1
	case "delete":
		if err := s.FS.Create("file.bin", mkBlob(1)); err != nil {
			fail(err)
		}
		s.Clock.Run()
		s.Capture.Reset()
		if err := s.FS.Delete("file.bin"); err != nil {
			fail(err)
		}
		updateSize = 1
	case "download":
		if err := s.FS.Create("file.bin", mkBlob(1)); err != nil {
			fail(err)
		}
		s.Clock.Run()
		s.Capture.Reset()
		if err := s.Client.Download("file.bin", nil); err != nil {
			fail(err)
		}
		updateSize = *size
	case "append":
		if err := s.FS.Create("file.bin", content.Random(0, 1)); err != nil {
			fail(err)
		}
		s.Clock.Run()
		s.Capture.Reset()
		step := int64(*x * 1024)
		var scheduled int64
		for i := int64(1); scheduled < *total; i++ {
			n := step
			if scheduled+n > *total {
				n = *total - scheduled
			}
			scheduled += n
			grow := n
			s.Clock.At(time.Duration(float64(i)*(*x)*float64(time.Second)), func() {
				if err := s.FS.Append("file.bin", grow); err != nil {
					fail(err)
				}
			})
		}
		updateSize = *total
	case "batch":
		for i := 0; i < *count; i++ {
			if err := s.FS.Create(fmt.Sprintf("batch/f%04d", i), mkBlob(int64(i+1))); err != nil {
				fail(err)
			}
		}
		updateSize = int64(*count) * *size
	default:
		fail(fmt.Errorf("unknown op %q", *op))
	}

	s.Clock.Run()
	up, down := s.Capture.UpBytes(), s.Capture.DownBytes()
	fmt.Printf("service:   %s (%s)\n", svc, acc)
	fmt.Printf("operation: %s\n", *op)
	fmt.Printf("traffic:   up %s, down %s, total %s (overhead %s)\n",
		metrics.HumanBytes(up), metrics.HumanBytes(down),
		metrics.HumanBytes(up+down), metrics.HumanBytes(s.Capture.OverheadBytes()))
	fmt.Printf("sessions:  %d (virtual time %v)\n", s.Client.Stats().Sessions, s.Clock.Now())
	if updateSize > 0 {
		fmt.Printf("TUE:       %.2f (update size %s)\n",
			float64(up+down)/float64(updateSize), metrics.HumanBytes(updateSize))
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "syncsim: trace written to %s (%d spans; open in chrome://tracing or Perfetto)\n",
			*traceOut, len(tracer.Spans()))
	}
	if *report {
		fmt.Print(tracer.Report())
	}
}
