package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudsync/internal/obs/ledger"
)

func writeTestDump(t *testing.T, name string, cells map[string]map[ledger.Cause]int64) string {
	t.Helper()
	d := dump{Cells: map[string]struct {
		Causes  ledger.Snapshot `json:"causes"`
		Traffic int64           `json:"traffic"`
	}{}}
	for key, causes := range cells {
		var snap ledger.Snapshot
		led := &ledger.Ledger{}
		for c, n := range causes {
			led.Add(c, n)
		}
		snap = led.Snapshot()
		d.Cells[key] = struct {
			Causes  ledger.Snapshot `json:"causes"`
			Traffic int64           `json:"traffic"`
		}{Causes: snap, Traffic: snap.Total()}
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(d); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffAgreement(t *testing.T) {
	cells := map[string]map[ledger.Cause]int64{
		"creation/Dropbox/1024": {ledger.Metadata: 100, ledger.Payload: 1024, ledger.Framing: 32},
	}
	a := mustRead(t, writeTestDump(t, "a.json", cells))
	b := mustRead(t, writeTestDump(t, "b.json", cells))
	if code := diff(a, b, 0, 0); code != 0 {
		t.Fatalf("identical dumps: exit %d, want 0", code)
	}
}

func TestDiffFlagsDrift(t *testing.T) {
	a := mustRead(t, writeTestDump(t, "a.json", map[string]map[ledger.Cause]int64{
		"creation/Dropbox/1024": {ledger.Metadata: 100, ledger.Payload: 1024},
	}))
	b := mustRead(t, writeTestDump(t, "b.json", map[string]map[ledger.Cause]int64{
		"creation/Dropbox/1024": {ledger.Metadata: 100, ledger.Payload: 1500},
	}))
	if code := diff(a, b, 0, 0); code != 1 {
		t.Fatalf("payload drifted 1024->1500: exit %d, want 1", code)
	}
	// Large absolute tolerance forgives it; percentage alone does not
	// (46% > 10%).
	if code := diff(a, b, 1000, 0); code != 0 {
		t.Fatalf("drift within -tolerance-bytes 1000: exit %d, want 0", code)
	}
	if code := diff(a, b, 0, 10); code != 1 {
		t.Fatalf("46%% drift with -tolerance-pct 10: exit %d, want 1", code)
	}
	if code := diff(a, b, 0, 50); code != 0 {
		t.Fatalf("46%% drift with -tolerance-pct 50: exit %d, want 0", code)
	}
}

func TestDiffFlagsNewAndMissingCells(t *testing.T) {
	a := mustRead(t, writeTestDump(t, "a.json", map[string]map[ledger.Cause]int64{
		"creation/Dropbox/1024": {ledger.Payload: 1},
		"creation/Box/1024":     {ledger.Payload: 2},
	}))
	b := mustRead(t, writeTestDump(t, "b.json", map[string]map[ledger.Cause]int64{
		"creation/Dropbox/1024": {ledger.Payload: 1},
		"faults/Dropbox/0.05":   {ledger.Retransmit: 3},
	}))
	if code := diff(a, b, 1<<30, 100); code != 1 {
		t.Fatal("new and missing cells must fail regardless of tolerance")
	}
}

func TestReadDumpRejectsUnknownCause(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	body := `{"cells":{"x/y/1":{"causes":{"wormhole":9},"traffic":9}}}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readDump(path); err == nil || !strings.Contains(err.Error(), "wormhole") {
		t.Fatalf("unknown cause accepted, err=%v", err)
	}
}

func mustRead(t *testing.T, path string) dump {
	t.Helper()
	d, err := readDump(path)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
