// Command tuediff compares two traffic-attribution ledger dumps
// produced by `tuebench -ledger-out` and flags per-cause drift: cells
// that appeared or vanished, and causes whose byte counts moved beyond
// the tolerance. Exit status 1 means drift was found, 2 means the
// inputs could not be read — so CI can pin a build's attribution
// against a committed golden with a single command:
//
//	tuebench -quick -ledger-out new.json
//	tuediff cmd/tuebench/testdata/ledger-quick.golden.json new.json
//
// Tolerances default to zero (any byte of drift fails); loosen with
//
//	tuediff -tolerance-bytes 64 -tolerance-pct 1 old.json new.json
//
// A cause passes if it is within EITHER tolerance, so -tolerance-pct
// alone still permits small absolute wobbles on tiny cells only when
// -tolerance-bytes allows them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"cloudsync/internal/obs/ledger"
)

// dump mirrors tuebench's -ledger-out shape. The cause map is decoded
// through ledger.Snapshot, so an unknown cause name in either file is a
// read error, not silent drift.
type dump struct {
	Cells map[string]struct {
		Causes  ledger.Snapshot `json:"causes"`
		Traffic int64           `json:"traffic"`
	} `json:"cells"`
}

func readDump(path string) (dump, error) {
	var d dump
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Cells) == 0 {
		return d, fmt.Errorf("%s: no cells (not a tuebench -ledger-out dump?)", path)
	}
	return d, nil
}

// withinTolerance reports whether a cause's move from old to new bytes
// is acceptable under either the absolute or the relative bound.
func withinTolerance(old, new, tolBytes int64, tolPct float64) bool {
	delta := new - old
	if delta < 0 {
		delta = -delta
	}
	if delta <= tolBytes {
		return true
	}
	if tolPct > 0 && old > 0 {
		return float64(delta)/float64(old)*100 <= tolPct
	}
	return false
}

func main() {
	var (
		tolBytes = flag.Int64("tolerance-bytes", 0, "absolute per-cause drift allowed, in bytes")
		tolPct   = flag.Float64("tolerance-pct", 0, "relative per-cause drift allowed, in percent of the old value")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tuediff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldDump, err := readDump(flag.Arg(0))
	if err == nil {
		var newDump dump
		newDump, err = readDump(flag.Arg(1))
		if err == nil {
			os.Exit(diff(oldDump, newDump, *tolBytes, *tolPct))
		}
	}
	fmt.Fprintf(os.Stderr, "tuediff: %v\n", err)
	os.Exit(2)
}

// diff prints every divergence and returns the exit status: 0 when the
// dumps agree within tolerance, 1 otherwise.
func diff(oldDump, newDump dump, tolBytes int64, tolPct float64) int {
	keys := map[string]bool{}
	for k := range oldDump.Cells {
		keys[k] = true
	}
	for k := range newDump.Cells {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	drifts := 0
	for _, key := range sorted {
		oldCell, inOld := oldDump.Cells[key]
		newCell, inNew := newDump.Cells[key]
		switch {
		case !inOld:
			fmt.Printf("NEW     %-40s traffic %d\n", key, newCell.Traffic)
			drifts++
			continue
		case !inNew:
			fmt.Printf("MISSING %-40s traffic was %d\n", key, oldCell.Traffic)
			drifts++
			continue
		}
		for _, c := range ledger.Causes() {
			o, n := oldCell.Causes.Get(c), newCell.Causes.Get(c)
			if o == n || withinTolerance(o, n, tolBytes, tolPct) {
				continue
			}
			pct := math.Inf(1)
			if o > 0 {
				pct = float64(n-o) / float64(o) * 100
			}
			fmt.Printf("DRIFT   %-40s %-13s %d -> %d (%+d bytes, %+.1f%%)\n",
				key, c, o, n, n-o, pct)
			drifts++
		}
	}
	if drifts > 0 {
		fmt.Printf("tuediff: %d divergence(s) beyond tolerance (bytes=%d, pct=%g)\n",
			drifts, tolBytes, tolPct)
		return 1
	}
	fmt.Printf("tuediff: %d cells agree within tolerance (bytes=%d, pct=%g)\n",
		len(sorted), tolBytes, tolPct)
	return 0
}
