// Command traceanalyze reads a trace CSV (written by tracegen) and
// prints the paper's trace-driven analyses: the Fig. 2 size CDFs, the
// §§ 4–5 headline statistics, the per-service counts of Table 2, and
// the Fig. 5 deduplication-ratio-vs-block-size series.
//
// Usage:
//
//	tracegen -scale 0.1 | traceanalyze
//	traceanalyze -i trace.csv -fig5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cloudsync/internal/core"
	"cloudsync/internal/metrics"
	"cloudsync/internal/trace"
)

func main() {
	var (
		in    = flag.String("i", "", "input trace CSV (default: stdin)")
		fig5  = flag.Bool("fig5", false, "also compute the Fig. 5 dedup-ratio series (slow on big traces)")
		fig2  = flag.Bool("fig2", true, "print the Fig. 2 size CDFs")
		stats = flag.Bool("stats", true, "print the headline statistics")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceanalyze: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	recs, err := trace.ReadCSV(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceanalyze: %v\n", err)
		os.Exit(1)
	}

	counts := trace.PerServiceCounts(recs)
	tb := metrics.Table{Header: []string{"Service", "Users", "Files"}}
	var services []string
	for svc := range counts {
		services = append(services, svc)
	}
	sort.Strings(services)
	for _, svc := range services {
		c := counts[svc]
		tb.AddRow(svc, fmt.Sprintf("%d", c[0]), fmt.Sprintf("%d", c[1]))
	}
	fmt.Println("Per-service counts (cf. Table 2)")
	fmt.Println(tb.String())

	if *stats {
		fmt.Println(core.RenderFindings(trace.Analyze(recs)))
	}
	if *fig2 {
		points, orig, comp := core.Fig2(recs)
		fmt.Println(core.RenderFig2(points, orig, comp))
	}
	if *fig5 {
		fmt.Println(core.RenderFig5(core.Fig5(recs)))
	}
}
