package cloudsync_test

// Documentation gates: every Go package carries a package-level doc
// comment, every relative link in the Markdown tree resolves, and
// every Makefile target is documented in the README. These run in the
// ordinary test suite (and as CI's docs step) so the docs cannot drift
// silently the way they did before docs/ARCHITECTURE.md existed.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goPackageDirs returns every directory in the repository that holds
// non-test Go files, relative to the repo root (the directory of this
// test).
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	dirs := make(map[string]bool)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// TestPackageDocs fails on any package without a package-level doc
// comment — the contract docs/ARCHITECTURE.md's package map relies on.
func TestPackageDocs(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package-level doc comment", name, dir)
			}
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks resolves every relative link in the Markdown tree
// (repo root + docs/) against the filesystem. Files that quote
// external material verbatim (paper abstracts, exemplar snippets from
// other repositories) carry links into trees we do not vendor and are
// skipped.
func TestDocLinks(t *testing.T) {
	quoted := map[string]bool{
		"PAPER.md": true, "PAPERS.md": true, "SNIPPETS.md": true, "ISSUE.md": true,
	}
	var files []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m {
			if !quoted[f] {
				files = append(files, f)
			}
		}
	}
	if len(files) < 5 {
		t.Fatalf("only %d markdown files found; glob broken?", len(files))
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", file, m[1], err)
			}
		}
	}
}

// TestMakefileTargetsDocumented: every target declared in the Makefile
// must be mentioned as `make <target>` in README.md, so the README's
// target table cannot rot.
func TestMakefileTargetsDocumented(t *testing.T) {
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	targetLine := regexp.MustCompile(`(?m)^([a-z][a-z0-9-]*):`)
	targets := 0
	for _, m := range targetLine.FindAllStringSubmatch(string(mk), -1) {
		targets++
		if !strings.Contains(string(readme), "make "+m[1]) {
			t.Errorf("Makefile target %q is not documented in README.md (expected `make %s`)", m[1], m[1])
		}
	}
	if targets < 5 {
		t.Fatalf("only %d Makefile targets parsed; regexp broken?", targets)
	}
}
