GO ?= go

.PHONY: check build vet test race bench tuebench

# check is the full gate: compile everything, vet, and run the test
# suite under the race detector (the experiment layer is concurrent).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ ./...

tuebench:
	$(GO) run ./cmd/tuebench -quick
