GO ?= go

.PHONY: check build vet test race bench bench-obs bench-core bench-scale bench-diff bench-kernel-diff bench-load bench-load-diff tuebench

# check is the full gate: compile everything, vet, and run the test
# suite under the race detector (the experiment layer is concurrent).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ ./...

# bench-obs measures the observability tax: every <Base>Off/<Base>On
# benchmark pair (nil tracer/registry vs instrumented) across the obs
# primitives and the syncnet hot path, summarised as overhead
# percentages in BENCH_obs.json. Target: spans/counters on the nil
# path free, instrumented sync path within a few percent.
bench-obs:
	$(GO) test -bench 'ObsO(ff|n)$$' -benchmem -run '^$$' \
		./internal/obs ./internal/syncnet \
		| $(GO) run ./internal/obs/benchjson > BENCH_obs.json
	cat BENCH_obs.json

# KERNEL_PKGS are the data-plane kernel packages (chunking and delta
# scan); KERNEL_FILTER selects their entries out of BENCH_core.json for
# the failing throughput gate. Kernels run at a real -benchtime (unlike
# the 1x experiment tables) so the recorded MB/s figures are stable.
KERNEL_PKGS = ./internal/chunker ./internal/delta
KERNEL_FILTER = ^(Fixed$$|ContentDefined|Delta|WeakSum$$)

# bench-core records the experiment-table baseline — every root-package
# benchmark (the paper tables and figures) at -benchtime 1x — plus the
# chunker/delta kernel benchmarks at a real benchtime with their MB/s
# captured, dumped together into BENCH_core.json. ns/op is
# machine-dependent — the trajectory to watch is allocation counts,
# relative shape, and kernel throughput ratios.
bench-core:
	{ $(GO) test -bench . -benchmem -benchtime 1x -run '^$$' . ; \
	  $(GO) test -bench . -benchmem -benchtime 0.5s -run '^$$' $(KERNEL_PKGS) ; } \
		| $(GO) run ./internal/obs/benchjson -raw > BENCH_core.json
	cat BENCH_core.json

# bench-scale records the multi-tenant scale-replay baseline: the trace
# replayed at 8× synthetic user multiples on the sharded index/cloud,
# reporting wall time, heap growth, peak RSS, and per-service TUE
# (which must match the 1× baseline exactly) into BENCH_scale.json.
bench-scale:
	$(GO) run ./cmd/tuebench scale -n 8 \
		| $(GO) run ./internal/obs/benchjson -raw > BENCH_scale.json
	cat BENCH_scale.json

# bench-diff re-measures the core benchmarks and diffs their allocation
# counts against the committed BENCH_core.json baseline. Exit 1 on a
# regression beyond the tolerance; CI runs this warn-only.
bench-diff:
	{ $(GO) test -bench . -benchmem -benchtime 1x -run '^$$' . ; \
	  $(GO) test -bench . -benchmem -benchtime 0.5s -run '^$$' $(KERNEL_PKGS) ; } \
		| $(GO) run ./internal/obs/benchjson -raw > /tmp/bench_core_new.json
	$(GO) run ./internal/obs/benchjson -compare BENCH_core.json /tmp/bench_core_new.json -tolerance-pct 10

# bench-kernel-diff is the failing CI gate on the data-plane kernels:
# re-measure only the chunker/delta benchmarks and diff allocation
# counts (tight, machine-independent) and MB/s throughput (loose —
# absolute throughput moves with the machine, so the 50% default only
# catches falling off an algorithmic cliff: losing the gear-hash skip
# scan, the tag bitmap, or the batched hashing is a 2–10x drop) against
# the kernel entries of BENCH_core.json.
bench-kernel-diff:
	$(GO) test -bench . -benchmem -benchtime 0.5s -run '^$$' $(KERNEL_PKGS) \
		| $(GO) run ./internal/obs/benchjson -raw > /tmp/bench_kernel_new.json
	$(GO) run ./internal/obs/benchjson -compare BENCH_core.json /tmp/bench_kernel_new.json \
		-tolerance-pct 10 -throughput-tolerance-pct 50 -filter '$(KERNEL_FILTER)'

# bench-load records the live-sync throughput baseline: syncload drives
# open-loop arrivals of small-file batches against an in-process syncd
# over real TCP in all three modes (lockstep, pipelined, bundle) at a
# rate past lockstep saturation, verifying ledger exactness as it goes,
# and writes sustained req/s, latency quantiles, and peak RSS per mode
# into BENCH_load.json. The headline is the shape: the batched paths
# must sustain a multiple of lockstep's files/s at equal-or-better p99.
SYNCLOAD_ARGS = -accounts 256 -rate 8000 -duration 4s -batch 8 \
	-max-size 4096 -seed 1 -check -quiet

bench-load:
	$(GO) run ./cmd/syncload $(SYNCLOAD_ARGS) -json BENCH_load.json
	cat BENCH_load.json

# bench-load-diff re-runs the load scenario and diffs it against the
# committed BENCH_load.json: a sustained-throughput drop or p99 growth
# beyond the tolerance fails. Load numbers are noisier than allocation
# counts, hence the loose tolerance; CI runs this warn-only.
bench-load-diff:
	$(GO) run ./cmd/syncload $(SYNCLOAD_ARGS) -json /tmp/bench_load_new.json
	$(GO) run ./internal/obs/benchjson -compare BENCH_load.json /tmp/bench_load_new.json -tolerance-pct 30

tuebench:
	$(GO) run ./cmd/tuebench -quick
