package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Updates are a single
// atomic add; a nil *Counter is a valid no-op.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by n (negative n is ignored — counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a valid
// no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add shifts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of finite histogram buckets: upper bounds
// 2^0, 2^1, …, 2^(HistBuckets-1), plus an implicit +Inf bucket.
const HistBuckets = 41

// Histogram counts observations into fixed power-of-two buckets
// (upper bounds 1, 2, 4, …, 2^40, +Inf). The fixed log scale keeps
// Observe a single atomic add with no configuration or allocation, and
// one shape serves both byte volumes (up to a terabyte) and
// microsecond durations (up to ~13 days). A nil *Histogram is a valid
// no-op.
type Histogram struct {
	buckets [HistBuckets + 1]atomic.Int64 // [HistBuckets] = +Inf
	sum     atomic.Int64
	count   atomic.Int64
}

// bucketIndex returns the index of the smallest bucket whose upper
// bound is ≥ v. Values ≤ 1 (including negatives) land in bucket 0.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(v - 1)) // smallest p with 2^p ≥ v
	if idx >= HistBuckets {
		return HistBuckets // +Inf
	}
	return idx
}

// BucketBound reports bucket i's upper bound (math.MaxInt64 stands in
// for +Inf).
func BucketBound(i int) int64 {
	if i >= HistBuckets {
		return int64(^uint64(0) >> 1)
	}
	return int64(1) << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// QuantileStepTolerancePct is the smallest relative band (in percent)
// within which two Quantile results must be treated as equal: adjacent
// representable answers inside one power-of-two bucket can differ by
// up to the bucket's full width, i.e. up to 2×. Comparisons of
// quantiles — regression gates, phase decompositions, bench diffs —
// must therefore never use a tolerance tighter than this; the
// bench-load diff floor in cmd (obs/benchjson) is built on it.
const QuantileStepTolerancePct = 125

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values
// by log-linear interpolation within the power-of-two bucket holding
// the target rank.
//
// Resolution contract: the answer is exact only to the width of the
// bucket the rank lands in. Buckets double, so the true quantile can
// be anywhere in (bound/2, bound] — a worst-case ~2× relative error,
// though interpolation does far better when observations spread inside
// the bucket. Two quantiles closer than QuantileStepTolerancePct
// percent apart are indistinguishable on this scale and must not be
// compared more finely (phase decompositions and bench gates included).
// Returns 0 on a nil or empty histogram; ranks landing in the +Inf
// bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := 0; i <= HistBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= HistBuckets {
				return BucketBound(HistBuckets - 1)
			}
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			// Linear interpolation of the rank's position within the
			// bucket's value range.
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo)+0.5)
		}
		cum += n
	}
	return BucketBound(HistBuckets - 1)
}

// metricKind tags a registered name for rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	kind metricKind
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. Registration takes a
// mutex; the returned instruments update lock-free, so the hot path
// never contends. Safe for concurrent use. A nil *Registry hands out
// nil instruments, which are themselves no-ops — the zero-overhead
// contract for unobserved runs.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	if !ok {
		m = &metric{kind: kind, help: help}
		switch kind {
		case kindCounter:
			m.c = &Counter{}
		case kindGauge:
			m.g = &Gauge{}
		case kindHistogram:
			m.h = &Histogram{}
		}
		r.metrics[name] = m
		return m
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	return m
}

// Counter returns the named counter, creating it on first use.
// Registering the same name twice returns the same instrument; the
// same name as a different type panics. A nil registry returns nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter).c
}

// Gauge returns the named gauge, creating it on first use (nil on a
// nil registry).
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge).g
}

// Histogram returns the named histogram, creating it on first use (nil
// on a nil registry).
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram).h
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE comments followed
// by the samples, names sorted for stable output. Histograms emit
// cumulative _bucket{le="…"} samples plus _sum and _count. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	snapshot := make(map[string]*metric, len(r.metrics))
	for name, m := range r.metrics {
		snapshot[name] = m
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		m := snapshot[name]
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, m.help)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, m.g.Value())
		case kindHistogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			var cum int64
			for i := 0; i <= HistBuckets; i++ {
				cum += m.h.buckets[i].Load()
				le := "+Inf"
				if i < HistBuckets {
					le = strconv.FormatInt(int64(1)<<uint(i), 10)
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, le, cum)
			}
			fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, m.h.Sum(), name, m.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
