package ledger

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cloudsync/internal/obs"
)

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Add(Payload, 100)
	l.Reset()
	l.MergeSnapshot(Snapshot{})
	l.AttachTo(nil)
	if got := l.Get(Payload); got != 0 {
		t.Fatalf("nil Get = %d", got)
	}
	if got := l.Total(); got != 0 {
		t.Fatalf("nil Total = %d", got)
	}
	if s := l.Snapshot(); s.Total() != 0 {
		t.Fatalf("nil Snapshot total = %d", s.Total())
	}
}

func TestAddGetTotal(t *testing.T) {
	l := New()
	l.Add(Payload, 1000)
	l.Add(Metadata, 50)
	l.Add(Payload, 24)
	l.Add(Framing, 0)    // ignored
	l.Add(Payload, -5)   // ignored
	l.Add(Unset, 99)     // ignored
	l.Add(NumCauses, 99) // ignored
	if got := l.Get(Payload); got != 1024 {
		t.Errorf("Payload = %d, want 1024", got)
	}
	if got := l.Total(); got != 1074 {
		t.Errorf("Total = %d, want 1074", got)
	}
	l.Reset()
	if got := l.Total(); got != 0 {
		t.Errorf("Total after Reset = %d", got)
	}
}

func TestCauseStringRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Causes() {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate cause label %q", s)
		}
		seen[s] = true
		back, ok := CauseFromString(s)
		if !ok || back != c {
			t.Errorf("CauseFromString(%q) = %v,%v, want %v,true", s, back, ok, c)
		}
	}
	if _, ok := CauseFromString("unset"); ok {
		t.Error("CauseFromString(unset) should report false")
	}
	if _, ok := CauseFromString("bogus"); ok {
		t.Error("CauseFromString(bogus) should report false")
	}
}

func TestSnapshotMergeAssociative(t *testing.T) {
	a := Snapshot{Metadata: 1, Payload: 2}
	b := Snapshot{Payload: 10, Framing: 3}
	c := Snapshot{Retransmit: 7}
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left != right {
		t.Fatalf("merge not associative: %v vs %v", left, right)
	}
	if left.Get(Payload) != 12 || left.Total() != 23 {
		t.Fatalf("merged = %v", left)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := Snapshot{Metadata: 5, Payload: 1024, Framing: 33}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Every cause is present even when zero, so dump shapes are stable.
	for _, c := range Causes() {
		if !bytes.Contains(b, []byte(`"`+c.String()+`"`)) {
			t.Errorf("marshalled snapshot missing cause %q: %s", c, b)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: got %v want %v", back, s)
	}
	if err := json.Unmarshal([]byte(`{"warp_drive":1}`), &back); err == nil {
		t.Fatal("unknown cause should fail to unmarshal")
	}
}

func TestWritePrometheus(t *testing.T) {
	l := New()
	l.Add(Payload, 2048)
	var buf bytes.Buffer
	if err := l.WritePrometheus(&buf, "sync_wire_bytes"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sync_wire_bytes counter",
		`sync_wire_bytes{cause="payload"} 2048`,
		`sync_wire_bytes{cause="framing"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTable(t *testing.T) {
	l := New()
	l.Add(Payload, 900)
	l.Add(Framing, 100)
	out := l.Table("session breakdown")
	for _, want := range []string{"session breakdown", "payload", "90.0%", "framing", "10.0%", "total", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "resume") {
		t.Errorf("zero causes should be omitted:\n%s", out)
	}
}

func TestAttachTo(t *testing.T) {
	tr := obs.NewTracer()
	sp := tr.Start("cell")
	l := New()
	l.Add(DedupProbe, 16)
	l.Add(Payload, 4096)
	l.AttachTo(sp)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	d := spans[0]
	if got := d.Attr("cause_payload"); got != "4096" {
		t.Errorf("cause_payload = %q", got)
	}
	if got := d.Attr("cause_dedup_probe"); got != "16" {
		t.Errorf("cause_dedup_probe = %q", got)
	}
	if got := d.Attr("cause_total"); got != "4112" {
		t.Errorf("cause_total = %q", got)
	}
	if got := d.Attr("cause_resume"); got != "" {
		t.Errorf("zero cause attached: %q", got)
	}
}
