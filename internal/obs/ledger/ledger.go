// Package ledger is the per-byte traffic-attribution layer on top of
// the obs substrate: every wire byte a sync path emits is charged to a
// typed Cause, so a TUE number stops being an opaque scalar and becomes
// a table — the decomposition move of the paper's Tables 6–9.
//
// A Ledger is a fixed array of atomic counters, one per Cause. Like the
// rest of internal/obs, a nil *Ledger is a valid no-op receiver, so the
// instrumented paths cost nothing when attribution is off. Snapshots
// are plain value types that merge associatively, which is what lets
// per-cell ledgers from the parallel experiment pool fold into one
// deterministic total regardless of worker count.
//
// The accounting contract every charging site maintains is exact:
// the sum over all causes equals the total wire bytes of the session
// or cell. internal/invariant checks it with CheckLedger.
package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Cause classifies why a wire byte was spent. The zero value Unset is
// not a cause: charging sites use it to mean "derive the cause from
// context" (for example from the capture packet kind).
type Cause uint8

const (
	// Unset asks the charging site to classify by context; it never
	// appears in a ledger.
	Unset Cause = iota
	// Metadata is sync-protocol control chatter: index updates and
	// replies, commits, acks, notifications, session setup.
	Metadata
	// Payload is file content transferred in full.
	Payload
	// DedupProbe is content-fingerprint traffic asking "do you already
	// have this?": file hashes, block hash lists, rsync signatures.
	DedupProbe
	// DeltaLiteral is the literal-data portion of a delta encoding —
	// the bytes that actually changed.
	DeltaLiteral
	// DeltaCopyRef is the copy-instruction portion of a delta encoding:
	// references to blocks the receiver already holds.
	DeltaCopyRef
	// Resume is retry/resume negotiation traffic (ResumeQuery and
	// ResumeInfo exchanges after a connection cut).
	Resume
	// Retransmit is bytes put on the wire again after having been sent
	// once — loss-triggered resends in the simulator, and re-sent
	// messages on live retry attempts.
	Retransmit
	// Framing is transport and record-layer overhead: message headers,
	// TCP/TLS handshakes, segment headers, acks, partial writes that
	// never formed a complete message.
	Framing

	// NumCauses bounds the Cause space (Unset excluded from storage).
	NumCauses
)

// Causes lists every real cause in stable render order.
func Causes() []Cause {
	return []Cause{Metadata, Payload, DedupProbe, DeltaLiteral, DeltaCopyRef, Resume, Retransmit, Framing}
}

// String returns the snake_case cause label used in Prometheus series,
// JSON dumps, and breakdown tables.
func (c Cause) String() string {
	switch c {
	case Unset:
		return "unset"
	case Metadata:
		return "metadata"
	case Payload:
		return "payload"
	case DedupProbe:
		return "dedup_probe"
	case DeltaLiteral:
		return "delta_literal"
	case DeltaCopyRef:
		return "delta_copyref"
	case Resume:
		return "resume"
	case Retransmit:
		return "retransmit"
	case Framing:
		return "framing"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// CauseFromString inverts String for the real causes. It reports false
// for "unset" and unknown labels.
func CauseFromString(s string) (Cause, bool) {
	for _, c := range Causes() {
		if c.String() == s {
			return c, true
		}
	}
	return Unset, false
}

// Ledger charges wire bytes to causes. All methods are safe for
// concurrent use, and all are no-ops on a nil receiver.
type Ledger struct {
	c [NumCauses]atomic.Int64
}

// New returns an empty ledger.
func New() *Ledger { return &Ledger{} }

// Add charges n bytes to cause c. Non-positive n and Unset/out-of-range
// causes are ignored, so charging sites can pass raw partial-write
// deltas without guarding.
func (l *Ledger) Add(c Cause, n int64) {
	if l == nil || n <= 0 || c == Unset || c >= NumCauses {
		return
	}
	l.c[c].Add(n)
}

// Get reports the bytes charged to cause c so far.
func (l *Ledger) Get(c Cause) int64 {
	if l == nil || c >= NumCauses {
		return 0
	}
	return l.c[c].Load()
}

// Total reports the bytes charged across all causes.
func (l *Ledger) Total() int64 {
	if l == nil {
		return 0
	}
	var t int64
	for _, c := range Causes() {
		t += l.c[c].Load()
	}
	return t
}

// Reset zeroes every counter.
func (l *Ledger) Reset() {
	if l == nil {
		return
	}
	for i := range l.c {
		l.c[i].Store(0)
	}
}

// Snapshot captures the current per-cause totals as a value.
func (l *Ledger) Snapshot() Snapshot {
	var s Snapshot
	if l == nil {
		return s
	}
	for _, c := range Causes() {
		s[c] = l.c[c].Load()
	}
	return s
}

// MergeSnapshot adds a snapshot's totals into the ledger — the
// cross-session merge path. Safe to call concurrently from the worker
// pool; the result is order-independent because each cause is a plain
// atomic sum.
func (l *Ledger) MergeSnapshot(s Snapshot) {
	if l == nil {
		return
	}
	for _, c := range Causes() {
		if s[c] > 0 {
			l.c[c].Add(s[c])
		}
	}
}

// WritePrometheus renders the ledger as one counter family in
// Prometheus text exposition format, one sample per cause:
//
//	name{cause="payload"} 1048576
func (l *Ledger) WritePrometheus(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s Wire bytes attributed by cause.\n# TYPE %s counter\n", name, name); err != nil {
		return err
	}
	s := l.Snapshot()
	for _, c := range Causes() {
		if _, err := fmt.Fprintf(w, "%s{cause=%q} %d\n", name, c, s[c]); err != nil {
			return err
		}
	}
	return nil
}

// Table renders the ledger as a per-session breakdown table: one row
// per non-zero cause with its share of the total, largest first, plus a
// total row. Intended for CLI "why was my TUE 1.7" output.
func (l *Ledger) Table(title string) string {
	return l.Snapshot().Table(title)
}

// Snapshot is a point-in-time per-cause byte breakdown. Index by Cause.
// Snapshots are plain values: merging is component-wise addition, so it
// is associative and commutative.
type Snapshot [NumCauses]int64

// Get reports the bytes for cause c.
func (s Snapshot) Get(c Cause) int64 {
	if c >= NumCauses {
		return 0
	}
	return s[c]
}

// Total reports the bytes across all causes.
func (s Snapshot) Total() int64 {
	var t int64
	for _, c := range Causes() {
		t += s[c]
	}
	return t
}

// Merge returns the component-wise sum of s and o.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	for _, c := range Causes() {
		s[c] += o[c]
	}
	return s
}

// MarshalJSON renders the snapshot as {"cause": bytes} with every real
// cause present (zeros included), so dumps from different builds always
// have the same shape for tuediff.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	m := make(map[string]int64, len(Causes()))
	for _, c := range Causes() {
		m[c.String()] = s[c]
	}
	return json.Marshal(m)
}

// UnmarshalJSON inverts MarshalJSON. Unknown cause labels are an error:
// a dump from a newer taxonomy should fail loudly, not drop bytes.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	var out Snapshot
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c, ok := CauseFromString(k)
		if !ok {
			return fmt.Errorf("ledger: unknown cause %q in snapshot", k)
		}
		out[c] = m[k]
	}
	*s = out
	return nil
}

// Table renders the snapshot as a breakdown table; see Ledger.Table.
func (s Snapshot) Table(title string) string {
	type row struct {
		c Cause
		n int64
	}
	var rows []row
	for _, c := range Causes() {
		if s[c] > 0 {
			rows = append(rows, row{c, s[c]})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	total := s.Total()

	var b []byte
	b = append(b, title...)
	b = append(b, '\n')
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = float64(r.n) / float64(total) * 100
		}
		b = append(b, fmt.Sprintf("  %-14s %12d B  %5.1f%%\n", r.c, r.n, pct)...)
	}
	b = append(b, fmt.Sprintf("  %-14s %12d B  100.0%%\n", "total", total)...)
	return string(b)
}
