package ledger

import "cloudsync/internal/obs"

// AttachTo stamps the snapshot's non-zero causes onto a span as
// "cause_<name>" attributes plus a "cause_total" sum, so trace exports
// carry the per-byte attribution next to the timing. Nil spans and
// empty snapshots leave the span untouched.
func (s Snapshot) AttachTo(span *obs.Span) {
	if span == nil {
		return
	}
	total := s.Total()
	if total == 0 {
		return
	}
	for _, c := range Causes() {
		if s[c] > 0 {
			span.Set("cause_"+c.String(), s[c])
		}
	}
	span.Set("cause_total", total)
}

// AttachTo stamps the ledger's current snapshot onto a span; see
// Snapshot.AttachTo. Nil ledgers are a no-op.
func (l *Ledger) AttachTo(span *obs.Span) { l.Snapshot().AttachTo(span) }
