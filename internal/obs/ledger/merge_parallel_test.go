package ledger

import (
	"testing"

	"cloudsync/internal/parallel"
)

// cellSnapshot builds a deterministic fake per-cell breakdown, the way
// an experiment grid produces one ledger snapshot per cell.
func cellSnapshot(i int) Snapshot {
	var s Snapshot
	causes := Causes()
	for j, c := range causes {
		s[c] = int64((i+1)*1000 + j*7 + (i*j)%13)
	}
	return s
}

// mergeVia runs the merge under the worker pool with n workers, both
// through the concurrent MergeSnapshot path and through a sequential
// snapshot fold, and returns the shared-ledger result.
func mergeVia(t *testing.T, workers, cells int) Snapshot {
	t.Helper()
	old := parallel.Workers()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(old)

	shared := New()
	snaps := parallel.Map(make([]struct{}, cells), func(i int, _ struct{}) Snapshot {
		s := cellSnapshot(i)
		shared.MergeSnapshot(s) // concurrent merge from pool workers
		return s
	})

	// Sequential fold over the pool's (order-preserving) results must
	// agree with the concurrent merge: addition is associative and
	// commutative, so interleaving cannot matter.
	var folded Snapshot
	for _, s := range snaps {
		folded = folded.Merge(s)
	}
	got := shared.Snapshot()
	if got != folded {
		t.Fatalf("workers=%d: concurrent merge %v != sequential fold %v", workers, got, folded)
	}
	return got
}

// TestMergeDeterministicAcrossWorkers is the satellite check: merging
// per-cell ledgers through the internal/parallel pool yields the same
// totals for every -workers setting, and the concurrent MergeSnapshot
// path agrees with a sequential Snapshot.Merge fold.
func TestMergeDeterministicAcrossWorkers(t *testing.T) {
	const cells = 64
	want := mergeVia(t, 1, cells)
	if want.Total() == 0 {
		t.Fatal("test fixture produced an empty merge")
	}
	for _, w := range []int{2, 4, 8, 16} {
		if got := mergeVia(t, w, cells); got != want {
			t.Errorf("workers=%d: merge %v != workers=1 merge %v", w, got, want)
		}
	}
}

// TestMergeSnapshotConcurrent hammers one ledger from the pool without
// a comparison fold, to give the race detector a clean target.
func TestMergeSnapshotConcurrent(t *testing.T) {
	l := New()
	parallel.Do(128, func(i int) {
		l.MergeSnapshot(cellSnapshot(i))
		l.Add(Framing, 1)
	})
	if got := l.Get(Framing); got < 128 {
		t.Fatalf("Framing = %d, want >= 128", got)
	}
}
