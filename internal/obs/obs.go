// Package obs is the live observability layer for the sync path:
// hierarchical tracing spans, a lock-cheap metrics registry, and the
// HTTP surface (/metrics, /healthz, net/http/pprof) that exposes both.
// It has no dependencies beyond the standard library.
//
// The package is built around one contract: a nil *Tracer, *Span,
// *Counter, *Gauge, or *Histogram is a valid no-op value. Every method
// checks its receiver and returns immediately when it is nil, so
// instrumented code never branches on "is observability enabled" —
// it simply calls through, and an uninstrumented run (the default for
// every experiment and test) pays only a nil check. The tracer-off
// cost is asserted by the ObsOff/ObsOn benchmark pair recorded by
// `make bench-obs`.
//
// Tracers are clock-aware: NewTracer stamps spans with wall-clock
// offsets, while NewSimTracer reads a virtual clock (simclock.Clock's
// Now), so simulation spans carry deterministic virtual timestamps and
// do not perturb experiment reproducibility. Finished traces export as
// JSONL (one span per line), as a Chrome trace_event file loadable in
// chrome://tracing or Perfetto, and as a human-readable summary tree
// (synccli -report).
//
// Registries render in the Prometheus text exposition format and are
// served together with liveness and pprof endpoints by Handler /
// ListenAndServe (syncd -obs-addr).
package obs

import (
	"fmt"
	"strconv"
)

// Attr is one key/value annotation on a span. Values are restricted to
// the types attrString renders: string, bool, int, int64, float64.
type Attr struct {
	// Key names the annotation (snake_case by convention).
	Key string
	// Value is the annotation payload.
	Value any
}

// String builds a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float-valued attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// attrString renders an attribute value for the report tree and the
// Chrome trace args.
func attrString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	default:
		return fmt.Sprintf("%v", x)
	}
}
