package obs

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the live-observability HTTP surface for the
// registry:
//
//	/metrics        Prometheus text exposition of every metric
//	/healthz        liveness probe (200, "ok <uptime>")
//	/debug/pprof/…  the standard net/http/pprof profiling endpoints
//
// The handler is safe to serve concurrently with metric updates.
func (r *Registry) Handler() http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			log.Printf("obs: rendering /metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok %s\n", time.Since(start).Round(time.Second))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a running observability endpoint: the http.Server, its
// bound address, and the serve goroutine's completion signal. It
// implements io.Closer, so a syncnet.Server can adopt it via
// AttachCloser and tear it down as part of its own Close.
type HTTPServer struct {
	srv  *http.Server
	addr net.Addr
	done chan struct{}
}

// ListenAndServe starts the observability endpoint on addr in a
// background goroutine. The returned handle exposes the bound address
// (useful with ":0") and a graceful Close. Serve errors after a clean
// Close are discarded; others are logged.
func ListenAndServe(addr string, r *Registry) (*HTTPServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	h := &HTTPServer{
		srv:  &http.Server{Handler: r.Handler()},
		addr: l.Addr(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		if err := h.srv.Serve(l); err != nil && err != http.ErrServerClosed {
			log.Printf("obs: serving %s: %v", h.addr, err)
		}
	}()
	return h, nil
}

// Addr is the listener's bound address.
func (h *HTTPServer) Addr() net.Addr { return h.addr }

// Close shuts the listener and every open connection down and waits for
// the serve goroutine to exit, so callers observe no goroutine leak
// after Close returns. Safe to call more than once.
func (h *HTTPServer) Close() error {
	err := h.srv.Close()
	<-h.done
	return err
}
