package obs

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the live-observability HTTP surface for the
// registry:
//
//	/metrics        Prometheus text exposition of every metric
//	/healthz        liveness probe (200, "ok <uptime>")
//	/debug/pprof/…  the standard net/http/pprof profiling endpoints
//
// The handler is safe to serve concurrently with metric updates.
func (r *Registry) Handler() http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			log.Printf("obs: rendering /metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok %s\n", time.Since(start).Round(time.Second))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe starts the observability endpoint on addr in a
// background goroutine and returns the bound address (useful with
// ":0") and the server for shutdown. Serve errors after a clean
// Close are discarded; others are logged.
func ListenAndServe(addr string, r *Registry) (net.Addr, *http.Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			log.Printf("obs: serving %s: %v", l.Addr(), err)
		}
	}()
	return l.Addr(), srv, nil
}
