package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("syncd_bytes_received_total", "Bytes read off client connections.").Add(123)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "syncd_bytes_received_total 123") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok ") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// pprof's index and cmdline endpoints must answer (the profile
	// endpoints spin for their sampling window, so only the cheap ones
	// are probed here).
	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body)
	}
	if code, _ = get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestListenAndServe(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "1 while serving.").Set(1)
	addr, srv, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("metrics over ListenAndServe missing gauge:\n%s", body)
	}
}
