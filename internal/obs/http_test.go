package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("syncd_bytes_received_total", "Bytes read off client connections.").Add(123)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "syncd_bytes_received_total 123") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok ") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// pprof's index and cmdline endpoints must answer (the profile
	// endpoints spin for their sampling window, so only the cheap ones
	// are probed here).
	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body)
	}
	if code, _ = get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestListenAndServe(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "1 while serving.").Set(1)
	srv, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("metrics over ListenAndServe missing gauge:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is graceful: the port is released and re-bindable, a second
	// Close is a no-op, and the serve goroutine is gone.
	if _, err := http.Get("http://" + srv.Addr().String() + "/metrics"); err == nil {
		t.Fatal("endpoint still answering after Close")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	assertNoServeGoroutine(t)
}

// assertNoServeGoroutine fails if any obs serve goroutine survives
// Close — the stdlib-only goroutine-leak check. http.Get's keep-alive
// transport goroutines are not obs's to clean up, so only frames inside
// this package's ListenAndServe count as leaks.
func assertNoServeGoroutine(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "obs.ListenAndServe.func") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("obs serve goroutine still running after Close:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
