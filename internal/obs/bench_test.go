package obs

import (
	"testing"
	"time"
)

// The ObsOff/ObsOn pairs below quantify the nil-instrument contract:
// the Off variant runs the exact call sequence instrumented code makes
// with observability disabled (nil receivers), the On variant with a
// live tracer/registry. `make bench-obs` records both into
// BENCH_obs.json and computes the overhead.

func BenchmarkSpanObsOff(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("op")
		child := sp.Child("stage")
		child.Set("bytes", int64(i))
		child.End()
		sp.End()
	}
}

func BenchmarkSpanObsOn(b *testing.B) {
	var t time.Duration
	tr := NewSimTracer(func() time.Duration { return t })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("op")
		child := sp.Child("stage")
		child.Set("bytes", int64(i))
		child.End()
		sp.End()
		t++
	}
	if len(tr.spans) != 2*b.N {
		b.Fatalf("recorded %d spans, want %d", len(tr.spans), 2*b.N)
	}
}

func BenchmarkCounterObsOff(b *testing.B) {
	var r *Registry
	c := r.Counter("ops_total", "")
	h := r.Histogram("sizes", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}

func BenchmarkCounterObsOn(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	h := r.Histogram("sizes", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}
