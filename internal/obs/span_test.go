package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// simNow builds a manually advanced clock for deterministic span
// times.
type simNow struct{ t time.Duration }

func (s *simNow) now() time.Duration { return s.t }

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("op")
	if sp != nil {
		t.Fatalf("nil tracer Start returned %v, want nil", sp)
	}
	// Every span method must absorb the nil receiver.
	sp.Set("k", 1)
	child := sp.Child("sub")
	if child != nil {
		t.Fatalf("nil span Child returned %v, want nil", child)
	}
	child.End()
	sp.End()
	sp.EndAt(5)
	tr.Record("r", 0, 1)
	tr.Reset()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}
	if tr.Report() != "" {
		t.Fatalf("nil tracer Report = %q, want empty", tr.Report())
	}
	if tr.Now() != 0 {
		t.Fatalf("nil tracer Now = %v, want 0", tr.Now())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer WriteJSONL wrote %q (err %v)", buf.String(), err)
	}
}

func TestSpanTree(t *testing.T) {
	clk := &simNow{}
	tr := NewSimTracer(clk.now)

	root := tr.Start("client.upload", String("name", "a.txt"))
	clk.t = 10 * time.Millisecond
	att := root.Child("client.attempt", Int("attempt", 1))
	clk.t = 15 * time.Millisecond
	full := att.Child("client.full_upload")
	full.Set("payload_bytes", int64(4096))
	clk.t = 40 * time.Millisecond
	full.End()
	att.End()
	clk.t = 41 * time.Millisecond
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	r, a, f := byName["client.upload"], byName["client.attempt"], byName["client.full_upload"]
	if r.Parent != 0 || a.Parent != r.ID || f.Parent != a.ID {
		t.Fatalf("broken parent chain: root=%+v attempt=%+v full=%+v", r, a, f)
	}
	if r.Root != r.ID || a.Root != r.ID || f.Root != r.ID {
		t.Fatalf("root ids not propagated: %+v %+v %+v", r, a, f)
	}
	if f.Start != 15*time.Millisecond || f.Duration() != 25*time.Millisecond {
		t.Fatalf("full span times wrong: start %v dur %v", f.Start, f.Duration())
	}
	if f.Attr("payload_bytes") != "4096" || r.Attr("name") != "a.txt" {
		t.Fatalf("attrs lost: %v / %v", f.Attrs, r.Attrs)
	}

	rep := tr.Report()
	for _, want := range []string{"client.upload", "client.attempt", "client.full_upload", "payload_bytes=4096"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// Children must be indented under the root.
	if strings.Index(rep, "client.upload") > strings.Index(rep, "client.attempt") {
		t.Fatalf("report order wrong:\n%s", rep)
	}
}

func TestEndIsIdempotentAndClamped(t *testing.T) {
	clk := &simNow{t: 10}
	tr := NewSimTracer(clk.now)
	sp := tr.Start("op")
	sp.EndAt(5) // before start: clamped
	sp.EndAt(50)
	d := tr.Spans()[0]
	if !d.Ended || d.End != 10 {
		t.Fatalf("span end = %v (ended %v), want clamped first end 10", d.End, d.Ended)
	}
}

func TestRecordExplicitTimes(t *testing.T) {
	tr := NewSimTracer(func() time.Duration { return 0 })
	tr.Record("net.session", 3*time.Second, 5*time.Second, Int("up_app", 100))
	d := tr.Spans()[0]
	if d.Start != 3*time.Second || d.Duration() != 2*time.Second {
		t.Fatalf("recorded span %+v", d)
	}
}

func TestWriteJSONL(t *testing.T) {
	clk := &simNow{}
	tr := NewSimTracer(clk.now)
	root := tr.Start("a")
	clk.t = time.Millisecond
	root.Child("b").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var js jsonSpan
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d JSONL lines, want 2", lines)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clk := &simNow{}
	tr := NewSimTracer(clk.now)
	root := tr.Start("a", String("k", "v"))
	clk.t = 2 * time.Millisecond
	root.Child("b").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
	}
	if doc.TraceEvents[0].Tid != doc.TraceEvents[1].Tid {
		t.Fatalf("spans of one tree on different tids: %+v", doc.TraceEvents)
	}
	if doc.TraceEvents[0].Args["k"] != "v" {
		t.Fatalf("args lost: %+v", doc.TraceEvents[0].Args)
	}
	if doc.TraceEvents[0].Dur != 2000 {
		t.Fatalf("root dur %v µs, want 2000", doc.TraceEvents[0].Dur)
	}
}

func TestResetDropsSpans(t *testing.T) {
	tr := NewTracer()
	tr.Start("x").End()
	tr.Reset()
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("after Reset, %d spans remain", n)
	}
}
