package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// TraceDump is one process's span snapshot plus the identity and clock
// metadata Merge needs to join it with dumps from other processes: the
// tracer's TraceID (how foreign spans reference this dump's spans) and
// the wall-clock epoch its span offsets are relative to (how timelines
// align).
type TraceDump struct {
	Process     string
	TraceID     TraceID
	EpochUnixNs int64
	Spans       []SpanData
}

// Dump snapshots the tracer as a TraceDump labeled with a process name
// (a zero dump on a nil tracer).
func (t *Tracer) Dump(process string) TraceDump {
	return TraceDump{
		Process:     process,
		TraceID:     t.TraceID(),
		EpochUnixNs: t.EpochUnixNano(),
		Spans:       t.Spans(),
	}
}

// dumpMeta is the first line of the dump JSONL format.
type dumpMeta struct {
	Process     string `json:"process"`
	TraceID     string `json:"trace_id,omitempty"`
	EpochUnixNs int64  `json:"epoch_unix_ns,omitempty"`
}

// dumpSpan is one span line of the dump JSONL format. Times are integer
// nanoseconds so dumps round-trip exactly.
type dumpSpan struct {
	ID           uint64            `json:"id"`
	Parent       uint64            `json:"parent,omitempty"`
	Root         uint64            `json:"root,omitempty"`
	Name         string            `json:"name"`
	StartNs      int64             `json:"start_ns"`
	EndNs        int64             `json:"end_ns,omitempty"`
	Ended        bool              `json:"ended,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	RemoteTrace  string            `json:"remote_trace,omitempty"`
	RemoteParent uint64            `json:"remote_parent,omitempty"`
}

// WriteDump writes the dump in its JSONL form: a meta line (process,
// trace_id, epoch_unix_ns) followed by one span per line. The format is
// what ReadDump parses and what processes exchange to build a merged
// cross-process trace.
func WriteDump(w io.Writer, d TraceDump) error {
	enc := json.NewEncoder(w)
	meta := dumpMeta{Process: d.Process, EpochUnixNs: d.EpochUnixNs}
	if !d.TraceID.IsZero() {
		meta.TraceID = d.TraceID.String()
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("obs: writing dump meta: %w", err)
	}
	for _, s := range d.Spans {
		js := dumpSpan{
			ID: s.ID, Parent: s.Parent, Root: s.Root, Name: s.Name,
			StartNs: int64(s.Start), Ended: s.Ended, Attrs: s.attrMap(),
			RemoteParent: s.RemoteParent,
		}
		if s.Ended {
			js.EndNs = int64(s.End)
		}
		if !s.RemoteTrace.IsZero() {
			js.RemoteTrace = s.RemoteTrace.String()
		}
		if err := enc.Encode(js); err != nil {
			return fmt.Errorf("obs: writing dump span: %w", err)
		}
	}
	return nil
}

// ReadDump parses a dump written by WriteDump. Attribute insertion
// order is not preserved (attributes re-load sorted by key); everything
// else round-trips exactly.
func ReadDump(r io.Reader) (TraceDump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return TraceDump{}, fmt.Errorf("obs: reading dump: %w", err)
		}
		return TraceDump{}, fmt.Errorf("obs: empty dump")
	}
	var meta dumpMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return TraceDump{}, fmt.Errorf("obs: dump meta line: %w", err)
	}
	d := TraceDump{Process: meta.Process, EpochUnixNs: meta.EpochUnixNs}
	if meta.TraceID != "" {
		id, err := ParseTraceID(meta.TraceID)
		if err != nil {
			return TraceDump{}, err
		}
		d.TraceID = id
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var js dumpSpan
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			return TraceDump{}, fmt.Errorf("obs: dump line %d: %w", line, err)
		}
		s := SpanData{
			ID: js.ID, Parent: js.Parent, Root: js.Root, Name: js.Name,
			Start: time.Duration(js.StartNs), End: time.Duration(js.EndNs),
			Ended: js.Ended, RemoteParent: js.RemoteParent,
		}
		if js.RemoteTrace != "" {
			id, err := ParseTraceID(js.RemoteTrace)
			if err != nil {
				return TraceDump{}, err
			}
			s.RemoteTrace = id
		}
		if len(js.Attrs) > 0 {
			keys := make([]string, 0, len(js.Attrs))
			for k := range js.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				s.Attrs = append(s.Attrs, String(k, js.Attrs[k]))
			}
		}
		d.Spans = append(d.Spans, s)
	}
	if err := sc.Err(); err != nil {
		return TraceDump{}, fmt.Errorf("obs: reading dump: %w", err)
	}
	return d, nil
}

// MergedSpan is one span of a cross-process merged trace: IDs are
// remapped to be globally unique, remote parents are resolved into
// ordinary Parent links, and Start/End are offsets on one shared
// timeline (the earliest dump epoch).
type MergedSpan struct {
	ID, Parent, Root uint64
	Process          string
	Name             string
	Start, End       time.Duration
	Ended            bool
	Attrs            []Attr
}

// Duration is the span's End − Start (0 while unfinished).
func (m MergedSpan) Duration() time.Duration {
	if !m.Ended {
		return 0
	}
	return m.End - m.Start
}

// Merge joins per-process dumps into one span forest. A span recorded
// with StartRemote — carrying a (RemoteTrace, RemoteParent) reference —
// is re-parented under the referenced span when some dump's TraceID
// matches and that span exists; otherwise it stays a root. Clock
// alignment uses each dump's epoch: dumps with a zero epoch (sim
// tracers) keep their raw offsets. Roots are recomputed over the
// joined forest, so a client op and the server work it caused share
// one Root. Output is sorted by start time.
func Merge(dumps ...TraceDump) []MergedSpan {
	// Remap each dump's span IDs into one namespace by per-dump offset.
	offsets := make([]uint64, len(dumps))
	var next uint64
	for i, d := range dumps {
		offsets[i] = next
		var maxID uint64
		for _, s := range d.Spans {
			if s.ID > maxID {
				maxID = s.ID
			}
		}
		next += maxID
	}

	// Resolve trace IDs to dumps (first dump wins on duplicates) and
	// index which span IDs each dump actually holds.
	byTrace := make(map[TraceID]int, len(dumps))
	have := make([]map[uint64]bool, len(dumps))
	for i, d := range dumps {
		if !d.TraceID.IsZero() {
			if _, ok := byTrace[d.TraceID]; !ok {
				byTrace[d.TraceID] = i
			}
		}
		have[i] = make(map[uint64]bool, len(d.Spans))
		for _, s := range d.Spans {
			have[i][s.ID] = true
		}
	}

	// The shared timeline zero: the earliest nonzero epoch.
	var base int64
	for _, d := range dumps {
		if d.EpochUnixNs != 0 && (base == 0 || d.EpochUnixNs < base) {
			base = d.EpochUnixNs
		}
	}

	var out []MergedSpan
	parent := make(map[uint64]uint64)
	for i, d := range dumps {
		var shift time.Duration
		if base != 0 && d.EpochUnixNs != 0 {
			shift = time.Duration(d.EpochUnixNs - base)
		}
		for _, s := range d.Spans {
			id := s.ID + offsets[i]
			var p uint64
			switch {
			case s.Parent != 0:
				p = s.Parent + offsets[i]
			case s.RemoteParent != 0:
				if j, ok := byTrace[s.RemoteTrace]; ok && have[j][s.RemoteParent] {
					p = s.RemoteParent + offsets[j]
				}
			}
			m := MergedSpan{
				ID: id, Parent: p, Process: d.Process, Name: s.Name,
				Start: s.Start + shift, Ended: s.Ended, Attrs: s.Attrs,
			}
			if s.Ended {
				m.End = s.End + shift
			}
			out = append(out, m)
			parent[id] = p
		}
	}

	// Recompute roots over the joined forest (bounded walk: the parent
	// relation is a DAG by construction, but a malformed dump pair could
	// alias IDs into a cycle, so never loop past the span count).
	for k := range out {
		id := out[k].ID
		for steps := 0; parent[id] != 0 && steps <= len(out); steps++ {
			id = parent[id]
		}
		out[k].Root = id
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteMergedChromeTrace writes a merged span forest as a Chrome
// trace_event JSON document (chrome://tracing, ui.perfetto.dev). Each
// joined tree renders as one track (tid = merged Root), so server
// spans stack under the client operation that caused them; every
// event's args carry its process name. Timestamps are rebased so the
// earliest span starts at 0.
func WriteMergedChromeTrace(w io.Writer, spans []MergedSpan) error {
	var base time.Duration
	for i, m := range spans {
		if i == 0 || m.Start < base {
			base = m.Start
		}
	}
	doc := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, m := range spans {
		args := map[string]string{"process": m.Process}
		for _, a := range m.Attrs {
			args[a.Key] = attrString(a.Value)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: m.Name, Ph: "X", Ts: us(m.Start - base), Dur: us(m.Duration()),
			Pid: 1, Tid: m.Root, Args: args,
		})
	}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("obs: writing merged Chrome trace: %w", err)
	}
	return nil
}
