package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// jsonSpan is the JSONL export schema: one of these per line.
type jsonSpan struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	StartU float64           `json:"start_us"`
	DurU   float64           `json:"dur_us"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

func (d SpanData) attrMap() map[string]string {
	if len(d.Attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(d.Attrs))
	for _, a := range d.Attrs {
		m[a.Key] = attrString(a.Value)
	}
	return m
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteJSONL writes every recorded span as one JSON object per line
// (id, parent, name, start_us, dur_us, attrs). A nil tracer writes
// nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, d := range t.Spans() {
		if err := enc.Encode(jsonSpan{
			ID: d.ID, Parent: d.Parent, Name: d.Name,
			StartU: us(d.Start), DurU: us(d.Duration()),
			Attrs: d.attrMap(),
		}); err != nil {
			return fmt.Errorf("obs: writing JSONL: %w", err)
		}
	}
	return nil
}

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON
// format: a "complete" (ph "X") event with microsecond timestamps.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans as a Chrome trace_event
// JSON document loadable in chrome://tracing and ui.perfetto.dev. Each
// span tree renders as one track (tid = root span id), so nested spans
// stack under their root operation. Unfinished spans are exported with
// zero duration.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	doc := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, d := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: d.Name, Ph: "X", Ts: us(d.Start), Dur: us(d.Duration()),
			Pid: 1, Tid: d.Root, Args: d.attrMap(),
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: writing Chrome trace: %w", err)
	}
	return nil
}

// Report renders the span forest as an indented summary tree — one
// line per span with its duration and attributes — so a CLI can show
// where every byte and millisecond of an operation went. A nil or
// empty tracer returns "".
func (t *Tracer) Report() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	children := make(map[uint64][]SpanData)
	var roots []SpanData
	for _, d := range spans {
		if d.Parent == 0 {
			roots = append(roots, d)
		} else {
			children[d.Parent] = append(children[d.Parent], d)
		}
	}
	byStart := func(s []SpanData) {
		sort.SliceStable(s, func(i, j int) bool {
			if s[i].Start != s[j].Start {
				return s[i].Start < s[j].Start
			}
			return s[i].ID < s[j].ID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	var b strings.Builder
	var walk func(d SpanData, prefix string, last bool, top bool)
	walk = func(d SpanData, prefix string, last bool, top bool) {
		line := prefix
		childPrefix := prefix
		if !top {
			if last {
				line += "`- "
				childPrefix += "   "
			} else {
				line += "|- "
				childPrefix += "|  "
			}
		}
		dur := "(unfinished)"
		if d.Ended {
			dur = d.Duration().Round(time.Microsecond).String()
		}
		line += fmt.Sprintf("%-*s %10s", 40-len(prefix), d.Name+attrSuffix(d), dur)
		b.WriteString(strings.TrimRight(line, " ") + "\n")
		kids := children[d.ID]
		for i, k := range kids {
			walk(k, childPrefix, i == len(kids)-1, false)
		}
	}
	for _, r := range roots {
		walk(r, "", true, true)
	}
	return b.String()
}

func attrSuffix(d SpanData) string {
	if len(d.Attrs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(d.Attrs))
	for _, a := range d.Attrs {
		parts = append(parts, a.Key+"="+attrString(a.Value))
	}
	return " [" + strings.Join(parts, " ") + "]"
}
