// Command benchjson turns `go test -bench` output into a small JSON
// overhead report. It pairs benchmarks named <Base>Off / <Base>On —
// the convention the observability benchmarks use for uninstrumented
// vs instrumented runs — and computes the relative overhead of each
// pair. make bench-obs pipes the obs and syncnet benchmarks through it
// into BENCH_obs.json.
//
// With -raw, pairing is skipped and every benchmark result on stdin is
// emitted as-is — the mode make bench-core uses to record the core
// experiment-table baseline into BENCH_core.json. Custom metric units
// (testing.B ReportMetric style, e.g. "123 peak-rss-bytes") are
// captured into each entry's "extra" map.
//
// With -compare OLD NEW, two -raw reports are diffed instead: every
// benchmark present in both is checked for allocs/op and ns/op
// regressions beyond -tolerance-pct (allocations are the tracked
// budget, so the default tolerance for them is tight; ns/op is
// machine-dependent and only reported). Entries carrying a
// "reqs-per-sec" extra (the syncload raw reports in BENCH_load.json)
// are load results, not micro-benchmarks, and are gated on what a load
// test promises instead: a sustained-throughput drop or a p99-us growth
// beyond the tolerance is the regression. Exit codes follow the tuediff
// convention: 0 = within tolerance, 1 = regression or benchmark-set
// drift, 2 = usage or I/O error.
//
// Usage:
//
//	go test -bench 'ObsO(ff|n)$' -benchmem ./... | go run ./internal/obs/benchjson > BENCH_obs.json
//	go test -bench . -benchmem -benchtime 1x . | go run ./internal/obs/benchjson -raw > BENCH_core.json
//	go run ./internal/obs/benchjson -compare BENCH_core.json new.json -tolerance-pct 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"cloudsync/internal/obs"
)

// result is one parsed benchmark line.
type result struct {
	nsPerOp     float64
	allocsPerOp int64
	bytesPerOp  int64
	extra       map[string]float64
}

// pair is the JSON record for one Off/On benchmark pair. OverheadPct
// is (on−off)/off in percent; negative values mean the difference is
// below measurement noise.
type pair struct {
	Name        string  `json:"name"`
	OffNsPerOp  float64 `json:"off_ns_per_op"`
	OnNsPerOp   float64 `json:"on_ns_per_op"`
	OffAllocs   int64   `json:"off_allocs_per_op"`
	OnAllocs    int64   `json:"on_allocs_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

type report struct {
	Note  string `json:"note"`
	Pairs []pair `json:"pairs"`
}

// rawEntry is one benchmark result in -raw mode: no Off/On pairing,
// just the measured figures under the benchmark's own name. Extra
// holds custom metric units ("peak-rss-bytes", "tue-dropbox", ...).
type rawEntry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type rawReport struct {
	Note       string     `json:"note"`
	Benchmarks []rawEntry `json:"benchmarks"`
}

// parseLine extracts a benchmark result from one `go test -bench`
// output line, e.g.
//
//	BenchmarkSpanObsOn-8   1000000   1050 ns/op   320 B/op   3 allocs/op
func parseLine(line string) (name string, r result, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", result{}, false
	}
	name = strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	for i := 2; i+1 < len(f); i++ {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.nsPerOp = v
			ok = true
		case "allocs/op":
			r.allocsPerOp = int64(v)
		case "B/op":
			r.bytesPerOp = int64(v)
		case "MB/s":
			// SetBytes throughput: recorded as an extra so kernel
			// benchmarks can be gated on MB/s in -compare mode.
			if r.extra == nil {
				r.extra = make(map[string]float64)
			}
			r.extra["mb-per-sec"] = v
		default:
			// A custom metric unit (testing.B ReportMetric convention):
			// all-lowercase with dashes, to avoid swallowing stray prose.
			if unit == strings.ToLower(unit) && !strings.ContainsAny(unit, "/:;,.") {
				if r.extra == nil {
					r.extra = make(map[string]float64)
				}
				r.extra[unit] = v
			}
		}
	}
	return name, r, ok
}

func main() {
	raw := flag.Bool("raw", false,
		"emit every benchmark result as-is instead of pairing <Base>Off/<Base>On")
	compare := flag.Bool("compare", false,
		"compare two -raw reports (OLD NEW file args) instead of reading stdin")
	tolerance := flag.Float64("tolerance-pct", 10,
		"allowed allocs/op regression in -compare mode, percent")
	thrTolerance := flag.Float64("throughput-tolerance-pct", 50,
		"allowed mb-per-sec drop in -compare mode, percent (loose: absolute throughput is machine-dependent)")
	filter := flag.String("filter", "",
		"in -compare mode, only diff benchmarks whose name matches this regexp")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance, *thrTolerance, *filter))
	}

	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *raw {
		emitRaw(results)
		return
	}

	rep := report{Note: "observability overhead: <Base>Off = nil tracer/registry, <Base>On = instrumented"}
	for name, off := range results {
		base, found := strings.CutSuffix(name, "Off")
		if !found {
			continue
		}
		on, ok := results[base+"On"]
		if !ok {
			continue
		}
		rep.Pairs = append(rep.Pairs, pair{
			Name:        base,
			OffNsPerOp:  off.nsPerOp,
			OnNsPerOp:   on.nsPerOp,
			OffAllocs:   off.allocsPerOp,
			OnAllocs:    on.allocsPerOp,
			OverheadPct: (on.nsPerOp - off.nsPerOp) / off.nsPerOp * 100,
		})
	}
	if len(rep.Pairs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Off/On benchmark pairs on stdin")
		os.Exit(1)
	}
	sort.Slice(rep.Pairs, func(i, j int) bool { return rep.Pairs[i].Name < rep.Pairs[j].Name })

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runCompare diffs two -raw reports. allocs/op is the enforced budget:
// a benchmark whose allocation count grew more than tolerancePct over
// the old report is a regression. ns/op changes and allocation
// improvements are reported but never fail. Load-generator entries
// (extra["reqs-per-sec"] set on both sides) are gated by compareLoad on
// throughput and tail latency instead; kernel entries (a "mb-per-sec"
// extra from SetBytes on both sides) are additionally gated on
// throughput with the looser thrTolerancePct, since absolute MB/s moves
// with the machine but a kernel falling to a fraction of its baseline
// is an algorithmic regression on any hardware. A non-empty filter
// regexp restricts the diff to matching names, so a kernel-only re-run
// can be compared against a full baseline without the missing entries
// reading as drift. Benchmarks present in only one report are drift
// too — a renamed or dropped benchmark silently invalidates the
// baseline. Returns the process exit code: 0 within tolerance, 1
// regression/drift, 2 usage or I/O error.
func runCompare(args []string, tolerancePct, thrTolerancePct float64, filter string) int {
	// The flag package stops at the first positional argument, so
	// accept the option flags after the file pair too.
	var files []string
	for i := 0; i < len(args); i++ {
		if !strings.HasPrefix(args[i], "-") {
			files = append(files, args[i])
			continue
		}
		name := strings.TrimLeft(args[i], "-")
		if name != "tolerance-pct" && name != "throughput-tolerance-pct" && name != "filter" {
			files = append(files, args[i])
			continue
		}
		if i+1 >= len(args) {
			fmt.Fprintf(os.Stderr, "benchjson: -%s needs a value\n", name)
			return 2
		}
		i++
		if name == "filter" {
			filter = args[i]
			continue
		}
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -%s %q\n", name, args[i])
			return 2
		}
		if name == "tolerance-pct" {
			tolerancePct = v
		} else {
			thrTolerancePct = v
		}
	}
	args = files
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two file arguments: OLD NEW")
		return 2
	}
	old, err := readRawReport(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	new_, err := readRawReport(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	if filter != "" {
		re, err := regexp.Compile(filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -filter %q: %v\n", filter, err)
			return 2
		}
		for name := range old {
			if !re.MatchString(name) {
				delete(old, name)
			}
		}
		for name := range new_ {
			if !re.MatchString(name) {
				delete(new_, name)
			}
		}
	}

	oldNames := make([]string, 0, len(old))
	for name := range old {
		oldNames = append(oldNames, name)
	}
	sort.Strings(oldNames)

	exit := 0
	for _, name := range oldNames {
		o := old[name]
		n, ok := new_[name]
		if !ok {
			fmt.Printf("DRIFT   %-40s missing from %s\n", name, args[1])
			exit = 1
			continue
		}
		if o.Extra["reqs-per-sec"] > 0 && n.Extra["reqs-per-sec"] > 0 {
			// A load-generator entry (syncload raw report): the budget is
			// sustained throughput and tail latency, not allocations.
			if compareLoad(name, o, n, tolerancePct) != 0 {
				exit = 1
			}
			continue
		}
		if o.Extra["mb-per-sec"] > 0 && n.Extra["mb-per-sec"] > 0 {
			// A data-plane kernel with SetBytes throughput: gate the MB/s
			// drop (loosely — absolute throughput is machine-dependent,
			// the gate exists to catch falling off the algorithmic cliff),
			// then fall through to the allocation budget below.
			oldMBs, newMBs := o.Extra["mb-per-sec"], n.Extra["mb-per-sec"]
			dropPct := (oldMBs - newMBs) / oldMBs * 100
			switch {
			case dropPct > thrTolerancePct:
				fmt.Printf("REGRESS %-40s MB/s %.0f → %.0f (-%.1f%% > %.1f%%)\n",
					name, oldMBs, newMBs, dropPct, thrTolerancePct)
				exit = 1
			case dropPct < 0:
				fmt.Printf("improve %-40s MB/s %.0f → %.0f (+%.1f%%)\n",
					name, oldMBs, newMBs, -dropPct)
			default:
				fmt.Printf("ok      %-40s MB/s %.0f → %.0f (-%.1f%%)\n",
					name, oldMBs, newMBs, dropPct)
			}
		}
		switch {
		case o.AllocsPerOp == 0 && n.AllocsPerOp == 0:
			fmt.Printf("ok      %-40s 0 allocs/op in both\n", name)
		case o.AllocsPerOp == 0:
			fmt.Printf("REGRESS %-40s allocs/op 0 → %d\n", name, n.AllocsPerOp)
			exit = 1
		default:
			pct := float64(n.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp) * 100
			switch {
			case pct > tolerancePct:
				fmt.Printf("REGRESS %-40s allocs/op %d → %d (%+.1f%% > %.1f%%)\n",
					name, o.AllocsPerOp, n.AllocsPerOp, pct, tolerancePct)
				exit = 1
			case pct < 0:
				fmt.Printf("improve %-40s allocs/op %d → %d (%.1f%%)\n",
					name, o.AllocsPerOp, n.AllocsPerOp, pct)
			default:
				fmt.Printf("ok      %-40s allocs/op %d → %d (%+.1f%%)\n",
					name, o.AllocsPerOp, n.AllocsPerOp, pct)
			}
		}
	}
	newNames := make([]string, 0, len(new_))
	for name := range new_ {
		if _, ok := old[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		fmt.Printf("DRIFT   %-40s new benchmark, not in %s\n", name, args[0])
		exit = 1
	}
	return exit
}

// compareLoad gates one load-generator benchmark pair: entries whose
// extra map carries "reqs-per-sec" (and usually "p99-us") are judged on
// what a load test actually promises — sustained throughput must not
// drop, and tail latency must not grow, beyond the tolerance.
// Improvements and in-tolerance movement are reported but never fail.
// Returns 0 if within tolerance, 1 on regression.
func compareLoad(name string, o, n rawEntry, tolerancePct float64) int {
	exit := 0
	oldRPS, newRPS := o.Extra["reqs-per-sec"], n.Extra["reqs-per-sec"]
	dropPct := (oldRPS - newRPS) / oldRPS * 100
	switch {
	case dropPct > tolerancePct:
		fmt.Printf("REGRESS %-40s reqs/s %.0f → %.0f (-%.1f%% > %.1f%%)\n",
			name, oldRPS, newRPS, dropPct, tolerancePct)
		exit = 1
	case dropPct < 0:
		fmt.Printf("improve %-40s reqs/s %.0f → %.0f (+%.1f%%)\n",
			name, oldRPS, newRPS, -dropPct)
	default:
		fmt.Printf("ok      %-40s reqs/s %.0f → %.0f (-%.1f%%)\n",
			name, oldRPS, newRPS, dropPct)
	}
	oldP99, newP99 := o.Extra["p99-us"], n.Extra["p99-us"]
	if oldP99 > 0 && newP99 > 0 {
		// The obs histogram's power-of-two buckets bound quantile
		// resolution to roughly one bucket step (2×): a true p99 sitting
		// near a bucket boundary can legitimately report from either
		// side. Gating tighter than a bucket step would flag instrument
		// noise, so the p99 tolerance is floored at the histogram's own
		// resolution contract (obs.QuantileStepTolerancePct).
		p99Tol := tolerancePct
		if p99Tol < obs.QuantileStepTolerancePct {
			p99Tol = obs.QuantileStepTolerancePct
		}
		growPct := (newP99 - oldP99) / oldP99 * 100
		switch {
		case growPct > p99Tol:
			fmt.Printf("REGRESS %-40s p99 %.0fus → %.0fus (%+.1f%% > %.1f%%)\n",
				name, oldP99, newP99, growPct, p99Tol)
			exit = 1
		case growPct < 0:
			fmt.Printf("improve %-40s p99 %.0fus → %.0fus (%.1f%%)\n",
				name, oldP99, newP99, growPct)
		default:
			fmt.Printf("ok      %-40s p99 %.0fus → %.0fus (%+.1f%%)\n",
				name, oldP99, newP99, growPct)
		}
	}
	return exit
}

// readRawReport loads a -raw JSON report as name → entry.
func readRawReport(path string) (map[string]rawEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep rawReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]rawEntry, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

// emitRaw writes every parsed benchmark, sorted by name. Wall-clock
// figures are machine-dependent; the baseline's value is the allocation
// counts and the relative shape, not absolute nanoseconds.
func emitRaw(results map[string]result) {
	rep := rawReport{Note: "core experiment-table baseline (-benchtime 1x; ns/op is machine-dependent, compare shapes not absolutes)"}
	for name, r := range results {
		rep.Benchmarks = append(rep.Benchmarks, rawEntry{
			Name:        name,
			NsPerOp:     r.nsPerOp,
			AllocsPerOp: r.allocsPerOp,
			BytesPerOp:  r.bytesPerOp,
			Extra:       r.extra,
		})
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
