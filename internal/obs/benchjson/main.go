// Command benchjson turns `go test -bench` output into a small JSON
// overhead report. It pairs benchmarks named <Base>Off / <Base>On —
// the convention the observability benchmarks use for uninstrumented
// vs instrumented runs — and computes the relative overhead of each
// pair. make bench-obs pipes the obs and syncnet benchmarks through it
// into BENCH_obs.json.
//
// With -raw, pairing is skipped and every benchmark result on stdin is
// emitted as-is — the mode make bench-core uses to record the core
// experiment-table baseline into BENCH_core.json.
//
// Usage:
//
//	go test -bench 'ObsO(ff|n)$' -benchmem ./... | go run ./internal/obs/benchjson > BENCH_obs.json
//	go test -bench . -benchmem -benchtime 1x . | go run ./internal/obs/benchjson -raw > BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	nsPerOp     float64
	allocsPerOp int64
}

// pair is the JSON record for one Off/On benchmark pair. OverheadPct
// is (on−off)/off in percent; negative values mean the difference is
// below measurement noise.
type pair struct {
	Name        string  `json:"name"`
	OffNsPerOp  float64 `json:"off_ns_per_op"`
	OnNsPerOp   float64 `json:"on_ns_per_op"`
	OffAllocs   int64   `json:"off_allocs_per_op"`
	OnAllocs    int64   `json:"on_allocs_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

type report struct {
	Note  string `json:"note"`
	Pairs []pair `json:"pairs"`
}

// rawEntry is one benchmark result in -raw mode: no Off/On pairing,
// just the measured figures under the benchmark's own name.
type rawEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type rawReport struct {
	Note       string     `json:"note"`
	Benchmarks []rawEntry `json:"benchmarks"`
}

// parseLine extracts a benchmark result from one `go test -bench`
// output line, e.g.
//
//	BenchmarkSpanObsOn-8   1000000   1050 ns/op   320 B/op   3 allocs/op
func parseLine(line string) (name string, r result, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", result{}, false
	}
	name = strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	for i := 2; i+1 < len(f); i++ {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.nsPerOp = v
			ok = true
		case "allocs/op":
			r.allocsPerOp = int64(v)
		}
	}
	return name, r, ok
}

func main() {
	raw := flag.Bool("raw", false,
		"emit every benchmark result as-is instead of pairing <Base>Off/<Base>On")
	flag.Parse()

	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *raw {
		emitRaw(results)
		return
	}

	rep := report{Note: "observability overhead: <Base>Off = nil tracer/registry, <Base>On = instrumented"}
	for name, off := range results {
		base, found := strings.CutSuffix(name, "Off")
		if !found {
			continue
		}
		on, ok := results[base+"On"]
		if !ok {
			continue
		}
		rep.Pairs = append(rep.Pairs, pair{
			Name:        base,
			OffNsPerOp:  off.nsPerOp,
			OnNsPerOp:   on.nsPerOp,
			OffAllocs:   off.allocsPerOp,
			OnAllocs:    on.allocsPerOp,
			OverheadPct: (on.nsPerOp - off.nsPerOp) / off.nsPerOp * 100,
		})
	}
	if len(rep.Pairs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Off/On benchmark pairs on stdin")
		os.Exit(1)
	}
	sort.Slice(rep.Pairs, func(i, j int) bool { return rep.Pairs[i].Name < rep.Pairs[j].Name })

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// emitRaw writes every parsed benchmark, sorted by name. Wall-clock
// figures are machine-dependent; the baseline's value is the allocation
// counts and the relative shape, not absolute nanoseconds.
func emitRaw(results map[string]result) {
	rep := rawReport{Note: "core experiment-table baseline (-benchtime 1x; ns/op is machine-dependent, compare shapes not absolutes)"}
	for name, r := range results {
		rep.Benchmarks = append(rep.Benchmarks, rawEntry{
			Name:        name,
			NsPerOp:     r.nsPerOp,
			AllocsPerOp: r.allocsPerOp,
		})
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
