package obs

import "testing"

// TestQuantileResolutionContract pins the documented bucket-resolution
// caveat: with every observation in one power-of-two bucket, any
// quantile can only land inside that bucket, and the spread between the
// lowest and highest representable answer stays within
// QuantileStepTolerancePct — the floor every quantile comparison (bench
// gates, phase decompositions) must respect.
func TestQuantileResolutionContract(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("quantile_resolution_us", "resolution contract probe")
	for i := 0; i < 1000; i++ {
		h.Observe(700) // one bucket: (512, 1024]
	}
	const lo, hi = 512, 1024
	p01, p99 := h.Quantile(0.01), h.Quantile(0.99)
	for _, q := range []int64{p01, h.Quantile(0.50), p99} {
		if q <= lo || q > hi {
			t.Fatalf("quantile %d escaped the (%d, %d] bucket", q, lo, hi)
		}
	}
	// The worst-case within-bucket spread is what the tolerance constant
	// exists to cover.
	if spread := float64(p99-p01) / float64(p01) * 100; spread > QuantileStepTolerancePct {
		t.Fatalf("within-bucket spread %.0f%% exceeds QuantileStepTolerancePct %d",
			spread, QuantileStepTolerancePct)
	}
	// Two histograms whose true quantiles differ by less than a bucket
	// step can report identical values: 700 vs 1000 share the bucket.
	h2 := reg.Histogram("quantile_resolution2_us", "resolution contract probe")
	for i := 0; i < 1000; i++ {
		h2.Observe(1000)
	}
	if got, want := h2.Quantile(0.50), h.Quantile(0.50); got != want {
		t.Fatalf("same-bucket medians differ: %d vs %d", got, want)
	}
}

// TestQuantileOverflowBucket: ranks landing in the +Inf bucket clamp to
// the largest finite bound rather than inventing a number.
func TestQuantileOverflowBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("quantile_overflow_us", "overflow probe")
	h.Observe(int64(1) << 55)
	if got, want := h.Quantile(0.99), BucketBound(HistBuckets-1); got != want {
		t.Fatalf("overflow quantile %d, want largest finite bound %d", got, want)
	}
}
