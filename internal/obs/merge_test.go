package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func mkTrace(b byte) TraceID {
	var id TraceID
	id[0] = b
	return id
}

func TestTraceIDStringParse(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero ID")
	}
	back, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatalf("ParseTraceID: %v", err)
	}
	if back != id {
		t.Fatalf("roundtrip: %v != %v", back, id)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("garbage trace ID parsed without error")
	}
	if (TraceID{}).String() != "00000000000000000000000000000000" {
		t.Fatalf("zero TraceID string: %q", TraceID{}.String())
	}
}

func TestDumpRoundTrip(t *testing.T) {
	tr := NewTracer()
	op := tr.Start("client.op", String("name", "a.txt"), Int("size", 42))
	att := op.Child("client.attempt")
	att.End()
	op.End()
	tr.StartRemote("server.commit", mkTrace(9), 7, String("user", "alice")).End()
	tr.Start("unfinished") // never ended: EndNs must stay 0

	d := tr.Dump("testproc")
	if d.TraceID.IsZero() || d.EpochUnixNs == 0 {
		t.Fatalf("dump missing identity: %+v", d)
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, d); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	got, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if got.Process != d.Process || got.TraceID != d.TraceID || got.EpochUnixNs != d.EpochUnixNs {
		t.Fatalf("meta mismatch: got %+v want %+v", got, d)
	}
	if len(got.Spans) != len(d.Spans) {
		t.Fatalf("got %d spans, want %d", len(got.Spans), len(d.Spans))
	}
	for i, w := range d.Spans {
		g := got.Spans[i]
		if g.ID != w.ID || g.Parent != w.Parent || g.Root != w.Root || g.Name != w.Name ||
			g.Start != w.Start || g.Ended != w.Ended ||
			g.RemoteTrace != w.RemoteTrace || g.RemoteParent != w.RemoteParent {
			t.Fatalf("span %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if w.Ended && g.End != w.End {
			t.Fatalf("span %d end mismatch: got %v want %v", i, g.End, w.End)
		}
		// Attribute values stringify on the wire; keys and rendered
		// values must survive.
		gm, wm := g.attrMap(), w.attrMap()
		if len(gm) != len(wm) {
			t.Fatalf("span %d attrs: got %v want %v", i, gm, wm)
		}
		for k, v := range wm {
			if gm[k] != v {
				t.Fatalf("span %d attr %q: got %q want %q", i, k, gm[k], v)
			}
		}
	}

	if _, err := ReadDump(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty dump parsed without error")
	}
}

// TestMergeReparentsAndAlignsClocks pins the tentpole join: a server
// span carrying a remote reference becomes a child of the referenced
// client span, every span of the joined tree shares one Root, and the
// server dump's later epoch shifts its spans onto the client timeline.
func TestMergeReparentsAndAlignsClocks(t *testing.T) {
	cid, sid := mkTrace(1), mkTrace(2)
	const epoch = int64(1_000_000_000)
	client := TraceDump{
		Process: "client", TraceID: cid, EpochUnixNs: epoch,
		Spans: []SpanData{
			{ID: 1, Name: "client.op", Start: 0, End: 100 * time.Millisecond, Ended: true},
			{ID: 2, Parent: 1, Root: 1, Name: "client.attempt", Start: time.Millisecond, End: 99 * time.Millisecond, Ended: true},
		},
	}
	server := TraceDump{
		Process: "server", TraceID: sid, EpochUnixNs: epoch + int64(10*time.Millisecond),
		Spans: []SpanData{
			{ID: 1, Name: "server.commit", RemoteTrace: cid, RemoteParent: 2,
				Start: 0, End: 50 * time.Millisecond, Ended: true},
			{ID: 2, Parent: 1, Root: 1, Name: "server.fsync",
				Start: time.Millisecond, End: 2 * time.Millisecond, Ended: true},
			{ID: 3, Name: "server.orphan", RemoteTrace: mkTrace(7), RemoteParent: 99,
				Start: 0, Ended: false},
		},
	}

	merged := Merge(client, server)
	if len(merged) != 5 {
		t.Fatalf("merged %d spans, want 5", len(merged))
	}
	byName := map[string]MergedSpan{}
	for _, m := range merged {
		byName[m.Name] = m
	}

	if got, want := byName["server.commit"].Parent, byName["client.attempt"].ID; got != want {
		t.Fatalf("server.commit parent %d, want client.attempt %d", got, want)
	}
	if got, want := byName["server.fsync"].Parent, byName["server.commit"].ID; got != want {
		t.Fatalf("server.fsync parent %d, want server.commit %d", got, want)
	}
	opID := byName["client.op"].ID
	for _, name := range []string{"client.op", "client.attempt", "server.commit", "server.fsync"} {
		if got := byName[name].Root; got != opID {
			t.Fatalf("%s root %d, want client.op %d", name, got, opID)
		}
	}
	// Clock alignment: the server dump's epoch is 10ms later, so
	// server.commit (local offset 0) lands at 10ms on the shared line.
	if got, want := byName["server.commit"].Start, 10*time.Millisecond; got != want {
		t.Fatalf("server.commit start %v, want %v", got, want)
	}
	// An unresolvable remote reference stays a root of its own.
	orphan := byName["server.orphan"]
	if orphan.Parent != 0 || orphan.Root != orphan.ID {
		t.Fatalf("orphan not a root: %+v", orphan)
	}
	// Output is sorted by start.
	for i := 1; i < len(merged); i++ {
		if merged[i].Start < merged[i-1].Start {
			t.Fatalf("merge output unsorted at %d: %v after %v", i, merged[i].Start, merged[i-1].Start)
		}
	}
}

// TestMergeZeroEpochKeepsOffsets: sim tracers carry no wall clock; their
// dumps must merge with raw offsets instead of a bogus shift.
func TestMergeZeroEpochKeepsOffsets(t *testing.T) {
	d := TraceDump{Process: "sim", Spans: []SpanData{
		{ID: 1, Name: "tick", Start: 5 * time.Second, End: 6 * time.Second, Ended: true},
	}}
	merged := Merge(d)
	if len(merged) != 1 || merged[0].Start != 5*time.Second {
		t.Fatalf("zero-epoch merge: %+v", merged)
	}
}

func TestWriteMergedChromeTrace(t *testing.T) {
	cid := mkTrace(3)
	client := TraceDump{Process: "client", TraceID: cid, EpochUnixNs: 1,
		Spans: []SpanData{{ID: 1, Name: "client.op", Start: time.Millisecond, End: 3 * time.Millisecond, Ended: true}}}
	server := TraceDump{Process: "server", TraceID: mkTrace(4), EpochUnixNs: 1,
		Spans: []SpanData{{ID: 1, Name: "server.commit", RemoteTrace: cid, RemoteParent: 1,
			Start: 2 * time.Millisecond, End: 3 * time.Millisecond, Ended: true}}}
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, Merge(client, server)); err != nil {
		t.Fatalf("WriteMergedChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Tid != doc.TraceEvents[1].Tid {
		t.Fatal("joined spans did not share a track (tid)")
	}
	procs := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		procs[e.Args["process"]] = true
	}
	if !procs["client"] || !procs["server"] {
		t.Fatalf("events missing process labels: %v", procs)
	}
	// Timestamps are rebased: the earliest span starts at 0.
	if doc.TraceEvents[0].Ts != 0 {
		t.Fatalf("first event ts %v, want 0", doc.TraceEvents[0].Ts)
	}
}

func TestStartRemoteOnPlainAndNilTracer(t *testing.T) {
	var nilT *Tracer
	if s := nilT.StartRemote("x", mkTrace(1), 1); s != nil {
		t.Fatal("nil tracer StartRemote returned a span")
	}
	tr := NewTracer()
	// A zero remote context records a plain root, not a remote one.
	tr.StartRemote("plain", TraceID{}, 0).End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].RemoteParent != 0 || !spans[0].RemoteTrace.IsZero() {
		t.Fatalf("zero-context StartRemote recorded a remote ref: %+v", spans)
	}
}
