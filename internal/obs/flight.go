package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// FlightRecord is one entry in a FlightRecorder: a completed (or
// notable) event with a wall-clock timestamp and a few fixed fields.
// It is deliberately flat — the recorder is a crash black-box, so a
// record must serialize without chasing pointers into live state.
type FlightRecord struct {
	// Seq is the record's position in the recorder's total order
	// (assigned by Record; later records have larger Seq).
	Seq uint64 `json:"seq"`
	// At is the wall-clock time in Unix nanoseconds.
	At int64 `json:"at_unix_ns"`
	// Name labels the event (dotted layer.operation by convention).
	Name string `json:"name"`
	// User is the acting account, when the event has one.
	User string `json:"user,omitempty"`
	// DurUS is the event's duration in microseconds (0 for instants).
	DurUS int64 `json:"dur_us,omitempty"`
	// Err carries the failure message for events that failed.
	Err string `json:"err,omitempty"`
}

// FlightRecorder is a bounded ring of recent FlightRecords, built so
// Record is cheap enough for a request hot path: one atomic increment
// plus one atomic pointer store, no locks, no allocation beyond the
// record itself. Older records are overwritten once the ring is full.
// Snapshot and WriteJSONL read whatever is current — they are meant
// for the moment after a crash latch trips, when the last N operations
// are the evidence. A nil *FlightRecorder is a valid no-op.
type FlightRecorder struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[FlightRecord]
}

// NewFlightRecorder returns a recorder keeping the most recent n
// records (n < 1 is raised to 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightRecord], n)}
}

// Cap reports the ring size (0 on nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Record stores one record, overwriting the oldest once the ring is
// full. The record's Seq field is assigned here; other fields are the
// caller's. Safe for concurrent use; no-op on nil.
func (f *FlightRecorder) Record(r FlightRecord) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1)
	r.Seq = seq
	f.slots[(seq-1)%uint64(len(f.slots))].Store(&r)
}

// Snapshot returns the current records in sequence order (oldest
// first). Records being overwritten concurrently may be skipped; the
// result is always internally consistent and sorted. Nil and empty
// recorders return nil.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSONL writes the snapshot one JSON object per line, oldest
// first — the flight-recorder dump format (flight-<ts>.jsonl).
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range f.Snapshot() {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("obs: writing flight record: %w", err)
		}
	}
	return nil
}

// ReadFlightDump parses a dump written by WriteJSONL.
func ReadFlightDump(r io.Reader) ([]FlightRecord, error) {
	dec := json.NewDecoder(r)
	var out []FlightRecord
	for dec.More() {
		var rec FlightRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("obs: reading flight record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
	return out, nil
}
