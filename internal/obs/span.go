package obs

import (
	"sync"
	"time"
)

// Tracer records hierarchical spans on a shared clock. It is safe for
// concurrent use: any goroutine may start, annotate, and end spans.
// A nil *Tracer is a valid no-op tracer — Start returns a nil *Span,
// whose methods are likewise no-ops — which is the zero-overhead
// contract instrumented code relies on.
type Tracer struct {
	now func() time.Duration

	mu     sync.Mutex
	nextID uint64
	spans  []*Span
}

// NewTracer returns a tracer stamping spans with wall-clock offsets
// from the moment of construction.
func NewTracer() *Tracer {
	epoch := time.Now()
	return &Tracer{now: func() time.Duration { return time.Since(epoch) }}
}

// NewSimTracer returns a tracer reading virtual time from now —
// typically a simclock.Clock's Now method — so simulation spans carry
// deterministic virtual timestamps.
func NewSimTracer(now func() time.Duration) *Tracer {
	if now == nil {
		panic("obs: NewSimTracer with nil clock")
	}
	return &Tracer{now: now}
}

// Now reports the tracer's current clock reading (0 on a nil tracer).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// Span is one timed operation in a trace. Fields are private; use
// Spans for a snapshot. All methods are nil-safe.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64 // 0 = root
	root   uint64 // id of the tree's root span (its own id for roots)
	name   string
	start  time.Duration
	end    time.Duration
	ended  bool
	attrs  []Attr
}

// Start opens a root span. On a nil tracer it returns nil, and the
// nil span absorbs every further call.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0, t.now(), attrs)
}

// StartAt opens a root span with an explicit start time — for layers
// (like the analytical network model) that compute when an operation
// began rather than observing it.
func (t *Tracer) StartAt(name string, start time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0, start, attrs)
}

func (t *Tracer) newSpan(name string, parent, root uint64, start time.Duration, attrs []Attr) *Span {
	t.mu.Lock()
	t.nextID++
	s := &Span{tr: t, id: t.nextID, parent: parent, root: root, name: name, start: start, attrs: attrs}
	if root == 0 {
		s.root = s.id
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Child opens a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.root, s.tr.now(), attrs)
}

// ChildAt opens a nested span with an explicit start time.
func (s *Span) ChildAt(name string, start time.Duration, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.root, start, attrs)
}

// Set attaches (or appends) an attribute to the span.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
	return s
}

// End closes the span at the tracer's current clock reading. Ending a
// span twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.now())
}

// EndAt closes the span at an explicit time (clamped to the start so a
// span never has negative duration).
func (s *Span) EndAt(at time.Duration) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		if at < s.start {
			at = s.start
		}
		s.end = at
		s.ended = true
	}
	s.tr.mu.Unlock()
}

// Record writes a complete root span with explicit times in one call —
// the shape analytical layers use when an operation's start and end
// are computed rather than observed.
func (t *Tracer) Record(name string, start, end time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.newSpan(name, 0, 0, start, attrs).EndAt(end)
}

// SpanData is an exported snapshot of one span, as returned by Spans.
type SpanData struct {
	// ID is the span's tracer-unique identifier; Parent is the ID of the
	// enclosing span (0 for roots); Root is the ID of the tree's root.
	ID, Parent, Root uint64
	// Name labels the operation (dotted layer.operation by convention).
	Name string
	// Start and End are clock offsets; Ended reports whether End was
	// recorded (an unfinished span has End == 0).
	Start, End time.Duration
	Ended      bool
	// Attrs are the span's annotations in insertion order.
	Attrs []Attr
}

// Duration is the span's End − Start (0 while unfinished).
func (d SpanData) Duration() time.Duration {
	if !d.Ended {
		return 0
	}
	return d.End - d.Start
}

// Attr returns the named attribute's rendered value ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return attrString(a.Value)
		}
	}
	return ""
}

// Spans snapshots every span recorded so far, in start order (nil and
// empty tracers return nil).
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, SpanData{
			ID: s.id, Parent: s.parent, Root: s.root, Name: s.name,
			Start: s.start, End: s.end, Ended: s.ended,
			Attrs: append([]Attr(nil), s.attrs...),
		})
	}
	return out
}

// Reset discards every recorded span (the tracer's clock keeps
// running). Exports after a Reset cover only spans recorded since.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}
