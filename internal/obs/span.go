package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// TraceID is a 128-bit identifier naming one tracer's span namespace.
// It is what makes span IDs meaningful across processes: a span
// reference carried over the wire is (TraceID, span ID), and Merge
// joins dumps by matching the two. The zero TraceID means "none".
type TraceID [16]byte

// NewTraceID returns a random 128-bit trace ID.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil {
		panic(fmt.Sprintf("obs: reading random trace id: %v", err))
	}
	return id
}

// IsZero reports whether the trace ID is the zero ("none") value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the trace ID as 32 hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id %q is not 32 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return id, nil
}

// Tracer records hierarchical spans on a shared clock. It is safe for
// concurrent use: any goroutine may start, annotate, and end spans.
// A nil *Tracer is a valid no-op tracer — Start returns a nil *Span,
// whose methods are likewise no-ops — which is the zero-overhead
// contract instrumented code relies on.
type Tracer struct {
	now     func() time.Duration
	traceID TraceID
	epoch   time.Time // wall-clock zero of the span clock (zero for sim tracers)

	mu     sync.Mutex
	nextID uint64
	spans  []*Span
}

// NewTracer returns a tracer stamping spans with wall-clock offsets
// from the moment of construction. It carries a fresh random TraceID,
// so its spans can be referenced from other processes and its dumps
// merged (see Dump and Merge).
func NewTracer() *Tracer {
	epoch := time.Now()
	return &Tracer{
		now:     func() time.Duration { return time.Since(epoch) },
		traceID: NewTraceID(),
		epoch:   epoch,
	}
}

// NewSimTracer returns a tracer reading virtual time from now —
// typically a simclock.Clock's Now method — so simulation spans carry
// deterministic virtual timestamps. Sim tracers carry no TraceID and
// no wall-clock epoch: determinism matters more than mergeability.
func NewSimTracer(now func() time.Duration) *Tracer {
	if now == nil {
		panic("obs: NewSimTracer with nil clock")
	}
	return &Tracer{now: now}
}

// TraceID reports the tracer's 128-bit identity (zero on nil tracers
// and sim tracers).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// EpochUnixNano reports the wall-clock instant the tracer's span clock
// reads zero at, in Unix nanoseconds (0 for nil and sim tracers).
// Merging dumps from two processes aligns their timelines by comparing
// epochs.
func (t *Tracer) EpochUnixNano() int64 {
	if t == nil || t.epoch.IsZero() {
		return 0
	}
	return t.epoch.UnixNano()
}

// Now reports the tracer's current clock reading (0 on a nil tracer).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// Span is one timed operation in a trace. Fields are private; use
// Spans for a snapshot. All methods are nil-safe.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64 // 0 = root
	root   uint64 // id of the tree's root span (its own id for roots)
	name   string
	start  time.Duration
	end    time.Duration
	ended  bool
	attrs  []Attr

	// Remote parentage: set by StartRemote when the span's logical
	// parent lives in another process's tracer. The span is a local
	// root (parent 0) but records which foreign span caused it, so a
	// dump merge can re-attach it under that span.
	remoteTrace  TraceID
	remoteParent uint64
}

// SpanID reports the span's tracer-unique identifier (0 on nil) — the
// value a caller propagates over the wire so a peer's StartRemote can
// name this span as the remote parent.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Start opens a root span. On a nil tracer it returns nil, and the
// nil span absorbs every further call.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0, t.now(), attrs)
}

// StartAt opens a root span with an explicit start time — for layers
// (like the analytical network model) that compute when an operation
// began rather than observing it.
func (t *Tracer) StartAt(name string, start time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0, start, attrs)
}

// StartRemote opens a local root span whose logical parent is a span
// in another process: trace names that process's tracer and parentSpan
// the span within it. The linkage is recorded on the span so Merge can
// re-attach the local tree under its remote parent; with a zero trace
// it degrades to a plain Start.
func (t *Tracer) StartRemote(name string, trace TraceID, parentSpan uint64, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := t.newSpan(name, 0, 0, t.now(), attrs)
	if !trace.IsZero() && parentSpan != 0 {
		t.mu.Lock()
		s.remoteTrace = trace
		s.remoteParent = parentSpan
		t.mu.Unlock()
	}
	return s
}

func (t *Tracer) newSpan(name string, parent, root uint64, start time.Duration, attrs []Attr) *Span {
	t.mu.Lock()
	t.nextID++
	s := &Span{tr: t, id: t.nextID, parent: parent, root: root, name: name, start: start, attrs: attrs}
	if root == 0 {
		s.root = s.id
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Child opens a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.root, s.tr.now(), attrs)
}

// ChildAt opens a nested span with an explicit start time.
func (s *Span) ChildAt(name string, start time.Duration, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.root, start, attrs)
}

// Set attaches (or appends) an attribute to the span.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
	return s
}

// End closes the span at the tracer's current clock reading. Ending a
// span twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.now())
}

// EndAt closes the span at an explicit time (clamped to the start so a
// span never has negative duration).
func (s *Span) EndAt(at time.Duration) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		if at < s.start {
			at = s.start
		}
		s.end = at
		s.ended = true
	}
	s.tr.mu.Unlock()
}

// Record writes a complete root span with explicit times in one call —
// the shape analytical layers use when an operation's start and end
// are computed rather than observed.
func (t *Tracer) Record(name string, start, end time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.newSpan(name, 0, 0, start, attrs).EndAt(end)
}

// SpanData is an exported snapshot of one span, as returned by Spans.
type SpanData struct {
	// ID is the span's tracer-unique identifier; Parent is the ID of the
	// enclosing span (0 for roots); Root is the ID of the tree's root.
	ID, Parent, Root uint64
	// Name labels the operation (dotted layer.operation by convention).
	Name string
	// Start and End are clock offsets; Ended reports whether End was
	// recorded (an unfinished span has End == 0).
	Start, End time.Duration
	Ended      bool
	// Attrs are the span's annotations in insertion order.
	Attrs []Attr
	// RemoteTrace/RemoteParent record a cross-process parent set by
	// StartRemote (zero when the span's parent is local or absent).
	RemoteTrace  TraceID
	RemoteParent uint64
}

// Duration is the span's End − Start (0 while unfinished).
func (d SpanData) Duration() time.Duration {
	if !d.Ended {
		return 0
	}
	return d.End - d.Start
}

// Attr returns the named attribute's rendered value ("" when absent).
func (d SpanData) Attr(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key {
			return attrString(a.Value)
		}
	}
	return ""
}

// Spans snapshots every span recorded so far, in start order (nil and
// empty tracers return nil).
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, SpanData{
			ID: s.id, Parent: s.parent, Root: s.root, Name: s.name,
			Start: s.start, End: s.end, Ended: s.ended,
			Attrs:       append([]Attr(nil), s.attrs...),
			RemoteTrace: s.remoteTrace, RemoteParent: s.remoteParent,
		})
	}
	return out
}

// Reset discards every recorded span (the tracer's clock keeps
// running). Exports after a Reset cover only spans recorded since.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}
