package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", f.Cap())
	}
	for i := 1; i <= 10; i++ {
		f.Record(FlightRecord{At: int64(i), Name: fmt.Sprintf("req-%d", i), DurUS: int64(i * 10)})
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot kept %d records, want 4", len(snap))
	}
	for i, r := range snap {
		wantSeq := uint64(7 + i) // the ring keeps the newest 4 of 10
		if r.Seq != wantSeq {
			t.Fatalf("record %d: Seq %d, want %d (snapshot %+v)", i, r.Seq, wantSeq, snap)
		}
		if r.Name != fmt.Sprintf("req-%d", wantSeq) {
			t.Fatalf("record %d: Name %q does not match Seq %d", i, r.Name, wantSeq)
		}
	}
}

func TestFlightRecorderDumpRoundTrip(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightRecord{At: 100, Name: "server.commit", User: "alice", DurUS: 42})
	f.Record(FlightRecord{At: 200, Name: "server.crash", Err: "durable state dead"})
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatalf("ReadFlightDump: %v", err)
	}
	if want := f.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, want)
	}
	if _, err := ReadFlightDump(bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("corrupt flight dump parsed without error")
	}
}

func TestFlightRecorderNilAndTiny(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightRecord{Name: "x"}) // must not panic
	if f.Snapshot() != nil {
		t.Fatal("nil recorder snapshot not nil")
	}
	if f.Cap() != 0 {
		t.Fatalf("nil Cap = %d", f.Cap())
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err %v, %d bytes", err, buf.Len())
	}

	tiny := NewFlightRecorder(0) // raised to 1
	tiny.Record(FlightRecord{Name: "a"})
	tiny.Record(FlightRecord{Name: "b"})
	snap := tiny.Snapshot()
	if len(snap) != 1 || snap[0].Name != "b" {
		t.Fatalf("size-1 ring kept %+v, want just b", snap)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Record(FlightRecord{Name: "op"})
			}
		}()
	}
	wg.Wait()
	snap := f.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("got %d records, want 16", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot not strictly ordered: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
}
