package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q (err %v)", buf.String(), err)
	}
}

// TestHistogramBucketBoundaries pins the fixed log-bucket layout:
// upper bounds 1, 2, 4, …, 2^40, +Inf, with exact powers of two
// landing in their own bucket (le is inclusive).
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1023, 10}, {1024, 10}, {1025, 11},
		{1 << 40, 40},
		{1<<40 + 1, HistBuckets}, // +Inf
		{math.MaxInt64, HistBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d (bound %d), want %d (bound %d)",
				c.v, got, BucketBound(got), c.want, BucketBound(c.want))
		}
	}
	if BucketBound(0) != 1 || BucketBound(10) != 1024 || BucketBound(40) != 1<<40 {
		t.Fatalf("BucketBound layout broken: %d %d %d",
			BucketBound(0), BucketBound(10), BucketBound(40))
	}
	if BucketBound(HistBuckets) != math.MaxInt64 {
		t.Fatalf("+Inf bound = %d", BucketBound(HistBuckets))
	}

	h := &Histogram{}
	h.Observe(1)
	h.Observe(2)
	h.Observe(1024)
	if h.Count() != 3 || h.Sum() != 1027 {
		t.Fatalf("count %d sum %d, want 3 / 1027", h.Count(), h.Sum())
	}
	if h.buckets[0].Load() != 1 || h.buckets[1].Load() != 1 || h.buckets[10].Load() != 1 {
		t.Fatalf("bucket placement wrong: %v %v %v",
			h.buckets[0].Load(), h.buckets[1].Load(), h.buckets[10].Load())
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// registration races, counter adds, histogram observes — and checks
// the totals. Run under -race (make check does) this doubles as the
// data-race proof for the lock-free hot path.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-registering inside the loop exercises the get-or-create
			// path concurrently with updates.
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total", "ops").Inc()
				r.Gauge("level", "level").Add(1)
				r.Histogram("sizes", "sizes").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level", "").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("sizes", "")
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var wantSum int64
	for i := 0; i < perWorker; i++ {
		wantSum += int64(i)
	}
	if h.Sum() != wantSum*workers {
		t.Fatalf("histogram sum = %d, want %d", h.Sum(), wantSum*workers)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestWritePrometheusGolden pins the exact exposition text for a small
// registry, including cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("syncd_uploads_total", "Completed uploads.").Add(3)
	r.Gauge("syncd_active_connections", "Live client connections.").Set(2)
	h := r.Histogram("syncd_session_tue_milli", "Per-session TUE x1000.")
	h.Observe(1000) // le=1024
	h.Observe(1500) // le=2048
	h.Observe(1)    // le=1

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	var b strings.Builder
	b.WriteString("# HELP syncd_active_connections Live client connections.\n")
	b.WriteString("# TYPE syncd_active_connections gauge\n")
	b.WriteString("syncd_active_connections 2\n")
	b.WriteString("# HELP syncd_session_tue_milli Per-session TUE x1000.\n")
	b.WriteString("# TYPE syncd_session_tue_milli histogram\n")
	cum := 0
	for i := 0; i <= HistBuckets; i++ {
		switch i {
		case 0, 10, 11: // le=1, le=1024, le=2048
			cum++
		}
		le := "+Inf"
		if i < HistBuckets {
			le = strconv.FormatInt(int64(1)<<uint(i), 10)
		}
		b.WriteString("syncd_session_tue_milli_bucket{le=\"" + le + "\"} " +
			strconv.Itoa(cum) + "\n")
	}
	b.WriteString("syncd_session_tue_milli_sum 2501\n")
	b.WriteString("syncd_session_tue_milli_count 3\n")
	b.WriteString("# HELP syncd_uploads_total Completed uploads.\n")
	b.WriteString("# TYPE syncd_uploads_total counter\n")
	b.WriteString("syncd_uploads_total 3\n")

	if got != b.String() {
		t.Fatalf("prometheus text drifted.\n--- got ---\n%s--- want ---\n%s", got, b.String())
	}
}

// TestHistogramEdgeRendering covers the exposition's edge cases: a
// histogram with zero observations must still render every cumulative
// bucket (all zero), an observation on an exact power-of-two boundary
// must be counted ≤ that bound (le is inclusive), and a value above the
// top finite bucket must appear only in +Inf.
func TestHistogramEdgeRendering(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_h", "No observations.")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`empty_h_bucket{le="1"} 0`,
		`empty_h_bucket{le="1099511627776"} 0`, // 2^40, top finite bucket
		`empty_h_bucket{le="+Inf"} 0`,
		"empty_h_sum 0",
		"empty_h_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-observation render missing %q:\n%s", want, out)
		}
	}

	h := r.Histogram("edge_h", "Boundary cases.")
	h.Observe(1 << 20)   // exact boundary: belongs to le="1048576"
	h.Observe(1<<40 + 1) // above the top finite bucket: +Inf only
	h.Observe(math.MaxInt64 - 1)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{
		`edge_h_bucket{le="524288"} 0`,        // 2^19: boundary not rounded down
		`edge_h_bucket{le="1048576"} 1`,       // 2^20 inclusive
		`edge_h_bucket{le="1099511627776"} 1`, // 2^40 cumulative: only the 2^20 obs
		`edge_h_bucket{le="+Inf"} 3`,
		"edge_h_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("edge render missing %q:\n%s", want, out)
		}
	}
	var wantSum int64 // wraps; atomic adds wrap identically
	for _, v := range []int64{1 << 20, 1<<40 + 1, math.MaxInt64 - 1} {
		wantSum += v
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("edge sum = %d, want %d (int64 wrap is expected arithmetic, not a render bug)", got, wantSum)
	}
}
