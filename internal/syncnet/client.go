package syncnet

import (
	"crypto/md5"
	"fmt"
	"hash"
	"io"
	"net"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/delta"
	"cloudsync/internal/obs"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/protocol"
	"cloudsync/internal/wire"
)

// UploadStats describes what one Upload cost.
type UploadStats struct {
	// DedupHit: the server already had the content; nothing was sent.
	DedupHit bool
	// DeltaSync: the file was updated incrementally from a signature.
	DeltaSync bool
	// PayloadBytes is the content payload put on the wire (after
	// compression / delta reduction) by the final, successful attempt.
	PayloadBytes int
	// Version is the committed server-side version.
	Version uint64
	// Attempts is how many tries the upload took (1 = no faults).
	Attempts int
	// ResumedFrom is the payload offset the successful attempt continued
	// from (0 when the upload never resumed).
	ResumedFrom int64
}

// Client is a sync client for one user over one connection. It is not
// safe for concurrent use; open one client per goroutine.
type Client struct {
	conn        net.Conn
	user        string
	device      string
	compression comp.Level
	blockSize   int
	retry       RetryPolicy
	dialer      func() (net.Conn, error)
	jitterRNG   jitterXorshift

	ids   map[string]uint64
	known map[string]bool // names known to exist server-side

	// Pooled live-path scratch: enc frames outgoing messages, readBuf
	// absorbs incoming ones (both from the wire frame pool, returned on
	// Close), segs is the reusable ledger-segment layout, and digest is
	// the MD5 state the batched upload paths reuse across files.
	enc     []byte
	readBuf []byte
	segs    []causeSeg
	digest  hash.Hash

	// tracer, when set via WithTracer, records one span per operation
	// with children per attempt and per protocol stage, and meters the
	// client-side wire bytes. Nil keeps the untraced fast path.
	tracer          *obs.Tracer
	op              *obs.Span // span of the operation currently in flight
	att             *obs.Span // span of the current retry attempt, if any
	wireIn, wireOut int64

	// propagate, set via WithTraceContext, opts the session into
	// cross-process trace propagation: Hello advertises CapTrace and
	// each attempt is prefixed with a TraceCtx frame. Inert without a
	// tracer.
	propagate bool
	// replyWaitUS, set via WithClientMetrics, times every blocking wait
	// for a server reply — the wire round-trip as the client sees it.
	replyWaitUS *obs.Histogram

	// ledger, when set via WithLedger, attributes every metered wire
	// byte (both directions) to a cause. charged tracks how much this
	// client has attributed so Close can sweep the residual — partial
	// frames around a connection cut — into framing, keeping
	// ledger-total == wireIn+wireOut exact.
	ledger  *ledger.Ledger
	charged int64
	attempt int // current retry attempt (1-based; 0 during Hello)
	// txHigh / rxHigh track, per file, the highest payload offset sent
	// or received this operation — per file, because a pipelined batch
	// has several files' Data pieces interleaved in one operation and
	// each file's re-sends must be attributed independently. Send-side
	// marks are keyed by the file's position in the operation (0 for
	// single-file ops), not by wire fileID: a retry that restarts after
	// the server lost its stash gets a fresh fileID, yet its re-sent
	// ranges are still retransmits of the same file.
	txHigh map[uint64]int64
	rxHigh map[uint64]int64
}

// WireTotals reports the bytes this client has read from and written to
// its connection(s), across reconnects. Metering requires WithTracer or
// WithLedger; without either both totals stay zero.
func (c *Client) WireTotals() (in, out int64) { return c.wireIn, c.wireOut }

// meterConn counts a traced client's wire bytes in both directions.
type meterConn struct {
	net.Conn
	in, out *int64
}

func (mc *meterConn) Read(p []byte) (int, error) {
	n, err := mc.Conn.Read(p)
	*mc.in += int64(n)
	return n, err
}

func (mc *meterConn) Write(p []byte) (int, error) {
	n, err := mc.Conn.Write(p)
	*mc.out += int64(n)
	return n, err
}

// parent is the span new protocol-stage spans should hang off: the
// current attempt when retrying, else the operation itself.
func (c *Client) parent() *obs.Span {
	if c.att != nil {
		return c.att
	}
	return c.op
}

// endOp closes the in-flight operation span, tagging it with the
// operation's wire-byte deltas and any error.
func (c *Client) endOp(in0, out0 int64, err error) {
	if c.op == nil {
		return
	}
	c.op.Set("bytes_in", c.wireIn-in0)
	c.op.Set("bytes_out", c.wireOut-out0)
	if err != nil {
		c.op.Set("error", err.Error())
	}
	c.op.End()
	c.op = nil
}

// ClientOption customizes a client.
type ClientOption func(*Client)

// WithCompression sets the content compression level (must match the
// server's configuration).
func WithCompression(l comp.Level) ClientOption {
	return func(c *Client) { c.compression = l }
}

// WithBlockSize sets the delta-sync granularity requested from the
// server (0 = server default).
func WithBlockSize(bs int) ClientOption {
	return func(c *Client) { c.blockSize = bs }
}

// WithTracer records client-side spans (one per operation, with
// children per attempt and protocol stage) on tr and meters wire bytes
// for WireTotals. A nil tr leaves the client completely uninstrumented.
func WithTracer(tr *obs.Tracer) ClientOption {
	return func(c *Client) { c.tracer = tr }
}

// WithLedger attributes every wire byte the client sends or receives to
// a traffic cause on l (and enables wire metering, like WithTracer).
// The sum over all causes equals WireTotals' in+out exactly once the
// client is closed; a nil l leaves the client uninstrumented.
func WithLedger(l *ledger.Ledger) ClientOption {
	return func(c *Client) { c.ledger = l }
}

// WithTraceContext opts the session into cross-process trace
// propagation: the Hello advertises protocol.CapTrace and every
// operation attempt is prefixed with a TraceCtx frame naming the
// client tracer's identity and the attempt span, so a trace-capable
// server parents its spans under this client's operation (joined by
// obs.Merge). Requires WithTracer — without a tracer the option is
// inert and not a single wire byte changes.
func WithTraceContext() ClientOption {
	return func(c *Client) { c.propagate = true }
}

// WithClientMetrics registers the client's phase instruments on reg:
// syncnet_client_reply_wait_us, the microseconds each blocking wait
// for a server reply took (the wire round-trip plus server queueing
// and service, as the client experiences it). A nil reg leaves the
// client unmetered.
func WithClientMetrics(reg *obs.Registry) ClientOption {
	return func(c *Client) {
		c.replyWaitUS = reg.Histogram("syncnet_client_reply_wait_us",
			"Microseconds a client blocked waiting for a server reply (round-trip wait).")
	}
}

// helloCaps is the capability word the session's Hello advertises.
func (c *Client) helloCaps() uint32 {
	if c.propagate && c.tracer != nil {
		return protocol.CapTrace
	}
	return 0
}

// sendTraceCtx prefixes the current attempt with the client's trace
// context so the server can parent its spans under it. No-op unless
// the session propagates (WithTraceContext plus a tracer).
func (c *Client) sendTraceCtx() error {
	if !c.propagate || c.tracer == nil {
		return nil
	}
	return c.send(&protocol.TraceCtx{
		TraceID: [16]byte(c.tracer.TraceID()),
		SpanID:  c.parent().SpanID(),
	})
}

// NewClient starts a session on an established connection. It sends
// the Hello immediately.
func NewClient(conn net.Conn, user, device string, opts ...ClientOption) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("syncnet: empty user")
	}
	c := &Client{
		conn:    conn,
		user:    user,
		device:  device,
		ids:     make(map[string]uint64),
		known:   make(map[string]bool),
		enc:     wire.GetFrame(256),
		readBuf: wire.GetFrame(1024),
		txHigh:  make(map[uint64]int64),
		rxHigh:  make(map[uint64]int64),
	}
	for _, opt := range opts {
		opt(c)
	}
	c.jitterRNG = newJitterRNG(c.retry.Seed)
	if c.tracer != nil || c.ledger != nil {
		c.conn = &meterConn{Conn: conn, in: &c.wireIn, out: &c.wireOut}
	}
	if err := c.send(&protocol.Hello{User: user, Device: device, Version: "cloudsync/1", Caps: c.helloCaps()}); err != nil {
		return nil, err
	}
	return c, nil
}

// Dial connects to a server and starts a session. It installs a
// redialing transport factory, so a retry policy set via WithRetry can
// reconnect after transport failures (WithDialer overrides it).
func Dial(network, addr, user, device string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("syncnet: dial: %w", err)
	}
	redial := func() (net.Conn, error) { return net.Dial(network, addr) }
	c, err := NewClient(conn, user, device, append([]ClientOption{WithDialer(redial)}, opts...)...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close ends the session. With a ledger attached it also sweeps the
// residual — metered bytes that never formed a complete message, such
// as partial frames around a connection cut — into framing, after
// which the ledger total equals the wire total exactly.
func (c *Client) Close() error {
	err := c.conn.Close()
	if c.ledger != nil {
		if resid := c.wireIn + c.wireOut - c.charged; resid > 0 {
			c.ledger.Add(ledger.Framing, resid)
			c.charged += resid
		}
	}
	wire.PutFrame(c.enc)
	wire.PutFrame(c.readBuf)
	c.enc, c.readBuf = nil, nil
	return err
}

// send encodes and writes one message on the session connection,
// charging the bytes actually written to the ledger.
func (c *Client) send(m protocol.Message) error { return c.sendOn(c.conn, m) }

func (c *Client) sendOn(conn net.Conn, m protocol.Message) error {
	enc := protocol.AppendEncode(c.enc[:0], m)
	c.enc = enc[:0]
	n, err := conn.Write(enc)
	c.chargeWrite(m, int64(len(enc)), int64(n))
	if err != nil {
		return fmt.Errorf("syncnet: sending %v: %w", m.Type(), err)
	}
	return nil
}

// sendData writes one Data piece as a vectored send: the ~25-byte
// frame header and body prefix come from the pooled scratch, the
// payload slice goes to the connection directly — content is never
// copied into a frame buffer, and on connections that support
// net.Buffers both land in a single writev. key identifies the file
// within the current operation for retransmit attribution (0 for
// single-file operations, the batch position for pipelined ones).
func (c *Client) sendData(key, fileID uint64, offset int64, payload []byte) error {
	hdr := protocol.AppendDataHeader(c.enc[:0], fileID, offset, len(payload))
	c.enc = hdr[:0]
	n, err := writeVectored(c.conn, hdr, payload)
	c.chargeDataWrite(key, offset, int64(len(payload)), int64(len(hdr)+len(payload)), n)
	if err != nil {
		return fmt.Errorf("syncnet: sending data: %w", err)
	}
	return nil
}

// writeVectored writes hdr then payload through one net.Buffers send,
// unwrapping the metering layer so the underlying connection can use
// writev while byte counting still happens exactly once.
func writeVectored(w io.Writer, hdr, payload []byte) (int64, error) {
	bufs := net.Buffers{hdr, payload}
	if mc, ok := w.(*meterConn); ok {
		n, err := bufs.WriteTo(mc.Conn)
		*mc.out += n
		return n, err
	}
	return bufs.WriteTo(w)
}

// chargeWrite attributes the n bytes a write put on the wire. Data
// pieces split against the operation's sent high-water mark (re-sent
// ranges are retransmits); any other message re-sent on a retry attempt
// is a retransmit wholesale.
func (c *Client) chargeWrite(m protocol.Message, total, n int64) {
	if c.ledger == nil {
		return
	}
	segs := messageSegments(c.segs[:0], m, total)
	if d, ok := m.(*protocol.Data); ok {
		segs = splitDataByHighWater(segs, d.Offset, int64(len(d.Payload)), c.txHigh, 0)
	} else if c.attempt > 1 {
		segs = retagRetransmit(segs)
	}
	c.charged += chargeSegs(c.ledger, segs, n)
	c.segs = segs[:0]
}

// chargeDataWrite is chargeWrite for the vectored Data path, which
// never materializes a protocol.Data value.
func (c *Client) chargeDataWrite(key uint64, offset, payloadLen, total, n int64) {
	if c.ledger == nil {
		return
	}
	segs := appendDataSegments(c.segs[:0], total, payloadLen)
	segs = splitDataByHighWater(segs, offset, payloadLen, c.txHigh, key)
	c.charged += chargeSegs(c.ledger, segs, n)
	c.segs = segs[:0]
}

// chargeRead attributes one fully read message's wire bytes. Download
// pieces split against the received high-water mark, so content
// re-fetched after a mid-download reconnect shows up as retransmit.
func (c *Client) chargeRead(m protocol.Message, consumed int64) {
	if c.ledger == nil {
		return
	}
	segs := messageSegments(c.segs[:0], m, consumed)
	if d, ok := m.(*protocol.Data); ok {
		segs = splitDataByHighWater(segs, d.Offset, int64(len(d.Payload)), c.rxHigh, 0)
	}
	c.charged += chargeSegs(c.ledger, segs, consumed)
	c.segs = segs[:0]
}

func (c *Client) read() (protocol.Message, error) {
	in0 := c.wireIn
	var t0 time.Time
	if c.replyWaitUS != nil {
		t0 = time.Now()
	}
	m, buf, err := protocol.ReadMessageBuf(c.conn, c.readBuf)
	if c.replyWaitUS != nil {
		c.replyWaitUS.Observe(time.Since(t0).Microseconds())
	}
	c.readBuf = buf
	if err != nil {
		return nil, fmt.Errorf("syncnet: reading reply: %w", err)
	}
	c.chargeRead(m, c.wireIn-in0)
	if e, ok := m.(*protocol.Error); ok {
		return nil, e
	}
	return m, nil
}

// Upload synchronizes data under name. For a file the server already
// holds, it tries incremental (rsync) sync against the server's
// signature; otherwise it performs a full upload with dedup probing
// and compression. Under a retry policy, transport failures reconnect
// and retry: the delta path re-requests the signature (idempotent —
// the signature reflects whatever the server holds now), and the full
// path asks the server how much of the interrupted payload it already
// buffered, re-sending only the unacknowledged tail.
func (c *Client) Upload(name string, data []byte) (UploadStats, error) {
	c.op = c.tracer.Start("client.upload",
		obs.String("name", name), obs.Int("size", int64(len(data))))
	in0, out0 := c.wireIn, c.wireOut
	var stats UploadStats
	err := c.withRetry(func(attempt int) error {
		var err error
		stats, err = c.uploadOnce(name, data, attempt)
		return err
	})
	c.op.Set("attempts", stats.Attempts)
	c.op.Set("payload_bytes", stats.PayloadBytes)
	if stats.DedupHit {
		c.op.Set("dedup_hit", true)
	}
	if stats.DeltaSync {
		c.op.Set("delta_sync", true)
	}
	if stats.ResumedFrom > 0 {
		c.op.Set("resumed_from", stats.ResumedFrom)
	}
	c.endOp(in0, out0, err)
	return stats, err
}

func (c *Client) uploadOnce(name string, data []byte, attempt int) (UploadStats, error) {
	if c.known[name] {
		stats, err := c.deltaUpload(name, data)
		if err == nil {
			stats.Attempts = attempt
			return stats, nil
		}
		var perr *protocol.Error
		if isProtoErr(err, &perr) && perr.Code == protocol.ErrNotFound {
			// Deleted server-side meanwhile: fall through to full upload.
			delete(c.known, name)
		} else {
			return stats, err
		}
	}
	stats, err := c.fullUpload(name, data, attempt)
	stats.Attempts = attempt
	return stats, err
}

func isProtoErr(err error, out **protocol.Error) bool {
	e, ok := err.(*protocol.Error)
	if ok {
		*out = e
	}
	return ok
}

func (c *Client) fullUpload(name string, data []byte, attempt int) (UploadStats, error) {
	sp := c.parent().Child("client.full_upload")
	defer sp.End()
	var stats UploadStats
	defer func() {
		sp.Set("payload_bytes", stats.PayloadBytes)
		if stats.DedupHit {
			sp.Set("dedup_hit", true)
		}
	}()
	hash := md5.Sum(data)
	payload := comp.Compress(data, c.compression)

	// After a reconnect, probe for a stashed partial upload before
	// re-announcing the file: a positive answer skips the index exchange
	// and the payload prefix the server already buffered.
	var fileID uint64
	var resumeAt int64
	if attempt > 1 {
		info, err := c.resumeQuery(name, int64(len(data)), hash)
		if err != nil {
			return stats, err
		}
		if info.Offset > 0 && info.Offset <= int64(len(payload)) {
			fileID = info.FileID
			resumeAt = info.Offset
			stats.ResumedFrom = resumeAt
		}
	}

	if resumeAt == 0 {
		if err := c.send(&protocol.IndexUpdate{
			FileID: c.ids[name], Name: name, Size: int64(len(data)), FileHash: hash,
		}); err != nil {
			return stats, err
		}
		m, err := c.read()
		if err != nil {
			return stats, err
		}
		reply, ok := m.(*protocol.IndexReply)
		if !ok {
			return stats, fmt.Errorf("syncnet: expected index reply, got %v", m.Type())
		}
		fileID = reply.FileID
		stats.DedupHit = reply.DedupHit
	}
	c.ids[name] = fileID

	if !stats.DedupHit {
		stats.PayloadBytes = len(payload) - int(resumeAt)
		for off := int(resumeAt); off < len(payload); off += DataPieceSize {
			end := off + DataPieceSize
			if end > len(payload) {
				end = len(payload)
			}
			if err := c.sendData(0, fileID, int64(off), payload[off:end]); err != nil {
				return stats, err
			}
		}
	}
	if err := c.send(&protocol.Commit{FileID: fileID}); err != nil {
		return stats, err
	}
	ack, err := c.readAck()
	if err != nil {
		return stats, err
	}
	stats.Version = ack.Version
	c.known[name] = true
	return stats, nil
}

// resumeQuery asks the server how much of an interrupted upload it
// already holds.
func (c *Client) resumeQuery(name string, size int64, hash protocol.Fingerprint) (*protocol.ResumeInfo, error) {
	sp := c.parent().Child("client.resume_query", obs.String("name", name))
	defer sp.End()
	if err := c.send(&protocol.ResumeQuery{Name: name, Size: size, FileHash: hash}); err != nil {
		return nil, err
	}
	m, err := c.read()
	if err != nil {
		return nil, err
	}
	info, ok := m.(*protocol.ResumeInfo)
	if !ok {
		return nil, fmt.Errorf("syncnet: expected resume info, got %v", m.Type())
	}
	sp.Set("offset", info.Offset)
	return info, nil
}

func (c *Client) deltaUpload(name string, data []byte) (UploadStats, error) {
	sp := c.parent().Child("client.delta_sync")
	defer sp.End()
	var stats UploadStats
	defer func() { sp.Set("payload_bytes", stats.PayloadBytes) }()
	if err := c.send(&protocol.SigRequest{Name: name, BlockSize: uint32(c.blockSize)}); err != nil {
		return stats, err
	}
	m, err := c.read()
	if err != nil {
		return stats, err
	}
	sigMsg, ok := m.(*protocol.SignatureMsg)
	if !ok {
		return stats, fmt.Errorf("syncnet: expected signature, got %v", m.Type())
	}
	sp.Set("sig_bytes", len(sigMsg.Payload))
	sig, err := delta.DecodeSignature(sigMsg.Payload)
	if err != nil {
		return stats, err
	}
	d := delta.Compute(sig, data)
	payload := d.Encode()
	if err := c.send(&protocol.DeltaMsg{Name: name, Payload: payload}); err != nil {
		return stats, err
	}
	ack, err := c.readAck()
	if err != nil {
		return stats, err
	}
	stats.DeltaSync = true
	stats.PayloadBytes = len(payload)
	stats.Version = ack.Version
	return stats, nil
}

func (c *Client) readAck() (*protocol.Ack, error) {
	m, err := c.read()
	if err != nil {
		return nil, err
	}
	ack, ok := m.(*protocol.Ack)
	if !ok {
		return nil, fmt.Errorf("syncnet: expected ack, got %v", m.Type())
	}
	if !ack.OK {
		return nil, fmt.Errorf("syncnet: server rejected the operation")
	}
	return ack, nil
}

// Download fetches a file's content. Under a retry policy, a transport
// failure mid-transfer reconnects and re-requests the file from the
// start.
func (c *Client) Download(name string) ([]byte, error) {
	c.op = c.tracer.Start("client.download", obs.String("name", name))
	in0, out0 := c.wireIn, c.wireOut
	var data []byte
	err := c.withRetry(func(int) error {
		var err error
		data, err = c.downloadOnce(name)
		return err
	})
	c.op.Set("size", len(data))
	c.endOp(in0, out0, err)
	return data, err
}

func (c *Client) downloadOnce(name string) ([]byte, error) {
	if err := c.send(&protocol.Get{Name: name}); err != nil {
		return nil, err
	}
	m, err := c.read()
	if err != nil {
		return nil, err
	}
	info, ok := m.(*protocol.FileInfo)
	if !ok {
		return nil, fmt.Errorf("syncnet: expected file info, got %v", m.Type())
	}
	var payload []byte
	for {
		m, err := c.read()
		if err != nil {
			return nil, err
		}
		switch v := m.(type) {
		case *protocol.Data:
			if v.Offset != int64(len(payload)) {
				return nil, fmt.Errorf("syncnet: out-of-order download piece at %d", v.Offset)
			}
			payload = append(payload, v.Payload...)
		case *protocol.Ack:
			raw, err := comp.Decompress(payload, comp.Level(info.Compression))
			if err != nil {
				return nil, err
			}
			if int64(len(raw)) != info.Size {
				return nil, fmt.Errorf("syncnet: downloaded %d bytes, expected %d", len(raw), info.Size)
			}
			c.ids[name] = info.FileID
			c.known[name] = true
			return raw, nil
		default:
			return nil, fmt.Errorf("syncnet: unexpected %v during download", m.Type())
		}
	}
}

// Delete removes a file (server-side fake deletion). Under a retry
// policy, a not-found answer on a retry attempt counts as success: the
// previous attempt's deletion may have been applied before its ack was
// lost, and deletion is the state the caller asked for.
func (c *Client) Delete(name string) error {
	id, ok := c.ids[name]
	if !ok {
		return fmt.Errorf("syncnet: %q was never synced by this client", name)
	}
	c.op = c.tracer.Start("client.delete", obs.String("name", name))
	in0, out0 := c.wireIn, c.wireOut
	err := c.withRetry(func(attempt int) error {
		if err := c.send(&protocol.Delete{FileID: id}); err != nil {
			return err
		}
		_, err := c.readAck()
		if err != nil && attempt > 1 {
			var perr *protocol.Error
			if isProtoErr(err, &perr) && perr.Code == protocol.ErrNotFound {
				return nil
			}
		}
		return err
	})
	c.endOp(in0, out0, err)
	if err != nil {
		return err
	}
	delete(c.known, name)
	return nil
}
