package syncnet

import (
	"crypto/md5"
	"fmt"
	"net"

	"cloudsync/internal/comp"
	"cloudsync/internal/delta"
	"cloudsync/internal/protocol"
)

// UploadStats describes what one Upload cost.
type UploadStats struct {
	// DedupHit: the server already had the content; nothing was sent.
	DedupHit bool
	// DeltaSync: the file was updated incrementally from a signature.
	DeltaSync bool
	// PayloadBytes is the content payload put on the wire (after
	// compression / delta reduction).
	PayloadBytes int
	// Version is the committed server-side version.
	Version uint64
}

// Client is a sync client for one user over one connection. It is not
// safe for concurrent use; open one client per goroutine.
type Client struct {
	conn        net.Conn
	user        string
	compression comp.Level
	blockSize   int

	ids   map[string]uint64
	known map[string]bool // names known to exist server-side
}

// ClientOption customizes a client.
type ClientOption func(*Client)

// WithCompression sets the content compression level (must match the
// server's configuration).
func WithCompression(l comp.Level) ClientOption {
	return func(c *Client) { c.compression = l }
}

// WithBlockSize sets the delta-sync granularity requested from the
// server (0 = server default).
func WithBlockSize(bs int) ClientOption {
	return func(c *Client) { c.blockSize = bs }
}

// NewClient starts a session on an established connection. It sends
// the Hello immediately.
func NewClient(conn net.Conn, user, device string, opts ...ClientOption) (*Client, error) {
	if user == "" {
		return nil, fmt.Errorf("syncnet: empty user")
	}
	c := &Client{
		conn:  conn,
		user:  user,
		ids:   make(map[string]uint64),
		known: make(map[string]bool),
	}
	for _, opt := range opts {
		opt(c)
	}
	if err := send(conn, &protocol.Hello{User: user, Device: device, Version: "cloudsync/1"}); err != nil {
		return nil, err
	}
	return c, nil
}

// Dial connects to a server and starts a session.
func Dial(network, addr, user, device string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("syncnet: dial: %w", err)
	}
	c, err := NewClient(conn, user, device, opts...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) read() (protocol.Message, error) {
	m, err := protocol.ReadMessage(c.conn)
	if err != nil {
		return nil, fmt.Errorf("syncnet: reading reply: %w", err)
	}
	if e, ok := m.(*protocol.Error); ok {
		return nil, e
	}
	return m, nil
}

// Upload synchronizes data under name. For a file the server already
// holds, it tries incremental (rsync) sync against the server's
// signature; otherwise it performs a full upload with dedup probing
// and compression.
func (c *Client) Upload(name string, data []byte) (UploadStats, error) {
	if c.known[name] {
		stats, err := c.deltaUpload(name, data)
		if err == nil {
			return stats, nil
		}
		var perr *protocol.Error
		if isProtoErr(err, &perr) && perr.Code == protocol.ErrNotFound {
			// Deleted server-side meanwhile: fall through to full upload.
			delete(c.known, name)
		} else {
			return stats, err
		}
	}
	return c.fullUpload(name, data)
}

func isProtoErr(err error, out **protocol.Error) bool {
	e, ok := err.(*protocol.Error)
	if ok {
		*out = e
	}
	return ok
}

func (c *Client) fullUpload(name string, data []byte) (UploadStats, error) {
	var stats UploadStats
	hash := md5.Sum(data)
	if err := send(c.conn, &protocol.IndexUpdate{
		FileID: c.ids[name], Name: name, Size: int64(len(data)), FileHash: hash,
	}); err != nil {
		return stats, err
	}
	m, err := c.read()
	if err != nil {
		return stats, err
	}
	reply, ok := m.(*protocol.IndexReply)
	if !ok {
		return stats, fmt.Errorf("syncnet: expected index reply, got %v", m.Type())
	}
	c.ids[name] = reply.FileID
	stats.DedupHit = reply.DedupHit

	if !reply.DedupHit {
		payload := comp.Compress(data, c.compression)
		stats.PayloadBytes = len(payload)
		for off := 0; off < len(payload); off += DataPieceSize {
			end := off + DataPieceSize
			if end > len(payload) {
				end = len(payload)
			}
			if err := send(c.conn, &protocol.Data{
				FileID: reply.FileID, Offset: int64(off), Payload: payload[off:end],
			}); err != nil {
				return stats, err
			}
		}
	}
	if err := send(c.conn, &protocol.Commit{FileID: reply.FileID}); err != nil {
		return stats, err
	}
	ack, err := c.readAck()
	if err != nil {
		return stats, err
	}
	stats.Version = ack.Version
	c.known[name] = true
	return stats, nil
}

func (c *Client) deltaUpload(name string, data []byte) (UploadStats, error) {
	var stats UploadStats
	if err := send(c.conn, &protocol.SigRequest{Name: name, BlockSize: uint32(c.blockSize)}); err != nil {
		return stats, err
	}
	m, err := c.read()
	if err != nil {
		return stats, err
	}
	sigMsg, ok := m.(*protocol.SignatureMsg)
	if !ok {
		return stats, fmt.Errorf("syncnet: expected signature, got %v", m.Type())
	}
	sig, err := delta.DecodeSignature(sigMsg.Payload)
	if err != nil {
		return stats, err
	}
	d := delta.Compute(sig, data)
	payload := d.Encode()
	if err := send(c.conn, &protocol.DeltaMsg{Name: name, Payload: payload}); err != nil {
		return stats, err
	}
	ack, err := c.readAck()
	if err != nil {
		return stats, err
	}
	stats.DeltaSync = true
	stats.PayloadBytes = len(payload)
	stats.Version = ack.Version
	return stats, nil
}

func (c *Client) readAck() (*protocol.Ack, error) {
	m, err := c.read()
	if err != nil {
		return nil, err
	}
	ack, ok := m.(*protocol.Ack)
	if !ok {
		return nil, fmt.Errorf("syncnet: expected ack, got %v", m.Type())
	}
	if !ack.OK {
		return nil, fmt.Errorf("syncnet: server rejected the operation")
	}
	return ack, nil
}

// Download fetches a file's content.
func (c *Client) Download(name string) ([]byte, error) {
	if err := send(c.conn, &protocol.Get{Name: name}); err != nil {
		return nil, err
	}
	m, err := c.read()
	if err != nil {
		return nil, err
	}
	info, ok := m.(*protocol.FileInfo)
	if !ok {
		return nil, fmt.Errorf("syncnet: expected file info, got %v", m.Type())
	}
	var payload []byte
	for {
		m, err := c.read()
		if err != nil {
			return nil, err
		}
		switch v := m.(type) {
		case *protocol.Data:
			if v.Offset != int64(len(payload)) {
				return nil, fmt.Errorf("syncnet: out-of-order download piece at %d", v.Offset)
			}
			payload = append(payload, v.Payload...)
		case *protocol.Ack:
			raw, err := comp.Decompress(payload, comp.Level(info.Compression))
			if err != nil {
				return nil, err
			}
			if int64(len(raw)) != info.Size {
				return nil, fmt.Errorf("syncnet: downloaded %d bytes, expected %d", len(raw), info.Size)
			}
			c.ids[name] = info.FileID
			c.known[name] = true
			return raw, nil
		default:
			return nil, fmt.Errorf("syncnet: unexpected %v during download", m.Type())
		}
	}
}

// Delete removes a file (server-side fake deletion).
func (c *Client) Delete(name string) error {
	id, ok := c.ids[name]
	if !ok {
		return fmt.Errorf("syncnet: %q was never synced by this client", name)
	}
	if err := send(c.conn, &protocol.Delete{FileID: id}); err != nil {
		return err
	}
	if _, err := c.readAck(); err != nil {
		return err
	}
	delete(c.known, name)
	return nil
}
