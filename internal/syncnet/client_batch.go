package syncnet

import (
	"crypto/md5"
	"fmt"

	"cloudsync/internal/comp"
	"cloudsync/internal/obs"
	"cloudsync/internal/protocol"
)

// Batched upload paths: the paper's batching remedy applied to the live
// protocol. A lockstep client pays one request/response round trip per
// file; for workloads dominated by tiny files that round trip — not
// bandwidth — is the bottleneck. UploadBundle coalesces a batch into a
// single framed exchange, UploadPipelined keeps a window of ordinary
// exchanges in flight on one connection. Both operate under the
// client's retry policy as one operation: a connection cut mid-batch
// reconnects and replays the batch, with the ledger retagging re-sent
// bytes as retransmit (and files committed by the broken attempt
// collapsing into dedup hits).
//
// Names within one batch must be distinct: both paths key in-flight
// state by the server-assigned fileID, which is per name.

// FileUpload is one file of a batched upload.
type FileUpload struct {
	Name string
	Data []byte
}

// hashAndCompress fingerprints and compresses the batch once, outside
// the retry loop, reusing one MD5 state across files — retries must
// not recompute digests, and per-file md5.New allocations would
// dominate tiny-file batches.
func (c *Client) hashAndCompress(files []FileUpload, hashes []protocol.Fingerprint, payloads [][]byte) {
	if c.digest == nil {
		c.digest = md5.New()
	}
	for i, f := range files {
		c.digest.Reset()
		c.digest.Write(f.Data)
		c.digest.Sum(hashes[i][:0])
		payloads[i] = comp.Compress(f.Data, c.compression)
	}
}

// UploadBundle uploads a batch of small files as one Bundle message
// answered by one BundleReply: a single round trip and a single frame
// header for the whole batch. Payloads ride along unconditionally —
// the server detects dedup hits from the full-file hash and discards
// the redundant bytes — so the bundle trades a little upload bandwidth
// on hits for a round trip saved on every batch; it is meant for files
// small enough that the trade wins.
func (c *Client) UploadBundle(files []FileUpload) ([]UploadStats, error) {
	if len(files) == 0 {
		return nil, nil
	}
	c.op = c.tracer.Start("client.upload_bundle", obs.Int("files", int64(len(files))))
	in0, out0 := c.wireIn, c.wireOut
	hashes := make([]protocol.Fingerprint, len(files))
	payloads := make([][]byte, len(files))
	c.hashAndCompress(files, hashes, payloads)
	entries := make([]protocol.BundleEntry, len(files))
	for i, f := range files {
		entries[i] = protocol.BundleEntry{
			Name: f.Name, Size: int64(len(f.Data)), FileHash: hashes[i], Payload: payloads[i],
		}
	}
	stats := make([]UploadStats, len(files))
	err := c.withRetry(func(attempt int) error {
		if err := c.send(&protocol.Bundle{Entries: entries}); err != nil {
			return err
		}
		m, err := c.read()
		if err != nil {
			return err
		}
		reply, ok := m.(*protocol.BundleReply)
		if !ok {
			return fmt.Errorf("syncnet: expected bundle reply, got %v", m.Type())
		}
		if len(reply.Results) != len(entries) {
			return fmt.Errorf("syncnet: bundle reply has %d results for %d entries", len(reply.Results), len(entries))
		}
		for i, r := range reply.Results {
			if !r.OK {
				// The server answered and rejected the entry; shaped as a
				// protocol error so the retry policy does not replay a
				// bundle the server will reject again.
				return &protocol.Error{Code: protocol.ErrBadRequest,
					Msg: fmt.Sprintf("bundle entry %q rejected", entries[i].Name)}
			}
			stats[i] = UploadStats{
				DedupHit:     r.DedupHit,
				PayloadBytes: len(entries[i].Payload),
				Version:      r.Version,
				Attempts:     attempt,
			}
			c.ids[entries[i].Name] = r.FileID
			c.known[entries[i].Name] = true
		}
		return nil
	})
	c.op.Set("attempts", stats[0].Attempts)
	c.endOp(in0, out0, err)
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// UploadPipelined uploads a batch of files over the ordinary
// index/data/commit exchanges with up to window requests in flight,
// instead of stalling a round trip on every reply. Replies arrive in
// request order (the server dispatches in arrival order), so no
// request IDs are needed. The window must not exceed the server's
// MaxInflight; over an unbuffered transport (net.Pipe) windows above 1
// additionally rely on the transport absorbing the outstanding
// replies, so tests there use window 1.
//
// Unlike Upload, the pipelined path always speaks the full-upload
// protocol — dedup still elides content for files the server already
// holds, but no rsync delta is attempted.
func (c *Client) UploadPipelined(files []FileUpload, window int) ([]UploadStats, error) {
	if len(files) == 0 {
		return nil, nil
	}
	if window < 1 {
		window = 1
	}
	c.op = c.tracer.Start("client.upload_pipelined",
		obs.Int("files", int64(len(files))), obs.Int("window", int64(window)))
	in0, out0 := c.wireIn, c.wireOut
	hashes := make([]protocol.Fingerprint, len(files))
	payloads := make([][]byte, len(files))
	c.hashAndCompress(files, hashes, payloads)
	stats := make([]UploadStats, len(files))
	fileIDs := make([]uint64, len(files))
	ackQueue := make([]int, 0, window)
	err := c.withRetry(func(attempt int) error {
		// Phase 1: windowed index exchange. Announce up to `window`
		// files ahead of the oldest unanswered IndexUpdate.
		sent, replied := 0, 0
		for replied < len(files) {
			for sent < len(files) && sent-replied < window {
				f := files[sent]
				if err := c.send(&protocol.IndexUpdate{
					FileID: c.ids[f.Name], Name: f.Name, Size: int64(len(f.Data)), FileHash: hashes[sent],
				}); err != nil {
					return err
				}
				sent++
			}
			m, err := c.read()
			if err != nil {
				return err
			}
			reply, ok := m.(*protocol.IndexReply)
			if !ok {
				return fmt.Errorf("syncnet: expected index reply, got %v", m.Type())
			}
			fileIDs[replied] = reply.FileID
			c.ids[files[replied].Name] = reply.FileID
			stats[replied] = UploadStats{DedupHit: reply.DedupHit, Attempts: attempt}
			replied++
		}

		// Phase 2: data + commit per file, windowed on outstanding acks.
		// Ack order equals commit order, so a simple index queue pairs
		// them back up.
		ackQueue = ackQueue[:0]
		flushAck := func() error {
			ack, err := c.readAck()
			if err != nil {
				return err
			}
			i := ackQueue[0]
			ackQueue = ackQueue[1:]
			stats[i].Version = ack.Version
			c.known[files[i].Name] = true
			return nil
		}
		for i := range files {
			for len(ackQueue) >= window {
				if err := flushAck(); err != nil {
					return err
				}
			}
			if stats[i].DedupHit {
				stats[i].PayloadBytes = 0
			} else {
				pl := payloads[i]
				stats[i].PayloadBytes = len(pl)
				for off := 0; off < len(pl); off += DataPieceSize {
					end := off + DataPieceSize
					if end > len(pl) {
						end = len(pl)
					}
					if err := c.sendData(uint64(i), fileIDs[i], int64(off), pl[off:end]); err != nil {
						return err
					}
				}
			}
			if err := c.send(&protocol.Commit{FileID: fileIDs[i]}); err != nil {
				return err
			}
			ackQueue = append(ackQueue, i)
		}
		for len(ackQueue) > 0 {
			if err := flushAck(); err != nil {
				return err
			}
		}
		return nil
	})
	c.op.Set("attempts", stats[0].Attempts)
	c.endOp(in0, out0, err)
	if err != nil {
		return nil, err
	}
	return stats, nil
}
