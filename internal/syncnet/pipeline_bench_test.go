package syncnet

import (
	"encoding/binary"
	"net"
	"testing"
)

// benchBatchClient runs fn (one batched upload) b.N times over a
// net.Pipe-served client, reporting per-operation allocations — the
// live-path budget the pooled frame buffers, reused digest state, and
// vectored data writes exist to hold down.
func benchBatchClient(b *testing.B, files int, fn func(c *Client, batch []FileUpload) error) {
	srv := NewServer(ServerConfig{})
	defer srv.Close()
	cp, sp := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(sp) }()
	c, err := NewClient(cp, "bench", "bench")
	if err != nil {
		b.Fatal(err)
	}

	batch := makeBatch("bench", files, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// New content each round: every iteration is a genuine full
		// transfer of the whole batch, never a dedup skip.
		for j := range batch {
			binary.LittleEndian.PutUint64(batch[j].Data, uint64(i)<<8|uint64(j))
		}
		if err := fn(c, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Close()
	<-done
}

func BenchmarkUploadBundle8(b *testing.B) {
	benchBatchClient(b, 8, func(c *Client, batch []FileUpload) error {
		_, err := c.UploadBundle(batch)
		return err
	})
}

func BenchmarkUploadPipelined8(b *testing.B) {
	// Window 1 over net.Pipe: the unbuffered transport cannot absorb
	// outstanding replies (see UploadPipelined's doc comment).
	benchBatchClient(b, 8, func(c *Client, batch []FileUpload) error {
		_, err := c.UploadPipelined(batch, 1)
		return err
	})
}

// BenchmarkUploadLockstep8 uploads the same batch one blocking Upload
// at a time — the per-operation allocation comparator for the batched
// paths above.
func BenchmarkUploadLockstep8(b *testing.B) {
	benchBatchClient(b, 8, func(c *Client, batch []FileUpload) error {
		for _, f := range batch {
			if _, err := c.Upload(f.Name, f.Data); err != nil {
				return err
			}
		}
		return nil
	})
}
