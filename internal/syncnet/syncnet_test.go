package syncnet

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/protocol"
)

// leakCheck registers a cleanup that fails the test if any goroutine
// running syncnet code outlives it (stdlib-only goleak). Register it
// FIRST — t.Cleanup is LIFO, so it then runs after the test's own
// teardown (server Close, client Close) has finished. Repeat calls
// within one test are no-ops, so helpers starting several servers
// keep the check at the very end.
func leakCheck(t *testing.T) {
	t.Helper()
	leakCheckMu.Lock()
	registered := leakCheckActive[t]
	leakCheckActive[t] = true
	leakCheckMu.Unlock()
	if registered {
		return
	}
	// The current goroutine's header, so the test itself (whose stack
	// is full of syncnet test frames) is not reported as a leak.
	self := goroutineHeader()
	t.Cleanup(func() {
		leakCheckMu.Lock()
		delete(leakCheckActive, t)
		leakCheckMu.Unlock()
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked := syncnetGoroutines(self)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%d goroutine(s) leaked from syncnet:\n\n%s",
					len(leaked), strings.Join(leaked, "\n\n"))
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

var (
	leakCheckMu     sync.Mutex
	leakCheckActive = map[*testing.T]bool{}
)

// goroutineHeader returns this goroutine's "goroutine N" stack header.
func goroutineHeader() string {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	header, _, _ := strings.Cut(string(buf[:n]), "[")
	return strings.TrimSpace(header)
}

// syncnetGoroutines dumps all goroutine stacks and returns those with
// a syncnet frame, excluding the goroutine whose header is self.
func syncnetGoroutines(self string) []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "cloudsync/internal/syncnet") {
			continue
		}
		header, _, _ := strings.Cut(g, "[")
		if strings.TrimSpace(header) == self {
			continue
		}
		out = append(out, g)
	}
	return out
}

// countingConn wraps a net.Conn and counts bytes written — the test's
// Wireshark.
type countingConn struct {
	net.Conn
	written *atomic.Int64
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// startServer runs a server on a loopback TCP listener and returns a
// dialer producing counted client connections. Teardown goes through
// Server.Close, and a leak check verifies no handler goroutine
// survives it.
func startServer(t *testing.T, cfg ServerConfig) (*Server, func(user string, opts ...ClientOption) (*Client, *atomic.Int64)) {
	t.Helper()
	leakCheck(t)
	srv := NewServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	go srv.Serve(l)
	dial := func(user string, opts ...ClientOption) (*Client, *atomic.Int64) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		var counter atomic.Int64
		c, err := NewClient(countingConn{conn, &counter}, user, "test", opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c, &counter
	}
	return srv, dial
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")

	data := content.Text(200_000, 1).Bytes()
	stats, err := c.Upload("docs/report.txt", data)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DedupHit || stats.DeltaSync || stats.Version != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := c.Download("docs/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("download mismatch")
	}
	if raw, ok := srv.FileContent("alice", "docs/report.txt"); !ok || !bytes.Equal(raw, data) {
		t.Fatal("server-side content mismatch")
	}
}

func TestEmptyFile(t *testing.T) {
	_, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")
	if _, err := c.Upload("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Download("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("downloaded %d bytes from empty file", len(got))
	}
}

func TestCompressionShrinksWire(t *testing.T) {
	data := content.Text(500_000, 2).Bytes()
	run := func(level comp.Level) int64 {
		_, dial := startServer(t, ServerConfig{Compression: level})
		c, counter := dial("alice", WithCompression(level))
		if _, err := c.Upload("doc", data); err != nil {
			t.Fatal(err)
		}
		return counter.Load()
	}
	raw := run(comp.None)
	compressed := run(comp.High)
	if compressed >= raw*3/4 {
		t.Fatalf("compression saved too little on the wire: %d vs %d", compressed, raw)
	}
	// And content survives.
	_, dial := startServer(t, ServerConfig{Compression: comp.High})
	c, _ := dial("alice", WithCompression(comp.High))
	if _, err := c.Upload("doc", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Download("doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("compressed roundtrip mismatch")
	}
}

func TestDeltaSyncSendsOnlyChanges(t *testing.T) {
	_, dial := startServer(t, ServerConfig{BlockSize: 4096})
	c, counter := dial("alice")

	base := content.Random(1<<20, 3).Bytes()
	if _, err := c.Upload("big.bin", base); err != nil {
		t.Fatal(err)
	}
	uploaded := counter.Load()

	// Change one byte: the second sync should be a delta, tiny on the
	// wire.
	modified := append([]byte(nil), base...)
	modified[512_000] ^= 0xFF
	before := counter.Load()
	stats, err := c.Upload("big.bin", modified)
	if err != nil {
		t.Fatal(err)
	}
	deltaWire := counter.Load() - before
	if !stats.DeltaSync {
		t.Fatalf("expected delta sync, got %+v", stats)
	}
	if stats.Version != 2 {
		t.Fatalf("version = %d", stats.Version)
	}
	if deltaWire > uploaded/20 {
		t.Fatalf("delta sync wrote %d bytes; full upload was %d", deltaWire, uploaded)
	}
	// Server holds the modified content.
	got, err := c.Download("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, modified) {
		t.Fatal("delta-synced content mismatch")
	}
}

func TestDeltaSyncAppend(t *testing.T) {
	_, dial := startServer(t, ServerConfig{BlockSize: 4096})
	c, counter := dial("alice")
	base := content.Random(500_000, 4).Bytes()
	if _, err := c.Upload("log", base); err != nil {
		t.Fatal(err)
	}
	grown := append(append([]byte(nil), base...), content.Random(2000, 5).Bytes()...)
	before := counter.Load()
	if _, err := c.Upload("log", grown); err != nil {
		t.Fatal(err)
	}
	if wire := counter.Load() - before; wire > 20_000 {
		t.Fatalf("append delta wrote %d bytes, want ≈ tail + new bytes", wire)
	}
	got, _ := c.Download("log")
	if !bytes.Equal(got, grown) {
		t.Fatal("append content mismatch")
	}
}

func TestFullFileDedupAcrossClients(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{CrossUserDedup: true})
	data := content.Random(300_000, 6).Bytes()

	alice, _ := dial("alice")
	if _, err := alice.Upload("orig", data); err != nil {
		t.Fatal(err)
	}

	bob, counter := dial("bob")
	before := counter.Load()
	stats, err := bob.Upload("copy", append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.DedupHit {
		t.Fatal("cross-user duplicate not deduplicated")
	}
	if wire := counter.Load() - before; wire > 1000 {
		t.Fatalf("dedup'd upload wrote %d bytes, want control messages only", wire)
	}
	// Bob can download his copy even though he never sent the bytes.
	got, err := bob.Download("copy")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("dedup'd content mismatch")
	}
	if srv.Stats().DedupSkips != 1 {
		t.Fatalf("server stats = %+v", srv.Stats())
	}
}

func TestPerUserDedupScope(t *testing.T) {
	_, dial := startServer(t, ServerConfig{CrossUserDedup: false})
	data := content.Random(100_000, 7).Bytes()
	alice, _ := dial("alice")
	alice.Upload("f", data)
	bob, _ := dial("bob")
	stats, err := bob.Upload("f", append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DedupHit {
		t.Fatal("per-user server deduplicated across users")
	}
}

func TestDeleteIsFakeDeletion(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")
	data := []byte("ephemeral")
	if _, err := c.Upload("f", data); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Download("f"); err == nil {
		t.Fatal("download of deleted file should fail")
	}
	if _, ok := srv.FileContent("alice", "f"); ok {
		t.Fatal("deleted file still visible")
	}
	// Re-upload revives the name; delta path must not be attempted
	// against a tombstone.
	if _, err := c.Upload("f", []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Download("f")
	if err != nil || string(got) != "reborn" {
		t.Fatalf("revived content = %q, %v", got, err)
	}
	if srv.Stats().Deletes != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

func TestDeleteUnknownName(t *testing.T) {
	_, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")
	if err := c.Delete("never-synced"); err == nil {
		t.Fatal("delete of unknown name should fail client-side")
	}
}

func TestDownloadMissing(t *testing.T) {
	_, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")
	_, err := c.Download("ghost")
	if err == nil {
		t.Fatal("download of missing file should fail")
	}
	var perr *protocol.Error
	if !isProtoErr(err, &perr) || perr.Code != protocol.ErrNotFound {
		t.Fatalf("error = %v, want protocol not-found", err)
	}
	// The session survives the error.
	if _, err := c.Upload("real", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestUserNamespacesIsolated(t *testing.T) {
	_, dial := startServer(t, ServerConfig{})
	alice, _ := dial("alice")
	alice.Upload("private", []byte("secret"))
	bob, _ := dial("bob")
	if _, err := bob.Download("private"); err == nil {
		t.Fatal("bob downloaded alice's file")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{CrossUserDedup: true})
	const clients = 8
	const filesEach = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := dial(fmt.Sprintf("user%d", i))
			for j := 0; j < filesEach; j++ {
				name := fmt.Sprintf("f%d", j)
				data := content.Random(10_000, int64(i*100+j)).Bytes()
				if _, err := c.Upload(name, data); err != nil {
					errs <- err
					return
				}
				got, err := c.Download(name)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("user%d %s mismatch", i, name)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats().Uploads; got != clients*filesEach {
		t.Fatalf("uploads = %d, want %d", got, clients*filesEach)
	}
}

func TestServerRejectsNonHello(t *testing.T) {
	srv := NewServer(ServerConfig{})
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(server) }()
	client.Write(protocol.Encode(&protocol.Get{Name: "x"}))
	m, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := m.(*protocol.Error); !ok || e.Code != protocol.ErrBadRequest {
		t.Fatalf("reply = %#v", m)
	}
	client.Close()
	if err := <-done; err == nil {
		t.Fatal("HandleConn should report the protocol violation")
	}
}

func TestServerRejectsStrayData(t *testing.T) {
	srv := NewServer(ServerConfig{})
	client, server := net.Pipe()
	go srv.HandleConn(server)
	client.Write(protocol.Encode(&protocol.Hello{User: "alice"}))
	client.Write(protocol.Encode(&protocol.Data{FileID: 99, Payload: []byte("x")}))
	m, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*protocol.Error); !ok {
		t.Fatalf("reply = %#v", m)
	}
}

func TestServerRejectsHashMismatch(t *testing.T) {
	srv := NewServer(ServerConfig{})
	client, server := net.Pipe()
	go srv.HandleConn(server)
	client.Write(protocol.Encode(&protocol.Hello{User: "alice"}))
	// Announce one hash, send different content.
	client.Write(protocol.Encode(&protocol.IndexUpdate{Name: "f", Size: 3}))
	if m, _ := protocol.ReadMessage(client); m == nil {
		t.Fatal("no index reply")
	}
	client.Write(protocol.Encode(&protocol.Data{FileID: 1, Offset: 0, Payload: []byte("abc")}))
	client.Write(protocol.Encode(&protocol.Commit{FileID: 1}))
	m, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := m.(*protocol.Error); !ok || e.Code != protocol.ErrBadRequest {
		t.Fatalf("reply = %#v, want bad-request", m)
	}
}

func TestVersionsAdvance(t *testing.T) {
	_, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")
	var last uint64
	for i := 0; i < 3; i++ {
		data := content.Random(50_000, int64(i)).Bytes()
		stats, err := c.Upload("doc", data)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Version <= last {
			t.Fatalf("version %d did not advance past %d", stats.Version, last)
		}
		last = stats.Version
	}
}

func TestNewClientValidation(t *testing.T) {
	client, _ := net.Pipe()
	if _, err := NewClient(client, "", "dev"); err == nil {
		t.Fatal("empty user should fail")
	}
}

func TestNegativeBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative block size did not panic")
		}
	}()
	NewServer(ServerConfig{BlockSize: -1})
}
