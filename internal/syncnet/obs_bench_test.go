package syncnet

import (
	"encoding/binary"
	"net"
	"testing"

	"cloudsync/internal/obs"
)

// benchUploads drives b.N small uploads through a client/server pair
// over net.Pipe. When observed is true the pair runs fully
// instrumented (server registry + tracer, client tracer); otherwise it
// runs on the nil no-op path. The delta between the two is the whole
// observability tax on the sync hot path — make bench-obs records it
// into BENCH_obs.json. propagate additionally opts the client into
// cross-process trace-context propagation (one extra TraceCtx frame
// per operation attempt).
func benchUploads(b *testing.B, observed, propagate bool) {
	cfg := ServerConfig{}
	var clientOpts []ClientOption
	if observed {
		cfg.Metrics = obs.NewRegistry()
		cfg.Tracer = obs.NewTracer()
		clientOpts = append(clientOpts, WithTracer(obs.NewTracer()))
		if propagate {
			clientOpts = append(clientOpts, WithTraceContext())
		}
	}
	srv := NewServer(cfg)
	defer srv.Close()
	cp, sp := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(sp) }()
	c, err := NewClient(cp, "bench", "bench", clientOpts...)
	if err != nil {
		b.Fatal(err)
	}

	data := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the content so every iteration is a genuine transfer
		// (full upload, then delta syncs) rather than a dedup skip.
		binary.LittleEndian.PutUint64(data, uint64(i))
		if _, err := c.Upload("bench.bin", data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Close()
	<-done
}

func BenchmarkSyncUploadObsOff(b *testing.B) { benchUploads(b, false, false) }

func BenchmarkSyncUploadObsOn(b *testing.B) { benchUploads(b, true, false) }

// The propagation pair isolates the cost of shipping trace context
// across the wire on top of full instrumentation: Off is the
// instrumented baseline, On adds WithTraceContext (TraceCtx frame +
// server-side remote re-parenting).
func BenchmarkSyncUploadPropObsOff(b *testing.B) { benchUploads(b, true, false) }

func BenchmarkSyncUploadPropObsOn(b *testing.B) { benchUploads(b, true, true) }
