package syncnet

import (
	"fmt"

	"cloudsync/internal/protocol"
)

// List fetches the user's complete remote listing — one entry per file
// the server has ever stored, fake-deleted files included. It is the
// remote observer of the watch-mode pipeline: the pure planner
// reconciles this listing against the local tree and the persisted
// baseline. Listing is idempotent, so under a retry policy a transport
// failure simply re-requests it.
//
// As a side effect the client learns every live file's server identity
// (fileID), so a later Delete or delta upload works even for files
// this client never uploaded — the watch daemon restarting with a
// persisted baseline depends on exactly that.
func (c *Client) List() ([]protocol.ListEntry, error) {
	c.op = c.tracer.Start("client.list")
	in0, out0 := c.wireIn, c.wireOut
	var entries []protocol.ListEntry
	err := c.withRetry(func(int) error {
		if err := c.send(&protocol.ListRequest{}); err != nil {
			return err
		}
		m, err := c.read()
		if err != nil {
			return err
		}
		listing, ok := m.(*protocol.Listing)
		if !ok {
			return fmt.Errorf("syncnet: expected listing, got %v", m.Type())
		}
		entries = listing.Entries
		return nil
	})
	c.op.Set("entries", len(entries))
	c.endOp(in0, out0, err)
	if err != nil {
		return nil, err
	}
	for i := range entries {
		en := &entries[i]
		c.Prime(en.Name, en.FileID, !en.Deleted)
	}
	return entries, nil
}

// FileID reports the server-side identity this client has learned for
// name (via upload, download, listing, or priming). The watch-mode
// executor uses it to propagate identities from the worker that
// performed an upload to its siblings.
func (c *Client) FileID(name string) (uint64, bool) {
	id, ok := c.ids[name]
	return id, ok
}

// Prime teaches the client a file's server-side identity without a
// round trip: fileID is the server's handle (required by Delete), and
// live marks whether a stored version currently exists (which routes
// the next Upload through the delta path). The watch-mode executor
// primes its worker clients from one shared listing so that any worker
// can delta-update or delete any file, regardless of which client
// originally uploaded it.
func (c *Client) Prime(name string, fileID uint64, live bool) {
	c.ids[name] = fileID
	if live {
		c.known[name] = true
	} else {
		delete(c.known, name)
	}
}
