package syncnet

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/protocol"
)

func makeBatch(prefix string, n, size int) []FileUpload {
	files := make([]FileUpload, n)
	for i := range files {
		data := bytes.Repeat([]byte{byte('a' + i%26)}, size)
		data[0] = byte(i) // distinct content per file
		files[i] = FileUpload{Name: fmt.Sprintf("%s/f%03d.txt", prefix, i), Data: data}
	}
	return files
}

func TestUploadBundleRoundTrip(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")

	files := makeBatch("docs", 12, 700)
	stats, err := c.UploadBundle(files)
	if err != nil {
		t.Fatalf("UploadBundle: %v", err)
	}
	for i, st := range stats {
		if st.DedupHit {
			t.Errorf("file %d: unexpected dedup hit on first upload", i)
		}
		if st.Version != 1 {
			t.Errorf("file %d: version = %d, want 1", i, st.Version)
		}
	}
	for _, f := range files {
		got, err := c.Download(f.Name)
		if err != nil {
			t.Fatalf("download %s: %v", f.Name, err)
		}
		if !bytes.Equal(got, f.Data) {
			t.Fatalf("download %s: content mismatch", f.Name)
		}
	}

	// Re-bundling identical content must dedup every entry and bump
	// versions: the payload rode along but the server discarded it.
	stats, err = c.UploadBundle(files)
	if err != nil {
		t.Fatalf("re-bundle: %v", err)
	}
	for i, st := range stats {
		if !st.DedupHit {
			t.Errorf("file %d: re-bundle was not a dedup hit", i)
		}
		if st.Version != 2 {
			t.Errorf("file %d: version = %d, want 2", i, st.Version)
		}
	}

	if st := srv.Stats(); st.Bundles != 2 || st.BundledFiles != 24 {
		t.Errorf("server stats: Bundles=%d BundledFiles=%d, want 2 and 24", st.Bundles, st.BundledFiles)
	}
}

func TestUploadPipelinedRoundTrip(t *testing.T) {
	_, dial := startServer(t, ServerConfig{})
	c, _ := dial("alice")

	files := makeBatch("pipe", 20, 900)
	stats, err := c.UploadPipelined(files, 6)
	if err != nil {
		t.Fatalf("UploadPipelined: %v", err)
	}
	for i, st := range stats {
		if st.Version != 1 || st.DedupHit {
			t.Errorf("file %d: stats = %+v, want fresh v1", i, st)
		}
	}
	for _, f := range files {
		got, err := c.Download(f.Name)
		if err != nil {
			t.Fatalf("download %s: %v", f.Name, err)
		}
		if !bytes.Equal(got, f.Data) {
			t.Fatalf("download %s: content mismatch", f.Name)
		}
	}
	// Second pipelined pass over the same content: all dedup hits, no
	// payload sent.
	stats, err = c.UploadPipelined(files, 6)
	if err != nil {
		t.Fatalf("second UploadPipelined: %v", err)
	}
	for i, st := range stats {
		if !st.DedupHit || st.PayloadBytes != 0 {
			t.Errorf("file %d: stats = %+v, want dedup hit with 0 payload", i, st)
		}
	}
}

// TestPipelinedWindowAboveServerInflight pins the lockstep-compatible
// floor: a server configured with MaxInflight 1 reads one request at a
// time, and a windowed client above that still completes over TCP (the
// kernel buffers absorb the spill) — the knob bounds server read-ahead,
// not correctness.
func TestPipelinedAgainstMaxInflightOne(t *testing.T) {
	_, dial := startServer(t, ServerConfig{MaxInflight: 1})
	c, _ := dial("alice")
	files := makeBatch("floor", 10, 400)
	if _, err := c.UploadPipelined(files, 8); err != nil {
		t.Fatalf("UploadPipelined over MaxInflight=1 server: %v", err)
	}
	for _, f := range files {
		got, err := c.Download(f.Name)
		if err != nil || !bytes.Equal(got, f.Data) {
			t.Fatalf("download %s after pipelined upload: %v", f.Name, err)
		}
	}
}

// TestServerCloseDrainsPipelinedRequests is the deterministic-drain
// contract: requests fully read off a pipelined connection when Close
// fires still get dispatched and their replies flushed before the
// connection dies — Close half-closes the read side rather than
// snapping the socket — and no handler goroutine outlives Close (the
// leak check registered by startServer enforces that part).
func TestServerCloseDrainsPipelinedRequests(t *testing.T) {
	leakCheck(t)
	srv := NewServer(ServerConfig{MaxInflight: 32})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(m protocol.Message) int {
		enc := protocol.Encode(m)
		if _, err := conn.Write(enc); err != nil {
			t.Fatalf("write %v: %v", m.Type(), err)
		}
		return len(enc)
	}
	wrote := send(&protocol.Hello{User: "alice", Device: "drain", Version: "cloudsync/1"})
	const burst = 16
	for i := 0; i < burst; i++ {
		wrote += send(&protocol.IndexUpdate{
			Name: fmt.Sprintf("f%02d", i), Size: 1, FileHash: [16]byte{byte(i)},
		})
	}

	// Wait until the server has read the whole burst off the socket (the
	// reader goroutine queues ahead of dispatch), so Close fires with
	// requests genuinely in flight.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().BytesReceived < int64(wrote) {
		if time.Now().After(deadline) {
			t.Fatalf("server read %d of %d bytes before deadline", srv.Stats().BytesReceived, wrote)
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every queued request's reply must arrive, then EOF.
	for i := 0; i < burst; i++ {
		m, err := protocol.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if _, ok := m.(*protocol.IndexReply); !ok {
			t.Fatalf("reply %d: got %v, want IndexReply", i, m.Type())
		}
	}
	if _, err := protocol.ReadMessage(conn); err == nil {
		t.Fatal("connection still open after drain; want EOF")
	}
}

// TestBundleFaultRetryRetransmit cuts the connection mid-bundle and
// lets the retry policy replay it: the upload must converge, the
// client's per-byte ledger must still balance exactly against its
// metered wire bytes, and the re-sent ranges must be tagged retransmit
// rather than inflating the fresh-payload figure.
func TestBundleFaultRetryRetransmit(t *testing.T) {
	leakCheck(t)
	clientLed := &ledger.Ledger{}
	srv := NewServer(ServerConfig{})
	t.Cleanup(func() { srv.Close() })
	// Budget smaller than the bundle frame, so the first attempt dies
	// mid-bundle.
	sched := NewFaultScheduler(FaultPlan{Seed: 11, MeanDropBytes: 6 << 10, MaxDrops: 2})

	var prevDone chan struct{}
	dial := func() (net.Conn, error) {
		if prevDone != nil {
			<-prevDone
		}
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		prevDone = done
		go func() {
			defer close(done)
			srv.HandleConn(serverEnd)
		}()
		return sched.Wrap(clientEnd), nil
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, "alice", "bundle-retry",
		WithLedger(clientLed), WithDialer(dial),
		WithRetry(RetryPolicy{MaxAttempts: 6, Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatal(err)
	}

	files := makeBatch("retry", 6, 2048)
	var payloadBytes int64
	for _, f := range files {
		payloadBytes += int64(len(f.Data))
	}
	stats, err := c.UploadBundle(files)
	if err != nil {
		t.Fatalf("UploadBundle under faults: %v", err)
	}
	if stats[0].Attempts < 2 {
		t.Fatalf("bundle completed in %d attempt(s); the fault never fired", stats[0].Attempts)
	}
	for _, f := range files {
		got, err := c.Download(f.Name)
		if err != nil || !bytes.Equal(got, f.Data) {
			t.Fatalf("download %s after retried bundle: %v", f.Name, err)
		}
	}
	c.Close()
	<-prevDone

	clientIn, clientOut := c.WireTotals()
	if got, want := clientLed.Total(), clientIn+clientOut; got != want {
		t.Errorf("client ledger total = %d, wire in+out = %d\n%s",
			got, want, clientLed.Snapshot().Table("client"))
	}
	if clientLed.Get(ledger.Retransmit) == 0 {
		t.Errorf("bundle was replayed but no bytes were tagged retransmit\n%s",
			clientLed.Snapshot().Table("client"))
	}
}

// TestConcurrentPipelinedClients races many batched clients against one
// server — the coverage the race detector needs over the pipelined
// reader/dispatcher split and the pooled buffers.
func TestConcurrentPipelinedClients(t *testing.T) {
	srv, dial := startServer(t, ServerConfig{})
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		c, _ := dial(fmt.Sprintf("user%d", g))
		wg.Add(1)
		go func(g int, c *Client) {
			defer wg.Done()
			files := makeBatch(fmt.Sprintf("u%d", g), 10, 600)
			if _, err := c.UploadPipelined(files[:5], 4); err != nil {
				errs <- fmt.Errorf("client %d pipelined: %w", g, err)
				return
			}
			if _, err := c.UploadBundle(files[5:]); err != nil {
				errs <- fmt.Errorf("client %d bundle: %w", g, err)
				return
			}
			for _, f := range files {
				got, err := c.Download(f.Name)
				if err != nil || !bytes.Equal(got, f.Data) {
					errs <- fmt.Errorf("client %d download %s: %v", g, f.Name, err)
					return
				}
			}
		}(g, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := srv.Stats(); st.BundledFiles != clients*5 {
		t.Errorf("BundledFiles = %d, want %d", st.BundledFiles, clients*5)
	}
}
