package syncnet

import (
	"crypto/md5"

	"cloudsync/internal/delta"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/protocol"
)

// This file is the live path's per-byte traffic attribution: it lays
// every encoded protocol message out as an ordered list of
// (cause, length) segments and charges them against the bytes that
// actually crossed the connection. Charging by the measured byte count
// — not by the message's encoded size — is what keeps the ledger total
// exactly equal to the wire total even when a fault scheduler cuts the
// connection mid-write: the clipped tail is simply never charged, and
// the session's residual (bytes metered but never attributed, e.g.
// partial frames on either side of a cut) is swept into framing when
// the session ends.

// frameHeaderSize is the per-message envelope: 1 type byte + uint32
// body length.
const frameHeaderSize = 5

// causeSeg is one contiguous run of wire bytes with a single cause.
type causeSeg struct {
	cause ledger.Cause
	n     int64
}

// messageSegments appends one encoded message's layout (total bytes
// including the frame header) to dst as attribution segments, by
// message semantics:
//
//	frame header                 → framing
//	Data: fileID/offset/len      → framing; payload → payload
//	IndexUpdate: fingerprints    → dedup_probe; rest → metadata
//	SignatureMsg body            → dedup_probe (block fingerprints)
//	DeltaMsg: literal op data    → delta_literal; rest → delta_copyref
//	ResumeQuery / ResumeInfo     → resume
//	TraceCtx                     → framing (pure protocol overhead)
//	Bundle: per entry name/size  → metadata; hash → dedup_probe;
//	        length prefixes      → framing; content → payload
//	everything else              → metadata
//
// Appending into a caller-held scratch keeps attribution off the
// allocator on the live path. Segment order approximates wire order;
// when a write is cut short the clipping is therefore approximately
// positional, and always exact in total.
func messageSegments(dst []causeSeg, m protocol.Message, total int64) []causeSeg {
	body := total - frameHeaderSize
	if body < 0 {
		return append(dst, causeSeg{ledger.Framing, total})
	}
	if d, ok := m.(*protocol.Data); ok {
		return appendDataSegments(dst, total, int64(len(d.Payload)))
	}
	dst = append(dst, causeSeg{ledger.Framing, frameHeaderSize})
	switch v := m.(type) {
	case *protocol.IndexUpdate:
		probe := int64(md5.Size) * int64(1+len(v.BlockHashes))
		if probe > body {
			probe = body
		}
		dst = append(dst, causeSeg{ledger.Metadata, body - probe}, causeSeg{ledger.DedupProbe, probe})
	case *protocol.SignatureMsg:
		dst = append(dst, causeSeg{ledger.DedupProbe, body})
	case *protocol.DeltaMsg:
		lit, err := delta.EncodedLiteralBytes(v.Payload)
		if err != nil || lit > int64(len(v.Payload)) {
			lit = 0
		}
		dst = append(dst,
			causeSeg{ledger.DeltaCopyRef, body - lit},
			causeSeg{ledger.DeltaLiteral, lit})
	case *protocol.ResumeQuery, *protocol.ResumeInfo:
		dst = append(dst, causeSeg{ledger.Resume, body})
	case *protocol.TraceCtx:
		// Trace propagation is protocol overhead, not user data: the
		// whole frame is framing (retagRetransmit also leaves framing
		// untouched, so a re-sent context stays framing on retry).
		dst = append(dst, causeSeg{ledger.Framing, body})
	case *protocol.Bundle:
		// Entry-count prefix, then per entry: the identity a lone
		// IndexUpdate would carry (name+size → metadata, full-file hash →
		// dedup probe), the payload length prefix (framing, same as a
		// Data message's envelope), and the content itself.
		dst = append(dst, causeSeg{ledger.Framing, 4})
		rest := body - 4
		for i := range v.Entries {
			en := &v.Entries[i]
			meta := int64(4 + len(en.Name) + 8)
			dst = append(dst,
				causeSeg{ledger.Metadata, meta},
				causeSeg{ledger.DedupProbe, md5.Size},
				causeSeg{ledger.Framing, 4},
				causeSeg{ledger.Payload, int64(len(en.Payload))})
			rest -= meta + md5.Size + 4 + int64(len(en.Payload))
		}
		if rest > 0 {
			// Entry layout fell short of the body length — impossible for
			// a well-formed frame, but the exact-total contract must
			// survive an accounting bug.
			dst = append(dst, causeSeg{ledger.Framing, rest})
		}
	default:
		dst = append(dst, causeSeg{ledger.Metadata, body})
	}
	return dst
}

// appendDataSegments lays out a Data-message frame of total wire bytes
// whose trailing payloadLen bytes are content: everything ahead of the
// payload (frame header plus fileID/offset/length prefix) is framing.
// Shared by the message-based charge path and the vectored send path,
// which writes the header and payload separately and never materializes
// a protocol.Data value.
func appendDataSegments(dst []causeSeg, total, payloadLen int64) []causeSeg {
	prefix := total - payloadLen
	if prefix < 0 {
		prefix, payloadLen = total, 0
	}
	return append(dst, causeSeg{ledger.Framing, prefix}, causeSeg{ledger.Payload, payloadLen})
}

// chargeSegs charges the first n wire bytes of the segment layout and
// reports how many bytes it charged (always exactly min(n, Σsegs) plus
// any overrun, i.e. exactly n for n ≥ 0). Bytes beyond the layout —
// which cannot happen for a correctly sized layout — land in framing
// so the exact-total contract survives even an accounting bug.
func chargeSegs(l *ledger.Ledger, segs []causeSeg, n int64) int64 {
	if l == nil || n <= 0 {
		return 0
	}
	charged := int64(0)
	for _, s := range segs {
		if n <= 0 {
			break
		}
		take := s.n
		if take > n {
			take = n
		}
		l.Add(s.cause, take)
		charged += take
		n -= take
	}
	if n > 0 {
		l.Add(ledger.Framing, n)
		charged += n
	}
	return charged
}

// retagRetransmit rewrites a re-sent message's payload-bearing causes
// to retransmit: the bytes are on the wire a second time. Framing stays
// framing (the envelope is overhead either way) and resume traffic
// stays resume (it exists only because of the retry and is never a
// duplicate of earlier bytes).
func retagRetransmit(segs []causeSeg) []causeSeg {
	for i := range segs {
		switch segs[i].cause {
		case ledger.Framing, ledger.Resume:
		default:
			segs[i].cause = ledger.Retransmit
		}
	}
	return segs
}

// splitDataByHighWater replaces the payload segment of a Data piece
// with a retransmit/payload split against the file's high-water mark
// for this operation (the highest payload offset already sent or
// received), and advances the mark. Fresh bytes stay payload; bytes at
// offsets covered before are retransmits. Marks are kept per fileID so
// a pipelined batch with several files in flight attributes each file's
// re-sends independently.
//
// The rewrite reuses segs' backing array (out grows at most one element
// past the read cursor), which is safe because the payload segment is
// always the layout's last.
func splitDataByHighWater(segs []causeSeg, offset, length int64, highs map[uint64]int64, fileID uint64) []causeSeg {
	hi := offset + length
	resent := highs[fileID] - offset
	if resent < 0 {
		resent = 0
	}
	if resent > length {
		resent = length
	}
	if hi > highs[fileID] {
		highs[fileID] = hi
	}
	if resent == 0 {
		return segs
	}
	out := segs[:0]
	for _, s := range segs {
		if s.cause != ledger.Payload {
			out = append(out, s)
			continue
		}
		// The piece starts at offset: its first `resent` bytes were sent
		// before, the rest are new.
		out = append(out,
			causeSeg{ledger.Retransmit, resent},
			causeSeg{ledger.Payload, s.n - resent})
	}
	return out
}
