package syncnet

import (
	"crypto/md5"

	"cloudsync/internal/delta"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/protocol"
)

// This file is the live path's per-byte traffic attribution: it lays
// every encoded protocol message out as an ordered list of
// (cause, length) segments and charges them against the bytes that
// actually crossed the connection. Charging by the measured byte count
// — not by the message's encoded size — is what keeps the ledger total
// exactly equal to the wire total even when a fault scheduler cuts the
// connection mid-write: the clipped tail is simply never charged, and
// the session's residual (bytes metered but never attributed, e.g.
// partial frames on either side of a cut) is swept into framing when
// the session ends.

// frameHeaderSize is the per-message envelope: 1 type byte + uint32
// body length.
const frameHeaderSize = 5

// causeSeg is one contiguous run of wire bytes with a single cause.
type causeSeg struct {
	cause ledger.Cause
	n     int64
}

// messageSegments lays out one encoded message (total bytes including
// the frame header) as attribution segments, by message semantics:
//
//	frame header                 → framing
//	Data: fileID/offset/len      → framing; payload → payload
//	IndexUpdate: fingerprints    → dedup_probe; rest → metadata
//	SignatureMsg body            → dedup_probe (block fingerprints)
//	DeltaMsg: literal op data    → delta_literal; rest → delta_copyref
//	ResumeQuery / ResumeInfo     → resume
//	everything else              → metadata
//
// Segment order approximates wire order; when a write is cut short the
// clipping is therefore approximately positional, and always exact in
// total.
func messageSegments(m protocol.Message, total int64) []causeSeg {
	segs := []causeSeg{{ledger.Framing, frameHeaderSize}}
	body := total - frameHeaderSize
	if body < 0 {
		return []causeSeg{{ledger.Framing, total}}
	}
	switch v := m.(type) {
	case *protocol.Data:
		prefix := body - int64(len(v.Payload)) // fileID + offset + length
		segs = append(segs, causeSeg{ledger.Framing, prefix}, causeSeg{ledger.Payload, int64(len(v.Payload))})
	case *protocol.IndexUpdate:
		probe := int64(md5.Size) * int64(1+len(v.BlockHashes))
		if probe > body {
			probe = body
		}
		segs = append(segs, causeSeg{ledger.Metadata, body - probe}, causeSeg{ledger.DedupProbe, probe})
	case *protocol.SignatureMsg:
		segs = append(segs, causeSeg{ledger.DedupProbe, body})
	case *protocol.DeltaMsg:
		lit, err := delta.EncodedLiteralBytes(v.Payload)
		if err != nil || lit > int64(len(v.Payload)) {
			lit = 0
		}
		segs = append(segs,
			causeSeg{ledger.DeltaCopyRef, body - lit},
			causeSeg{ledger.DeltaLiteral, lit})
	case *protocol.ResumeQuery, *protocol.ResumeInfo:
		segs = append(segs, causeSeg{ledger.Resume, body})
	default:
		segs = append(segs, causeSeg{ledger.Metadata, body})
	}
	return segs
}

// chargeSegs charges the first n wire bytes of the segment layout and
// reports how many bytes it charged (always exactly min(n, Σsegs) plus
// any overrun, i.e. exactly n for n ≥ 0). Bytes beyond the layout —
// which cannot happen for a correctly sized layout — land in framing
// so the exact-total contract survives even an accounting bug.
func chargeSegs(l *ledger.Ledger, segs []causeSeg, n int64) int64 {
	if l == nil || n <= 0 {
		return 0
	}
	charged := int64(0)
	for _, s := range segs {
		if n <= 0 {
			break
		}
		take := s.n
		if take > n {
			take = n
		}
		l.Add(s.cause, take)
		charged += take
		n -= take
	}
	if n > 0 {
		l.Add(ledger.Framing, n)
		charged += n
	}
	return charged
}

// retagRetransmit rewrites a re-sent message's payload-bearing causes
// to retransmit: the bytes are on the wire a second time. Framing stays
// framing (the envelope is overhead either way) and resume traffic
// stays resume (it exists only because of the retry and is never a
// duplicate of earlier bytes).
func retagRetransmit(segs []causeSeg) []causeSeg {
	for i := range segs {
		switch segs[i].cause {
		case ledger.Framing, ledger.Resume:
		default:
			segs[i].cause = ledger.Retransmit
		}
	}
	return segs
}

// splitDataByHighWater replaces the payload segment of a Data message
// with a retransmit/payload split against the operation's high-water
// mark (the highest payload offset already sent or received this
// operation), and advances the mark. Fresh bytes stay payload; bytes at
// offsets covered before are retransmits.
func splitDataByHighWater(segs []causeSeg, d *protocol.Data, high *int64) []causeSeg {
	lo := d.Offset
	hi := lo + int64(len(d.Payload))
	resent := *high - lo
	if resent < 0 {
		resent = 0
	}
	if resent > hi-lo {
		resent = hi - lo
	}
	if hi > *high {
		*high = hi
	}
	if resent == 0 {
		return segs
	}
	out := segs[:0]
	for _, s := range segs {
		if s.cause != ledger.Payload {
			out = append(out, s)
			continue
		}
		// The piece starts at lo: its first `resent` bytes were sent
		// before, the rest are new.
		out = append(out,
			causeSeg{ledger.Retransmit, resent},
			causeSeg{ledger.Payload, s.n - resent})
	}
	return out
}
