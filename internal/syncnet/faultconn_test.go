package syncnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"cloudsync/internal/content"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	if s == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestFaultConnCutsAtBudget(t *testing.T) {
	clientEnd, serverEnd := tcpPair(t)
	sched := NewFaultScheduler(FaultPlan{Seed: 42, MeanDropBytes: 10_000})
	conn := sched.Wrap(clientEnd)

	got := make(chan int64, 1)
	go func() {
		n, _ := io.Copy(io.Discard, serverEnd)
		got <- n
	}()

	var sent int64
	chunk := make([]byte, 1024)
	var lastErr error
	for i := 0; i < 100; i++ {
		n, err := conn.Write(chunk)
		sent += int64(n)
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrInjectedFault) {
		t.Fatalf("write error = %v, want ErrInjectedFault", lastErr)
	}
	// Budget is uniform in [mean/2, 3·mean/2).
	if sent < 5_000 || sent >= 15_000 {
		t.Fatalf("cut after %d bytes, want within [5000, 15000)", sent)
	}
	// The permitted prefix must drain to the peer (half-close, not abort).
	if n := <-got; n != sent {
		t.Fatalf("peer received %d bytes, client delivered %d", n, sent)
	}
	if st := sched.Stats(); st.Drops != 1 || st.BytesWritten != sent {
		t.Fatalf("scheduler stats = %+v, sent %d", st, sent)
	}
	// The conn stays dead.
	if _, err := conn.Write(chunk); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("post-trip write error = %v", err)
	}
	if _, err := conn.Read(chunk); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("post-trip read error = %v", err)
	}
}

func TestFaultSchedulerDeterministic(t *testing.T) {
	cutPoint := func(seed uint64) int64 {
		clientEnd, serverEnd := tcpPair(t)
		go io.Copy(io.Discard, serverEnd)
		conn := NewFaultScheduler(FaultPlan{Seed: seed, MeanDropBytes: 50_000}).Wrap(clientEnd)
		var sent int64
		chunk := make([]byte, 512)
		for {
			n, err := conn.Write(chunk)
			sent += int64(n)
			if err != nil {
				return sent
			}
		}
	}
	a, b := cutPoint(7), cutPoint(7)
	if a != b {
		t.Fatalf("same seed cut at %d and %d", a, b)
	}
	if c := cutPoint(8); c == a {
		t.Fatalf("different seeds both cut at %d (suspicious)", a)
	}
}

func TestFaultSchedulerMaxDrops(t *testing.T) {
	sched := NewFaultScheduler(FaultPlan{Seed: 1, MeanDropBytes: 100, MaxDrops: 1})
	clientEnd, serverEnd := tcpPair(t)
	go io.Copy(io.Discard, serverEnd)
	conn := sched.Wrap(clientEnd)
	chunk := make([]byte, 64)
	for {
		if _, err := conn.Write(chunk); err != nil {
			break
		}
	}
	if sched.Stats().Drops != 1 {
		t.Fatalf("stats = %+v", sched.Stats())
	}
	// The next wrapped conn runs fault-free.
	c2, s2 := tcpPair(t)
	go io.Copy(io.Discard, s2)
	conn2 := sched.Wrap(c2)
	for i := 0; i < 50; i++ {
		if _, err := conn2.Write(make([]byte, 1024)); err != nil {
			t.Fatalf("write %d on post-cap conn failed: %v", i, err)
		}
	}
	if sched.Stats().Drops != 1 {
		t.Fatalf("post-cap conn was cut: %+v", sched.Stats())
	}
}

// faultyDialer returns a dialer producing fault-wrapped connections to
// the server's listener address, plus the scheduler for its counters.
func faultyDialer(t *testing.T, addr string, plan FaultPlan) (func() (net.Conn, error), *FaultScheduler) {
	t.Helper()
	sched := NewFaultScheduler(plan)
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return sched.Wrap(conn), nil
	}
	return dial, sched
}

// startFaultServer starts a server directly on a TCP listener and
// returns it with the listener address.
func startFaultServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	leakCheck(t)
	srv := NewServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

// stashWait returns a Sleep hook that waits (bounded) for the server
// to stash the dropped session's partial upload, so the reconnecting
// client's ResumeQuery deterministically finds it.
func stashWait(srv *Server) func(time.Duration) {
	return func(time.Duration) {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if srv.Stats().PendingResumable > 0 {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestUploadResumesAfterInjectedFaults is the acceptance test for the
// retry/resume path: a 4 MiB upload over a link that cuts the
// connection every ~1 MiB completes, resumes from the server's
// buffered offset instead of restarting, and the wire carries less
// than one extra file's worth of retransmission.
func TestUploadResumesAfterInjectedFaults(t *testing.T) {
	srv, addr := startFaultServer(t, ServerConfig{})
	dial, sched := faultyDialer(t, addr, FaultPlan{Seed: 3, MeanDropBytes: 1 << 20, MaxDrops: 3})

	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, "alice", "laptop",
		WithDialer(dial),
		WithRetry(RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, Seed: 1, Sleep: stashWait(srv)}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	data := content.Random(4<<20, 99).Bytes()
	stats, err := c.Upload("big.bin", data)
	if err != nil {
		t.Fatalf("upload never completed: %v (scheduler %+v)", err, sched.Stats())
	}
	if stats.Attempts < 2 {
		t.Fatalf("upload took %d attempt(s); the fault plan should have cut it at least once", stats.Attempts)
	}
	if stats.ResumedFrom == 0 {
		t.Fatal("upload restarted from scratch instead of resuming")
	}
	if srv.Stats().Resumes == 0 {
		t.Fatalf("server saw no resumes: %+v", srv.Stats())
	}
	got, ok := srv.FileContent("alice", "big.bin")
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("server content mismatch after resumed upload")
	}
	// The acceptance bound: retransmitted bytes < one full file size,
	// i.e. total bytes on the wire < 2× the payload.
	if wrote := sched.Stats().BytesWritten; wrote >= 2*int64(len(data)) {
		t.Fatalf("wire carried %d bytes for a %d-byte file — resume did not save retransmission", wrote, len(data))
	}
}

func TestDownloadRetriesAfterInjectedFault(t *testing.T) {
	srv, addr := startFaultServer(t, ServerConfig{})
	data := content.Random(1<<20, 5).Bytes()

	// Seed the server over a clean connection.
	clean, err := Dial("tcp", addr, "alice", "setup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Upload("doc", data); err != nil {
		t.Fatal(err)
	}
	clean.Close()

	// Budget covers the upload-side chatter plus part of the download,
	// so the transfer is cut mid-download and must be re-requested.
	dial, sched := faultyDialer(t, addr, FaultPlan{Seed: 2, MeanDropBytes: 300_000, MaxDrops: 1})
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, "alice", "phone",
		WithDialer(dial),
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 9,
			Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	got, err := c.Download("doc")
	if err != nil {
		t.Fatalf("download never completed: %v (scheduler %+v)", err, sched.Stats())
	}
	if !bytes.Equal(got, data) {
		t.Fatal("download mismatch after retry")
	}
	if sched.Stats().Drops == 0 {
		t.Fatal("fault plan injected nothing; the test exercised no retry")
	}
	if srv.Stats().Downloads < 2 {
		t.Fatalf("server stats = %+v, want at least 2 download attempts", srv.Stats())
	}
}

func TestDeltaUploadRetriesAfterInjectedFault(t *testing.T) {
	_, addr := startFaultServer(t, ServerConfig{BlockSize: 4096})
	base := content.Random(1<<20, 11).Bytes()

	clean, err := Dial("tcp", addr, "alice", "setup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Upload("big", base); err != nil {
		t.Fatal(err)
	}
	clean.Close()

	modified := append([]byte(nil), base...)
	modified[100] ^= 0xFF

	// The budget comfortably covers the handshake and the dedup-probing
	// re-upload below (a few hundred bytes) but lands inside the delta
	// exchange (signature + delta, ~13 KB for this file).
	dial, _ := faultyDialer(t, addr, FaultPlan{Seed: 6, MeanDropBytes: 8_000, MaxDrops: 1})
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, "alice", "laptop",
		WithDialer(dial),
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 4,
			Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Make the name known cheaply: re-uploading the unchanged content
	// dedups server-side, costing only control messages.
	seed, err := c.Upload("big", base)
	if err != nil {
		t.Fatal(err)
	}
	if !seed.DedupHit {
		t.Fatalf("seeding upload was not a dedup hit: %+v", seed)
	}
	stats, err := c.Upload("big", modified)
	if err != nil {
		t.Fatalf("delta upload never completed: %v", err)
	}
	if stats.Attempts < 2 {
		t.Fatalf("stats = %+v, want a retried upload", stats)
	}
	got, err := c.Download("big")
	if err != nil || !bytes.Equal(got, modified) {
		t.Fatalf("content diverged after retried delta sync (err %v)", err)
	}
}

func TestUploadFailsWithoutRetryPolicy(t *testing.T) {
	_, addr := startFaultServer(t, ServerConfig{})
	dial, _ := faultyDialer(t, addr, FaultPlan{Seed: 1, MeanDropBytes: 100_000, MaxDrops: 1})
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(conn, "alice", "laptop") // no retry, no dialer
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Upload("big", content.Random(1<<20, 1).Bytes()); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("upload error = %v, want the injected fault to surface", err)
	}
}

func TestServerCloseIsDeterministic(t *testing.T) {
	leakCheck(t)
	srv := NewServer(ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	// Park a few idle sessions on the server.
	for i := 0; i < 3; i++ {
		c, err := Dial("tcp", l.Addr().String(), "alice", "dev")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if _, err := c.Upload("f", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Close is idempotent, and new work is refused.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	defer ca.Close()
	if err := srv.HandleConn(cb); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("HandleConn after Close = %v, want ErrServerClosed", err)
	}
	if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

func TestServerCloseInterruptsLiveSession(t *testing.T) {
	leakCheck(t)
	srv, addr := startFaultServer(t, ServerConfig{})
	c, err := Dial("tcp", addr, "alice", "dev")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Upload("f", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The parked session's connection was torn down: the next operation
	// fails rather than hanging.
	if _, err := c.Upload("f", []byte("world")); err == nil {
		t.Fatal("upload succeeded against a closed server")
	}
}
