package syncnet

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"cloudsync/internal/obs"
)

// ErrInjectedFault marks a connection failure manufactured by a
// FaultScheduler rather than the kernel.
var ErrInjectedFault = errors.New("syncnet: injected connection fault")

// FaultPlan configures deterministic connection faults for real
// net.Conn traffic: each wrapped connection is cut after a seeded
// pseudo-random byte budget, modelling a link that drops mid-transfer.
// The zero plan injects nothing.
type FaultPlan struct {
	// Seed fixes the budget sequence; wrapping connections in the same
	// order yields the same cut points.
	Seed uint64
	// MeanDropBytes is the average bytes a connection carries before it
	// is cut; each connection's budget is drawn uniformly from
	// [mean/2, 3·mean/2). 0 disables injection.
	MeanDropBytes int64
	// MaxDrops bounds the total connections cut (0 = unlimited). Once
	// reached, further connections run fault-free — which guarantees a
	// retrying client eventually gets a clean run.
	MaxDrops int
	// MeanCrashBytes arms durable-state crash points on servers passed
	// to ArmCrash: the group commit that would carry the server's state
	// log past a seeded offset (drawn uniformly from [mean/2, 3·mean/2))
	// is torn mid-frame and the server dies — the in-process equivalent
	// of kill -9 at that exact byte of the WAL stream. 0 disables; only
	// meaningful for servers with a state directory.
	MeanCrashBytes int64
}

// FaultConnStats counts what a scheduler did to its connections.
type FaultConnStats struct {
	// Drops is the number of connections cut.
	Drops int
	// Crashes is the number of server crash points armed via ArmCrash.
	Crashes int
	// BytesWritten and BytesRead are the bytes actually forwarded
	// through wrapped connections in each direction.
	BytesWritten int64
	BytesRead    int64
}

// FaultScheduler wraps net.Conns (or a whole net.Listener) with the
// byte-budget fault injection of a FaultPlan. Safe for concurrent use.
type FaultScheduler struct {
	plan FaultPlan

	mu    sync.Mutex
	rng   jitterXorshift
	stats FaultConnStats
	cuts  *obs.Counter // live mirror of stats.Drops, nil-safe
}

// NewFaultScheduler builds a scheduler for the plan.
func NewFaultScheduler(plan FaultPlan) *FaultScheduler {
	if plan.MeanDropBytes < 0 {
		panic(fmt.Sprintf("syncnet: negative mean drop bytes %d", plan.MeanDropBytes))
	}
	if plan.MeanCrashBytes < 0 {
		panic(fmt.Sprintf("syncnet: negative mean crash bytes %d", plan.MeanCrashBytes))
	}
	return &FaultScheduler{plan: plan, rng: newJitterRNG(plan.Seed)}
}

// ArmCrash draws the plan's next seeded crash offset and arms it on
// srv's durable state log (see Server.FailStateAt). It returns the
// armed absolute offset, or -1 when the plan has MeanCrashBytes unset.
// Arming a server without a state directory is a recorded no-op — the
// draw still advances, keeping offset sequences stable across configs.
func (fs *FaultScheduler) ArmCrash(srv *Server) int64 {
	fs.mu.Lock()
	if fs.plan.MeanCrashBytes <= 0 {
		fs.mu.Unlock()
		return -1
	}
	m := float64(fs.plan.MeanCrashBytes)
	off := int64(m/2 + m*fs.rng.float())
	if off < 1 {
		off = 1
	}
	fs.stats.Crashes++
	fs.mu.Unlock()
	srv.FailStateAt(off)
	return off
}

// SetMetrics mirrors the scheduler's cut count into reg as
// syncd_fault_cuts_total (no-op when reg is nil).
func (fs *FaultScheduler) SetMetrics(reg *obs.Registry) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cuts = reg.Counter("syncd_fault_cuts_total", "Connections cut by the fault-injection scheduler.")
}

// Stats snapshots the scheduler's counters.
func (fs *FaultScheduler) Stats() FaultConnStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// Wrap returns conn with the plan's fault behaviour attached. When the
// plan is inert (or MaxDrops is exhausted), the wrapper only counts
// traffic.
func (fs *FaultScheduler) Wrap(conn net.Conn) net.Conn {
	fc := &faultConn{Conn: conn, fs: fs, budget: -1}
	fs.mu.Lock()
	if fs.plan.MeanDropBytes > 0 && (fs.plan.MaxDrops == 0 || fs.stats.Drops < fs.plan.MaxDrops) {
		m := float64(fs.plan.MeanDropBytes)
		fc.budget = int64(m/2 + m*fs.rng.float())
	}
	fs.mu.Unlock()
	return fc
}

// Listen wraps a listener so every accepted connection carries the
// plan's fault behaviour — the server-side injection point syncd uses.
func (fs *FaultScheduler) Listen(l net.Listener) net.Listener {
	return &faultListener{Listener: l, fs: fs}
}

type faultListener struct {
	net.Listener
	fs *FaultScheduler
}

func (fl *faultListener) Accept() (net.Conn, error) {
	conn, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return fl.fs.Wrap(conn), nil
}

// faultConn cuts the underlying connection once its byte budget (both
// directions combined) is spent. Bytes within the budget are always
// delivered — a cut mid-Write flushes the permitted prefix first, so
// the peer observes a well-formed partial stream, exactly like a real
// mid-transfer disconnect.
type faultConn struct {
	net.Conn
	fs *FaultScheduler

	mu      sync.Mutex
	budget  int64 // bytes remaining before the cut; -1 = never cut
	tripped bool
}

// closeWriter is the half-close capability of *net.TCPConn: tripping
// via CloseWrite lets bytes already sent drain to the peer.
type closeWriter interface{ CloseWrite() error }

func (fc *faultConn) Write(p []byte) (int, error) {
	fc.mu.Lock()
	if fc.tripped {
		fc.mu.Unlock()
		return 0, ErrInjectedFault
	}
	allowed := len(p)
	cut := false
	if fc.budget >= 0 {
		if int64(allowed) >= fc.budget {
			allowed = int(fc.budget)
			cut = true
		}
		fc.budget -= int64(allowed)
	}
	fc.mu.Unlock()

	n := 0
	var err error
	if allowed > 0 {
		n, err = fc.Conn.Write(p[:allowed])
		fc.count(int64(n), 0)
	}
	if err != nil {
		return n, err
	}
	if cut {
		fc.trip()
		return n, ErrInjectedFault
	}
	return n, nil
}

func (fc *faultConn) Read(p []byte) (int, error) {
	fc.mu.Lock()
	if fc.tripped {
		fc.mu.Unlock()
		return 0, ErrInjectedFault
	}
	if fc.budget >= 0 && int64(len(p)) > fc.budget {
		// Never read past the cut point; a zero budget trips now.
		if fc.budget == 0 {
			fc.mu.Unlock()
			fc.trip()
			return 0, ErrInjectedFault
		}
		p = p[:fc.budget]
	}
	fc.mu.Unlock()

	n, err := fc.Conn.Read(p)
	fc.count(0, int64(n))
	fc.mu.Lock()
	if fc.budget >= 0 {
		fc.budget -= int64(n)
	}
	fc.mu.Unlock()
	return n, err
}

// trip cuts the connection: half-close when the transport supports it
// (letting delivered bytes drain to the peer), full close otherwise.
func (fc *faultConn) trip() {
	fc.mu.Lock()
	if fc.tripped {
		fc.mu.Unlock()
		return
	}
	fc.tripped = true
	fc.mu.Unlock()

	fc.fs.mu.Lock()
	fc.fs.stats.Drops++
	cuts := fc.fs.cuts
	fc.fs.mu.Unlock()
	cuts.Inc()

	if cw, ok := fc.Conn.(closeWriter); ok {
		cw.CloseWrite()
	} else {
		fc.Conn.Close()
	}
}

func (fc *faultConn) count(wrote, read int64) {
	fc.fs.mu.Lock()
	fc.fs.stats.BytesWritten += wrote
	fc.fs.stats.BytesRead += read
	fc.fs.mu.Unlock()
}
