package syncnet

import (
	"bytes"
	"strings"
	"testing"

	"cloudsync/internal/content"
	"cloudsync/internal/store/wal"
)

// reopenSnapshot recovers the state directory into a fresh server and
// returns its view of one user, plus the server for further probing.
func reopenServer(t *testing.T, dir string) *Server {
	t.Helper()
	srv, err := OpenServer(ServerConfig{StateDir: dir})
	if err != nil {
		t.Fatalf("recovering %s: %v", dir, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func sameSnapshot(t *testing.T, label string, want, got map[string]FileState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d files after recovery, want %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: file %q lost in recovery", label, name)
		}
		if g.ID != w.ID || g.Version != w.Version || g.Deleted != w.Deleted || g.History != w.History {
			t.Fatalf("%s: %q recovered as %+v, want %+v", label, name, g, w)
		}
		if !bytes.Equal(g.Data, w.Data) {
			t.Fatalf("%s: %q content diverged after recovery", label, name)
		}
	}
}

// TestDurableRoundTrip: every acknowledged mutation — uploads,
// overwrite, cross-file dedup, delete — survives a close-and-reopen of
// the state directory with identical content, version, history, and
// file identity.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv, dial := startServer(t, ServerConfig{StateDir: dir})
	alice, _ := dial("alice")
	bob, _ := dial("bob")

	a1 := content.Text(20_000, 1).Bytes()
	a2 := content.Text(24_000, 2).Bytes()
	if _, err := alice.Upload("docs/a.txt", a1); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Upload("docs/b.txt", content.Random(4_000, 3).Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Upload("docs/a.txt", a2); err != nil { // delta path
		t.Fatal(err)
	}
	if _, err := bob.Upload("docs/a.txt", a1); err != nil { // shared content blob
		t.Fatal(err)
	}
	if err := alice.Delete("docs/b.txt"); err != nil {
		t.Fatal(err)
	}

	wantAlice := srv.Snapshot("alice")
	wantBob := srv.Snapshot("bob")
	wantStored := srv.Stats().BytesStored
	alice.Close()
	bob.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := reopenServer(t, dir)
	sameSnapshot(t, "alice", wantAlice, srv2.Snapshot("alice"))
	sameSnapshot(t, "bob", wantBob, srv2.Snapshot("bob"))
	if got := srv2.Stats().BytesStored; got != wantStored {
		t.Fatalf("BytesStored %d after recovery, want %d", got, wantStored)
	}
}

// TestDurableCompaction: state folded into a snapshot plus records
// appended after it replay to the same state, and the fold is
// triggered both explicitly and by the log-size threshold.
func TestDurableCompaction(t *testing.T) {
	dir := t.TempDir()
	// A tiny threshold so ordinary traffic crosses it: every commit's
	// group commit also compacts, exercising snapshot-over-snapshot.
	srv, dial := startServer(t, ServerConfig{StateDir: dir, CompactLogBytes: 1024})
	c, _ := dial("alice")

	if _, err := c.Upload("a", content.Random(8_000, 1).Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload("b", content.Random(8_000, 2).Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := srv.CompactState(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload("c", content.Random(8_000, 3).Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}

	want := srv.Snapshot("alice")
	c.Close()
	srv.Close()

	srv2 := reopenServer(t, dir)
	sameSnapshot(t, "alice", want, srv2.Snapshot("alice"))

	// Recovered dedup index still answers: re-uploading b's bytes under
	// a new name must dedup-skip (no payload transfer).
	// (Server-internal check: the content blob is still addressable.)
	if _, ok := srv2.FileContent("alice", "b"); !ok {
		t.Fatal("content lost across compaction")
	}
}

// TestCrashMidCommit arms a crash point just past the durable prefix:
// the commit that trips it must NOT be acknowledged, the server must
// refuse all further work, and recovery must surface exactly the
// acknowledged state.
func TestCrashMidCommit(t *testing.T) {
	dir := t.TempDir()
	srv, dial := startServer(t, ServerConfig{StateDir: dir})
	c, _ := dial("alice")

	if _, err := c.Upload("safe", content.Text(10_000, 1).Bytes()); err != nil {
		t.Fatal(err)
	}
	want := srv.Snapshot("alice")

	srv.FailStateAt(srv.StateLogBytes() + 3) // tear the next commit's frame
	if _, err := c.Upload("doomed", content.Text(10_000, 2).Bytes()); err == nil {
		t.Fatal("upload acknowledged past an armed crash point")
	}
	if !srv.Crashed() {
		t.Fatal("server not crashed after torn group commit")
	}
	select {
	case <-srv.CrashedC():
	default:
		t.Fatal("CrashedC not closed")
	}
	// A crashed server refuses everything, like a killed process.
	if _, err := c.Upload("more", []byte("x")); err == nil {
		t.Fatal("crashed server accepted work")
	}
	c.Close()
	srv.Close()

	srv2 := reopenServer(t, dir)
	got := srv2.Snapshot("alice")
	if _, ok := got["doomed"]; ok {
		t.Fatal("unacknowledged commit resurrected by recovery")
	}
	sameSnapshot(t, "alice", want, got)
}

// TestArmCrash: the fault scheduler draws seeded crash offsets within
// the documented window and counts them.
func TestArmCrash(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(ServerConfig{StateDir: dir})
	defer srv.Close()

	fs := NewFaultScheduler(FaultPlan{Seed: 7, MeanCrashBytes: 1000})
	off := fs.ArmCrash(srv)
	if off < 500 || off >= 1500 {
		t.Fatalf("crash offset %d outside [mean/2, 3·mean/2)", off)
	}
	if fs.Stats().Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", fs.Stats().Crashes)
	}
	if got := NewFaultScheduler(FaultPlan{Seed: 7}).ArmCrash(srv); got != -1 {
		t.Fatalf("inert plan armed offset %d", got)
	}
	// Same seed, same sequence.
	if again := NewFaultScheduler(FaultPlan{Seed: 7, MeanCrashBytes: 1000}).ArmCrash(srv); again != off {
		t.Fatalf("seeded offsets diverge: %d vs %d", again, off)
	}
}

// TestRecoveryRejectsForeignRecords: a record the codec does not know
// (a frame with a valid CRC but garbage payload) aborts Open loudly
// instead of silently dropping state.
func TestRecoveryRejectsForeignRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Append([]byte{99, 1, 2, 3})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if _, err := OpenServer(ServerConfig{StateDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "unknown state record") {
		t.Fatalf("OpenServer on foreign records: %v, want unknown-record error", err)
	}
}
