package syncnet

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cloudsync/internal/obs"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/protocol"
)

// tracedPair wires a client and server over net.Pipe with independent
// tracers; opts extend the client side.
func tracedPair(t *testing.T, cfg ServerConfig, opts ...ClientOption) (*Client, *Server, func()) {
	t.Helper()
	leakCheck(t)
	srv := NewServer(cfg)
	cp, sp := net.Pipe()
	handlerCh := make(chan error, 1)
	go func() { handlerCh <- srv.HandleConn(sp) }()
	c, err := NewClient(cp, "alice", "trace-test", opts...)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return c, srv, func() {
		c.Close()
		if err := <-handlerCh; err != nil {
			t.Fatalf("HandleConn: %v", err)
		}
	}
}

// TestTracePropagationMergedTree is the tentpole shape check: with
// context propagation on, merging the two sides' dumps must hang every
// server request span off the client attempt that caused it, under one
// shared root.
func TestTracePropagationMergedTree(t *testing.T) {
	serverTr, clientTr := obs.NewTracer(), obs.NewTracer()
	c, _, finish := tracedPair(t, ServerConfig{Tracer: serverTr},
		WithTracer(clientTr), WithTraceContext())

	if _, err := c.Upload("a.txt", bytes.Repeat([]byte("trace "), 2048)); err != nil {
		t.Fatalf("upload: %v", err)
	}
	finish()

	merged := obs.Merge(clientTr.Dump("client"), serverTr.Dump("server"))
	var uploadRoot, attemptID uint64
	for _, m := range merged {
		switch m.Name {
		case "client.upload":
			uploadRoot = m.ID
		case "client.attempt":
			attemptID = m.ID
		}
	}
	if uploadRoot == 0 || attemptID == 0 {
		t.Fatalf("client spans missing from merge: %+v", merged)
	}

	var serverUnderAttempt, serverSpans int
	for _, m := range merged {
		if m.Process != "server" || m.Name == "server.session" {
			continue
		}
		serverSpans++
		if m.Parent == attemptID {
			serverUnderAttempt++
		}
		if m.Root != uploadRoot {
			t.Errorf("server span %s: root %d, want client.upload root %d", m.Name, m.Root, uploadRoot)
		}
	}
	if serverSpans == 0 {
		t.Fatal("no server request spans in merge")
	}
	if serverUnderAttempt == 0 {
		t.Fatalf("no server span parented under client.attempt (%d server spans)", serverSpans)
	}
}

// TestTraceLedgerExactWithPropagation: the TraceCtx frames a
// propagating session adds are charged to framing, so both sides'
// ledgers must still equal their metered wire bytes exactly.
func TestTraceLedgerExactWithPropagation(t *testing.T) {
	clientLed, serverLed := &ledger.Ledger{}, &ledger.Ledger{}
	serverTr, clientTr := obs.NewTracer(), obs.NewTracer()
	c, srv, finish := tracedPair(t, ServerConfig{Tracer: serverTr, Ledger: serverLed},
		WithTracer(clientTr), WithTraceContext(), WithLedger(clientLed))

	v1 := bytes.Repeat([]byte("propagated "), 4<<10)
	if _, err := c.Upload("report.txt", v1); err != nil {
		t.Fatalf("upload: %v", err)
	}
	if _, err := c.Download("report.txt"); err != nil {
		t.Fatalf("download: %v", err)
	}
	if err := c.Delete("report.txt"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	finish()

	clientIn, clientOut := c.WireTotals()
	if got, want := clientLed.Total(), clientIn+clientOut; got != want {
		t.Errorf("client ledger total %d ≠ wire %d with tracing on\n%s",
			got, want, clientLed.Snapshot().Table("client"))
	}
	st := srv.Stats()
	if got, want := serverLed.Total(), st.BytesReceived+st.BytesSent; got != want {
		t.Errorf("server ledger total %d ≠ wire %d with tracing on\n%s",
			got, want, serverLed.Snapshot().Table("server"))
	}
	if clientLed.Total() != serverLed.Total() {
		t.Errorf("sides disagree: client %d, server %d", clientLed.Total(), serverLed.Total())
	}
}

// teeConn records everything the client writes, so tests can assert on
// the exact frames that reached the wire.
type teeConn struct {
	net.Conn
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *teeConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.buf.Write(p[:n])
	c.mu.Unlock()
	return n, err
}

// frames splits the captured stream into [type, body...] frames.
func (c *teeConn) frames(t *testing.T) [][]byte {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [][]byte
	b := c.buf.Bytes()
	for len(b) > 0 {
		if len(b) < frameHeaderLen {
			t.Fatalf("trailing %d-byte fragment in captured stream", len(b))
		}
		n := int(uint32(b[1]) | uint32(b[2])<<8 | uint32(b[3])<<16 | uint32(b[4])<<24)
		if len(b) < frameHeaderLen+n {
			t.Fatalf("truncated frame: need %d, have %d", frameHeaderLen+n, len(b))
		}
		out = append(out, b[:frameHeaderLen+n])
		b = b[frameHeaderLen+n:]
	}
	return out
}

const frameHeaderLen = 5

// TestNonPropagatingClientIsWireIdenticalToLegacy pins the interop
// guarantee: a traced client that does not opt into propagation puts
// exactly the legacy byte stream on the wire — its Hello matches the
// pre-capability encoding byte for byte and no TraceCtx frame ever
// appears — and the ledgers still balance. A peer that predates the
// capability cannot tell the difference.
func TestNonPropagatingClientIsWireIdenticalToLegacy(t *testing.T) {
	leakCheck(t)
	clientLed := &ledger.Ledger{}
	srv := NewServer(ServerConfig{Tracer: obs.NewTracer()})
	cp, sp := net.Pipe()
	handlerCh := make(chan error, 1)
	go func() { handlerCh <- srv.HandleConn(sp) }()
	tee := &teeConn{Conn: cp}
	c, err := NewClient(tee, "alice", "legacy-test",
		WithTracer(obs.NewTracer()), WithLedger(clientLed)) // no WithTraceContext
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	if _, err := c.Upload("a.txt", []byte("legacy wire")); err != nil {
		t.Fatalf("upload: %v", err)
	}
	c.Close()
	if err := <-handlerCh; err != nil {
		t.Fatalf("HandleConn: %v", err)
	}

	frames := tee.frames(t)
	if len(frames) == 0 {
		t.Fatal("no frames captured")
	}
	legacyHello := protocol.Encode(&protocol.Hello{User: "alice", Device: "legacy-test", Version: "cloudsync/1"})
	if !bytes.Equal(frames[0], legacyHello) {
		t.Fatalf("Hello differs from legacy bytes:\n got %x\nwant %x", frames[0], legacyHello)
	}
	for i, f := range frames {
		if protocol.MsgType(f[0]) == protocol.TypeTraceCtx {
			t.Fatalf("frame %d is a TraceCtx from a non-propagating client", i)
		}
	}
	in, out := c.WireTotals()
	if got, want := clientLed.Total(), in+out; got != want {
		t.Errorf("client ledger total %d ≠ wire %d", got, want)
	}
}

// driveRawTraceCtx sends a raw Hello (with the given caps), a TraceCtx,
// and a ListRequest at a tracing server, and reports the remote context
// the server's request span recorded.
func driveRawTraceCtx(t *testing.T, caps uint32) (obs.TraceID, uint64) {
	t.Helper()
	leakCheck(t)
	remote := obs.TraceID{1, 2, 3}
	serverTr := obs.NewTracer()
	srv := NewServer(ServerConfig{Tracer: serverTr})
	t.Cleanup(func() { srv.Close() })
	client, server := net.Pipe()
	handlerCh := make(chan error, 1)
	go func() { handlerCh <- srv.HandleConn(server) }()
	go io.Copy(io.Discard, client) // drain replies so writes never block

	for _, m := range []protocol.Message{
		&protocol.Hello{User: "raw", Device: "d", Version: "v", Caps: caps},
		&protocol.TraceCtx{TraceID: [16]byte(remote), SpanID: 77},
		&protocol.ListRequest{},
	} {
		if _, err := client.Write(protocol.Encode(m)); err != nil {
			t.Fatalf("write %v: %v", m.Type(), err)
		}
	}
	client.Close()
	<-handlerCh

	for _, s := range serverTr.Spans() {
		if s.Name == "server.list-request" {
			return s.RemoteTrace, s.RemoteParent
		}
	}
	t.Fatal("server.list-request span not recorded")
	return obs.TraceID{}, 0
}

// TestTraceCtxIgnoredWithoutCapability: a TraceCtx after a legacy
// (capability-free) Hello is absorbed without adopting the context.
func TestTraceCtxIgnoredWithoutCapability(t *testing.T) {
	trace, span := driveRawTraceCtx(t, 0)
	if span != 0 || !trace.IsZero() {
		t.Fatalf("server adopted a context it never negotiated: trace %v span %d", trace, span)
	}
}

// TestTraceCtxAdoptedWithCapability: the same frames after a CapTrace
// Hello re-parent the next request span under the remote context.
func TestTraceCtxAdoptedWithCapability(t *testing.T) {
	trace, span := driveRawTraceCtx(t, protocol.CapTrace)
	if span != 77 || trace != (obs.TraceID{1, 2, 3}) {
		t.Fatalf("server did not adopt the context: trace %v span %d", trace, span)
	}
}

// TestWalMetricsRegisteredOnlyWithStateDir: the WAL instrument family
// appears on the registry only when there is a durable state to
// measure, and real commits move it.
func TestWalMetricsRegisteredOnlyWithStateDir(t *testing.T) {
	ram := obs.NewRegistry()
	srv := NewServer(ServerConfig{Metrics: ram})
	srv.Close()
	var buf bytes.Buffer
	if err := ram.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "syncd_wal_") {
		t.Fatalf("in-RAM server registered WAL metrics:\n%s", buf.String())
	}

	leakCheck(t)
	reg := obs.NewRegistry()
	durable := NewServer(ServerConfig{Metrics: reg, StateDir: t.TempDir()})
	cp, sp := net.Pipe()
	handlerCh := make(chan error, 1)
	go func() { handlerCh <- durable.HandleConn(sp) }()
	c, err := NewClient(cp, "alice", "wal-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { durable.Close() })
	if _, err := c.Upload("a.txt", []byte("durable bytes")); err != nil {
		t.Fatalf("upload: %v", err)
	}
	c.Close()
	if err := <-handlerCh; err != nil {
		t.Fatalf("HandleConn: %v", err)
	}

	if n := reg.Histogram("syncd_wal_fsync_duration_us", "").Count(); n == 0 {
		t.Error("fsync duration histogram never observed")
	}
	if n := reg.Counter("syncd_wal_fsyncs_total", "").Value(); n == 0 {
		t.Error("fsync counter never incremented")
	}
	if n := reg.Counter("syncd_wal_bytes_appended_total", "").Value(); n == 0 {
		t.Error("bytes-appended counter never incremented")
	}
}

// TestPhaseHistogramsPopulated: one traced upload must move every phase
// instrument that does not need a durable state — client reply wait,
// server inbound-queue wait, request duration, and apply time.
func TestPhaseHistogramsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	c, _, finish := tracedPair(t, ServerConfig{Metrics: reg}, WithClientMetrics(reg))
	if _, err := c.Upload("a.txt", bytes.Repeat([]byte("phase "), 1024)); err != nil {
		t.Fatalf("upload: %v", err)
	}
	finish()
	for _, name := range []string{
		"syncnet_client_reply_wait_us",
		"syncd_inbound_queue_wait_us",
		"syncd_request_duration_us",
		"syncd_apply_us",
	} {
		if n := reg.Histogram(name, "").Count(); n == 0 {
			t.Errorf("%s never observed", name)
		}
	}
}

// TestFlightRecorderCrashDump: when the durable state dies, the flight
// ring must land in <state-dir>/flight-<ts>.jsonl — parseable, carrying
// the requests that led up to the crash and the crash record itself —
// before CrashedC releases any exit watcher.
func TestFlightRecorderCrashDump(t *testing.T) {
	dir := t.TempDir()
	fl := obs.NewFlightRecorder(64)
	srv, dial := startServer(t, ServerConfig{StateDir: dir, Flight: fl})
	c, _ := dial("alice")

	if _, err := c.Upload("safe", bytes.Repeat([]byte("s"), 4096)); err != nil {
		t.Fatal(err)
	}
	srv.FailStateAt(srv.StateLogBytes() + 3)
	if _, err := c.Upload("doomed", bytes.Repeat([]byte("d"), 4096)); err == nil {
		t.Fatal("upload acknowledged past an armed crash point")
	}
	select {
	case <-srv.CrashedC():
	default:
		t.Fatal("CrashedC not closed after crash")
	}

	matches, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("flight dumps on disk: %v (err %v), want exactly 1", matches, err)
	}
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadFlightDump(f)
	if err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("flight dump is empty")
	}
	var sawCommit, sawCrash bool
	for _, r := range recs {
		if r.Name == "server.commit" && r.User == "alice" {
			sawCommit = true
		}
		if r.Name == "server.crash" {
			sawCrash = true
		}
	}
	if !sawCommit {
		t.Errorf("no server.commit record for alice in dump: %+v", recs)
	}
	if !sawCrash {
		t.Errorf("no server.crash record in dump: %+v", recs)
	}
	if last := recs[len(recs)-1]; last.Name != "server.crash" {
		t.Errorf("last record is %q, want the crash marker", last.Name)
	}
}
