package syncnet

import (
	"fmt"
	"net"
	"time"

	"cloudsync/internal/obs"
	"cloudsync/internal/protocol"
)

// RetryPolicy controls how a client recovers from transport failures:
// exponential backoff with deterministic seeded jitter between
// reconnection attempts. The zero policy never retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (1 = no
	// retry; 0 behaves like 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first reconnect; it doubles
	// per attempt up to MaxDelay. Zero means no delay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = uncapped).
	MaxDelay time.Duration
	// Seed fixes the jitter sequence, keeping recovery schedules
	// reproducible in tests.
	Seed uint64
	// Sleep, when set, replaces time.Sleep (tests inject a recorder; the
	// fault tests inject a no-op to stay fast).
	Sleep func(time.Duration)
}

// WithRetry equips the client with a retry policy. Without WithDialer
// (or Dial, which installs one), retries cannot reconnect and the
// policy is inert.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithDialer sets the factory used to re-establish the transport after
// a failure.
func WithDialer(dial func() (net.Conn, error)) ClientOption {
	return func(c *Client) { c.dialer = dial }
}

// backoff returns the pre-reconnect delay for the given attempt
// (attempt ≥ 2): exponential in the attempt number with ±25% seeded
// jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.retry.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 2; i < attempt; i++ {
		d *= 2
		if c.retry.MaxDelay > 0 && d >= c.retry.MaxDelay {
			d = c.retry.MaxDelay
			break
		}
	}
	if c.retry.MaxDelay > 0 && d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	// ±25% jitter so synchronized clients do not reconnect in lockstep.
	jitter := time.Duration(float64(d) / 2 * c.jitterRNG.float())
	return d*3/4 + jitter
}

// reconnect tears down the broken transport, backs off, redials, and
// re-opens the session with a fresh Hello. Server-side file state
// survives across sessions, so the client's name→id map stays valid.
func (c *Client) reconnect(attempt int) error {
	c.conn.Close()
	if d := c.backoff(attempt); d > 0 {
		c.att.Set("backoff_us", d.Microseconds())
		if c.retry.Sleep != nil {
			c.retry.Sleep(d)
		} else {
			time.Sleep(d)
		}
	}
	conn, err := c.dialer()
	if err != nil {
		return fmt.Errorf("syncnet: reconnect: %w", err)
	}
	if c.tracer != nil || c.ledger != nil {
		conn = &meterConn{Conn: conn, in: &c.wireIn, out: &c.wireOut}
	}
	if err := c.sendOn(conn, &protocol.Hello{User: c.user, Device: c.device, Version: "cloudsync/1", Caps: c.helloCaps()}); err != nil {
		conn.Close()
		return err
	}
	c.conn = conn
	return nil
}

// withRetry runs op, reconnecting and re-running it on transport
// failure until the policy is exhausted. op receives the 1-based
// attempt number so operations can switch to their resume path.
// Protocol-level errors (the server answered, rejecting the request)
// are never retried — retrying cannot change the answer.
func (c *Client) withRetry(op func(attempt int) error) error {
	attempts := c.retry.MaxAttempts
	if attempts < 1 || c.dialer == nil {
		attempts = 1
	}
	// Fresh per-operation ledger state: per-file payload high-water
	// marks track what this operation has already put on (or pulled
	// off) the wire, so only genuine re-sends are charged as
	// retransmits.
	clear(c.txHigh)
	clear(c.rxHigh)
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		c.attempt = attempt // lets the ledger tag re-sent bytes as retransmits
		c.att = c.op.Child("client.attempt", obs.Int("attempt", int64(attempt)))
		if attempt > 1 {
			if rerr := c.reconnect(attempt); rerr != nil {
				err = rerr // dial failures consume attempts too
				c.att.Set("error", rerr.Error()).End()
				c.att = nil
				continue
			}
		}
		// Propagating sessions prefix every attempt with the trace
		// context (the attempt span), so server-side work on any retry
		// still joins this operation's tree. A failed send is a
		// transport failure like any other: it consumes the attempt.
		if terr := c.sendTraceCtx(); terr != nil {
			err = terr
			c.att.Set("error", terr.Error()).End()
			c.att = nil
			continue
		}
		err = op(attempt)
		if err != nil {
			c.att.Set("error", err.Error())
		}
		c.att.End()
		c.att = nil
		if err == nil {
			return nil
		}
		var perr *protocol.Error
		if isProtoErr(err, &perr) {
			return err
		}
	}
	return err
}

// jitterXorshift is the client's private jitter PRNG (same frozen
// xorshift+splitmix construction the simulator uses, duplicated to
// keep syncnet free of simulator dependencies).
type jitterXorshift uint64

func newJitterRNG(seed uint64) jitterXorshift {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return jitterXorshift(z)
}

func (x *jitterXorshift) float() float64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = jitterXorshift(v)
	return float64(v>>11) / float64(1<<53)
}
