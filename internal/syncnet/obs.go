package syncnet

import (
	"io"
	"net"
	"sync/atomic"

	"cloudsync/internal/obs"
	"cloudsync/internal/store/wal"
)

// serverObs bundles the server's live-metric instruments. When the
// server runs without a registry every field is nil, and the nil-safe
// obs instruments make every update a no-op — the live path costs
// nothing unless syncd was started with -obs-addr. The full metric
// catalogue is documented in docs/OBSERVABILITY.md.
type serverObs struct {
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter
	sessions    *obs.Counter
	activeConns *obs.Gauge

	uploads     *obs.Counter
	dedupSkips  *obs.Counter
	deltaSyncs  *obs.Counter
	downloads   *obs.Counter
	deletes     *obs.Counter
	resumes     *obs.Counter
	bundles     *obs.Counter
	bundleFiles *obs.Counter

	pendingResumable *obs.Gauge
	bytesStored      *obs.Gauge

	sessionTUEMilli *obs.Histogram
	requestUS       *obs.Histogram

	// Phase decomposition: where a request's time goes before and during
	// handling (WAL fsync time is metered inside internal/store/wal).
	inboundWaitUS *obs.Histogram
	applyUS       *obs.Histogram
}

// newServerObs registers the server's metric set on reg (no-op
// instruments when reg is nil).
func newServerObs(reg *obs.Registry) serverObs {
	return serverObs{
		bytesIn:     reg.Counter("syncd_bytes_received_total", "Bytes read off client connections (server-side wire view, up direction)."),
		bytesOut:    reg.Counter("syncd_bytes_sent_total", "Bytes written to client connections (down direction)."),
		sessions:    reg.Counter("syncd_sessions_total", "Client sessions accepted."),
		activeConns: reg.Gauge("syncd_active_connections", "Client connections currently open."),

		uploads:    reg.Counter("syncd_uploads_total", "Full-file uploads committed (dedup hits included)."),
		dedupSkips: reg.Counter("syncd_dedup_skips_total", "Uploads whose content transfer was skipped by full-file dedup."),
		deltaSyncs: reg.Counter("syncd_delta_syncs_total", "Files updated incrementally via rsync delta."),
		downloads:  reg.Counter("syncd_downloads_total", "File downloads served."),
		deletes:    reg.Counter("syncd_deletes_total", "Fake deletions applied."),
		resumes:    reg.Counter("syncd_resumes_total", "Interrupted uploads adopted from the pending stash."),

		bundles:     reg.Counter("syncd_bundles_total", "Bundle messages handled (batched small-file uploads)."),
		bundleFiles: reg.Counter("syncd_bundle_files_total", "Files committed via bundle messages."),

		pendingResumable: reg.Gauge("syncd_pending_resumable", "Stashed partial uploads currently held for resumption."),
		bytesStored:      reg.Gauge("syncd_bytes_stored", "Unique raw content bytes in the dedup content store."),

		sessionTUEMilli: reg.Histogram("syncd_session_tue_milli", "Per-session TUE x1000: wire bytes received / content bytes committed, for sessions that committed content."),
		requestUS:       reg.Histogram("syncd_request_duration_us", "Per-request handling time in microseconds."),

		inboundWaitUS: reg.Histogram("syncd_inbound_queue_wait_us", "Microseconds a fully read request waited in the connection's inbound queue before dispatch (MaxInflight backpressure)."),
		applyUS:       reg.Histogram("syncd_apply_us", "Microseconds spent applying a mutation to in-memory state (decode, verify, store), excluding the WAL group commit."),
	}
}

// walMetrics registers the durable-store instrument set. It is called
// only when both a registry and a state dir are configured, so an
// in-RAM server's /metrics never carries WAL series.
func walMetrics(reg *obs.Registry) *wal.Metrics {
	return &wal.Metrics{
		FsyncUS:       reg.Histogram("syncd_wal_fsync_duration_us", "Microseconds per WAL group commit (buffered write + fsync)."),
		Fsyncs:        reg.Counter("syncd_wal_fsyncs_total", "WAL group commits (fsyncs) performed."),
		BytesAppended: reg.Counter("syncd_wal_bytes_appended_total", "Framed record bytes made durable in the WAL."),
		Compactions:   reg.Counter("syncd_wal_compactions_total", "Log-into-snapshot compactions completed."),
		SnapshotBytes: reg.Gauge("syncd_wal_snapshot_bytes", "Size of the current generation's snapshot in bytes."),
	}
}

// countingWriter mirrors countingReader for the send direction: it
// tallies bytes into the per-session counter, the server-wide atomic,
// and the live metric.
type countingWriter struct {
	w     io.Writer
	n     *int64
	total *atomic.Int64
	obsC  *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	cw.total.Add(int64(n))
	cw.obsC.Add(int64(n))
	return n, err
}

// writeVectored writes hdr then payload in one net.Buffers send — a
// single writev when the underlying connection supports it — counting
// the bytes exactly once.
func (cw *countingWriter) writeVectored(hdr, payload []byte) (int64, error) {
	bufs := net.Buffers{hdr, payload}
	n, err := bufs.WriteTo(cw.w)
	*cw.n += n
	cw.total.Add(n)
	cw.obsC.Add(n)
	return n, err
}
