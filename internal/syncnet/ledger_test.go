package syncnet

import (
	"bytes"
	"net"
	"testing"
	"time"

	"cloudsync/internal/obs/ledger"
)

// TestLedgerRoundTrip drives the full operation mix through a ledgered
// client/server pair over net.Pipe and asserts the live path's core
// accounting contract: on each side, the sum of all attributed causes
// equals that side's total metered wire bytes, exactly. net.Pipe is
// synchronous, so the two sides must also agree with each other.
func TestLedgerRoundTrip(t *testing.T) {
	leakCheck(t)
	clientLed := &ledger.Ledger{}
	serverLed := &ledger.Ledger{}
	srv := NewServer(ServerConfig{Ledger: serverLed})
	cp, sp := net.Pipe()
	handlerCh := make(chan error, 1)
	go func() { handlerCh <- srv.HandleConn(sp) }()
	c, err := NewClient(cp, "alice", "ledger-test", WithLedger(clientLed))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	v1 := bytes.Repeat([]byte("attribution "), 4<<10)
	if _, err := c.Upload("report.txt", v1); err != nil {
		t.Fatalf("upload: %v", err)
	}
	// Same content under a new name: full-file dedup skips the payload.
	stats, err := c.Upload("copy.txt", v1)
	if err != nil {
		t.Fatalf("dedup upload: %v", err)
	}
	if !stats.DedupHit {
		t.Fatalf("second upload of identical content was not dedup-skipped: %+v", stats)
	}
	// Small edit: delta sync ships signatures + a mostly-copy delta.
	v2 := append(append([]byte{}, v1...), []byte("appended tail")...)
	stats, err = c.Upload("report.txt", v2)
	if err != nil {
		t.Fatalf("re-upload: %v", err)
	}
	if !stats.DeltaSync {
		t.Fatalf("re-upload was not a delta sync: %+v", stats)
	}
	if _, err := c.Download("report.txt"); err != nil {
		t.Fatalf("download: %v", err)
	}
	if err := c.Delete("copy.txt"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	c.Close()
	if err := <-handlerCh; err != nil {
		t.Fatalf("HandleConn: %v", err)
	}

	clientIn, clientOut := c.WireTotals()
	if got, want := clientLed.Total(), clientIn+clientOut; got != want {
		t.Errorf("client ledger total = %d, wire in+out = %d\n%s",
			got, want, clientLed.Snapshot().Table("client"))
	}
	srvStats := srv.Stats()
	if got, want := serverLed.Total(), srvStats.BytesReceived+srvStats.BytesSent; got != want {
		t.Errorf("server ledger total = %d, wire in+out = %d\n%s",
			got, want, serverLed.Snapshot().Table("server"))
	}
	// net.Pipe delivers synchronously: both sides metered the same bytes.
	if clientLed.Total() != serverLed.Total() {
		t.Errorf("client ledger total %d != server ledger total %d",
			clientLed.Total(), serverLed.Total())
	}

	// Every cause this operation mix exercises must have been charged on
	// both sides; nothing was retried, so retransmit must stay zero.
	for _, side := range []struct {
		name string
		led  *ledger.Ledger
	}{{"client", clientLed}, {"server", serverLed}} {
		for _, cause := range []ledger.Cause{
			ledger.Metadata, ledger.Payload, ledger.DedupProbe,
			ledger.DeltaLiteral, ledger.DeltaCopyRef, ledger.Framing,
		} {
			if side.led.Get(cause) == 0 {
				t.Errorf("%s ledger: cause %s never charged\n%s",
					side.name, cause, side.led.Snapshot().Table(side.name))
			}
		}
		if n := side.led.Get(ledger.Retransmit); n != 0 {
			t.Errorf("%s ledger: %d retransmit bytes without any retry", side.name, n)
		}
	}
	// The dedup-skipped copy must be far cheaper than the payload it
	// avoided: dedup probes are fingerprints, not content.
	if probe := clientLed.Get(ledger.DedupProbe); probe >= int64(len(v1)) {
		t.Errorf("dedup_probe bytes %d not smaller than the %d-byte payload they replace", probe, len(v1))
	}
}

// TestLedgerResumeAndRetransmit interrupts an upload mid-flight with a
// scheduled connection cut and lets the retry policy resume it, then
// asserts the ledger still balances exactly against the metered wire
// bytes and that the recovery charged resume bytes, with double-sent
// payload ranges (if any) tagged retransmit rather than payload.
func TestLedgerResumeAndRetransmit(t *testing.T) {
	leakCheck(t)
	clientLed := &ledger.Ledger{}
	srv := NewServer(ServerConfig{})
	t.Cleanup(func() { srv.Close() })
	sched := NewFaultScheduler(FaultPlan{Seed: 7, MeanDropBytes: 16 << 10, MaxDrops: 2})

	// Pipe dialer in the invariant harness's shape: wait for the previous
	// handler to stash the interrupted upload before handing out a fresh
	// connection, so ResumeQuery deterministically sees it.
	var prevDone chan struct{}
	dial := func() (net.Conn, error) {
		if prevDone != nil {
			<-prevDone
		}
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		prevDone = done
		go func() {
			defer close(done)
			srv.HandleConn(serverEnd)
		}()
		return sched.Wrap(clientEnd), nil
	}

	conn, err := dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c, err := NewClient(conn, "alice", "ledger-retry",
		WithLedger(clientLed),
		WithDialer(dial),
		WithRetry(RetryPolicy{MaxAttempts: 6, Sleep: func(time.Duration) {}}))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	payload := bytes.Repeat([]byte("resumable "), 16<<10)
	if _, err := c.Upload("big.bin", payload); err != nil {
		t.Fatalf("upload: %v", err)
	}
	c.Close()
	<-prevDone

	if sched.Stats().Drops == 0 {
		t.Fatal("fault schedule never fired; the test exercised nothing")
	}
	clientIn, clientOut := c.WireTotals()
	if got, want := clientLed.Total(), clientIn+clientOut; got != want {
		t.Errorf("client ledger total = %d, wire in+out = %d\n%s",
			got, want, clientLed.Snapshot().Table("client"))
	}
	if clientLed.Get(ledger.Resume) == 0 {
		t.Errorf("upload recovered from a cut but charged no resume bytes\n%s",
			clientLed.Snapshot().Table("client"))
	}
	// Payload charged as fresh can never exceed the file size: anything
	// the high-water mark saw twice must have gone to retransmit.
	if got := clientLed.Get(ledger.Payload); got > int64(len(payload)) {
		t.Errorf("fresh payload bytes %d exceed file size %d; re-sent ranges leaked past the retransmit split\n%s",
			got, len(payload), clientLed.Snapshot().Table("client"))
	}
}
