package syncnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cloudsync/internal/dedup"
	"cloudsync/internal/delta"
	"cloudsync/internal/obs"
	"cloudsync/internal/protocol"
	"cloudsync/internal/store/wal"
)

// ErrServerCrashed is returned by sessions and registration once the
// server's durable state has died — an injected crash point tripped or
// a real WAL I/O failure. A crashed server refuses all further work;
// recovery is reopening the state directory in a fresh process (or a
// fresh OpenServer), which replays exactly the state as of the last
// completed group commit.
var ErrServerCrashed = errors.New("syncnet: server crashed (durable state dead)")

// Record kinds of the server's durable log. The codec is internal to
// this package; docs/DURABILITY.md documents the framing below it.
const (
	recFile    = 1 // one file's metadata (content referenced by hash)
	recContent = 2 // one content blob, keyed by its MD5
	recIndex   = 3 // one dedup-index entry (snapshot-only)
)

// DefaultCompactLogBytes is the log-size threshold at which a durable
// server folds its log into a snapshot when ServerConfig.CompactLogBytes
// is zero.
const DefaultCompactLogBytes = 64 << 20

// OpenServer constructs a server, replaying durable state from
// cfg.StateDir when it is set. With an empty StateDir the server is
// purely in-RAM and OpenServer cannot fail (NewServer wraps this case).
func OpenServer(cfg ServerConfig) (*Server, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = delta.DefaultBlockSize
	}
	if cfg.BlockSize < 0 {
		panic(fmt.Sprintf("syncnet: negative block size %d", cfg.BlockSize))
	}
	if cfg.CompactLogBytes == 0 {
		cfg.CompactLogBytes = DefaultCompactLogBytes
	}
	s := &Server{
		cfg:       cfg,
		users:     make(map[string]map[string]*serverFile),
		byHash:    make(map[dedup.Fingerprint][]byte),
		index:     dedup.NewIndex(cfg.CrossUserDedup),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		pending:   make(map[pendingKey]*pendingUpload),
		crashedC:  make(chan struct{}),
		om:        newServerObs(cfg.Metrics),
	}
	if cfg.StateDir != "" {
		st, err := wal.Open(cfg.StateDir, s.replayRecord)
		if err != nil {
			return nil, err
		}
		// WAL series exist on /metrics only when a state dir is
		// configured: an in-RAM server has no fsyncs to report.
		if cfg.Metrics != nil {
			st.SetMetrics(walMetrics(cfg.Metrics))
		}
		s.persist = st
	}
	return s, nil
}

// replayRecord applies one durable record during Open. It runs before
// the server is shared, so no locking; record bytes are not retained.
func (s *Server) replayRecord(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("syncnet: empty state record")
	}
	c := wal.NewRecCursor(rec[1:])
	switch rec[0] {
	case recContent:
		hash := c.Hash16()
		data := c.Bytes()
		if c.Err() != nil {
			return fmt.Errorf("syncnet: content record: %w", c.Err())
		}
		if _, ok := s.byHash[hash]; !ok {
			s.byHash[hash] = append([]byte(nil), data...)
			s.stats.BytesStored += int64(len(data))
		}
	case recIndex:
		scope := c.Str()
		hash := c.Hash16()
		size := c.I64()
		if c.Err() != nil {
			return fmt.Errorf("syncnet: index record: %w", c.Err())
		}
		// An entry's scope fed back through Add reproduces it exactly:
		// per-user indexes use the user name as scope, cross-user "".
		s.index.Add(scope, hash, size)
	case recFile:
		user := c.Str()
		name := c.Str()
		id := c.U64()
		version := c.U64()
		flags := c.U8()
		history := c.U64()
		hash := c.Hash16()
		if c.Err() != nil {
			return fmt.Errorf("syncnet: file record: %w", c.Err())
		}
		data, ok := s.byHash[hash]
		if !ok {
			return fmt.Errorf("syncnet: file record %s/%s references unknown content %x", user, name, hash)
		}
		files := s.files(user)
		f := files[name]
		if f == nil {
			f = &serverFile{id: id, name: name}
			files[name] = f
		}
		f.id = id
		f.data = data
		f.hash = hash
		f.version = version
		f.deleted = flags&1 != 0
		f.history = int(history)
		// Re-derive the live-path index add; duplicates (snapshot replay
		// after recIndex records) are no-ops.
		s.index.Add(user, hash, int64(len(data)))
		if id > s.nextID {
			s.nextID = id
		}
	default:
		return fmt.Errorf("syncnet: unknown state record kind %d", rec[0])
	}
	return nil
}

// persistFileLocked appends the file's current metadata to the durable
// log. Caller holds s.mu; the referenced content must already be
// persisted (persistContentLocked runs at every byHash insertion).
func (s *Server) persistFileLocked(user string, f *serverFile) {
	if s.persist == nil {
		return
	}
	s.persist.Append(encodeFileRec(user, f))
}

// encodeFileRec renders one file's metadata as a recFile record.
func encodeFileRec(user string, f *serverFile) []byte {
	b := make([]byte, 0, 64+len(user)+len(f.name))
	b = append(b, recFile)
	b = wal.AppendStr(b, user)
	b = wal.AppendStr(b, f.name)
	b = binary.LittleEndian.AppendUint64(b, f.id)
	b = binary.LittleEndian.AppendUint64(b, f.version)
	flags := byte(0)
	if f.deleted {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(f.history))
	return append(b, f.hash[:]...)
}

// persistContentLocked appends one content blob to the durable log.
// Caller holds s.mu and has just inserted the blob into byHash.
func (s *Server) persistContentLocked(hash protocol.Fingerprint, data []byte) {
	if s.persist == nil {
		return
	}
	b := make([]byte, 0, 1+16+4+len(data))
	b = append(b, recContent)
	b = append(b, hash[:]...)
	s.persist.Append(wal.AppendBytes(b, data))
}

// persistSync group-commits every record appended since the last sync —
// the durability point a session must cross before acknowledging. One
// fsync covers all mutations batched behind it (a whole Bundle, or
// several pipelined commits). When the log crosses the compaction
// threshold the whole state is folded into a snapshot. Any failure —
// the injected crash point included — marks the server crashed.
func (s *Server) persistSync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistSyncLocked()
}

func (s *Server) persistSyncLocked() error {
	if s.persist == nil {
		return nil
	}
	if err := s.persist.Sync(); err != nil {
		s.markCrashedLocked()
		return fmt.Errorf("%w: %v", ErrServerCrashed, err)
	}
	if s.persist.LogBytes() > s.cfg.CompactLogBytes {
		if err := s.persist.Compact(s.snapshotRecordsLocked()); err != nil {
			s.markCrashedLocked()
			return fmt.Errorf("%w: %v", ErrServerCrashed, err)
		}
	}
	return nil
}

// snapshotRecordsLocked renders the full server state as records, in
// replayable order: every content blob first (sorted by hash), then the
// dedup index (its scopes are not always derivable from live files —
// overwritten versions stay probe-able), then every file (sorted by
// user, name). Caller holds s.mu.
func (s *Server) snapshotRecordsLocked() [][]byte {
	var recs [][]byte
	hashes := make([]dedup.Fingerprint, 0, len(s.byHash))
	for h := range s.byHash {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return bytes.Compare(hashes[i][:], hashes[j][:]) < 0 })
	for _, h := range hashes {
		data := s.byHash[h]
		b := make([]byte, 0, 1+16+4+len(data))
		b = append(b, recContent)
		b = append(b, h[:]...)
		recs = append(recs, wal.AppendBytes(b, data))
	}
	for _, e := range s.index.Entries() {
		b := make([]byte, 0, 1+4+len(e.Scope)+16+8)
		b = append(b, recIndex)
		b = wal.AppendStr(b, e.Scope)
		b = append(b, e.FP[:]...)
		b = binary.LittleEndian.AppendUint64(b, uint64(e.Size))
		recs = append(recs, b)
	}
	users := make([]string, 0, len(s.users))
	for u := range s.users {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		files := s.users[u]
		names := make([]string, 0, len(files))
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			recs = append(recs, encodeFileRec(u, files[n]))
		}
	}
	return recs
}

// markCrashedLocked trips the crashed state once: registration and
// dispatch refuse from here on, and CrashedC unblocks watchers (syncd
// exits non-zero). The flight recorder's black box is dumped *before*
// CrashedC closes, so a watcher that exits the process on the signal
// (syncd's os.Exit(3)) can never race the dump to disk.
func (s *Server) markCrashedLocked() {
	if s.crashed.CompareAndSwap(false, true) {
		s.dumpFlightLocked()
		close(s.crashedC)
	}
}

// dumpFlightLocked writes the flight recorder's recent records to
// StateDir/flight-<unixnano>.jsonl. Best effort by design: the server
// is already dead, so a dump failure is only logged — it must never
// mask the crash itself.
func (s *Server) dumpFlightLocked() {
	fl := s.cfg.Flight
	if fl == nil || s.cfg.StateDir == "" {
		return
	}
	now := time.Now()
	fl.Record(obs.FlightRecord{At: now.UnixNano(), Name: "server.crash", Err: "durable state dead"})
	path := filepath.Join(s.cfg.StateDir, fmt.Sprintf("flight-%d.jsonl", now.UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		s.logf("flight dump: %v", err)
		return
	}
	werr := fl.WriteJSONL(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		s.logf("flight dump: %v", werr)
		return
	}
	s.logf("flight recorder dumped to %s", path)
}

// Crashed reports whether the server's durable state has died.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// CrashedC is closed when the server crashes — the signal syncd uses
// to exit so a supervisor restarts it into recovery.
func (s *Server) CrashedC() <-chan struct{} { return s.crashedC }

// FailStateAt arms an injected crash point on the durable state log at
// an absolute log-file offset (no-op for in-RAM servers; -1 disarms).
// The group commit that would carry the log past the offset writes only
// a torn prefix and kills the server — kill -9 at that exact byte.
func (s *Server) FailStateAt(offset int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist != nil {
		s.persist.FailAt(offset)
	}
}

// StateLogBytes reports the durable log's current size including
// unsynced appends (0 for in-RAM servers). The crash harness measures a
// clean run's total to aim seeded crash offsets inside it.
func (s *Server) StateLogBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil {
		return 0
	}
	return s.persist.LogBytes()
}

// CompactState folds the durable log into a snapshot now, regardless of
// the size threshold (no-op for in-RAM servers). Tests use it to cover
// the snapshot-replay path without writing CompactLogBytes of traffic.
func (s *Server) CompactState() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil {
		return nil
	}
	if err := s.persist.Compact(s.snapshotRecordsLocked()); err != nil {
		s.markCrashedLocked()
		return fmt.Errorf("%w: %v", ErrServerCrashed, err)
	}
	return nil
}

// closePersist tears down the durable store at server Close, flushing
// buffered records (unless crashed — a dead store writes nothing more).
func (s *Server) closePersist() error {
	s.mu.Lock()
	p := s.persist
	s.persist = nil
	s.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Close()
}

