package syncnet

import (
	"bytes"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"cloudsync/internal/invariant"
	"cloudsync/internal/obs"
)

// obsRig is a fully instrumented client/server pair over net.Pipe:
// separate tracers for each side plus a live metric registry on the
// server.
type obsRig struct {
	srv       *Server
	client    *Client
	reg       *obs.Registry
	serverTr  *obs.Tracer
	clientTr  *obs.Tracer
	handlerCh chan error
}

func newObsRig(t *testing.T, cfg ServerConfig) *obsRig {
	t.Helper()
	leakCheck(t)
	rig := &obsRig{
		reg:       obs.NewRegistry(),
		serverTr:  obs.NewTracer(),
		clientTr:  obs.NewTracer(),
		handlerCh: make(chan error, 1),
	}
	cfg.Metrics = rig.reg
	cfg.Tracer = rig.serverTr
	rig.srv = NewServer(cfg)
	cp, sp := net.Pipe()
	go func() { rig.handlerCh <- rig.srv.HandleConn(sp) }()
	c, err := NewClient(cp, "alice", "obs-test", WithTracer(rig.clientTr))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	rig.client = c
	t.Cleanup(func() { rig.srv.Close() })
	return rig
}

// finish closes the client side and waits for the server handler, so
// the server session span is ended and all counters are final.
func (r *obsRig) finish(t *testing.T) {
	t.Helper()
	r.client.Close()
	if err := <-r.handlerCh; err != nil {
		t.Fatalf("HandleConn: %v", err)
	}
}

// spanNames returns the recorded span names in recording order.
func spanNames(spans []obs.SpanData) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

// TestObsRoundTrip drives upload → delta re-upload → download → delete
// through a fully traced pair and asserts (a) the span trees on both
// sides have the expected shape, and (b) the live byte counters agree
// exactly with the wire truth, via the invariant harness's
// wire-balance check (net.Pipe is synchronous, so MaxLost is 0).
func TestObsRoundTrip(t *testing.T) {
	rig := newObsRig(t, ServerConfig{})
	tracker := invariant.NewTracker()
	// The tracker's TUE floor counts whole files as fresh content, but
	// the re-upload below is a delta sync that legitimately ships far
	// fewer bytes than the new version's size — same exemption as
	// compression.
	tracker.Compressed = true

	v1 := bytes.Repeat([]byte("observability "), 4<<10)
	stats, err := rig.client.Upload("report.txt", v1)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	tracker.RecordUpload("report.txt", v1, stats.Version)

	v2 := append(append([]byte{}, v1...), []byte("appended tail")...)
	stats, err = rig.client.Upload("report.txt", v2)
	if err != nil {
		t.Fatalf("re-upload: %v", err)
	}
	if !stats.DeltaSync {
		t.Fatalf("re-upload was not a delta sync: %+v", stats)
	}
	tracker.RecordUpload("report.txt", v2, stats.Version)

	got, err := rig.client.Download("report.txt")
	if err != nil {
		t.Fatalf("download: %v", err)
	}
	tracker.RecordDownload("report.txt", got)

	if err := rig.client.Delete("report.txt"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	tracker.RecordDelete("report.txt")
	rig.finish(t)

	// Client span tree: four roots, one per operation, each with the
	// protocol-stage children hanging off them.
	cs := rig.clientTr.Spans()
	var roots []string
	for _, s := range cs {
		if s.Parent == 0 {
			roots = append(roots, s.Name)
		}
		if s.Parent == 0 && s.Root != s.ID {
			t.Errorf("root span %s has Root=%d, want its own ID %d", s.Name, s.Root, s.ID)
		}
		if !s.Ended {
			t.Errorf("client span %s never ended", s.Name)
		}
	}
	wantRoots := []string{"client.upload", "client.upload", "client.download", "client.delete"}
	if strings.Join(roots, ",") != strings.Join(wantRoots, ",") {
		t.Fatalf("client root spans = %v, want %v\nall: %v", roots, wantRoots, spanNames(cs))
	}
	// The first upload must contain the full-upload stage, the second
	// the delta stage, each nested under its operation's root.
	assertStage := func(stage string, rootIdx int) {
		t.Helper()
		var root uint64
		n := -1
		for _, s := range cs {
			if s.Parent == 0 {
				n++
				if n == rootIdx {
					root = s.ID
				}
			}
		}
		for _, s := range cs {
			if s.Name == stage && s.Root == root {
				return
			}
		}
		t.Errorf("no %s span under root #%d\nall: %v", stage, rootIdx, spanNames(cs))
	}
	assertStage("client.full_upload", 0)
	assertStage("client.delta_sync", 1)

	// Server span tree: one session root, one child per request.
	ss := rig.serverTr.Spans()
	var sessions, requests int
	for _, s := range ss {
		switch {
		case s.Name == "server.session":
			sessions++
			if !s.Ended {
				t.Error("server session span never ended")
			}
		case strings.HasPrefix(s.Name, "server."):
			requests++
			if s.Parent == 0 {
				t.Errorf("request span %s has no parent", s.Name)
			}
		default:
			t.Errorf("unexpected server span %s", s.Name)
		}
	}
	if sessions != 1 || requests == 0 {
		t.Fatalf("server spans: %d sessions, %d requests; want 1 session with requests\nall: %v",
			sessions, requests, spanNames(ss))
	}

	// Byte counters vs wire truth. net.Pipe delivers synchronously, so
	// every byte the client wrote was read by the server and vice versa.
	clientIn, clientOut := rig.client.WireTotals()
	srvStats := rig.srv.Stats()
	recvMetric := rig.reg.Counter("syncd_bytes_received_total", "").Value()
	sentMetric := rig.reg.Counter("syncd_bytes_sent_total", "").Value()
	if recvMetric != srvStats.BytesReceived {
		t.Errorf("syncd_bytes_received_total = %d, server stats = %d", recvMetric, srvStats.BytesReceived)
	}
	if sentMetric != clientIn {
		t.Errorf("syncd_bytes_sent_total = %d, client read %d", sentMetric, clientIn)
	}
	if vs := tracker.Check(adaptSnapshot(rig.srv.Snapshot("alice")), invariant.Wire{
		ClientSent:     clientOut,
		ServerReceived: srvStats.BytesReceived,
		MaxLost:        0,
	}); len(vs) != 0 {
		t.Fatalf("invariant violations: %v", vs)
	}

	// The session span's byte attributes must equal the same wire truth.
	for _, s := range ss {
		if s.Name != "server.session" {
			continue
		}
		if got := s.Attr("bytes_in"); got != itoa(srvStats.BytesReceived) {
			t.Errorf("session span bytes_in = %s, want %d", got, srvStats.BytesReceived)
		}
		if got := s.Attr("bytes_out"); got != itoa(clientIn) {
			t.Errorf("session span bytes_out = %s, want %d", got, clientIn)
		}
	}

	// Operation counters.
	for name, want := range map[string]int64{
		"syncd_uploads_total":     1,
		"syncd_delta_syncs_total": 1,
		"syncd_downloads_total":   1,
		"syncd_deletes_total":     1,
		"syncd_sessions_total":    1,
	} {
		if got := rig.reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := rig.reg.Histogram("syncd_session_tue_milli", "").Count(); got != 1 {
		t.Errorf("syncd_session_tue_milli count = %d, want 1", got)
	}
}

func adaptSnapshot(snap map[string]FileState) map[string]invariant.ServerFile {
	out := make(map[string]invariant.ServerFile, len(snap))
	for name, f := range snap {
		out[name] = invariant.ServerFile{
			Data: f.Data, Version: f.Version, Deleted: f.Deleted, History: f.History,
		}
	}
	return out
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

// TestObsUntracedClientCountsNothing pins the zero-cost contract: a
// client without WithTracer installs no metering wrapper and records
// no spans.
func TestObsUntracedClientCountsNothing(t *testing.T) {
	leakCheck(t)
	srv := NewServer(ServerConfig{})
	defer srv.Close()
	cp, sp := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(sp) }()
	c, err := NewClient(cp, "alice", "plain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upload("f", []byte("content")); err != nil {
		t.Fatalf("upload: %v", err)
	}
	if _, ok := c.conn.(*meterConn); ok {
		t.Fatal("untraced client wrapped its connection in a meter")
	}
	in, out := c.WireTotals()
	if in != 0 || out != 0 {
		t.Fatalf("untraced client counted bytes: in=%d out=%d", in, out)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("HandleConn: %v", err)
	}
}

// TestCloseTearsDownAttachedObsEndpoint covers syncd's shutdown path:
// an obs HTTP endpoint adopted via AttachCloser must stop answering —
// and its serve goroutine must exit — once the sync server closes.
func TestCloseTearsDownAttachedObsEndpoint(t *testing.T) {
	leakCheck(t)
	reg := obs.NewRegistry()
	hs, err := obs.ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Metrics: reg})
	srv.AttachCloser(hs)

	resp, err := http.Get("http://" + hs.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("obs endpoint not serving: %v", err)
	}
	resp.Body.Close()

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + hs.Addr().String() + "/healthz"); err == nil {
		t.Fatal("obs endpoint still answering after the sync server closed")
	}
	// A second server close must not re-close the endpoint (closers are
	// drained on first Close; obs Close is idempotent anyway).
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// leakCheck only watches syncnet frames; the obs serve goroutine
	// needs its own check (Close waits for it, so no retry loop needed).
	buf := make([]byte, 1<<20)
	if stacks := string(buf[:runtime.Stack(buf, true)]); strings.Contains(stacks, "obs.ListenAndServe.func") {
		t.Fatalf("obs serve goroutine outlived the sync server:\n%s", stacks)
	}
}
