// Package syncnet is a working cloud-storage sync service over real
// network connections: a Server that stores per-user files with
// compression, full-file deduplication, version history and rsync
// signatures, and a Client that uploads, incrementally updates
// (delta sync), downloads, and deletes files — speaking the binary
// protocol of internal/protocol over any net.Conn.
//
// Where internal/client + internal/cloud *simulate* the traffic of the
// commercial services on a virtual clock, this package *is* a small
// sync service: the mechanisms the paper recommends to providers
// (compression, full-file dedup, incremental sync) implemented
// end-to-end and exercised over TCP in the integration tests and the
// syncd/synccli commands.
package syncnet

import (
	"crypto/md5"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudsync/internal/comp"
	"cloudsync/internal/dedup"
	"cloudsync/internal/delta"
	"cloudsync/internal/obs"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/protocol"
	"cloudsync/internal/store/wal"
	"cloudsync/internal/wire"
)

// DataPieceSize is the Data-message payload granularity for content
// transfer.
const DataPieceSize = 64 << 10

// DefaultMaxInflight is the per-connection pipelining depth when
// ServerConfig.MaxInflight is zero: how many fully read requests a
// connection's reader keeps queued for in-order dispatch while earlier
// ones are still being handled.
const DefaultMaxInflight = 32

// drainWriteTimeout bounds how long a draining session may spend
// flushing replies to a peer that has stopped reading after Close
// half-closed its connection.
const drainWriteTimeout = 2 * time.Second

// maxPendingUploads caps the partial-upload buffers the server keeps
// for resumption; beyond it the oldest stash is evicted (the client
// then simply restarts that upload from scratch).
const maxPendingUploads = 64

// ErrServerClosed is returned by Serve and HandleConn after Close.
var ErrServerClosed = errors.New("syncnet: server closed")

// ServerConfig selects the server's design choices.
type ServerConfig struct {
	// Compression is applied to content on the wire and at rest
	// (comp.None disables it).
	Compression comp.Level
	// BlockSize is the rsync signature granularity for incremental
	// updates (0 = delta.DefaultBlockSize).
	BlockSize int
	// CrossUserDedup shares the full-file dedup index across accounts.
	CrossUserDedup bool
	// MaxInflight caps how many fully read requests one connection may
	// have queued awaiting dispatch (0 = DefaultMaxInflight, 1 ≈
	// lockstep). Requests are always dispatched — and answered — in
	// arrival order; the cap only bounds the read-ahead, which is also
	// the memory bound per connection and the pipelining window a
	// client may safely use over an unbuffered transport.
	MaxInflight int
	// Logf, when set, receives one line per handled request (useful in
	// syncd; tests leave it nil).
	Logf func(format string, args ...any)
	// Metrics, when set, receives the server's live metric set (the
	// syncd_* catalogue in docs/OBSERVABILITY.md). Nil keeps the
	// uninstrumented zero-overhead behaviour.
	Metrics *obs.Registry
	// Tracer, when set, records one span per client session with one
	// child span per handled request. When a session propagates a trace
	// context (Hello CapTrace + TraceCtx frames), request spans are
	// instead parented under the client's remote operation span, so a
	// client and server dump merge into one tree (obs.Merge). Nil
	// disables tracing at no cost.
	Tracer *obs.Tracer
	// Flight, when set, receives one record per handled request (plus
	// session and crash events) in a bounded ring; the crash latch dumps
	// it to StateDir/flight-<ts>.jsonl before CrashedC closes — the
	// black box a post-mortem reads. Nil disables recording at no cost.
	Flight *obs.FlightRecorder
	// Ledger, when set, attributes every wire byte read from or written
	// to client connections to a traffic cause; its total equals
	// BytesReceived+BytesSent exactly once sessions have ended. Nil
	// disables attribution at no cost.
	Ledger *ledger.Ledger
	// StateDir, when set, makes the server durable: every mutation is
	// group-committed to an append-only record log there before it is
	// acknowledged, and OpenServer replays log-over-snapshot to recover
	// after a crash. Empty keeps the historical in-RAM behaviour.
	StateDir string
	// CompactLogBytes is the log size at which the durable state is
	// folded into a snapshot (0 = DefaultCompactLogBytes). Only
	// meaningful with StateDir set.
	CompactLogBytes int64
}

type serverFile struct {
	id      uint64
	name    string
	data    []byte // raw (uncompressed) content
	hash    protocol.Fingerprint
	version uint64
	deleted bool
	history int // versions ever stored (fake deletion keeps content)
}

// ServerStats is a snapshot of server activity.
type ServerStats struct {
	Sessions    int64
	Uploads     int64
	DedupSkips  int64
	DeltaSyncs  int64
	Downloads   int64
	Deletes     int64
	Resumes     int64
	BytesStored int64
	// Bundles counts Bundle messages handled; BundledFiles counts the
	// entries they committed.
	Bundles      int64
	BundledFiles int64
	// PendingResumable is the number of stashed partial uploads
	// currently held for resumption.
	PendingResumable int
	// BytesReceived is the total bytes read off all client connections
	// (the server-side view of the wire, for traffic-balance checks).
	BytesReceived int64
	// BytesSent is the total bytes written to all client connections —
	// the other half of the wire view, so ledger attribution can be
	// balanced against the full server-side wire total.
	BytesSent int64
}

// pendingKey identifies a stashed partial upload: the same identity a
// reconnecting client presents in its ResumeQuery. Including the
// content hash means a stash from an older edit of the file can never
// be resumed onto.
type pendingKey struct {
	user string
	name string
	size int64
	hash protocol.Fingerprint
}

// Server is the sync service back end. It is safe for concurrent use
// by any number of client connections.
type Server struct {
	cfg ServerConfig

	mu        sync.Mutex
	users     map[string]map[string]*serverFile
	byHash    map[dedup.Fingerprint][]byte // full-file dedup content store
	index     *dedup.Index
	nextID    uint64
	stats     ServerStats
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	// pending holds partial uploads from dropped sessions, FIFO-bounded
	// by pendingOrder.
	pending      map[pendingKey]*pendingUpload
	pendingOrder []pendingKey

	handlers      sync.WaitGroup // serve loops + connection handlers
	bytesReceived atomic.Int64
	bytesSent     atomic.Int64

	// persist is the durable state store (nil for in-RAM servers);
	// appended under s.mu, group-committed by persistSync. crashed trips
	// once the store dies — see persist.go.
	persist  *wal.Store
	crashed  atomic.Bool
	crashedC chan struct{}

	// closers are torn down by Close after the handlers drain —
	// auxiliary lifecycles (like the obs HTTP endpoint) tied to the
	// server's.
	closers []io.Closer

	om serverObs
}

// NewServer constructs a server. It cannot fail for in-RAM
// configurations; with StateDir set it panics on a state-directory
// error — callers wiring persistence should prefer OpenServer.
func NewServer(cfg ServerConfig) *Server {
	s, err := OpenServer(cfg)
	if err != nil {
		panic(fmt.Sprintf("syncnet: NewServer with state dir: %v", err))
	}
	return s
}

// Stats returns a snapshot of server activity.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.BytesReceived = s.bytesReceived.Load()
	st.BytesSent = s.bytesSent.Load()
	st.PendingResumable = len(s.pending)
	return st
}

// AttachCloser registers a closer that Close tears down after every
// serve loop and connection handler has returned. syncd uses it to tie
// the observability HTTP endpoint's shutdown to the server's.
func (s *Server) AttachCloser(c io.Closer) {
	s.mu.Lock()
	s.closers = append(s.closers, c)
	s.mu.Unlock()
}

// Close shuts the server down deterministically: it closes every
// registered listener, half-closes every live connection's read side
// so pipelined requests already queued are still dispatched and their
// replies flushed (bounded by drainWriteTimeout against peers that
// stopped reading), then waits for all serve loops and connection
// handlers to return. Transports without a read-side half-close
// (net.Pipe) are closed outright. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ls := make([]net.Listener, 0, len(s.listeners))
	for l := range s.listeners {
		ls = append(ls, l)
	}
	cs := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range cs {
		if cr, ok := c.(interface{ CloseRead() error }); ok {
			c.SetWriteDeadline(time.Now().Add(drainWriteTimeout))
			cr.CloseRead()
		} else {
			c.Close()
		}
	}
	s.handlers.Wait()
	s.mu.Lock()
	closers := s.closers
	s.closers = nil
	s.mu.Unlock()
	var err error
	for _, c := range closers {
		err = errors.Join(err, c.Close())
	}
	return errors.Join(err, s.closePersist())
}

// Serve accepts connections until the listener fails or the server is
// closed. Each connection is handled on its own goroutine; Close waits
// for all of them.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.handlers.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		s.handlers.Done()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("syncnet: accept: %w", err)
		}
		go func() {
			if err := s.HandleConn(conn); err != nil && !errors.Is(err, ErrServerClosed) && s.cfg.Logf != nil {
				s.cfg.Logf("syncnet: session ended: %v", err)
			}
		}()
	}
}

// register tracks a live connection so Close can tear it down and wait
// for its handler.
func (s *Server) register(conn net.Conn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if s.crashed.Load() {
		return ErrServerCrashed
	}
	s.conns[conn] = struct{}{}
	s.handlers.Add(1)
	s.stats.Sessions++
	s.om.sessions.Inc()
	s.om.activeConns.Add(1)
	return nil
}

func (s *Server) unregister(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.om.activeConns.Add(-1)
	s.handlers.Done()
}

// countingReader tallies the bytes the server reads off a connection:
// into the server-wide atomic, the live metric, and the per-session
// counter that feeds the session-TUE histogram.
type countingReader struct {
	r    io.Reader
	n    *atomic.Int64
	sess *int64
	obsC *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	*cr.sess += int64(n)
	cr.obsC.Add(int64(n))
	return n, err
}

// inboundMsg is one fully read request handed from a connection's
// reader goroutine to its dispatcher, with the wire bytes it consumed.
// A read failure travels the same channel as a final sentinel, so the
// dispatcher sees every successfully read request before the error.
type inboundMsg struct {
	msg      protocol.Message
	consumed int64
	at       time.Time // enqueue instant (zero unless queue wait is metered)
	err      error
}

// HandleConn runs one client session to completion. It returns nil on
// clean disconnect (EOF). A session that ends mid-upload — however it
// ends — stashes the partial buffers so a reconnecting client can
// resume them with a ResumeQuery.
//
// The connection is pipelined: a reader goroutine keeps it drained up
// to MaxInflight fully read requests while this goroutine dispatches
// them strictly in arrival order. Replies therefore come back in
// request order, which is what lets a pipelining client pair them up
// without request IDs.
func (s *Server) HandleConn(conn net.Conn) error {
	if err := s.register(conn); err != nil {
		conn.Close()
		return err
	}
	defer s.unregister(conn)
	defer conn.Close()
	sess := &session{srv: s, conn: conn, uploads: make(map[uint64]*pendingUpload)}
	r := &countingReader{r: conn, n: &s.bytesReceived, sess: &sess.wireIn, obsC: s.om.bytesIn}
	sess.w = &countingWriter{w: conn, n: &sess.wireOut, total: &s.bytesSent, obsC: s.om.bytesOut}
	sess.enc = wire.GetFrame(512)
	defer func() { wire.PutFrame(sess.enc); sess.enc = nil }()
	// Runs last: once every other defer has finished touching the wire,
	// sweep the session's unattributed bytes into the ledger.
	defer sess.settle()

	readBuf := wire.GetFrame(4096)
	first, readBuf, err := protocol.ReadMessageBuf(r, readBuf)
	if err != nil {
		wire.PutFrame(readBuf)
		return fmt.Errorf("syncnet: reading hello: %w", err)
	}
	sess.chargeRead(first, sess.wireIn)
	hello, ok := first.(*protocol.Hello)
	if !ok {
		wire.PutFrame(readBuf)
		sess.sendErr(protocol.ErrBadRequest, "expected hello")
		return fmt.Errorf("syncnet: first message was %v", first.Type())
	}
	sess.user = hello.User
	sess.caps = hello.Caps
	sess.span = s.cfg.Tracer.Start("server.session",
		obs.String("user", hello.User), obs.String("device", hello.Device))
	defer sess.finish()
	defer sess.stash()
	if fl := s.cfg.Flight; fl != nil {
		fl.Record(obs.FlightRecord{At: time.Now().UnixNano(), Name: "server.session.start", User: hello.User})
	}
	s.logf("session start user=%s device=%s", hello.User, hello.Device)

	inflight := s.cfg.MaxInflight
	if inflight <= 0 {
		inflight = DefaultMaxInflight
	}
	// The reader owns the read buffer, sess.wireIn, and the channel; it
	// hands each request's consumed byte count through the channel so
	// the dispatcher never touches wireIn until the reader has exited.
	queue := make(chan inboundMsg, inflight-1)
	timedQueue := s.om.inboundWaitUS != nil
	go func() {
		defer close(queue)
		defer func() { wire.PutFrame(readBuf) }()
		for {
			in0 := sess.wireIn
			msg, buf, err := protocol.ReadMessageBuf(r, readBuf)
			readBuf = buf
			if err != nil {
				queue <- inboundMsg{err: err}
				return
			}
			in := inboundMsg{msg: msg, consumed: sess.wireIn - in0}
			if timedQueue {
				in.at = time.Now()
			}
			queue <- in
		}
	}()

	var readErr, dispatchErr error
	for in := range queue {
		if in.err != nil {
			readErr = in.err
			break
		}
		if !in.at.IsZero() {
			// Inbound-queue wait: fully read, not yet dispatched — the
			// MaxInflight backpressure phase.
			s.om.inboundWaitUS.Observe(time.Since(in.at).Microseconds())
		}
		sess.chargeRead(in.msg, in.consumed)
		if err := sess.dispatch(in.msg); err != nil {
			dispatchErr = err
			break
		}
	}
	// Deterministic drain. Every request the reader accepted was either
	// dispatched above — its reply flushed before the error sentinel
	// could be reached, since the channel preserves arrival order — or
	// is discarded here after a dispatch error. Closing the connection
	// unblocks a reader stuck mid-read; consuming the queue until the
	// reader closes it joins the goroutine, so wireIn is quiescent for
	// the deferred finish/settle and no goroutine outlives the session.
	// Discarded requests are still charged by message semantics; the
	// settle sweep covers any partial trailing frame.
	conn.Close()
	for in := range queue {
		if in.err == nil {
			sess.chargeRead(in.msg, in.consumed)
		}
	}
	if dispatchErr != nil {
		return dispatchErr
	}
	if readErr == io.EOF {
		return nil
	}
	return fmt.Errorf("syncnet: reading message: %w", readErr)
}

// dispatch runs one request through handle, wrapped in its span, its
// duration metric, and its flight record. A TraceCtx frame is absorbed
// here — it is session plumbing, not a request: it updates the trace
// context the following requests' spans adopt, produces no reply, and
// counts in no request metric.
func (ss *session) dispatch(msg protocol.Message) error {
	if tc, ok := msg.(*protocol.TraceCtx); ok {
		if ss.caps&protocol.CapTrace != 0 {
			ss.rTrace = obs.TraceID(tc.TraceID)
			ss.rParent = tc.SpanID
		}
		return nil
	}
	fl := ss.srv.cfg.Flight
	name := "server." + msg.Type().String()
	var t0 time.Time
	if ss.srv.om.requestUS != nil || fl != nil {
		t0 = time.Now()
	}
	sp := ss.requestSpan(name)
	err := ss.handle(msg)
	sp.End()
	if !t0.IsZero() {
		d := time.Since(t0)
		ss.srv.om.requestUS.Observe(d.Microseconds())
		if fl != nil {
			rec := obs.FlightRecord{At: time.Now().UnixNano(), Name: name, User: ss.user, DurUS: d.Microseconds()}
			if err != nil {
				rec.Err = err.Error()
			}
			fl.Record(rec)
		}
	}
	return err
}

// requestSpan opens one request's span: a remote child of the client's
// operation when the session carries a propagated trace context, else
// a local child of the session span.
func (ss *session) requestSpan(name string) *obs.Span {
	if tr := ss.srv.cfg.Tracer; tr != nil && ss.rParent != 0 {
		return tr.StartRemote(name, ss.rTrace, ss.rParent, obs.String("user", ss.user))
	}
	return ss.span.Child(name)
}

// finish closes the session span with the wire totals and feeds the
// per-session TUE histogram (wire bytes in over content bytes
// committed, in thousandths) for sessions that committed content.
func (ss *session) finish() {
	ss.span.Set("bytes_in", ss.wireIn)
	ss.span.Set("bytes_out", ss.wireOut)
	ss.span.Set("content_bytes", ss.contentBytes)
	ss.span.End()
	if ss.contentBytes > 0 {
		ss.srv.om.sessionTUEMilli.Observe(ss.wireIn * 1000 / ss.contentBytes)
	}
	if fl := ss.srv.cfg.Flight; fl != nil {
		fl.Record(obs.FlightRecord{At: time.Now().UnixNano(), Name: "server.session.end", User: ss.user})
	}
}

// applyStart/applyEnd time the in-memory apply phase of a mutation —
// decode, verify, store — excluding the WAL group commit, which is
// metered separately inside internal/store/wal. Zero-cost when the
// apply histogram is unregistered.
func (ss *session) applyStart() time.Time {
	if ss.srv.om.applyUS == nil {
		return time.Time{}
	}
	return time.Now()
}

func (ss *session) applyEnd(t0 time.Time) {
	if !t0.IsZero() {
		ss.srv.om.applyUS.Observe(time.Since(t0).Microseconds())
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) files(user string) map[string]*serverFile {
	m := s.users[user]
	if m == nil {
		m = make(map[string]*serverFile)
		s.users[user] = m
	}
	return m
}

// FileState is one file's externally visible server-side state, as
// reported by Snapshot.
type FileState struct {
	ID      uint64
	Data    []byte
	Version uint64
	Deleted bool
	History int
}

// Snapshot copies one user's full file state — the invariant harness's
// view of the server. ID is included so crash-recovery checks can
// assert that a file acknowledged before a crash keeps its identity
// across reopen.
func (s *Server) Snapshot(user string) map[string]FileState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]FileState, len(s.users[user]))
	for name, f := range s.users[user] {
		out[name] = FileState{
			ID:      f.id,
			Data:    append([]byte(nil), f.data...),
			Version: f.version,
			Deleted: f.deleted,
			History: f.history,
		}
	}
	return out
}

// FileContent returns a copy of the stored raw content, for tests and
// the admin tooling.
func (s *Server) FileContent(user, name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files(user)[name]
	if !ok || f.deleted {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// session is the per-connection state: the in-progress uploads (a
// pipelined client may have several index→data→commit exchanges in
// flight), the authenticated user, the pooled encode and ledger
// scratch, and the session's observability context (wire byte
// counters, content-commit total, span).
type session struct {
	srv  *Server
	conn net.Conn
	w    *countingWriter
	user string

	uploads map[uint64]*pendingUpload // keyed by fileID

	enc  []byte     // pooled frame scratch, reused across replies
	segs []causeSeg // reusable ledger-segment scratch

	wireIn       int64
	wireOut      int64
	charged      int64 // wire bytes already attributed to the ledger
	contentBytes int64 // raw content bytes committed this session
	span         *obs.Span

	// caps is the capability word the client's Hello advertised; rTrace
	// and rParent hold the current remote trace context (set by the
	// latest TraceCtx frame, honored only with CapTrace advertised) that
	// request spans adopt as their cross-process parent.
	caps    uint32
	rTrace  obs.TraceID
	rParent uint64
}

// send encodes one reply into the session's pooled scratch and writes
// it, charging the bytes actually written to the server's ledger by
// message semantics. The server attributes by message type only:
// unlike the client it cannot know whether a peer's retry made these
// bytes a retransmission.
func (ss *session) send(m protocol.Message) error {
	enc := protocol.AppendEncode(ss.enc[:0], m)
	ss.enc = enc[:0]
	n, err := ss.w.Write(enc)
	if led := ss.srv.cfg.Ledger; led != nil {
		segs := messageSegments(ss.segs[:0], m, int64(len(enc)))
		ss.charged += chargeSegs(led, segs, int64(n))
		ss.segs = segs[:0]
	}
	if err != nil {
		return fmt.Errorf("syncnet: sending %v: %w", m.Type(), err)
	}
	return nil
}

// sendData writes one download Data piece as a vectored send: header
// from the pooled scratch, payload slice directly — the content is
// never copied into a frame buffer.
func (ss *session) sendData(fileID uint64, offset int64, payload []byte) error {
	hdr := protocol.AppendDataHeader(ss.enc[:0], fileID, offset, len(payload))
	ss.enc = hdr[:0]
	n, err := ss.w.writeVectored(hdr, payload)
	if led := ss.srv.cfg.Ledger; led != nil {
		segs := appendDataSegments(ss.segs[:0], int64(len(hdr)+len(payload)), int64(len(payload)))
		ss.charged += chargeSegs(led, segs, n)
		ss.segs = segs[:0]
	}
	if err != nil {
		return fmt.Errorf("syncnet: sending data: %w", err)
	}
	return nil
}

func (ss *session) sendErr(code uint32, msg string) {
	if err := ss.send(&protocol.Error{Code: code, Msg: msg}); err != nil {
		log.Printf("syncnet: sending error reply: %v", err)
	}
}

// chargeRead attributes one fully read request's wire bytes.
func (ss *session) chargeRead(m protocol.Message, consumed int64) {
	if led := ss.srv.cfg.Ledger; led != nil {
		segs := messageSegments(ss.segs[:0], m, consumed)
		ss.charged += chargeSegs(led, segs, consumed)
		ss.segs = segs[:0]
	}
}

// settle sweeps the session's unattributed wire bytes — partial frames
// read or written around a connection cut — into framing, after which
// the server ledger's total equals BytesReceived+BytesSent exactly.
func (ss *session) settle() {
	led := ss.srv.cfg.Ledger
	if led == nil {
		return
	}
	if resid := ss.wireIn + ss.wireOut - ss.charged; resid > 0 {
		led.Add(ledger.Framing, resid)
		ss.charged += resid
	}
}

type pendingUpload struct {
	id       uint64
	name     string
	size     int64
	hash     protocol.Fingerprint
	dedupHit bool
	buf      []byte
}

// stash preserves every interrupted upload's buffer for resumption, in
// fileID order so the FIFO eviction bound stays deterministic. Dedup
// hits carry no data and empty buffers hold nothing worth resuming.
func (ss *session) stash() {
	if len(ss.uploads) == 0 {
		return
	}
	ids := make([]uint64, 0, len(ss.uploads))
	for id := range ss.uploads {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		up := ss.uploads[id]
		delete(ss.uploads, id)
		ss.stashOne(up)
	}
}

func (ss *session) stashOne(up *pendingUpload) {
	if up.dedupHit || len(up.buf) == 0 {
		return
	}
	s := ss.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	key := pendingKey{user: ss.user, name: up.name, size: up.size, hash: up.hash}
	if _, ok := s.pending[key]; !ok {
		if len(s.pendingOrder) >= maxPendingUploads {
			delete(s.pending, s.pendingOrder[0])
			s.pendingOrder = s.pendingOrder[1:]
		}
		s.pendingOrder = append(s.pendingOrder, key)
	}
	s.pending[key] = up
	s.om.pendingResumable.Set(int64(len(s.pending)))
	s.logf("stashed partial upload %s/%s (%d bytes buffered)", ss.user, up.name, len(up.buf))
}

// takePending removes and returns the stashed partial upload for key,
// if any.
func (s *Server) takePending(key pendingKey) *pendingUpload {
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.pending[key]
	if !ok {
		return nil
	}
	delete(s.pending, key)
	for i, k := range s.pendingOrder {
		if k == key {
			s.pendingOrder = append(s.pendingOrder[:i], s.pendingOrder[i+1:]...)
			break
		}
	}
	return up
}

func (ss *session) handle(msg protocol.Message) error {
	if ss.srv.crashed.Load() {
		// The durable state is dead: behave like a killed process —
		// refuse everything, let the client reconnect after recovery.
		ss.sendErr(protocol.ErrInternal, "server crashed")
		return ErrServerCrashed
	}
	switch m := msg.(type) {
	case *protocol.IndexUpdate:
		return ss.onIndexUpdate(m)
	case *protocol.ResumeQuery:
		return ss.onResumeQuery(m)
	case *protocol.Data:
		return ss.onData(m)
	case *protocol.Commit:
		return ss.onCommit(m)
	case *protocol.Delete:
		return ss.onDelete(m)
	case *protocol.Get:
		return ss.onGet(m)
	case *protocol.SigRequest:
		return ss.onSigRequest(m)
	case *protocol.DeltaMsg:
		return ss.onDelta(m)
	case *protocol.Bundle:
		return ss.onBundle(m)
	case *protocol.ListRequest:
		return ss.onList(m)
	default:
		ss.sendErr(protocol.ErrBadRequest, fmt.Sprintf("unexpected %v", msg.Type()))
		return fmt.Errorf("syncnet: unexpected message %v", msg.Type())
	}
}

func (ss *session) onIndexUpdate(m *protocol.IndexUpdate) error {
	s := ss.srv
	s.mu.Lock()
	f := s.files(ss.user)[m.Name]
	var id uint64
	if f != nil {
		id = f.id
	} else {
		s.nextID++
		id = s.nextID
	}
	hit := s.index.Lookup(ss.user, m.FileHash, m.Size)
	if hit {
		if _, ok := s.byHash[m.FileHash]; !ok {
			// Index says yes but content is gone — treat as miss.
			hit = false
		}
	}
	s.mu.Unlock()

	ss.uploads[id] = &pendingUpload{id: id, name: m.Name, size: m.Size, hash: m.FileHash, dedupHit: hit}
	return ss.send(&protocol.IndexReply{FileID: id, DedupHit: hit})
}

// onResumeQuery adopts a stashed partial upload matching the client's
// identity triple and tells it where to continue; a zero ResumeInfo
// means start over (with a fresh IndexUpdate).
func (ss *session) onResumeQuery(m *protocol.ResumeQuery) error {
	s := ss.srv
	up := s.takePending(pendingKey{user: ss.user, name: m.Name, size: m.Size, hash: m.FileHash})
	if up == nil {
		return ss.send(&protocol.ResumeInfo{})
	}
	ss.uploads[up.id] = up
	s.mu.Lock()
	s.stats.Resumes++
	s.om.pendingResumable.Set(int64(len(s.pending)))
	s.mu.Unlock()
	s.om.resumes.Inc()
	s.logf("resuming %s/%s at offset %d", ss.user, up.name, len(up.buf))
	return ss.send(&protocol.ResumeInfo{FileID: up.id, Offset: int64(len(up.buf))})
}

func (ss *session) onData(m *protocol.Data) error {
	up := ss.uploads[m.FileID]
	if up == nil {
		ss.sendErr(protocol.ErrBadRequest, "data without matching index update")
		return fmt.Errorf("syncnet: stray data for file %d", m.FileID)
	}
	if int64(m.Offset) != int64(len(up.buf)) {
		ss.sendErr(protocol.ErrBadRequest, "out-of-order data")
		return fmt.Errorf("syncnet: data offset %d, expected %d", m.Offset, len(up.buf))
	}
	up.buf = append(up.buf, m.Payload...)
	return nil
}

func (ss *session) onCommit(m *protocol.Commit) error {
	up := ss.uploads[m.FileID]
	if up == nil {
		ss.sendErr(protocol.ErrBadRequest, "commit without upload")
		return fmt.Errorf("syncnet: stray commit for file %d", m.FileID)
	}
	delete(ss.uploads, m.FileID)

	ta := ss.applyStart()
	var raw []byte
	s := ss.srv
	if up.dedupHit {
		s.mu.Lock()
		raw = s.byHash[up.hash]
		s.mu.Unlock()
	} else {
		var err error
		raw, err = comp.Decompress(up.buf, s.cfg.Compression)
		if err != nil {
			ss.sendErr(protocol.ErrBadRequest, "undecodable content")
			return fmt.Errorf("syncnet: decompress: %w", err)
		}
	}
	if int64(len(raw)) != up.size {
		ss.sendErr(protocol.ErrBadRequest, "content size mismatch")
		return fmt.Errorf("syncnet: committed %d bytes, announced %d", len(raw), up.size)
	}
	if md5.Sum(raw) != up.hash {
		ss.sendErr(protocol.ErrBadRequest, "content hash mismatch")
		return fmt.Errorf("syncnet: content hash mismatch for %q", up.name)
	}

	version := ss.store(up.name, up.id, raw, up.hash, up.dedupHit)
	ss.applyEnd(ta)
	// Durability before acknowledgement: the commit must survive kill -9
	// once the client has seen the Ack.
	if err := s.persistSync(); err != nil {
		ss.sendErr(protocol.ErrInternal, "server crashed")
		return err
	}
	return ss.send(&protocol.Ack{FileID: up.id, Version: version, OK: true})
}

// store commits raw content under the user's name and returns the new
// version.
func (ss *session) store(name string, id uint64, raw []byte, hash protocol.Fingerprint, wasDedup bool) uint64 {
	s := ss.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	files := s.files(ss.user)
	f := files[name]
	if f == nil {
		f = &serverFile{id: id, name: name}
		files[name] = f
	}
	f.data = raw
	f.hash = hash
	f.version++
	f.deleted = false
	f.history++
	s.index.Add(ss.user, hash, int64(len(raw)))
	if _, ok := s.byHash[hash]; !ok {
		s.byHash[hash] = raw
		s.stats.BytesStored += int64(len(raw))
		s.persistContentLocked(hash, raw)
	}
	s.persistFileLocked(ss.user, f)
	s.stats.Uploads++
	if wasDedup {
		s.stats.DedupSkips++
		s.om.dedupSkips.Inc()
	}
	s.om.uploads.Inc()
	s.om.bytesStored.Set(s.stats.BytesStored)
	ss.contentBytes += int64(len(raw))
	s.logf("stored %s/%s v%d (%d bytes, dedup=%v)", ss.user, name, f.version, len(raw), wasDedup)
	return f.version
}

// onBundle demultiplexes a batched small-file upload: each entry is
// checked and committed independently — dedup lookup by full-file
// hash, decompress, size and hash verification, store — and answered
// in one BundleReply. A bad entry is a soft, per-entry failure (OK
// stays false); the rest of the bundle still commits, so one corrupt
// tiny file cannot poison a batch of hundreds.
func (ss *session) onBundle(m *protocol.Bundle) error {
	s := ss.srv
	results := make([]protocol.BundleResult, len(m.Entries))
	committed := 0
	ta := ss.applyStart()
	for i := range m.Entries {
		en := &m.Entries[i]
		res := &results[i]

		s.mu.Lock()
		f := s.files(ss.user)[en.Name]
		var id uint64
		if f != nil {
			id = f.id
		} else {
			s.nextID++
			id = s.nextID
		}
		hit := s.index.Lookup(ss.user, en.FileHash, en.Size)
		var raw []byte
		if hit {
			var ok bool
			if raw, ok = s.byHash[en.FileHash]; !ok {
				// Index says yes but content is gone — treat as miss.
				hit = false
			}
		}
		s.mu.Unlock()

		if !hit {
			var err error
			if raw, err = comp.Decompress(en.Payload, s.cfg.Compression); err != nil {
				s.logf("bundle entry %s/%s: undecodable content", ss.user, en.Name)
				continue
			}
		}
		if int64(len(raw)) != en.Size || md5.Sum(raw) != en.FileHash {
			s.logf("bundle entry %s/%s: size or hash mismatch", ss.user, en.Name)
			continue
		}
		version := ss.store(en.Name, id, raw, en.FileHash, hit)
		res.FileID, res.Version, res.DedupHit, res.OK = id, version, hit, true
		committed++
	}
	ss.applyEnd(ta)
	s.mu.Lock()
	s.stats.Bundles++
	s.stats.BundledFiles += int64(committed)
	s.mu.Unlock()
	s.om.bundles.Inc()
	s.om.bundleFiles.Add(int64(committed))
	// One group commit covers the whole bundle: N entries, one fsync.
	if err := s.persistSync(); err != nil {
		ss.sendErr(protocol.ErrInternal, "server crashed")
		return err
	}
	s.logf("bundle: committed %d/%d entries for %s", committed, len(m.Entries), ss.user)
	return ss.send(&protocol.BundleReply{Results: results})
}

// onList answers with the user's full remote listing — the remote
// observer of the watch-mode pipeline. Entries are sorted by name so
// the reply is deterministic for a given state; fake-deleted files are
// included (flagged) because a planner must distinguish "deleted
// remotely" from "never existed" when reconciling deletions.
func (ss *session) onList(*protocol.ListRequest) error {
	s := ss.srv
	s.mu.Lock()
	files := s.files(ss.user)
	entries := make([]protocol.ListEntry, 0, len(files))
	for name, f := range files {
		entries = append(entries, protocol.ListEntry{
			FileID: f.id, Name: name, Size: int64(len(f.data)),
			Version: f.version, Deleted: f.deleted, FileHash: f.hash,
		})
	}
	s.mu.Unlock()
	slices.SortFunc(entries, func(a, b protocol.ListEntry) int {
		return strings.Compare(a.Name, b.Name)
	})
	s.logf("listing: %d entries for %s", len(entries), ss.user)
	return ss.send(&protocol.Listing{Entries: entries})
}

func (ss *session) onDelete(m *protocol.Delete) error {
	s := ss.srv
	s.mu.Lock()
	var target *serverFile
	for _, f := range s.files(ss.user) {
		if f.id == m.FileID {
			target = f
			break
		}
	}
	if target == nil || target.deleted {
		s.mu.Unlock()
		ss.sendErr(protocol.ErrNotFound, "no such file")
		return nil
	}
	target.deleted = true // fake deletion: content retained
	target.version++
	s.stats.Deletes++
	version := target.version
	s.persistFileLocked(ss.user, target)
	s.mu.Unlock()
	s.om.deletes.Inc()
	if err := s.persistSync(); err != nil {
		ss.sendErr(protocol.ErrInternal, "server crashed")
		return err
	}
	return ss.send(&protocol.Ack{FileID: m.FileID, Version: version, OK: true})
}

func (ss *session) onGet(m *protocol.Get) error {
	s := ss.srv
	s.mu.Lock()
	f := s.files(ss.user)[m.Name]
	if f == nil || f.deleted {
		s.mu.Unlock()
		ss.sendErr(protocol.ErrNotFound, "no such file")
		return nil
	}
	raw := f.data
	info := &protocol.FileInfo{
		FileID: f.id, Name: f.name, Size: int64(len(raw)),
		Version: f.version, Compression: uint8(s.cfg.Compression),
	}
	s.stats.Downloads++
	s.mu.Unlock()
	s.om.downloads.Inc()

	if err := ss.send(info); err != nil {
		return err
	}
	payload := comp.Compress(raw, s.cfg.Compression)
	for off := 0; off < len(payload) || off == 0; off += DataPieceSize {
		end := off + DataPieceSize
		if end > len(payload) {
			end = len(payload)
		}
		if err := ss.sendData(info.FileID, int64(off), payload[off:end]); err != nil {
			return err
		}
		if len(payload) == 0 {
			break
		}
	}
	return ss.send(&protocol.Ack{FileID: info.FileID, Version: info.Version, OK: true})
}

func (ss *session) onSigRequest(m *protocol.SigRequest) error {
	s := ss.srv
	bs := s.cfg.BlockSize
	if m.BlockSize > 0 {
		bs = int(m.BlockSize)
	}
	s.mu.Lock()
	f := s.files(ss.user)[m.Name]
	if f == nil || f.deleted {
		s.mu.Unlock()
		ss.sendErr(protocol.ErrNotFound, "no such file")
		return nil
	}
	sig := delta.Sign(f.data, bs)
	s.mu.Unlock()
	return ss.send(&protocol.SignatureMsg{Name: m.Name, Payload: sig.Encode()})
}

func (ss *session) onDelta(m *protocol.DeltaMsg) error {
	ta := ss.applyStart()
	d, err := delta.DecodeDelta(m.Payload)
	if err != nil {
		ss.sendErr(protocol.ErrBadRequest, "undecodable delta")
		return fmt.Errorf("syncnet: %w", err)
	}
	s := ss.srv
	s.mu.Lock()
	f := s.files(ss.user)[m.Name]
	if f == nil || f.deleted {
		s.mu.Unlock()
		ss.sendErr(protocol.ErrNotFound, "no such file")
		return nil
	}
	basis := f.data
	s.mu.Unlock()

	raw, err := delta.Apply(basis, d)
	if err != nil {
		ss.sendErr(protocol.ErrBadRequest, "inapplicable delta")
		return fmt.Errorf("syncnet: %w", err)
	}
	s.mu.Lock()
	f.data = raw
	f.version++
	f.history++
	hash := md5.Sum(raw)
	f.hash = hash
	s.index.Add(ss.user, hash, int64(len(raw)))
	if _, ok := s.byHash[hash]; !ok {
		s.byHash[hash] = raw
		s.stats.BytesStored += int64(len(raw))
		s.persistContentLocked(hash, raw)
	}
	s.persistFileLocked(ss.user, f)
	s.stats.DeltaSyncs++
	version := f.version
	id := f.id
	stored := s.stats.BytesStored
	s.mu.Unlock()
	s.om.deltaSyncs.Inc()
	s.om.bytesStored.Set(stored)
	ss.contentBytes += int64(len(raw))
	ss.applyEnd(ta)
	if err := s.persistSync(); err != nil {
		ss.sendErr(protocol.ErrInternal, "server crashed")
		return err
	}
	ss.srv.logf("delta-synced %s/%s v%d (%d literal bytes)", ss.user, m.Name, version, d.LiteralBytes())
	return ss.send(&protocol.Ack{FileID: id, Version: version, OK: true})
}
