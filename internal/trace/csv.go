package trace

import (
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout of the on-disk trace format. Block
// hashes are not stored: they derive deterministically from content_id,
// parent_id, and shared_prefix (see Record.BlockHash), which keeps a
// full-scale trace small.
var csvHeader = []string{
	"user", "service", "name_md5", "original_size", "compressed_size",
	"created", "modified", "mods", "content_id", "parent_id", "shared_prefix",
}

// WriteCSV writes records in the trace CSV format.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	for i, r := range recs {
		row := []string{
			r.User,
			r.Service,
			hex.EncodeToString(r.NameHash[:]),
			strconv.FormatInt(r.OriginalSize, 10),
			strconv.FormatInt(r.CompressedSize, 10),
			r.Created.UTC().Format(time.RFC3339Nano),
			r.Modified.UTC().Format(time.RFC3339Nano),
			strconv.Itoa(r.Mods),
			strconv.FormatInt(r.ContentID, 10),
			strconv.FormatInt(r.ParentID, 10),
			strconv.FormatInt(r.SharedPrefix, 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, header[i], col)
		}
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseRow(row []string) (Record, error) {
	var r Record
	r.User = row[0]
	r.Service = row[1]
	nameHash, err := hex.DecodeString(row[2])
	if err != nil || len(nameHash) != len(r.NameHash) {
		return r, fmt.Errorf("bad name_md5 %q", row[2])
	}
	copy(r.NameHash[:], nameHash)
	ints := []struct {
		dst *int64
		col int
	}{
		{&r.OriginalSize, 3}, {&r.CompressedSize, 4},
		{&r.ContentID, 8}, {&r.ParentID, 9}, {&r.SharedPrefix, 10},
	}
	for _, f := range ints {
		v, err := strconv.ParseInt(row[f.col], 10, 64)
		if err != nil {
			return r, fmt.Errorf("bad %s %q", csvHeader[f.col], row[f.col])
		}
		*f.dst = v
	}
	if r.Created, err = time.Parse(time.RFC3339Nano, row[5]); err != nil {
		return r, fmt.Errorf("bad created %q", row[5])
	}
	if r.Modified, err = time.Parse(time.RFC3339Nano, row[6]); err != nil {
		return r, fmt.Errorf("bad modified %q", row[6])
	}
	if r.Mods, err = strconv.Atoi(row[7]); err != nil {
		return r, fmt.Errorf("bad mods %q", row[7])
	}
	if r.OriginalSize < 0 || r.CompressedSize < 0 {
		return r, fmt.Errorf("negative size")
	}
	return r, nil
}
