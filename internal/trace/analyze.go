package trace

import (
	"sort"
	"time"

	"cloudsync/internal/dedup"
	"cloudsync/internal/metrics"
)

// Stats summarizes a trace the way § 3–5 of the paper does.
type Stats struct {
	Files int
	Users int

	// Size statistics (bytes), original and compressed — Fig. 2.
	MedianSize, MeanSize, MaxSize          float64
	MedianCompressed, MeanCompressed       float64
	SmallFraction, SmallCompressedFraction float64
	CompressibleFraction                   float64
	CompressionRatio                       float64
	ModifiedFraction                       float64
	DuplicateVolumeFraction                float64
	BatchableSmallFraction                 float64
}

// Analyze computes the headline statistics of a trace.
func Analyze(recs []Record) Stats {
	var s Stats
	s.Files = len(recs)
	if len(recs) == 0 {
		return s
	}
	users := map[string]bool{}
	var orig, comp metrics.Distribution
	var small, smallComp, compressible, modified int
	var dupCounter dedup.RatioCounter
	dupCounter.Reserve(len(recs))
	for _, r := range recs {
		users[r.User] = true
		orig.Add(float64(r.OriginalSize))
		comp.Add(float64(r.CompressedSize))
		if r.Small() {
			small++
		}
		if r.CompressedSize < SmallFileThreshold {
			smallComp++
		}
		if r.EffectivelyCompressible() {
			compressible++
		}
		if r.ModifiedAtLeastOnce() {
			modified++
		}
		dupCounter.Add(r.FullHash(), r.OriginalSize)
	}
	n := float64(len(recs))
	s.Users = len(users)
	s.MedianSize = orig.Median()
	s.MeanSize = orig.Mean()
	s.MaxSize = orig.Max()
	s.MedianCompressed = comp.Median()
	s.MeanCompressed = comp.Mean()
	s.SmallFraction = float64(small) / n
	s.SmallCompressedFraction = float64(smallComp) / n
	s.CompressibleFraction = float64(compressible) / n
	s.CompressionRatio = orig.Sum() / comp.Sum()
	s.ModifiedFraction = float64(modified) / n
	s.DuplicateVolumeFraction = dupCounter.DuplicateFraction()
	s.BatchableSmallFraction = batchableSmallFraction(recs)
	return s
}

// batchableSmallFraction reports the share of small files created
// within BatchWindow of another small file of the same user — the
// files BDS could logically combine (§ 4.1's 66 %).
func batchableSmallFraction(recs []Record) float64 {
	byUser := map[string][]time.Time{}
	var totalSmall int
	for _, r := range recs {
		if r.Small() {
			byUser[r.User] = append(byUser[r.User], r.Created)
			totalSmall++
		}
	}
	if totalSmall == 0 {
		return 0
	}
	batchable := 0
	for _, times := range byUser {
		sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
		for i, t := range times {
			near := (i > 0 && t.Sub(times[i-1]) <= BatchWindow) ||
				(i+1 < len(times) && times[i+1].Sub(t) <= BatchWindow)
			if near {
				batchable++
			}
		}
	}
	return float64(batchable) / float64(totalSmall)
}

// DedupRatio computes the cross-user deduplication ratio at a block
// granularity (Fig. 5); blockSize 0 means full-file granularity.
func DedupRatio(recs []Record, blockSize int) float64 {
	var rc dedup.RatioCounter
	units := int64(len(recs))
	if blockSize != 0 {
		units = 0
		for _, r := range recs {
			units += r.NumBlocks(blockSize)
		}
	}
	rc.Reserve(int(units))
	for _, r := range recs {
		if blockSize == 0 {
			rc.Add(r.FullHash(), r.OriginalSize)
			continue
		}
		n := r.NumBlocks(blockSize)
		for idx := int64(0); idx < n; idx++ {
			length := int64(blockSize)
			if start := idx * int64(blockSize); start+length > r.OriginalSize {
				length = r.OriginalSize - start
			}
			rc.Add(r.BlockHash(blockSize, idx), length)
		}
	}
	return rc.Ratio()
}

// SizeCDF evaluates the original- and compressed-size CDFs at the given
// byte values — the data behind Fig. 2.
func SizeCDF(recs []Record, xs []float64) (orig, comp []float64) {
	var o, c metrics.Distribution
	for _, r := range recs {
		o.Add(float64(r.OriginalSize))
		c.Add(float64(r.CompressedSize))
	}
	return o.CDFPoints(xs), c.CDFPoints(xs)
}

// PerServiceCounts reports users and files per service (Table 2).
func PerServiceCounts(recs []Record) map[string][2]int {
	users := map[string]map[string]bool{}
	files := map[string]int{}
	for _, r := range recs {
		if users[r.Service] == nil {
			users[r.Service] = map[string]bool{}
		}
		users[r.Service][r.User] = true
		files[r.Service]++
	}
	out := map[string][2]int{}
	for svc, u := range users {
		out[svc] = [2]int{len(u), files[svc]}
	}
	return out
}
