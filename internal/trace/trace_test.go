package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testTrace caches a mid-scale trace for the calibration tests.
var testTrace = Generate(GenConfig{Seed: 1, Scale: 0.15})

func TestGenerateScaleValidation(t *testing.T) {
	for _, scale := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale %v did not panic", scale)
				}
			}()
			Generate(GenConfig{Scale: scale})
		}()
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Seed: 7, Scale: 0.01})
	b := Generate(GenConfig{Seed: 7, Scale: 0.01})
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := Generate(GenConfig{Seed: 8, Scale: 0.01})
	same := len(c) == len(a)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestScaleApproximatesTable2(t *testing.T) {
	counts := PerServiceCounts(testTrace)
	if len(counts) != 6 {
		t.Fatalf("services = %d, want 6", len(counts))
	}
	// Dropbox should dominate files, as in Table 2.
	if counts["Dropbox"][1] < counts["OneDrive"][1]*3 {
		t.Fatalf("Dropbox files (%d) should dwarf OneDrive (%d)",
			counts["Dropbox"][1], counts["OneDrive"][1])
	}
	total := 0
	for _, c := range counts {
		total += c[1]
	}
	want := TotalFiles * 15 / 100
	if total < want*9/10 || total > want*11/10 {
		t.Fatalf("total files = %d, want ≈ %d", total, want)
	}
}

func TestCalibrationMatchesPaperStatistics(t *testing.T) {
	s := Analyze(testTrace)

	check := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.4g, want in [%.4g, %.4g]", name, got, lo, hi)
		}
	}
	// Fig. 2: median 7.5 KB, mean 962 KB, max ≤ 2 GB; 77 % small.
	check("median size", s.MedianSize, 4<<10, 14<<10)
	check("mean size", s.MeanSize, 500<<10, 1600<<10)
	if s.MaxSize > MaxFileSize {
		t.Errorf("max size %v exceeds 2 GB", s.MaxSize)
	}
	check("small fraction", s.SmallFraction, 0.72, 0.84)
	// § 5.1: 52 % compressible, overall ratio 1.31.
	check("compressible fraction", s.CompressibleFraction, 0.46, 0.58)
	check("compression ratio", s.CompressionRatio, 1.18, 1.45)
	// § 4.3: 84 % modified.
	check("modified fraction", s.ModifiedFraction, 0.80, 0.88)
	// § 5.2: 18.8 % duplicate volume.
	check("duplicate volume fraction", s.DuplicateVolumeFraction, 0.13, 0.25)
	// § 4.1: 66 % of small files batch-creatable.
	check("batchable small fraction", s.BatchableSmallFraction, 0.55, 0.78)
	// Compressed median should sit below the original median (Fig. 2's
	// 3.2 KB vs 7.5 KB).
	if s.MedianCompressed >= s.MedianSize {
		t.Errorf("median compressed %v not below median original %v",
			s.MedianCompressed, s.MedianSize)
	}
}

func TestDedupRatioBlockVsFullFile(t *testing.T) {
	full := DedupRatio(testTrace, 0)
	block128K := DedupRatio(testTrace, 128<<10)
	block16M := DedupRatio(testTrace, 16<<20)

	if full < 1.1 || full > 1.4 {
		t.Fatalf("full-file dedup ratio = %.3f, want ≈ 1.23", full)
	}
	// Fig. 5: block-level is better, but only trivially.
	if block128K < full {
		t.Fatalf("128KB block ratio %.3f below full-file %.3f", block128K, full)
	}
	if block128K > full*1.15 {
		t.Fatalf("128KB block ratio %.3f should exceed full-file %.3f only trivially",
			block128K, full)
	}
	// Finer blocks dedup at least as well as coarser ones.
	if block128K < block16M {
		t.Fatalf("ratio should not increase with block size: 128K=%.3f 16M=%.3f",
			block128K, block16M)
	}
}

func TestSizeCDF(t *testing.T) {
	orig, comp := SizeCDF(testTrace, []float64{1 << 10, 100 << 10, 1 << 30})
	if !(orig[0] < orig[1] && orig[1] < orig[2]) {
		t.Fatalf("CDF not increasing: %v", orig)
	}
	// Compressed sizes stochastically dominate below: CDF at least as
	// high everywhere.
	for i := range orig {
		if comp[i] < orig[i]-1e-9 {
			t.Fatalf("compressed CDF below original at point %d: %v < %v", i, comp[i], orig[i])
		}
	}
}

func TestFullHashSharedByDuplicates(t *testing.T) {
	// Find a duplicate pair (same ContentID) and confirm identical
	// hashes; distinct contents must differ.
	byContent := map[int64][]Record{}
	for _, r := range testTrace {
		byContent[r.ContentID] = append(byContent[r.ContentID], r)
	}
	foundDup := false
	for _, group := range byContent {
		if len(group) > 1 {
			foundDup = true
			if group[0].FullHash() != group[1].FullHash() {
				t.Fatal("duplicate contents hash differently")
			}
			break
		}
	}
	if !foundDup {
		t.Fatal("trace contains no duplicates")
	}
	if testTrace[0].ContentID != testTrace[1].ContentID &&
		testTrace[0].FullHash() == testTrace[1].FullHash() {
		t.Fatal("distinct contents share a hash")
	}
}

func TestBlockHashSharedPrefix(t *testing.T) {
	// Hand-built parent/child pair: blocks inside the shared prefix
	// match, later blocks differ.
	parent := Record{ContentID: 1, ParentID: -1, OriginalSize: 1 << 20}
	child := Record{ContentID: 2, ParentID: 1, SharedPrefix: 512 << 10, OriginalSize: 1 << 20}
	const bs = 128 << 10
	for idx := int64(0); idx < 4; idx++ { // first 512 KB
		if child.BlockHash(bs, idx) != parent.BlockHash(bs, idx) {
			t.Fatalf("shared-prefix block %d differs", idx)
		}
	}
	if child.BlockHash(bs, 4) == parent.BlockHash(bs, 4) {
		t.Fatal("post-prefix block should differ")
	}
}

func TestBlockHashTailLengthMatters(t *testing.T) {
	// A short tail block must not collide with a full block of the same
	// index.
	a := Record{ContentID: 5, ParentID: -1, OriginalSize: 100}
	b := Record{ContentID: 5, ParentID: -1, OriginalSize: 200}
	if a.BlockHash(128, 0) == b.BlockHash(128, 0) {
		t.Fatal("tail blocks of different lengths collide")
	}
}

func TestBlockHashBounds(t *testing.T) {
	r := Record{ContentID: 1, ParentID: -1, OriginalSize: 100}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range block did not panic")
		}
	}()
	r.BlockHash(128, 1)
}

func TestNumBlocks(t *testing.T) {
	r := Record{OriginalSize: 1000}
	if r.NumBlocks(128) != 8 {
		t.Fatalf("NumBlocks = %d", r.NumBlocks(128))
	}
	if (Record{}).NumBlocks(128) != 0 {
		t.Fatal("empty file should have 0 blocks")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := Generate(GenConfig{Seed: 3, Scale: 0.005})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("roundtrip length %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		a, b := recs[i], got[i]
		// Times round-trip through RFC3339Nano in UTC.
		a.Created, a.Modified = a.Created.UTC(), a.Modified.UTC()
		if a != b {
			t.Fatalf("record %d: %+v != %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bad,header\n1,2\n",
		strings.Join(csvHeader, ",") + "\nu,svc,zz,1,1,2013-07-01T00:00:00Z,2013-07-01T00:00:00Z,0,1,-1,0\n",
		strings.Join(csvHeader, ",") + "\nu,svc," + strings.Repeat("ab", 16) + ",x,1,2013-07-01T00:00:00Z,2013-07-01T00:00:00Z,0,1,-1,0\n",
		strings.Join(csvHeader, ",") + "\nu,svc," + strings.Repeat("ab", 16) + ",1,1,notatime,2013-07-01T00:00:00Z,0,1,-1,0\n",
		strings.Join(csvHeader, ",") + "\nu,svc," + strings.Repeat("ab", 16) + ",-5,1,2013-07-01T00:00:00Z,2013-07-01T00:00:00Z,0,1,-1,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadCSV succeeded on malformed input", i)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil)
	if s.Files != 0 || s.Users != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestBatchWindowDetection(t *testing.T) {
	base := Epoch
	recs := []Record{
		{User: "u", OriginalSize: 10, Created: base, ContentID: 1, ParentID: -1},
		{User: "u", OriginalSize: 10, Created: base.Add(time.Second), ContentID: 2, ParentID: -1},
		{User: "u", OriginalSize: 10, Created: base.Add(time.Hour), ContentID: 3, ParentID: -1},
	}
	s := Analyze(recs)
	want := 2.0 / 3.0
	if diff := s.BatchableSmallFraction - want; diff < -0.01 || diff > 0.01 {
		t.Fatalf("BatchableSmallFraction = %v, want %v", s.BatchableSmallFraction, want)
	}
}

func BenchmarkGenerateFullScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(GenConfig{Seed: int64(i), Scale: 1.0})
	}
}

func BenchmarkDedupRatio128K(b *testing.B) {
	recs := Generate(GenConfig{Seed: 1, Scale: 0.05})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DedupRatio(recs, 128<<10)
	}
}
