// Package trace models the paper's real-world cloud storage trace
// (§ 3.1): 153 long-term users of six services with 222,632 files,
// each recorded with the Table 3 attributes — sizes, timestamps, a
// full-file MD5, and block-level MD5s at eight granularities.
//
// The original trace link is dead, so Generate synthesizes a trace
// calibrated to every statistic the paper publishes about the real
// one: the Fig. 2 size distributions (median 7.5 KB, mean 962 KB, max
// 2.0 GB, 77 % of files under 100 KB), 52 % effectively compressible
// files with an overall compression ratio of 1.31, an 18.8 % full-file
// duplicate fraction, 84 % of files modified at least once, and 66 % of
// small files created in batches. Block fingerprints are derived
// deterministically from content identities rather than stored, which
// keeps a full-scale trace in tens of megabytes.
package trace

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// SmallFileThreshold is the paper's boundary for "small" files.
const SmallFileThreshold = 100 << 10

// MaxFileSize caps generated files at the trace's observed 2.0 GB
// maximum.
const MaxFileSize = 2 << 30

// BatchWindow is the creation-time proximity within which small files
// count as batch-created.
const BatchWindow = 2 * time.Second

// Epoch is the collection start (the paper collected from Jul 2013).
var Epoch = time.Date(2013, time.July, 1, 0, 0, 0, 0, time.UTC)

// Record is one tracked file with the Table 3 attributes.
type Record struct {
	// User identifies the volunteer ("u017"); Service is the cloud
	// storage service hosting the sync folder.
	User    string
	Service string
	// NameHash is the MD5 of the file name (names themselves were
	// anonymized in the original trace).
	NameHash [md5.Size]byte
	// OriginalSize and CompressedSize are the file's raw size and its
	// size under best-effort compression.
	OriginalSize   int64
	CompressedSize int64
	// Created and Modified are the creation and last-modification
	// times.
	Created  time.Time
	Modified time.Time
	// Mods counts modifications (0 = never modified).
	Mods int
	// ContentID identifies the file content: exact duplicates share it.
	ContentID int64
	// ParentID (-1 = none) with SharedPrefix models a file derived from
	// another content by modification/extension: the first SharedPrefix
	// bytes are block-identical to the parent content.
	ParentID     int64
	SharedPrefix int64
}

// Small reports whether the file is small in the paper's sense.
func (r Record) Small() bool { return r.OriginalSize < SmallFileThreshold }

// EffectivelyCompressible applies the paper's § 5.1 criterion.
func (r Record) EffectivelyCompressible() bool {
	if r.OriginalSize == 0 {
		return false
	}
	return float64(r.CompressedSize)/float64(r.OriginalSize) < 0.90
}

// ModifiedAtLeastOnce reports whether the file was ever modified.
func (r Record) ModifiedAtLeastOnce() bool { return r.Mods > 0 }

// FullHash is the full-file MD5. Files with the same content share it.
func (r Record) FullHash() [md5.Size]byte {
	return hashOf("file", r.ContentID, r.OriginalSize, 0)
}

// NumBlocks reports the file's block count at a granularity.
func (r Record) NumBlocks(blockSize int) int64 {
	if blockSize <= 0 {
		panic(fmt.Sprintf("trace: invalid block size %d", blockSize))
	}
	if r.OriginalSize == 0 {
		return 0
	}
	return (r.OriginalSize + int64(blockSize) - 1) / int64(blockSize)
}

// BlockHash is the MD5 of block idx at the given granularity. Blocks
// that lie entirely within the shared prefix of a derived file hash
// identically to the parent content's blocks; all others are unique to
// this content. The hash incorporates the block's actual length, so a
// short tail block never collides with a full block.
func (r Record) BlockHash(blockSize int, idx int64) [md5.Size]byte {
	n := r.NumBlocks(blockSize)
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("trace: block %d outside file with %d blocks", idx, n))
	}
	start := idx * int64(blockSize)
	length := int64(blockSize)
	if start+length > r.OriginalSize {
		length = r.OriginalSize - start
	}
	id := r.ContentID
	if r.ParentID >= 0 && start+length <= r.SharedPrefix {
		id = r.ParentID
	}
	return hashOf("blk", id, start, length)
}

func hashOf(kind string, id, a, b int64) [md5.Size]byte {
	// One stack buffer fed to md5.Sum keeps this allocation-free; the
	// bytes hashed (kind followed by the three little-endian values) are
	// identical to streaming them through a digest, so the fingerprints
	// are unchanged. kind is at most 4 bytes ("file"/"blk").
	if len(kind) > 4 {
		panic(fmt.Sprintf("trace: hashOf kind %q longer than 4 bytes", kind))
	}
	var buf [4 + 8*3]byte
	n := copy(buf[:4], kind)
	binary.LittleEndian.PutUint64(buf[n:], uint64(id))
	binary.LittleEndian.PutUint64(buf[n+8:], uint64(a))
	binary.LittleEndian.PutUint64(buf[n+16:], uint64(b))
	return md5.Sum(buf[:n+24])
}

// serviceQuota mirrors Table 2.
type serviceQuota struct {
	name  string
	users int
	files int
}

var quotas = []serviceQuota{
	{"Google Drive", 33, 32677},
	{"OneDrive", 24, 17903},
	{"Dropbox", 55, 106493},
	{"Box", 13, 19995},
	{"Ubuntu One", 13, 27281},
	{"SugarSync", 15, 18283},
}

// TotalFiles is the full-scale trace size (Table 2).
const TotalFiles = 222632

// TotalUsers is the full-scale user count.
const TotalUsers = 153

// GenConfig parameterises trace generation.
type GenConfig struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Scale shrinks the trace proportionally (1.0 = the full 222,632
	// files; tests use small scales). Must be in (0, 1].
	Scale float64
}

// Generate synthesizes a trace calibrated to the paper's statistics.
func Generate(cfg GenConfig) []Record {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		panic(fmt.Sprintf("trace: Scale %v outside (0, 1]", cfg.Scale))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var records []Record
	nextContent := int64(1)
	userIdx := 0

	for _, q := range quotas {
		users := int(math.Max(1, math.Round(float64(q.users)*cfg.Scale)))
		files := int(math.Max(1, math.Round(float64(q.files)*cfg.Scale)))
		// Distribute files over users with a skew (heavy users exist).
		weights := make([]float64, users)
		var wsum float64
		for i := range weights {
			weights[i] = math.Exp(rng.NormFloat64())
			wsum += weights[i]
		}
		assigned := 0
		for i := 0; i < users; i++ {
			n := int(float64(files) * weights[i] / wsum)
			if i == users-1 {
				n = files - assigned
			}
			assigned += n
			user := fmt.Sprintf("u%03d", userIdx)
			userIdx++
			records = append(records, generateUser(rng, user, q.name, n, &nextContent, records)...)
		}
	}
	return records
}

// generateUser emits one user's files: bursts of batch-created small
// files interleaved with standalone files, some of which duplicate or
// derive from already-generated content.
func generateUser(rng *rand.Rand, user, svc string, n int, nextContent *int64, global []Record) []Record {
	out := make([]Record, 0, n)
	t := Epoch.Add(time.Duration(rng.Int63n(int64(90 * 24 * time.Hour))))
	for len(out) < n {
		// Advance to the next activity burst.
		t = t.Add(time.Duration(rng.ExpFloat64() * float64(6*time.Hour)))
		burst := 1
		if rng.Float64() < 0.22 {
			// A batch: photo imports, project checkouts, package
			// installs. These are what make 66 % of small files
			// batch-creatable.
			burst = 3 + rng.Intn(10)
		}
		for b := 0; b < burst && len(out) < n; b++ {
			rec := generateFile(rng, user, svc, t, nextContent, global, out)
			out = append(out, rec)
			t = t.Add(time.Duration(rng.Int63n(int64(400 * time.Millisecond))))
		}
	}
	return out
}

func generateFile(rng *rand.Rand, user, svc string, at time.Time, nextContent *int64, global, local []Record) Record {
	rec := Record{
		User:     user,
		Service:  svc,
		Created:  at,
		Modified: at,
		ParentID: -1,
	}
	var nameBuf [16]byte
	rng.Read(nameBuf[:])
	rec.NameHash = md5.Sum(nameBuf[:])

	// Duplicate / derived / fresh content. Duplicates are biased toward
	// larger files so the duplicate volume fraction reaches the paper's
	// 18.8 % while duplicate count stays moderate.
	pick := rng.Float64()
	pool := global
	if len(local) > 0 && rng.Float64() < 0.5 {
		pool = local
	}
	switch {
	case pick < 0.065 && len(pool) > 0:
		// Exact duplicate of an existing file's content (prefer big
		// ones: sample a few candidates and take the largest).
		best := pool[rng.Intn(len(pool))]
		for i := 0; i < 3; i++ {
			cand := pool[rng.Intn(len(pool))]
			if cand.OriginalSize > best.OriginalSize {
				best = cand
			}
		}
		rec.ContentID = best.ContentID
		rec.OriginalSize = best.OriginalSize
		rec.CompressedSize = best.CompressedSize
	case pick < 0.14 && len(pool) > 0:
		// Derived content: shares a prefix of an existing content —
		// what makes block-level dedup slightly better than full-file
		// (Fig. 5).
		base := pool[rng.Intn(len(pool))]
		rec.ContentID = *nextContent
		*nextContent++
		rec.ParentID = base.ContentID
		shared := int64(float64(base.OriginalSize) * (0.3 + 0.6*rng.Float64()))
		rec.SharedPrefix = shared
		rec.OriginalSize = shared + sampleSize(rng)/8
		if rec.OriginalSize > MaxFileSize {
			rec.OriginalSize = MaxFileSize
		}
		rec.CompressedSize = compressedSize(rng, rec.OriginalSize)
	default:
		rec.ContentID = *nextContent
		*nextContent++
		rec.OriginalSize = sampleSize(rng)
		rec.CompressedSize = compressedSize(rng, rec.OriginalSize)
	}

	// 84 % of files are modified at least once.
	if rng.Float64() < 0.84 {
		rec.Mods = 1 + int(rng.ExpFloat64()*3)
		rec.Modified = rec.Created.Add(time.Duration(rng.ExpFloat64() * float64(14*24*time.Hour)))
	}
	return rec
}

// sampleSize draws from a truncated log-normal fitted to Fig. 2:
// median 7.5 KB, ~77 % below 100 KB, mean ≈ 962 KB, max 2.0 GB.
func sampleSize(rng *rand.Rand) int64 {
	const median = 7.5 * 1024
	const sigma = 3.18
	v := math.Exp(math.Log(median) + sigma*rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	if v > MaxFileSize {
		v = MaxFileSize
	}
	return int64(v)
}

// compressedSize assigns a best-effort compressed size. Small files
// (documents, code) are more often compressible than large ones
// (media); the split is calibrated so ~52 % of files are effectively
// compressible and the volume-weighted compression ratio lands near
// the paper's 1.31.
func compressedSize(rng *rand.Rand, size int64) int64 {
	if size == 0 {
		return 0
	}
	pCompressible := 0.54
	if size >= SmallFileThreshold {
		pCompressible = 0.45
	}
	var ratio float64
	if rng.Float64() < pCompressible {
		ratio = 0.25 + 0.60*rng.Float64() // 0.25–0.85
	} else {
		ratio = 0.93 + 0.07*rng.Float64() // 0.93–1.00
	}
	c := int64(float64(size) * ratio)
	if c < 1 {
		c = 1
	}
	return c
}
