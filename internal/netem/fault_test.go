package netem

import (
	"testing"
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/simclock"
	"cloudsync/internal/wire"
)

// faultSetup builds a path over the given link and returns it with its
// capture, ready to run sessions.
func faultSetup(link Link, persistent bool) (*simclock.Clock, *capture.Capture, *Path) {
	clk := simclock.New()
	cap := capture.New()
	conn := wire.NewConn(wire.DefaultParams(), cap, capture.Flow{Src: "c", Dst: "s"})
	return clk, cap, NewPath(clk, link, conn, persistent)
}

// runSessions drives n identical back-to-back one-exchange sessions
// (each queues behind the previous) and returns total wire traffic and
// the completion time, so every injected stall or retransmission
// extends the run.
func runSessions(link Link, n int) (traffic int64, end time.Duration, stats FaultStats) {
	clk, cap, p := faultSetup(link, true)
	ex := []Exchange{{UpApp: 32 << 10, DownApp: 1 << 10, Kind: capture.KindData}}
	for i := 0; i < n; i++ {
		p.Do(ex, 0, nil)
	}
	clk.Run()
	up, down, _ := cap.Since(capture.Mark{})
	return up + down, clk.Now(), p.FaultStats()
}

func faultyLink(seed uint64, loss float64, drop, stall time.Duration) Link {
	l := Beijing()
	l.Faults = &FaultProfile{
		Seed: seed, LossProb: loss,
		MeanDropInterval:  drop,
		MeanStallInterval: stall,
		StallDuration:     stall / 10,
	}
	return l
}

func TestNoFaultsMatchesPlainLink(t *testing.T) {
	plain, plainEnd, _ := runSessions(Beijing(), 20)
	l := Beijing()
	l.Faults = &FaultProfile{Seed: 7} // zero rates: no injections
	faulty, faultyEnd, stats := runSessions(l, 20)
	if plain != faulty || plainEnd != faultyEnd {
		t.Fatalf("zero-rate profile changed the run: traffic %d vs %d, end %v vs %v",
			plain, faulty, plainEnd, faultyEnd)
	}
	if stats != (FaultStats{}) {
		t.Fatalf("zero-rate profile injected faults: %+v", stats)
	}
}

func TestLossChargesRetransmissions(t *testing.T) {
	clean, _, _ := runSessions(Beijing(), 50)
	lossy, lossyEnd, stats := runSessions(faultyLink(1, 0.3, 0, 0), 50)
	if stats.Retransmits == 0 {
		t.Fatal("30% loss over 50 exchanges injected no retransmissions")
	}
	if lossy <= clean {
		t.Fatalf("lossy traffic %d not above clean %d", lossy, clean)
	}
	// Each retransmission also pays the adaptive retry timeout
	// (2×RTT + 200 ms for an unset RetryTimeout).
	rto := 2*Beijing().RTT + 200*time.Millisecond
	if lossyEnd < time.Duration(stats.Retransmits)*rto {
		t.Fatalf("end %v does not cover %d retry timeouts", lossyEnd, stats.Retransmits)
	}
}

func TestDropsForceReconnects(t *testing.T) {
	clean, _, _ := runSessions(Beijing(), 60)
	dropping, _, stats := runSessions(faultyLink(2, 0, 5*time.Second, 0), 60)
	if stats.Drops == 0 {
		t.Fatal("5s mean drop interval over a minute injected no drops")
	}
	if dropping <= clean {
		t.Fatalf("dropping traffic %d not above clean %d (handshakes missing)", dropping, clean)
	}
}

func TestStallsCostTimeNotBytes(t *testing.T) {
	clean, cleanEnd, _ := runSessions(Beijing(), 40)
	stalled, stalledEnd, stats := runSessions(faultyLink(3, 0, 0, 4*time.Second), 40)
	if stats.Stalls == 0 {
		t.Fatal("no stalls injected")
	}
	if stalled != clean {
		t.Fatalf("stalls changed traffic: %d vs %d", stalled, clean)
	}
	if stalledEnd <= cleanEnd {
		t.Fatalf("stalls did not extend the run: %v vs %v", stalledEnd, cleanEnd)
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	link := FaultyBeijing()
	t1, e1, s1 := runSessions(link, 80)
	t2, e2, s2 := runSessions(link, 80)
	if t1 != t2 || e1 != e2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%d, %v, %+v) vs (%d, %v, %+v)", t1, e1, s1, t2, e2, s2)
	}
	l3 := link
	f := *link.Faults
	f.Seed = 99
	l3.Faults = &f
	t3, _, _ := runSessions(l3, 80)
	if t3 == t1 {
		t.Fatalf("different seeds produced identical traffic %d (suspicious)", t1)
	}
}

func TestFaultyBeijingProfile(t *testing.T) {
	l := FaultyBeijing()
	if l.Faults == nil || l.UpBps != Beijing().UpBps {
		t.Fatalf("FaultyBeijing = %+v", l)
	}
	_, _, stats := runSessions(l, 300)
	if stats.Retransmits == 0 || stats.Drops == 0 || stats.Stalls == 0 {
		t.Fatalf("FaultyBeijing injected nothing over 5 minutes: %+v", stats)
	}
}

func TestSetLinkRestartsFaultSchedule(t *testing.T) {
	clk, _, p := faultSetup(Beijing(), true)
	if p.FaultStats() != (FaultStats{}) {
		t.Fatal("fresh fault-free path has stats")
	}
	l := faultyLink(4, 0.5, 0, 0)
	p.SetLink(l)
	ex := []Exchange{{UpApp: 1 << 10, DownApp: 128, Kind: capture.KindControl}}
	for i := 0; i < 40; i++ {
		p.Do(ex, 0, nil)
	}
	clk.Run()
	if p.FaultStats().Retransmits == 0 {
		t.Fatal("SetLink with faults did not arm the schedule")
	}
	p.SetLink(Beijing())
	if p.FaultStats() != (FaultStats{}) {
		t.Fatal("SetLink back to a clean link kept the old fault state")
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LossProb = 1 did not panic")
		}
	}()
	l := Beijing()
	l.Faults = &FaultProfile{LossProb: 1}
	faultSetup(l, true)
}
