package netem

import (
	"fmt"
	"math"
	"time"
)

// FaultProfile describes a link's failure behaviour: per-exchange
// packet loss, connection drops, and transient stalls. All randomness
// is drawn from a private PRNG fixed by Seed when the profile is bound
// to a Path, so a given (workload, profile) pair always produces the
// same fault schedule — the same determinism contract the experiment
// harness applies to content seeds (schedules are fixed at task-build
// time, never by worker scheduling).
//
// The zero profile injects nothing; a Link with a nil Faults pointer is
// the ideal, loss-free pipe the seed repository modelled.
type FaultProfile struct {
	// Seed fixes the fault schedule. Two paths with the same profile and
	// the same workload see identical faults.
	Seed uint64
	// LossProb is the probability that one application exchange is lost
	// in transit and must be retransmitted after a timeout. Each
	// retransmission is charged to the wire again — this is how
	// retransmission traffic enters TUE. Must be in [0, 1).
	LossProb float64
	// RetryTimeout is the retransmission timeout paid before re-sending
	// a lost exchange. 0 picks a Jacobson-style adaptive default of
	// 2×RTT + 200 ms for the path's link.
	RetryTimeout time.Duration
	// MeanDropInterval is the mean time between connection drops
	// (exponential inter-arrival). A drop tears the connection down; the
	// next exchange pays a fresh TCP+TLS handshake. 0 disables drops.
	MeanDropInterval time.Duration
	// MeanStallInterval is the mean time between transient stalls
	// (exponential inter-arrival); StallDuration is how long each stall
	// freezes the path. Stalls model bufferbloat/radio wakeup pauses:
	// they cost time, not bytes. 0 disables stalls.
	MeanStallInterval time.Duration
	StallDuration     time.Duration
}

// maxLossRetries bounds consecutive losses of one exchange so a
// pathological LossProb cannot hang the simulation.
const maxLossRetries = 64

func (f *FaultProfile) validate() {
	if f == nil {
		return
	}
	if f.LossProb < 0 || f.LossProb >= 1 {
		panic(fmt.Sprintf("netem: loss probability %v outside [0, 1)", f.LossProb))
	}
	if f.RetryTimeout < 0 || f.MeanDropInterval < 0 || f.MeanStallInterval < 0 || f.StallDuration < 0 {
		panic(fmt.Sprintf("netem: negative fault interval %+v", *f))
	}
}

func (f *FaultProfile) retryTimeout(rtt time.Duration) time.Duration {
	if f.RetryTimeout > 0 {
		return f.RetryTimeout
	}
	return 2*rtt + 200*time.Millisecond
}

// FaultyBeijing returns the Beijing vantage point degraded the way the
// paper's weak-network discussion describes it: a few percent exchange
// loss, a connection drop every ~45 s, and a 2 s stall every ~30 s.
func FaultyBeijing() Link {
	l := Beijing()
	l.Faults = &FaultProfile{
		Seed:              0xFA17,
		LossProb:          0.02,
		MeanDropInterval:  45 * time.Second,
		MeanStallInterval: 30 * time.Second,
		StallDuration:     2 * time.Second,
	}
	return l
}

// FaultStats counts the faults a path injected so far.
type FaultStats struct {
	// Retransmits is the number of lost exchanges that had to be resent.
	Retransmits int
	// Drops is the number of connection teardowns injected.
	Drops int
	// Stalls is the number of transient stalls an exchange waited out.
	Stalls int
}

// faultState is the per-path fault machinery: the seeded PRNG and the
// next scheduled drop/stall arrival on the sim clock.
type faultState struct {
	profile   FaultProfile
	rng       xorshift
	nextDrop  time.Duration
	nextStall time.Duration
	stats     FaultStats
}

func newFaultState(f *FaultProfile, now time.Duration) *faultState {
	if f == nil {
		return nil
	}
	f.validate()
	st := &faultState{profile: *f, rng: newXorshift(f.Seed)}
	if f.MeanDropInterval > 0 {
		st.nextDrop = now + st.rng.expSample(f.MeanDropInterval)
	}
	if f.MeanStallInterval > 0 && f.StallDuration > 0 {
		st.nextStall = now + st.rng.expSample(f.MeanStallInterval)
	}
	return st
}

// stallUntil applies any stall window that covers time at and advances
// the stall schedule past at. Stalls that elapsed entirely while the
// path was idle cost nothing.
func (st *faultState) stallUntil(at time.Duration) time.Duration {
	for st.nextStall > 0 && at >= st.nextStall {
		end := st.nextStall + st.profile.StallDuration
		if at < end {
			at = end
			st.stats.Stalls++
		}
		st.nextStall = end + st.rng.expSample(st.profile.MeanStallInterval)
	}
	return at
}

// dropDue reports whether a connection drop arrived at or before time
// at, consuming the arrival and scheduling the next one.
func (st *faultState) dropDue(at time.Duration) bool {
	if st.nextDrop == 0 || at < st.nextDrop {
		return false
	}
	due := st.nextDrop
	st.nextDrop = due + st.rng.expSample(st.profile.MeanDropInterval)
	st.stats.Drops++
	return true
}

// lossAttempts draws how many times one exchange must be sent before it
// gets through: 1 plus a geometric number of losses.
func (st *faultState) lossAttempts() int {
	attempts := 1
	for st.profile.LossProb > 0 && st.rng.float() < st.profile.LossProb && attempts < maxLossRetries {
		attempts++
	}
	st.stats.Retransmits += attempts - 1
	return attempts
}

// xorshift is the simulator's tiny deterministic PRNG. The draw
// sequence is frozen independent of Go releases, which keeps fault
// schedules byte-stable across toolchains.
type xorshift uint64

// newXorshift runs the seed through a splitmix64 finalizer so small
// consecutive seeds (0, 1, 2, …) still start from well-spread states —
// raw xorshift needs many steps to diffuse a low-entropy seed.
func newXorshift(seed uint64) xorshift {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return xorshift(z)
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// float returns a uniform draw in [0, 1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// expSample draws an exponential duration with the given mean, clamped
// away from zero.
func (x *xorshift) expSample(mean time.Duration) time.Duration {
	u := x.float() + 1e-12
	d := -float64(mean) * math.Log(u)
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}
