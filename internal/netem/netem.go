// Package netem models the network path between a sync client and the
// cloud: asymmetric bandwidth, propagation latency, and serialized
// request/response exchanges over a wire.Conn.
//
// It replaces the paper's two physical vantage points (Minnesota and
// Beijing) and its Netfilter-based bandwidth/latency shapers with a
// deterministic analytical model on the simulation clock: an exchange's
// duration is its round trips times the RTT plus its wire bytes divided
// by the direction's bandwidth, which is exactly the quantity the
// paper's "Condition 1" batching depends on.
package netem

import (
	"fmt"
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/obs"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/simclock"
	"cloudsync/internal/wire"
)

// Link describes a client↔cloud path.
type Link struct {
	// UpBps and DownBps are the bandwidths in bits per second, client→cloud
	// and cloud→client.
	UpBps, DownBps int64
	// RTT is the round-trip time.
	RTT time.Duration
	// Faults, when non-nil, makes the link imperfect: seeded packet
	// loss, connection drops, and stalls (see FaultProfile). Nil is the
	// ideal loss-free pipe.
	Faults *FaultProfile
}

// Minnesota returns the paper's "close to the cloud" vantage point:
// ~20 Mbps with 42–77 ms latency (midpoint 60 ms).
func Minnesota() Link {
	return Link{UpBps: 20_000_000, DownBps: 20_000_000, RTT: 60 * time.Millisecond}
}

// Beijing returns the paper's "remote from the cloud" vantage point:
// ~1.6 Mbps upload with 200–480 ms latency (midpoint 340 ms). Download
// bandwidth on the measured access links was roughly 4× the upload rate.
func Beijing() Link {
	return Link{UpBps: 1_600_000, DownBps: 6_400_000, RTT: 340 * time.Millisecond}
}

// Custom returns a link with the given bandwidth (applied in both
// directions) and RTT — the equivalent of the paper's controlled
// packet-filter experiments.
func Custom(bps int64, rtt time.Duration) Link {
	return Link{UpBps: bps, DownBps: bps, RTT: rtt}
}

func (l Link) validate() {
	if l.UpBps <= 0 || l.DownBps <= 0 {
		panic(fmt.Sprintf("netem: non-positive bandwidth %+v", l))
	}
	if l.RTT < 0 {
		panic(fmt.Sprintf("netem: negative RTT %+v", l))
	}
	l.Faults.validate()
}

// UpTime reports how long bytes take to serialize onto the uplink.
func (l Link) UpTime(bytes int) time.Duration {
	l.validate()
	return time.Duration(float64(bytes) * 8 / float64(l.UpBps) * float64(time.Second))
}

// DownTime reports how long bytes take to serialize onto the downlink.
func (l Link) DownTime(bytes int) time.Duration {
	l.validate()
	return time.Duration(float64(bytes) * 8 / float64(l.DownBps) * float64(time.Second))
}

// Exchange is one application-level request/response over the path.
type Exchange struct {
	// UpApp and DownApp are the application bytes of the request body
	// and response body.
	UpApp, DownApp int
	// Kind classifies the payload for capture accounting.
	Kind capture.Kind
	// ExtraRTTs adds protocol round trips beyond the one implied by the
	// request/response itself (e.g. a commit-then-ack step).
	ExtraRTTs int
	// Cause attributes the exchange's payload bytes when the capture has
	// a ledger attached. ledger.Unset derives the cause from Kind;
	// loss-triggered retry attempts override it with ledger.Retransmit.
	Cause ledger.Cause
}

// Path binds a link, a connection, and the clock into the unit the sync
// client talks through. Sessions on one path are serialized: a session
// started while another is in flight queues behind it, which is what
// produces the paper's Condition-1 natural batching.
type Path struct {
	clock      *simclock.Clock
	link       Link
	conn       *wire.Conn
	persistent bool
	busyUntil  time.Duration
	sessions   int
	faults     *faultState
	tracer     *obs.Tracer
}

// SetTracer makes the path record one analytic span per session
// ("net.session") and per push ("net.push"). Because the path computes
// session times analytically rather than observing them, spans are
// recorded with explicit virtual start/end stamps; use a tracer built
// with obs.NewSimTracer so the stamps share the simulation timeline.
// A nil tracer (the default) records nothing.
func (p *Path) SetTracer(tr *obs.Tracer) { p.tracer = tr }

// NewPath constructs a path. persistent controls whether the underlying
// connection stays open between sessions (PC clients with notification
// channels) or is re-established per session (web and mobile access).
func NewPath(clock *simclock.Clock, link Link, conn *wire.Conn, persistent bool) *Path {
	if clock == nil || conn == nil {
		panic("netem: NewPath with nil clock or conn")
	}
	link.validate()
	return &Path{
		clock: clock, link: link, conn: conn, persistent: persistent,
		faults: newFaultState(link.Faults, clock.Now()),
	}
}

// Link returns the path's link parameters.
func (p *Path) Link() Link { return p.link }

// SetLink swaps the link parameters (used by controlled bandwidth and
// latency sweeps). It does not affect sessions already in flight.
// Swapping in a different fault profile restarts its schedule from the
// current sim time.
func (p *Path) SetLink(l Link) {
	l.validate()
	if l.Faults != p.link.Faults {
		p.faults = newFaultState(l.Faults, p.clock.Now())
	}
	p.link = l
}

// FaultStats reports the faults injected on this path so far (zero for
// fault-free links).
func (p *Path) FaultStats() FaultStats {
	if p.faults == nil {
		return FaultStats{}
	}
	return p.faults.stats
}

// Conn exposes the underlying connection (for tests and teardown).
func (p *Path) Conn() *wire.Conn { return p.conn }

// Busy reports whether a session is currently occupying the path.
func (p *Path) Busy() bool { return p.busyUntil > p.clock.Now() }

// BusyUntil reports when the path frees up (zero if idle and never used).
func (p *Path) BusyUntil() time.Duration { return p.busyUntil }

// Sessions reports how many sessions have been started on the path.
func (p *Path) Sessions() int { return p.sessions }

// Do runs a session of exchanges over the path, queueing behind any
// session in flight, and schedules done (which may be nil) at the
// session's completion time. serverTime adds fixed server-side
// processing to the session (commit latency, metadata DB work).
// It returns the scheduled completion time.
func (p *Path) Do(exchanges []Exchange, serverTime time.Duration, done func(end time.Duration)) time.Duration {
	asked := p.clock.Now()
	start := asked
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.sessions++
	at := p.open(start)
	for _, ex := range exchanges {
		if ex.UpApp < 0 || ex.DownApp < 0 {
			panic("netem: exchange with negative size")
		}
		at = p.exchange(at, ex)
	}
	at += serverTime
	if !p.persistent {
		p.conn.Close(at)
	}
	p.busyUntil = at
	end := at
	p.tracer.Record("net.session", start, end,
		obs.Int("exchanges", int64(len(exchanges))),
		obs.Int("queued_us", (start-asked).Microseconds()))
	p.clock.Post(end, func() {
		if done != nil {
			done(end)
		}
	})
	return end
}

// open ensures the connection is established at time at, paying the
// handshake when it is not, and returns the time the path is usable.
func (p *Path) open(at time.Duration) time.Duration {
	if p.conn.Established() {
		return at
	}
	up, down := p.conn.Open(at)
	at += time.Duration(wire.HandshakeRTTs) * p.link.RTT
	return at + p.link.UpTime(up) + p.link.DownTime(down)
}

// exchange runs one request/response at time at and returns its
// completion time, applying the link's fault schedule: stalls freeze
// the path, due connection drops tear it down (the exchange then pays
// a fresh handshake), and lost exchanges are retransmitted after a
// timeout with every attempt charged to the wire — which is how
// retransmission traffic reaches the capture and therefore TUE.
func (p *Path) exchange(at time.Duration, ex Exchange) time.Duration {
	attempts := 1
	if st := p.faults; st != nil {
		at = st.stallUntil(at)
		if st.dropDue(at) && p.conn.Established() {
			p.conn.Close(at)
			at = p.open(at)
		}
		attempts = st.lossAttempts()
	}
	for i := 0; i < attempts; i++ {
		cause := ex.Cause
		if i > 0 {
			// Every attempt after the first puts the same bytes on the
			// wire again: charge them to retransmit, whatever the
			// payload's own cause was.
			cause = ledger.Retransmit
		}
		up, down := p.conn.RequestCause(at, ex.UpApp, ex.DownApp, ex.Kind, cause)
		at += p.link.RTT // request/response latency
		at += p.link.UpTime(up) + p.link.DownTime(down)
		if i < attempts-1 {
			at += p.faults.profile.retryTimeout(p.link.RTT)
		}
	}
	if ex.ExtraRTTs > 0 {
		at += time.Duration(ex.ExtraRTTs) * p.link.RTT
	}
	return at
}

// Push delivers a server-initiated message (notification) to the client
// immediately, without occupying the path's session queue. It returns
// the delivery time. The connection is opened if needed.
func (p *Path) Push(app int, done func(end time.Duration)) time.Duration {
	at := p.clock.Now()
	if !p.conn.Established() {
		up, down := p.conn.Open(at)
		at += time.Duration(wire.HandshakeRTTs) * p.link.RTT
		at += p.link.UpTime(up) + p.link.DownTime(down)
	}
	p.conn.Send(at, app, capture.Down, capture.KindControl)
	start := at
	at += p.link.RTT/2 + p.link.DownTime(app)
	p.tracer.Record("net.push", start, at, obs.Int("bytes", int64(app)))
	p.clock.Post(at, func() {
		if done != nil {
			done(at)
		}
	})
	return at
}
