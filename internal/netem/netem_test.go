package netem

import (
	"testing"
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/simclock"
	"cloudsync/internal/wire"
)

func newPath(t *testing.T, link Link, persistent bool) (*Path, *capture.Capture, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	cap := capture.New()
	conn := wire.NewConn(wire.DefaultParams(), cap, capture.Flow{Src: "c", Dst: "s"})
	return NewPath(clk, link, conn, persistent), cap, clk
}

func TestLinkTimes(t *testing.T) {
	l := Custom(8_000_000, 100*time.Millisecond) // 1 MB/s
	if got := l.UpTime(1_000_000); got != time.Second {
		t.Fatalf("UpTime(1MB@1MB/s) = %v, want 1s", got)
	}
	if got := l.DownTime(500_000); got != 500*time.Millisecond {
		t.Fatalf("DownTime = %v", got)
	}
}

func TestLinkPresets(t *testing.T) {
	mn, bj := Minnesota(), Beijing()
	if mn.UpBps <= bj.UpBps {
		t.Fatal("MN should be faster than BJ")
	}
	if mn.RTT >= bj.RTT {
		t.Fatal("MN should have lower latency than BJ")
	}
}

func TestLinkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-bandwidth link did not panic")
		}
	}()
	Link{UpBps: 0, DownBps: 1, RTT: 0}.UpTime(1)
}

func TestDoHandshakeThenRequest(t *testing.T) {
	p, cap, clk := newPath(t, Minnesota(), true)
	var end time.Duration
	p.Do([]Exchange{{UpApp: 10_000, DownApp: 100, Kind: capture.KindData}}, 0,
		func(e time.Duration) { end = e })
	clk.Run()
	if end == 0 {
		t.Fatal("done callback never ran")
	}
	// At least handshake RTTs plus one exchange RTT.
	if min := time.Duration(wire.HandshakeRTTs+1) * p.Link().RTT; end < min {
		t.Fatalf("end = %v, want ≥ %v", end, min)
	}
	if cap.KindBytes(capture.KindHandshake) == 0 {
		t.Fatal("no handshake traffic recorded")
	}
	if cap.KindBytes(capture.KindData) == 0 {
		t.Fatal("no data traffic recorded")
	}
	if !p.Conn().Established() {
		t.Fatal("persistent path should keep connection open")
	}
}

func TestNonPersistentClosesConn(t *testing.T) {
	p, _, clk := newPath(t, Minnesota(), false)
	p.Do([]Exchange{{UpApp: 100, Kind: capture.KindControl}}, 0, nil)
	clk.Run()
	if p.Conn().Established() {
		t.Fatal("non-persistent path left connection open")
	}
	p.Do([]Exchange{{UpApp: 100, Kind: capture.KindControl}}, 0, nil)
	clk.Run()
	if got := p.Conn().Opens; got != 2 {
		t.Fatalf("Opens = %d, want 2 (handshake per session)", got)
	}
}

func TestPersistentReusesConn(t *testing.T) {
	p, _, clk := newPath(t, Minnesota(), true)
	for i := 0; i < 3; i++ {
		p.Do([]Exchange{{UpApp: 100, Kind: capture.KindControl}}, 0, nil)
		clk.Run()
	}
	if got := p.Conn().Opens; got != 1 {
		t.Fatalf("Opens = %d, want 1", got)
	}
}

func TestSessionsSerialize(t *testing.T) {
	p, _, clk := newPath(t, Custom(8_000_000, 100*time.Millisecond), true)
	var first, second time.Duration
	p.Do([]Exchange{{UpApp: 4_000_000, Kind: capture.KindData}}, 0,
		func(e time.Duration) { first = e })
	if !p.Busy() {
		t.Fatal("path should be busy right after Do")
	}
	// Queue a second session immediately: it must start after the first
	// completes.
	p.Do([]Exchange{{UpApp: 4_000_000, Kind: capture.KindData}}, 0,
		func(e time.Duration) { second = e })
	clk.Run()
	if second <= first {
		t.Fatalf("second session ended at %v, not after first %v", second, first)
	}
	// The second transfer alone takes 4 s at 1 MB/s; it must not overlap.
	if second-first < 3*time.Second {
		t.Fatalf("sessions overlapped: first=%v second=%v", first, second)
	}
	if p.Sessions() != 2 {
		t.Fatalf("Sessions = %d", p.Sessions())
	}
}

func TestBandwidthScalesDuration(t *testing.T) {
	var ends [2]time.Duration
	for i, bps := range []int64{1_600_000, 20_000_000} {
		p, _, clk := newPath(t, Custom(bps, 60*time.Millisecond), true)
		p.Do([]Exchange{{UpApp: 1 << 20, Kind: capture.KindData}}, 0,
			func(e time.Duration) { ends[i] = e })
		clk.Run()
	}
	if ends[0] <= ends[1] {
		t.Fatalf("slow link (%v) should take longer than fast link (%v)", ends[0], ends[1])
	}
	ratio := float64(ends[0]) / float64(ends[1])
	if ratio < 5 {
		t.Fatalf("1 MB at 1.6 vs 20 Mbps: duration ratio %.1f, want > 5", ratio)
	}
}

func TestLatencyScalesDuration(t *testing.T) {
	var ends [2]time.Duration
	for i, rtt := range []time.Duration{40 * time.Millisecond, time.Second} {
		p, _, clk := newPath(t, Custom(20_000_000, rtt), true)
		p.Do([]Exchange{
			{UpApp: 1000, Kind: capture.KindControl},
			{UpApp: 1000, Kind: capture.KindControl, ExtraRTTs: 1},
		}, 0, func(e time.Duration) { ends[i] = e })
		clk.Run()
	}
	// 5 handshake+exchange+extra RTTs at 1 s ≫ everything at 40 ms.
	if ends[1] < 5*time.Second {
		t.Fatalf("high-latency session = %v, want ≥ 5s", ends[1])
	}
	if ends[0] > time.Second {
		t.Fatalf("low-latency session = %v, want < 1s", ends[0])
	}
}

func TestServerTimeAdds(t *testing.T) {
	p1, _, clk1 := newPath(t, Minnesota(), true)
	p2, _, clk2 := newPath(t, Minnesota(), true)
	var e1, e2 time.Duration
	ex := []Exchange{{UpApp: 100, Kind: capture.KindControl}}
	p1.Do(ex, 0, func(e time.Duration) { e1 = e })
	p2.Do(ex, 2*time.Second, func(e time.Duration) { e2 = e })
	clk1.Run()
	clk2.Run()
	if d := e2 - e1; d != 2*time.Second {
		t.Fatalf("server time added %v, want 2s", d)
	}
}

func TestNegativeExchangePanics(t *testing.T) {
	p, _, _ := newPath(t, Minnesota(), true)
	defer func() {
		if recover() == nil {
			t.Fatal("negative exchange did not panic")
		}
	}()
	p.Do([]Exchange{{UpApp: -1}}, 0, nil)
}

func TestPush(t *testing.T) {
	p, cap, clk := newPath(t, Minnesota(), true)
	var end time.Duration
	p.Push(500, func(e time.Duration) { end = e })
	clk.Run()
	if end == 0 {
		t.Fatal("push callback never ran")
	}
	if cap.DownBytes() == 0 {
		t.Fatal("push recorded no downstream traffic")
	}
	if cap.Dir(capture.Down).AppBytes != 500 {
		t.Fatalf("push app bytes = %d", cap.Dir(capture.Down).AppBytes)
	}
}

func TestNewPathValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPath(nil) did not panic")
		}
	}()
	NewPath(nil, Minnesota(), nil, true)
}

func TestSetLink(t *testing.T) {
	p, _, _ := newPath(t, Minnesota(), true)
	p.SetLink(Beijing())
	if p.Link().UpBps != Beijing().UpBps {
		t.Fatal("SetLink did not apply")
	}
}
