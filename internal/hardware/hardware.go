// Package hardware models the client machines of the paper's testbed
// (Table 4). The property that matters for TUE is § 6.2's Condition 2:
// before a modification can be synchronized, the client must finish
// computing the modified file's metadata (hashing, chunk signatures,
// index bookkeeping). On slow hardware that computation takes long
// enough that subsequent modifications batch naturally, which is why
// the paper finds that "slower hardware incurs less sync traffic".
package hardware

import (
	"fmt"
	"time"
)

// Profile describes one client machine.
type Profile struct {
	// Name is the paper's machine label (M1, B2, …).
	Name string
	// CPU, MemoryGB and Disk reproduce the Table 4 description.
	CPU      string
	MemoryGB int
	Disk     string

	// HashMBps is the sustained fingerprinting throughput (rolling
	// checksums + strong hashes over the modified file).
	HashMBps float64
	// DiskMBps is the sequential read throughput feeding the hasher.
	DiskMBps float64
	// PerSyncOverhead is the fixed client-side cost per sync event:
	// watcher wake-up, index database update, request assembly.
	PerSyncOverhead time.Duration
}

// MetadataTime reports how long the machine needs to compute the
// metadata of a file of the given size — Condition 2's duration. The
// effective throughput is the slower of hashing and disk.
func (p Profile) MetadataTime(bytes int64) time.Duration {
	if p.HashMBps <= 0 || p.DiskMBps <= 0 {
		panic(fmt.Sprintf("hardware: profile %q has non-positive throughput", p.Name))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("hardware: negative size %d", bytes))
	}
	mbps := p.HashMBps
	if p.DiskMBps < mbps {
		mbps = p.DiskMBps
	}
	sec := float64(bytes) / (mbps * 1e6)
	return p.PerSyncOverhead + time.Duration(sec*float64(time.Second))
}

// String renders the Table 4 row.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%s, %d GB, %s)", p.Name, p.CPU, p.MemoryGB, p.Disk)
}

// The Table 4 machines. Bn machines have the same hardware as their Mn
// counterparts; they differ only in network location, which internal/netem
// models.

// M1 is the typical client machine: quad-core i5, 7200 RPM disk.
func M1() Profile {
	return Profile{
		Name: "M1", CPU: "Quad-core Intel i5 @ 1.70 GHz", MemoryGB: 4,
		Disk:     "7200 RPM, 500 GB",
		HashMBps: 140, DiskMBps: 110, PerSyncOverhead: 120 * time.Millisecond,
	}
}

// M2 is the outdated machine: Atom CPU, 5400 RPM disk. Its large
// per-sync overhead and slow hashing are what make Fig. 8(c)'s M2 curve
// sit below M1's.
func M2() Profile {
	return Profile{
		Name: "M2", CPU: "Intel Atom @ 1.00 GHz", MemoryGB: 1,
		Disk:     "5400 RPM, 320 GB",
		HashMBps: 28, DiskMBps: 55, PerSyncOverhead: 1100 * time.Millisecond,
	}
}

// M3 is the advanced machine: quad-core i7 with SSD.
func M3() Profile {
	return Profile{
		Name: "M3", CPU: "Quad-core Intel i7 @ 1.90 GHz", MemoryGB: 4,
		Disk:     "SSD, 250 GB",
		HashMBps: 260, DiskMBps: 450, PerSyncOverhead: 45 * time.Millisecond,
	}
}

// M4 is the Android smartphone.
func M4() Profile {
	return Profile{
		Name: "M4", CPU: "Dual-core ARM @ 1.50 GHz", MemoryGB: 1,
		Disk:     "MicroSD, 16 GB",
		HashMBps: 18, DiskMBps: 25, PerSyncOverhead: 500 * time.Millisecond,
	}
}

// B1 mirrors M1 in Beijing.
func B1() Profile { p := M1(); p.Name = "B1"; return p }

// B2 mirrors M2 in Beijing (5400 RPM, 250 GB per Table 4).
func B2() Profile { p := M2(); p.Name = "B2"; p.Disk = "5400 RPM, 250 GB"; return p }

// B3 mirrors M3 in Beijing.
func B3() Profile { p := M3(); p.Name = "B3"; return p }

// B4 mirrors M4 in Beijing (1.53 GHz per Table 4).
func B4() Profile { p := M4(); p.Name = "B4"; p.CPU = "Dual-core ARM @ 1.53 GHz"; return p }

// All returns every Table 4 machine.
func All() []Profile {
	return []Profile{M1(), M2(), M3(), M4(), B1(), B2(), B3(), B4()}
}
