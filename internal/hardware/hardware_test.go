package hardware

import (
	"strings"
	"testing"
	"time"
)

func TestMetadataTimeScalesWithSize(t *testing.T) {
	p := M1()
	small := p.MetadataTime(1 << 10)
	big := p.MetadataTime(100 << 20)
	if big <= small {
		t.Fatalf("100MB (%v) should take longer than 1KB (%v)", big, small)
	}
	// 100 MB at ~110 MB/s effective ≈ 0.9 s plus overhead.
	if big < 800*time.Millisecond || big > 2*time.Second {
		t.Fatalf("MetadataTime(100MB) = %v, want ≈ 1s", big)
	}
}

func TestMetadataTimeIncludesFixedOverhead(t *testing.T) {
	p := M1()
	if got := p.MetadataTime(0); got != p.PerSyncOverhead {
		t.Fatalf("MetadataTime(0) = %v, want %v", got, p.PerSyncOverhead)
	}
}

func TestHardwareOrdering(t *testing.T) {
	// Condition 2 must order the machines the way Fig. 8(c) does: the
	// outdated M2 takes longest, the SSD M3 shortest.
	const size = 1 << 20
	m1, m2, m3 := M1().MetadataTime(size), M2().MetadataTime(size), M3().MetadataTime(size)
	if !(m3 < m1 && m1 < m2) {
		t.Fatalf("ordering wrong: M3=%v M1=%v M2=%v", m3, m1, m2)
	}
	// M2 should be several times slower than M1 for the batching effect
	// to show.
	if m2 < 3*m1 {
		t.Fatalf("M2 (%v) should be ≫ M1 (%v)", m2, m1)
	}
}

func TestEffectiveThroughputIsMin(t *testing.T) {
	p := Profile{Name: "x", HashMBps: 100, DiskMBps: 10, PerSyncOverhead: 0}
	// 10 MB at min(100,10)=10 MB/s = 1 s.
	if got := p.MetadataTime(10 << 20); got < 900*time.Millisecond || got > 1200*time.Millisecond {
		t.Fatalf("MetadataTime = %v, want ≈ 1s (disk-bound)", got)
	}
}

func TestValidation(t *testing.T) {
	bad := Profile{Name: "bad"}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-throughput profile did not panic")
		}
	}()
	bad.MetadataTime(1)
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	M1().MetadataTime(-1)
}

func TestAllMachinesMatchTable4(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() = %d machines, want 8", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		if names[p.Name] {
			t.Fatalf("duplicate machine %q", p.Name)
		}
		names[p.Name] = true
		if p.CPU == "" || p.Disk == "" || p.MemoryGB == 0 {
			t.Fatalf("machine %q missing Table 4 fields: %+v", p.Name, p)
		}
	}
	for _, want := range []string{"M1", "M2", "M3", "M4", "B1", "B2", "B3", "B4"} {
		if !names[want] {
			t.Fatalf("missing machine %q", want)
		}
	}
}

func TestBnMirrorsMn(t *testing.T) {
	if B1().HashMBps != M1().HashMBps || B3().PerSyncOverhead != M3().PerSyncOverhead {
		t.Fatal("Bn machines should share Mn hardware parameters")
	}
}

func TestString(t *testing.T) {
	if s := M2().String(); !strings.Contains(s, "Atom") {
		t.Fatalf("String = %q", s)
	}
}
