package dedup

import (
	"crypto/md5"
	"testing"
	"testing/quick"
)

func fp(s string) Fingerprint { return md5.Sum([]byte(s)) }

func TestGranularityString(t *testing.T) {
	for g, want := range map[Granularity]string{None: "no", FullFile: "full file", Block: "block"} {
		if got := g.String(); got != want {
			t.Errorf("%d = %q, want %q", g, got, want)
		}
	}
	if Granularity(9).String() == "" {
		t.Error("unknown granularity should render")
	}
}

func TestSameUserDedup(t *testing.T) {
	ix := NewIndex(false)
	if ix.CrossUser() {
		t.Fatal("index should be per-user")
	}
	if ix.Lookup("alice", fp("a"), 100) {
		t.Fatal("empty index reported a hit")
	}
	ix.Add("alice", fp("a"), 100)
	if !ix.Lookup("alice", fp("a"), 100) {
		t.Fatal("same-user re-upload not deduplicated")
	}
	// A different user must not hit in per-user scope.
	if ix.Lookup("bob", fp("a"), 100) {
		t.Fatal("per-user index deduplicated across users")
	}
	s := ix.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesAvoided != 100 || s.BytesStored != 100 {
		t.Fatalf("byte stats = %+v", s)
	}
}

func TestCrossUserDedup(t *testing.T) {
	ix := NewIndex(true)
	ix.Add("alice", fp("a"), 100)
	if !ix.Lookup("bob", fp("a"), 100) {
		t.Fatal("cross-user index did not deduplicate across users")
	}
}

func TestAddIdempotent(t *testing.T) {
	ix := NewIndex(false)
	ix.Add("alice", fp("a"), 100)
	ix.Add("alice", fp("a"), 100)
	if ix.Unique() != 1 {
		t.Fatalf("Unique = %d, want 1", ix.Unique())
	}
	if ix.Stats().BytesStored != 100 {
		t.Fatalf("BytesStored = %d, want 100", ix.Stats().BytesStored)
	}
}

func TestUniqueAcrossScopes(t *testing.T) {
	ix := NewIndex(false)
	ix.Add("alice", fp("a"), 1)
	ix.Add("bob", fp("a"), 1)
	if ix.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2 (per-user copies)", ix.Unique())
	}
}

func TestRatioCounterEmpty(t *testing.T) {
	var rc RatioCounter
	if rc.Ratio() != 1 {
		t.Fatalf("empty Ratio = %v, want 1", rc.Ratio())
	}
	if rc.DuplicateFraction() != 0 {
		t.Fatalf("empty DuplicateFraction = %v", rc.DuplicateFraction())
	}
}

func TestRatioCounter(t *testing.T) {
	var rc RatioCounter
	rc.Add(fp("x"), 100)
	rc.Add(fp("x"), 100)
	rc.Add(fp("y"), 200)
	if rc.Before() != 400 || rc.After() != 300 {
		t.Fatalf("before/after = %d/%d", rc.Before(), rc.After())
	}
	if got := rc.Ratio(); got < 1.333 || got > 1.334 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := rc.DuplicateFraction(); got != 0.25 {
		t.Fatalf("DuplicateFraction = %v", got)
	}
}

// Property: Ratio ≥ 1 always, and feeding only unique fingerprints
// keeps it at exactly 1.
func TestPropertyRatioBounds(t *testing.T) {
	f := func(sizes []uint16, dupEvery uint8) bool {
		var rc RatioCounter
		for i, s := range sizes {
			key := i
			if dupEvery > 0 {
				key = i % int(dupEvery)
			}
			rc.Add(fp(string(rune(key))), int64(s)+1)
		}
		if rc.Ratio() < 1 {
			return false
		}
		var unique RatioCounter
		for i, s := range sizes {
			unique.Add(fp(string(rune(i))), int64(s)+1)
		}
		return unique.Ratio() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cross-user index hit-rate ≥ per-user index hit-rate on the
// same workload.
func TestPropertyCrossUserDominates(t *testing.T) {
	f := func(ops []struct {
		User byte
		Data byte
	}) bool {
		per := NewIndex(false)
		cross := NewIndex(true)
		for _, op := range ops {
			user := string(rune('a' + op.User%4))
			f := fp(string(rune(op.Data)))
			if !per.Lookup(user, f, 10) {
				per.Add(user, f, 10)
			}
			if !cross.Lookup(user, f, 10) {
				cross.Add(user, f, 10)
			}
		}
		return cross.Stats().Hits >= per.Stats().Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
