// Package dedup implements data-deduplication bookkeeping: the
// fingerprint index a cloud service consults before accepting an upload
// (§ 5.2 of the paper), and the ratio counters the trace analysis uses
// to compare deduplication granularities (Fig. 5).
//
// Granularity (full-file vs fixed block) and scope (same-user vs
// cross-user) are design choices of the service; the index itself just
// answers "has this scope already stored this fingerprint?".
package dedup

import (
	"crypto/md5"
	"fmt"
)

// Fingerprint is a content fingerprint (MD5, as in the paper's trace).
type Fingerprint = [md5.Size]byte

// Granularity is the unit at which fingerprints are computed and
// compared.
type Granularity uint8

const (
	// None disables deduplication (Google Drive, OneDrive, Box,
	// SugarSync).
	None Granularity = iota
	// FullFile deduplicates whole files (Ubuntu One).
	FullFile
	// Block deduplicates fixed-size blocks (Dropbox, 4 MB).
	Block
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case None:
		return "no"
	case FullFile:
		return "full file"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("granularity(%d)", uint8(g))
	}
}

// Stats reports index activity.
type Stats struct {
	// Hits counts lookups that found the fingerprint already stored
	// (upload avoided); Misses counts the rest.
	Hits, Misses int64
	// BytesAvoided is the payload volume dedup saved; BytesStored is
	// the unique volume accepted.
	BytesAvoided, BytesStored int64
}

// Index is a fingerprint store. The zero value is not usable; construct
// with NewIndex.
type Index struct {
	crossUser bool
	entries   map[string]map[Fingerprint]int64
	stats     Stats
}

// NewIndex returns an empty index. With crossUser set, fingerprints are
// shared across all user scopes (one user's upload dedups against
// another's, as Ubuntu One did); otherwise each user deduplicates only
// against their own data (Dropbox after it disabled cross-user dedup).
func NewIndex(crossUser bool) *Index {
	return &Index{crossUser: crossUser, entries: make(map[string]map[Fingerprint]int64)}
}

// CrossUser reports the index's scope policy.
func (ix *Index) CrossUser() bool { return ix.crossUser }

func (ix *Index) scope(user string) string {
	if ix.crossUser {
		return ""
	}
	return user
}

// Lookup reports whether the fingerprint is already stored in the
// user's scope, updating hit/miss statistics.
func (ix *Index) Lookup(user string, fp Fingerprint, size int64) bool {
	m := ix.entries[ix.scope(user)]
	if m == nil {
		ix.stats.Misses++
		return false
	}
	if _, ok := m[fp]; ok {
		ix.stats.Hits++
		ix.stats.BytesAvoided += size
		return true
	}
	ix.stats.Misses++
	return false
}

// Add stores a fingerprint in the user's scope. Adding an existing
// fingerprint is a no-op.
func (ix *Index) Add(user string, fp Fingerprint, size int64) {
	scope := ix.scope(user)
	m := ix.entries[scope]
	if m == nil {
		m = make(map[Fingerprint]int64)
		ix.entries[scope] = m
	}
	if _, ok := m[fp]; !ok {
		m[fp] = size
		ix.stats.BytesStored += size
	}
}

// Stats returns a copy of the accumulated statistics.
func (ix *Index) Stats() Stats { return ix.stats }

// Unique reports the number of distinct fingerprints stored across all
// scopes.
func (ix *Index) Unique() int {
	n := 0
	for _, m := range ix.entries {
		n += len(m)
	}
	return n
}

// RatioCounter measures the deduplication ratio of a data population:
// size of data before deduplication divided by size after, the metric
// plotted in Fig. 5. The zero value is ready to use.
type RatioCounter struct {
	seen          map[Fingerprint]bool
	before, after int64
}

// Add feeds one unit (file or block) with its fingerprint and size.
func (rc *RatioCounter) Add(fp Fingerprint, size int64) {
	if rc.seen == nil {
		rc.seen = make(map[Fingerprint]bool)
	}
	rc.before += size
	if !rc.seen[fp] {
		rc.seen[fp] = true
		rc.after += size
	}
}

// Before reports the total volume fed in.
func (rc *RatioCounter) Before() int64 { return rc.before }

// After reports the unique volume.
func (rc *RatioCounter) After() int64 { return rc.after }

// Ratio reports before/after (≥ 1). An empty counter reports 1.
func (rc *RatioCounter) Ratio() float64 {
	if rc.after == 0 {
		return 1
	}
	return float64(rc.before) / float64(rc.after)
}

// DuplicateFraction reports the share of volume that was duplicate:
// (before − after) / before. The paper's "full-file level duplication
// ratio reaches 18.8%" uses this form. An empty counter reports 0.
func (rc *RatioCounter) DuplicateFraction() float64 {
	if rc.before == 0 {
		return 0
	}
	return float64(rc.before-rc.after) / float64(rc.before)
}
