// Package dedup implements data-deduplication bookkeeping: the
// fingerprint index a cloud service consults before accepting an upload
// (§ 5.2 of the paper), and the ratio counters the trace analysis uses
// to compare deduplication granularities (Fig. 5).
//
// Granularity (full-file vs fixed block) and scope (same-user vs
// cross-user) are design choices of the service; the index itself just
// answers "has this scope already stored this fingerprint?".
package dedup

import (
	"bytes"
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Fingerprint is a content fingerprint (MD5, as in the paper's trace).
type Fingerprint = [md5.Size]byte

// Granularity is the unit at which fingerprints are computed and
// compared.
type Granularity uint8

const (
	// None disables deduplication (Google Drive, OneDrive, Box,
	// SugarSync).
	None Granularity = iota
	// FullFile deduplicates whole files (Ubuntu One).
	FullFile
	// Block deduplicates fixed-size blocks (Dropbox, 4 MB).
	Block
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case None:
		return "no"
	case FullFile:
		return "full file"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("granularity(%d)", uint8(g))
	}
}

// Stats reports index activity.
type Stats struct {
	// Hits counts lookups that found the fingerprint already stored
	// (upload avoided); Misses counts the rest.
	Hits, Misses int64
	// BytesAvoided is the payload volume dedup saved; BytesStored is
	// the unique volume accepted.
	BytesAvoided, BytesStored int64
}

// indexShards stripes the fingerprint tables so concurrent per-user
// replays don't serialize on one lock. Must be a power of two.
const indexShards = 32

type indexShard struct {
	mu sync.RWMutex
	// entries is allocated on the shard's first Add: setups are built
	// per experiment cell, so empty shards must stay free.
	entries map[string]map[Fingerprint]int64 // scope → fingerprint → size
}

// Index is a fingerprint store, safe for concurrent use. Fingerprints
// are striped across power-of-two shards keyed by the fingerprint bytes
// (MD5 output is uniform, so the stripes balance); statistics are
// plain atomic counters. The zero value is not usable; construct with
// NewIndex.
type Index struct {
	crossUser bool
	shards    [indexShards]indexShard

	hits, misses, bytesAvoided, bytesStored atomic.Int64
}

// NewIndex returns an empty index. With crossUser set, fingerprints are
// shared across all user scopes (one user's upload dedups against
// another's, as Ubuntu One did); otherwise each user deduplicates only
// against their own data (Dropbox after it disabled cross-user dedup).
func NewIndex(crossUser bool) *Index {
	return &Index{crossUser: crossUser}
}

// CrossUser reports the index's scope policy.
func (ix *Index) CrossUser() bool { return ix.crossUser }

func (ix *Index) scope(user string) string {
	if ix.crossUser {
		return ""
	}
	return user
}

func (ix *Index) shard(fp Fingerprint) *indexShard {
	return &ix.shards[binary.LittleEndian.Uint64(fp[:8])&(indexShards-1)]
}

// Lookup reports whether the fingerprint is already stored in the
// user's scope, updating hit/miss statistics.
func (ix *Index) Lookup(user string, fp Fingerprint, size int64) bool {
	sh := ix.shard(fp)
	sh.mu.RLock()
	_, ok := sh.entries[ix.scope(user)][fp]
	sh.mu.RUnlock()
	if ok {
		ix.hits.Add(1)
		ix.bytesAvoided.Add(size)
		return true
	}
	ix.misses.Add(1)
	return false
}

// Add stores a fingerprint in the user's scope. Adding an existing
// fingerprint is a no-op.
func (ix *Index) Add(user string, fp Fingerprint, size int64) {
	scope := ix.scope(user)
	sh := ix.shard(fp)
	sh.mu.Lock()
	if sh.entries == nil {
		sh.entries = make(map[string]map[Fingerprint]int64)
	}
	m := sh.entries[scope]
	if m == nil {
		m = make(map[Fingerprint]int64)
		sh.entries[scope] = m
	}
	_, dup := m[fp]
	if !dup {
		m[fp] = size
	}
	sh.mu.Unlock()
	if !dup {
		ix.bytesStored.Add(size)
	}
}

// IndexEntry is one stored fingerprint as enumerated by Entries. Scope
// is the internal deduplication scope: the user name for per-user
// indexes, "" for a cross-user index. Feeding an entry's scope back
// through Add on an index with the same scope policy reproduces the
// entry exactly — which is how the durable sync server snapshots and
// restores its index.
type IndexEntry struct {
	Scope string
	FP    Fingerprint
	Size  int64
}

// Entries enumerates every stored fingerprint in a deterministic order
// (scope, then fingerprint bytes). It takes each shard lock briefly;
// callers wanting a consistent cut hold their own state lock around it.
func (ix *Index) Entries() []IndexEntry {
	var out []IndexEntry
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		for scope, m := range sh.entries {
			for fp, size := range m {
				out = append(out, IndexEntry{Scope: scope, FP: fp, Size: size})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return bytes.Compare(out[i].FP[:], out[j].FP[:]) < 0
	})
	return out
}

// Stats returns a copy of the accumulated statistics.
func (ix *Index) Stats() Stats {
	return Stats{
		Hits:         ix.hits.Load(),
		Misses:       ix.misses.Load(),
		BytesAvoided: ix.bytesAvoided.Load(),
		BytesStored:  ix.bytesStored.Load(),
	}
}

// Unique reports the number of distinct fingerprints stored across all
// scopes.
func (ix *Index) Unique() int {
	n := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		for _, m := range sh.entries {
			n += len(m)
		}
		sh.mu.RUnlock()
	}
	return n
}

// RatioCounter measures the deduplication ratio of a data population:
// size of data before deduplication divided by size after, the metric
// plotted in Fig. 5. The zero value is ready to use.
type RatioCounter struct {
	seen          map[Fingerprint]struct{}
	before, after int64
}

// Reserve pre-sizes the fingerprint set for n expected units, so
// callers that know the population size (block counts derived from file
// sizes) avoid incremental map growth.
func (rc *RatioCounter) Reserve(n int) {
	if rc.seen == nil {
		rc.seen = make(map[Fingerprint]struct{}, n)
	}
}

// Add feeds one unit (file or block) with its fingerprint and size.
func (rc *RatioCounter) Add(fp Fingerprint, size int64) {
	if rc.seen == nil {
		rc.seen = make(map[Fingerprint]struct{})
	}
	rc.before += size
	if _, dup := rc.seen[fp]; !dup {
		rc.seen[fp] = struct{}{}
		rc.after += size
	}
}

// Before reports the total volume fed in.
func (rc *RatioCounter) Before() int64 { return rc.before }

// After reports the unique volume.
func (rc *RatioCounter) After() int64 { return rc.after }

// Ratio reports before/after (≥ 1). An empty counter reports 1.
func (rc *RatioCounter) Ratio() float64 {
	if rc.after == 0 {
		return 1
	}
	return float64(rc.before) / float64(rc.after)
}

// DuplicateFraction reports the share of volume that was duplicate:
// (before − after) / before. The paper's "full-file level duplication
// ratio reaches 18.8%" uses this form. An empty counter reports 0.
func (rc *RatioCounter) DuplicateFraction() float64 {
	if rc.before == 0 {
		return 0
	}
	return float64(rc.before-rc.after) / float64(rc.before)
}
