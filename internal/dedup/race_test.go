package dedup

import (
	"fmt"
	"sync"
	"testing"
)

// TestIndexConcurrent hammers the sharded index from many goroutines —
// meaningful under -race — and checks the aggregate invariants that
// must hold regardless of interleaving.
func TestIndexConcurrent(t *testing.T) {
	for _, crossUser := range []bool{false, true} {
		t.Run(fmt.Sprintf("crossUser=%v", crossUser), func(t *testing.T) {
			ix := NewIndex(crossUser)
			const (
				workers  = 8
				perUser  = 400
				distinct = 100 // each worker reuses fingerprints 4×
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					user := fmt.Sprintf("u%d", w)
					for i := 0; i < perUser; i++ {
						fp := fingerprint(w, i%distinct)
						if !ix.Lookup(user, fp, 10) {
							ix.Add(user, fp, 10)
						}
					}
				}(w)
			}
			wg.Wait()

			if got := ix.Unique(); got != workers*distinct {
				t.Fatalf("Unique = %d, want %d", got, workers*distinct)
			}
			s := ix.Stats()
			if s.Hits+s.Misses != workers*perUser {
				t.Fatalf("hits %d + misses %d != %d lookups", s.Hits, s.Misses, workers*perUser)
			}
			if s.BytesStored != int64(workers*distinct)*10 {
				t.Fatalf("BytesStored = %d, want %d", s.BytesStored, workers*distinct*10)
			}
		})
	}
}

// TestIndexConcurrentSharedFingerprints has every worker insert the SAME
// fingerprint population: with cross-user scope the index must store each
// fingerprint exactly once no matter which worker wins the race.
func TestIndexConcurrentSharedFingerprints(t *testing.T) {
	ix := NewIndex(true)
	const workers, distinct = 8, 256
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", w)
			for i := 0; i < distinct; i++ {
				fp := fingerprint(0, i)
				if !ix.Lookup(user, fp, 7) {
					ix.Add(user, fp, 7)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := ix.Unique(); got != distinct {
		t.Fatalf("Unique = %d, want %d", got, distinct)
	}
	if s := ix.Stats(); s.BytesStored != distinct*7 {
		t.Fatalf("BytesStored = %d, want %d", s.BytesStored, distinct*7)
	}
}

func fingerprint(w, i int) Fingerprint {
	var fp Fingerprint
	fp[0] = byte(w)
	fp[1] = byte(i)
	fp[2] = byte(i >> 8)
	// Spread across shards: the shard key reads the first 8 bytes.
	fp[7] = byte(w*31 + i)
	return fp
}
