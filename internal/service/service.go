// Package service encodes the six commercial cloud storage services
// the paper studies — Google Drive, OneDrive, Dropbox, Box, Ubuntu One,
// and SugarSync — as parameterisations of the generic client/cloud
// engine, one per access method.
//
// The design-choice fields come straight from the paper's reverse
// engineering: sync granularity from § 4.3 (Fig. 4), BDS support from
// Table 7, compression behaviour from Table 8, deduplication
// granularity and scope from Table 9, and the fixed sync deferments
// from § 6.1 (Google Drive ≈ 4.2 s, SugarSync ≈ 6 s, OneDrive ≈
// 10.5 s). The per-sync metadata chatter and payload expansion factors
// are calibrated so simulated traffic for the canonical single-file
// operations lands near Table 6's measurements.
package service

import (
	"fmt"
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/client"
	"cloudsync/internal/cloud"
	"cloudsync/internal/comp"
	"cloudsync/internal/dedup"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/hardware"
	"cloudsync/internal/netem"
	"cloudsync/internal/obs"
	"cloudsync/internal/simclock"
	"cloudsync/internal/vfs"
	"cloudsync/internal/wire"
)

// Name identifies a service.
type Name uint8

const (
	// GoogleDrive is Google Drive.
	GoogleDrive Name = iota
	// OneDrive is Microsoft OneDrive (formerly SkyDrive).
	OneDrive
	// Dropbox is Dropbox.
	Dropbox
	// Box is Box.
	Box
	// UbuntuOne is Canonical's Ubuntu One.
	UbuntuOne
	// SugarSync is SugarSync.
	SugarSync
)

// String names the service as the paper's tables do.
func (n Name) String() string {
	switch n {
	case GoogleDrive:
		return "Google Drive"
	case OneDrive:
		return "OneDrive"
	case Dropbox:
		return "Dropbox"
	case Box:
		return "Box"
	case UbuntuOne:
		return "Ubuntu One"
	case SugarSync:
		return "SugarSync"
	case Reference:
		return "Reference"
	default:
		return fmt.Sprintf("service(%d)", uint8(n))
	}
}

// All returns the six services in the paper's table order.
func All() []Name {
	return []Name{GoogleDrive, OneDrive, Dropbox, Box, UbuntuOne, SugarSync}
}

// AccessMethods returns the three access methods in table order.
func AccessMethods() []client.AccessMethod {
	return []client.AccessMethod{client.PC, client.Web, client.Mobile}
}

// CloudConfig returns the service's cloud-side design choices.
func CloudConfig(n Name) cloud.Config {
	switch n {
	case GoogleDrive:
		return cloud.Config{ProcessingTime: 1500 * time.Millisecond}
	case OneDrive:
		return cloud.Config{ProcessingTime: 1500 * time.Millisecond}
	case Dropbox:
		// Table 9: 4 MB block dedup for the same user, none cross-user.
		// Table 8 DN: content served compressed to every access method.
		return cloud.Config{
			DedupGranularity: dedup.Block,
			DedupBlockSize:   4 << 20,
			DedupCrossUser:   false,
			StoreCompression: comp.High,
			ProcessingTime:   500 * time.Millisecond,
		}
	case Box:
		return cloud.Config{ProcessingTime: 5 * time.Second}
	case UbuntuOne:
		// Table 9: full-file dedup across users. Table 8 DN: compressed
		// downloads for PC and web.
		return cloud.Config{
			DedupGranularity: dedup.FullFile,
			DedupCrossUser:   true,
			StoreCompression: comp.High,
			ProcessingTime:   2500 * time.Millisecond,
		}
	case SugarSync:
		return cloud.Config{ProcessingTime: 1500 * time.Millisecond}
	default:
		panic(fmt.Sprintf("service: unknown service %d", n))
	}
}

// FixedDeferment returns the fixed sync deferment § 6.1 measures for
// the service's PC client, or 0 when the service syncs immediately.
func FixedDeferment(n Name) time.Duration {
	switch n {
	case GoogleDrive:
		return 4200 * time.Millisecond
	case OneDrive:
		return 10500 * time.Millisecond
	case SugarSync:
		return 6 * time.Second
	default:
		return 0
	}
}

// Persistent reports whether the access method keeps its connection to
// the cloud open between sync sessions. PC clients of services with
// lightweight custom protocols (Ubuntu One) or long-lived notification
// channels (Dropbox) reuse connections; web and mobile access
// re-establishes HTTPS per operation.
func Persistent(n Name, access client.AccessMethod) bool {
	if access != client.PC {
		return false
	}
	return n == Dropbox || n == UbuntuOne
}

// calib is the calibrated control-chatter model for one service/access
// pair: sessUp/sessDown are paid once per sync session, fileUp/fileDown
// once per file, and shared says whether concurrently pending files
// share a session (connection + session chatter). The split is derived
// jointly from Table 6 (single-file creations) and Table 7 (100-file
// batches): Box amortizes batches heavily, OneDrive moderately, while
// Google Drive and SugarSync pay nearly full price per file.
type calib struct {
	sessUp, sessDown int
	fileUp, fileDown int
	shared           bool
}

func chatter(n Name, access client.AccessMethod) calib {
	type key struct {
		n Name
		a client.AccessMethod
	}
	m := map[key]calib{
		{GoogleDrive, client.PC}:     {350, 150, 150, 50, false},
		{GoogleDrive, client.Web}:    {0, 0, 0, 0, false},
		{GoogleDrive, client.Mobile}: {15800, 6800, 0, 0, false},
		{OneDrive, client.PC}:        {0, 0, 7300, 3200, true},
		{OneDrive, client.Web}:       {0, 0, 13000, 5500, true},
		{OneDrive, client.Mobile}:    {2100, 900, 11600, 4900, true},
		{Dropbox, client.PC}:         {24500, 10500, 8400, 3600, true},
		{Dropbox, client.Web}:        {12200, 5300, 2800, 1200, false},
		{Dropbox, client.Mobile}:     {4400, 1900, 1600, 700, false},
		{Box, client.PC}:             {25000, 11000, 6600, 2900, true},
		{Box, client.Web}:            {11600, 5000, 20300, 8700, true},
		{Box, client.Mobile}:         {4600, 2000, 0, 0, false},
		{UbuntuOne, client.PC}:       {0, 0, 70, 30, true},
		{UbuntuOne, client.Web}:      {19600, 8400, 0, 0, false},
		{UbuntuOne, client.Mobile}:   {7400, 3200, 0, 0, false},
		{SugarSync, client.PC}:       {200, 100, 1500, 700, false},
		{SugarSync, client.Web}:      {15100, 6500, 700, 300, false},
		{SugarSync, client.Mobile}:   {6400, 2800, 8700, 3700, true},
	}
	v, ok := m[key{n, access}]
	if !ok {
		panic(fmt.Sprintf("service: no chatter calibration for %v/%v", n, access))
	}
	return v
}

// expansion is the service's payload framing expansion factor,
// calibrated from Table 6's large-file rows.
func expansion(n Name) float64 {
	switch n {
	case GoogleDrive:
		return 1.06
	case OneDrive:
		return 1.08
	case Dropbox:
		return 1.18
	case Box:
		return 1.01
	case UbuntuOne:
		return 1.06
	case SugarSync:
		return 1.08
	default:
		panic(fmt.Sprintf("service: unknown service %d", n))
	}
}

// ClientConfig returns the client-side design choices for a service and
// access method. The defer policy is freshly constructed per call, so
// configs are independent.
func ClientConfig(n Name, access client.AccessMethod) client.Config {
	cal := chatter(n, access)
	cfg := client.Config{
		User:                "alice",
		Device:              "M1",
		Access:              access,
		FullFileSync:        true,
		UploadCompression:   comp.None,
		DownloadCompression: comp.None,
		Defer:               deferpolicy.None{},
		Hardware:            hardware.M1(),
		MetaPerSyncUp:       cal.sessUp,
		MetaPerSyncDown:     cal.sessDown,
		MetaPerFileUp:       cal.fileUp,
		MetaPerFileDown:     cal.fileDown,
		SharedSession:       cal.shared,
		ExtraRTTs:           1,
		PayloadExpansion:    expansion(n),
	}
	if access == client.PC {
		if t := FixedDeferment(n); t > 0 {
			cfg.Defer = deferpolicy.Fixed{T: t}
		}
	}
	switch n {
	case Dropbox:
		cfg.ExtraRTTs = 3
		// § 4.3: IDS on the PC client only; the paper estimates the
		// granularity at ≈ 10 KB.
		if access == client.PC {
			cfg.FullFileSync = false
			cfg.ChunkSize = 10 << 10
		}
		// Table 8 UP: moderate compression on PC, low on mobile, none
		// via browser; DN: compressed for every access method.
		switch access {
		case client.PC:
			cfg.UploadCompression = comp.Moderate
			cfg.BDS = true
		case client.Web:
			cfg.BDS = true
			cfg.BundleSize = 6
		case client.Mobile:
			cfg.UploadCompression = comp.Low
			cfg.BDS = true
			cfg.BundleSize = 7
		}
		cfg.DownloadCompression = comp.High
		// Table 9: dedup via PC client and mobile app, not web.
		cfg.UseDedup = access != client.Web
	case SugarSync:
		// § 4.3: IDS on the PC client; granularity is coarse.
		if access == client.PC {
			cfg.FullFileSync = false
			cfg.ChunkSize = 256 << 10
		}
	case UbuntuOne:
		switch access {
		case client.PC:
			cfg.UploadCompression = comp.Moderate
			cfg.BDS = true
			cfg.DownloadCompression = comp.High
		case client.Web:
			cfg.BDS = true
			cfg.BundleSize = 10
			cfg.DownloadCompression = comp.High
		case client.Mobile:
			cfg.UploadCompression = comp.Low
			// Table 8 DN: Ubuntu One mobile downloads uncompressed.
		}
		cfg.UseDedup = access != client.Web
	case Box:
		cfg.ExtraRTTs = 2
	}
	return cfg
}

// Options customizes a Setup.
type Options struct {
	// Link is the network path (default: Minnesota).
	Link netem.Link
	// Hardware is the client machine (default: M1).
	Hardware hardware.Profile
	// User overrides the account name (default: "alice").
	User string
	// Defer overrides the service's deferment policy (for the ASD and
	// UDS experiments). Nil keeps the service default.
	Defer deferpolicy.Policy
	// Cloud attaches the client to an existing cloud instance (and its
	// dedup index) instead of creating a fresh one — how cross-user
	// experiments share state. The existing cloud's clock must be the
	// same Setup's clock.
	Cloud *cloud.Cloud
	// Clock and Capture attach to an existing simulation; nil creates
	// fresh ones.
	Clock   *simclock.Clock
	Capture *capture.Capture
	// AutoSyncRemote subscribes the client to cloud change
	// notifications so other devices' commits are mirrored into its
	// folder (multi-device sync).
	AutoSyncRemote bool
	// Tracer, when set, is threaded into the client engine and the
	// network path so the simulation records sync-round, session, and
	// path spans. Build it with obs.NewSimTracer(clock.Now) on the same
	// clock the Setup runs on (see Setup.Clock). Nil disables tracing.
	Tracer *obs.Tracer
}

// Setup is a ready-to-run single-client simulation of one service.
type Setup struct {
	Service Name
	Access  client.AccessMethod
	Clock   *simclock.Clock
	Capture *capture.Capture
	FS      *vfs.FS
	Cloud   *cloud.Cloud
	Client  *client.Client
	Path    *netem.Path
}

// NewSetup builds a simulation of the given service and access method.
// The Reference pseudo-service is PC-only and routes to
// NewReferenceSetup.
func NewSetup(n Name, access client.AccessMethod, opts Options) *Setup {
	if n == Reference {
		if access != client.PC {
			panic("service: the reference design models a PC client only")
		}
		return NewReferenceSetup(opts)
	}
	return assemble(n, access, CloudConfig(n), ClientConfig(n, access),
		Persistent(n, access), opts)
}

// assemble wires one client/cloud pair into a runnable Setup. It
// applies the Options defaults and, for persistent connections,
// pre-establishes the connection: a running PC client has its
// long-lived connection up before any measured operation (the paper's
// captures see Ubuntu One's storage-protocol session and Dropbox's
// notification channel already established). When this Setup owns its
// capture, the startup handshake is dropped from the counters.
func assemble(n Name, access client.AccessMethod, ccfg cloud.Config, cfg client.Config, persistent bool, opts Options) *Setup {
	if opts.Link == (netem.Link{}) {
		opts.Link = netem.Minnesota()
	}
	if opts.Hardware.HashMBps == 0 {
		opts.Hardware = hardware.M1()
	}
	if opts.User == "" {
		opts.User = "alice"
	}
	clk := opts.Clock
	if clk == nil {
		clk = simclock.New()
	}
	cap := opts.Capture
	if cap == nil {
		cap = capture.New()
	}
	cl := opts.Cloud
	if cl == nil {
		cl = cloud.New(ccfg)
	}
	cfg.User = opts.User
	cfg.Hardware = opts.Hardware
	cfg.Device = opts.Hardware.Name
	if opts.Defer != nil {
		cfg.Defer = opts.Defer
	}
	cfg.AutoSyncRemote = opts.AutoSyncRemote
	cfg.Tracer = opts.Tracer
	flow := capture.Flow{
		Src: capture.Endpoint("client:" + opts.User + "@" + opts.Hardware.Name),
		Dst: capture.Endpoint("cloud:" + n.String()),
	}
	conn := wire.NewConn(wire.DefaultParams(), cap, flow)
	path := netem.NewPath(clk, opts.Link, conn, persistent)
	path.SetTracer(opts.Tracer)
	if persistent {
		conn.Open(clk.Now())
		if opts.Capture == nil {
			cap.Reset()
		}
	}
	fs := vfs.New(clk)
	c := client.New(cfg, clk, fs, cl, path)
	return &Setup{
		Service: n, Access: access,
		Clock: clk, Capture: cap, FS: fs, Cloud: cl, Client: c, Path: path,
	}
}
