package service

import (
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/cloud"
	"cloudsync/internal/comp"
	"cloudsync/internal/dedup"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/delta"
	"cloudsync/internal/hardware"
)

// Reference is the pseudo-service implementing every recommendation
// the paper makes to providers. It is not one of the six measured
// services; it exists so the design guidance can be evaluated on the
// same workloads (the "reference" artifact of cmd/tuebench).
const Reference = Name(255)

// ReferenceCloudConfig is the cloud side of the reference design —
// full-file deduplication across users (§ 5.2: "supporting full-file
// deduplication is basically sufficient"), content compressed at rest
// and on downloads (§ 5.1), and a fast commit path.
func ReferenceCloudConfig() cloud.Config {
	return cloud.Config{
		DedupGranularity: dedup.FullFile,
		DedupCrossUser:   true,
		StoreCompression: comp.High,
		ProcessingTime:   300 * time.Millisecond,
	}
}

// ReferenceClientConfig is the client side of the reference design:
// incremental data sync (§ 4.3), batched data sync of creations
// (§ 4.1), moderate upload compression (§ 5.1), dedup probing, the
// adaptive sync defer of § 6.1, and a lean control protocol over a
// persistent connection.
func ReferenceClientConfig() client.Config {
	return client.Config{
		User:                "alice",
		Device:              "M1",
		Access:              client.PC,
		FullFileSync:        false,
		ChunkSize:           delta.DefaultBlockSize,
		UploadCompression:   comp.Moderate,
		DownloadCompression: comp.High,
		UseDedup:            true,
		BDS:                 true,
		Defer:               deferpolicy.NewASD(500*time.Millisecond, 45*time.Second),
		Hardware:            hardware.M1(),
		SharedSession:       true,
		ExtraRTTs:           1,
		PayloadExpansion:    1.02,
	}
}

// NewReferenceSetup builds a simulation of the reference design. The
// same Options as NewSetup apply; the Defer option overrides ASD.
func NewReferenceSetup(opts Options) *Setup {
	return assemble(Reference, client.PC, ReferenceCloudConfig(), ReferenceClientConfig(), true, opts)
}
