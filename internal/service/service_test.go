package service

import (
	"testing"
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/netem"
)

func TestNames(t *testing.T) {
	if len(All()) != 6 {
		t.Fatalf("All() = %d services, want 6", len(All()))
	}
	seen := map[string]bool{}
	for _, n := range All() {
		s := n.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if Name(99).String() == "" {
		t.Error("unknown name should render")
	}
	if len(AccessMethods()) != 3 {
		t.Fatal("want 3 access methods")
	}
}

func TestCloudConfigsMatchTable9(t *testing.T) {
	if CloudConfig(Dropbox).DedupGranularity != dedup.Block ||
		CloudConfig(Dropbox).DedupBlockSize != 4<<20 ||
		CloudConfig(Dropbox).DedupCrossUser {
		t.Fatal("Dropbox dedup config wrong (Table 9: 4MB same-user)")
	}
	if CloudConfig(UbuntuOne).DedupGranularity != dedup.FullFile ||
		!CloudConfig(UbuntuOne).DedupCrossUser {
		t.Fatal("Ubuntu One dedup config wrong (Table 9: full-file cross-user)")
	}
	for _, n := range []Name{GoogleDrive, OneDrive, Box, SugarSync} {
		if CloudConfig(n).DedupGranularity != dedup.None {
			t.Fatalf("%v should not deduplicate", n)
		}
	}
}

func TestFixedDefermentsMatchSection61(t *testing.T) {
	cases := map[Name]time.Duration{
		GoogleDrive: 4200 * time.Millisecond,
		OneDrive:    10500 * time.Millisecond,
		SugarSync:   6 * time.Second,
		Dropbox:     0,
		Box:         0,
		UbuntuOne:   0,
	}
	for n, want := range cases {
		if got := FixedDeferment(n); got != want {
			t.Errorf("%v deferment = %v, want %v", n, got, want)
		}
	}
}

func TestSyncGranularityMatchesSection43(t *testing.T) {
	// Only Dropbox and SugarSync PC clients use IDS; every web and
	// mobile client is full-file.
	for _, n := range All() {
		for _, a := range AccessMethods() {
			cfg := ClientConfig(n, a)
			wantIDS := a == client.PC && (n == Dropbox || n == SugarSync)
			if gotIDS := !cfg.FullFileSync; gotIDS != wantIDS {
				t.Errorf("%v/%v: IDS = %v, want %v", n, a, gotIDS, wantIDS)
			}
		}
	}
	if ClientConfig(Dropbox, client.PC).ChunkSize != 10<<10 {
		t.Error("Dropbox PC chunk size should be ≈ 10 KB (§ 4.3 estimate)")
	}
}

func TestBDSMatchesTable7(t *testing.T) {
	// Only Dropbox and Ubuntu One implement BDS.
	for _, n := range All() {
		cfg := ClientConfig(n, client.PC)
		want := n == Dropbox || n == UbuntuOne
		if cfg.BDS != want {
			t.Errorf("%v PC BDS = %v, want %v", n, cfg.BDS, want)
		}
	}
	// Partial BDS (limited bundles) on Dropbox web/mobile and Ubuntu
	// One web.
	if ClientConfig(Dropbox, client.Web).BundleSize == 0 {
		t.Error("Dropbox web should use limited bundles")
	}
	if ClientConfig(UbuntuOne, client.Mobile).BDS {
		t.Error("Ubuntu One mobile should not bundle")
	}
}

func TestCompressionMatchesTable8(t *testing.T) {
	// No web client compresses uploads.
	for _, n := range All() {
		if ClientConfig(n, client.Web).UploadCompression.String() != "none" {
			t.Errorf("%v web upload compression should be none", n)
		}
	}
	// Google Drive, OneDrive, Box, SugarSync never compress.
	for _, n := range []Name{GoogleDrive, OneDrive, Box, SugarSync} {
		for _, a := range AccessMethods() {
			cfg := ClientConfig(n, a)
			if cfg.UploadCompression.String() != "none" || cfg.DownloadCompression.String() != "none" {
				t.Errorf("%v/%v should not compress", n, a)
			}
		}
	}
	// Dropbox compresses on every access method's downloads.
	for _, a := range AccessMethods() {
		if ClientConfig(Dropbox, a).DownloadCompression.String() == "none" {
			t.Errorf("Dropbox %v downloads should be compressed", a)
		}
	}
	// Ubuntu One mobile downloads are uncompressed (Table 8 DN: 10.6).
	if ClientConfig(UbuntuOne, client.Mobile).DownloadCompression.String() != "none" {
		t.Error("Ubuntu One mobile downloads should be uncompressed")
	}
}

func TestDedupByAccessMatchesTable9(t *testing.T) {
	// Web-based sync does not deduplicate for any service.
	for _, n := range All() {
		if ClientConfig(n, client.Web).UseDedup {
			t.Errorf("%v web should not dedup", n)
		}
	}
	for _, a := range []client.AccessMethod{client.PC, client.Mobile} {
		if !ClientConfig(Dropbox, a).UseDedup {
			t.Errorf("Dropbox %v should dedup", a)
		}
		if !ClientConfig(UbuntuOne, a).UseDedup {
			t.Errorf("Ubuntu One %v should dedup", a)
		}
	}
}

func TestPersistentConnections(t *testing.T) {
	if !Persistent(Dropbox, client.PC) || !Persistent(UbuntuOne, client.PC) {
		t.Fatal("Dropbox and Ubuntu One PC clients keep persistent connections")
	}
	if Persistent(GoogleDrive, client.PC) {
		t.Fatal("Google Drive PC is modeled as per-sync connections")
	}
	for _, n := range All() {
		if Persistent(n, client.Web) || Persistent(n, client.Mobile) {
			t.Fatalf("%v web/mobile should not be persistent", n)
		}
	}
}

// creationTraffic runs Experiment 1 for one service/access/size.
func creationTraffic(t *testing.T, n Name, a client.AccessMethod, size int64) int64 {
	t.Helper()
	s := NewSetup(n, a, Options{})
	if err := s.FS.Create("f", content.Random(size, 42)); err != nil {
		t.Fatal(err)
	}
	s.Clock.Run()
	return s.Capture.TotalBytes()
}

func TestTable6OneByteCalibration(t *testing.T) {
	// Paper Table 6, PC client, 1-byte file (bytes). The model should
	// land within a factor ≈ 1.6 of each measurement, and preserve the
	// ordering (Ubuntu One cheapest, Box most expensive).
	want := map[Name]int64{
		GoogleDrive: 9 << 10,
		OneDrive:    19 << 10,
		Dropbox:     38 << 10,
		Box:         55 << 10,
		UbuntuOne:   2 << 10,
		SugarSync:   9 << 10,
	}
	got := map[Name]int64{}
	for n, w := range want {
		g := creationTraffic(t, n, client.PC, 1)
		got[n] = g
		lo, hi := w*5/8, w*8/5
		if g < lo || g > hi {
			t.Errorf("%v PC 1B traffic = %d, want ≈ %d", n, g, w)
		}
	}
	if !(got[UbuntuOne] < got[GoogleDrive] && got[GoogleDrive] < got[Dropbox] && got[Dropbox] < got[Box]) {
		t.Errorf("ordering violated: %v", got)
	}
}

func TestTable6TenMBCalibration(t *testing.T) {
	// 10 MB compressed-file creation: total/size ratios from Table 6's
	// PC column (1.06–1.25).
	const size = 10 << 20
	for _, n := range All() {
		g := creationTraffic(t, n, client.PC, size)
		ratio := float64(g) / float64(size)
		if ratio < 1.0 || ratio > 1.35 {
			t.Errorf("%v PC 10MB ratio = %.3f, want ≈ 1.05–1.30", n, ratio)
		}
	}
}

func TestWebAndMobileOverheadsPlausible(t *testing.T) {
	// Every web/mobile 1-byte creation costs 6 K–60 K (Table 6 band).
	for _, n := range All() {
		for _, a := range []client.AccessMethod{client.Web, client.Mobile} {
			g := creationTraffic(t, n, a, 1)
			if g < 6_000 || g > 64_000 {
				t.Errorf("%v/%v 1B traffic = %d, want within Table 6's 6K–60K band", n, a, g)
			}
		}
	}
}

func TestSetupOptions(t *testing.T) {
	s := NewSetup(Dropbox, client.PC, Options{
		Link:  netem.Beijing(),
		User:  "bob",
		Defer: deferpolicy.NewASD(500*time.Millisecond, time.Minute),
	})
	if s.Path.Link().UpBps != netem.Beijing().UpBps {
		t.Fatal("link option not applied")
	}
	if s.Client.Config().User != "bob" {
		t.Fatal("user option not applied")
	}
	if s.Client.Config().Defer.Name() == "none" {
		t.Fatal("defer override not applied")
	}
}

func TestSharedCloudAcrossUsers(t *testing.T) {
	alice := NewSetup(UbuntuOne, client.PC, Options{User: "alice"})
	blob := content.Random(1<<20, 7)
	alice.FS.Create("f", blob)
	alice.Clock.Run()

	bob := NewSetup(UbuntuOne, client.PC, Options{
		User:    "bob",
		Cloud:   alice.Cloud,
		Clock:   alice.Clock,
		Capture: alice.Capture,
	})
	m := alice.Capture.Mark()
	bob.FS.Create("f", content.Random(1<<20, 7))
	alice.Clock.Run()
	up, down, _ := alice.Capture.Since(m)
	// Ubuntu One dedups across users: bob's identical upload is cheap.
	if total := up + down; total > 50_000 {
		t.Fatalf("cross-user duplicate upload cost %d, want control traffic only", total)
	}
}
