// Package client implements the sync client engine: the state machine
// that watches the sync folder, defers and batches updates, composes
// sync sessions, and puts bytes on the network path.
//
// Every design choice the paper measures is a Config field: sync
// granularity (full-file vs chunked IDS), upload compression level,
// deduplication participation, batched data sync (BDS) of small-file
// creations, and the sync-deferment policy. The engine also reproduces
// the two natural-batching conditions of § 6.2: a new modification is
// synchronized only when the previous session has completed
// (Condition 1 — enforced by serializing sessions on the path and by
// the in-flight check) and when the client has finished computing the
// modified files' metadata (Condition 2 — the hardware profile's
// metadata time elapses between the sync trigger and the dispatch, and
// updates landing in that window join the batch).
package client

import (
	"fmt"
	"sort"
	"time"

	"cloudsync/internal/chunker"
	"cloudsync/internal/cloud"
	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/hardware"
	"cloudsync/internal/netem"
	"cloudsync/internal/obs"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/protocol"
	"cloudsync/internal/simclock"
	"cloudsync/internal/vfs"

	capturepkg "cloudsync/internal/capture"
)

// AccessMethod is how the user reaches the service (§ 3.2): native PC
// client, web browser, or mobile app.
type AccessMethod uint8

const (
	// PC is the native desktop client.
	PC AccessMethod = iota
	// Web is browser-based access.
	Web
	// Mobile is the smartphone app.
	Mobile
)

// String names the access method.
func (a AccessMethod) String() string {
	switch a {
	case PC:
		return "PC client"
	case Web:
		return "Web-based"
	case Mobile:
		return "Mobile app"
	default:
		return fmt.Sprintf("access(%d)", uint8(a))
	}
}

// Config selects the client-side design choices.
type Config struct {
	User   string
	Device string
	Access AccessMethod

	// FullFileSync uploads the whole file on any modification; when
	// false the client performs incremental data sync at ChunkSize
	// granularity.
	FullFileSync bool
	ChunkSize    int

	// UploadCompression is applied to outgoing content;
	// DownloadCompression is the strongest level the client can accept
	// on downloads.
	UploadCompression   comp.Level
	DownloadCompression comp.Level

	// UseDedup lets the client compute and send content fingerprints so
	// the cloud can deduplicate (web access never does).
	UseDedup bool

	// BDS enables batched data sync of file creations; BundleSize caps
	// how many creations share one bundle (0 = unlimited). Partial BDS
	// implementations (Dropbox web/mobile) use small bundles.
	BDS        bool
	BundleSize int

	// Defer is the sync-deferment policy.
	Defer deferpolicy.Policy

	// Hardware drives Condition 2's metadata-computation time.
	Hardware hardware.Profile

	// MetaPerSyncUp/Down model the service-specific control chatter
	// paid once per sync session (login, listing, status), and
	// MetaPerFileUp/Down the chatter paid per file within a session.
	// The split is what makes some services amortize batches (Box,
	// OneDrive) while others pay full price per file (Google Drive,
	// SugarSync); both are calibrated from Tables 6 and 7.
	MetaPerSyncUp   int
	MetaPerSyncDown int
	MetaPerFileUp   int
	MetaPerFileDown int
	// SharedSession merges all concurrently-pending work into one
	// session (sharing connection setup and session chatter); without
	// it every file (or BDS bundle) runs as its own session.
	SharedSession bool
	// ExtraRTTs adds protocol round trips to each session's commit.
	ExtraRTTs int
	// AutoSyncRemote subscribes the client to the cloud's change
	// notifications and mirrors other devices' changes into the local
	// folder (the Fig. 1 fan-out). PC clients of the same account run
	// with this on; access methods with no local replica leave it off.
	AutoSyncRemote bool
	// PayloadExpansion multiplies data payloads for service framing
	// (multipart encoding, per-block headers). ≥ 1.
	PayloadExpansion float64

	// Tracer, when set, records one span per sync round with children
	// for the metadata-computation window and each dispatched session.
	// Build it with obs.NewSimTracer(clock.Now) so timestamps are
	// virtual-clock readings; recording never alters the simulation.
	Tracer *obs.Tracer
}

func (c Config) validate() {
	if c.User == "" {
		panic("client: Config.User must be set")
	}
	if !c.FullFileSync && c.ChunkSize <= 0 {
		panic("client: chunked sync requires ChunkSize")
	}
	if c.Defer == nil {
		panic("client: Config.Defer must be set")
	}
	if c.PayloadExpansion < 1 {
		panic(fmt.Sprintf("client: PayloadExpansion %v < 1", c.PayloadExpansion))
	}
	if c.Hardware.HashMBps <= 0 {
		panic("client: Config.Hardware must be a valid profile")
	}
}

// Stats counts client activity.
type Stats struct {
	// Sessions is the number of sync sessions dispatched.
	Sessions int
	// FileSyncs is the number of file versions synchronized (bundled
	// creations count individually).
	FileSyncs int
	// Bundles is the number of BDS bundles sent.
	Bundles int
	// DedupSkips counts uploads fully avoided by deduplication.
	DedupSkips int
	// Deletes counts deletion notifications.
	Deletes int
	// Downloads counts completed downloads.
	Downloads int
}

type syncedInfo struct {
	gen  uint64
	size int64
}

type pendingEntry struct {
	deleted bool
}

// Client is a sync client bound to one folder, one cloud, and one path.
type Client struct {
	cfg   Config
	clock *simclock.Clock
	fs    *vfs.FS
	cloud *cloud.Cloud
	path  *netem.Path

	synced         map[string]*syncedInfo
	pending        map[string]*pendingEntry
	inSession      map[string]bool
	deferTimer     *simclock.Timer
	inFlight       bool
	wantSync       bool
	applyingRemote bool

	round    *obs.Span // current sync round (nil when idle or untraced)
	metaSpan *obs.Span // metadata-computation window within the round

	stats Stats
}

// New wires a client to its folder, cloud, and path, and starts
// watching the folder.
func New(cfg Config, clock *simclock.Clock, fs *vfs.FS, cl *cloud.Cloud, path *netem.Path) *Client {
	cfg.validate()
	if clock == nil || fs == nil || cl == nil || path == nil {
		panic("client: New with nil dependency")
	}
	c := &Client{
		cfg:       cfg,
		clock:     clock,
		fs:        fs,
		cloud:     cl,
		path:      path,
		synced:    make(map[string]*syncedInfo),
		pending:   make(map[string]*pendingEntry),
		inSession: make(map[string]bool),
	}
	fs.Watch(c.onEvent)
	if cfg.AutoSyncRemote {
		cl.Subscribe(cfg.User, cfg.Device, c.onRemoteChange)
	}
	return c
}

// Config returns the client configuration.
func (c *Client) Config() Config { return c.cfg }

// Stats returns a copy of the activity counters.
func (c *Client) Stats() Stats { return c.stats }

// PendingCount reports files awaiting synchronization.
func (c *Client) PendingCount() int { return len(c.pending) }

// InFlight reports whether a sync session is active.
func (c *Client) InFlight() bool { return c.inFlight }

func (c *Client) onEvent(ev vfs.Event) {
	if c.applyingRemote {
		// The change is a mirror of a remote commit, not local user
		// activity; uploading it back would loop.
		return
	}
	switch ev.Op {
	case vfs.OpCreate, vfs.OpModify:
		p := c.pending[ev.Name]
		if p == nil {
			p = &pendingEntry{}
			c.pending[ev.Name] = p
		}
		p.deleted = false
	case vfs.OpDelete:
		_, everSynced := c.synced[ev.Name]
		if !everSynced && !c.inSession[ev.Name] {
			// Created and deleted before any sync touched it: nothing to
			// tell the cloud. (A file inside an in-flight session is
			// about to exist in the cloud, so its deletion must still be
			// queued — the race this guards was found by the model-based
			// convergence test.)
			delete(c.pending, ev.Name)
			return
		}
		p := c.pending[ev.Name]
		if p == nil {
			p = &pendingEntry{}
			c.pending[ev.Name] = p
		}
		p.deleted = true
	}
	delay := c.cfg.Defer.Delay(c.clock.Now(), c.pendingBytes())
	if c.deferTimer != nil {
		c.deferTimer.Stop()
	}
	c.deferTimer = c.clock.Schedule(delay, c.timerFired)
}

// pendingBytes estimates the unsynchronized volume, the input to
// byte-counter deferment policies.
func (c *Client) pendingBytes() int64 {
	var total int64
	for name, p := range c.pending {
		if p.deleted {
			continue
		}
		f, ok := c.fs.File(name)
		if !ok {
			continue
		}
		if s, everSynced := c.synced[name]; everSynced {
			for _, r := range f.EditsSince(s.gen) {
				total += r.Len
			}
		} else {
			total += f.Size()
		}
	}
	return total
}

func (c *Client) timerFired() {
	c.deferTimer = nil
	c.trySync()
}

// trySync begins a sync cycle if one is not already in flight
// (Condition 1) and there is work to do.
func (c *Client) trySync() {
	if c.inFlight {
		c.wantSync = true
		return
	}
	if len(c.pending) == 0 {
		return
	}
	c.inFlight = true
	c.round = c.cfg.Tracer.Start("client.sync_round",
		obs.String("user", c.cfg.User), obs.String("device", c.cfg.Device),
		obs.Int("pending", int64(len(c.pending))))
	// Condition 2: compute metadata for every pending file before
	// dispatching. Updates arriving during this window join the batch,
	// because the snapshot happens at dispatch time.
	var metaBytes int64
	for name, p := range c.pending {
		if p.deleted {
			continue
		}
		if f, ok := c.fs.File(name); ok {
			metaBytes += f.Size()
		}
	}
	c.metaSpan = c.round.Child("client.metadata", obs.Int("bytes", metaBytes))
	c.clock.PostDelay(c.cfg.Hardware.MetadataTime(metaBytes), c.dispatch)
}

// workItem is one file operation snapshotted into a session.
type workItem struct {
	name     string
	deleted  bool
	isCreate bool
	blob     *content.Blob
	gen      uint64
	dirty    []chunker.Range
	decision cloud.UploadDecision
}

func (c *Client) dispatch() {
	c.metaSpan.End()
	c.metaSpan = nil
	batch := c.snapshot()
	if len(batch) == 0 {
		c.inFlight = false
		c.round.End()
		c.round = nil
		return
	}
	units := c.composeUnits(batch)
	if c.cfg.SharedSession {
		merged := sessionUnit{}
		for _, u := range units {
			merged.exchanges = append(merged.exchanges, u.exchanges...)
			merged.commits = append(merged.commits, u.commits...)
		}
		units = []sessionUnit{merged}
	}
	c.round.Set("files", len(batch))
	c.round.Set("sessions", len(units))
	remaining := len(units)
	for _, u := range units {
		u := u
		u.exchanges = append(u.exchanges, c.sessionExchange())
		c.stats.Sessions++
		var up, down int64
		for _, ex := range u.exchanges {
			up += int64(ex.UpApp)
			down += int64(ex.DownApp)
		}
		ssp := c.round.Child("client.session",
			obs.Int("exchanges", int64(len(u.exchanges))),
			obs.Int("up_app", up), obs.Int("down_app", down))
		c.path.Do(u.exchanges, c.cloud.Config().ProcessingTime, func(time.Duration) {
			c.runCommits(u.commits)
			ssp.End()
			remaining--
			if remaining == 0 {
				c.onAllSessionsDone()
			}
		})
	}
}

// sessionExchange is the once-per-session control tail: commit/status
// chatter plus the service's extra round trips.
func (c *Client) sessionExchange() netem.Exchange {
	return netem.Exchange{
		UpApp:     protocol.SizeCommit() + c.cfg.MetaPerSyncUp,
		DownApp:   protocol.SizeAck() + c.cfg.MetaPerSyncDown,
		Kind:      capturepkg.KindControl,
		ExtraRTTs: c.cfg.ExtraRTTs,
	}
}

func (c *Client) snapshot() []workItem {
	names := make([]string, 0, len(c.pending))
	for name := range c.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	batch := make([]workItem, 0, len(names))
	for _, name := range names {
		p := c.pending[name]
		if p.deleted {
			batch = append(batch, workItem{name: name, deleted: true})
			continue
		}
		f, ok := c.fs.File(name)
		if !ok {
			continue
		}
		s := c.synced[name]
		item := workItem{
			name:     name,
			isCreate: s == nil,
			blob:     f.Blob(),
			gen:      f.Gen(),
		}
		if s != nil {
			item.dirty = f.EditsSince(s.gen)
		}
		item.decision = c.cloud.ProbeUpload(c.cfg.User, item.blob, c.cfg.UseDedup)
		batch = append(batch, item)
	}
	clear(c.pending)
	for _, item := range batch {
		c.inSession[item.name] = true
	}
	return batch
}

// expand applies the service's payload framing expansion.
func (c *Client) expand(n int64) int {
	return int(float64(n) * c.cfg.PayloadExpansion)
}

// uploadPayload computes the content bytes a work item must transfer.
func (c *Client) uploadPayload(item workItem) int64 {
	if item.decision.SkipAll {
		return 0
	}
	blob := item.blob
	full := comp.Size(blob, c.cfg.UploadCompression)
	if item.decision.TotalBlocks > 0 {
		// Block-level dedup: only the missing fraction moves.
		full = full * int64(item.decision.MissingBlocks) / int64(item.decision.TotalBlocks)
	}
	if item.isCreate || c.cfg.FullFileSync {
		return full
	}
	// Incremental sync: only chunks overlapping the dirty ranges move,
	// compressed at the blob's overall ratio.
	dirtyBytes := chunker.DirtyBytes(blob.Size(), c.cfg.ChunkSize, item.dirty)
	if blob.Size() == 0 {
		return 0
	}
	ratio := float64(comp.Size(blob, c.cfg.UploadCompression)) / float64(blob.Size())
	payload := int64(float64(dirtyBytes) * ratio)
	if payload > full {
		payload = full
	}
	return payload
}

// sessionUnit is an independently dispatchable piece of work: one file
// operation, or one BDS bundle of creations.
type sessionUnit struct {
	exchanges []netem.Exchange
	commits   []func()
}

func (c *Client) composeUnits(batch []workItem) []sessionUnit {
	// Partition: BDS bundles creations; everything else goes per file.
	var creations, rest []workItem
	if c.cfg.BDS {
		for _, item := range batch {
			if !item.deleted && item.isCreate {
				creations = append(creations, item)
			} else {
				rest = append(rest, item)
			}
		}
	} else {
		rest = batch
	}

	units := make([]sessionUnit, 0, len(rest))
	bundleSize := c.cfg.BundleSize
	if bundleSize <= 0 {
		bundleSize = len(creations)
	}
	for len(creations) > 0 {
		n := bundleSize
		if n > len(creations) {
			n = len(creations)
		}
		bundle := creations[:n]
		creations = creations[n:]
		u := sessionUnit{exchanges: c.bundleExchanges(bundle)}
		for _, item := range bundle {
			u.commits = append(u.commits, c.commitFn(item))
		}
		units = append(units, u)
		c.stats.Bundles++
	}
	for _, item := range rest {
		units = append(units, sessionUnit{
			exchanges: c.fileExchanges(item),
			commits:   []func(){c.commitFn(item)},
		})
	}
	return units
}

// bundleExchanges composes one BDS bundle: a single index/commit
// exchange pair covering every file, with the payloads concatenated.
func (c *Client) bundleExchanges(bundle []workItem) []netem.Exchange {
	indexUp := 0
	var payload int64
	for _, item := range bundle {
		indexUp += protocol.SizeIndexUpdate(item.name, item.decision.IndexFingerprints)
		payload += c.uploadPayload(item)
		if item.decision.SkipAll {
			c.stats.DedupSkips++
		}
		c.stats.FileSyncs++
	}
	replyDown := protocol.SizeIndexReply(0)
	ex := []netem.Exchange{{
		UpApp:   indexUp,
		DownApp: replyDown,
		Kind:    capturepkg.KindControl,
		Cause:   indexCause(bundle),
	}}
	if payload > 0 {
		ex = append(ex, netem.Exchange{
			UpApp:   c.expand(payload),
			DownApp: protocol.SizeAck(),
			Kind:    capturepkg.KindData,
		})
	}
	return ex
}

// indexCause attributes an index exchange: when it carries content
// fingerprints it is a dedup probe ("do you already have these
// blocks?"), otherwise plain metadata.
func indexCause(items []workItem) ledger.Cause {
	for _, item := range items {
		if item.decision.IndexFingerprints > 0 {
			return ledger.DedupProbe
		}
	}
	return ledger.Unset // → metadata via the control default
}

// fileExchanges composes the per-file exchange sequence: index update,
// data (if any), commit with the per-file control chatter.
func (c *Client) fileExchanges(item workItem) []netem.Exchange {
	if item.deleted {
		c.stats.Deletes++
		return []netem.Exchange{{
			UpApp:   protocol.SizeDelete() + c.cfg.MetaPerFileUp/2,
			DownApp: protocol.SizeAck() + c.cfg.MetaPerFileDown/2,
			Kind:    capturepkg.KindControl,
		}}
	}
	c.stats.FileSyncs++
	if item.decision.SkipAll {
		c.stats.DedupSkips++
	}
	indexUp := protocol.SizeIndexUpdate(item.name, item.decision.IndexFingerprints)
	replyDown := protocol.SizeIndexReply(item.decision.MissingBlocks)
	cause := ledger.Unset // → metadata via the control default
	if item.decision.IndexFingerprints > 0 {
		cause = ledger.DedupProbe
	}
	ex := []netem.Exchange{{
		UpApp:   indexUp,
		DownApp: replyDown,
		Kind:    capturepkg.KindControl,
		Cause:   cause,
	}}
	if payload := c.uploadPayload(item); payload > 0 {
		dataCause := ledger.Unset // → payload via the data default
		if !item.isCreate && !c.cfg.FullFileSync {
			// Incremental data sync ships only the changed byte ranges —
			// the sim-path equivalent of a delta's literal bytes.
			dataCause = ledger.DeltaLiteral
		}
		ex = append(ex, netem.Exchange{
			UpApp:   c.expand(payload),
			DownApp: protocol.SizeAck(),
			Kind:    capturepkg.KindData,
			Cause:   dataCause,
		})
	}
	ex = append(ex, netem.Exchange{
		UpApp:   protocol.SizeCommit() + c.cfg.MetaPerFileUp,
		DownApp: protocol.SizeAck() + c.cfg.MetaPerFileDown,
		Kind:    capturepkg.KindControl,
	})
	return ex
}

func (c *Client) commitFn(item workItem) func() {
	user := c.cfg.User
	return func() {
		if item.deleted {
			// The file may have been recreated meanwhile; a failed
			// delete of an already-gone entry is harmless.
			if e, ok := c.cloud.File(user, item.name); ok {
				_ = c.cloud.Delete(user, item.name)
				c.cloud.NotifyPeers(user, c.cfg.Device, e, true)
			}
			delete(c.synced, item.name)
			return
		}
		var e *cloud.Entry
		if item.decision.SkipAll {
			e = c.cloud.RecordSkippedUpload(user, item.name, item.blob)
		} else {
			e = c.cloud.Commit(user, item.name, item.blob, item.dirty)
		}
		c.synced[item.name] = &syncedInfo{gen: item.gen, size: item.blob.Size()}
		c.cloud.NotifyPeers(user, c.cfg.Device, e, false)
	}
}

// onRemoteChange mirrors another device's committed change into the
// local folder: the notification arrives as a server push, the content
// (for upserts) is downloaded, and the result is applied with the
// watcher suppressed. Conflicts resolve remote-wins: any queued local
// state for the same name is superseded.
func (c *Client) onRemoteChange(e *cloud.Entry, deleted bool) {
	notify := protocol.SizeNotify(e.Name)
	name := e.Name
	blob := e.Blob
	sp := c.cfg.Tracer.Start("client.remote_change",
		obs.String("name", name), obs.Bool("deleted", deleted))
	c.path.Push(notify, func(time.Duration) {
		if deleted {
			c.applyRemoteDelete(name)
			sp.End()
			return
		}
		payload := c.cloud.ServeSize(e, c.cfg.DownloadCompression)
		sp.Set("payload", payload)
		exchanges := []netem.Exchange{
			{
				UpApp:   protocol.SizeGet(name),
				DownApp: protocol.SizeIndexReply(0),
				Kind:    capturepkg.KindControl,
			},
			{
				UpApp:   protocol.SizeCommit(),
				DownApp: c.expand(payload),
				Kind:    capturepkg.KindData,
			},
		}
		c.path.Do(exchanges, 0, func(time.Duration) {
			c.stats.Downloads++
			c.applyRemoteUpsert(name, blob)
			sp.End()
		})
	})
}

func (c *Client) applyRemoteUpsert(name string, blob *content.Blob) {
	c.applyingRemote = true
	defer func() { c.applyingRemote = false }()
	var err error
	if _, ok := c.fs.File(name); ok {
		err = c.fs.Write(name, blob, []chunker.Range{{Off: 0, Len: blob.Size()}})
	} else {
		err = c.fs.Create(name, blob)
	}
	if err != nil {
		panic(fmt.Sprintf("client: applying remote change to %q: %v", name, err))
	}
	f, _ := c.fs.File(name)
	c.synced[name] = &syncedInfo{gen: f.Gen(), size: blob.Size()}
	delete(c.pending, name)
}

func (c *Client) applyRemoteDelete(name string) {
	c.applyingRemote = true
	defer func() { c.applyingRemote = false }()
	if _, ok := c.fs.File(name); ok {
		if err := c.fs.Delete(name); err != nil {
			panic(fmt.Sprintf("client: applying remote delete of %q: %v", name, err))
		}
	}
	delete(c.synced, name)
	delete(c.pending, name)
}

func (c *Client) runCommits(commits []func()) {
	for _, fn := range commits {
		fn()
	}
}

func (c *Client) onAllSessionsDone() {
	c.round.End()
	c.round = nil
	c.inFlight = false
	clear(c.inSession)
	c.cfg.Defer.Reset()
	if c.wantSync {
		c.wantSync = false
		c.trySync()
	}
}

// Download fetches a file's content from the cloud — the DN phase of
// Experiment 4. done (which may be nil) runs at completion.
func (c *Client) Download(name string, done func()) error {
	entry, ok := c.cloud.File(c.cfg.User, name)
	if !ok {
		return fmt.Errorf("client: download: %s/%s not in cloud", c.cfg.User, name)
	}
	payload := c.cloud.ServeSize(entry, c.cfg.DownloadCompression)
	sp := c.cfg.Tracer.Start("client.download",
		obs.String("name", name), obs.Int("payload", payload))
	exchanges := []netem.Exchange{
		{
			UpApp:   protocol.SizeIndexUpdate(name, 0) + c.cfg.MetaPerSyncUp/2,
			DownApp: protocol.SizeIndexReply(0) + c.cfg.MetaPerSyncDown/2,
			Kind:    capturepkg.KindControl,
		},
		{
			UpApp:   protocol.SizeCommit(),
			DownApp: c.expand(payload),
			Kind:    capturepkg.KindData,
		},
	}
	c.path.Do(exchanges, 0, func(time.Duration) {
		c.stats.Downloads++
		sp.End()
		if done != nil {
			done()
		}
	})
	return nil
}
