package client

import (
	"testing"
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/cloud"
	"cloudsync/internal/content"
	"cloudsync/internal/netem"
	"cloudsync/internal/simclock"
	"cloudsync/internal/vfs"
	"cloudsync/internal/wire"
)

// twoDevices wires two PC clients of the same user to one cloud on one
// clock, each with its own folder, path, and capture.
func twoDevices(t *testing.T) (a, b *rig) {
	t.Helper()
	clk := simclock.New()
	cl := cloud.New(cloud.Config{})
	mk := func(device string) *rig {
		cap := capture.New()
		conn := wire.NewConn(wire.DefaultParams(), cap, capture.Flow{
			Src: capture.Endpoint("client:" + device), Dst: "cloud",
		})
		path := netem.NewPath(clk, netem.Minnesota(), conn, true)
		fs := vfs.New(clk)
		cfg := defaultConfig()
		cfg.Device = device
		cfg.AutoSyncRemote = true
		c := New(cfg, clk, fs, cl, path)
		return &rig{clock: clk, cap: cap, fs: fs, cloud: cl, path: path, client: c}
	}
	return mk("deviceA"), mk("deviceB")
}

func TestRemoteCreatePropagates(t *testing.T) {
	a, b := twoDevices(t)
	if err := a.fs.Create("shared.bin", content.Random(1<<20, 1)); err != nil {
		t.Fatal(err)
	}
	a.clock.Run()

	f, ok := b.fs.File("shared.bin")
	if !ok {
		t.Fatal("device B did not receive the file")
	}
	if f.Size() != 1<<20 {
		t.Fatalf("device B size = %d", f.Size())
	}
	// B downloaded the content: ~1 MB downstream on B's capture.
	if b.cap.DownBytes() < 1<<20 {
		t.Fatalf("device B downstream = %d, want ≥ 1 MB", b.cap.DownBytes())
	}
	// B must not have re-uploaded the mirrored file: its upstream
	// application payload is a couple of control messages (the wire
	// bytes also carry pure TCP ACKs for the 1 MB download, which is
	// why UpBytes alone would mislead).
	if up := b.cap.Dir(capture.Up).AppBytes; up > 1000 {
		t.Fatalf("device B upstream app bytes = %d; mirror must not echo back", up)
	}
	if b.client.Stats().Downloads != 1 {
		t.Fatalf("device B stats = %+v", b.client.Stats())
	}
	if a.cloud.Uploads.Load() != 1 {
		t.Fatalf("cloud uploads = %d, want exactly the original", a.cloud.Uploads.Load())
	}
}

func TestRemoteModifyPropagates(t *testing.T) {
	a, b := twoDevices(t)
	a.fs.Create("doc", content.Random(100<<10, 2))
	a.clock.Run()
	a.fs.Append("doc", 50<<10)
	a.clock.Run()
	f, ok := b.fs.File("doc")
	if !ok || f.Size() != 150<<10 {
		t.Fatalf("device B has %v (size %d), want the 150 KB version", ok, f.Size())
	}
}

func TestRemoteDeletePropagates(t *testing.T) {
	a, b := twoDevices(t)
	a.fs.Create("temp", content.Random(1000, 3))
	a.clock.Run()
	if _, ok := b.fs.File("temp"); !ok {
		t.Fatal("file never reached device B")
	}
	a.fs.Delete("temp")
	a.clock.Run()
	if _, ok := b.fs.File("temp"); ok {
		t.Fatal("deletion did not propagate")
	}
}

func TestRemoteChangeDoesNotEcho(t *testing.T) {
	a, b := twoDevices(t)
	a.fs.Create("f", content.Random(10_000, 4))
	a.clock.Run()
	uploadsAfterCreate := a.cloud.Uploads.Load()
	// Let everything settle; B must not generate further cloud traffic.
	a.clock.RunUntil(a.clock.Now() + time.Hour)
	if a.cloud.Uploads.Load() != uploadsAfterCreate {
		t.Fatalf("uploads grew from %d to %d; devices are echoing", uploadsAfterCreate, a.cloud.Uploads.Load())
	}
	if b.client.PendingCount() != 0 {
		t.Fatal("device B holds pending state from a mirrored change")
	}
}

func TestRemoteWinsOverLocalPending(t *testing.T) {
	a, b := twoDevices(t)
	a.fs.Create("doc", content.Random(10_000, 5))
	a.clock.Run()
	// Both devices edit; A's commit lands and B's mirror supersedes its
	// queued local edit (remote-wins).
	b.client.cfg.Defer = nil // not used; keep vet quiet about unused writes
	_ = b
	a.fs.Append("doc", 1000)
	a.clock.Run()
	f, _ := b.fs.File("doc")
	if f.Size() != 11_000 {
		t.Fatalf("device B size = %d, want 11000", f.Size())
	}
}

func TestLocalEditAfterMirrorSyncsIncrementally(t *testing.T) {
	a, b := twoDevices(t)
	a.fs.Create("doc", content.Random(1<<20, 6))
	a.clock.Run()
	// B edits the mirrored file; since the mirror recorded the synced
	// generation, only the edit (plus overhead) should move.
	m := b.cap.Mark()
	if err := b.fs.ModifyByte("doc", 1000); err != nil {
		t.Fatal(err)
	}
	b.clock.Run()
	up, _, _ := b.cap.Since(m)
	// defaultConfig is full-file sync, so B re-uploads the file — but
	// it must be a modify (one upload), not a create-from-scratch plus
	// echo loops.
	if a.cloud.Uploads.Load() != 2 {
		t.Fatalf("cloud uploads = %d, want 2", a.cloud.Uploads.Load())
	}
	if up < 1<<20 {
		t.Fatalf("B's modify moved %d bytes up, want full file (full-file sync)", up)
	}
	// And the edit propagates back to A.
	f, _ := a.fs.File("doc")
	if f.Gen() == 0 {
		t.Fatal("device A lost the file")
	}
}

func TestSubscribeNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subscribe(nil) did not panic")
		}
	}()
	cloud.New(cloud.Config{}).Subscribe("u", "d", nil)
}
