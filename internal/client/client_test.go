package client

import (
	"testing"
	"time"

	"cloudsync/internal/capture"
	"cloudsync/internal/chunker"
	"cloudsync/internal/cloud"
	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/hardware"
	"cloudsync/internal/netem"
	"cloudsync/internal/simclock"
	"cloudsync/internal/vfs"
	"cloudsync/internal/wire"
)

// rig bundles a full simulation for tests.
type rig struct {
	clock  *simclock.Clock
	cap    *capture.Capture
	fs     *vfs.FS
	cloud  *cloud.Cloud
	path   *netem.Path
	client *Client
}

func defaultConfig() Config {
	return Config{
		User:                "alice",
		Device:              "M1",
		Access:              PC,
		FullFileSync:        true,
		UploadCompression:   comp.None,
		DownloadCompression: comp.None,
		Defer:               deferpolicy.None{},
		Hardware:            hardware.M1(),
		MetaPerSyncUp:       2000,
		MetaPerSyncDown:     1000,
		PayloadExpansion:    1.05,
	}
}

func newRig(t *testing.T, cfg Config, ccfg cloud.Config, link netem.Link, persistent bool) *rig {
	t.Helper()
	clk := simclock.New()
	cap := capture.New()
	conn := wire.NewConn(wire.DefaultParams(), cap, capture.Flow{Src: "client", Dst: "cloud"})
	path := netem.NewPath(clk, link, conn, persistent)
	fs := vfs.New(clk)
	cl := cloud.New(ccfg)
	c := New(cfg, clk, fs, cl, path)
	return &rig{clock: clk, cap: cap, fs: fs, cloud: cl, path: path, client: c}
}

func TestCreateSyncsToCloud(t *testing.T) {
	r := newRig(t, defaultConfig(), cloud.Config{}, netem.Minnesota(), true)
	if err := r.fs.Create("a.bin", content.Random(10_000, 1)); err != nil {
		t.Fatal(err)
	}
	r.clock.Run()
	e, ok := r.cloud.File("alice", "a.bin")
	if !ok {
		t.Fatal("file not in cloud after sync")
	}
	if e.Blob.Size() != 10_000 {
		t.Fatalf("cloud size = %d", e.Blob.Size())
	}
	if r.cap.TotalBytes() < 10_000 {
		t.Fatalf("traffic %d < payload", r.cap.TotalBytes())
	}
	if r.client.Stats().Sessions != 1 || r.client.Stats().FileSyncs != 1 {
		t.Fatalf("stats = %+v", r.client.Stats())
	}
	if r.client.PendingCount() != 0 || r.client.InFlight() {
		t.Fatal("client not quiescent after run")
	}
}

func TestSmallFileTUEDominatedByOverhead(t *testing.T) {
	// Experiment 1's key finding: a 1-byte file costs kilobytes.
	r := newRig(t, defaultConfig(), cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("tiny", content.Random(1, 2))
	r.clock.Run()
	if got := r.cap.TotalBytes(); got < 4_000 {
		t.Fatalf("1-byte creation cost %d bytes; overhead should dominate", got)
	}
}

func TestLargeFileTUEApproachesOne(t *testing.T) {
	r := newRig(t, defaultConfig(), cloud.Config{}, netem.Minnesota(), true)
	const size = 10 << 20
	r.fs.Create("big", content.Random(size, 3))
	r.clock.Run()
	tue := float64(r.cap.TotalBytes()) / float64(size)
	if tue < 1.0 || tue > 1.35 {
		t.Fatalf("10MB creation TUE = %.3f, want ≈ 1.1", tue)
	}
}

func TestFullFileVsChunkedModification(t *testing.T) {
	const size = 1 << 20
	run := func(fullFile bool) int64 {
		cfg := defaultConfig()
		cfg.FullFileSync = fullFile
		cfg.ChunkSize = 8 << 10
		r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
		r.fs.Create("f", content.Random(size, 4))
		r.clock.Run()
		m := r.cap.Mark()
		r.fs.ModifyByte("f", size/2)
		r.clock.Run()
		up, down, _ := r.cap.Since(m)
		return up + down
	}
	full := run(true)
	ids := run(false)
	if full < size {
		t.Fatalf("full-file modify moved %d bytes, want ≥ file size", full)
	}
	if ids > 100_000 {
		t.Fatalf("IDS modify moved %d bytes, want tens of KB", ids)
	}
	if full < 10*ids {
		t.Fatalf("full-file (%d) should dwarf IDS (%d)", full, ids)
	}
}

func TestChunkedAppendSendsTail(t *testing.T) {
	cfg := defaultConfig()
	cfg.FullFileSync = false
	cfg.ChunkSize = 8 << 10
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("log", content.Random(1<<20, 5))
	r.clock.Run()
	m := r.cap.Mark()
	r.fs.Append("log", 1024)
	r.clock.Run()
	up, down, _ := r.cap.Since(m)
	if total := up + down; total > 60_000 {
		t.Fatalf("1KB append moved %d bytes, want one chunk + overhead", total)
	}
	e, _ := r.cloud.File("alice", "log")
	if e.Blob.Size() != 1<<20+1024 {
		t.Fatalf("cloud size = %d", e.Blob.Size())
	}
}

func TestBDSReducesSmallFileTraffic(t *testing.T) {
	// Experiment 1': 100 creations of 1 KB files.
	run := func(bds bool) int64 {
		cfg := defaultConfig()
		cfg.BDS = bds
		r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
		for i := 0; i < 100; i++ {
			r.fs.Create(fileName(i), content.Random(1024, int64(100+i)))
		}
		r.clock.Run()
		if r.cloud.Uploads.Load() != 100 {
			t.Fatalf("cloud uploads = %d, want 100", r.cloud.Uploads.Load())
		}
		return r.cap.TotalBytes()
	}
	with := run(true)
	without := run(false)
	if with >= without/3 {
		t.Fatalf("BDS traffic %d should be ≪ non-BDS %d", with, without)
	}
	// With BDS the total should be near the 100 KB payload (TUE ≈ 1–2).
	if with > 300_000 {
		t.Fatalf("BDS traffic %d, want ≲ 2× payload", with)
	}
}

func fileName(i int) string {
	return string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i/676))
}

func TestBundleSizeLimitsBDS(t *testing.T) {
	cfg := defaultConfig()
	cfg.BDS = true
	cfg.BundleSize = 10
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	for i := 0; i < 100; i++ {
		r.fs.Create(fileName(i), content.Random(1024, int64(i)))
	}
	r.clock.Run()
	if got := r.client.Stats().Bundles; got != 10 {
		t.Fatalf("Bundles = %d, want 10", got)
	}
}

func TestDeletionTrafficNegligible(t *testing.T) {
	// Experiment 2: deletion costs < 100 KB regardless of file size.
	r := newRig(t, defaultConfig(), cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("big", content.Random(10<<20, 6))
	r.clock.Run()
	m := r.cap.Mark()
	r.fs.Delete("big")
	r.clock.Run()
	up, down, _ := r.cap.Since(m)
	if total := up + down; total > 100_000 {
		t.Fatalf("deletion cost %d bytes, want < 100 KB", total)
	}
	if _, ok := r.cloud.File("alice", "big"); ok {
		t.Fatal("file still live in cloud")
	}
	if r.client.Stats().Deletes != 1 {
		t.Fatalf("stats = %+v", r.client.Stats())
	}
}

func TestDeleteBeforeSyncCostsNothing(t *testing.T) {
	cfg := defaultConfig()
	cfg.Defer = deferpolicy.Fixed{T: time.Minute}
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("temp", content.Random(1000, 7))
	r.fs.Delete("temp")
	r.clock.Run()
	if r.cap.TotalBytes() != 0 {
		t.Fatalf("unsynced create+delete cost %d bytes", r.cap.TotalBytes())
	}
}

func TestFullFileDedupSkipsUpload(t *testing.T) {
	cfg := defaultConfig()
	cfg.UseDedup = true
	r := newRig(t, cfg, cloud.Config{DedupGranularity: dedup.FullFile}, netem.Minnesota(), true)
	blob := content.Random(1<<20, 8)
	r.fs.Create("orig", blob)
	r.clock.Run()
	m := r.cap.Mark()
	r.fs.Create("copy", content.Random(1<<20, 8)) // identical content
	r.clock.Run()
	up, down, _ := r.cap.Since(m)
	if total := up + down; total > 50_000 {
		t.Fatalf("dedup'd upload cost %d bytes, want control traffic only", total)
	}
	if r.client.Stats().DedupSkips != 1 {
		t.Fatalf("stats = %+v", r.client.Stats())
	}
	if _, ok := r.cloud.File("alice", "copy"); !ok {
		t.Fatal("skipped upload not recorded in cloud")
	}
}

func TestWebAccessIgnoresDedup(t *testing.T) {
	cfg := defaultConfig()
	cfg.Access = Web
	cfg.UseDedup = false
	r := newRig(t, cfg, cloud.Config{DedupGranularity: dedup.FullFile}, netem.Minnesota(), false)
	blob := content.Random(1<<20, 9)
	r.fs.Create("orig", blob)
	r.clock.Run()
	m := r.cap.Mark()
	r.fs.Create("copy", content.Random(1<<20, 9))
	r.clock.Run()
	up, _, _ := r.cap.Since(m)
	if up < 1<<20 {
		t.Fatalf("web re-upload moved %d bytes, want full content (no dedup)", up)
	}
}

func TestUploadCompressionShrinksText(t *testing.T) {
	run := func(level comp.Level) int64 {
		cfg := defaultConfig()
		cfg.UploadCompression = level
		r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
		r.fs.Create("doc", content.Text(1<<20, 10))
		r.clock.Run()
		return r.cap.TotalBytes()
	}
	raw := run(comp.None)
	compressed := run(comp.Moderate)
	if compressed >= raw*3/4 {
		t.Fatalf("moderate compression: %d vs raw %d", compressed, raw)
	}
}

func TestFixedDeferBatchesFastUpdates(t *testing.T) {
	// Appends every 1 s with a 4.2 s deferment: everything batches into
	// one sync at the end (Fig. 6(a), X < T region).
	cfg := defaultConfig()
	cfg.Defer = deferpolicy.Fixed{T: 4200 * time.Millisecond}
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("doc", content.Random(0, 11))
	r.clock.Run()
	m := r.cap.Mark()
	// 64 appends of 1 KB, 1 s apart.
	for i := 0; i < 64; i++ {
		at := time.Duration(i+1) * time.Second
		r.clock.At(at, func() { r.fs.Append("doc", 1024) })
	}
	r.clock.Run()
	up, down, _ := r.cap.Since(m)
	total := up + down
	// One batched full-file sync ≈ 64 KB + overhead; unbatched would be
	// ≈ 64×(avg 32 KB) ≈ 2 MB.
	if total > 200_000 {
		t.Fatalf("deferred appends cost %d bytes; batching failed", total)
	}
	e, _ := r.cloud.File("alice", "doc")
	if e.Blob.Size() != 64*1024 {
		t.Fatalf("cloud size = %d", e.Blob.Size())
	}
}

func TestFixedDeferUselessForSlowUpdates(t *testing.T) {
	// Appends every 10 s with a 4.2 s deferment: every append syncs
	// separately (the X > T traffic overuse of Fig. 6).
	cfg := defaultConfig()
	cfg.Defer = deferpolicy.Fixed{T: 4200 * time.Millisecond}
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("doc", content.Random(0, 12))
	r.clock.Run()
	sessionsBefore := r.client.Stats().Sessions
	for i := 0; i < 16; i++ {
		at := time.Duration(i) * 10 * time.Second
		r.clock.At(at+time.Nanosecond, func() { r.fs.Append("doc", 1024) })
	}
	r.clock.Run()
	if got := r.client.Stats().Sessions - sessionsBefore; got < 14 {
		t.Fatalf("sessions = %d, want ≈ 16 (no batching past the deferment)", got)
	}
}

func TestASDBatchesSlowUpdates(t *testing.T) {
	// The same 10 s cadence with ASD: the deferment adapts above 10 s
	// and batches everything.
	cfg := defaultConfig()
	cfg.Defer = deferpolicy.NewASD(500*time.Millisecond, time.Minute)
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("doc", content.Random(0, 13))
	r.clock.Run()
	sessionsBefore := r.client.Stats().Sessions
	for i := 0; i < 16; i++ {
		at := time.Duration(i) * 10 * time.Second
		r.clock.At(at+time.Nanosecond, func() { r.fs.Append("doc", 1024) })
	}
	r.clock.Run()
	got := r.client.Stats().Sessions - sessionsBefore
	if got > 8 {
		t.Fatalf("ASD sessions = %d, want far fewer than 16", got)
	}
}

func TestCondition1SlowLinkBatches(t *testing.T) {
	// With no deferment, a slow link makes each session long enough
	// that several appends batch naturally (§ 6.2).
	run := func(link netem.Link) int {
		cfg := defaultConfig()
		r := newRig(t, cfg, cloud.Config{ProcessingTime: 300 * time.Millisecond}, link, true)
		r.fs.Create("doc", content.Random(0, 14))
		r.clock.Run()
		before := r.client.Stats().Sessions
		for i := 0; i < 32; i++ {
			at := time.Duration(i) * time.Second
			r.clock.At(at+time.Nanosecond, func() { r.fs.Append("doc", 64*1024) })
		}
		r.clock.Run()
		return r.client.Stats().Sessions - before
	}
	fast := run(netem.Minnesota())
	slow := run(netem.Beijing())
	if slow >= fast {
		t.Fatalf("slow link sessions (%d) should be < fast link sessions (%d)", slow, fast)
	}
}

func TestCondition2SlowHardwareBatches(t *testing.T) {
	run := func(hw hardware.Profile) int {
		cfg := defaultConfig()
		cfg.Hardware = hw
		r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
		r.fs.Create("doc", content.Random(0, 15))
		r.clock.Run()
		before := r.client.Stats().Sessions
		for i := 0; i < 32; i++ {
			at := time.Duration(i) * time.Second
			r.clock.At(at+time.Nanosecond, func() { r.fs.Append("doc", 32*1024) })
		}
		r.clock.Run()
		return r.client.Stats().Sessions - before
	}
	fast := run(hardware.M3())
	slowCount := run(hardware.M2())
	if slowCount >= fast {
		t.Fatalf("outdated hardware sessions (%d) should be < SSD machine (%d)", slowCount, fast)
	}
}

func TestDownload(t *testing.T) {
	cfg := defaultConfig()
	cfg.DownloadCompression = comp.High
	r := newRig(t, cfg, cloud.Config{StoreCompression: comp.High}, netem.Minnesota(), true)
	r.fs.Create("doc", content.Text(1<<20, 16))
	r.clock.Run()
	m := r.cap.Mark()
	done := false
	if err := r.client.Download("doc", func() { done = true }); err != nil {
		t.Fatal(err)
	}
	r.clock.Run()
	if !done {
		t.Fatal("download callback never ran")
	}
	_, down, _ := r.cap.Since(m)
	if down >= 1<<20 {
		t.Fatalf("compressed download moved %d bytes, want < raw size", down)
	}
	if down < 100_000 {
		t.Fatalf("download moved %d bytes, implausibly small", down)
	}
	if r.client.Stats().Downloads != 1 {
		t.Fatalf("stats = %+v", r.client.Stats())
	}
}

func TestDownloadMissingErrors(t *testing.T) {
	r := newRig(t, defaultConfig(), cloud.Config{}, netem.Minnesota(), true)
	if err := r.client.Download("ghost", nil); err == nil {
		t.Fatal("download of missing file should error")
	}
}

func TestAccessMethodString(t *testing.T) {
	for a, want := range map[AccessMethod]string{PC: "PC client", Web: "Web-based", Mobile: "Mobile app"} {
		if got := a.String(); got != want {
			t.Errorf("%d = %q, want %q", a, got, want)
		}
	}
	if AccessMethod(9).String() == "" {
		t.Error("unknown access should render")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.User = "" },
		func(c *Config) { c.FullFileSync = false; c.ChunkSize = 0 },
		func(c *Config) { c.Defer = nil },
		func(c *Config) { c.PayloadExpansion = 0.5 },
		func(c *Config) { c.Hardware = hardware.Profile{} },
	}
	for i, mutate := range cases {
		cfg := defaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
		}()
	}
}

func TestModifyDuringMetadataJoinsBatch(t *testing.T) {
	// An update landing during the Condition-2 window rides along in
	// the same session.
	cfg := defaultConfig()
	cfg.Hardware = hardware.M2() // long metadata time
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("doc", content.Random(10<<20, 17))
	// Schedule a second modification 100 ms in — well inside M2's
	// metadata window for a 10 MB file.
	r.clock.Schedule(100*time.Millisecond, func() {
		r.fs.Append("doc", 1024)
	})
	r.clock.Run()
	e, _ := r.cloud.File("alice", "doc")
	if e.Blob.Size() != 10<<20+1024 {
		t.Fatalf("cloud size = %d; mid-metadata update lost", e.Blob.Size())
	}
}

func TestRapidEditsCoalesceDirtyRanges(t *testing.T) {
	cfg := defaultConfig()
	cfg.FullFileSync = false
	cfg.ChunkSize = 8 << 10
	cfg.Defer = deferpolicy.Fixed{T: time.Second}
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("f", content.Random(1<<20, 18))
	r.clock.Run()
	m := r.cap.Mark()
	// 10 edits to the same byte within the deferment window: one chunk
	// should move, once.
	for i := 0; i < 10; i++ {
		r.fs.ModifyByte("f", 4096)
	}
	r.clock.Run()
	up, down, _ := r.cap.Since(m)
	if total := up + down; total > 60_000 {
		t.Fatalf("coalesced edits moved %d bytes, want one chunk + overhead", total)
	}
}

func TestChunkRanges(t *testing.T) {
	// Sanity: EditsSince + DirtyBytes is what the client charges.
	cfg := defaultConfig()
	cfg.FullFileSync = false
	cfg.ChunkSize = 10 << 10
	r := newRig(t, cfg, cloud.Config{}, netem.Minnesota(), true)
	r.fs.Create("f", content.Random(100<<10, 19))
	r.clock.Run()
	f, _ := r.fs.File("f")
	if dirty := f.EditsSince(f.Gen()); len(dirty) != 0 {
		t.Fatalf("dirty after sync = %v", dirty)
	}
	if n := chunker.DirtyBytes(f.Size(), cfg.ChunkSize, []chunker.Range{{Off: 0, Len: 1}}); n != 10<<10 {
		t.Fatalf("DirtyBytes = %d", n)
	}
}
