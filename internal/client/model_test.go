package client

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cloudsync/internal/cloud"
	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/netem"
)

// TestPropertyCloudMirrorsFolder is a model-based test: apply a random
// sequence of file operations at random times under randomly chosen
// design choices, drain the simulation, and require that the cloud's
// live state is exactly the folder's state — same names, same content
// identity. This is the sync engine's core correctness contract and
// must hold regardless of granularity, dedup, deferment, batching, or
// how operations interleave with in-flight sessions.
func TestPropertyCloudMirrorsFolder(t *testing.T) {
	names := []string{"a", "b", "dir/c", "dir/d", "e"}
	for iter := 0; iter < 120; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))

		cfg := defaultConfig()
		cfg.FullFileSync = rng.Intn(2) == 0
		if !cfg.FullFileSync {
			cfg.ChunkSize = []int{4 << 10, 64 << 10}[rng.Intn(2)]
		}
		cfg.UseDedup = rng.Intn(2) == 0
		cfg.BDS = rng.Intn(2) == 0
		switch rng.Intn(4) {
		case 0:
			cfg.Defer = deferpolicy.None{}
		case 1:
			cfg.Defer = deferpolicy.Fixed{T: time.Duration(1+rng.Intn(8)) * time.Second}
		case 2:
			cfg.Defer = deferpolicy.NewASD(500*time.Millisecond, 30*time.Second)
		case 3:
			cfg.Defer = deferpolicy.UDS{Threshold: 64 << 10, MaxDelay: 20 * time.Second}
		}
		cfg.SharedSession = rng.Intn(2) == 0
		cfg.UploadCompression = comp.Level(rng.Intn(3))

		ccfg := cloud.Config{}
		if cfg.UseDedup && rng.Intn(2) == 0 {
			ccfg.DedupGranularity = dedup.FullFile
		}
		ccfg.ProcessingTime = time.Duration(rng.Intn(3000)) * time.Millisecond

		link := netem.Minnesota()
		if rng.Intn(3) == 0 {
			link = netem.Beijing()
		}
		r := newRig(t, cfg, ccfg, link, rng.Intn(2) == 0)

		// Random op script at random virtual times.
		nOps := 5 + rng.Intn(25)
		at := time.Duration(0)
		for op := 0; op < nOps; op++ {
			at += time.Duration(rng.Intn(8000)) * time.Millisecond
			name := names[rng.Intn(len(names))]
			kind := rng.Intn(4)
			size := int64(rng.Intn(64 << 10))
			seed := int64(iter*1000 + op)
			r.clock.At(at, func() {
				switch kind {
				case 0: // create (or modify if it exists)
					if _, ok := r.fs.File(name); ok {
						r.fs.Write(name, content.Random(size, seed), nil)
					} else {
						r.fs.Create(name, content.Random(size, seed))
					}
				case 1: // append
					if _, ok := r.fs.File(name); ok {
						r.fs.Append(name, size%4096)
					}
				case 2: // modify a byte
					if f, ok := r.fs.File(name); ok && f.Size() > 0 {
						r.fs.ModifyByte(name, seed%f.Size())
					}
				case 3: // delete
					if _, ok := r.fs.File(name); ok {
						r.fs.Delete(name)
					}
				}
			})
		}
		r.clock.Run()

		// Convergence: every folder file is live in the cloud with
		// identical content; nothing extra is live in the cloud.
		desc := fmt.Sprintf("iter %d (fullfile=%v dedup=%v bds=%v defer=%s shared=%v)",
			iter, cfg.FullFileSync, cfg.UseDedup, cfg.BDS, cfg.Defer.Name(), cfg.SharedSession)
		if r.client.PendingCount() != 0 || r.client.InFlight() {
			t.Fatalf("%s: client did not quiesce (pending=%d inflight=%v)",
				desc, r.client.PendingCount(), r.client.InFlight())
		}
		for _, name := range r.fs.Names() {
			f, _ := r.fs.File(name)
			e, ok := r.cloud.File("alice", name)
			if !ok {
				t.Fatalf("%s: %q in folder but not in cloud", desc, name)
			}
			if !e.Blob.Equal(f.Blob()) {
				t.Fatalf("%s: %q content diverged (folder %v, cloud %v)",
					desc, name, f.Blob(), e.Blob)
			}
		}
		for _, name := range names {
			if _, ok := r.fs.File(name); ok {
				continue
			}
			if _, ok := r.cloud.File("alice", name); ok {
				t.Fatalf("%s: %q live in cloud but deleted locally", desc, name)
			}
		}
	}
}
