package parallel

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	got := Map(items, func(_ int, v int) int {
		if v%7 == 0 {
			runtime.Gosched() // shuffle completion order
		}
		return v * 2
	})
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(nil, func(_ int, v int) int { return v }); len(got) != 0 {
		t.Fatalf("Map(nil) = %v", got)
	}
	if got := Map([]int{41}, func(_ int, v int) int { return v + 1 }); got[0] != 42 {
		t.Fatalf("Map single = %v", got)
	}
}

func TestWorkersBound(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	var active, peak atomic.Int64
	ForEach(make([]struct{}, 64), func(int, struct{}) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestSetWorkersClampAndDefault(t *testing.T) {
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS default", Workers())
	}
}

func TestSequentialFallbackRunsInline(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	var order []int
	ForEach([]int{0, 1, 2, 3}, func(i int, _ int) {
		order = append(order, i) // safe: inline, single goroutine
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order = %v", order)
		}
	}
}

func TestPanicPropagatesLowestIndex(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic did not propagate")
		}
		pe, ok := v.(*panicError)
		if !ok {
			t.Fatalf("recovered %T, want *panicError", v)
		}
		if pe.index != 2 {
			t.Fatalf("panic index = %d, want lowest failing index 2", pe.index)
		}
		if !strings.Contains(pe.Error(), "boom 2") {
			t.Fatalf("panic message %q lost the cause", pe.Error())
		}
	}()
	var wait sync.WaitGroup
	wait.Add(1)
	Do(16, func(i int) {
		if i == 2 || i == 9 {
			if i == 9 {
				wait.Wait() // guarantee task 2's panic is also recorded
			} else {
				defer wait.Done()
			}
			panic("boom " + string(rune('0'+i%10)))
		}
	})
}

func TestDoCountsEveryIndex(t *testing.T) {
	SetWorkers(8)
	defer SetWorkers(0)
	seen := make([]atomic.Int64, 100)
	Do(100, func(i int) { seen[i].Add(1) })
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}

// TestPanicReRaisedAtEveryIndex pins the panic contract across the
// whole index range: wherever the failing task lands relative to the
// worker stripes, Map re-panics with that task's index and value, and
// every other task still runs exactly once.
func TestPanicReRaisedAtEveryIndex(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	const n = 16
	for fail := 0; fail < n; fail++ {
		ran := make([]atomic.Int64, n)
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("fail=%d: panic did not propagate", fail)
				}
				pe, ok := v.(*panicError)
				if !ok {
					t.Fatalf("fail=%d: recovered %T, want *panicError", fail, v)
				}
				if pe.index != fail {
					t.Fatalf("fail=%d: panic index = %d", fail, pe.index)
				}
				if !strings.Contains(pe.Error(), "boom") {
					t.Fatalf("fail=%d: panic message %q lost the cause", fail, pe.Error())
				}
			}()
			Map(make([]struct{}, n), func(i int, _ struct{}) int {
				ran[i].Add(1)
				if i == fail {
					panic("boom")
				}
				return i
			})
		}()
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("fail=%d: task %d ran %d times, want 1", fail, i, got)
			}
		}
	}
}

// TestPanicInlinePathPropagatesRawValue covers the workers=1 inline
// path, where the panic is not wrapped: the caller sees the original
// value, exactly as a plain sequential loop would raise it.
func TestPanicInlinePathPropagatesRawValue(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	for fail := 0; fail < 4; fail++ {
		func() {
			defer func() {
				if v := recover(); v != "inline boom" {
					t.Fatalf("fail=%d: recovered %v, want raw panic value", fail, v)
				}
			}()
			Do(4, func(i int) {
				if i == fail {
					panic("inline boom")
				}
			})
		}()
	}
}
