// Package parallel is the deterministic worker pool the experiment
// harness fans independent cells out on. Every cell of the paper's
// evaluation grid builds an isolated service.Setup (its own simclock
// and in-memory cloud), so cells can run concurrently as long as the
// harness (a) hands each cell its inputs — seeds included — before
// anything runs, and (b) reassembles results in input order. Map and
// ForEach guarantee (b); the core package's seed reservation provides
// (a). Together they make a run with workers=8 byte-identical to a run
// with workers=1.
//
// The pool width defaults to GOMAXPROCS and can be overridden globally
// (SetWorkers, wired to tuebench's -workers flag) so benchmarks and the
// determinism tests can pin it.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride holds the SetWorkers value; 0 means "use GOMAXPROCS".
var workerOverride atomic.Int64

// Workers reports the pool width Map and ForEach will use: the last
// SetWorkers value, or GOMAXPROCS when none is set.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the pool width for subsequent Map/ForEach calls.
// n <= 0 restores the GOMAXPROCS default. The override is global and
// safe to change concurrently; in-flight calls keep the width they
// started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
}

// panicError carries a recovered task panic (with the input index that
// raised it) from a worker goroutine back to the Map caller.
type panicError struct {
	index int
	value any
}

func (e *panicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.index, e.value)
}

// Map applies fn to every item on at most Workers() goroutines and
// returns the results in input order, regardless of completion order.
// fn must be safe to call concurrently and must not depend on the
// relative execution order of items. If any task panics, Map waits for
// the remaining started tasks and re-panics with the lowest-indexed
// panic value, so failures are as deterministic as results.
func Map[T, R any](items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	run(len(items), func(i int) {
		out[i] = fn(i, items[i])
	})
	return out
}

// ForEach applies fn to every item under the same pool, ordering, and
// panic contract as Map, for tasks that write their own results.
func ForEach[T any](items []T, fn func(i int, item T)) {
	run(len(items), func(i int) {
		fn(i, items[i])
	})
}

// Do runs n indexed tasks under the same contract as Map.
func Do(n int, fn func(i int)) {
	run(n, fn)
}

// run executes n indexed tasks on the pool. With one worker (or one
// task) it runs inline on the caller's goroutine: the workers=1 path is
// exactly the sequential loop the experiments used before the pool
// existed, which is what the determinism tests compare against.
func run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *panicError
	)
	record := func(i int, v any) {
		panicMu.Lock()
		defer panicMu.Unlock()
		if panicked == nil || i < panicked.index {
			panicked = &panicError{index: i, value: v}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							record(i, v)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
