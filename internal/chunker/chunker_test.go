package chunker_test

import (
	"bytes"
	"crypto/md5"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudsync/internal/chunker"
	"cloudsync/internal/content"
)

func TestFixedBasics(t *testing.T) {
	data := content.Random(1000, 1).Bytes()
	blocks := chunker.Fixed(data, 256)
	if len(blocks) != 4 {
		t.Fatalf("len(blocks) = %d, want 4", len(blocks))
	}
	wantSizes := []int{256, 256, 256, 232}
	for i, b := range blocks {
		if b.Size != wantSizes[i] {
			t.Errorf("block %d size = %d, want %d", i, b.Size, wantSizes[i])
		}
		if b.Off != int64(i*256) {
			t.Errorf("block %d off = %d", i, b.Off)
		}
		if b.Sum != md5.Sum(data[b.Off:b.Off+int64(b.Size)]) {
			t.Errorf("block %d fingerprint mismatch", i)
		}
	}
}

func TestFixedEmpty(t *testing.T) {
	if got := chunker.Fixed(nil, 128); got != nil {
		t.Fatalf("chunker.Fixed(nil) = %v", got)
	}
}

func TestFixedExactMultiple(t *testing.T) {
	data := content.Random(512, 2).Bytes()
	blocks := chunker.Fixed(data, 256)
	if len(blocks) != 2 || blocks[1].Size != 256 {
		t.Fatalf("blocks = %+v", blocks)
	}
}

func TestFixedInvalidBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fixed with blockSize 0 did not panic")
		}
	}()
	chunker.Fixed([]byte{1}, 0)
}

func TestFingerprintReaderMatchesFixed(t *testing.T) {
	blob := content.Text(100_000, 3)
	sums, err := chunker.FingerprintReader(blob.Reader(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	blocks := chunker.Fixed(blob.Bytes(), 4096)
	if len(sums) != len(blocks) {
		t.Fatalf("reader gave %d blocks, Fixed gave %d", len(sums), len(blocks))
	}
	for i := range sums {
		if sums[i] != blocks[i].Sum {
			t.Fatalf("block %d fingerprint mismatch", i)
		}
	}
}

func TestFingerprintReaderEmpty(t *testing.T) {
	sums, err := chunker.FingerprintReader(bytes.NewReader(nil), 128)
	if err != nil || sums != nil {
		t.Fatalf("empty reader = (%v, %v)", sums, err)
	}
}

func TestNumBlocks(t *testing.T) {
	cases := []struct {
		size int64
		bs   int
		want int64
	}{
		{0, 128, 0}, {1, 128, 1}, {128, 128, 1}, {129, 128, 2}, {1 << 20, 4096, 256},
	}
	for _, c := range cases {
		if got := chunker.NumBlocks(c.size, c.bs); got != c.want {
			t.Errorf("chunker.NumBlocks(%d, %d) = %d, want %d", c.size, c.bs, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	in := []chunker.Range{{10, 5}, {0, 3}, {12, 10}, {40, 0}, {30, 2}}
	out := chunker.Normalize(in)
	want := []chunker.Range{{0, 3}, {10, 12}, {30, 2}}
	if len(out) != len(want) {
		t.Fatalf("Normalize = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", out, want)
		}
	}
}

func TestNormalizeAdjacent(t *testing.T) {
	out := chunker.Normalize([]chunker.Range{{0, 10}, {10, 10}})
	if len(out) != 1 || out[0] != (chunker.Range{0, 20}) {
		t.Fatalf("adjacent ranges not merged: %v", out)
	}
}

func TestDirtyBlocks(t *testing.T) {
	cases := []struct {
		name   string
		size   int64
		bs     int
		ranges []chunker.Range
		want   int64
	}{
		{"no ranges", 1000, 100, nil, 0},
		{"one byte", 1000, 100, []chunker.Range{{550, 1}}, 1},
		{"spans boundary", 1000, 100, []chunker.Range{{95, 10}}, 2},
		{"two ranges same block", 1000, 100, []chunker.Range{{10, 5}, {20, 5}}, 1},
		{"two ranges different blocks", 1000, 100, []chunker.Range{{10, 5}, {210, 5}}, 2},
		{"whole file", 1000, 100, []chunker.Range{{0, 1000}}, 10},
		{"past EOF clamped", 1000, 100, []chunker.Range{{950, 500}}, 1},
		{"fully past EOF", 1000, 100, []chunker.Range{{2000, 10}}, 0},
		{"append region", 1000, 100, []chunker.Range{{900, 100}}, 1},
	}
	for _, c := range cases {
		if got := chunker.DirtyBlocks(c.size, c.bs, c.ranges); got != c.want {
			t.Errorf("%s: DirtyBlocks = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDirtyBytes(t *testing.T) {
	// One dirty byte in a 1000-byte file with 100-byte blocks costs one
	// full block.
	if got := chunker.DirtyBytes(1000, 100, []chunker.Range{{550, 1}}); got != 100 {
		t.Fatalf("DirtyBytes = %d, want 100", got)
	}
	// Final short block costs only its real length.
	if got := chunker.DirtyBytes(950, 100, []chunker.Range{{940, 5}}); got != 50 {
		t.Fatalf("DirtyBytes (short tail) = %d, want 50", got)
	}
	if got := chunker.DirtyBytes(1000, 100, nil); got != 0 {
		t.Fatalf("DirtyBytes (clean) = %d, want 0", got)
	}
}

// Property: DirtyBlocks matches a brute-force block-marking oracle.
func TestPropertyDirtyBlocksOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		size := int64(1 + rng.Intn(5000))
		bs := 1 + rng.Intn(300)
		var ranges []chunker.Range
		for i := 0; i < rng.Intn(6); i++ {
			ranges = append(ranges, chunker.Range{
				Off: int64(rng.Intn(6000)),
				Len: int64(rng.Intn(500)),
			})
		}
		dirty := make(map[int64]bool)
		for _, r := range ranges {
			for b := int64(0); b < chunker.NumBlocks(size, bs); b++ {
				start, end := b*int64(bs), (b+1)*int64(bs)
				if end > size {
					end = size
				}
				if r.Off < end && r.Off+r.Len > start && r.Len > 0 {
					dirty[b] = true
				}
			}
		}
		if got := chunker.DirtyBlocks(size, bs, ranges); got != int64(len(dirty)) {
			t.Fatalf("iter %d: size=%d bs=%d ranges=%v: got %d want %d",
				iter, size, bs, ranges, got, len(dirty))
		}
	}
}

// Property: Fixed blocks tile the input exactly.
func TestPropertyFixedTiles(t *testing.T) {
	f := func(seed int64, szRaw uint16, bsRaw uint8) bool {
		size := int64(szRaw)
		bs := int(bsRaw)%1000 + 1
		data := content.Random(size, seed).Bytes()
		blocks := chunker.Fixed(data, bs)
		var covered int64
		for i, b := range blocks {
			if b.Off != covered {
				return false
			}
			covered += int64(b.Size)
			if i < len(blocks)-1 && b.Size != bs {
				return false
			}
		}
		return covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContentDefinedTiles(t *testing.T) {
	data := content.Random(200_000, 5).Bytes()
	blocks := chunker.ContentDefined(data, 2048, 8192, 65536)
	var covered int64
	for _, b := range blocks {
		if b.Off != covered {
			t.Fatalf("gap at %d", covered)
		}
		if b.Size < 2048 && b.Off+int64(b.Size) != int64(len(data)) {
			t.Fatalf("non-final block below min: %+v", b)
		}
		if b.Size > 65536 {
			t.Fatalf("block above max: %+v", b)
		}
		covered += int64(b.Size)
	}
	if covered != int64(len(data)) {
		t.Fatalf("covered %d of %d", covered, len(data))
	}
	// Average should be loosely near the target.
	avg := float64(len(data)) / float64(len(blocks))
	if avg < 2048 || avg > 32768 {
		t.Fatalf("average chunk %f, want near 8192", avg)
	}
}

func TestContentDefinedShiftInvariance(t *testing.T) {
	// Insert bytes at the front; most chunks after the insertion point
	// should be identical — the property fixed-size blocking lacks.
	data := content.Random(300_000, 6).Bytes()
	shifted := append(append([]byte{}, content.Random(100, 7).Bytes()...), data...)
	a := chunker.ContentDefined(data, 2048, 8192, 65536)
	b := chunker.ContentDefined(shifted, 2048, 8192, 65536)
	sums := make(map[[md5.Size]byte]bool, len(a))
	for _, blk := range a {
		sums[blk.Sum] = true
	}
	shared := 0
	for _, blk := range b {
		if sums[blk.Sum] {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(a)); frac < 0.8 {
		t.Fatalf("only %.2f of chunks survive a front insertion; CDC should preserve most", frac)
	}

	// Fixed-size blocking, by contrast, loses (nearly) everything.
	fa := chunker.Fixed(data, 8192)
	fb := chunker.Fixed(shifted, 8192)
	fixedSums := make(map[[md5.Size]byte]bool, len(fa))
	for _, blk := range fa {
		fixedSums[blk.Sum] = true
	}
	fshared := 0
	for _, blk := range fb {
		if fixedSums[blk.Sum] {
			fshared++
		}
	}
	if fshared > len(fa)/10 {
		t.Fatalf("fixed blocking unexpectedly survived the shift (%d/%d)", fshared, len(fa))
	}
}

func TestContentDefinedValidation(t *testing.T) {
	for _, c := range []struct{ min, avg, max int }{
		{0, 8, 16}, {8, 4, 16}, {8, 16, 8}, {4, 7, 16},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("chunker.ContentDefined(%v) did not panic", c)
				}
			}()
			chunker.ContentDefined([]byte{1, 2, 3}, c.min, c.avg, c.max)
		}()
	}
}

func TestContentDefinedDeterministic(t *testing.T) {
	data := content.Random(50_000, 8).Bytes()
	a := chunker.ContentDefined(data, 1024, 4096, 16384)
	b := chunker.ContentDefined(data, 1024, 4096, 16384)
	if len(a) != len(b) {
		t.Fatal("non-deterministic chunk count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic chunks")
		}
	}
}

func TestStandardBlockSizes(t *testing.T) {
	if len(chunker.StandardBlockSizes) != 8 {
		t.Fatalf("want 8 standard sizes (Table 3), got %d", len(chunker.StandardBlockSizes))
	}
	if chunker.StandardBlockSizes[0] != 128<<10 || chunker.StandardBlockSizes[7] != 16<<20 {
		t.Fatalf("standard sizes = %v", chunker.StandardBlockSizes)
	}
}

func BenchmarkFixed1MB(b *testing.B) {
	data := content.Random(1<<20, 1).Bytes()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunker.Fixed(data, 128<<10)
	}
}

func BenchmarkContentDefined1MB(b *testing.B) {
	data := content.Random(1<<20, 1).Bytes()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunker.ContentDefined(data, 2048, 8192, 65536)
	}
}
