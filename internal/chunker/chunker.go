// Package chunker splits file content into blocks and fingerprints
// them. It provides the two chunking disciplines the paper discusses:
// the "simple and natural way" — fixed-size blocks from the head of the
// file, which is what the trace's 128 KB…16 MB block hashes and the
// deduplication analysis of § 5.2 use — and content-defined chunking
// with a rolling hash, the more elaborate scheme the paper cites
// ([19, 39]) but deliberately does not require.
package chunker

import (
	"crypto/md5"
	"fmt"
	"io"
	"slices"
)

// Block is one chunk of a file.
type Block struct {
	// Off is the byte offset of the block in the file.
	Off int64
	// Size is the block length (the final block may be short).
	Size int
	// Sum is the block's MD5 fingerprint.
	Sum [md5.Size]byte
}

// StandardBlockSizes are the block granularities recorded per file in
// the paper's trace (Table 3): 128 KB through 16 MB in powers of two.
var StandardBlockSizes = []int{
	128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20,
}

// Fixed splits data into fixed-size blocks starting at the head and
// fingerprints each. The final block may be shorter. Empty data yields
// no blocks.
func Fixed(data []byte, blockSize int) []Block {
	checkBlockSize(blockSize)
	if len(data) == 0 {
		return nil
	}
	blocks := make([]Block, 0, (len(data)+blockSize-1)/blockSize)
	for off := 0; off < len(data); off += blockSize {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		blocks = append(blocks, Block{
			Off:  int64(off),
			Size: end - off,
			Sum:  md5.Sum(data[off:end]),
		})
	}
	return blocks
}

// FingerprintReader streams r and returns the MD5 fingerprint of each
// fixed-size block, without holding the whole input in memory. Used by
// the trace tooling, whose records carry block hashes for files far
// larger than any in-memory buffer.
func FingerprintReader(r io.Reader, blockSize int) ([][md5.Size]byte, error) {
	checkBlockSize(blockSize)
	var sums [][md5.Size]byte
	buf := make([]byte, blockSize)
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			sums = append(sums, md5.Sum(buf[:n]))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return sums, nil
		}
		if err != nil {
			return nil, fmt.Errorf("chunker: reading block %d: %w", len(sums), err)
		}
	}
}

// Boundaries returns the fixed-size block layout of a file of the
// given size without fingerprinting anything: the same half-open ranges
// Fixed would hash. Callers that only need the geometry (chunk-object
// stores, dirty-range intersection) use this to skip the MD5 work.
func Boundaries(size int64, blockSize int) []Range {
	checkBlockSize(blockSize)
	if size <= 0 {
		return nil
	}
	out := make([]Range, 0, (size+int64(blockSize)-1)/int64(blockSize))
	for off := int64(0); off < size; off += int64(blockSize) {
		n := int64(blockSize)
		if off+n > size {
			n = size - off
		}
		out = append(out, Range{Off: off, Len: n})
	}
	return out
}

// NumBlocks reports how many fixed-size blocks a file of the given size
// splits into.
func NumBlocks(size int64, blockSize int) int64 {
	checkBlockSize(blockSize)
	if size <= 0 {
		return 0
	}
	return (size + int64(blockSize) - 1) / int64(blockSize)
}

// Range is a half-open dirty byte range [Off, Off+Len).
type Range struct {
	Off, Len int64
}

// Normalize sorts ranges, drops empty ones, and merges overlapping or
// adjacent ranges. When the input is already normalized — the common
// case for append-style edit logs — it is returned as-is without
// copying, so callers must treat both the argument and the result as
// read-only afterwards.
func Normalize(ranges []Range) []Range {
	normalized := true
	for i, r := range ranges {
		if r.Len <= 0 || (i > 0 && r.Off <= ranges[i-1].Off+ranges[i-1].Len) {
			normalized = false
			break
		}
	}
	if normalized {
		return ranges
	}
	rs := make([]Range, 0, len(ranges))
	for _, r := range ranges {
		if r.Len > 0 {
			rs = append(rs, r)
		}
	}
	slices.SortStableFunc(rs, func(a, b Range) int {
		switch {
		case a.Off < b.Off:
			return -1
		case a.Off > b.Off:
			return 1
		default:
			return 0
		}
	})
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 && r.Off <= out[n-1].Off+out[n-1].Len {
			end := r.Off + r.Len
			if last := out[n-1].Off + out[n-1].Len; end < last {
				end = last
			}
			out[n-1].Len = end - out[n-1].Off
			continue
		}
		out = append(out, r)
	}
	return out
}

// DirtyBlocks reports how many fixed-size blocks of a file of the given
// size overlap at least one of the dirty ranges — the number of blocks
// an incremental sync must transfer. Ranges are clamped to the file.
// This is the analytic core of the simulator's chunk-level sync: it
// computes, without materializing content, exactly what the rsync
// implementation in internal/delta would resend.
func DirtyBlocks(size int64, blockSize int, ranges []Range) int64 {
	return dirtyBlocksNorm(size, blockSize, Normalize(ranges))
}

// dirtyBlocksNorm is DirtyBlocks on pre-normalized ranges, so callers
// that need several passes (DirtyBytes) normalize exactly once.
func dirtyBlocksNorm(size int64, blockSize int, norm []Range) int64 {
	checkBlockSize(blockSize)
	if size <= 0 {
		return 0
	}
	bs := int64(blockSize)
	var total int64
	prevLast := int64(-1) // highest block index already counted
	for _, r := range norm {
		if r.Off >= size {
			break // normalized ranges are sorted
		}
		end := r.Off + r.Len
		if end > size {
			end = size
		}
		first := r.Off / bs
		last := (end - 1) / bs
		if first <= prevLast {
			first = prevLast + 1
		}
		if last >= first {
			total += last - first + 1
			prevLast = last
		}
	}
	return total
}

// DirtyBytes reports the byte volume of the dirty blocks: blocks × block
// size, clamped to the file size for the trailing block.
func DirtyBytes(size int64, blockSize int, ranges []Range) int64 {
	norm := Normalize(ranges)
	n := dirtyBlocksNorm(size, blockSize, norm)
	if n == 0 {
		return 0
	}
	bs := int64(blockSize)
	full := n * bs
	// If the final block of the file is dirty and short, do not charge a
	// full block for it.
	lastBlockStart := ((size - 1) / bs) * bs
	lastShort := size - lastBlockStart
	if lastShort < bs && blockDirty(size, blockSize, norm, lastBlockStart/bs) {
		full = full - bs + lastShort
	}
	return full
}

// blockDirty reports whether block idx intersects any of the ranges,
// which must already be normalized (sorted, merged) — re-normalizing
// here made DirtyBytes quadratic-ish on many-range files.
func blockDirty(size int64, blockSize int, norm []Range, idx int64) bool {
	bs := int64(blockSize)
	start, end := idx*bs, (idx+1)*bs
	if end > size {
		end = size
	}
	for _, r := range norm {
		if r.Off >= end {
			return false // sorted: nothing later can intersect
		}
		if r.Off+r.Len > start {
			return true
		}
	}
	return false
}

func checkBlockSize(blockSize int) {
	if blockSize <= 0 {
		panic(fmt.Sprintf("chunker: invalid block size %d", blockSize))
	}
}

// gearTable drives the content-defined chunker's rolling hash. Values
// are generated once from a fixed seed so chunk boundaries are stable
// across runs and Go versions.
var gearTable = buildGearTable()

func buildGearTable() [256]uint64 {
	var t [256]uint64
	state := uint64(0x1234_5678_9ABC_DEF0)
	for i := range t {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}

// gearWindow is the gear hash's effective window: h = (h<<1) + g[b]
// shifts each byte's contribution left once per subsequent byte, so
// after 64 shifts it has left the 64-bit register entirely. The hash at
// position i therefore depends only on data[i-63 … i], which is what
// lets the scan skip the un-judged prefix of each chunk (see CutPoints).
const gearWindow = 64

func checkCDCParams(min, avg, max int) {
	if min <= 0 || avg < min || max < avg {
		panic(fmt.Sprintf("chunker: invalid CDC parameters min=%d avg=%d max=%d", min, avg, max))
	}
	if avg&(avg-1) != 0 {
		panic(fmt.Sprintf("chunker: average chunk size %d must be a power of two", avg))
	}
}

// ContentDefined splits data at content-defined boundaries using a gear
// rolling hash, with minimum, average (power of two), and maximum chunk
// sizes. Identical content regions produce identical chunks regardless
// of their offsets, which is what makes this discipline robust to
// insertions — the property fixed-size blocking lacks.
//
// Boundary discovery and strong hashing are separate passes: CutPoints
// finds the geometry with the skip-optimized scan, then every chunk is
// fingerprinted in one batched MD5 sweep. Cut points are identical to
// the straightforward reference loop (contentDefinedRef) — asserted by
// the differential harness — so committed tables never move.
func ContentDefined(data []byte, min, avg, max int) []Block {
	cuts := CutPoints(data, min, avg, max)
	return sumBlocks(data, cuts)
}

// sumBlocks is the batched strong-hash pass: one MD5 per cut range.
func sumBlocks(data []byte, cuts []Range) []Block {
	if len(cuts) == 0 {
		return nil
	}
	blocks := make([]Block, len(cuts))
	for i, r := range cuts {
		blocks[i] = Block{
			Off:  r.Off,
			Size: int(r.Len),
			Sum:  md5.Sum(data[r.Off : r.Off+r.Len]),
		}
	}
	return blocks
}

// CutPoints returns the content-defined chunk layout of data without
// fingerprinting anything — the CDC counterpart of Boundaries. Callers
// that only need geometry (insert-shift accounting, cached fingerprint
// lookups) skip the MD5 work entirely.
//
// The scan is FastCDC-style: no byte below the minimum chunk length can
// be a cut, and the gear hash only remembers the last gearWindow bytes,
// so each chunk's scan starts at start+min-gearWindow — a 64-byte
// warm-up, then a judged segment whose inner loop tests nothing but the
// hash mask (the min bound is already proven and the max bound is the
// segment end). For min < gearWindow the warm-up would underrun the
// chunk start, so the reference loop runs instead; both paths produce
// identical cut points.
func CutPoints(data []byte, min, avg, max int) []Range {
	checkCDCParams(min, avg, max)
	if len(data) == 0 {
		return nil
	}
	if min < gearWindow {
		return cutPointsRef(data, min, avg, max)
	}
	mask := uint64(avg - 1)
	cuts := make([]Range, 0, len(data)/avg+1)
	start := 0
	for len(data)-start >= min {
		// First judged position: the byte completing a min-length chunk.
		i := start + min - 1
		// Last position a mask cut may land on is start+max-1 (a chunk of
		// exactly max bytes); cap the judged segment there and at EOF.
		end := start + max
		if end > len(data) {
			end = len(data)
		}
		// Warm-up: absorb the gearWindow-1 bytes before the first judged
		// position. h then matches the reference loop's value at every
		// judged position (older bytes have shifted out of the register).
		var h uint64
		for j := i - (gearWindow - 1); j < i; j++ {
			h = (h << 1) + gearTable[data[j]]
		}
		// Judged segment: branch-minimized — one table add, one mask test.
		cut := -1
		for ; i < end; i++ {
			h = (h << 1) + gearTable[data[i]]
			if h&mask == mask {
				cut = i
				break
			}
		}
		if cut < 0 {
			if end == start+max {
				// Mask never fired within max bytes: forced cut at max.
				cut = end - 1
			} else {
				// Ran off the end of data: the remainder is the final chunk.
				break
			}
		}
		cuts = append(cuts, Range{Off: int64(start), Len: int64(cut - start + 1)})
		start = cut + 1
	}
	if start < len(data) {
		cuts = append(cuts, Range{Off: int64(start), Len: int64(len(data) - start)})
	}
	return cuts
}

// ContentDefinedNC is ContentDefined with FastCDC's two-mask chunk-size
// normalization: positions below the average length are judged with a
// stricter mask (one extra bit) and positions at or beyond it with a
// looser one (one bit fewer). Chunk sizes cluster around avg — fewer
// tiny and fewer max-capped chunks — at the cost of slightly weaker
// boundary stability under edits (a cut's survival now also depends on
// which side of the average the scan meets it from). It is a separate
// ablation variant: ContentDefined's cut points are untouched.
func ContentDefinedNC(data []byte, min, avg, max int) []Block {
	return sumBlocks(data, CutPointsNC(data, min, avg, max))
}

// CutPointsNC is the geometry-only pass of ContentDefinedNC. It uses
// the same warm-up-window skip as CutPoints, with the judged segment
// split at the average-length position where the mask switches. avg
// must be at least 2 so the loose mask keeps one bit.
func CutPointsNC(data []byte, min, avg, max int) []Range {
	checkCDCParams(min, avg, max)
	if avg < 2 {
		panic(fmt.Sprintf("chunker: normalized chunking needs avg ≥ 2, got %d", avg))
	}
	if len(data) == 0 {
		return nil
	}
	if min < gearWindow {
		return cutPointsNCRef(data, min, avg, max)
	}
	maskS := uint64(2*avg - 1) // one bit stricter: fires half as often
	maskL := uint64(avg/2 - 1) // one bit looser: fires twice as often
	cuts := make([]Range, 0, len(data)/avg+1)
	start := 0
	for len(data)-start >= min {
		i := start + min - 1
		end := start + max
		if end > len(data) {
			end = len(data)
		}
		// The strict segment covers lengths in [min, avg), the loose one
		// [avg, max); both are clipped to the data.
		split := start + avg - 1
		if split > end {
			split = end
		}
		var h uint64
		for j := i - (gearWindow - 1); j < i; j++ {
			h = (h << 1) + gearTable[data[j]]
		}
		cut := -1
		for ; i < split; i++ {
			h = (h << 1) + gearTable[data[i]]
			if h&maskS == maskS {
				cut = i
				break
			}
		}
		if cut < 0 {
			for ; i < end; i++ {
				h = (h << 1) + gearTable[data[i]]
				if h&maskL == maskL {
					cut = i
					break
				}
			}
		}
		if cut < 0 {
			if end == start+max {
				cut = end - 1
			} else {
				break
			}
		}
		cuts = append(cuts, Range{Off: int64(start), Len: int64(cut - start + 1)})
		start = cut + 1
	}
	if start < len(data) {
		cuts = append(cuts, Range{Off: int64(start), Len: int64(len(data) - start)})
	}
	return cuts
}
