// Package chunker splits file content into blocks and fingerprints
// them. It provides the two chunking disciplines the paper discusses:
// the "simple and natural way" — fixed-size blocks from the head of the
// file, which is what the trace's 128 KB…16 MB block hashes and the
// deduplication analysis of § 5.2 use — and content-defined chunking
// with a rolling hash, the more elaborate scheme the paper cites
// ([19, 39]) but deliberately does not require.
package chunker

import (
	"crypto/md5"
	"fmt"
	"io"
	"slices"
)

// Block is one chunk of a file.
type Block struct {
	// Off is the byte offset of the block in the file.
	Off int64
	// Size is the block length (the final block may be short).
	Size int
	// Sum is the block's MD5 fingerprint.
	Sum [md5.Size]byte
}

// StandardBlockSizes are the block granularities recorded per file in
// the paper's trace (Table 3): 128 KB through 16 MB in powers of two.
var StandardBlockSizes = []int{
	128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20,
}

// Fixed splits data into fixed-size blocks starting at the head and
// fingerprints each. The final block may be shorter. Empty data yields
// no blocks.
func Fixed(data []byte, blockSize int) []Block {
	checkBlockSize(blockSize)
	if len(data) == 0 {
		return nil
	}
	blocks := make([]Block, 0, (len(data)+blockSize-1)/blockSize)
	for off := 0; off < len(data); off += blockSize {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		blocks = append(blocks, Block{
			Off:  int64(off),
			Size: end - off,
			Sum:  md5.Sum(data[off:end]),
		})
	}
	return blocks
}

// FingerprintReader streams r and returns the MD5 fingerprint of each
// fixed-size block, without holding the whole input in memory. Used by
// the trace tooling, whose records carry block hashes for files far
// larger than any in-memory buffer.
func FingerprintReader(r io.Reader, blockSize int) ([][md5.Size]byte, error) {
	checkBlockSize(blockSize)
	var sums [][md5.Size]byte
	buf := make([]byte, blockSize)
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			sums = append(sums, md5.Sum(buf[:n]))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return sums, nil
		}
		if err != nil {
			return nil, fmt.Errorf("chunker: reading block %d: %w", len(sums), err)
		}
	}
}

// Boundaries returns the fixed-size block layout of a file of the
// given size without fingerprinting anything: the same half-open ranges
// Fixed would hash. Callers that only need the geometry (chunk-object
// stores, dirty-range intersection) use this to skip the MD5 work.
func Boundaries(size int64, blockSize int) []Range {
	checkBlockSize(blockSize)
	if size <= 0 {
		return nil
	}
	out := make([]Range, 0, (size+int64(blockSize)-1)/int64(blockSize))
	for off := int64(0); off < size; off += int64(blockSize) {
		n := int64(blockSize)
		if off+n > size {
			n = size - off
		}
		out = append(out, Range{Off: off, Len: n})
	}
	return out
}

// NumBlocks reports how many fixed-size blocks a file of the given size
// splits into.
func NumBlocks(size int64, blockSize int) int64 {
	checkBlockSize(blockSize)
	if size <= 0 {
		return 0
	}
	return (size + int64(blockSize) - 1) / int64(blockSize)
}

// Range is a half-open dirty byte range [Off, Off+Len).
type Range struct {
	Off, Len int64
}

// Normalize sorts ranges, drops empty ones, and merges overlapping or
// adjacent ranges. When the input is already normalized — the common
// case for append-style edit logs — it is returned as-is without
// copying, so callers must treat both the argument and the result as
// read-only afterwards.
func Normalize(ranges []Range) []Range {
	normalized := true
	for i, r := range ranges {
		if r.Len <= 0 || (i > 0 && r.Off <= ranges[i-1].Off+ranges[i-1].Len) {
			normalized = false
			break
		}
	}
	if normalized {
		return ranges
	}
	rs := make([]Range, 0, len(ranges))
	for _, r := range ranges {
		if r.Len > 0 {
			rs = append(rs, r)
		}
	}
	slices.SortStableFunc(rs, func(a, b Range) int {
		switch {
		case a.Off < b.Off:
			return -1
		case a.Off > b.Off:
			return 1
		default:
			return 0
		}
	})
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 && r.Off <= out[n-1].Off+out[n-1].Len {
			end := r.Off + r.Len
			if last := out[n-1].Off + out[n-1].Len; end < last {
				end = last
			}
			out[n-1].Len = end - out[n-1].Off
			continue
		}
		out = append(out, r)
	}
	return out
}

// DirtyBlocks reports how many fixed-size blocks of a file of the given
// size overlap at least one of the dirty ranges — the number of blocks
// an incremental sync must transfer. Ranges are clamped to the file.
// This is the analytic core of the simulator's chunk-level sync: it
// computes, without materializing content, exactly what the rsync
// implementation in internal/delta would resend.
func DirtyBlocks(size int64, blockSize int, ranges []Range) int64 {
	return dirtyBlocksNorm(size, blockSize, Normalize(ranges))
}

// dirtyBlocksNorm is DirtyBlocks on pre-normalized ranges, so callers
// that need several passes (DirtyBytes) normalize exactly once.
func dirtyBlocksNorm(size int64, blockSize int, norm []Range) int64 {
	checkBlockSize(blockSize)
	if size <= 0 {
		return 0
	}
	bs := int64(blockSize)
	var total int64
	prevLast := int64(-1) // highest block index already counted
	for _, r := range norm {
		if r.Off >= size {
			break // normalized ranges are sorted
		}
		end := r.Off + r.Len
		if end > size {
			end = size
		}
		first := r.Off / bs
		last := (end - 1) / bs
		if first <= prevLast {
			first = prevLast + 1
		}
		if last >= first {
			total += last - first + 1
			prevLast = last
		}
	}
	return total
}

// DirtyBytes reports the byte volume of the dirty blocks: blocks × block
// size, clamped to the file size for the trailing block.
func DirtyBytes(size int64, blockSize int, ranges []Range) int64 {
	norm := Normalize(ranges)
	n := dirtyBlocksNorm(size, blockSize, norm)
	if n == 0 {
		return 0
	}
	bs := int64(blockSize)
	full := n * bs
	// If the final block of the file is dirty and short, do not charge a
	// full block for it.
	lastBlockStart := ((size - 1) / bs) * bs
	lastShort := size - lastBlockStart
	if lastShort < bs && blockDirty(size, blockSize, norm, lastBlockStart/bs) {
		full = full - bs + lastShort
	}
	return full
}

// blockDirty reports whether block idx intersects any of the ranges,
// which must already be normalized (sorted, merged) — re-normalizing
// here made DirtyBytes quadratic-ish on many-range files.
func blockDirty(size int64, blockSize int, norm []Range, idx int64) bool {
	bs := int64(blockSize)
	start, end := idx*bs, (idx+1)*bs
	if end > size {
		end = size
	}
	for _, r := range norm {
		if r.Off >= end {
			return false // sorted: nothing later can intersect
		}
		if r.Off+r.Len > start {
			return true
		}
	}
	return false
}

func checkBlockSize(blockSize int) {
	if blockSize <= 0 {
		panic(fmt.Sprintf("chunker: invalid block size %d", blockSize))
	}
}

// gearTable drives the content-defined chunker's rolling hash. Values
// are generated once from a fixed seed so chunk boundaries are stable
// across runs and Go versions.
var gearTable = buildGearTable()

func buildGearTable() [256]uint64 {
	var t [256]uint64
	state := uint64(0x1234_5678_9ABC_DEF0)
	for i := range t {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}

// ContentDefined splits data at content-defined boundaries using a gear
// rolling hash, with minimum, average (power of two), and maximum chunk
// sizes. Identical content regions produce identical chunks regardless
// of their offsets, which is what makes this discipline robust to
// insertions — the property fixed-size blocking lacks.
func ContentDefined(data []byte, min, avg, max int) []Block {
	if min <= 0 || avg < min || max < avg {
		panic(fmt.Sprintf("chunker: invalid CDC parameters min=%d avg=%d max=%d", min, avg, max))
	}
	if avg&(avg-1) != 0 {
		panic(fmt.Sprintf("chunker: average chunk size %d must be a power of two", avg))
	}
	mask := uint64(avg - 1)
	var blocks []Block
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = (h << 1) + gearTable[data[i]]
		length := i - start + 1
		if (length >= min && h&mask == mask) || length >= max {
			blocks = append(blocks, Block{
				Off:  int64(start),
				Size: length,
				Sum:  md5.Sum(data[start : i+1]),
			})
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		blocks = append(blocks, Block{
			Off:  int64(start),
			Size: len(data) - start,
			Sum:  md5.Sum(data[start:]),
		})
	}
	return blocks
}
