package chunker

// Reference cut-point scans: the byte-at-a-time loops the optimized
// CutPoints/CutPointsNC paths must agree with exactly. They judge every
// byte with the full length checks — no warm-up skip, no segment
// bounds — which makes them obviously correct and obviously slow. They
// are not test fixtures: CutPoints falls back to them whenever
// min < gearWindow (the skip would underrun the chunk start), and the
// differential harness holds the fast paths to them on every random
// parameter draw, so they must stay in the package proper.

// cutPointsRef is the reference boundary scan for CutPoints: the
// original ContentDefined loop with the MD5 pass removed. Callers have
// validated the parameters.
func cutPointsRef(data []byte, min, avg, max int) []Range {
	mask := uint64(avg - 1)
	var cuts []Range
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = (h << 1) + gearTable[data[i]]
		length := i - start + 1
		if (length >= min && h&mask == mask) || length >= max {
			cuts = append(cuts, Range{Off: int64(start), Len: int64(length)})
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		cuts = append(cuts, Range{Off: int64(start), Len: int64(len(data) - start)})
	}
	return cuts
}

// cutPointsNCRef is the reference scan for CutPointsNC: two-mask
// normalization judged byte-at-a-time. Lengths in [min, avg) use the
// strict mask (one bit more than avg's), lengths in [avg, max) the
// loose one (one bit fewer), and max still forces a cut.
func cutPointsNCRef(data []byte, min, avg, max int) []Range {
	maskS := uint64(2*avg - 1)
	maskL := uint64(avg/2 - 1)
	var cuts []Range
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = (h << 1) + gearTable[data[i]]
		length := i - start + 1
		cut := false
		switch {
		case length >= max:
			cut = true
		case length < min:
		case length < avg:
			cut = h&maskS == maskS
		default:
			cut = h&maskL == maskL
		}
		if cut {
			cuts = append(cuts, Range{Off: int64(start), Len: int64(length)})
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		cuts = append(cuts, Range{Off: int64(start), Len: int64(len(data) - start)})
	}
	return cuts
}

// contentDefinedRef fingerprints the reference scan's chunks: the
// oracle the differential harness compares the full optimized pipeline
// (skip-scan geometry + batched hashing) against, block for block.
func contentDefinedRef(data []byte, min, avg, max int) []Block {
	checkCDCParams(min, avg, max)
	return sumBlocks(data, cutPointsRef(data, min, avg, max))
}
