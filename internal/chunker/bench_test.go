package chunker

import (
	"testing"
)

func benchData(n int) []byte {
	data := make([]byte, n)
	state := uint64(0x243F6A8885A308D3)
	for i := range data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		data[i] = byte(state)
	}
	return data
}

func BenchmarkFixed(b *testing.B) {
	data := benchData(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocks := Fixed(data, 128<<10); len(blocks) == 0 {
			b.Fatal("no blocks")
		}
	}
}

// BenchmarkContentDefined measures the full chunking pipeline —
// skip-optimized boundary scan plus the batched MD5 pass. On fresh
// content it is MD5-bound: the strong hash alone runs at ~600 MB/s on
// a 2.1 GHz Xeon, so this bench can approach but never beat that. The
// boundary-discovery kernel itself is BenchmarkContentDefinedCuts.
func BenchmarkContentDefined(b *testing.B) {
	data := benchData(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocks := ContentDefined(data, 2<<10, 8<<10, 32<<10); len(blocks) == 0 {
			b.Fatal("no blocks")
		}
	}
}

// BenchmarkContentDefinedCuts is the boundary-discovery kernel alone:
// the gear-hash scan with the warm-up-window skip, no fingerprinting —
// what geometry-only callers (and cache-hit fingerprinting) pay.
func BenchmarkContentDefinedCuts(b *testing.B) {
	data := benchData(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cuts := CutPoints(data, 2<<10, 8<<10, 32<<10); len(cuts) == 0 {
			b.Fatal("no cuts")
		}
	}
}

// BenchmarkContentDefinedCutsRef is the retained reference loop on the
// same input — the before/after of the skip-scan rewrite, kept so the
// speedup is visible in every bench run rather than only in history.
func BenchmarkContentDefinedCutsRef(b *testing.B) {
	data := benchData(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cuts := cutPointsRef(data, 2<<10, 8<<10, 32<<10); len(cuts) == 0 {
			b.Fatal("no cuts")
		}
	}
}

// BenchmarkContentDefinedNC is the two-mask normalized variant,
// geometry plus batched hashing.
func BenchmarkContentDefinedNC(b *testing.B) {
	data := benchData(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocks := ContentDefinedNC(data, 2<<10, 8<<10, 32<<10); len(blocks) == 0 {
			b.Fatal("no blocks")
		}
	}
}

// BenchmarkBoundaries measures the geometry-only path chunk-object
// stores use instead of Fixed when no fingerprints are needed.
func BenchmarkBoundaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rs := Boundaries(4<<20, 128<<10); len(rs) == 0 {
			b.Fatal("no ranges")
		}
	}
}

// BenchmarkDirtyBytesManyRanges exercises the path that used to
// re-normalize the range set inside blockDirty on every call.
func BenchmarkDirtyBytesManyRanges(b *testing.B) {
	const size = 64 << 20
	ranges := make([]Range, 0, 1024)
	for off := int64(0); off < size; off += size / 1024 {
		ranges = append(ranges, Range{Off: off, Len: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := DirtyBytes(size, 4<<20, ranges); n == 0 {
			b.Fatal("no dirty bytes")
		}
	}
}
