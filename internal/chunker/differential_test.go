package chunker

// Differential harness: the optimized cut scans (warm-up-window skip,
// segmented judged loop) against the retained byte-at-a-time reference
// loops, across random parameter draws — including min < gearWindow
// (the fallback path), adversarial all-equal-byte inputs, and masks
// that never fire — so cut-point exactness is enforced forever, not
// just on today's golden tables.

import (
	"fmt"
	"testing"
)

// diffRand is a small deterministic xorshift so the harness does not
// depend on content (which imports this package).
type diffRand uint64

func (r *diffRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = diffRand(x)
	return x
}

func (r *diffRand) intn(n int) int { return int(r.next() % uint64(n)) }

// randCDCParams draws a valid (min, avg, max) triple: avg a power of
// two in [32, 16384], min anywhere in [1, avg] (both the fallback and
// skip paths), max in [avg, 6·avg].
func randCDCParams(r *diffRand) (min, avg, max int) {
	avg = 32 << r.intn(10)
	min = 1 + r.intn(avg)
	max = avg + r.intn(5*avg+1)
	return min, avg, max
}

// randData draws adversarially shaped inputs: uniform random bytes,
// all-equal bytes (the mask may never fire, forcing max-capped cuts
// everywhere), tiny alphabets, and empty/short inputs.
func randData(r *diffRand, maxLen int) []byte {
	n := r.intn(maxLen + 1)
	data := make([]byte, n)
	switch r.intn(4) {
	case 0: // uniform random
		for i := range data {
			data[i] = byte(r.next())
		}
	case 1: // all-identical bytes
		b := byte(r.next())
		for i := range data {
			data[i] = b
		}
	case 2: // two-symbol alphabet with long runs
		b := byte(r.next())
		for i := range data {
			if r.intn(50) == 0 {
				b ^= 0xFF
			}
			data[i] = b
		}
	default: // short ascending ramp, repeated
		for i := range data {
			data[i] = byte(i)
		}
	}
	return data
}

func rangesEqual(a, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialCutPoints holds CutPoints to the reference loop over
// 1000 random (min, avg, max, data) draws.
func TestDifferentialCutPoints(t *testing.T) {
	r := diffRand(0x9E3779B97F4A7C15)
	fallback, skip := 0, 0
	for iter := 0; iter < 1000; iter++ {
		min, avg, max := randCDCParams(&r)
		data := randData(&r, 64<<10)
		if min < gearWindow {
			fallback++
		} else {
			skip++
		}
		got := CutPoints(data, min, avg, max)
		want := cutPointsRef(data, min, avg, max)
		if !rangesEqual(got, want) {
			t.Fatalf("iter %d: CutPoints(len=%d, %d/%d/%d) diverged from reference:\ngot  %v\nwant %v",
				iter, len(data), min, avg, max, clip(got), clip(want))
		}
	}
	// Both the fallback (min < gearWindow) and the skip path must have
	// been exercised, or the draw distribution has rotted.
	if fallback == 0 || skip == 0 {
		t.Fatalf("draws covered fallback=%d skip=%d; both paths must be hit", fallback, skip)
	}
}

// TestDifferentialCutPointsNC is the same harness for the normalized
// two-mask variant.
func TestDifferentialCutPointsNC(t *testing.T) {
	r := diffRand(0x243F6A8885A308D3)
	for iter := 0; iter < 1000; iter++ {
		min, avg, max := randCDCParams(&r)
		data := randData(&r, 64<<10)
		got := CutPointsNC(data, min, avg, max)
		want := cutPointsNCRef(data, min, avg, max)
		if !rangesEqual(got, want) {
			t.Fatalf("iter %d: CutPointsNC(len=%d, %d/%d/%d) diverged from reference:\ngot  %v\nwant %v",
				iter, len(data), min, avg, max, clip(got), clip(want))
		}
	}
}

// TestDifferentialContentDefined holds the full optimized pipeline —
// geometry pass plus batched MD5 — to the reference scan's blocks.
func TestDifferentialContentDefined(t *testing.T) {
	r := diffRand(0xDEADBEEFCAFEF00D)
	for iter := 0; iter < 200; iter++ {
		min, avg, max := randCDCParams(&r)
		data := randData(&r, 32<<10)
		got := ContentDefined(data, min, avg, max)
		want := contentDefinedRef(data, min, avg, max)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d blocks vs reference %d", iter, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: block %d = %+v, reference %+v", iter, i, got[i], want[i])
			}
		}
	}
}

// clip keeps failure messages readable on thousand-chunk inputs.
func clip(rs []Range) string {
	if len(rs) <= 12 {
		return fmt.Sprint(rs)
	}
	return fmt.Sprintf("%v … (%d ranges)", rs[:12], len(rs))
}

// --- Directed edge cases -------------------------------------------------

func TestCutPointsEmpty(t *testing.T) {
	if got := CutPoints(nil, 64, 128, 256); got != nil {
		t.Fatalf("CutPoints(nil) = %v", got)
	}
	if got := ContentDefined(nil, 64, 128, 256); got != nil {
		t.Fatalf("ContentDefined(nil) = %v", got)
	}
	if got := CutPointsNC(nil, 64, 128, 256); got != nil {
		t.Fatalf("CutPointsNC(nil) = %v", got)
	}
}

// TestCutPointsMinBelowWindow pins the fallback path: min below the
// 64-byte gear warm-up window must still match the reference exactly
// (the skip trick would judge positions whose hash had not absorbed
// the full prefix).
func TestCutPointsMinBelowWindow(t *testing.T) {
	r := diffRand(7)
	data := randData(&r, 0)
	data = make([]byte, 20000)
	for i := range data {
		data[i] = byte(r.next())
	}
	for _, min := range []int{1, 2, 16, 63} {
		got := CutPoints(data, min, 256, 1024)
		want := cutPointsRef(data, min, 256, 1024)
		if !rangesEqual(got, want) {
			t.Fatalf("min=%d: fallback diverged from reference", min)
		}
	}
}

// TestCutPointsAllEqualBytes: on a constant input the gear hash is the
// same at every same-length position, so either every chunk cuts at
// the identical mask-fire length or the mask never fires and every
// chunk is exactly max (the never-matching-mask shape). Both must
// agree with the reference and tile the input.
func TestCutPointsAllEqualBytes(t *testing.T) {
	for b := 0; b < 256; b += 17 {
		data := make([]byte, 50000)
		for i := range data {
			data[i] = byte(b)
		}
		got := CutPoints(data, 64, 512, 2048)
		if !rangesEqual(got, cutPointsRef(data, 64, 512, 2048)) {
			t.Fatalf("byte %#x: diverged from reference", b)
		}
		var covered int64
		for i, r := range got {
			if r.Off != covered {
				t.Fatalf("byte %#x: gap at %d", b, covered)
			}
			covered += r.Len
			// All non-final chunks of a constant input are the same length.
			if i > 0 && i < len(got)-1 && r.Len != got[0].Len {
				t.Fatalf("byte %#x: constant input produced unequal chunks %d and %d", b, got[0].Len, r.Len)
			}
		}
		if covered != int64(len(data)) {
			t.Fatalf("byte %#x: covered %d of %d", b, covered, len(data))
		}
	}
}

// TestCutPointsMaxCapExact pins the forced-cut boundary: data that is
// an exact multiple of max with a mask that never fires must split
// into precisely len/max full chunks, with no empty trailing range.
func TestCutPointsMaxCapExact(t *testing.T) {
	// Zero bytes: gearTable[0] is a fixed odd-looking constant, and the
	// mask below is chosen so it never fires (verified by the reference
	// loop inside the assertion).
	const max = 1024
	data := make([]byte, 4*max)
	cuts := CutPoints(data, 64, 512, max)
	if !rangesEqual(cuts, cutPointsRef(data, 64, 512, max)) {
		t.Fatal("diverged from reference")
	}
	if len(cuts) != 4 {
		t.Fatalf("got %d chunks, want 4 max-capped: %v", len(cuts), cuts)
	}
	for i, r := range cuts {
		if r.Len != max {
			t.Fatalf("chunk %d length %d, want exactly max=%d", i, r.Len, max)
		}
	}
	// One byte over the multiple: a single trailing 1-byte chunk.
	cuts = CutPoints(data[:3*max+1], 64, 512, max)
	if len(cuts) != 4 || cuts[3].Len != 1 {
		t.Fatalf("max+1 split = %v", cuts)
	}
}

// TestCutPointsGeometryMatchesContentDefined: the geometry pass and the
// fingerprinting wrapper must describe the same chunks.
func TestCutPointsGeometryMatchesContentDefined(t *testing.T) {
	r := diffRand(99)
	data := make([]byte, 100000)
	for i := range data {
		data[i] = byte(r.next())
	}
	cuts := CutPoints(data, 2048, 8192, 32768)
	blocks := ContentDefined(data, 2048, 8192, 32768)
	if len(cuts) != len(blocks) {
		t.Fatalf("%d ranges vs %d blocks", len(cuts), len(blocks))
	}
	for i := range cuts {
		if cuts[i].Off != blocks[i].Off || int(cuts[i].Len) != blocks[i].Size {
			t.Fatalf("range %d = %+v, block %+v", i, cuts[i], blocks[i])
		}
	}
}

// TestContentDefinedNCTightensSizes: normalization must concentrate
// chunk sizes around the average — strictly fewer min-adjacent and
// max-capped chunks than the single-mask scan on the same input.
func TestContentDefinedNCTightensSizes(t *testing.T) {
	r := diffRand(123456789)
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(r.next())
	}
	const min, avg, max = 2048, 8192, 32768
	spread := func(cuts []Range) (below, above int) {
		for _, c := range cuts[:len(cuts)-1] { // final chunk is truncation noise
			if c.Len < avg/2 {
				below++
			}
			if c.Len >= 3*avg {
				above++
			}
		}
		return below, above
	}
	sBelow, sAbove := spread(CutPoints(data, min, avg, max))
	nBelow, nAbove := spread(CutPointsNC(data, min, avg, max))
	if nBelow >= sBelow {
		t.Fatalf("NC small-chunk count %d not below single-mask %d", nBelow, sBelow)
	}
	if nAbove > sAbove {
		t.Fatalf("NC oversized-chunk count %d above single-mask %d", nAbove, sAbove)
	}
}

func TestContentDefinedNCValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ContentDefinedNC with avg=1 did not panic")
		}
	}()
	ContentDefinedNC([]byte{1, 2, 3}, 1, 1, 4)
}
