package deferpolicy

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNone(t *testing.T) {
	var p None
	if p.Delay(5*time.Second, 1000) != 0 {
		t.Fatal("None should never defer")
	}
	if p.Name() != "none" {
		t.Fatalf("Name = %q", p.Name())
	}
	p.Reset()
}

func TestFixed(t *testing.T) {
	p := Fixed{T: 4200 * time.Millisecond}
	for i := 0; i < 5; i++ {
		if got := p.Delay(time.Duration(i)*time.Second, int64(i*100)); got != p.T {
			t.Fatalf("Delay = %v, want %v", got, p.T)
		}
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
	p.Reset()
}

func TestFixedNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative fixed deferment did not panic")
		}
	}()
	Fixed{T: -time.Second}.Delay(0, 0)
}

func TestASDValidation(t *testing.T) {
	for _, c := range []struct{ eps, tmax time.Duration }{
		{0, time.Minute},
		{2 * time.Second, time.Minute},
		{time.Millisecond, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewASD(%v, %v) did not panic", c.eps, c.tmax)
				}
			}()
			NewASD(c.eps, c.tmax)
		}()
	}
}

func TestASDTracksInterUpdateTime(t *testing.T) {
	// Updates every 7 s: the deferment should converge to slightly
	// above 7 s — long enough to batch the next update.
	a := NewASD(500*time.Millisecond, time.Minute)
	now := time.Duration(0)
	var d time.Duration
	for i := 0; i < 30; i++ {
		d = a.Delay(now, 1000)
		now += 7 * time.Second
	}
	if d <= 7*time.Second {
		t.Fatalf("converged deferment %v, want > 7s (slightly above Δt)", d)
	}
	if d > 9*time.Second {
		t.Fatalf("converged deferment %v, want ≈ 7–9s", d)
	}
}

func TestASDAdaptsDown(t *testing.T) {
	a := NewASD(100*time.Millisecond, time.Minute)
	now := time.Duration(0)
	// Slow updates first.
	for i := 0; i < 10; i++ {
		a.Delay(now, 0)
		now += 20 * time.Second
	}
	slow := a.Current()
	// Then fast updates.
	for i := 0; i < 20; i++ {
		a.Delay(now, 0)
		now += time.Second
	}
	fast := a.Current()
	if fast >= slow {
		t.Fatalf("deferment did not adapt down: slow=%v fast=%v", slow, fast)
	}
	if fast > 3*time.Second {
		t.Fatalf("fast-cadence deferment %v, want ≈ 1–2s", fast)
	}
}

func TestASDCapsAtTMax(t *testing.T) {
	a := NewASD(time.Second, 5*time.Second)
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		if d := a.Delay(now, 0); d > 5*time.Second {
			t.Fatalf("deferment %v exceeds TMax", d)
		}
		now += time.Hour // huge gaps
	}
	if a.Current() != 5*time.Second {
		t.Fatalf("Current = %v, want TMax", a.Current())
	}
}

func TestASDResetKeepsAdaptation(t *testing.T) {
	// Reset (called after each sync session) must not discard the
	// learned cadence: otherwise a steady slow update stream would
	// never accumulate a deferment above its period.
	a := NewASD(500*time.Millisecond, time.Minute)
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		a.Delay(now, 0)
		a.Reset() // as if a sync completed between updates
		now += 10 * time.Second
	}
	if a.Current() <= 10*time.Second {
		t.Fatalf("deferment %v did not adapt above the 10s cadence", a.Current())
	}
	// And an idle gap is capped at TMax per Eq. (2).
	a.Delay(now+time.Hour, 0)
	if a.Current() > time.Minute {
		t.Fatalf("deferment %v exceeded TMax", a.Current())
	}
}

func TestASDName(t *testing.T) {
	if NewASD(time.Millisecond, time.Minute).Name() == "" {
		t.Fatal("empty name")
	}
}

// Property: ASD deferment never exceeds TMax and is always positive.
func TestPropertyASDBounds(t *testing.T) {
	f := func(gapsMs []uint16) bool {
		a := NewASD(200*time.Millisecond, 30*time.Second)
		now := time.Duration(0)
		for _, g := range gapsMs {
			d := a.Delay(now, 0)
			if d <= 0 || d > 30*time.Second {
				return false
			}
			now += time.Duration(g) * time.Millisecond
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a constant inter-update gap Δt < TMax−ε, ASD converges
// to a value in (Δt, Δt + 2ε] — "slightly longer than the latest
// inter-update time".
func TestPropertyASDConvergence(t *testing.T) {
	f := func(gapSecRaw uint8) bool {
		gap := time.Duration(gapSecRaw%20+1) * time.Second
		eps := 500 * time.Millisecond
		a := NewASD(eps, time.Minute)
		now := time.Duration(0)
		for i := 0; i < 60; i++ {
			a.Delay(now, 0)
			now += gap
		}
		got := a.Current()
		return got > gap && got <= gap+2*eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUDS(t *testing.T) {
	p := UDS{Threshold: 4 << 20, MaxDelay: time.Minute}
	if d := p.Delay(0, 1<<20); d != time.Minute {
		t.Fatalf("below threshold: Delay = %v", d)
	}
	if d := p.Delay(0, 4<<20); d != 0 {
		t.Fatalf("at threshold: Delay = %v, want 0", d)
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
	p.Reset()
}

func TestUDSMisconfiguredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misconfigured UDS did not panic")
		}
	}()
	UDS{}.Delay(0, 0)
}

// TestASDStepMatchesStateful pins the refactor contract: replaying an
// update stream through the pure ASDStep, threading the state by
// value, produces exactly the delays and estimates the stateful ASD
// produces — so the pure-function planner and the live client can
// never disagree about a deferment.
func TestASDStepMatchesStateful(t *testing.T) {
	const eps, tmax = 100 * time.Millisecond, 10 * time.Second
	stateful := NewASD(eps, tmax)
	var pure ASDState
	now := time.Duration(0)
	rng := uint64(12345)
	for i := 0; i < 200; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		now += time.Duration(rng%5000) * time.Millisecond
		want := stateful.Delay(now, 0)
		got, next := ASDStep(pure, now, eps, tmax)
		pure = next
		if got != want {
			t.Fatalf("update %d at %v: ASDStep = %v, stateful ASD = %v", i, now, got, want)
		}
		if pure != stateful.State() {
			t.Fatalf("update %d: state diverged: pure %+v, stateful %+v", i, pure, stateful.State())
		}
		if stateful.Current() != pure.T {
			t.Fatalf("update %d: Current() = %v, pure T = %v", i, stateful.Current(), pure.T)
		}
	}
}

// TestASDStepFixpoint checks the analytic fixpoint of Eq. (2): under a
// constant inter-update interval Δt, the estimate converges to
// Δt + 2ε — "slightly above the inter-update time", which is the
// property that lets ASD keep deferring through a burst.
func TestASDStepFixpoint(t *testing.T) {
	const eps, tmax = 50 * time.Millisecond, time.Hour
	const dt = 2 * time.Second
	var s ASDState
	var delay time.Duration
	now := time.Duration(0)
	for i := 0; i < 64; i++ {
		delay, s = ASDStep(s, now, eps, tmax)
		now += dt
	}
	want := dt + 2*eps
	if diff := delay - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("fixpoint delay = %v, want ≈ %v", delay, want)
	}
}
