// Package deferpolicy implements sync-deferment policies — the design
// choice § 6.1 of the paper studies for batching frequent file
// modifications:
//
//   - None: sync as soon as possible (Dropbox, Box, Ubuntu One).
//   - Fixed: a fixed deferment T restarted on every update (Google
//     Drive ≈ 4.2 s, SugarSync ≈ 6 s, OneDrive ≈ 10.5 s); efficient
//     while updates arrive faster than T, useless once they arrive
//     slower.
//   - ASD: the paper's proposed adaptive sync defer, Eq. (2):
//     T_i = min(T_{i−1}/2 + Δt_i/2 + ε, T_max) — the deferment tracks
//     the observed inter-update time and stays slightly above it.
//   - UDS: the byte-counter baseline from the authors' earlier work
//     [36]: sync once pending bytes exceed a threshold.
//
// The client calls Delay on every update; the returned duration
// (re)arms its defer timer. A zero delay means "sync now".
package deferpolicy

import (
	"fmt"
	"time"
)

// Policy decides how long to defer synchronization after an update.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Delay is invoked at each file update with the current virtual
	// time and the total bytes pending synchronization. The client
	// (re)arms its defer timer to fire after the returned duration.
	Delay(now time.Duration, pendingBytes int64) time.Duration
	// Reset clears adaptive state (called when a sync completes).
	Reset()
}

// None syncs immediately.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Delay implements Policy: always zero.
func (None) Delay(time.Duration, int64) time.Duration { return 0 }

// Reset implements Policy.
func (None) Reset() {}

// Fixed defers by a constant T, restarted on every update (debounce):
// updates arriving faster than T batch indefinitely; updates slower
// than T each sync separately.
type Fixed struct {
	T time.Duration
}

// Name implements Policy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%v)", f.T) }

// Delay implements Policy.
func (f Fixed) Delay(time.Duration, int64) time.Duration {
	if f.T < 0 {
		panic(fmt.Sprintf("deferpolicy: negative fixed deferment %v", f.T))
	}
	return f.T
}

// Reset implements Policy.
func (Fixed) Reset() {}

// ASDState is the adaptive estimator's complete state in pure,
// value-passing form: the previous deferment estimate T_{i−1} and the
// time of the last observed update. Threading an ASDState through
// ASDStep is exactly equivalent to driving a stateful *ASD — the
// pure-function planner (internal/planner) carries one per file across
// planning rounds, so the defer decision never touches mutable state
// or a wall clock.
type ASDState struct {
	// T is the current deferment estimate T_{i−1}.
	T time.Duration
	// LastUpdate is the virtual time of the most recent update.
	LastUpdate time.Duration
	// Seen records whether any update has been observed; the first
	// update has no inter-update interval and contributes Δt = 0.
	Seen bool
}

// ASDStep applies the paper's Eq. (2) to one update at virtual time
// now: T_i = min(T_{i−1}/2 + Δt_i/2 + ε, T_max). It returns the new
// deferment (the delay to re-arm the sync timer with) and the
// successor state. The function is pure: equal inputs give equal
// outputs, which is what makes deferment decisions table-testable.
func ASDStep(s ASDState, now, epsilon, tmax time.Duration) (time.Duration, ASDState) {
	var dt time.Duration
	if s.Seen {
		dt = now - s.LastUpdate
	}
	t := s.T/2 + dt/2 + epsilon
	if t > tmax {
		t = tmax
	}
	return t, ASDState{T: t, LastUpdate: now, Seen: true}
}

// ASD is the adaptive sync defer mechanism (Eq. 2), the stateful
// wrapper around ASDStep. The zero value is not usable; construct with
// NewASD.
type ASD struct {
	// Epsilon keeps the deferment slightly above the inter-update time;
	// the paper requires ε ∈ (0, 1) seconds.
	Epsilon time.Duration
	// TMax caps the deferment so idle files do not wait unboundedly.
	TMax time.Duration

	state ASDState
}

// NewASD constructs an adaptive sync defer policy. Epsilon must lie in
// (0, 1 s]; TMax must be positive.
func NewASD(epsilon, tmax time.Duration) *ASD {
	if epsilon <= 0 || epsilon > time.Second {
		panic(fmt.Sprintf("deferpolicy: ASD epsilon %v outside (0, 1s]", epsilon))
	}
	if tmax <= 0 {
		panic(fmt.Sprintf("deferpolicy: ASD TMax %v must be positive", tmax))
	}
	return &ASD{Epsilon: epsilon, TMax: tmax}
}

// Name implements Policy.
func (a *ASD) Name() string { return fmt.Sprintf("asd(ε=%v,Tmax=%v)", a.Epsilon, a.TMax) }

// Delay implements Policy with the paper's update rule, by delegating
// to the pure ASDStep.
func (a *ASD) Delay(now time.Duration, _ int64) time.Duration {
	delay, next := ASDStep(a.state, now, a.Epsilon, a.TMax)
	a.state = next
	return delay
}

// Reset implements Policy as a no-op: both the deferment estimate and
// the inter-update clock are properties of the update stream, not of
// individual sync sessions. Eq. (2) explicitly wants a long idle gap to
// lengthen the deferment (capped at TMax), so nothing is cleared.
func (a *ASD) Reset() {}

// Current exposes the present deferment estimate T_i (for tests and
// telemetry).
func (a *ASD) Current() time.Duration { return a.state.T }

// State exposes the estimator's pure state, so a caller can hand the
// adaptive estimate across process or planning-round boundaries and
// resume it with ASDStep.
func (a *ASD) State() ASDState { return a.state }

// UDS is the byte-counter batching baseline: defer while pending bytes
// are below Threshold, sync immediately once they reach it. MaxDelay
// bounds how long a small update can linger.
type UDS struct {
	Threshold int64
	MaxDelay  time.Duration
}

// Name implements Policy.
func (u UDS) Name() string { return fmt.Sprintf("uds(%dB,%v)", u.Threshold, u.MaxDelay) }

// Delay implements Policy.
func (u UDS) Delay(_ time.Duration, pendingBytes int64) time.Duration {
	if u.Threshold <= 0 || u.MaxDelay <= 0 {
		panic(fmt.Sprintf("deferpolicy: UDS misconfigured: %+v", u))
	}
	if pendingBytes >= u.Threshold {
		return 0
	}
	return u.MaxDelay
}

// Reset implements Policy.
func (UDS) Reset() {}
