// Package cloud implements the service back end: per-user namespaces,
// a versioned file table with fake deletion, a deduplication index, a
// storage compression policy, and (optionally) a REST-store mid-layer
// that records what each sync costs the provider internally.
//
// The cloud is a passive actor: the sync client calls it synchronously
// while composing a session, and models the network and server time of
// those calls itself (internal/netem carries the bytes; Config.
// ProcessingTime carries the commit latency).
package cloud

import (
	"crypto/md5"
	"fmt"
	"hash/maphash"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cloudsync/internal/chunker"
	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/store"
)

// Config selects the cloud-side design choices.
type Config struct {
	// DedupGranularity is the unit of duplicate detection (Table 9).
	DedupGranularity dedup.Granularity
	// DedupBlockSize applies when granularity is Block (Dropbox: 4 MB).
	DedupBlockSize int
	// DedupCrossUser shares the index across users (Ubuntu One) rather
	// than per user (Dropbox).
	DedupCrossUser bool
	// StoreCompression is how the cloud stores and serves content; the
	// level actually used for a download is negotiated down to the
	// client's capability.
	StoreCompression comp.Level
	// ProcessingTime is the fixed server-side latency per sync session
	// (metadata DB work, commit fan-out). It is a large contributor to
	// the natural batching of § 6.2.
	ProcessingTime time.Duration
	// MidLayer, when set, applies every committed operation to a REST
	// object store so experiments can account provider-internal traffic
	// (§ 4.3). Files beyond content.MaterializeLimit skip the mid-layer.
	MidLayer store.MidLayer
}

func (c Config) validate() {
	if c.DedupGranularity == dedup.Block && c.DedupBlockSize <= 0 {
		panic("cloud: block dedup requires DedupBlockSize")
	}
	if c.ProcessingTime < 0 {
		panic("cloud: negative ProcessingTime")
	}
}

// Entry is one file in a user's cloud namespace.
type Entry struct {
	ID      uint64
	Name    string
	Version uint64
	Blob    *content.Blob
	// StoredSize is the byte volume the cloud actually keeps for this
	// version (after its storage compression).
	StoredSize int64
	// Deleted marks a fake deletion: attributes flipped, content kept.
	Deleted bool
}

// cloudShards stripes the per-user file tables. Must be a power of two.
const cloudShards = 32

// userSeed keys the user→shard hash; one process-wide seed keeps a
// given user on the same shard across every Cloud instance.
var userSeed = maphash.MakeSeed()

type cloudShard struct {
	mu sync.RWMutex
	// Both maps are allocated on first write: setups are built per
	// experiment cell, so untouched shards must stay free.
	files       map[string]map[string]*Entry // user → name → entry
	subscribers map[string][]subscriber
}

// Cloud is the service back end. The file tables are striped across
// power-of-two shards keyed by user, and the counters are atomic, so
// independent users may sync concurrently (one goroutine per user). A
// single user's entries are not protected against concurrent mutation
// by multiple goroutines — the per-user-partition replay model never
// does that.
type Cloud struct {
	cfg    Config
	index  *dedup.Index
	shards [cloudShards]cloudShard
	nextID atomic.Uint64

	// persist is the durable state attachment (nil for in-RAM clouds,
	// the default) — see persist.go and Open.
	persist *persistState

	// Uploads counts committed upload sessions; DedupSkips counts
	// uploads fully avoided by deduplication.
	Uploads, DedupSkips atomic.Int64
}

type subscriber struct {
	device string
	fn     func(e *Entry, deleted bool)
}

// New constructs a cloud with the given design choices.
func New(cfg Config) *Cloud {
	cfg.validate()
	return &Cloud{
		cfg:   cfg,
		index: dedup.NewIndex(cfg.DedupCrossUser),
	}
}

// Config returns the cloud's configuration.
func (c *Cloud) Config() Config { return c.cfg }

// DedupIndex exposes the deduplication index (for experiment
// statistics).
func (c *Cloud) DedupIndex() *dedup.Index { return c.index }

func (c *Cloud) shard(user string) *cloudShard {
	return &c.shards[maphash.String(userSeed, user)&(cloudShards-1)]
}

// ns returns the user's namespace, creating it if needed. The caller
// must hold the shard's write lock.
func (sh *cloudShard) ns(user string) map[string]*Entry {
	if sh.files == nil {
		sh.files = make(map[string]map[string]*Entry)
	}
	m := sh.files[user]
	if m == nil {
		m = make(map[string]*Entry)
		sh.files[user] = m
	}
	return m
}

// File looks up a live entry.
func (c *Cloud) File(user, name string) (*Entry, bool) {
	sh := c.shard(user)
	sh.mu.RLock()
	e, ok := sh.files[user][name]
	sh.mu.RUnlock()
	if !ok || e.Deleted {
		return nil, false
	}
	return e, ok
}

// fileFingerprint derives the full-file fingerprint of a blob: real MD5
// for literal content (memoized on the blob, so the probe and the
// commit of one upload hash it once), identity-based MD5 for descriptor
// blobs (same descriptor ⇒ same content ⇒ same fingerprint).
func fileFingerprint(blob *content.Blob) dedup.Fingerprint {
	if blob.Kind() == content.KindBytes {
		return blob.MD5()
	}
	return md5.Sum([]byte(blob.Identity()))
}

// blockFingerprints derives per-block fingerprints. Literal blobs get
// real block MD5s. Descriptor blobs get analytic fingerprints derived
// from (kind, seed, block size, index, block length): by the
// prefix-stability of descriptor content, a block's bytes are fully
// determined by that tuple, so equal tuples mean equal content — at a
// tiny fraction of the cost of materializing and hashing, which
// matters when a frequently-appended file is probed on every sync.
func blockFingerprints(blob *content.Blob, blockSize int) []dedup.Fingerprint {
	if blob.Kind() == content.KindBytes {
		// content memoizes the sums per (blob, blockSize), so the
		// probe/commit pair of one upload chunks the content once.
		return content.BlockFingerprints(blob, blockSize)
	}
	n := chunker.NumBlocks(blob.Size(), blockSize)
	out := make([]dedup.Fingerprint, n)
	// The hashed tuple is "gen:<kind>:<seed>:bs<blockSize>#<idx>:<len>",
	// assembled by hand into one stack buffer: the bytes are identical
	// to the fmt.Sprintf form, so fingerprints are stable, but a probe
	// of a large appended file no longer allocates per block.
	var buf [96]byte
	prefix := append(buf[:0], "gen:"...)
	prefix = strconv.AppendUint(prefix, uint64(blob.Kind()), 10)
	prefix = append(prefix, ':')
	prefix = strconv.AppendInt(prefix, blob.Seed(), 10)
	prefix = append(prefix, ":bs"...)
	prefix = strconv.AppendInt(prefix, int64(blockSize), 10)
	prefix = append(prefix, '#')
	for i := range out {
		length := int64(blockSize)
		if rem := blob.Size() - int64(i)*int64(blockSize); rem < length {
			length = rem
		}
		b := strconv.AppendInt(prefix, int64(i), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, length, 10)
		out[i] = md5.Sum(b)
	}
	return out
}

// UploadDecision is the cloud's answer to an upload probe.
type UploadDecision struct {
	// SkipAll: the content is fully deduplicated; send no data.
	SkipAll bool
	// MissingBlocks is the number of blocks that must still be sent
	// (block-granularity dedup); equal to total blocks when nothing
	// matched.
	MissingBlocks int
	// TotalBlocks is the number of blocks probed (0 for full-file
	// granularity).
	TotalBlocks int
	// IndexFingerprints is how many fingerprints the client had to send
	// for this probe — they size the index-update message.
	IndexFingerprints int
}

// ProbeUpload consults the dedup index for an upcoming upload. With
// useDedup false (web access, or services without dedup) the probe is a
// no-op and everything must be sent.
func (c *Cloud) ProbeUpload(user string, blob *content.Blob, useDedup bool) UploadDecision {
	if !useDedup || c.cfg.DedupGranularity == dedup.None || blob.Size() == 0 {
		return UploadDecision{}
	}
	switch c.cfg.DedupGranularity {
	case dedup.FullFile:
		fp := fileFingerprint(blob)
		if c.index.Lookup(user, fp, blob.Size()) {
			return UploadDecision{SkipAll: true, IndexFingerprints: 1}
		}
		return UploadDecision{IndexFingerprints: 1}
	case dedup.Block:
		fps := blockFingerprints(blob, c.cfg.DedupBlockSize)
		missing := 0
		bs := int64(c.cfg.DedupBlockSize)
		for i, fp := range fps {
			size := bs
			if rem := blob.Size() - int64(i)*bs; rem < size {
				size = rem
			}
			if !c.index.Lookup(user, fp, size) {
				missing++
			}
		}
		return UploadDecision{
			SkipAll:           missing == 0,
			MissingBlocks:     missing,
			TotalBlocks:       len(fps),
			IndexFingerprints: len(fps),
		}
	default:
		return UploadDecision{}
	}
}

// Commit finalizes an upload: records the version, updates the dedup
// index, and (when configured) applies the operation to the REST store
// mid-layer. dirty describes the changed ranges for incremental
// mid-layers; create passes nil. It returns the committed entry.
func (c *Cloud) Commit(user, name string, blob *content.Blob, dirty []chunker.Range) *Entry {
	if blob == nil {
		panic("cloud: Commit with nil blob")
	}
	sh := c.shard(user)
	sh.mu.Lock()
	ns := sh.ns(user)
	e, existed := ns[name]
	if !existed {
		e = &Entry{ID: c.nextID.Add(1), Name: name}
		ns[name] = e
	}
	isCreate := !existed || e.Deleted
	e.Blob = blob
	e.Version++
	e.Deleted = false
	e.StoredSize = comp.Size(blob, c.cfg.StoreCompression)
	sh.mu.Unlock()
	c.Uploads.Add(1)

	c.recordDedup(user, blob)
	c.persistEntry(user, e)
	// The mid-layer store is not itself concurrency-safe; configs that
	// set one (the ablation experiments) replay sequentially.
	c.applyMidLayer(user, name, blob, dirty, isCreate)
	return e
}

func (c *Cloud) recordDedup(user string, blob *content.Blob) {
	switch c.cfg.DedupGranularity {
	case dedup.FullFile:
		c.index.Add(user, fileFingerprint(blob), blob.Size())
	case dedup.Block:
		bs := int64(c.cfg.DedupBlockSize)
		for i, fp := range blockFingerprints(blob, c.cfg.DedupBlockSize) {
			size := bs
			if rem := blob.Size() - int64(i)*bs; rem < size {
				size = rem
			}
			c.index.Add(user, fp, size)
		}
	}
}

func (c *Cloud) applyMidLayer(user, name string, blob *content.Blob, dirty []chunker.Range, isCreate bool) {
	if c.cfg.MidLayer == nil || blob.Size() > content.MaterializeLimit {
		return
	}
	key := user + "/" + name
	var err error
	if isCreate {
		_, err = c.cfg.MidLayer.Create(key, blob)
	} else {
		_, err = c.cfg.MidLayer.Modify(key, blob, dirty)
	}
	if err != nil {
		panic(fmt.Sprintf("cloud: mid-layer %s: %v", c.cfg.MidLayer.Name(), err))
	}
}

// RecordSkippedUpload notes a fully deduplicated upload: the file table
// still gains the version (the user sees the file), but no data moved.
func (c *Cloud) RecordSkippedUpload(user, name string, blob *content.Blob) *Entry {
	e := c.Commit(user, name, blob, nil)
	c.DedupSkips.Add(1)
	return e
}

// Delete fake-deletes a file: attributes change, content stays (version
// history remains available for rollback).
func (c *Cloud) Delete(user, name string) error {
	sh := c.shard(user)
	sh.mu.Lock()
	e, ok := sh.files[user][name]
	if !ok || e.Deleted {
		sh.mu.Unlock()
		return fmt.Errorf("cloud: %s/%s: no such file", user, name)
	}
	e.Deleted = true
	e.Version++
	sh.mu.Unlock()
	c.persistEntry(user, e)
	if c.cfg.MidLayer != nil && e.Blob != nil && e.Blob.Size() <= content.MaterializeLimit {
		if _, err := c.cfg.MidLayer.Delete(user + "/" + name); err != nil {
			panic(fmt.Sprintf("cloud: mid-layer delete: %v", err))
		}
	}
	return nil
}

// Subscribe registers a device's change callback: NotifyPeers invokes
// it for every change the same user commits from a different device —
// the notification fan-out of the paper's Fig. 1.
func (c *Cloud) Subscribe(user, device string, fn func(e *Entry, deleted bool)) {
	if fn == nil {
		panic("cloud: Subscribe with nil callback")
	}
	sh := c.shard(user)
	sh.mu.Lock()
	if sh.subscribers == nil {
		sh.subscribers = make(map[string][]subscriber)
	}
	sh.subscribers[user] = append(sh.subscribers[user], subscriber{device: device, fn: fn})
	sh.mu.Unlock()
}

// NotifyPeers fans a committed change out to the user's other devices.
// The originating device is skipped. Callbacks run outside the shard
// lock — they re-enter the cloud (File, ServeSize) to serve downloads.
func (c *Cloud) NotifyPeers(user, origin string, e *Entry, deleted bool) {
	sh := c.shard(user)
	sh.mu.RLock()
	subs := sh.subscribers[user]
	sh.mu.RUnlock()
	for _, sub := range subs {
		if sub.device == origin {
			continue
		}
		sub.fn(e, deleted)
	}
}

// ServeSize reports the bytes the cloud sends to deliver the entry's
// content to a client that can decompress at most level — the download
// payload of Experiment 4's DN phase. The effective level is the weaker
// of the store's and the client's.
func (c *Cloud) ServeSize(e *Entry, clientLevel comp.Level) int64 {
	level := c.cfg.StoreCompression
	if clientLevel < level {
		level = clientLevel
	}
	return comp.Size(e.Blob, level)
}
