package cloud

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/store/wal"
)

// Record kinds of the cloud's durable log. Entries are persisted as
// absolute states (idempotent on replay); large descriptor blobs are
// stored as their (kind, size, seed) triple — a few bytes regardless of
// content size — and literal blobs carry their bytes.
const (
	cloudRecEntry = 1 // one file entry's full current state
	cloudRecIndex = 2 // one dedup-index fingerprint (snapshot-only)
)

// DefaultCompactLogBytes is the log-size threshold at which a durable
// cloud folds its log into a snapshot.
const DefaultCompactLogBytes = 64 << 20

// persistBatchBytes is the group-commit threshold: appended records
// accumulate until this much is buffered, then one fsync makes them
// all durable. SyncState forces the flush at experiment checkpoints.
const persistBatchBytes = 1 << 20

// persistState is the cloud's durability attachment. Its own mutex
// (not the shard locks) serializes log access: shards stay concurrent,
// appends interleave per-entry in commit order, and a first error
// latches — like a crashed process, nothing more reaches the disk.
type persistState struct {
	mu        sync.Mutex
	st        *wal.Store
	err       error
	compactAt int64
}

// Open constructs a cloud that replays durable state from dir and logs
// every committed mutation there. An empty dir is exactly New: purely
// in-RAM. The mid-layer is a sequential-replay experiment facility and
// is not supported together with persistence.
func Open(cfg Config, dir string) (*Cloud, error) {
	if dir == "" {
		return New(cfg), nil
	}
	cfg.validate()
	if cfg.MidLayer != nil {
		panic("cloud: mid-layer and persistence are mutually exclusive")
	}
	c := &Cloud{
		cfg:   cfg,
		index: dedup.NewIndex(cfg.DedupCrossUser),
	}
	st, err := wal.Open(dir, c.replayRecord)
	if err != nil {
		return nil, err
	}
	c.persist = &persistState{st: st, compactAt: DefaultCompactLogBytes}
	return c, nil
}

// SetCompactLogBytes overrides the compaction threshold (tests use a
// small one; 0 restores the default). Call before traffic.
func (c *Cloud) SetCompactLogBytes(n int64) {
	if c.persist == nil {
		return
	}
	if n <= 0 {
		n = DefaultCompactLogBytes
	}
	c.persist.mu.Lock()
	c.persist.compactAt = n
	c.persist.mu.Unlock()
}

// replayRecord applies one durable record during Open — single
// threaded, before the cloud is shared.
func (c *Cloud) replayRecord(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("cloud: empty state record")
	}
	cur := wal.NewRecCursor(rec[1:])
	switch rec[0] {
	case cloudRecIndex:
		scope := cur.Str()
		fp := cur.Hash16()
		size := cur.I64()
		if cur.Err() != nil {
			return fmt.Errorf("cloud: index record: %w", cur.Err())
		}
		c.index.Add(scope, fp, size)
	case cloudRecEntry:
		user := cur.Str()
		name := cur.Str()
		id := cur.U64()
		version := cur.U64()
		flags := cur.U8()
		storedSize := cur.I64()
		kind := content.Kind(cur.U8())
		var blob *content.Blob
		if kind == content.KindBytes {
			blob = content.FromBytes(append([]byte(nil), cur.Bytes()...))
		} else {
			size := cur.I64()
			seed := cur.I64()
			if cur.Err() == nil {
				blob = content.FromDescriptor(kind, size, seed)
			}
		}
		if cur.Err() != nil {
			return fmt.Errorf("cloud: entry record: %w", cur.Err())
		}
		sh := c.shard(user)
		ns := sh.ns(user)
		e := ns[name]
		if e == nil {
			e = &Entry{Name: name}
			ns[name] = e
		}
		e.ID = id
		e.Version = version
		e.Deleted = flags&1 != 0
		e.StoredSize = storedSize
		e.Blob = blob
		// Re-derive the live-path index adds; duplicates (snapshot replay
		// after cloudRecIndex records) are no-ops.
		c.recordDedup(user, blob)
		if next := c.nextID.Load(); id > next {
			c.nextID.Store(id)
		}
	default:
		return fmt.Errorf("cloud: unknown state record kind %d", rec[0])
	}
	return nil
}

// encodeEntryRec renders one entry's absolute state as a record.
func encodeEntryRec(user string, e *Entry) []byte {
	b := make([]byte, 0, 64+len(user)+len(e.Name))
	b = append(b, cloudRecEntry)
	b = wal.AppendStr(b, user)
	b = wal.AppendStr(b, e.Name)
	b = binary.LittleEndian.AppendUint64(b, e.ID)
	b = binary.LittleEndian.AppendUint64(b, e.Version)
	flags := byte(0)
	if e.Deleted {
		flags |= 1
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.StoredSize))
	b = append(b, byte(e.Blob.Kind()))
	if e.Blob.Kind() == content.KindBytes {
		return wal.AppendBytes(b, e.Blob.Bytes())
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Blob.Size()))
	return binary.LittleEndian.AppendUint64(b, uint64(e.Blob.Seed()))
}

// persistEntry logs one committed mutation, group-committing when the
// batch threshold is crossed and compacting when the log outgrows its
// bound. Errors latch: the store is dead from the first failure on,
// exactly like a crashed process (SyncState reports it).
func (c *Cloud) persistEntry(user string, e *Entry) {
	p := c.persist
	if p == nil {
		return
	}
	rec := encodeEntryRec(user, e)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	p.st.Append(rec)
	if p.st.Pending() >= persistBatchBytes {
		p.err = c.syncLocked(p)
	}
}

func (c *Cloud) syncLocked(p *persistState) error {
	if err := p.st.Sync(); err != nil {
		return err
	}
	if p.st.LogBytes() > p.compactAt {
		return p.st.Compact(c.snapshotRecords())
	}
	return nil
}

// snapshotRecords renders the full cloud state as records: the dedup
// index first (overwritten versions stay probe-able, so its
// fingerprints are not derivable from live entries alone), then every
// entry sorted by (user, name). Caller holds p.mu, which quiesces the
// log; shard locks are taken per shard.
func (c *Cloud) snapshotRecords() [][]byte {
	var recs [][]byte
	for _, en := range c.index.Entries() {
		b := make([]byte, 0, 1+4+len(en.Scope)+16+8)
		b = append(b, cloudRecIndex)
		b = wal.AppendStr(b, en.Scope)
		b = append(b, en.FP[:]...)
		recs = append(recs, binary.LittleEndian.AppendUint64(b, uint64(en.Size)))
	}
	type userEntry struct {
		user string
		e    *Entry
	}
	var all []userEntry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for user, ns := range sh.files {
			for _, e := range ns {
				all = append(all, userEntry{user, e})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].user != all[j].user {
			return all[i].user < all[j].user
		}
		return all[i].e.Name < all[j].e.Name
	})
	for _, ue := range all {
		recs = append(recs, encodeEntryRec(ue.user, ue.e))
	}
	return recs
}

// SyncState forces the group commit now — the durability checkpoint an
// experiment takes before reporting results. It returns the store's
// latched error, so a crashed store surfaces here (in-RAM clouds
// return nil).
func (c *Cloud) SyncState() error {
	p := c.persist
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		p.err = c.syncLocked(p)
	}
	return p.err
}

// CompactState folds the durable log into a snapshot now, regardless
// of the size threshold (no-op in-RAM).
func (c *Cloud) CompactState() error {
	p := c.persist
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		if p.err = p.st.Sync(); p.err == nil {
			p.err = p.st.Compact(c.snapshotRecords())
		}
	}
	return p.err
}

// FailStateAt arms an injected crash point on the durable log at an
// absolute file offset (no-op in-RAM; -1 disarms) — the kill -9 lever
// of the crash-recovery property tests.
func (c *Cloud) FailStateAt(offset int64) {
	p := c.persist
	if p == nil {
		return
	}
	p.mu.Lock()
	p.st.FailAt(offset)
	p.mu.Unlock()
}

// StateLogBytes reports the durable log's size including unsynced
// appends (0 in-RAM); crash harnesses aim seeded offsets inside it.
func (c *Cloud) StateLogBytes() int64 {
	p := c.persist
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.LogBytes()
}

// CloseState flushes and closes the durable store (no-op in-RAM). The
// cloud must not be used afterwards.
func (c *Cloud) CloseState() error {
	p := c.persist
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.st
	if st == nil {
		return p.err
	}
	p.st = nil
	cerr := st.Close()
	if p.err != nil {
		return p.err
	}
	p.err = errors.New("cloud: durable state closed")
	return cerr
}
