package cloud

import (
	"testing"
	"time"

	"cloudsync/internal/chunker"
	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/store"
)

func TestCommitCreatesAndVersions(t *testing.T) {
	c := New(Config{})
	e := c.Commit("alice", "a.txt", content.Zeros(100), nil)
	if e.ID == 0 || e.Version != 1 || e.StoredSize != 100 {
		t.Fatalf("entry = %+v", e)
	}
	e2 := c.Commit("alice", "a.txt", content.Zeros(200), nil)
	if e2.ID != e.ID || e2.Version != 2 {
		t.Fatalf("second commit = %+v", e2)
	}
	got, ok := c.File("alice", "a.txt")
	if !ok || got.Blob.Size() != 200 {
		t.Fatalf("File = %+v, %v", got, ok)
	}
}

func TestNamespacesIsolated(t *testing.T) {
	c := New(Config{})
	c.Commit("alice", "a", content.Zeros(1), nil)
	if _, ok := c.File("bob", "a"); ok {
		t.Fatal("bob sees alice's file")
	}
}

func TestFakeDeletion(t *testing.T) {
	c := New(Config{})
	c.Commit("alice", "a", content.Zeros(1), nil)
	if err := c.Delete("alice", "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.File("alice", "a"); ok {
		t.Fatal("deleted file still visible")
	}
	if err := c.Delete("alice", "a"); err == nil {
		t.Fatal("double delete should error")
	}
	// Re-commit revives the name as a create.
	e := c.Commit("alice", "a", content.Zeros(5), nil)
	if e.Deleted {
		t.Fatal("recommit left file deleted")
	}
}

func TestDeleteMissing(t *testing.T) {
	if err := New(Config{}).Delete("alice", "ghost"); err == nil {
		t.Fatal("delete of missing file should error")
	}
}

func TestCommitNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Commit(nil) did not panic")
		}
	}()
	New(Config{}).Commit("alice", "a", nil, nil)
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("block dedup without size did not panic")
		}
	}()
	New(Config{DedupGranularity: dedup.Block})
}

func TestProbeNoDedup(t *testing.T) {
	c := New(Config{})
	blob := content.Random(1000, 1)
	c.Commit("alice", "a", blob, nil)
	d := c.ProbeUpload("alice", blob, true)
	if d.SkipAll {
		t.Fatal("no-dedup cloud reported a hit")
	}
}

func TestProbeFullFileDedup(t *testing.T) {
	c := New(Config{DedupGranularity: dedup.FullFile})
	blob := content.Random(1000, 1)
	if d := c.ProbeUpload("alice", blob, true); d.SkipAll {
		t.Fatal("hit before any upload")
	}
	c.Commit("alice", "a", blob, nil)
	d := c.ProbeUpload("alice", blob, true)
	if !d.SkipAll || d.IndexFingerprints != 1 {
		t.Fatalf("decision = %+v, want full-file hit", d)
	}
	// Same user, same content, different name still dedups.
	if d := c.ProbeUpload("alice", content.Random(1000, 1), true); !d.SkipAll {
		t.Fatal("identical content not deduplicated")
	}
	// Cross-user must miss (per-user scope).
	if d := c.ProbeUpload("bob", blob, true); d.SkipAll {
		t.Fatal("per-user dedup hit across users")
	}
	// useDedup=false (web access) must not consult the index.
	if d := c.ProbeUpload("alice", blob, false); d.SkipAll || d.IndexFingerprints != 0 {
		t.Fatalf("web probe = %+v, want no dedup", d)
	}
}

func TestProbeCrossUserDedup(t *testing.T) {
	c := New(Config{DedupGranularity: dedup.FullFile, DedupCrossUser: true})
	blob := content.Random(1000, 2)
	c.Commit("alice", "a", blob, nil)
	if d := c.ProbeUpload("bob", blob, true); !d.SkipAll {
		t.Fatal("cross-user dedup missed")
	}
}

func TestProbeBlockDedup(t *testing.T) {
	const bs = 1 << 10
	c := New(Config{DedupGranularity: dedup.Block, DedupBlockSize: bs})
	// Literal content, so the self-concatenation (also literal)
	// fingerprints through the same real-MD5 path.
	f1 := content.FromBytes(content.Random(4*bs, 3).Bytes())
	c.Commit("alice", "f1", f1, nil)

	// Self-duplication: f2 = f1 + f1. Every block of f2 already exists.
	f2 := f1.Concat(f1)
	d := c.ProbeUpload("alice", f2, true)
	if !d.SkipAll || d.TotalBlocks != 8 || d.MissingBlocks != 0 {
		t.Fatalf("self-dup decision = %+v", d)
	}

	// Half-new file: first half matches, second half is fresh.
	f3 := f1.Concat(content.Random(4*bs, 99))
	d = c.ProbeUpload("alice", f3, true)
	if d.SkipAll || d.MissingBlocks != 4 || d.TotalBlocks != 8 {
		t.Fatalf("half-new decision = %+v", d)
	}
}

func TestProbeBlockDedupLargeDescriptor(t *testing.T) {
	// Beyond MaterializeLimit the cloud uses identity-based block
	// fingerprints; an identical re-upload must still fully dedup.
	const bs = 4 << 20
	c := New(Config{DedupGranularity: dedup.Block, DedupBlockSize: bs})
	big := content.Random(largeBlobSize, 5)
	c.Commit("alice", "big", big, nil)
	d := c.ProbeUpload("alice", content.Random(largeBlobSize, 5), true)
	if !d.SkipAll {
		t.Fatalf("identical large re-upload not deduplicated: %+v", d)
	}
}

// largeBlobSize is 128 MB, above content.MaterializeLimit.
const largeBlobSize = 128 << 20

func TestRecordSkippedUpload(t *testing.T) {
	c := New(Config{DedupGranularity: dedup.FullFile})
	blob := content.Random(100, 6)
	c.Commit("alice", "orig", blob, nil)
	e := c.RecordSkippedUpload("alice", "copy", blob)
	if e.Version != 1 {
		t.Fatalf("skipped upload entry = %+v", e)
	}
	if c.DedupSkips.Load() != 1 || c.Uploads.Load() != 2 {
		t.Fatalf("counters = skips %d uploads %d", c.DedupSkips.Load(), c.Uploads.Load())
	}
}

func TestStoredSizeUsesStoreCompression(t *testing.T) {
	c := New(Config{StoreCompression: comp.High})
	text := content.Text(100_000, 7)
	e := c.Commit("alice", "t", text, nil)
	if e.StoredSize >= text.Size() {
		t.Fatalf("StoredSize = %d, want < %d (compressed at rest)", e.StoredSize, text.Size())
	}
}

func TestServeSizeNegotiatesLevel(t *testing.T) {
	c := New(Config{StoreCompression: comp.High})
	text := content.Text(100_000, 8)
	e := c.Commit("alice", "t", text, nil)
	full := c.ServeSize(e, comp.None)
	high := c.ServeSize(e, comp.High)
	if full != text.Size() {
		t.Fatalf("None-capable client should receive raw bytes, got %d", full)
	}
	if high >= full {
		t.Fatalf("High-capable client should receive compressed bytes: %d vs %d", high, full)
	}
}

func TestMidLayerIntegration(t *testing.T) {
	rest := store.NewREST()
	c := New(Config{MidLayer: &store.FullFileLayer{Store: rest}})
	blob := content.FromBytes([]byte("hello"))
	c.Commit("alice", "a", blob, nil)
	if rest.Stats().Puts != 1 {
		t.Fatalf("mid-layer puts = %d", rest.Stats().Puts)
	}
	c.Commit("alice", "a", content.FromBytes([]byte("hello world")),
		[]chunker.Range{{Off: 5, Len: 6}})
	if rest.Stats().Puts != 2 {
		t.Fatalf("mid-layer puts after modify = %d", rest.Stats().Puts)
	}
	if err := c.Delete("alice", "a"); err != nil {
		t.Fatal(err)
	}
	if rest.Stats().Deletes != 1 {
		t.Fatalf("mid-layer deletes = %d", rest.Stats().Deletes)
	}
}

func TestProcessingTimeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative ProcessingTime did not panic")
		}
	}()
	New(Config{ProcessingTime: -time.Second})
}

func TestEmptyBlobProbe(t *testing.T) {
	c := New(Config{DedupGranularity: dedup.FullFile})
	if d := c.ProbeUpload("alice", content.Zeros(0), true); d.SkipAll {
		t.Fatal("empty blob should not dedup-hit")
	}
}
