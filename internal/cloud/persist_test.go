package cloud

import (
	"os"
	"path/filepath"
	"testing"

	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
)

// dumpState flattens a cloud's full file table for comparison:
// user/name → (id, version, deleted, stored size, blob identity).
type entryState struct {
	ID         uint64
	Version    uint64
	Deleted    bool
	StoredSize int64
	Identity   string
}

func dumpState(c *Cloud) map[string]entryState {
	out := make(map[string]entryState)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for user, ns := range sh.files {
			for name, e := range ns {
				out[user+"/"+name] = entryState{
					ID: e.ID, Version: e.Version, Deleted: e.Deleted,
					StoredSize: e.StoredSize, Identity: e.Blob.Identity(),
				}
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

func openCloud(t *testing.T, cfg Config, dir string) *Cloud {
	t.Helper()
	c, err := Open(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.CloseState() })
	return c
}

func sameState(t *testing.T, want, got map[string]entryState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d: %v vs %v", len(got), len(want), got, want)
	}
	for k, w := range want {
		if g := got[k]; g != w {
			t.Fatalf("%s recovered as %+v, want %+v", k, g, w)
		}
	}
}

func TestCloudDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DedupGranularity: dedup.FullFile}
	c := openCloud(t, cfg, dir)

	// Descriptor blobs persist as (kind, size, seed); literals as bytes.
	c.Commit("alice", "big.bin", content.Random(1<<20, 7), nil)
	c.Commit("alice", "notes.txt", content.FromBytes([]byte("literal content")), nil)
	c.Commit("alice", "big.bin", content.Random(1<<20, 8), nil) // overwrite
	c.Commit("bob", "big.bin", content.Random(1<<20, 7), nil)   // dup of alice v1
	if err := c.Delete("alice", "notes.txt"); err != nil {
		t.Fatal(err)
	}
	want := dumpState(c)
	wantUnique := c.DedupIndex().Unique()
	if err := c.CloseState(); err != nil {
		t.Fatal(err)
	}

	c2 := openCloud(t, cfg, dir)
	sameState(t, want, dumpState(c2))
	if got := c2.DedupIndex().Unique(); got != wantUnique {
		t.Fatalf("recovered index has %d fingerprints, want %d", got, wantUnique)
	}
	// The overwritten version's fingerprint must still be probe-able.
	if dec := c2.ProbeUpload("alice", content.Random(1<<20, 7), true); !dec.SkipAll {
		t.Fatal("pre-overwrite fingerprint lost in recovery")
	}
	// ID allocation continues past the recovered maximum.
	maxID := uint64(0)
	for _, e := range want {
		if e.ID > maxID {
			maxID = e.ID
		}
	}
	if e := c2.Commit("alice", "new.txt", content.Zeros(10), nil); e.ID <= maxID {
		t.Fatalf("new entry reused ID %d (max recovered %d)", e.ID, maxID)
	}
}

func TestCloudCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DedupGranularity: dedup.Block, DedupBlockSize: 4 << 10}
	c := openCloud(t, cfg, dir)
	c.SetCompactLogBytes(256) // every sync compacts

	for i := int64(0); i < 8; i++ {
		c.Commit("u", "f"+string(rune('a'+i)), content.Text(20_000, i), nil)
		if err := c.SyncState(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CompactState(); err != nil {
		t.Fatal(err)
	}
	c.Commit("u", "post", content.Random(5_000, 99), nil) // log-over-snapshot
	want := dumpState(c)
	wantUnique := c.DedupIndex().Unique()
	if err := c.CloseState(); err != nil {
		t.Fatal(err)
	}

	c2 := openCloud(t, cfg, dir)
	sameState(t, want, dumpState(c2))
	if got := c2.DedupIndex().Unique(); got != wantUnique {
		t.Fatalf("recovered index has %d fingerprints, want %d", got, wantUnique)
	}
}

// TestCloudTornTailRecovery is the kill -9 property at the cloud layer:
// truncate the log at EVERY byte offset and recovery must reconstruct
// exactly the state as of the last completed group commit before the
// cut — never a torn hybrid, never an error.
func TestCloudTornTailRecovery(t *testing.T) {
	seedDir := t.TempDir()
	cfg := Config{DedupGranularity: dedup.FullFile}
	c := openCloud(t, cfg, seedDir)

	type checkpoint struct {
		bytes int64
		state map[string]entryState
	}
	ckpts := []checkpoint{{0, map[string]entryState{}}}
	commit := func(user, name string, blob *content.Blob) {
		c.Commit(user, name, blob, nil)
		if err := c.SyncState(); err != nil {
			t.Fatal(err)
		}
		ckpts = append(ckpts, checkpoint{c.StateLogBytes(), dumpState(c)})
	}
	commit("alice", "a", content.Random(10_000, 1))
	commit("alice", "b", content.FromBytes([]byte("hello world")))
	commit("bob", "a", content.Text(3_000, 2))
	commit("alice", "a", content.Random(12_000, 3)) // overwrite
	if err := c.CloseState(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(seedDir, "wal-00000001.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != ckpts[len(ckpts)-1].bytes {
		t.Fatalf("log is %d bytes, last checkpoint %d", len(raw), ckpts[len(ckpts)-1].bytes)
	}

	dir := t.TempDir()
	for cut := int64(0); cut <= int64(len(raw)); cut++ {
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := ckpts[0].state
		for _, ck := range ckpts {
			if ck.bytes <= cut {
				want = ck.state
			}
		}
		rc, err := Open(cfg, dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := dumpState(rc)
		rc.CloseState()
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d entries, want %d", cut, len(got), len(want))
		}
		for k, w := range want {
			if g := got[k]; g != w {
				t.Fatalf("cut %d: %s = %+v, want %+v", cut, k, g, w)
			}
		}
	}
}

// TestCloudCrashPoint: an armed crash offset latches the store dead;
// SyncState surfaces it and recovery sees only the durable prefix.
func TestCloudCrashPoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{}
	c := openCloud(t, cfg, dir)

	c.Commit("u", "safe", content.Random(1_000, 1), nil)
	if err := c.SyncState(); err != nil {
		t.Fatal(err)
	}
	want := dumpState(c)

	c.FailStateAt(c.StateLogBytes() + 5)
	c.Commit("u", "doomed", content.Random(1_000, 2), nil)
	if err := c.SyncState(); err == nil {
		t.Fatal("SyncState succeeded past an armed crash point")
	}
	c.Commit("u", "more", content.Random(1_000, 3), nil) // latched dead: ignored
	if err := c.SyncState(); err == nil {
		t.Fatal("crashed store accepted a sync")
	}
	c.CloseState()

	c2 := openCloud(t, cfg, dir)
	sameState(t, want, dumpState(c2))
}
