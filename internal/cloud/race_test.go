package cloud

import (
	"fmt"
	"sync"
	"testing"

	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
)

// TestCloudConcurrentUsers drives one goroutine per user against a
// shared cloud — the per-user-partition model the scale replay uses.
// Meaningful under -race; the assertions check the aggregate state is
// exact regardless of interleaving.
func TestCloudConcurrentUsers(t *testing.T) {
	c := New(Config{
		DedupGranularity: dedup.FullFile,
		DedupCrossUser:   true,
	})
	const users, filesEach = 16, 50
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("user%02d", u)
			for i := 0; i < filesEach; i++ {
				name := fmt.Sprintf("f%03d", i)
				// Shared content population: cross-user dedup races to
				// store each blob exactly once.
				blob := content.Text(int64(1000+i), int64(i))
				dec := c.ProbeUpload(user, blob, true)
				if dec.SkipAll {
					c.RecordSkippedUpload(user, name, blob)
				} else {
					c.Commit(user, name, blob, nil)
				}
				// Touch the read path concurrently too.
				if _, ok := c.File(user, name); !ok {
					t.Errorf("%s/%s vanished after commit", user, name)
					return
				}
			}
			// Delete one file per user to exercise that path.
			if err := c.Delete(user, "f000"); err != nil {
				t.Errorf("delete: %v", err)
			}
		}(u)
	}
	wg.Wait()

	if got := c.Uploads.Load(); got != users*filesEach {
		t.Fatalf("Uploads = %d, want %d", got, users*filesEach)
	}
	// Every distinct blob ends up indexed exactly once (Add of an
	// existing fingerprint is a no-op, so racing commits of the same
	// content collapse).
	if got := c.DedupIndex().Unique(); got != filesEach {
		t.Fatalf("index Unique = %d, want %d", got, filesEach)
	}
	// A probe and its commit are two calls, so two users racing on the
	// same blob may both upload it; skips are bounded, not exact.
	if got := c.DedupSkips.Load(); got > (users-1)*filesEach {
		t.Fatalf("DedupSkips = %d, want ≤ %d", got, (users-1)*filesEach)
	}
	var wantStored int64
	for i := 0; i < filesEach; i++ {
		wantStored += int64(1000 + i)
	}
	if got := c.DedupIndex().Stats().BytesStored; got != wantStored {
		t.Fatalf("BytesStored = %d, want %d", got, wantStored)
	}
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user%02d", u)
		if _, ok := c.File(user, "f000"); ok {
			t.Fatalf("%s/f000 still live after delete", user)
		}
		if _, ok := c.File(user, "f001"); !ok {
			t.Fatalf("%s/f001 missing", user)
		}
	}
}

// TestCloudConcurrentNotify exercises Subscribe/NotifyPeers across
// concurrent users: each user registers two devices and fans out its
// own commits; callbacks re-enter the cloud's read path.
func TestCloudConcurrentNotify(t *testing.T) {
	c := New(Config{})
	const users, commits = 8, 30
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("user%02d", u)
			var notified int
			c.Subscribe(user, "desktop", func(e *Entry, deleted bool) {
				if _, ok := c.File(user, e.Name); !ok && !deleted {
					t.Errorf("%s notified of missing file %s", user, e.Name)
				}
				notified++
			})
			c.Subscribe(user, "laptop", func(e *Entry, deleted bool) {})
			for i := 0; i < commits; i++ {
				e := c.Commit(user, fmt.Sprintf("f%03d", i), content.Zeros(64), nil)
				c.NotifyPeers(user, "laptop", e, false)
			}
			if notified != commits {
				t.Errorf("%s desktop saw %d notifications, want %d", user, notified, commits)
			}
		}(u)
	}
	wg.Wait()
}
