package store

import (
	"bytes"
	"strings"
	"testing"

	"cloudsync/internal/chunker"
	"cloudsync/internal/content"
)

func TestRESTPutGet(t *testing.T) {
	s := NewREST()
	blob := content.FromBytes([]byte("hello"))
	s.Put("a", blob)
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(blob) {
		t.Fatal("Get returned different content")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.BytesIn != 5 || st.BytesOut != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRESTGetMissing(t *testing.T) {
	if _, err := NewREST().Get("nope"); err == nil {
		t.Fatal("Get of missing key should error")
	}
}

func TestRESTPutNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put(nil) did not panic")
		}
	}()
	NewREST().Put("a", nil)
}

func TestFakeDeletion(t *testing.T) {
	s := NewREST()
	s.Put("a", content.FromBytes([]byte("v1")))
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("a") {
		t.Fatal("deleted object still Exists")
	}
	if _, err := s.Get("a"); err == nil {
		t.Fatal("Get of deleted object should error")
	}
	// Fake deletion keeps the version history.
	if got := s.Versions("a"); got != 1 {
		t.Fatalf("Versions = %d, want 1 (content kept)", got)
	}
	// Rollback revives the content — the recovery feature the paper
	// credits fake deletion for.
	if err := s.Rollback("a", 0); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Bytes()) != "v1" {
		t.Fatalf("rolled back content = %q", got.Bytes())
	}
}

func TestDeleteMissing(t *testing.T) {
	if err := NewREST().Delete("nope"); err == nil {
		t.Fatal("Delete of missing key should error")
	}
}

func TestRollbackErrors(t *testing.T) {
	s := NewREST()
	s.Put("a", content.FromBytes([]byte("x")))
	if err := s.Rollback("a", 5); err == nil {
		t.Fatal("Rollback to missing version should error")
	}
	if err := s.Rollback("b", 0); err == nil {
		t.Fatal("Rollback of missing key should error")
	}
}

func TestVersionHistory(t *testing.T) {
	s := NewREST()
	s.Put("a", content.FromBytes([]byte("v1")))
	s.Put("a", content.FromBytes([]byte("v2")))
	if got := s.Versions("a"); got != 2 {
		t.Fatalf("Versions = %d", got)
	}
	cur, _ := s.Get("a")
	if string(cur.Bytes()) != "v2" {
		t.Fatalf("current = %q", cur.Bytes())
	}
	if err := s.Rollback("a", 0); err != nil {
		t.Fatal(err)
	}
	cur, _ = s.Get("a")
	if string(cur.Bytes()) != "v1" {
		t.Fatalf("after rollback = %q", cur.Bytes())
	}
}

func TestStoredBytes(t *testing.T) {
	s := NewREST()
	s.Put("a", content.Zeros(100))
	s.Put("b", content.Zeros(50))
	s.Delete("b")
	if got := s.StoredBytes(); got != 100 {
		t.Fatalf("StoredBytes = %d, want 100 (live objects only)", got)
	}
}

// midLayerRoundTrip exercises create/modify/read/delete through any
// MidLayer and verifies content fidelity.
func midLayerRoundTrip(t *testing.T, l MidLayer) {
	t.Helper()
	v1 := content.FromBytes(bytes.Repeat([]byte("abcd"), 4096)) // 16 KB
	if _, err := l.Create("f", v1); err != nil {
		t.Fatalf("%s: Create: %v", l.Name(), err)
	}
	got, _, err := l.Read("f")
	if err != nil {
		t.Fatalf("%s: Read: %v", l.Name(), err)
	}
	if !bytes.Equal(got.Bytes(), v1.Bytes()) {
		t.Fatalf("%s: read-back mismatch after create", l.Name())
	}

	// Modify 1 byte in the middle.
	data2 := append([]byte(nil), v1.Bytes()...)
	data2[8000] ^= 0xFF
	v2 := content.FromBytes(data2)
	if _, err := l.Modify("f", v2, []chunker.Range{{Off: 8000, Len: 1}}); err != nil {
		t.Fatalf("%s: Modify: %v", l.Name(), err)
	}
	got, _, err = l.Read("f")
	if err != nil {
		t.Fatalf("%s: Read after modify: %v", l.Name(), err)
	}
	if !bytes.Equal(got.Bytes(), data2) {
		t.Fatalf("%s: read-back mismatch after modify", l.Name())
	}

	if _, err := l.Delete("f"); err != nil {
		t.Fatalf("%s: Delete: %v", l.Name(), err)
	}
	if _, _, err := l.Read("f"); err == nil {
		t.Fatalf("%s: Read after delete should error", l.Name())
	}
}

func TestFullFileLayerRoundTrip(t *testing.T) {
	midLayerRoundTrip(t, &FullFileLayer{Store: NewREST()})
}

func TestTransformLayerRoundTrip(t *testing.T) {
	midLayerRoundTrip(t, &TransformLayer{Store: NewREST()})
}

func TestChunkObjectLayerRoundTrip(t *testing.T) {
	midLayerRoundTrip(t, &ChunkObjectLayer{Store: NewREST(), ChunkSize: 4096})
}

func TestMidLayerNames(t *testing.T) {
	layers := []MidLayer{
		&FullFileLayer{Store: NewREST()},
		&TransformLayer{Store: NewREST()},
		&ChunkObjectLayer{Store: NewREST(), ChunkSize: 4096},
	}
	seen := map[string]bool{}
	for _, l := range layers {
		name := l.Name()
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate mid-layer name %q", name)
		}
		seen[name] = true
	}
}

func TestMidLayerModifyMissing(t *testing.T) {
	for _, l := range []MidLayer{
		&FullFileLayer{Store: NewREST()},
		&TransformLayer{Store: NewREST()},
		&ChunkObjectLayer{Store: NewREST(), ChunkSize: 4096},
	} {
		if _, err := l.Modify("missing", content.Zeros(10), nil); err == nil {
			t.Errorf("%s: Modify of missing file should error", l.Name())
		}
	}
}

// The § 4.3 ablation in miniature: for a small modification to a large
// file, the chunk-object layer moves far less internal data than the
// transform layer, which in turn explains why full-file REST interfaces
// make IDS expensive for providers.
func TestMidLayerInternalTrafficOrdering(t *testing.T) {
	const size = 1 << 20
	base := content.Random(size, 1).Bytes()
	mod := append([]byte(nil), base...)
	mod[512_000] ^= 1
	dirty := []chunker.Range{{Off: 512_000, Len: 1}}

	full := &FullFileLayer{Store: NewREST()}
	trans := &TransformLayer{Store: NewREST()}
	chunk := &ChunkObjectLayer{Store: NewREST(), ChunkSize: 64 << 10}

	var internal [3]int64
	for i, l := range []MidLayer{full, trans, chunk} {
		if _, err := l.Create("f", content.FromBytes(base)); err != nil {
			t.Fatal(err)
		}
		n, err := l.Modify("f", content.FromBytes(mod), dirty)
		if err != nil {
			t.Fatal(err)
		}
		internal[i] = n
	}
	// Full-file: ≈ size. Transform: ≈ 2×size (GET + PUT). Chunk: ≈ one
	// chunk + metadata.
	if internal[1] < internal[0] {
		t.Fatalf("transform (%d) should cost at least full-file (%d)", internal[1], internal[0])
	}
	if internal[2] >= internal[0]/4 {
		t.Fatalf("chunk-objects (%d) should be far below full-file (%d)", internal[2], internal[0])
	}
	if threshold := int64(size) * 9 / 5; internal[1] < threshold {
		t.Fatalf("transform = %d, want ≈ 2×%d (GET+PUT)", internal[1], size)
	}
}

func TestChunkObjectLayerShrink(t *testing.T) {
	l := &ChunkObjectLayer{Store: NewREST(), ChunkSize: 1024}
	big := content.Random(10_000, 2)
	if _, err := l.Create("f", big); err != nil {
		t.Fatal(err)
	}
	small := content.FromBytes(big.Bytes()[:3000])
	if _, err := l.Modify("f", small, []chunker.Range{{Off: 0, Len: 3000}}); err != nil {
		t.Fatal(err)
	}
	got, _, err := l.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 3000 {
		t.Fatalf("after shrink size = %d", got.Size())
	}
	if !bytes.Equal(got.Bytes(), big.Bytes()[:3000]) {
		t.Fatal("shrunken content mismatch")
	}
}

func TestChunkObjectLayerAppend(t *testing.T) {
	l := &ChunkObjectLayer{Store: NewREST(), ChunkSize: 1024}
	base := content.Random(4096, 3)
	if _, err := l.Create("f", base); err != nil {
		t.Fatal(err)
	}
	grown := content.FromBytes(append(append([]byte(nil), base.Bytes()...),
		content.Random(2048, 4).Bytes()...))
	n, err := l.Modify("f", grown, []chunker.Range{{Off: 4096, Len: 2048}})
	if err != nil {
		t.Fatal(err)
	}
	// Only the two appended chunks plus metadata should move.
	if n > 3*1024 {
		t.Fatalf("append moved %d internal bytes, want ≈ 2 KB + meta", n)
	}
	got, _, err := l.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), grown.Bytes()) {
		t.Fatal("append content mismatch")
	}
}

func TestChunkObjectLayerInvalidChunkSizePanics(t *testing.T) {
	l := &ChunkObjectLayer{Store: NewREST()}
	defer func() {
		if recover() == nil {
			t.Fatal("zero ChunkSize did not panic")
		}
	}()
	l.Create("f", content.Zeros(10))
}

func TestStatsInternalBytes(t *testing.T) {
	s := Stats{BytesIn: 10, BytesOut: 7}
	if s.InternalBytes() != 17 {
		t.Fatalf("InternalBytes = %d", s.InternalBytes())
	}
}

func TestTransformLayerVersionKeyFormat(t *testing.T) {
	l := &TransformLayer{Store: NewREST()}
	l.Create("dir/file.txt", content.Zeros(1))
	if !l.Store.Exists("dir/file.txt@0") {
		t.Fatal("version key not found")
	}
	if k := l.versionKey("x", 3); !strings.Contains(k, "@3") {
		t.Fatalf("versionKey = %q", k)
	}
}
