// Package store implements the cloud-side storage substrate: a RESTful
// object store with full-file PUT/GET/DELETE semantics — the Amazon
// S3 / Azure / OpenStack Swift model the paper says most services build
// on — plus the mid-layer designs that bridge the gap between full-file
// REST interfaces and incremental sync (§ 4.3):
//
//   - FullFileLayer: no mid-layer; MODIFY is a fresh PUT of the whole
//     file (what full-file-sync services do).
//   - TransformLayer: MODIFY becomes GET + PUT + DELETE, reconstructing
//     the new version server-side from the old object and the client's
//     delta (what Dropbox does, per [25, 36]).
//   - ChunkObjectLayer: every chunk is its own object; MODIFY deletes
//     replaced chunk objects and PUTs new ones (the Cumulus design [43]).
//
// Deletion is "fake deletion": objects are tombstoned, never erased, so
// version rollback keeps working — the behaviour Experiment 2 observes.
package store

import (
	"fmt"

	"cloudsync/internal/chunker"
	"cloudsync/internal/content"
)

// Stats counts REST operations and internal data movement.
type Stats struct {
	Puts, Gets, Deletes int64
	// BytesIn is data written by PUTs; BytesOut is data read by GETs.
	// Their sum is the store-internal traffic a mid-layer generates.
	BytesIn, BytesOut int64
}

// InternalBytes is the total data moved through the REST interface.
func (s Stats) InternalBytes() int64 { return s.BytesIn + s.BytesOut }

type record struct {
	versions []*content.Blob
	deleted  bool
}

// REST is an in-memory object store with full-file REST semantics.
type REST struct {
	objects map[string]*record
	stats   Stats
}

// NewREST returns an empty store.
func NewREST() *REST {
	return &REST{objects: make(map[string]*record)}
}

// Put stores a new version of the object at key. Putting to a
// tombstoned key revives it — REST stores have no modify verb, so this
// is also how every mid-layer writes.
func (s *REST) Put(key string, blob *content.Blob) {
	if blob == nil {
		panic("store: Put with nil blob")
	}
	r := s.objects[key]
	if r == nil {
		r = &record{}
		s.objects[key] = r
	}
	r.versions = append(r.versions, blob)
	r.deleted = false
	s.stats.Puts++
	s.stats.BytesIn += blob.Size()
}

// Get returns the current version of the object.
func (s *REST) Get(key string) (*content.Blob, error) {
	r := s.objects[key]
	if r == nil || len(r.versions) == 0 {
		return nil, fmt.Errorf("store: %q: no such object", key)
	}
	if r.deleted {
		return nil, fmt.Errorf("store: %q: object deleted", key)
	}
	blob := r.versions[len(r.versions)-1]
	s.stats.Gets++
	s.stats.BytesOut += blob.Size()
	return blob, nil
}

// Delete tombstones the object. The content stays on disk ("fake
// deletion"), which is why Experiment 2 sees negligible traffic and why
// version rollback works.
func (s *REST) Delete(key string) error {
	r := s.objects[key]
	if r == nil || len(r.versions) == 0 {
		return fmt.Errorf("store: %q: no such object", key)
	}
	r.deleted = true
	s.stats.Deletes++
	return nil
}

// Exists reports whether key holds a live (non-tombstoned) object.
func (s *REST) Exists(key string) bool {
	r := s.objects[key]
	return r != nil && len(r.versions) > 0 && !r.deleted
}

// Versions reports how many versions of key have ever been stored,
// including tombstoned ones.
func (s *REST) Versions(key string) int {
	r := s.objects[key]
	if r == nil {
		return 0
	}
	return len(r.versions)
}

// Rollback restores version v (0-based) of key as the current version
// and clears any tombstone — the user-facing data-recovery feature fake
// deletion enables.
func (s *REST) Rollback(key string, v int) error {
	r := s.objects[key]
	if r == nil || v < 0 || v >= len(r.versions) {
		return fmt.Errorf("store: %q: no version %d", key, v)
	}
	r.versions = append(r.versions, r.versions[v])
	r.deleted = false
	return nil
}

// Stats returns a copy of the operation counters.
func (s *REST) Stats() Stats { return s.stats }

// StoredBytes reports the total size of all live current versions.
func (s *REST) StoredBytes() int64 {
	var n int64
	for _, r := range s.objects {
		if !r.deleted && len(r.versions) > 0 {
			n += r.versions[len(r.versions)-1].Size()
		}
	}
	return n
}

// MidLayer is the strategy a sync service uses to apply file operations
// to the REST store. Implementations report the store-internal traffic
// each operation generated, which is what the § 4.3 mid-layer ablation
// compares.
type MidLayer interface {
	// Name identifies the design in ablation output.
	Name() string
	// Create stores a new file.
	Create(key string, blob *content.Blob) (internal int64, err error)
	// Modify replaces the file's content; dirty describes the changed
	// byte ranges relative to the stored version (incremental designs
	// exploit it, full-file designs ignore it).
	Modify(key string, blob *content.Blob, dirty []chunker.Range) (internal int64, err error)
	// Delete removes the file.
	Delete(key string) (internal int64, err error)
	// Read returns the file's current content.
	Read(key string) (*content.Blob, int64, error)
}

// FullFileLayer is the no-mid-layer baseline: MODIFY = PUT of the whole
// new version, then DELETE of nothing (the old version simply becomes
// history).
type FullFileLayer struct {
	Store *REST
}

// Name implements MidLayer.
func (l *FullFileLayer) Name() string { return "full-file" }

// Create implements MidLayer.
func (l *FullFileLayer) Create(key string, blob *content.Blob) (int64, error) {
	before := l.Store.Stats()
	l.Store.Put(key, blob)
	return l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}

// Modify implements MidLayer: the whole new version is PUT regardless
// of how little changed.
func (l *FullFileLayer) Modify(key string, blob *content.Blob, _ []chunker.Range) (int64, error) {
	if !l.Store.Exists(key) {
		return 0, fmt.Errorf("store: full-file modify of missing %q", key)
	}
	return l.Create(key, blob)
}

// Delete implements MidLayer.
func (l *FullFileLayer) Delete(key string) (int64, error) {
	return 0, l.Store.Delete(key)
}

// Read implements MidLayer.
func (l *FullFileLayer) Read(key string) (*content.Blob, int64, error) {
	before := l.Store.Stats()
	blob, err := l.Store.Get(key)
	if err != nil {
		return nil, 0, err
	}
	return blob, l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}

// TransformLayer implements the GET + PUT + DELETE transform: each file
// version lives under its own object key; to apply an incremental
// modification the mid-layer GETs the old version object (the basis to
// patch), PUTs the patched result as a fresh object, and DELETEs the
// old one. The client saved network traffic; the provider paid
// store-internal traffic of old size + new size per modification.
type TransformLayer struct {
	Store *REST

	versions map[string]int // key → current version number
}

// Name implements MidLayer.
func (l *TransformLayer) Name() string { return "get-put-delete" }

func (l *TransformLayer) init() {
	if l.versions == nil {
		l.versions = make(map[string]int)
	}
}

func (l *TransformLayer) versionKey(key string, v int) string {
	return fmt.Sprintf("%s@%d", key, v)
}

// Create implements MidLayer.
func (l *TransformLayer) Create(key string, blob *content.Blob) (int64, error) {
	l.init()
	before := l.Store.Stats()
	l.versions[key] = 0
	l.Store.Put(l.versionKey(key, 0), blob)
	return l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}

// Modify implements MidLayer: GET the basis version, PUT the patched
// result as the next version, DELETE the basis object.
func (l *TransformLayer) Modify(key string, blob *content.Blob, _ []chunker.Range) (int64, error) {
	l.init()
	v, ok := l.versions[key]
	if !ok {
		return 0, fmt.Errorf("store: transform modify of missing %q", key)
	}
	before := l.Store.Stats()
	if _, err := l.Store.Get(l.versionKey(key, v)); err != nil { // GET basis
		return 0, fmt.Errorf("store: transform modify: %w", err)
	}
	l.Store.Put(l.versionKey(key, v+1), blob) // PUT patched version
	if err := l.Store.Delete(l.versionKey(key, v)); err != nil {
		return 0, err
	}
	l.versions[key] = v + 1
	return l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}

// Delete implements MidLayer.
func (l *TransformLayer) Delete(key string) (int64, error) {
	l.init()
	v, ok := l.versions[key]
	if !ok {
		return 0, fmt.Errorf("store: transform delete of missing %q", key)
	}
	delete(l.versions, key)
	return 0, l.Store.Delete(l.versionKey(key, v))
}

// Read implements MidLayer.
func (l *TransformLayer) Read(key string) (*content.Blob, int64, error) {
	l.init()
	v, ok := l.versions[key]
	if !ok {
		return nil, 0, fmt.Errorf("store: transform read of missing %q", key)
	}
	before := l.Store.Stats()
	blob, err := l.Store.Get(l.versionKey(key, v))
	if err != nil {
		return nil, 0, err
	}
	return blob, l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}

// ChunkObjectLayer stores every chunk of a file as a separate object
// (the Cumulus design): a modification PUTs only the dirty chunks and
// updates a metadata object, at the cost of per-chunk object overhead
// and a more complex namespace.
type ChunkObjectLayer struct {
	Store     *REST
	ChunkSize int
	// MetaBytesPerChunk approximates the metadata object entry cost per
	// chunk reference.
	MetaBytesPerChunk int

	chunks map[string]int // key → number of chunk objects
}

// Name implements MidLayer.
func (l *ChunkObjectLayer) Name() string { return "chunk-objects" }

func (l *ChunkObjectLayer) init() {
	if l.chunks == nil {
		l.chunks = make(map[string]int)
	}
	if l.ChunkSize <= 0 {
		panic("store: ChunkObjectLayer with non-positive ChunkSize")
	}
	if l.MetaBytesPerChunk <= 0 {
		l.MetaBytesPerChunk = 48
	}
}

func (l *ChunkObjectLayer) chunkKey(key string, i int64) string {
	return fmt.Sprintf("%s/chunk/%d", key, i)
}

func (l *ChunkObjectLayer) putMeta(key string, nChunks int64) {
	l.Store.Put(key+"/meta", content.Zeros(nChunks*int64(l.MetaBytesPerChunk)))
}

// Create implements MidLayer.
func (l *ChunkObjectLayer) Create(key string, blob *content.Blob) (int64, error) {
	l.init()
	before := l.Store.Stats()
	data := blob.Bytes()
	// Only the block geometry matters here; the chunk objects carry the
	// content, so fingerprinting every block (chunker.Fixed) would be
	// pure waste.
	blocks := chunker.Boundaries(int64(len(data)), l.ChunkSize)
	for i, b := range blocks {
		l.Store.Put(l.chunkKey(key, int64(i)), content.FromBytes(data[b.Off:b.Off+b.Len]))
	}
	l.chunks[key] = len(blocks)
	l.putMeta(key, int64(len(blocks)))
	return l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}

// Modify implements MidLayer: only chunks overlapping dirty ranges are
// re-PUT; their old objects are DELETEd.
func (l *ChunkObjectLayer) Modify(key string, blob *content.Blob, dirty []chunker.Range) (int64, error) {
	l.init()
	old, ok := l.chunks[key]
	if !ok {
		return 0, fmt.Errorf("store: chunk modify of missing %q", key)
	}
	before := l.Store.Stats()
	data := blob.Bytes()
	blocks := chunker.Boundaries(int64(len(data)), l.ChunkSize)
	norm := chunker.Normalize(dirty)
	for i, b := range blocks {
		start, end := b.Off, b.Off+b.Len
		touched := i >= old // appended chunks are always new
		for _, r := range norm {
			if r.Off < end && r.Off+r.Len > start {
				touched = true
				break
			}
		}
		if touched {
			ck := l.chunkKey(key, int64(i))
			if l.Store.Exists(ck) {
				if err := l.Store.Delete(ck); err != nil {
					return 0, err
				}
			}
			l.Store.Put(ck, content.FromBytes(data[start:end]))
		}
	}
	for i := len(blocks); i < old; i++ { // file shrank
		if err := l.Store.Delete(l.chunkKey(key, int64(i))); err != nil {
			return 0, err
		}
	}
	l.chunks[key] = len(blocks)
	l.putMeta(key, int64(len(blocks)))
	return l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}

// Delete implements MidLayer: tombstones every chunk and the metadata
// object.
func (l *ChunkObjectLayer) Delete(key string) (int64, error) {
	l.init()
	n, ok := l.chunks[key]
	if !ok {
		return 0, fmt.Errorf("store: chunk delete of missing %q", key)
	}
	for i := 0; i < n; i++ {
		if err := l.Store.Delete(l.chunkKey(key, int64(i))); err != nil {
			return 0, err
		}
	}
	if err := l.Store.Delete(key + "/meta"); err != nil {
		return 0, err
	}
	delete(l.chunks, key)
	return 0, nil
}

// Read implements MidLayer: GETs every chunk and reassembles.
func (l *ChunkObjectLayer) Read(key string) (*content.Blob, int64, error) {
	l.init()
	n, ok := l.chunks[key]
	if !ok {
		return nil, 0, fmt.Errorf("store: chunk read of missing %q", key)
	}
	before := l.Store.Stats()
	var data []byte
	for i := 0; i < n; i++ {
		blob, err := l.Store.Get(l.chunkKey(key, int64(i)))
		if err != nil {
			return nil, 0, err
		}
		data = append(data, blob.Bytes()...)
	}
	return content.FromBytes(data),
		l.Store.Stats().InternalBytes() - before.InternalBytes(), nil
}
