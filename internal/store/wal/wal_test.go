package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, recs *[][]byte) func([]byte) error {
	t.Helper()
	return func(rec []byte) error {
		*recs = append(*recs, append([]byte(nil), rec...))
		return nil
	}
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%03d-%s", i, "payload")) }

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append(rec(i))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	l2, err := OpenLog(path, collect(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, r := range got {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("record %d: got %q", i, r)
		}
	}
	want := int64(0)
	for i := 0; i < 10; i++ {
		want += FrameSize(len(rec(i)))
	}
	if l2.Size() != want {
		t.Fatalf("size %d, want %d", l2.Size(), want)
	}
}

// TestLogCloseFlushes: a graceful Close makes unsynced appends durable.
func TestLogCloseFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(rec(0))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l2, err := OpenLog(path, func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if n != 1 {
		t.Fatalf("replayed %d records after graceful close, want 1", n)
	}
}

// TestTornTailEveryOffset is the core recovery property: truncate a
// well-formed log at every possible byte offset — every kill -9 point —
// and recovery must yield exactly the records whose frames fit in the
// prefix, then accept appends on the repaired log.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	l, err := OpenLog(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	var ends []int64 // cumulative frame end offsets
	off := int64(0)
	for i := 0; i < n; i++ {
		l.Append(rec(i))
		off += FrameSize(len(rec(i)))
		ends = append(ends, off)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(raw)); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		for _, e := range ends {
			if e <= cut {
				wantRecs++
			}
		}
		var got [][]byte
		l, err := OpenLog(path, collect(t, &got))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != wantRecs {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantRecs)
		}
		// The repaired log must accept appends and replay them.
		l.Append([]byte("after-crash"))
		if err := l.Sync(); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		l.Close()
		got = nil
		l2, err := OpenLog(path, collect(t, &got))
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		l2.Close()
		if len(got) != wantRecs+1 || !bytes.Equal(got[len(got)-1], []byte("after-crash")) {
			t.Fatalf("cut %d: after repair got %d records", cut, len(got))
		}
	}
}

// TestCorruptFrameStopsReplay: a bit flip in a middle record truncates
// recovery at the corruption point (the frames after it are
// unreachable), and the repaired log is again well-formed.
func TestCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Append(rec(i))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	raw, _ := os.ReadFile(path)
	raw[FrameSize(len(rec(0)))+frameHeaderSize+2] ^= 0xff // corrupt record 1's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	l2, err := OpenLog(path, collect(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if len(got) != 1 || !bytes.Equal(got[0], rec(0)) {
		t.Fatalf("recovered %d records past corruption, want 1", len(got))
	}
}

// TestFailPoint: an armed crash point tears the flush mid-frame; the
// log is dead afterwards, and recovery sees only complete frames below
// the cut.
func TestFailPoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(rec(0))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	first := l.Size()

	// Cut 3 bytes into the second record's frame.
	l.FailAt(first + 3)
	l.Append(rec(1))
	if err := l.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync past fail point: %v, want ErrCrashed", err)
	}
	if !l.Dead() {
		t.Fatal("log not dead after crash")
	}
	l.Append(rec(2))
	if err := l.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync on dead log: %v, want ErrCrashed", err)
	}
	l.Close()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != first+3 {
		t.Fatalf("file size %d after crash at %d", fi.Size(), first+3)
	}
	var got [][]byte
	l2, err := OpenLog(path, collect(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if len(got) != 1 || !bytes.Equal(got[0], rec(0)) {
		t.Fatalf("recovered %d records, want only the synced one", len(got))
	}
}

func openCollect(t *testing.T, dir string) (*Store, [][]byte) {
	t.Helper()
	var got [][]byte
	st, err := Open(dir, collect(t, &got))
	if err != nil {
		t.Fatal(err)
	}
	return st, got
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, got := openCollect(t, dir)
	if len(got) != 0 {
		t.Fatalf("fresh store replayed %d records", len(got))
	}
	for i := 0; i < 5; i++ {
		st.Append(rec(i))
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Compact to a two-record snapshot (as if the five mutations folded
	// down to two live state items).
	if err := st.Compact([][]byte{[]byte("state-a"), []byte("state-b")}); err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 2 {
		t.Fatalf("generation %d after compact, want 2", st.Generation())
	}
	st.Append([]byte("post-compact"))
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, got := openCollect(t, dir)
	st2.Close()
	want := [][]byte{[]byte("state-a"), []byte("state-b"), []byte("post-compact")}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}
	// Old generation files are gone.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if g, ok := parseGen(e.Name(), walPrefix); ok && g != 2 {
			t.Fatalf("stale log generation %d left behind", g)
		}
		if g, ok := parseGen(e.Name(), snapPrefix); ok && g != 2 {
			t.Fatalf("stale snapshot generation %d left behind", g)
		}
	}
}

// TestStoreCrashWindows exercises the interrupted-compaction states
// Open must repair: a leftover tmp snapshot, a renamed snapshot with no
// log yet, and undeleted older-generation files.
func TestStoreCrashWindows(t *testing.T) {
	t.Run("tmp snapshot ignored", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := openCollect(t, dir)
		st.Append(rec(0))
		st.Sync()
		st.Close()
		// Crash mid-snapshot-write: a torn tmp file remains.
		if err := os.WriteFile(filepath.Join(dir, "snap-garbage.tmp"), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		st2, got := openCollect(t, dir)
		st2.Close()
		if len(got) != 1 {
			t.Fatalf("replayed %d records, want 1", len(got))
		}
		if _, err := os.Stat(filepath.Join(dir, "snap-garbage.tmp")); !os.IsNotExist(err) {
			t.Fatal("tmp dropping not swept")
		}
	})

	t.Run("snapshot renamed, log missing, old gen alive", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := openCollect(t, dir)
		st.Append(rec(0))
		st.Sync()
		st.Close()
		// Simulate the crash window after the gen-2 snapshot rename but
		// before wal-2 exists and before gen-1 files were removed.
		var buf []byte
		buf = appendFrame(buf, []byte("compacted-state"))
		if err := os.WriteFile(filepath.Join(dir, genFile(snapPrefix, 2)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, got := openCollect(t, dir)
		defer st2.Close()
		if st2.Generation() != 2 {
			t.Fatalf("generation %d, want 2", st2.Generation())
		}
		if len(got) != 1 || !bytes.Equal(got[0], []byte("compacted-state")) {
			t.Fatalf("replayed %q, want the snapshot only", got)
		}
		if _, err := os.Stat(filepath.Join(dir, genFile(walPrefix, 1))); !os.IsNotExist(err) {
			t.Fatal("stale generation-1 log not swept")
		}
	})
}

// TestStoreFailPointTornCommit drives the full crash-and-recover loop
// through the Store API at every mid-frame offset of the second
// commit: the crash must always tear that commit away, never the
// already-synced first one.
func TestStoreFailPointTornCommit(t *testing.T) {
	frame0 := FrameSize(len(rec(0)))
	frame1 := FrameSize(len(rec(1)))
	for cut := int64(0); cut < frame1; cut++ {
		dir := t.TempDir()
		st, _ := openCollect(t, dir)
		st.Append(rec(0))
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		st.FailAt(frame0 + cut)
		st.Append(rec(1))
		if err := st.Sync(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cut %d: %v, want ErrCrashed", cut, err)
		}
		st.Close()

		st2, got := openCollect(t, dir)
		st2.Close()
		if len(got) != 1 || !bytes.Equal(got[0], rec(0)) {
			t.Fatalf("cut %d: recovered %d records, want exactly the synced one", cut, len(got))
		}
	}
}
