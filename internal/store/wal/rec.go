package wal

import (
	"encoding/binary"
	"errors"
)

// Record codec helpers shared by the package's callers: the WAL itself
// is value-free about record contents, but every caller's codec wants
// the same primitives — little-endian fixed-width integers and
// u32-length-prefixed strings and byte slices.

// AppendStr appends a u32-length-prefixed string.
func AppendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendBytes appends a u32-length-prefixed byte slice.
func AppendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// RecCursor decodes a record sequentially; the first short read sets
// the error and every later accessor returns zero values, so a caller
// can decode a whole record and check Err once.
type RecCursor struct {
	b   []byte
	err error
}

// NewRecCursor wraps a record's bytes for decoding. The cursor reads
// from the slice in place; returned sub-slices alias it.
func NewRecCursor(b []byte) *RecCursor { return &RecCursor{b: b} }

// Err reports the first decode failure, nil if all reads fit.
func (c *RecCursor) Err() error { return c.err }

// Rest returns the undecoded remainder.
func (c *RecCursor) Rest() []byte { return c.b }

func (c *RecCursor) fail() {
	if c.err == nil {
		c.err = errors.New("wal: truncated record")
	}
}

// U8 reads one byte.
func (c *RecCursor) U8() uint8 {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

// U32 reads a little-endian uint32.
func (c *RecCursor) U32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

// U64 reads a little-endian uint64.
func (c *RecCursor) U64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// I64 reads a little-endian int64 (two's-complement of U64).
func (c *RecCursor) I64() int64 { return int64(c.U64()) }

// Take reads n raw bytes (aliasing the record).
func (c *RecCursor) Take(n int) []byte {
	if c.err != nil || n < 0 || len(c.b) < n {
		c.fail()
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// Str reads a u32-length-prefixed string.
func (c *RecCursor) Str() string { return string(c.Take(int(c.U32()))) }

// Bytes reads a u32-length-prefixed byte slice (aliasing the record).
func (c *RecCursor) Bytes() []byte { return c.Take(int(c.U32())) }

// Hash16 reads a 16-byte digest (an MD5 fingerprint).
func (c *RecCursor) Hash16() (h [16]byte) {
	copy(h[:], c.Take(len(h)))
	return h
}
