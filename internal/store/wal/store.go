package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store manages one durable state directory: the current generation's
// snapshot (if any) plus its record log. State is reconstructed by
// replaying snapshot records then log records through the caller's
// replay function; Compact folds the log into a fresh snapshot and
// starts an empty log.
//
// Directory layout (generation G, zero-padded):
//
//	snap-0000000G.log   compacted state as a record log (absent for a
//	                    fresh store: the base state is empty)
//	wal-0000000G.log    records appended since snapshot G
//
// Crash windows during Compact leave either the old generation intact
// (snapshot write unfinished: only an ignored *.tmp remains) or the
// new one already authoritative (snapshot renamed; a missing log is
// recreated empty, stale older-generation files are swept). Open
// always selects the highest complete snapshot, so recovery is
// deterministic whatever the crash point.
type Store struct {
	dir     string
	gen     uint64
	log     *Log
	metrics *Metrics
}

const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
	genSuffix  = ".log"
)

func genFile(prefix string, gen uint64) string {
	return fmt.Sprintf("%s%08d%s", prefix, gen, genSuffix)
}

// parseGen extracts the generation from a snap-/wal- file name, or
// returns false for anything else (tmp droppings, foreign files).
func parseGen(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, genSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), genSuffix)
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// Open opens (creating if needed) the state directory and replays the
// current generation — snapshot records first, then log records — in
// order through replay. Torn log tails are discarded and repaired;
// stale generations and temp files from interrupted compactions are
// swept. replay must not retain the record slice.
func Open(dir string, replay func(rec []byte) error) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: state dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: state dir: %w", err)
	}

	var snapGens, walGens []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // interrupted compaction
			continue
		}
		if g, ok := parseGen(name, snapPrefix); ok {
			snapGens = append(snapGens, g)
		}
		if g, ok := parseGen(name, walPrefix); ok {
			walGens = append(walGens, g)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	// The authoritative generation: the newest complete snapshot (a
	// snapshot is complete by construction — it is renamed into place
	// only after its bytes are fsynced). With no snapshot yet, the
	// newest log continues generation 1's empty base state.
	gen := uint64(1)
	hasSnap := false
	if n := len(snapGens); n > 0 {
		gen = snapGens[n-1]
		hasSnap = true
	} else if n := len(walGens); n > 0 {
		gen = walGens[n-1]
	}

	// Sweep every other generation: superseded by the snapshot we are
	// about to load, or orphaned by a crash mid-compaction.
	for _, g := range snapGens {
		if g != gen {
			os.Remove(filepath.Join(dir, genFile(snapPrefix, g)))
		}
	}
	for _, g := range walGens {
		if g != gen {
			os.Remove(filepath.Join(dir, genFile(walPrefix, g)))
		}
	}

	if hasSnap {
		f, err := os.Open(filepath.Join(dir, genFile(snapPrefix, gen)))
		if err != nil {
			return nil, fmt.Errorf("wal: open snapshot: %w", err)
		}
		_, rerr := replayFrames(f, replay)
		f.Close()
		if rerr != nil {
			return nil, rerr
		}
	}
	log, err := OpenLog(filepath.Join(dir, genFile(walPrefix, gen)), replay)
	if err != nil {
		return nil, err
	}
	syncDir(dir)
	return &Store{dir: dir, gen: gen, log: log}, nil
}

// SetMetrics installs (or, with nil, removes) the store's instrument
// set; it propagates to the current log and survives the log swap a
// Compact performs. Install before serving traffic — SetMetrics is not
// synchronized against concurrent Sync/Compact.
func (st *Store) SetMetrics(m *Metrics) {
	st.metrics = m
	st.log.metrics = m
}

// Dir returns the state directory path.
func (st *Store) Dir() string { return st.dir }

// Generation returns the current snapshot/log generation.
func (st *Store) Generation() uint64 { return st.gen }

// Append buffers one record for the next Sync (see Log.Append).
func (st *Store) Append(rec []byte) { st.log.Append(rec) }

// Sync makes every record appended so far durable in one fsync.
func (st *Store) Sync() error { return st.log.Sync() }

// LogBytes reports the current log's size including unsynced appends —
// the quantity compaction policies threshold on.
func (st *Store) LogBytes() int64 { return st.log.Size() + st.log.Pending() }

// Pending reports the buffered-but-unsynced byte volume — the quantity
// group-commit batching policies threshold on.
func (st *Store) Pending() int64 { return st.log.Pending() }

// FailAt arms the injected crash point on the current log at an
// absolute log-file offset (see Log.FailAt).
func (st *Store) FailAt(offset int64) { st.log.FailAt(offset) }

// Dead reports whether the store has crashed.
func (st *Store) Dead() bool { return st.log.Dead() }

// Compact writes state — the caller's full current state rendered as
// records — as the next generation's snapshot, starts that
// generation's empty log, and removes the old generation. The snapshot
// is fsynced before the atomic rename that makes it authoritative, so
// a crash at any byte leaves either the old generation or the new one,
// never a blend. The caller must guarantee quiescence (no concurrent
// Append) and must have Synced every record already acknowledged.
func (st *Store) Compact(state [][]byte) error {
	if st.log.Dead() {
		return ErrCrashed
	}
	if err := st.log.Sync(); err != nil {
		return err
	}
	next := st.gen + 1

	tmp, err := os.CreateTemp(st.dir, snapPrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: compact: %w", err)
	}
	var buf []byte
	var snapBytes int64
	for _, rec := range state {
		buf = appendFrame(buf[:0], rec)
		if _, err := tmp.Write(buf); err != nil {
			return fail(err)
		}
		snapBytes += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: compact: %w", err)
	}
	snapPath := filepath.Join(st.dir, genFile(snapPrefix, next))
	if err := os.Rename(tmpName, snapPath); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: compact: %w", err)
	}
	syncDir(st.dir) // the rename is the commit point

	newLog, err := OpenLog(filepath.Join(st.dir, genFile(walPrefix, next)), nil)
	if err != nil {
		return err
	}
	newLog.metrics = st.metrics // instruments outlive the log swap
	syncDir(st.dir)
	if m := st.metrics; m != nil {
		m.Compactions.Inc()
		m.SnapshotBytes.Set(snapBytes)
	}

	// The new generation is authoritative; retire the old one. Best
	// effort: leftovers are swept by the next Open.
	old := st.log
	os.Remove(filepath.Join(st.dir, genFile(walPrefix, st.gen)))
	os.Remove(filepath.Join(st.dir, genFile(snapPrefix, st.gen)))
	syncDir(st.dir)
	st.log = newLog
	st.gen = next
	return old.Close()
}

// Close flushes and closes the current log.
func (st *Store) Close() error { return st.log.Close() }
