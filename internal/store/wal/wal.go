// Package wal is the durability substrate behind the cloud file table
// and the live sync server: an append-only record log with CRC-framed,
// length-prefixed records and batched fsync, plus generational
// compacting snapshots, managed together as one state directory.
//
// The contract is crash-safety under kill -9 at any byte: a record is
// durable once Sync has returned, a torn tail (a frame cut mid-write
// by a crash) is detected by its CRC or short length and discarded on
// the next Open, and a snapshot becomes the recovery base only via an
// atomic rename after its bytes are fsynced. Recovery therefore always
// reconstructs exactly the state as of the last completed Sync — never
// a torn or interleaved hybrid. docs/DURABILITY.md specifies the frame
// layout, the generation scheme, and the compaction policy; the
// crash-point property harness in internal/invariant drives kill
// -9-equivalent cuts through this package at seeded offsets.
//
// The package is deliberately value-free about record contents: callers
// (internal/cloud, internal/syncnet) define their own record codecs and
// replay functions.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"cloudsync/internal/obs"
)

// Metrics is the optional instrument set a Log (and the Store above
// it) reports into: the group-commit fsync cost, durable byte volume,
// and compaction activity. All fields are nil-safe obs instruments, so
// a partially populated set works; a nil *Metrics disables metering
// entirely (the historical zero-overhead behaviour).
type Metrics struct {
	// FsyncUS times each group commit (buffered write + fsync), in
	// microseconds.
	FsyncUS *obs.Histogram
	// Fsyncs counts group commits performed.
	Fsyncs *obs.Counter
	// BytesAppended counts framed record bytes made durable.
	BytesAppended *obs.Counter
	// Compactions counts log-into-snapshot compactions completed.
	Compactions *obs.Counter
	// SnapshotBytes holds the current generation's snapshot size.
	SnapshotBytes *obs.Gauge
}

// ErrCrashed is returned by every operation on a log whose injected
// crash point has tripped (and by all operations after a real I/O
// failure): the store behaves exactly as if the process had been
// killed — nothing more reaches the disk.
var ErrCrashed = errors.New("wal: store crashed")

// frameHeaderSize is the per-record framing overhead: a little-endian
// uint32 payload length followed by a little-endian uint32 CRC-32C
// covering the length bytes and the payload.
const frameHeaderSize = 8

// maxRecordSize bounds a single record; a length field beyond it is
// treated as a torn or corrupt tail, not an allocation request.
const maxRecordSize = 1 << 30

// castagnoli is the CRC-32C table (the iSCSI polynomial, hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is one append-only record log file. Appends buffer in memory;
// Sync writes the buffered frames and fsyncs, so N appended records
// cost one fsync (group commit). A Log is not safe for concurrent use;
// callers serialize (the sync server appends under its state lock).
type Log struct {
	f       *os.File
	path    string
	size    int64  // bytes of complete, flushed frames in the file
	pending []byte // frames appended since the last Sync

	// failAt, when ≥ 0, is the injected crash point: an absolute file
	// offset beyond which no byte may reach the disk. The flush that
	// would cross it writes only the allowed prefix — a torn frame,
	// exactly what kill -9 mid-write leaves — and the log is dead from
	// then on.
	failAt int64
	dead   bool

	// metrics, when non-nil, receives fsync timings and durable byte
	// counts (Store.SetMetrics installs it and keeps it across
	// compaction's log swap).
	metrics *Metrics
}

// appendFrame appends one framed record to buf.
func appendFrame(buf, rec []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
	crc := crc32.Update(0, castagnoli, hdr[0:4])
	crc = crc32.Update(crc, castagnoli, rec)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, rec...)
}

// FrameSize reports the on-disk bytes one record of n payload bytes
// occupies — callers use it to reason about compaction thresholds and
// the crash harness uses it to aim cuts at specific commits.
func FrameSize(n int) int64 { return frameHeaderSize + int64(n) }

// OpenLog opens (creating if needed) the log at path, replays every
// complete record through fn in append order, truncates any torn tail,
// and leaves the log positioned for appending. fn must not retain rec.
func OpenLog(path string, fn func(rec []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	valid, err := replayFrames(f, fn)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Repair: drop the torn tail so appends extend a well-formed log.
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, path: path, size: valid, failAt: -1}, nil
}

// replayFrames scans complete frames from r, calling fn for each, and
// returns the offset of the first byte past the last complete frame.
// A short header, short payload, oversized length, or CRC mismatch all
// mark the torn tail: replay stops there without error — that is the
// crash-recovery contract, not a failure. Only fn's own error (a
// corrupt record *payload* by the caller's standards) aborts the open.
func replayFrames(r io.Reader, fn func(rec []byte) error) (int64, error) {
	br := newByteCounter(r)
	var hdr [frameHeaderSize]byte
	var rec []byte
	valid := int64(0)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return valid, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordSize {
			return valid, nil // garbage length: torn tail
		}
		if cap(rec) < int(length) {
			rec = make([]byte, length)
		}
		rec = rec[:length]
		if _, err := io.ReadFull(br, rec); err != nil {
			return valid, nil // torn payload
		}
		crc := crc32.Update(0, castagnoli, hdr[0:4])
		if crc32.Update(crc, castagnoli, rec) != want {
			return valid, nil // corrupt or torn frame
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return valid, fmt.Errorf("wal: replaying record at %d: %w", valid, err)
			}
		}
		valid = br.n
	}
}

// byteCounter counts consumed bytes so replay knows frame boundaries.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// Append buffers one record for the next Sync. It never touches the
// disk — durability is Sync's job — so it cannot fail; a dead log's
// buffered records are simply never written.
func (l *Log) Append(rec []byte) {
	l.pending = appendFrame(l.pending, rec)
}

// Pending reports the buffered-but-unsynced byte volume.
func (l *Log) Pending() int64 { return int64(len(l.pending)) }

// Size reports the flushed (complete-frame) byte size of the log file.
func (l *Log) Size() int64 { return l.size }

// Sync flushes every buffered record and fsyncs the file: the group
// commit. On return the records are durable. If a crash point trips
// mid-flush, the allowed prefix reaches the file (torn), ErrCrashed is
// returned, and every later operation fails the same way.
func (l *Log) Sync() error {
	if l.dead {
		return ErrCrashed
	}
	if len(l.pending) == 0 {
		return nil
	}
	var t0 time.Time
	if l.metrics != nil {
		t0 = time.Now()
	}
	buf := l.pending
	if l.failAt >= 0 && l.size+int64(len(buf)) > l.failAt {
		allowed := l.failAt - l.size
		if allowed < 0 {
			allowed = 0
		}
		if allowed > 0 {
			// The kernel got the prefix; whether it hit the platter is
			// moot — recovery must tolerate the torn frame either way.
			l.f.Write(buf[:allowed])
			l.f.Sync()
		}
		l.dead = true
		return ErrCrashed
	}
	n, err := l.f.Write(buf)
	if err != nil {
		l.size += int64(n)
		l.dead = true
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.dead = true
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.size += int64(len(buf))
	l.pending = l.pending[:0]
	if m := l.metrics; m != nil {
		m.Fsyncs.Inc()
		m.BytesAppended.Add(int64(len(buf)))
		m.FsyncUS.Observe(time.Since(t0).Microseconds())
	}
	return nil
}

// FailAt arms the injected crash point at an absolute file offset
// (-1 disarms). The flush that would carry the file past the offset
// writes only the prefix and kills the log — the in-process equivalent
// of kill -9 at that exact byte of the WAL stream.
func (l *Log) FailAt(offset int64) { l.failAt = offset }

// Dead reports whether the log has crashed (injected or real I/O
// failure). A dead log's file is exactly as a killed process would
// have left it.
func (l *Log) Dead() bool { return l.dead }

// Close flushes buffered records (unless the log is dead) and closes
// the file. A dead log closes without writing another byte.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	var err error
	if !l.dead {
		err = l.Sync()
	}
	cerr := l.f.Close()
	l.f = nil
	if err != nil {
		return err
	}
	return cerr
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Platforms that refuse to fsync directories are tolerated:
// the rename itself is still atomic, only its durability window grows.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
