package invariant_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"cloudsync/internal/content"
	"cloudsync/internal/invariant"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/syncnet"
)

// batchPlan is one generated batched-upload round: which path carries
// it and the files it commits.
type batchPlan struct {
	bundle bool // UploadBundle vs UploadPipelined
	files  []syncnet.FileUpload
}

// genBatches derives a seeded sequence of small-file batches. Names
// repeat across rounds (with fresh content) so versions advance through
// the batched paths, and sizes straddle the compression and piece
// boundaries without leaving small-file territory.
func genBatches(seed uint64) []batchPlan {
	rng := seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	rounds := 3 + int(next(3))
	plans := make([]batchPlan, rounds)
	for r := range plans {
		count := 1 + int(next(5))
		files := make([]syncnet.FileUpload, count)
		for i := range files {
			size := 64 + int64(next(6000))
			files[i] = syncnet.FileUpload{
				Name: fmt.Sprintf("f%02d", i),
				Data: content.Random(size, int64(seed)*1000+int64(r)*50+int64(i)).Bytes(),
			}
		}
		plans[r] = batchPlan{bundle: next(2) == 0, files: files}
	}
	return plans
}

// runBundlePipe replays a seeded batched-session against a fresh server
// over net.Pipe under the seed's fault schedule: every batch goes
// through UploadBundle or UploadPipelined (window 1 — net.Pipe cannot
// absorb outstanding replies), every file is downloaded back at the
// end, and the run must satisfy the full invariant set — server state
// converged to the tracker's view (which hashes content, so MD5
// convergence is implied by byte equality), exact wire balance, and
// exact per-byte ledger attribution on both sides.
func runBundlePipe(seed uint64, plans []batchPlan) []invariant.Violation {
	clientLed := &ledger.Ledger{}
	serverLed := &ledger.Ledger{}
	srv := syncnet.NewServer(syncnet.ServerConfig{Ledger: serverLed})
	sched := syncnet.NewFaultScheduler(planForSeed(seed))

	var prevDone chan struct{}
	dial := func() (net.Conn, error) {
		if prevDone != nil {
			<-prevDone
		}
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		prevDone = done
		go func() {
			defer close(done)
			srv.HandleConn(serverEnd)
		}()
		return sched.Wrap(clientEnd), nil
	}
	fail := func(err error) []invariant.Violation {
		return []invariant.Violation{{Invariant: "driver", Detail: err.Error()}}
	}

	conn, err := dial()
	if err != nil {
		return fail(err)
	}
	c, err := syncnet.NewClient(conn, "alice", "bundle-prop",
		syncnet.WithDialer(dial), syncnet.WithLedger(clientLed),
		retryForSeed(seed, func(time.Duration) {}))
	if err != nil {
		return fail(err)
	}

	tr := invariant.NewTracker()
	names := map[string]bool{}
	for _, plan := range plans {
		var stats []syncnet.UploadStats
		if plan.bundle {
			stats, err = c.UploadBundle(plan.files)
		} else {
			stats, err = c.UploadPipelined(plan.files, 1)
		}
		if err != nil {
			c.Close()
			<-prevDone
			return fail(err)
		}
		for i, f := range plan.files {
			tr.RecordUpload(f.Name, f.Data, stats[i].Version)
			names[f.Name] = true
		}
	}
	for name := range names {
		data, err := c.Download(name)
		if err != nil {
			c.Close()
			<-prevDone
			return fail(err)
		}
		tr.RecordDownload(name, data)
	}
	c.Close()
	<-prevDone

	stats := srv.Stats()
	vs := tr.Check(toServerFiles(srv.Snapshot("alice")), invariant.Wire{
		ClientSent:     sched.Stats().BytesWritten,
		ServerReceived: stats.BytesReceived,
		MaxLost:        0,
	})
	clientIn, clientOut := c.WireTotals()
	vs = append(vs, invariant.CheckLedger(clientIn+clientOut, clientLed.Snapshot())...)
	vs = append(vs, invariant.CheckLedger(stats.BytesReceived+stats.BytesSent, serverLed.Snapshot())...)
	return vs
}

// TestSyncnetBundleInvariants is the batched-path acceptance property:
// 120 seeded fault schedules × seeded batch sequences, bundle and
// pipelined uploads interleaved, checked for convergence and exact
// per-byte attribution on a synchronous transport.
func TestSyncnetBundleInvariants(t *testing.T) {
	for seed := uint64(0); seed < 120; seed++ {
		plans := genBatches(seed)
		if vs := runBundlePipe(seed, plans); len(vs) > 0 {
			// Shrink to the shortest failing batch prefix.
			k := invariant.ShrinkPrefix(len(plans), func(k int) bool {
				return len(runBundlePipe(seed, plans[:k])) > 0
			})
			t.Fatalf("seed %d: %d violation(s): %v\nminimal failing prefix: %d of %d batches",
				seed, len(vs), vs, k, len(plans))
		}
	}
}
