package invariant_test

import (
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"cloudsync/internal/invariant"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/syncnet"
)

// toServerFilesID is toServerFiles plus the server-assigned file IDs,
// which the recovery contract requires to survive a crash unchanged.
func toServerFilesID(snap map[string]syncnet.FileState) map[string]invariant.ServerFile {
	out := make(map[string]invariant.ServerFile, len(snap))
	for name, f := range snap {
		out[name] = invariant.ServerFile{
			ID: f.ID, Data: f.Data, Version: f.Version, Deleted: f.Deleted, History: f.History,
		}
	}
	return out
}

// measureCleanWAL replays ops against a durable fault-free server and
// returns the total WAL byte volume the sequence writes — the range the
// crash run aims its seeded kill -9 offset into. The run mirrors the
// crash run exactly (same client, same pipe transport, per-op group
// commits), so byte-for-byte the crash run's log is a prefix of this
// one up to the moment the crash trips.
func measureCleanWAL(seed uint64, ops []invariant.Op) (int64, error) {
	dir, err := os.MkdirTemp("", "crash-clean-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	srv, err := syncnet.OpenServer(syncnet.ServerConfig{StateDir: dir})
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	var prevDone chan struct{}
	dial := func() (net.Conn, error) {
		if prevDone != nil {
			<-prevDone
		}
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		prevDone = done
		go func() {
			defer close(done)
			srv.HandleConn(serverEnd)
		}()
		return clientEnd, nil
	}
	conn, err := dial()
	if err != nil {
		return 0, err
	}
	c, err := syncnet.NewClient(conn, "alice", "prop",
		syncnet.WithDialer(dial), retryForSeed(seed, func(time.Duration) {}))
	if err != nil {
		return 0, err
	}
	tr := invariant.NewTracker()
	for _, op := range ops {
		if err := applyOp(c, tr, op); err != nil {
			c.Close()
			<-prevDone
			return 0, err
		}
	}
	c.Close()
	<-prevDone
	return srv.StateLogBytes(), nil
}

// runCrashPipe is the kill -9 recovery property: replay ops against a
// durable server over net.Pipe with a crash armed at a seeded offset of
// the WAL (measured from an identical clean run, so the offset always
// lands inside real traffic). When the crash trips mid-commit, the dead
// server is reaped and its state directory reopened into a fresh one;
// recovery must reproduce exactly the per-file content, version,
// deletion flag, history, and file identity as of the last acknowledged
// operation — nothing torn, nothing invented (CheckRecovery). The
// client then retries the interrupted operation against the recovered
// server and finishes the sequence, after which the usual convergence,
// version, wire-balance, and exact-ledger invariants must hold across
// the crash: both server incarnations share one ledger and their wire
// counters are summed.
func runCrashPipe(seed uint64, ops []invariant.Op) []invariant.Violation {
	fail := func(err error) []invariant.Violation {
		return []invariant.Violation{{Invariant: "driver", Detail: err.Error()}}
	}
	walBytes, err := measureCleanWAL(seed, ops)
	if err != nil {
		return fail(err)
	}
	if walBytes == 0 {
		return fail(fmt.Errorf("clean run wrote no WAL for %d ops", len(ops)))
	}

	dir, err := os.MkdirTemp("", "crash-prop-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)

	clientLed := &ledger.Ledger{}
	serverLed := &ledger.Ledger{}
	cfg := syncnet.ServerConfig{StateDir: dir, Ledger: serverLed}
	srv, err := syncnet.OpenServer(cfg)
	if err != nil {
		return fail(err)
	}

	// Seeded crash offsets: means of W/8..W/2 put every draw inside
	// [W/16, 3W/4) of the measured WAL, so the kill always trips —
	// early seeds die during the first commits, late seeds deep into
	// the sequence. (The cloud-layer torn-tail test covers every single
	// byte offset exhaustively; this harness covers the full protocol
	// stack above the log.)
	sched := syncnet.NewFaultScheduler(syncnet.FaultPlan{
		Seed:           seed*0x9e3779b9 + 7,
		MeanCrashBytes: 1 + walBytes*(1+int64(seed%4))/8,
	})
	sched.ArmCrash(srv)

	// current swaps to the recovered server after the crash; dial is
	// only ever invoked from the client's goroutine, so plain reads are
	// safe.
	current := srv
	var prevDone chan struct{}
	dial := func() (net.Conn, error) {
		if prevDone != nil {
			<-prevDone
		}
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		prevDone = done
		s := current
		go func() {
			defer close(done)
			s.HandleConn(serverEnd)
		}()
		return sched.Wrap(clientEnd), nil
	}
	conn, err := dial()
	if err != nil {
		return fail(err)
	}
	c, err := syncnet.NewClient(conn, "alice", "prop",
		syncnet.WithDialer(dial), syncnet.WithLedger(clientLed),
		retryForSeed(seed, func(time.Duration) {}))
	if err != nil {
		return fail(err)
	}

	tr := invariant.NewTracker()
	acked := map[string]invariant.ServerFile{} // state as of the last ACK
	crashed := false
	for i := 0; i < len(ops); i++ {
		err := applyOp(c, tr, ops[i])
		if err == nil {
			acked = toServerFilesID(current.Snapshot("alice"))
			continue
		}
		if crashed || !current.Crashed() {
			c.Close()
			<-prevDone
			return fail(fmt.Errorf("op %d: %w", i, err))
		}
		// The kill -9 tripped mid-commit: the op failed, every retry was
		// refused by the dead server. Reap it and reopen its state
		// directory — recovery must reproduce the acknowledged state
		// exactly.
		crashed = true
		<-prevDone
		current.Close()
		recovered, err := syncnet.OpenServer(cfg)
		if err != nil {
			c.Close()
			return fail(fmt.Errorf("reopen after crash: %w", err))
		}
		if vs := invariant.CheckRecovery(acked, toServerFilesID(recovered.Snapshot("alice"))); len(vs) > 0 {
			c.Close()
			recovered.Close()
			return vs
		}
		current = recovered
		i-- // retry the interrupted op against the recovered server
	}
	c.Close()
	<-prevDone

	if !crashed {
		return fail(fmt.Errorf("armed crash inside a %d-byte WAL never tripped", walBytes))
	}

	// Wire and ledger accounting span both server incarnations: they
	// shared one ledger, and their per-instance byte counters sum.
	first, second := srv.Stats(), current.Stats()
	received := first.BytesReceived + second.BytesReceived
	sent := first.BytesSent + second.BytesSent
	vs := tr.Check(toServerFiles(current.Snapshot("alice")), invariant.Wire{
		ClientSent:     sched.Stats().BytesWritten,
		ServerReceived: received,
		MaxLost:        0,
	})
	clientIn, clientOut := c.WireTotals()
	vs = append(vs, invariant.CheckLedger(clientIn+clientOut, clientLed.Snapshot())...)
	vs = append(vs, invariant.CheckLedger(received+sent, serverLed.Snapshot())...)
	current.Close()
	return vs
}

// TestCrashRecoveryInvariants is the crash-recovery acceptance
// property: 120 seeded kill -9 points × seeded edit sequences, each
// crash recovered by reopening the state directory mid-run. -short
// keeps a bounded band for CI smoke.
func TestCrashRecoveryInvariants(t *testing.T) {
	seeds := uint64(120)
	if testing.Short() {
		seeds = 30
	}
	for seed := uint64(0); seed < seeds; seed++ {
		ops := invariant.GenOps(seed, 5+int(seed%6))
		if vs := runCrashPipe(seed, ops); len(vs) > 0 {
			reportShrunk(t, seed, ops, vs, runCrashPipe)
			return
		}
	}
}
