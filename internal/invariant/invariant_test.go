package invariant

import (
	"strings"
	"testing"
)

func content(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// hasViolation reports whether any violation of the given invariant
// mentions substr.
func hasViolation(vs []Violation, invariant, substr string) bool {
	for _, v := range vs {
		if v.Invariant == invariant && strings.Contains(v.Detail, substr) {
			return true
		}
	}
	return false
}

func TestCheckPassesOnConvergedState(t *testing.T) {
	tr := NewTracker()
	tr.RecordUpload("a", content('a', 100), 1)
	tr.RecordUpload("a", content('b', 120), 2)
	tr.RecordUpload("b", content('c', 50), 1)
	tr.RecordDownload("a", content('b', 120))
	tr.RecordDelete("b")

	server := map[string]ServerFile{
		"a": {Data: content('b', 120), Version: 2, History: 2},
		"b": {Data: content('c', 50), Version: 1, Deleted: true, History: 1},
	}
	w := Wire{ClientSent: 400, ServerReceived: 400, MaxLost: 0}
	if vs := tr.Check(server, w); len(vs) != 0 {
		t.Fatalf("converged state reported violations: %v", vs)
	}
	if got := tr.FreshBytes(); got != 270 {
		t.Fatalf("FreshBytes = %d, want 270", got)
	}
}

func TestCheckFlagsContentDivergence(t *testing.T) {
	tr := NewTracker()
	tr.RecordUpload("a", content('a', 100), 1)
	server := map[string]ServerFile{"a": {Data: content('x', 100), Version: 1}}
	vs := tr.Check(server, Wire{})
	if !hasViolation(vs, "convergence", `"a"`) {
		t.Fatalf("divergent content not flagged: %v", vs)
	}
}

func TestCheckFlagsMissingAndResurrectedFiles(t *testing.T) {
	tr := NewTracker()
	tr.RecordUpload("gone", content('a', 10), 1)
	tr.RecordUpload("zombie", content('b', 10), 1)
	tr.RecordDelete("zombie")
	server := map[string]ServerFile{
		"zombie": {Data: content('b', 10), Version: 1}, // still live
	}
	vs := tr.Check(server, Wire{})
	if !hasViolation(vs, "convergence", `"gone"`) {
		t.Fatalf("missing file not flagged: %v", vs)
	}
	if !hasViolation(vs, "convergence", `"zombie"`) {
		t.Fatalf("resurrected file not flagged: %v", vs)
	}
}

func TestCheckFlagsVersionProblems(t *testing.T) {
	tr := NewTracker()
	tr.RecordUpload("a", content('a', 10), 5)
	tr.RecordUpload("a", content('b', 10), 5) // not strictly increasing
	if vs := tr.Check(map[string]ServerFile{"a": {Data: content('b', 10), Version: 5}}, Wire{}); !hasViolation(vs, "versions", "not above previous") {
		t.Fatalf("stuck commit version not flagged: %v", vs)
	}

	tr = NewTracker()
	tr.RecordUpload("a", content('a', 10), 7)
	server := map[string]ServerFile{"a": {Data: content('a', 10), Version: 3}}
	if vs := tr.Check(server, Wire{}); !hasViolation(vs, "versions", "behind last acknowledged") {
		t.Fatalf("server version regression not flagged: %v", vs)
	}

	tr = NewTracker()
	tr.RecordUpload("a", content('a', 10), 1)
	tr.RecordUpload("a", content('b', 10), 2)
	server = map[string]ServerFile{"a": {Data: content('b', 10), Version: 2, History: 1}}
	if vs := tr.Check(server, Wire{}); !hasViolation(vs, "versions", "stored 1 versions") {
		t.Fatalf("shallow history not flagged: %v", vs)
	}
}

func TestRecordDownloadMismatch(t *testing.T) {
	tr := NewTracker()
	tr.RecordUpload("a", content('a', 10), 1)
	tr.RecordDownload("a", content('x', 10))
	tr.RecordDownload("ghost", content('y', 3))
	vs := tr.Check(map[string]ServerFile{"a": {Data: content('a', 10), Version: 1}}, Wire{})
	if !hasViolation(vs, "convergence", "downloaded") {
		t.Fatalf("download mismatch not flagged: %v", vs)
	}
	if !hasViolation(vs, "convergence", `"ghost"`) {
		t.Fatalf("download of nonexistent file not flagged: %v", vs)
	}
}

func TestCheckFlagsTUEFloor(t *testing.T) {
	tr := NewTracker()
	tr.RecordUpload("a", content('a', 1000), 1)
	server := map[string]ServerFile{"a": {Data: content('a', 1000), Version: 1}}
	vs := tr.Check(server, Wire{ClientSent: 500, ServerReceived: 500, MaxLost: 0})
	if !hasViolation(vs, "tue-floor", "TUE") {
		t.Fatalf("TUE < 1 not flagged: %v", vs)
	}

	// Compression legitimately shrinks traffic below the update size.
	tr.Compressed = true
	if vs := tr.Check(server, Wire{ClientSent: 500, ServerReceived: 500, MaxLost: 0}); len(vs) != 0 {
		t.Fatalf("compressed config still flagged the floor: %v", vs)
	}

	// Re-uploading already-seen content is not fresh; dedup may skip it.
	tr = NewTracker()
	tr.RecordUpload("a", content('a', 1000), 1)
	tr.RecordUpload("b", content('a', 1000), 1) // same bytes, other name
	if got := tr.FreshBytes(); got != 1000 {
		t.Fatalf("FreshBytes = %d, want 1000 (duplicate content must not count)", got)
	}
}

func TestCheckFlagsWireImbalance(t *testing.T) {
	tr := NewTracker()
	server := map[string]ServerFile{}

	vs := tr.Check(server, Wire{ClientSent: 100, ServerReceived: 200, MaxLost: -1})
	if !hasViolation(vs, "wire-balance", "only sent") {
		t.Fatalf("server receiving phantom bytes not flagged: %v", vs)
	}

	vs = tr.Check(server, Wire{ClientSent: 300, ServerReceived: 200, MaxLost: 0})
	if !hasViolation(vs, "wire-balance", "unaccounted") {
		t.Fatalf("lost bytes under exact balance not flagged: %v", vs)
	}

	// Sign-check mode tolerates kernel-buffered loss.
	if vs := tr.Check(server, Wire{ClientSent: 300, ServerReceived: 200, MaxLost: -1}); len(vs) != 0 {
		t.Fatalf("sign-check mode flagged buffered loss: %v", vs)
	}

	// The zero Wire disables wire checks entirely.
	tr.RecordUpload("a", content('a', 1000), 1)
	if vs := tr.Check(map[string]ServerFile{"a": {Data: content('a', 1000), Version: 1}}, (Wire{})); len(vs) != 0 {
		t.Fatalf("zero wire value ran wire checks: %v", vs)
	}
}

func TestGenOpsDeterministicAndValid(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a := GenOps(seed, 12)
		b := GenOps(seed, 12)
		if len(a) != 12 {
			t.Fatalf("seed %d: got %d ops, want 12", seed, len(a))
		}
		live := make(map[string]bool)
		for i, op := range a {
			if op != b[i] {
				t.Fatalf("seed %d: op %d differs between runs: %v vs %v", seed, i, op, b[i])
			}
			switch op.Kind {
			case OpPut:
				if op.Size < 1<<10 || op.Size > 25<<10 {
					t.Fatalf("seed %d: put size %d outside [1KiB, 25KiB]", seed, op.Size)
				}
				live[op.Name] = true
			case OpGet:
				if !live[op.Name] {
					t.Fatalf("seed %d: get of dead file %q at op %d", seed, op.Name, i)
				}
			case OpDelete:
				if !live[op.Name] {
					t.Fatalf("seed %d: delete of dead file %q at op %d", seed, op.Name, i)
				}
				live[op.Name] = false
			}
		}
	}
	if a, b := GenOps(1, 12), GenOps(2, 12); a[0] == b[0] && a[1] == b[1] && a[2] == b[2] {
		t.Fatalf("adjacent seeds generated identical op prefixes: %v", a[:3])
	}
}

func TestGenOpsContentSeedsAreNovel(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := uint64(0); seed < 20; seed++ {
		for _, op := range GenOps(seed, 10) {
			if op.Kind != OpPut {
				continue
			}
			if seen[op.ContentSeed] {
				t.Fatalf("content seed %d reused", op.ContentSeed)
			}
			seen[op.ContentSeed] = true
		}
	}
}

func TestShrinkPrefix(t *testing.T) {
	if got := ShrinkPrefix(10, func(k int) bool { return k >= 4 }); got != 4 {
		t.Fatalf("ShrinkPrefix = %d, want 4", got)
	}
	// Failure only at full length.
	if got := ShrinkPrefix(10, func(k int) bool { return k >= 10 }); got != 10 {
		t.Fatalf("ShrinkPrefix = %d, want 10", got)
	}
	// Pathological fails that never returns true still terminates at n.
	if got := ShrinkPrefix(3, func(int) bool { return false }); got != 3 {
		t.Fatalf("ShrinkPrefix = %d, want 3", got)
	}
}
