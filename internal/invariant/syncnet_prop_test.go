package invariant_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"cloudsync/internal/content"
	"cloudsync/internal/invariant"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/syncnet"
)

// planForSeed derives the fault schedule for one property run. Every
// fifth seed runs fault-free (the scheduler still counts bytes), the
// rest cut connections after a seeded 2–30 KB budget, up to 3 times —
// always fewer than the retry policy's attempts, so a run can never be
// starved by its own schedule.
func planForSeed(seed uint64) syncnet.FaultPlan {
	if seed%5 == 0 {
		return syncnet.FaultPlan{}
	}
	return syncnet.FaultPlan{
		Seed:          seed*0x9e3779b9 + 1,
		MeanDropBytes: 4096 + int64(seed%7)*4096,
		MaxDrops:      1 + int(seed%3),
	}
}

func retryForSeed(seed uint64, sleep func(time.Duration)) syncnet.ClientOption {
	return syncnet.WithRetry(syncnet.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        seed + 1,
		Sleep:       sleep,
	})
}

// applyOp drives one generated operation through a live client,
// recording the outcome in the tracker.
func applyOp(c *syncnet.Client, tr *invariant.Tracker, op invariant.Op) error {
	switch op.Kind {
	case invariant.OpPut:
		data := content.Random(op.Size, op.ContentSeed).Bytes()
		stats, err := c.Upload(op.Name, data)
		if err != nil {
			return fmt.Errorf("%v: %w", op, err)
		}
		tr.RecordUpload(op.Name, data, stats.Version)
	case invariant.OpGet:
		data, err := c.Download(op.Name)
		if err != nil {
			return fmt.Errorf("%v: %w", op, err)
		}
		tr.RecordDownload(op.Name, data)
	case invariant.OpDelete:
		if err := c.Delete(op.Name); err != nil {
			return fmt.Errorf("%v: %w", op, err)
		}
		tr.RecordDelete(op.Name)
	default:
		return fmt.Errorf("unknown op %v", op)
	}
	return nil
}

func toServerFiles(snap map[string]syncnet.FileState) map[string]invariant.ServerFile {
	out := make(map[string]invariant.ServerFile, len(snap))
	for name, f := range snap {
		out[name] = invariant.ServerFile{
			Data: f.Data, Version: f.Version, Deleted: f.Deleted, History: f.History,
		}
	}
	return out
}

// runPipe replays ops against a fresh server over net.Pipe under the
// seed's fault schedule and returns every invariant violation (op
// errors included as synthetic violations, so shrinking sees them).
// net.Pipe is fully synchronous — a Write returns only once the peer
// consumed the bytes — so the wire balance is checked exactly.
func runPipe(seed uint64, ops []invariant.Op) []invariant.Violation {
	clientLed := &ledger.Ledger{}
	serverLed := &ledger.Ledger{}
	srv := syncnet.NewServer(syncnet.ServerConfig{Ledger: serverLed})
	sched := syncnet.NewFaultScheduler(planForSeed(seed))

	// The dialer hands out pipe connections and, before redialing,
	// waits for the previous connection's handler to unwind — by then
	// any interrupted upload has been stashed, so a ResumeQuery on the
	// new connection deterministically sees it.
	var prevDone chan struct{}
	dial := func() (net.Conn, error) {
		if prevDone != nil {
			<-prevDone
		}
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		prevDone = done
		go func() {
			defer close(done)
			srv.HandleConn(serverEnd)
		}()
		return sched.Wrap(clientEnd), nil
	}

	fail := func(err error) []invariant.Violation {
		return []invariant.Violation{{Invariant: "driver", Detail: err.Error()}}
	}
	conn, err := dial()
	if err != nil {
		return fail(err)
	}
	c, err := syncnet.NewClient(conn, "alice", "prop",
		syncnet.WithDialer(dial), syncnet.WithLedger(clientLed),
		retryForSeed(seed, func(time.Duration) {}))
	if err != nil {
		return fail(err)
	}

	tr := invariant.NewTracker()
	for _, op := range ops {
		if err := applyOp(c, tr, op); err != nil {
			c.Close()
			<-prevDone
			return fail(err)
		}
	}
	c.Close()
	<-prevDone // the last handler has drained its reads and stashed

	stats := srv.Stats()
	vs := tr.Check(toServerFiles(srv.Snapshot("alice")), invariant.Wire{
		ClientSent:     sched.Stats().BytesWritten,
		ServerReceived: stats.BytesReceived,
		MaxLost:        0,
	})
	// Exact per-byte attribution: each side's ledger must sum to exactly
	// the bytes that side metered, fault cuts and all.
	clientIn, clientOut := c.WireTotals()
	vs = append(vs, invariant.CheckLedger(clientIn+clientOut, clientLed.Snapshot())...)
	vs = append(vs, invariant.CheckLedger(stats.BytesReceived+stats.BytesSent, serverLed.Snapshot())...)
	return vs
}

// reportShrunk re-runs a failing scenario on ever-shorter prefixes and
// fails the test with the minimal reproduction.
func reportShrunk(t *testing.T, seed uint64, ops []invariant.Op,
	vs []invariant.Violation, run func(uint64, []invariant.Op) []invariant.Violation) {
	t.Helper()
	k := invariant.ShrinkPrefix(len(ops), func(k int) bool {
		return len(run(seed, ops[:k])) > 0
	})
	t.Errorf("seed %d: %d violation(s): %v\nminimal failing prefix (%d of %d ops): %v",
		seed, len(vs), vs, k, len(ops), ops[:k])
}

// TestSyncnetPipeInvariants is the acceptance property: 200 seeded
// fault schedules × seeded edit sequences over a synchronous pipe
// transport, with exact wire-balance accounting.
func TestSyncnetPipeInvariants(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		ops := invariant.GenOps(seed, 5+int(seed%6))
		if vs := runPipe(seed, ops); len(vs) > 0 {
			reportShrunk(t, seed, ops, vs, runPipe)
			return
		}
	}
}

// runTCP replays ops against a server on a real loopback listener.
// The kernel may buffer bytes a dying session never read, so the wire
// balance degrades to the sign check (received ≤ sent).
func runTCP(seed uint64, ops []invariant.Op) []invariant.Violation {
	fail := func(err error) []invariant.Violation {
		return []invariant.Violation{{Invariant: "driver", Detail: err.Error()}}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	clientLed := &ledger.Ledger{}
	serverLed := &ledger.Ledger{}
	srv := syncnet.NewServer(syncnet.ServerConfig{Ledger: serverLed})
	go srv.Serve(l)
	defer srv.Close()

	sched := syncnet.NewFaultScheduler(planForSeed(seed))
	addr := l.Addr().String()
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return sched.Wrap(conn), nil
	}

	conn, err := dial()
	if err != nil {
		return fail(err)
	}
	c, err := syncnet.NewClient(conn, "alice", "prop",
		syncnet.WithDialer(dial), syncnet.WithLedger(clientLed), retryForSeed(seed, nil))
	if err != nil {
		return fail(err)
	}

	tr := invariant.NewTracker()
	for _, op := range ops {
		if err := applyOp(c, tr, op); err != nil {
			c.Close()
			return fail(err)
		}
	}
	c.Close()
	srv.Close() // waits for every handler, so the counters are final

	stats := srv.Stats()
	vs := tr.Check(toServerFiles(srv.Snapshot("alice")), invariant.Wire{
		ClientSent:     sched.Stats().BytesWritten,
		ServerReceived: stats.BytesReceived,
		MaxLost:        -1,
	})
	// The wire balance degrades to a sign check on TCP, but the ledger
	// contract stays exact: each side charges against its own metered
	// bytes, and kernel buffering cannot desynchronize a side from itself.
	clientIn, clientOut := c.WireTotals()
	vs = append(vs, invariant.CheckLedger(clientIn+clientOut, clientLed.Snapshot())...)
	vs = append(vs, invariant.CheckLedger(stats.BytesReceived+stats.BytesSent, serverLed.Snapshot())...)
	return vs
}

// TestSyncnetTCPInvariants runs a smaller band of seeds over real TCP
// loopback connections — same invariants, kernel buffering and all.
func TestSyncnetTCPInvariants(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		ops := invariant.GenOps(seed, 5+int(seed%6))
		if vs := runTCP(seed, ops); len(vs) > 0 {
			reportShrunk(t, seed, ops, vs, runTCP)
			return
		}
	}
}
