// Package invariant is a reusable correctness harness for the sync
// path. A Tracker records the operations a client believes succeeded —
// uploads, downloads, deletions — and Check then compares that
// expectation against a snapshot of the server's state and the wire
// counters, after an arbitrary fault schedule has battered the
// connection in between.
//
// The harness asserts four invariants that must survive any fault
// schedule:
//
//  1. Convergence: every file the client committed exists server-side
//     with byte-identical (MD5-equal) content, and every file the
//     client deleted is gone (or fake-deleted).
//  2. Monotone versions: the server-side version of a file never runs
//     backwards, and each committed update strictly advances it.
//  3. TUE floor: for fresh (never-before-seen) uncompressed content,
//     the client must put at least as many bytes on the wire as the
//     content it updated — TUE ≥ 1, the paper's lower bound for a sync
//     protocol without compression to hide behind. Retransmissions and
//     retries can only push TUE up, never below 1.
//  4. Wire balance: the server cannot receive more client→server bytes
//     than the client sent, and (on a lossless transport) the two
//     counters must agree exactly.
//
// The package has no dependencies on the simulator or the live syncnet
// stack; drivers adapt either side into ServerFile / Wire values.
package invariant

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"sort"

	"cloudsync/internal/obs/ledger"
)

// Violation is one broken invariant.
type Violation struct {
	// Invariant names the broken property: "convergence", "versions",
	// "tue-floor", or "wire-balance".
	Invariant string
	// Detail is a human-readable description of the breakage.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// ServerFile is one file's server-side state as seen by a driver's
// snapshot. History is the number of versions the server ever stored
// for the name; 0 means the driver cannot report it and disables the
// history check. ID is the server-assigned file identity; 0 means the
// driver cannot report it and disables identity checks.
type ServerFile struct {
	ID      uint64
	Data    []byte
	Version uint64
	Deleted bool
	History int
}

// Wire carries the byte counters for the client→server direction.
// The zero value means "no wire data recorded" and disables the wire
// checks (balance and TUE floor).
type Wire struct {
	// ClientSent is the bytes the client actually put on the wire
	// (after any fault truncation), across every attempt.
	ClientSent int64
	// ServerReceived is the bytes the server read off its client
	// connections.
	ServerReceived int64
	// MaxLost bounds ClientSent − ServerReceived: bytes legitimately in
	// flight when a connection was cut. 0 demands exact balance (right
	// for synchronous transports like net.Pipe); −1 keeps only the sign
	// check ServerReceived ≤ ClientSent (right for real TCP, where the
	// kernel may buffer bytes a dying session never read).
	MaxLost int64
}

func (w Wire) zero() bool {
	return w.ClientSent == 0 && w.ServerReceived == 0 && w.MaxLost == 0
}

type trackedFile struct {
	data     []byte
	version  uint64
	versions int // successful commits observed for this name
	deleted  bool
}

// Tracker accumulates the client-side expectation while a driver
// applies operations. It is not safe for concurrent use; drive it from
// the goroutine that owns the client.
type Tracker struct {
	// Compressed marks a configuration where content is compressed on
	// the wire, which can legitimately push traffic below the update
	// size; it disables the TUE-floor check.
	Compressed bool

	files      map[string]*trackedFile
	seen       map[[md5.Size]byte]bool
	freshBytes int64
	violations []Violation
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		files: make(map[string]*trackedFile),
		seen:  make(map[[md5.Size]byte]bool),
	}
}

func (t *Tracker) violatef(invariant, format string, args ...any) {
	t.violations = append(t.violations, Violation{
		Invariant: invariant, Detail: fmt.Sprintf(format, args...),
	})
}

// RecordUpload notes a committed upload: name now holds data at the
// given server version. Content the tracker has never seen before
// counts toward the TUE floor — deduplication cannot save bytes on
// genuinely novel content, so the wire must carry at least that much.
func (t *Tracker) RecordUpload(name string, data []byte, version uint64) {
	f := t.files[name]
	if f == nil {
		f = &trackedFile{}
		t.files[name] = f
	} else if !f.deleted && version <= f.version {
		t.violatef("versions", "%q: commit acknowledged version %d, not above previous %d",
			name, version, f.version)
	}
	f.data = append([]byte(nil), data...)
	f.version = version
	f.versions++
	f.deleted = false

	sum := md5.Sum(data)
	if !t.seen[sum] {
		t.seen[sum] = true
		t.freshBytes += int64(len(data))
	}
}

// RecordDelete notes a successful deletion of name.
func (t *Tracker) RecordDelete(name string) {
	f := t.files[name]
	if f == nil {
		t.violatef("convergence", "%q: deletion succeeded for a file never uploaded", name)
		return
	}
	f.deleted = true
	f.data = nil
}

// RecordDownload checks a download against the tracked expectation —
// the read-your-writes half of convergence.
func (t *Tracker) RecordDownload(name string, data []byte) {
	f := t.files[name]
	switch {
	case f == nil || f.deleted:
		t.violatef("convergence", "%q: download succeeded for a file that should not exist", name)
	case !bytes.Equal(f.data, data):
		t.violatef("convergence", "%q: downloaded %d bytes (md5 %x), expected %d bytes (md5 %x)",
			name, len(data), md5.Sum(data), len(f.data), md5.Sum(f.data))
	}
}

// FreshBytes is the novel-content byte volume recorded so far — the
// denominator of the TUE floor.
func (t *Tracker) FreshBytes() int64 { return t.freshBytes }

// Check compares the tracked expectation against a server snapshot and
// the wire counters, returning every violation found (record-time
// violations included). Server files the tracker never touched are
// ignored: the tracker may deliberately hold a partial view.
func (t *Tracker) Check(server map[string]ServerFile, w Wire) []Violation {
	out := append([]Violation(nil), t.violations...)
	report := func(invariant, format string, args ...any) {
		out = append(out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	names := make([]string, 0, len(t.files))
	for name := range t.files {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := t.files[name]
		sf, ok := server[name]
		if f.deleted {
			// Fake deletion may keep the entry with a Deleted flag, or
			// the driver may omit deleted entries entirely.
			if ok && !sf.Deleted {
				report("convergence", "%q: deleted by the client but still live server-side (v%d, %d bytes)",
					name, sf.Version, len(sf.Data))
			}
			if ok && sf.Version < f.version {
				report("versions", "%q: server version %d ran backwards past committed %d",
					name, sf.Version, f.version)
			}
			continue
		}
		if !ok || sf.Deleted {
			report("convergence", "%q: committed at version %d but missing server-side", name, f.version)
			continue
		}
		if !bytes.Equal(sf.Data, f.data) {
			report("convergence", "%q: server holds %d bytes (md5 %x), client committed %d bytes (md5 %x)",
				name, len(sf.Data), md5.Sum(sf.Data), len(f.data), md5.Sum(f.data))
		}
		if sf.Version < f.version {
			report("versions", "%q: server version %d behind last acknowledged commit %d",
				name, sf.Version, f.version)
		}
		if sf.History > 0 && sf.History < f.versions {
			report("versions", "%q: server stored %d versions, client committed %d",
				name, sf.History, f.versions)
		}
	}

	if !w.zero() {
		if !t.Compressed && t.freshBytes > 0 && w.ClientSent < t.freshBytes {
			report("tue-floor", "client sent %d bytes for %d bytes of fresh uncompressed content (TUE %.3f < 1)",
				w.ClientSent, t.freshBytes, float64(w.ClientSent)/float64(t.freshBytes))
		}
		if w.ServerReceived > w.ClientSent {
			report("wire-balance", "server received %d bytes but the client only sent %d",
				w.ServerReceived, w.ClientSent)
		}
		if lost := w.ClientSent - w.ServerReceived; w.MaxLost >= 0 && lost > w.MaxLost {
			report("wire-balance", "%d client bytes unaccounted for (sent %d, received %d, allowed loss %d)",
				lost, w.ClientSent, w.ServerReceived, w.MaxLost)
		}
	}
	return out
}

// CheckRecovery verifies the crash-recovery contract of a durable
// store: after a crash at ANY byte of the state log, reopening must
// reconstruct exactly the state as of the last acknowledged operation
// — per-file content (MD5-equal), version, deletion flag, history, and
// file identity all unchanged — with nothing resurrected and nothing
// invented. acked is the snapshot taken after the last operation the
// client saw acknowledged before the crash; recovered is the reopened
// store's snapshot. A mutation that was in flight when the crash hit
// must be entirely absent: it was never acknowledged, so recovery must
// neither surface it as a new name nor as an advanced version.
func CheckRecovery(acked, recovered map[string]ServerFile) []Violation {
	var out []Violation
	report := func(format string, args ...any) {
		out = append(out, Violation{Invariant: "recovery", Detail: fmt.Sprintf(format, args...)})
	}

	names := make([]string, 0, len(acked))
	for name := range acked {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := acked[name]
		r, ok := recovered[name]
		if !ok {
			report("%q: acknowledged at version %d but lost in recovery", name, a.Version)
			continue
		}
		if !bytes.Equal(a.Data, r.Data) {
			report("%q: recovered %d bytes (md5 %x), acknowledged %d bytes (md5 %x)",
				name, len(r.Data), md5.Sum(r.Data), len(a.Data), md5.Sum(a.Data))
		}
		if r.Version != a.Version {
			report("%q: recovered at version %d, acknowledged %d", name, r.Version, a.Version)
		}
		if r.Deleted != a.Deleted {
			report("%q: recovered deleted=%v, acknowledged deleted=%v", name, r.Deleted, a.Deleted)
		}
		if a.History > 0 && r.History != a.History {
			report("%q: recovered %d stored versions, acknowledged %d", name, r.History, a.History)
		}
		if a.ID != 0 && r.ID != a.ID {
			report("%q: file identity changed across recovery: %d became %d", name, a.ID, r.ID)
		}
	}
	for name, r := range recovered {
		if _, ok := acked[name]; !ok {
			report("%q: recovery invented a file never acknowledged (v%d, %d bytes)",
				name, r.Version, len(r.Data))
		}
	}
	return out
}

// CheckLedger verifies the traffic-attribution ledger's core accounting
// contract: the sum over every cause equals the observed total wire
// byte count exactly, and no cause ever went negative. It is transport
// agnostic — callers pass whichever wire total their transport can
// measure exactly (both directions on net.Pipe, the fault scheduler's
// written count, a capture's TotalBytes, ...).
func CheckLedger(total int64, snap ledger.Snapshot) []Violation {
	var out []Violation
	for _, c := range ledger.Causes() {
		if n := snap.Get(c); n < 0 {
			out = append(out, Violation{"ledger-balance",
				fmt.Sprintf("cause %s is negative: %d", c, n)})
		}
	}
	if got := snap.Total(); got != total {
		out = append(out, Violation{"ledger-balance",
			fmt.Sprintf("causes sum to %d bytes but the wire carried %d (delta %+d)",
				got, total, got-total)})
	}
	return out
}
