package invariant

import "fmt"

// OpKind is the kind of one generated client operation.
type OpKind uint8

const (
	// OpPut uploads fresh content under Name.
	OpPut OpKind = iota
	// OpGet downloads Name and checks it against the expectation.
	OpGet
	// OpDelete removes Name.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one abstract client operation. Drivers interpret it against
// their transport: Size and ContentSeed parameterize the deterministic
// content of a put and are zero for other kinds.
type Op struct {
	Kind        OpKind
	Name        string
	Size        int64
	ContentSeed int64
}

func (o Op) String() string {
	if o.Kind == OpPut {
		return fmt.Sprintf("put %s (%d B, seed %d)", o.Name, o.Size, o.ContentSeed)
	}
	return fmt.Sprintf("%v %s", o.Kind, o.Name)
}

// opNames is the small name pool the generator draws from, kept small
// so operations collide on files and exercise updates and recreations.
var opNames = [4]string{"alpha.bin", "beta.bin", "gamma.bin", "delta.bin"}

// GenOps derives a deterministic operation sequence from seed. Gets
// and deletes are only emitted for names that are live at that point,
// so every sequence is valid to replay from an empty state; puts carry
// a fresh content seed each time, so no two puts move identical bytes.
func GenOps(seed uint64, n int) []Op {
	rng := newOpRNG(seed)
	live := make(map[string]bool)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		name := opNames[rng.intn(len(opNames))]
		roll := rng.intn(10)
		switch {
		case roll >= 8 && live[name]:
			ops = append(ops, Op{Kind: OpDelete, Name: name})
			live[name] = false
		case roll >= 6 && live[name]:
			ops = append(ops, Op{Kind: OpGet, Name: name})
		default:
			size := 1<<10 + int64(rng.intn(24<<10))
			ops = append(ops, Op{
				Kind: OpPut, Name: name, Size: size,
				// Content seeds are tied to the sequence seed and the op
				// index, so every put in every sequence carries novel
				// bytes. The 4096-word spacing matters: content.Random
				// streams from nearby seeds are shifted windows of one
				// global splitmix orbit (seed Δ ⇒ 8·Δ-byte shift), and a
				// rolling-hash delta sync will find that overlap — this
				// harness found exactly that with adjacent seeds. Keeping
				// 8·4096 B of shift between any two puts of a run, above
				// the 25 KiB maximum file size, makes contents genuinely
				// independent, so the TUE floor is a sound invariant.
				ContentSeed: int64(seed)*1_000_000 + int64(i)*4096,
			})
			live[name] = true
		}
	}
	return ops
}

// ShrinkPrefix minimizes a failing operation sequence: given that the
// full sequence of n ops fails, it returns the length of the shortest
// failing prefix. fails must replay the scenario from scratch for the
// given prefix length; determinism of the replay is the caller's
// responsibility (seeded content, seeded fault schedules).
func ShrinkPrefix(n int, fails func(prefix int) bool) int {
	for k := 1; k < n; k++ {
		if fails(k) {
			return k
		}
	}
	return n
}

// opRNG is a tiny xorshift64 generator with a splitmix64-finalized
// seed, so consecutive small seeds still produce unrelated streams.
// It is deliberately private to the harness: op schedules must never
// depend on a global source that other packages could perturb.
type opRNG struct{ s uint64 }

func newOpRNG(seed uint64) *opRNG {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &opRNG{s: z}
}

func (r *opRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *opRNG) intn(n int) int { return int(r.next() % uint64(n)) }
