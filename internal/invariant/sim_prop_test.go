package invariant_test

import (
	"fmt"
	"testing"
	"time"

	"cloudsync/internal/chunker"
	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/deferpolicy"
	"cloudsync/internal/invariant"
	"cloudsync/internal/netem"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/service"
)

// faultyLinkForSeed degrades the Beijing vantage point with a seeded
// mix of exchange loss, connection drops, and stalls. Every fourth
// seed keeps the link clean, so the property also covers the fault-free
// baseline.
func faultyLinkForSeed(seed uint64) netem.Link {
	l := netem.Beijing()
	if seed%4 == 3 {
		return l
	}
	p := &netem.FaultProfile{
		Seed:     seed + 0xFA00,
		LossProb: float64(seed%30) / 100,
	}
	if seed%3 == 1 {
		p.MeanDropInterval = 20 * time.Second
	}
	if seed%2 == 0 {
		p.MeanStallInterval = 30 * time.Second
		p.StallDuration = 2 * time.Second
	}
	l.Faults = p
	return l
}

// runSim replays ops on the simulated sync path — Google Drive's PC
// client, which syncs full files with no compression and no dedup, so
// the TUE floor applies — and checks the invariants against the cloud's
// file table. It returns the violations plus the up-traffic total (for
// the determinism check). Gets are skipped: the simulated client is
// upload-driven; downloads are covered by the live syncnet drivers.
func runSim(seed uint64, ops []invariant.Op) ([]invariant.Violation, int64) {
	s := service.NewSetup(service.GoogleDrive, client.PC, service.Options{
		Link:  faultyLinkForSeed(seed),
		Defer: deferpolicy.None{},
	})
	led := &ledger.Ledger{}
	s.Capture.SetLedger(led)
	tr := invariant.NewTracker()
	server := make(map[string]invariant.ServerFile)

	fail := func(err error) ([]invariant.Violation, int64) {
		return []invariant.Violation{{Invariant: "driver", Detail: err.Error()}}, s.Capture.UpBytes()
	}
	for _, op := range ops {
		switch op.Kind {
		case invariant.OpPut:
			blob := content.Random(op.Size, op.ContentSeed)
			var err error
			if _, ok := s.FS.File(op.Name); ok {
				err = s.FS.Write(op.Name, blob, []chunker.Range{{Off: 0, Len: op.Size}})
			} else {
				err = s.FS.Create(op.Name, blob)
			}
			if err != nil {
				return fail(err)
			}
			s.Clock.Run()
			e, ok := s.Cloud.File("alice", op.Name)
			if !ok {
				return fail(fmt.Errorf("%v: not in the cloud after quiescence", op))
			}
			tr.RecordUpload(op.Name, blob.Bytes(), e.Version)
		case invariant.OpGet:
			continue
		case invariant.OpDelete:
			if err := s.FS.Delete(op.Name); err != nil {
				return fail(err)
			}
			s.Clock.Run()
			if _, ok := s.Cloud.File("alice", op.Name); ok {
				return fail(fmt.Errorf("%v: still live in the cloud after quiescence", op))
			}
			tr.RecordDelete(op.Name)
		}
	}
	s.Clock.Run()

	for _, name := range s.FS.Names() {
		e, ok := s.Cloud.File("alice", name)
		if !ok {
			continue // Check flags the miss via the tracked expectation
		}
		server[name] = invariant.ServerFile{Data: e.Blob.Bytes(), Version: e.Version}
	}
	up := s.Capture.UpBytes()
	// The capture has no independent receiver-side counter, so the
	// balance check is vacuous here; the TUE floor is the live one:
	// even with every retransmission charged, up-traffic must cover
	// the fresh content at least once.
	vs := tr.Check(server, invariant.Wire{ClientSent: up, ServerReceived: up, MaxLost: 0})
	// The attribution ledger must account for every simulated wire byte,
	// both directions, exactly.
	vs = append(vs, invariant.CheckLedger(s.Capture.TotalBytes(), led.Snapshot())...)
	return vs, up
}

// TestSimInvariants is the simulated half of the acceptance property:
// 200 seeded fault schedules × seeded edit sequences through the
// netem/client/cloud stack.
func TestSimInvariants(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		ops := invariant.GenOps(seed, 5+int(seed%6))
		vs, up := runSim(seed, ops)
		if len(vs) > 0 {
			reportShrunk(t, seed, ops, vs, func(seed uint64, ops []invariant.Op) []invariant.Violation {
				vs, _ := runSim(seed, ops)
				return vs
			})
			return
		}
		// Fault schedules are drawn from the profile's own seed, so a
		// replay of the same seed must cost byte-identical traffic.
		if seed%25 == 0 {
			if again, up2 := runSim(seed, ops); len(again) != 0 || up2 != up {
				t.Fatalf("seed %d: replay diverged (violations %v, up %d then %d)", seed, again, up, up2)
			}
		}
	}
}
