package delta

import (
	"crypto/md5"
	"fmt"
)

// Retained reference implementations: the straightforward forms of the
// optimized kernels, kept in the package proper so the differential
// harness can hold every release's Compute/weakSum/Apply to them on
// random inputs. They trade all the throughput tricks — the tag
// bitmap, the unrolled checksum, the literal arena — for being an
// obviously faithful transcription of the rsync scan.

// weakSumRef is the textbook two-accumulator checksum: b weights each
// byte by its distance from the window end.
func weakSumRef(data []byte) uint32 {
	var a, b uint32
	n := uint32(len(data))
	for i, ch := range data {
		a += uint32(ch)
		b += (n - uint32(i)) * uint32(ch)
	}
	return (a & 0xffff) | (b << 16)
}

// computeRef is the pre-bitmap Compute: a full weak-table probe on
// every scanned byte and per-op literal copies. Kept verbatim so delta
// equivalence (op-for-op, byte-for-byte) is checkable forever.
func computeRef(sig Signature, target []byte) Delta {
	bs := sig.BlockSize
	if bs <= 0 {
		panic(fmt.Sprintf("delta: signature with invalid block size %d", bs))
	}
	d := Delta{BlockSize: bs, TargetSize: int64(len(target))}

	wt, partial := buildWeakTable(sig.Blocks, bs)

	emitLiteral := func(data []byte) {
		if len(data) == 0 {
			return
		}
		d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: append([]byte(nil), data...)})
	}

	litStart := 0
	i := 0
	if len(target) >= bs && wt.count > 0 {
		w := weakSumRef(target[:bs])
		for {
			matched := -1
			if cand := wt.lookup(w); cand >= 0 {
				strong := md5.Sum(target[i : i+bs])
				for ; cand >= 0; cand = wt.next[cand] {
					if wt.blocks[cand].Strong == strong {
						matched = wt.blocks[cand].Index
						break
					}
				}
			}
			if matched >= 0 {
				emitLiteral(target[litStart:i])
				d.Ops = append(d.Ops, Op{Kind: OpCopy, Index: matched})
				i += bs
				litStart = i
				if i+bs > len(target) {
					break
				}
				w = weakSumRef(target[i : i+bs])
				continue
			}
			if i+bs >= len(target) {
				break
			}
			w = roll(w, target[i], target[i+bs], bs)
			i++
		}
	}

	rest := target[litStart:]
	if partial != nil && len(rest) >= partial.Size && partial.Size > 0 {
		tail := rest[len(rest)-partial.Size:]
		if weakSumRef(tail) == partial.Weak && md5.Sum(tail) == partial.Strong {
			emitLiteral(rest[:len(rest)-partial.Size])
			d.Ops = append(d.Ops, Op{Kind: OpCopy, Index: partial.Index})
			return d
		}
	}
	emitLiteral(rest)
	return d
}
