package delta

import (
	"testing"

	"cloudsync/internal/content"
)

// benchDelta builds a realistic delta: a 1 MB basis with scattered edits
// and an appended tail, producing a mix of copy runs and literal ops.
func benchDelta(b *testing.B) (Delta, Signature) {
	b.Helper()
	basis := content.Random(1<<20, 41).Bytes()
	target := append([]byte(nil), basis...)
	for off := 5_000; off < len(target); off += 90_000 {
		target[off] ^= 0xFF
	}
	target = append(target, content.Random(64<<10, 42).Bytes()...)
	sig := Sign(basis, DefaultBlockSize)
	return Compute(sig, target), sig
}

// The codec benchmarks pin the manual little-endian encode/decode paths.
// Before the rewrite, the reflection-driven binary.Write/binary.Read per
// field put Encode+Decode at thousands of allocs per delta; now Encode
// is a single sized buffer and Decode allocates only the ops slice and
// literal payloads.

func BenchmarkDeltaEncode(b *testing.B) {
	d, _ := benchDelta(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBytes = d.Encode()
	}
}

func BenchmarkDeltaDecode(b *testing.B) {
	d, _ := benchDelta(b)
	enc := d.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecodeDelta(enc)
		if err != nil {
			b.Fatal(err)
		}
		sinkDelta = got
	}
}

func BenchmarkSignatureEncode(b *testing.B) {
	_, sig := benchDelta(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkBytes = sig.Encode()
	}
}

func BenchmarkSignatureDecode(b *testing.B) {
	_, sig := benchDelta(b)
	enc := sig.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecodeSignature(enc)
		if err != nil {
			b.Fatal(err)
		}
		sinkSig = got
	}
}

var (
	sinkBytes []byte
	sinkDelta Delta
	sinkSig   Signature
)
