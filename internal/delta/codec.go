package delta

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format of an encoded delta:
//
//	magic "DLT1" (4 bytes)
//	blockSize  uint32
//	targetSize uint64
//	opCount    uint32
//	ops:
//	  0x01 <uint32 index>                copy
//	  0x02 <uint32 length> <bytes>       literal
//
// Signatures encode as:
//
//	magic "SIG1" (4 bytes)
//	blockSize uint32
//	fileSize  uint64
//	count     uint32
//	blocks: count × (weak uint32, strong 16 bytes)  — sizes are implied
//	by position (all full except a final short block derived from
//	fileSize).

const (
	deltaMagic = "DLT1"
	sigMagic   = "SIG1"
	opCopyTag  = 0x01
	opLitTag   = 0x02
)

// Encode serializes the delta for transmission.
func (d Delta) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(deltaMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(d.BlockSize))
	binary.Write(&buf, binary.LittleEndian, uint64(d.TargetSize))
	binary.Write(&buf, binary.LittleEndian, uint32(len(d.Ops)))
	for _, op := range d.Ops {
		switch op.Kind {
		case OpCopy:
			buf.WriteByte(opCopyTag)
			binary.Write(&buf, binary.LittleEndian, uint32(op.Index))
		case OpLiteral:
			buf.WriteByte(opLitTag)
			binary.Write(&buf, binary.LittleEndian, uint32(len(op.Data)))
			buf.Write(op.Data)
		default:
			panic(fmt.Sprintf("delta: encoding unknown op kind %d", op.Kind))
		}
	}
	return buf.Bytes()
}

// EncodedLiteralBytes reports how many literal data bytes an encoded
// delta carries, scanning the op stream without decoding or copying —
// the traffic-attribution ledger uses it to split a DeltaMsg body into
// delta_literal vs delta_copyref without paying a second decode.
func EncodedLiteralBytes(data []byte) (int64, error) {
	const header = 20 // magic + blockSize + targetSize + opCount
	if len(data) < header || string(data[:4]) != deltaMagic {
		return 0, fmt.Errorf("delta: bad magic in encoded delta")
	}
	n := binary.LittleEndian.Uint32(data[16:header])
	off := header
	var lit int64
	for i := uint32(0); i < n; i++ {
		if off >= len(data) {
			return 0, fmt.Errorf("delta: truncated at op %d", i)
		}
		tag := data[off]
		off++
		switch tag {
		case opCopyTag:
			off += 4
		case opLitTag:
			if off+4 > len(data) {
				return 0, fmt.Errorf("delta: truncated literal length at op %d", i)
			}
			l := int(binary.LittleEndian.Uint32(data[off : off+4]))
			off += 4 + l
			lit += int64(l)
		default:
			return 0, fmt.Errorf("delta: op %d has unknown tag %#x", i, tag)
		}
	}
	if off > len(data) {
		return 0, fmt.Errorf("delta: ops run past the encoding")
	}
	return lit, nil
}

// DecodeDelta parses an encoded delta.
func DecodeDelta(data []byte) (Delta, error) {
	r := bytes.NewReader(data)
	var d Delta
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != deltaMagic {
		return d, fmt.Errorf("delta: bad magic %q", magic)
	}
	var bs uint32
	var ts uint64
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &bs); err != nil {
		return d, fmt.Errorf("delta: reading block size: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &ts); err != nil {
		return d, fmt.Errorf("delta: reading target size: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return d, fmt.Errorf("delta: reading op count: %w", err)
	}
	if bs == 0 {
		return d, fmt.Errorf("delta: zero block size")
	}
	d.BlockSize = int(bs)
	d.TargetSize = int64(ts)
	for i := uint32(0); i < n; i++ {
		tag, err := r.ReadByte()
		if err != nil {
			return d, fmt.Errorf("delta: op %d: %w", i, err)
		}
		switch tag {
		case opCopyTag:
			var idx uint32
			if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
				return d, fmt.Errorf("delta: op %d index: %w", i, err)
			}
			d.Ops = append(d.Ops, Op{Kind: OpCopy, Index: int(idx)})
		case opLitTag:
			var length uint32
			if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
				return d, fmt.Errorf("delta: op %d length: %w", i, err)
			}
			if int(length) > r.Len() {
				return d, fmt.Errorf("delta: op %d literal of %d bytes exceeds %d remaining", i, length, r.Len())
			}
			lit := make([]byte, length)
			if _, err := io.ReadFull(r, lit); err != nil {
				return d, fmt.Errorf("delta: op %d literal: %w", i, err)
			}
			d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: lit})
		default:
			return d, fmt.Errorf("delta: op %d has unknown tag %#x", i, tag)
		}
	}
	if r.Len() != 0 {
		return d, fmt.Errorf("delta: %d trailing bytes", r.Len())
	}
	return d, nil
}

// Encode serializes the signature for transmission.
func (s Signature) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(sigMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(s.BlockSize))
	binary.Write(&buf, binary.LittleEndian, uint64(s.FileSize))
	binary.Write(&buf, binary.LittleEndian, uint32(len(s.Blocks)))
	for _, b := range s.Blocks {
		binary.Write(&buf, binary.LittleEndian, b.Weak)
		buf.Write(b.Strong[:])
	}
	return buf.Bytes()
}

// DecodeSignature parses an encoded signature, reconstructing block
// indices and sizes from the file size.
func DecodeSignature(data []byte) (Signature, error) {
	r := bytes.NewReader(data)
	var s Signature
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != sigMagic {
		return s, fmt.Errorf("delta: bad signature magic %q", magic)
	}
	var bs uint32
	var fs uint64
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &bs); err != nil {
		return s, fmt.Errorf("delta: reading block size: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &fs); err != nil {
		return s, fmt.Errorf("delta: reading file size: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return s, fmt.Errorf("delta: reading block count: %w", err)
	}
	if bs == 0 {
		return s, fmt.Errorf("delta: zero block size in signature")
	}
	s.BlockSize = int(bs)
	s.FileSize = int64(fs)
	want := (s.FileSize + int64(bs) - 1) / int64(bs)
	if int64(n) != want {
		return s, fmt.Errorf("delta: signature has %d blocks, file size implies %d", n, want)
	}
	for i := uint32(0); i < n; i++ {
		blk := BlockSig{Index: int(i), Size: s.BlockSize}
		if rem := s.FileSize - int64(i)*int64(bs); rem < int64(blk.Size) {
			blk.Size = int(rem)
		}
		if err := binary.Read(r, binary.LittleEndian, &blk.Weak); err != nil {
			return s, fmt.Errorf("delta: block %d weak: %w", i, err)
		}
		if _, err := io.ReadFull(r, blk.Strong[:]); err != nil {
			return s, fmt.Errorf("delta: block %d strong: %w", i, err)
		}
		s.Blocks = append(s.Blocks, blk)
	}
	if r.Len() != 0 {
		return s, fmt.Errorf("delta: %d trailing bytes after signature", r.Len())
	}
	return s, nil
}
