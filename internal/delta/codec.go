package delta

import (
	"encoding/binary"
	"fmt"
)

// Wire format of an encoded delta:
//
//	magic "DLT1" (4 bytes)
//	blockSize  uint32
//	targetSize uint64
//	opCount    uint32
//	ops:
//	  0x01 <uint32 index>                copy
//	  0x02 <uint32 length> <bytes>       literal
//
// Signatures encode as:
//
//	magic "SIG1" (4 bytes)
//	blockSize uint32
//	fileSize  uint64
//	count     uint32
//	blocks: count × (weak uint32, strong 16 bytes)  — sizes are implied
//	by position (all full except a final short block derived from
//	fileSize).
//
// Both codecs write little-endian fields by hand into one buffer sized
// up front, and parse with direct offset arithmetic: the reflection-
// driven binary.Write/binary.Read per field (and the bytes.Buffer
// growth behind it) used to dominate the codec's allocation profile.

const (
	deltaMagic  = "DLT1"
	sigMagic    = "SIG1"
	opCopyTag   = 0x01
	opLitTag    = 0x02
	deltaHeader = 20 // magic + blockSize + targetSize + opCount
	sigHeader   = 20 // magic + blockSize + fileSize + count
)

// Encode serializes the delta for transmission.
func (d Delta) Encode() []byte {
	size := deltaHeader
	for _, op := range d.Ops {
		switch op.Kind {
		case OpCopy:
			size += 1 + 4
		case OpLiteral:
			size += 1 + 4 + len(op.Data)
		default:
			panic(fmt.Sprintf("delta: encoding unknown op kind %d", op.Kind))
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, deltaMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.BlockSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.TargetSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Ops)))
	for _, op := range d.Ops {
		if op.Kind == OpCopy {
			buf = append(buf, opCopyTag)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.Index))
		} else {
			buf = append(buf, opLitTag)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Data)))
			buf = append(buf, op.Data...)
		}
	}
	return buf
}

// EncodedLiteralBytes reports how many literal data bytes an encoded
// delta carries, scanning the op stream without decoding or copying —
// the traffic-attribution ledger uses it to split a DeltaMsg body into
// delta_literal vs delta_copyref without paying a second decode.
func EncodedLiteralBytes(data []byte) (int64, error) {
	if len(data) < deltaHeader || string(data[:4]) != deltaMagic {
		return 0, fmt.Errorf("delta: bad magic in encoded delta")
	}
	n := binary.LittleEndian.Uint32(data[16:deltaHeader])
	off := deltaHeader
	var lit int64
	for i := uint32(0); i < n; i++ {
		if off >= len(data) {
			return 0, fmt.Errorf("delta: truncated at op %d", i)
		}
		tag := data[off]
		off++
		switch tag {
		case opCopyTag:
			off += 4
		case opLitTag:
			if off+4 > len(data) {
				return 0, fmt.Errorf("delta: truncated literal length at op %d", i)
			}
			l := int(binary.LittleEndian.Uint32(data[off : off+4]))
			off += 4 + l
			lit += int64(l)
		default:
			return 0, fmt.Errorf("delta: op %d has unknown tag %#x", i, tag)
		}
	}
	if off > len(data) {
		return 0, fmt.Errorf("delta: ops run past the encoding")
	}
	return lit, nil
}

// DecodeDelta parses an encoded delta.
func DecodeDelta(data []byte) (Delta, error) {
	var d Delta
	if len(data) < deltaHeader || string(data[:4]) != deltaMagic {
		return d, fmt.Errorf("delta: bad magic %q", truncMagic(data))
	}
	bs := binary.LittleEndian.Uint32(data[4:8])
	ts := binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint32(data[16:deltaHeader])
	if bs == 0 {
		return d, fmt.Errorf("delta: zero block size")
	}
	d.BlockSize = int(bs)
	d.TargetSize = int64(ts)
	if n > 0 {
		d.Ops = make([]Op, 0, n)
	}
	off := deltaHeader
	for i := uint32(0); i < n; i++ {
		if off >= len(data) {
			return d, fmt.Errorf("delta: op %d: unexpected EOF", i)
		}
		tag := data[off]
		off++
		switch tag {
		case opCopyTag:
			if off+4 > len(data) {
				return d, fmt.Errorf("delta: op %d index: unexpected EOF", i)
			}
			idx := binary.LittleEndian.Uint32(data[off : off+4])
			off += 4
			d.Ops = append(d.Ops, Op{Kind: OpCopy, Index: int(idx)})
		case opLitTag:
			if off+4 > len(data) {
				return d, fmt.Errorf("delta: op %d length: unexpected EOF", i)
			}
			length := binary.LittleEndian.Uint32(data[off : off+4])
			off += 4
			if int(length) > len(data)-off {
				return d, fmt.Errorf("delta: op %d literal of %d bytes exceeds %d remaining",
					i, length, len(data)-off)
			}
			lit := make([]byte, length)
			copy(lit, data[off:off+int(length)])
			off += int(length)
			d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: lit})
		default:
			return d, fmt.Errorf("delta: op %d has unknown tag %#x", i, tag)
		}
	}
	if off != len(data) {
		return d, fmt.Errorf("delta: %d trailing bytes", len(data)-off)
	}
	return d, nil
}

// Encode serializes the signature for transmission.
func (s Signature) Encode() []byte {
	buf := make([]byte, 0, sigHeader+len(s.Blocks)*(4+16))
	buf = append(buf, sigMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.BlockSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.FileSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Blocks)))
	for _, b := range s.Blocks {
		buf = binary.LittleEndian.AppendUint32(buf, b.Weak)
		buf = append(buf, b.Strong[:]...)
	}
	return buf
}

// DecodeSignature parses an encoded signature, reconstructing block
// indices and sizes from the file size.
func DecodeSignature(data []byte) (Signature, error) {
	var s Signature
	if len(data) < sigHeader || string(data[:4]) != sigMagic {
		return s, fmt.Errorf("delta: bad signature magic %q", truncMagic(data))
	}
	bs := binary.LittleEndian.Uint32(data[4:8])
	fs := binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint32(data[16:sigHeader])
	if bs == 0 {
		return s, fmt.Errorf("delta: zero block size in signature")
	}
	s.BlockSize = int(bs)
	s.FileSize = int64(fs)
	want := (s.FileSize + int64(bs) - 1) / int64(bs)
	if int64(n) != want {
		return s, fmt.Errorf("delta: signature has %d blocks, file size implies %d", n, want)
	}
	if len(data)-sigHeader != int(n)*(4+16) {
		return s, fmt.Errorf("delta: signature body is %d bytes, %d blocks imply %d",
			len(data)-sigHeader, n, int(n)*(4+16))
	}
	if n > 0 {
		s.Blocks = make([]BlockSig, n)
	}
	off := sigHeader
	for i := uint32(0); i < n; i++ {
		blk := &s.Blocks[i]
		blk.Index = int(i)
		blk.Size = s.BlockSize
		if rem := s.FileSize - int64(i)*int64(bs); rem < int64(blk.Size) {
			blk.Size = int(rem)
		}
		blk.Weak = binary.LittleEndian.Uint32(data[off : off+4])
		copy(blk.Strong[:], data[off+4:off+20])
		off += 20
	}
	return s, nil
}

// truncMagic quotes up to the first four bytes for error messages.
func truncMagic(data []byte) []byte {
	if len(data) > 4 {
		return data[:4]
	}
	return data
}
