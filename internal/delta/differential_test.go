package delta

// Differential harness: the optimized Compute (tag bitmap, inlined
// roll, literal arena) and weakSum (unrolled) against their retained
// references, op for op and byte for byte, across random bases, edit
// scripts, and block sizes — including adversarial all-equal-byte
// inputs where every position weak-matches every block, and disjoint
// random inputs where nothing ever matches.

import (
	"bytes"
	"testing"
)

type deltaRand uint64

func (r *deltaRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = deltaRand(x)
	return x
}

func (r *deltaRand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *deltaRand) bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

func deltasEqual(a, b Delta) bool {
	if a.BlockSize != b.BlockSize || a.TargetSize != b.TargetSize || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if a.Ops[i].Kind != b.Ops[i].Kind || a.Ops[i].Index != b.Ops[i].Index ||
			!bytes.Equal(a.Ops[i].Data, b.Ops[i].Data) {
			return false
		}
	}
	return true
}

// TestDifferentialWeakSum holds the unrolled checksum to the textbook
// form on every length through the unroll boundary and beyond.
func TestDifferentialWeakSum(t *testing.T) {
	r := deltaRand(42)
	for n := 0; n <= 300; n++ {
		data := r.bytes(n)
		if got, want := weakSum(data), weakSumRef(data); got != want {
			t.Fatalf("len %d: weakSum %08x, reference %08x", n, got, want)
		}
	}
	for iter := 0; iter < 200; iter++ {
		data := r.bytes(1 + r.intn(100_000))
		if got, want := weakSum(data), weakSumRef(data); got != want {
			t.Fatalf("len %d: weakSum %08x, reference %08x", len(data), got, want)
		}
	}
}

// mutateScript applies a random edit script (mutations, insertions,
// deletions) to a copy of basis.
func mutateScript(r *deltaRand, basis []byte) []byte {
	target := append([]byte(nil), basis...)
	for k := 0; k < r.intn(8); k++ {
		if len(target) == 0 {
			target = r.bytes(1 + r.intn(1000))
			continue
		}
		switch r.intn(3) {
		case 0:
			target[r.intn(len(target))] ^= byte(1 + r.intn(255))
		case 1:
			pos := r.intn(len(target) + 1)
			ins := r.bytes(r.intn(500))
			target = append(target[:pos:pos], append(ins, target[pos:]...)...)
		default:
			pos := r.intn(len(target))
			n := r.intn(len(target) - pos + 1)
			target = append(target[:pos:pos], target[pos+n:]...)
		}
	}
	return target
}

// TestDifferentialCompute holds Compute to computeRef across random
// (basis, edit script, block size) draws, and verifies both round-trip.
func TestDifferentialCompute(t *testing.T) {
	r := deltaRand(0xC0FFEE)
	for iter := 0; iter < 300; iter++ {
		bs := 1 + r.intn(2048) // incl. bs=1 and bs > len(basis)
		basis := r.bytes(r.intn(20_000))
		var target []byte
		switch iter % 4 {
		case 0: // random edit script of the basis
			target = mutateScript(&r, basis)
		case 1: // disjoint content: nothing ever matches
			target = r.bytes(r.intn(20_000))
		case 2: // all-identical bytes on both sides: every position
			// weak-matches every block, chains are maximal
			b := byte(r.next())
			for i := range basis {
				basis[i] = b
			}
			target = make([]byte, r.intn(20_000))
			for i := range target {
				target[i] = b
			}
		default: // pure append
			target = append(append([]byte(nil), basis...), r.bytes(r.intn(2000))...)
		}
		sig := Sign(basis, bs)
		got := Compute(sig, target)
		want := computeRef(sig, target)
		if !deltasEqual(got, want) {
			t.Fatalf("iter %d (bs=%d, len basis=%d target=%d): optimized delta diverged from reference\ngot  %d ops, %d literal\nwant %d ops, %d literal",
				iter, bs, len(basis), len(target),
				len(got.Ops), got.LiteralBytes(), len(want.Ops), want.LiteralBytes())
		}
		applied, err := Apply(basis, got)
		if err != nil {
			t.Fatalf("iter %d: Apply: %v", iter, err)
		}
		if !bytes.Equal(applied, target) {
			t.Fatalf("iter %d: round-trip mismatch", iter)
		}
	}
}

// TestComputeDoesNotAliasTarget: the arena seal must leave no literal
// op sharing memory with the caller's target — mutating the target
// after Compute must not change the delta.
func TestComputeDoesNotAliasTarget(t *testing.T) {
	r := deltaRand(7)
	basis := r.bytes(10_000)
	target := mutateScript(&r, basis)
	sig := Sign(basis, 512)
	d := Compute(sig, target)
	want, err := Apply(basis, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range target {
		target[i] ^= 0xAA
	}
	got, err := Apply(basis, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("delta changed when the caller mutated target after Compute: literal ops alias the input")
	}
}

// TestDifferentialComputeTagCollisions forces distinct weak sums that
// fold to the same 16-bit tag, so bitmap hits that miss the weak table
// are exercised (the bit says "maybe", the table says no).
func TestDifferentialComputeTagCollisions(t *testing.T) {
	// Two windows with different weak sums but equal tags: tagOf xors the
	// halves, so swap-compensating a and b keeps the tag. Rather than
	// construct one analytically, scan random draws for naturally
	// colliding pairs and assert the full scan still matches reference.
	r := deltaRand(0xFACE)
	for iter := 0; iter < 50; iter++ {
		bs := 16 + r.intn(64)
		basis := r.bytes(4096)
		target := r.bytes(4096)
		sig := Sign(basis, bs)
		if got, want := Compute(sig, target), computeRef(sig, target); !deltasEqual(got, want) {
			t.Fatalf("iter %d (bs=%d): diverged under tag-collision sweep", iter, bs)
		}
	}
}
