// Package delta implements the rsync algorithm — the incremental data
// sync (IDS) mechanism the paper identifies in Dropbox and SugarSync PC
// clients (§ 4.3).
//
// The receiver (cloud) holds a basis file and publishes a Signature:
// per-block weak rolling checksums and strong MD5 fingerprints. The
// sender (client) scans its new file with a rolling window, emitting
// COPY references for blocks the receiver already has and LITERAL bytes
// for everything else. Applying the delta to the basis reconstructs the
// new file exactly. WireSize reports what transmitting the delta costs,
// which is the quantity TUE cares about.
package delta

import (
	"crypto/md5"
	"fmt"
)

// DefaultBlockSize is the sync granularity used when callers do not
// choose one. The paper estimates Dropbox's granularity at ≈ 10 KB and
// notes rsync's recommended defaults of 700 B–16 KB; 8 KB sits in that
// band.
const DefaultBlockSize = 8 << 10

// BlockSig is the signature of one basis block.
type BlockSig struct {
	// Index is the block's position in the basis (offset = Index ×
	// BlockSize).
	Index int
	// Size is the block length; only the final block may be short.
	Size int
	// Weak is the rolling Adler-style checksum.
	Weak uint32
	// Strong is the MD5 fingerprint.
	Strong [md5.Size]byte
}

// Signature describes a basis file for delta computation.
type Signature struct {
	BlockSize int
	FileSize  int64
	Blocks    []BlockSig
}

// Sign computes the signature of basis data with the given block size.
func Sign(data []byte, blockSize int) Signature {
	if blockSize <= 0 {
		panic(fmt.Sprintf("delta: invalid block size %d", blockSize))
	}
	sig := Signature{BlockSize: blockSize, FileSize: int64(len(data))}
	for off, idx := 0, 0; off < len(data); off, idx = off+blockSize, idx+1 {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		blk := data[off:end]
		sig.Blocks = append(sig.Blocks, BlockSig{
			Index:  idx,
			Size:   len(blk),
			Weak:   weakSum(blk),
			Strong: md5.Sum(blk),
		})
	}
	return sig
}

// WireSize reports the cost of transmitting the signature: 4 weak + 16
// strong bytes per block plus a 12-byte header. In the rsync protocol
// the receiver sends this to the sender before the delta flows back.
func (s Signature) WireSize() int {
	return 12 + len(s.Blocks)*(4+md5.Size)
}

// weakSum is the Adler-32-style rolling checksum rsync uses: two 16-bit
// sums packed into 32 bits. The loop is the sequential recurrence
// a += x; b += a (identical mod 2^16 to weighting each byte by its
// distance from the window end — weakSumRef), unrolled four bytes per
// iteration; uint32 overflow is harmless because only the low 16 bits
// of each accumulator survive. Equivalence to weakSumRef is pinned by
// the differential harness.
func weakSum(data []byte) uint32 {
	var a, b uint32
	i := 0
	for ; i+4 <= len(data); i += 4 {
		x0 := uint32(data[i])
		x1 := uint32(data[i+1])
		x2 := uint32(data[i+2])
		x3 := uint32(data[i+3])
		b += 4*a + 4*x0 + 3*x1 + 2*x2 + x3
		a += x0 + x1 + x2 + x3
	}
	for ; i < len(data); i++ {
		a += uint32(data[i])
		b += a
	}
	return (a & 0xffff) | (b << 16)
}

// roll slides the checksum one byte: out leaves the window, in enters,
// n is the window length.
func roll(sum uint32, out, in byte, n int) uint32 {
	a := sum & 0xffff
	b := sum >> 16
	a = (a - uint32(out) + uint32(in)) & 0xffff
	b = (b - uint32(n)*uint32(out) + a) & 0xffff
	return a | (b << 16)
}

// OpKind distinguishes delta operations.
type OpKind uint8

const (
	// OpCopy references a block of the basis by index.
	OpCopy OpKind = iota
	// OpLiteral carries raw bytes.
	OpLiteral
)

// Op is one delta instruction.
type Op struct {
	Kind OpKind
	// Index is the basis block referenced by a copy op.
	Index int
	// Data is the payload of a literal op.
	Data []byte
}

// Delta is an ordered list of instructions that transforms the basis
// into the target.
type Delta struct {
	BlockSize  int
	TargetSize int64
	Ops        []Op
}

// LiteralBytes reports the total literal payload in the delta.
func (d Delta) LiteralBytes() int {
	n := 0
	for _, op := range d.Ops {
		if op.Kind == OpLiteral {
			n += len(op.Data)
		}
	}
	return n
}

// CopiedBlocks reports how many basis blocks the delta references.
func (d Delta) CopiedBlocks() int {
	n := 0
	for _, op := range d.Ops {
		if op.Kind == OpCopy {
			n++
		}
	}
	return n
}

// WireSize reports the transmission cost of the delta: literal bytes
// plus a 4-byte header per literal run, plus 8 bytes per run of
// consecutive copy ops (rsync collapses adjacent block references).
func (d Delta) WireSize() int {
	size := 0
	i := 0
	for i < len(d.Ops) {
		op := d.Ops[i]
		if op.Kind == OpLiteral {
			size += 4 + len(op.Data)
			i++
			continue
		}
		// Collapse a run of consecutive copies.
		j := i
		for j+1 < len(d.Ops) && d.Ops[j+1].Kind == OpCopy &&
			d.Ops[j+1].Index == d.Ops[j].Index+1 {
			j++
		}
		size += 8
		i = j + 1
	}
	return size
}

// weakTable is an open-addressed hash table over the signature's
// full-size blocks, keyed by weak checksum. Equal weak sums chain
// through next in ascending block order — the same candidate order the
// map-of-slices form produced, so the first strong match (and with it
// every emitted copy index) is unchanged. Two flat int32 slices replace
// the map[uint32][]BlockSig and its per-key slice churn.
type weakTable struct {
	mask   uint32
	slots  []int32 // weak-sum slot → first block index, -1 when empty
	next   []int32 // block index → next block with the same weak sum
	blocks []BlockSig
	count  int
}

func buildWeakTable(blocks []BlockSig, bs int) (wt weakTable, partial *BlockSig) {
	size := uint32(4)
	for int(size) < 2*len(blocks) {
		size *= 2
	}
	wt.mask = size - 1
	wt.slots = make([]int32, size)
	for i := range wt.slots {
		wt.slots[i] = -1
	}
	wt.next = make([]int32, len(blocks))
	wt.blocks = blocks
	// Insert in reverse so each chain lists blocks in ascending index
	// order when walked front-to-back.
	for i := len(blocks) - 1; i >= 0; i-- {
		if blocks[i].Size != bs {
			partial = &blocks[i]
			continue
		}
		slot := wt.findSlot(blocks[i].Weak)
		wt.next[i] = wt.slots[slot]
		wt.slots[slot] = int32(i)
		wt.count++
	}
	return wt, partial
}

// findSlot linearly probes to the slot owning weak: either its existing
// chain head or the first empty slot. The table is at most half full,
// so probing terminates.
func (wt *weakTable) findSlot(weak uint32) uint32 {
	// Multiplicative scatter (Knuth's 2^32/φ) — weak sums are two packed
	// 16-bit sums and cluster badly if used directly.
	slot := (weak * 2654435761) & wt.mask
	for {
		head := wt.slots[slot]
		if head < 0 || wt.blocks[head].Weak == weak {
			return slot
		}
		slot = (slot + 1) & wt.mask
	}
}

// lookup returns the index of the first chained block whose weak sum
// matches, or -1.
func (wt *weakTable) lookup(weak uint32) int32 {
	if wt.count == 0 {
		return -1
	}
	return wt.slots[wt.findSlot(weak)]
}

// tagBits sizes the weak-sum tag bitmap: 2^16 bits = 8 KB, small
// enough to live in L1 for the whole scan.
const tagBits = 16

// tagOf folds a 32-bit weak sum to a 16-bit bitmap tag. XORing the two
// packed 16-bit sums keeps entropy from both halves (the low half
// alone clusters badly on short windows).
func tagOf(w uint32) uint32 { return (w ^ (w >> tagBits)) & (1<<tagBits - 1) }

// Compute builds the delta that turns the signed basis into target. The
// scan matches weak checksums first and confirms with the strong hash,
// exactly as rsync does; on hash collision the strong check rejects the
// block and the byte goes out as a literal.
//
// Throughput engineering (outputs byte-identical to computeRef, pinned
// by the differential harness):
//
//   - rsync's tag bitmap: every basis block sets one bit of a 2^16-bit
//     map keyed by its folded weak sum. The per-byte scan tests one bit
//     and only probes the weak table on a tag hit, so literal-heavy
//     regions pay a single L1 load per byte instead of a hash-scatter
//     and probe chain.
//   - the rolling update is inlined in the miss loop (the hot path on
//     non-matching regions).
//   - literal bytes are gathered into one exactly-sized arena after the
//     scan instead of one allocation+copy per literal op; ops alias the
//     target only transiently during the scan.
func Compute(sig Signature, target []byte) Delta {
	bs := sig.BlockSize
	if bs <= 0 {
		panic(fmt.Sprintf("delta: signature with invalid block size %d", bs))
	}
	d := Delta{BlockSize: bs, TargetSize: int64(len(target))}

	// Index full-size blocks by weak sum; keep the trailing partial
	// block (if any) aside for tail matching.
	wt, partial := buildWeakTable(sig.Blocks, bs)

	// Scan-time literal ops alias target; sealLiterals copies them out.
	emitLiteral := func(data []byte) {
		if len(data) == 0 {
			return
		}
		d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: data})
	}

	litStart := 0
	i := 0
	if len(target) >= bs && wt.count > 0 {
		// Build the tag bitmap over the indexed (full-size) blocks. A set
		// bit is necessary, not sufficient, for a weak-table hit, so
		// gating lookups on it never changes a match decision.
		var bitmap [1 << tagBits / 64]uint64
		for b := range wt.blocks {
			if wt.blocks[b].Size == bs {
				t := tagOf(wt.blocks[b].Weak)
				bitmap[t>>6] |= 1 << (t & 63)
			}
		}

		w := weakSum(target[:bs])
		for {
			// Fast path: slide the window until the tag bitmap says this
			// position could match. The accumulators stay unpacked across
			// iterations and unmasked — every update is an add/sub, so the
			// low 16 bits (all the tag and the packed sum ever read) are
			// exact mod 2^32 — leaving one add chain, one xor/mask fold,
			// and one L1 bit test per byte. tagOf(w) on the packed sum is
			// (a^b)&0xffff: w>>16 is b, so the fold xors a into b's low half.
			a := w & 0xffff
			b := w >> 16
			t := (a ^ b) & (1<<tagBits - 1)
			limit := len(target) - bs
			for bitmap[t>>6]&(1<<(t&63)) == 0 {
				if i >= limit {
					goto tail
				}
				out, in := uint32(target[i]), uint32(target[i+bs])
				a += in - out
				b += a - uint32(bs)*out
				i++
				t = (a ^ b) & (1<<tagBits - 1)
			}
			w = (a & 0xffff) | (b & 0xffff << 16)
			matched := -1
			if cand := wt.lookup(w); cand >= 0 {
				strong := md5.Sum(target[i : i+bs])
				for ; cand >= 0; cand = wt.next[cand] {
					if wt.blocks[cand].Strong == strong {
						matched = wt.blocks[cand].Index
						break
					}
				}
			}
			if matched >= 0 {
				emitLiteral(target[litStart:i])
				d.Ops = append(d.Ops, Op{Kind: OpCopy, Index: matched})
				i += bs
				litStart = i
				if i+bs > len(target) {
					break
				}
				w = weakSum(target[i : i+bs])
				continue
			}
			if i+bs >= len(target) {
				break
			}
			w = roll(w, target[i], target[i+bs], bs)
			i++
		}
	}

tail:
	// Tail: the basis's final partial block can match the target's tail.
	rest := target[litStart:]
	if partial != nil && len(rest) >= partial.Size && partial.Size > 0 {
		tail := rest[len(rest)-partial.Size:]
		if weakSum(tail) == partial.Weak && md5.Sum(tail) == partial.Strong {
			emitLiteral(rest[:len(rest)-partial.Size])
			d.Ops = append(d.Ops, Op{Kind: OpCopy, Index: partial.Index})
			sealLiterals(&d)
			return d
		}
	}
	emitLiteral(rest)
	sealLiterals(&d)
	return d
}

// sealLiterals copies every literal op's bytes — which alias the
// caller's target during the scan — into one exactly-sized arena, so
// the returned delta owns its memory with a single allocation no
// matter how many literal runs the scan produced.
func sealLiterals(d *Delta) {
	total := 0
	for _, op := range d.Ops {
		if op.Kind == OpLiteral {
			total += len(op.Data)
		}
	}
	if total == 0 {
		return
	}
	arena := make([]byte, 0, total)
	for idx := range d.Ops {
		if d.Ops[idx].Kind != OpLiteral {
			continue
		}
		off := len(arena)
		arena = append(arena, d.Ops[idx].Data...)
		d.Ops[idx].Data = arena[off:len(arena):len(arena)]
	}
}

// Apply reconstructs the target from the basis and a delta. It verifies
// block references and the final size, returning an error on any
// inconsistency.
//
// The output is a single exactly-sized allocation — TargetSize is known
// up front — written with bounds-checked copies: an op that would
// overrun the declared size fails before writing rather than growing
// the buffer (the old bytes.Buffer path paid an alloc plus at least one
// grow per apply and only caught oversize deltas at the end).
func Apply(basis []byte, d Delta) ([]byte, error) {
	if d.BlockSize <= 0 {
		return nil, fmt.Errorf("delta: apply with invalid block size %d", d.BlockSize)
	}
	if d.TargetSize < 0 {
		return nil, fmt.Errorf("delta: apply with negative target size %d", d.TargetSize)
	}
	out := make([]byte, d.TargetSize)
	pos := 0
	for i, op := range d.Ops {
		switch op.Kind {
		case OpLiteral:
			if pos+len(op.Data) > len(out) {
				return nil, fmt.Errorf("delta: op %d overruns target size %d", i, d.TargetSize)
			}
			pos += copy(out[pos:], op.Data)
		case OpCopy:
			off := op.Index * d.BlockSize
			if op.Index < 0 || off >= len(basis) {
				return nil, fmt.Errorf("delta: op %d references block %d outside basis (%d bytes)",
					i, op.Index, len(basis))
			}
			end := off + d.BlockSize
			if end > len(basis) {
				end = len(basis)
			}
			if pos+(end-off) > len(out) {
				return nil, fmt.Errorf("delta: op %d overruns target size %d", i, d.TargetSize)
			}
			pos += copy(out[pos:], basis[off:end])
		default:
			return nil, fmt.Errorf("delta: op %d has unknown kind %d", i, op.Kind)
		}
	}
	if int64(pos) != d.TargetSize {
		return nil, fmt.Errorf("delta: reconstructed %d bytes, want %d", pos, d.TargetSize)
	}
	return out, nil
}
