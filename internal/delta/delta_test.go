package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudsync/internal/content"
)

func roundTrip(t *testing.T, basis, target []byte, blockSize int) Delta {
	t.Helper()
	sig := Sign(basis, blockSize)
	d := Compute(sig, target)
	got, err := Apply(basis, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("roundtrip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return d
}

func TestIdenticalFilesAllCopy(t *testing.T) {
	data := content.Random(100_000, 1).Bytes()
	d := roundTrip(t, data, data, 4096)
	if d.LiteralBytes() != 0 {
		t.Fatalf("identical files sent %d literal bytes", d.LiteralBytes())
	}
	if d.CopiedBlocks() != 25 {
		t.Fatalf("CopiedBlocks = %d, want 25", d.CopiedBlocks())
	}
	// A fully-matching delta collapses to one copy run.
	if ws := d.WireSize(); ws != 8 {
		t.Fatalf("WireSize = %d, want 8 (single copy run)", ws)
	}
}

func TestEmptyBasisAllLiteral(t *testing.T) {
	target := content.Random(10_000, 2).Bytes()
	d := roundTrip(t, nil, target, 4096)
	if d.LiteralBytes() != len(target) {
		t.Fatalf("LiteralBytes = %d, want %d", d.LiteralBytes(), len(target))
	}
	if d.CopiedBlocks() != 0 {
		t.Fatal("copied blocks from empty basis")
	}
}

func TestEmptyTarget(t *testing.T) {
	d := roundTrip(t, content.Random(10_000, 3).Bytes(), nil, 4096)
	if len(d.Ops) != 0 {
		t.Fatalf("delta to empty target has %d ops", len(d.Ops))
	}
}

func TestSingleByteChange(t *testing.T) {
	basis := content.Random(100_000, 4).Bytes()
	target := append([]byte(nil), basis...)
	target[50_000] ^= 0xFF
	d := roundTrip(t, basis, target, 4096)
	// Only the containing block should go as literal — this is the
	// paper's estimate "once a random byte is changed, the whole chunk
	// containing the byte must be delivered".
	if d.LiteralBytes() != 4096 {
		t.Fatalf("LiteralBytes = %d, want exactly one block (4096)", d.LiteralBytes())
	}
}

func TestAppendOnlyChange(t *testing.T) {
	basis := content.Random(100_000, 5).Bytes()
	extra := content.Random(1000, 6).Bytes()
	target := append(append([]byte(nil), basis...), extra...)
	d := roundTrip(t, basis, target, 4096)
	// Appending must resend at most the final partial block plus the new
	// bytes: 100000 % 4096 = 1696 tail + 1000 new.
	if d.LiteralBytes() > 1696+1000 {
		t.Fatalf("append sent %d literal bytes, want ≤ %d", d.LiteralBytes(), 2696)
	}
}

func TestInsertionShiftsHandled(t *testing.T) {
	// Insert bytes near the front: rolling matching should realign and
	// copy almost everything after the insertion.
	basis := content.Random(200_000, 7).Bytes()
	ins := content.Random(137, 8).Bytes()
	target := append(append(append([]byte(nil), basis[:1000]...), ins...), basis[1000:]...)
	d := roundTrip(t, basis, target, 4096)
	if frac := float64(d.LiteralBytes()) / float64(len(target)); frac > 0.10 {
		t.Fatalf("insertion resent %.2f of the file; rolling match should keep it under 10%%", frac)
	}
}

func TestTailPartialBlockMatch(t *testing.T) {
	// Basis ends with a partial block; unchanged tail should be copied.
	basis := content.Random(10_000, 9).Bytes() // 2×4096 + 1808 tail
	target := append([]byte(nil), basis...)
	target[0] ^= 1 // change first block only
	d := roundTrip(t, basis, target, 4096)
	if d.LiteralBytes() != 4096 {
		t.Fatalf("LiteralBytes = %d, want 4096 (tail partial should match)", d.LiteralBytes())
	}
}

func TestSignWireSize(t *testing.T) {
	sig := Sign(content.Random(100_000, 10).Bytes(), 4096)
	want := 12 + len(sig.Blocks)*20
	if got := sig.WireSize(); got != want {
		t.Fatalf("WireSize = %d, want %d", got, want)
	}
}

func TestSignInvalidBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sign with block size 0 did not panic")
		}
	}()
	Sign([]byte{1}, 0)
}

func TestComputeInvalidSigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compute with invalid signature did not panic")
		}
	}()
	Compute(Signature{BlockSize: 0}, []byte{1})
}

func TestApplyErrors(t *testing.T) {
	basis := make([]byte, 100)
	cases := []Delta{
		{BlockSize: 0, TargetSize: 0},
		{BlockSize: 10, TargetSize: 10, Ops: []Op{{Kind: OpCopy, Index: 50}}},
		{BlockSize: 10, TargetSize: 10, Ops: []Op{{Kind: OpCopy, Index: -1}}},
		{BlockSize: 10, TargetSize: 999, Ops: []Op{{Kind: OpCopy, Index: 0}}},
		{BlockSize: 10, TargetSize: 10, Ops: []Op{{Kind: OpKind(9)}}},
	}
	for i, d := range cases {
		if _, err := Apply(basis, d); err == nil {
			t.Errorf("case %d: Apply succeeded, want error", i)
		}
	}
}

func TestWeakSumRolling(t *testing.T) {
	data := content.Random(1000, 11).Bytes()
	const n = 64
	w := weakSum(data[:n])
	for i := 1; i+n <= len(data); i++ {
		w = roll(w, data[i-1], data[i+n-1], n)
		if direct := weakSum(data[i : i+n]); w != direct {
			t.Fatalf("rolling sum diverged at offset %d: %08x vs %08x", i, w, direct)
		}
	}
}

func TestWireSizeAccountsRuns(t *testing.T) {
	d := Delta{BlockSize: 10, Ops: []Op{
		{Kind: OpCopy, Index: 0},
		{Kind: OpCopy, Index: 1},
		{Kind: OpCopy, Index: 5}, // breaks the run
		{Kind: OpLiteral, Data: make([]byte, 100)},
		{Kind: OpCopy, Index: 6},
	}}
	// Runs: [0,1], [5], literal(100), [6] → 8 + 8 + 104 + 8.
	if got := d.WireSize(); got != 128 {
		t.Fatalf("WireSize = %d, want 128", got)
	}
}

// Property: Apply(basis, Compute(Sign(basis), target)) == target for
// random bases, random edits, and random block sizes.
func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		blockSize := 16 << (rng.Intn(7)) // 16..1024
		basis := content.Random(int64(rng.Intn(20_000)), int64(iter)).Bytes()
		target := append([]byte(nil), basis...)
		// Random edit script: mutations, insertions, deletions.
		for k := 0; k < rng.Intn(8); k++ {
			if len(target) == 0 {
				target = content.Random(int64(rng.Intn(1000)+1), int64(iter*100+k)).Bytes()
				continue
			}
			switch rng.Intn(3) {
			case 0: // mutate
				target[rng.Intn(len(target))] ^= byte(1 + rng.Intn(255))
			case 1: // insert
				pos := rng.Intn(len(target) + 1)
				ins := content.Random(int64(rng.Intn(500)), int64(iter*1000+k)).Bytes()
				target = append(target[:pos:pos], append(ins, target[pos:]...)...)
			case 2: // delete
				pos := rng.Intn(len(target))
				n := rng.Intn(len(target) - pos + 1)
				target = append(target[:pos:pos], target[pos+n:]...)
			}
		}
		sig := Sign(basis, blockSize)
		d := Compute(sig, target)
		got, err := Apply(basis, d)
		if err != nil {
			t.Fatalf("iter %d (bs=%d): %v", iter, blockSize, err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("iter %d (bs=%d): mismatch len(basis)=%d len(target)=%d",
				iter, blockSize, len(basis), len(target))
		}
		if d.LiteralBytes() > len(target) {
			t.Fatalf("iter %d: literal bytes exceed target size", iter)
		}
	}
}

// Property (testing/quick): deltas never contain negative block indices
// and wire size is at least the literal payload.
func TestPropertyWireSizeBounds(t *testing.T) {
	f := func(seedA, seedB int64, szA, szB uint16) bool {
		basis := content.Random(int64(szA), seedA).Bytes()
		target := content.Random(int64(szB), seedB).Bytes()
		d := Compute(Sign(basis, 256), target)
		for _, op := range d.Ops {
			if op.Kind == OpCopy && op.Index < 0 {
				return false
			}
		}
		return d.WireSize() >= d.LiteralBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeltaCompute1MBUnchanged(b *testing.B) {
	data := content.Random(1<<20, 1).Bytes()
	sig := Sign(data, DefaultBlockSize)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(sig, data)
	}
}

// BenchmarkDeltaCompute1MBFullRewrite is the literal-heavy worst case:
// nothing matches, so every byte of the target rolls through the
// scanner — the path the tag bitmap exists for.
//
// The seeds must be far apart: content.Random(_, s) streams are windows
// of one splitmix orbit, so seeds within size/8 words of each other
// share content (seed 2's stream is seed 1's shifted by 8 bytes). The
// literal-fraction assertion keeps this bench honest about being a
// rewrite.
func BenchmarkDeltaCompute1MBFullRewrite(b *testing.B) {
	basis := content.Random(1<<20, 1).Bytes()
	target := content.Random(1<<20, 1<<20).Bytes()
	sig := Sign(basis, DefaultBlockSize)
	if d := Compute(sig, target); d.LiteralBytes() != len(target) {
		b.Fatalf("rewrite delta matched %d bytes; seeds overlap", len(target)-d.LiteralBytes())
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(sig, target)
	}
}

// BenchmarkDeltaCompute1MBFullRewriteRef is the retained pre-bitmap
// scanner on the same all-literal input — the before/after of the tag
// bitmap, visible in every bench run rather than only in history.
func BenchmarkDeltaCompute1MBFullRewriteRef(b *testing.B) {
	basis := content.Random(1<<20, 1).Bytes()
	target := content.Random(1<<20, 1<<20).Bytes()
	sig := Sign(basis, DefaultBlockSize)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		computeRef(sig, target)
	}
}

// BenchmarkDeltaCompute1MBInsertShift models the workload content-
// defined chunking and rsync exist for: a small insertion near the
// front misaligns every later block, so the scanner rolls byte-by-byte
// until it realigns and then copies block after block.
func BenchmarkDeltaCompute1MBInsertShift(b *testing.B) {
	basis := content.Random(1<<20, 1).Bytes()
	ins := content.Random(137, 3).Bytes()
	target := append(append(append([]byte(nil), basis[:1000]...), ins...), basis[1000:]...)
	sig := Sign(basis, DefaultBlockSize)
	d := Compute(sig, target)
	if d.LiteralBytes() > len(target)/10 {
		b.Fatalf("insert-shift delta resent %d literal bytes", d.LiteralBytes())
	}
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(sig, target)
	}
}

// BenchmarkDeltaComputeSparseEdits: a handful of scattered single-byte
// edits — mostly aligned copies with short literal runs between them.
func BenchmarkDeltaComputeSparseEdits(b *testing.B) {
	basis := content.Random(1<<20, 1).Bytes()
	target := append([]byte(nil), basis...)
	for off := 50_000; off < len(target); off += 200_000 {
		target[off] ^= 0xFF
	}
	sig := Sign(basis, DefaultBlockSize)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(sig, target)
	}
}

func BenchmarkDeltaSign1MB(b *testing.B) {
	data := content.Random(1<<20, 1).Bytes()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sign(data, DefaultBlockSize)
	}
}

// BenchmarkDeltaApply pins Apply's allocation budget: one exactly-sized
// output slice per call, regardless of how many ops the delta carries.
func BenchmarkDeltaApply(b *testing.B) {
	basis := content.Random(1<<20, 1).Bytes()
	ins := content.Random(137, 3).Bytes()
	target := append(append(append([]byte(nil), basis[:1000]...), ins...), basis[1000:]...)
	d := Compute(Sign(basis, DefaultBlockSize), target)
	b.SetBytes(int64(len(target)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(basis, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeakSum(b *testing.B) {
	data := content.Random(1<<20, 1).Bytes()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if weakSum(data) == 0 {
			b.Fatal("unlikely zero sum")
		}
	}
}

// TestApplySingleAllocation pins the exact-size Apply contract at the
// allocation level: the output slice must be the only allocation.
func TestApplySingleAllocation(t *testing.T) {
	basis := content.Random(256<<10, 1).Bytes()
	target := append([]byte(nil), basis...)
	target[100_000] ^= 0xFF
	d := Compute(Sign(basis, 4096), target)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Apply(basis, d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Apply allocated %.1f times per run, want ≤ 1", allocs)
	}
}
