package delta

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"cloudsync/internal/content"
)

func TestDeltaCodecRoundTrip(t *testing.T) {
	basis := content.Random(50_000, 1).Bytes()
	target := append([]byte(nil), basis...)
	target[100] ^= 0xFF
	target = append(target, content.Random(777, 2).Bytes()...)
	d := Compute(Sign(basis, 1024), target)

	enc := d.Encode()
	got, err := DecodeDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatal("delta codec roundtrip mismatch")
	}
	// And the decoded delta still applies.
	out, err := Apply(basis, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, target) {
		t.Fatal("decoded delta does not reconstruct target")
	}
}

func TestDeltaCodecEmpty(t *testing.T) {
	d := Delta{BlockSize: 512, TargetSize: 0}
	got, err := DecodeDelta(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockSize != 512 || got.TargetSize != 0 || len(got.Ops) != 0 {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestDeltaDecodeErrors(t *testing.T) {
	valid := Delta{BlockSize: 512, TargetSize: 4, Ops: []Op{
		{Kind: OpLiteral, Data: []byte("abcd")},
	}}.Encode()
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		valid[:6],                      // truncated header
		append(valid, 0xFF),            // trailing byte
		corrupt(valid, 4, 0, 0, 0, 0),  // zero block size
		corrupt(valid, 21, 0xFF),       // unknown op tag
		corrupt(valid, 22, 0xFF, 0xFF), // literal longer than body
	}
	for i, c := range cases {
		if _, err := DecodeDelta(c); err == nil {
			t.Errorf("case %d: DecodeDelta succeeded on malformed input", i)
		}
	}
}

func corrupt(data []byte, off int, repl ...byte) []byte {
	out := append([]byte(nil), data...)
	copy(out[off:], repl)
	return out
}

func TestSignatureCodecRoundTrip(t *testing.T) {
	for _, size := range []int{0, 100, 1024, 10_000} {
		data := content.Random(int64(size), 3).Bytes()
		sig := Sign(data, 1024)
		got, err := DecodeSignature(sig.Encode())
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !reflect.DeepEqual(got, sig) {
			t.Fatalf("size %d: signature roundtrip mismatch\n got %+v\nwant %+v", size, got, sig)
		}
	}
}

func TestSignatureDecodeErrors(t *testing.T) {
	valid := Sign(content.Random(3000, 4).Bytes(), 1024).Encode()
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		valid[:10],
		append(valid, 1, 2, 3),
		corrupt(valid, 4, 0, 0, 0, 0), // zero block size
		corrupt(valid, 16, 0xFF),      // block count mismatch with size
	}
	for i, c := range cases {
		if _, err := DecodeSignature(c); err == nil {
			t.Errorf("case %d: DecodeSignature succeeded on malformed input", i)
		}
	}
}

// Property: encode/decode is the identity on deltas computed from
// arbitrary random inputs, and decoded deltas always apply cleanly.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seedA, seedB int64, szA, szB uint16) bool {
		basis := content.Random(int64(szA), seedA).Bytes()
		target := content.Random(int64(szB), seedB).Bytes()
		d := Compute(Sign(basis, 256), target)
		got, err := DecodeDelta(d.Encode())
		if err != nil {
			return false
		}
		out, err := Apply(basis, got)
		return err == nil && bytes.Equal(out, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeDelta and DecodeSignature never panic on arbitrary
// input.
func TestPropertyDecodeRobust(t *testing.T) {
	f := func(data []byte) bool {
		DecodeDelta(data)
		DecodeSignature(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedLiteralBytes(t *testing.T) {
	basis := content.Random(50_000, 10).Bytes()
	target := append([]byte(nil), basis...)
	target[5000] ^= 0xFF
	target = append(target, content.Random(900, 11).Bytes()...)
	d := Compute(Sign(basis, 1024), target)
	enc := d.Encode()

	got, err := EncodedLiteralBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(d.LiteralBytes()); got != want {
		t.Fatalf("EncodedLiteralBytes = %d, want %d", got, want)
	}

	// All-literal and empty deltas.
	for _, dd := range []Delta{
		Compute(Sign(nil, 512), content.Random(3000, 12).Bytes()),
		{BlockSize: 512},
	} {
		got, err := EncodedLiteralBytes(dd.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(dd.LiteralBytes()); got != want {
			t.Fatalf("EncodedLiteralBytes = %d, want %d", got, want)
		}
	}

	// Corruption is reported, not mis-counted.
	if _, err := EncodedLiteralBytes(enc[:10]); err == nil {
		t.Error("truncated delta should error")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := EncodedLiteralBytes(bad); err == nil {
		t.Error("bad magic should error")
	}
}
