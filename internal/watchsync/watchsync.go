// Package watchsync is the watch-mode sync pipeline: a local observer
// and the remote listing feed a debounced change buffer; the pure
// planner of internal/planner reconciles buffer, baseline, and remote
// state into an ordered action list; a parallel executor applies the
// transfers over internal/syncnet clients; and an atomically persisted
// baseline closes the loop so a restarted daemon resumes exactly where
// it stopped.
//
// Everything in this package runs on a virtual clock: callers pass the
// current time as a time.Duration offset from an epoch of their
// choosing. The live daemon (cmd/syncwatch) maps wall time onto that
// offset; tests and trace replays drive the offset directly, which
// makes every scheduling decision — debounce windows, sync deferment,
// wake-ups — deterministic and simulable at any speed.
package watchsync

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cloudsync/internal/dirwatch"
)

// Event is one observed local filesystem change, in virtual time.
type Event struct {
	// Path is slash-separated, relative to the synced root.
	Path string
	// Remove marks a deletion; Write is meaningless then.
	Remove bool
	// Write is the virtual time of the modification itself (typically
	// the file's mtime mapped onto the virtual clock) — the signal the
	// deferment policies estimate inter-update times from.
	Write time.Duration
}

// Source observes one local tree. Scan reports the changes since the
// previous Scan; Read returns a file's current content by path. A
// Source must tolerate concurrent Read calls (the executor's workers
// read in parallel), while Scan is only ever called from the pipeline
// goroutine.
//
// The first Scan must mention every file that currently exists (a
// fresh dirwatch reports the whole tree as creates; MemSource queues
// an event per WriteFile): the pipeline treats it as a full listing
// and synthesizes removes for baseline paths it omits, which is how
// deletions that happened while no watcher was running reach the
// server.
type Source interface {
	Scan(now time.Duration) ([]Event, error)
	Read(path string) ([]byte, error)
}

// DirSource adapts a polling dirwatch.Watcher to the virtual clock:
// each file's mtime is mapped to an offset from Epoch and clamped into
// [0, now] so skewed or future mtimes can never produce events the
// planner would reject.
type DirSource struct {
	// Epoch anchors the virtual clock; mtimes before it clamp to 0.
	Epoch time.Time

	mu sync.Mutex // Scan mutates watcher state; Read is reentrant
	w  *dirwatch.Watcher
}

// NewDirSource watches the tree rooted at w from the given epoch.
func NewDirSource(w *dirwatch.Watcher, epoch time.Time) *DirSource {
	return &DirSource{Epoch: epoch, w: w}
}

// Scan polls the tree once and converts the diff to virtual-time
// events.
func (s *DirSource) Scan(now time.Duration) ([]Event, error) {
	s.mu.Lock()
	changes, err := s.w.Scan()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	evs := make([]Event, 0, len(changes))
	for _, ch := range changes {
		ev := Event{Path: ch.Path, Remove: ch.Op == dirwatch.Delete}
		if !ev.Remove {
			w := ch.ModTime.Sub(s.Epoch)
			if w < 0 {
				w = 0
			}
			if w > now {
				w = now
			}
			ev.Write = w
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// Read returns a watched file's current content.
func (s *DirSource) Read(path string) ([]byte, error) { return s.w.Read(path) }

// MemSource is an in-memory Source for tests and trace replays: a
// virtual tree whose writes and removes are queued as events and
// reported by the next Scan, exactly like a poll of a real directory.
type MemSource struct {
	mu     sync.Mutex
	files  map[string][]byte
	queued []Event
}

// NewMemSource returns an empty in-memory tree.
func NewMemSource() *MemSource {
	return &MemSource{files: make(map[string][]byte)}
}

// WriteFile stores content under path at virtual time at.
func (m *MemSource) WriteFile(path string, data []byte, at time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = append([]byte(nil), data...)
	m.queued = append(m.queued, Event{Path: path, Write: at})
}

// RemoveFile deletes path (a no-op on unknown paths, like rm -f).
func (m *MemSource) RemoveFile(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return
	}
	delete(m.files, path)
	m.queued = append(m.queued, Event{Path: path, Remove: true})
}

// Scan drains the queued events.
func (m *MemSource) Scan(time.Duration) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	evs := m.queued
	m.queued = nil
	return evs, nil
}

// Read returns a file's current content.
func (m *MemSource) Read(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("watchsync: %s does not exist", path)
	}
	return append([]byte(nil), data...), nil
}

// Files snapshots the current tree — the convergence oracle replays
// compare against the server's state.
func (m *MemSource) Files() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for p, d := range m.files {
		out[p] = append([]byte(nil), d...)
	}
	return out
}

// Paths lists the tree's current paths, sorted.
func (m *MemSource) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
