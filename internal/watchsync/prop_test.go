package watchsync

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"cloudsync/internal/content"
	"cloudsync/internal/invariant"
	"cloudsync/internal/planner"
)

// propSeeds is how many independent scenarios the property test
// replays; propOps is the length of each event script.
const (
	propSeeds = 100
	propOps   = 24
)

// propDefer derives the scenario's deferment policy from its seed, so
// every policy — including no deferment — faces every interleaving
// shape over the run.
func propDefer(seed uint64) planner.DeferConfig {
	switch seed % 4 {
	case 1:
		return planner.DeferConfig{Mode: planner.DeferFixed, FixedT: 600 * time.Millisecond}
	case 2:
		return planner.DeferConfig{Mode: planner.DeferASD, Epsilon: 50 * time.Millisecond, TMax: 3 * time.Second}
	case 3:
		return planner.DeferConfig{Mode: planner.DeferUDS, Threshold: 8 << 10, MaxDelay: time.Second}
	default:
		return planner.DeferConfig{}
	}
}

// runWatchScenario replays ops[:n] of the seed's event script through
// a full pipeline — MemSource, debounced buffer, pure planner,
// parallel executor over net.Pipe, real server — and checks the two
// end-to-end invariants: the server converges to the local tree, and
// the traffic-attribution ledgers on BOTH ends balance their wire
// totals exactly. Deterministic for a given (seed, n), which is what
// makes prefix shrinking sound.
func runWatchScenario(seed uint64, n int) []invariant.Violation {
	fail := func(format string, args ...any) []invariant.Violation {
		return []invariant.Violation{{Invariant: "watch-pipeline", Detail: fmt.Sprintf(format, args...)}}
	}
	ops := invariant.GenOps(seed, n)
	cfg := Config{
		Debounce: time.Duration(seed%3) * 150 * time.Millisecond,
		Defer:    propDefer(seed),
	}
	workers := 1 + int(seed%2)
	r, err := buildRig(workers, cfg, "prop")
	if err != nil {
		return fail("rig: %v", err)
	}
	defer r.close()
	if err := r.pipe.Bootstrap(); err != nil {
		return fail("bootstrap: %v", err)
	}

	step := func(now time.Duration) []invariant.Violation {
		if err := r.pipe.Poll(now); err != nil {
			return fail("poll at %v: %v", now, err)
		}
		st, _, _, err := r.pipe.Tick(now)
		if err != nil {
			return fail("tick at %v: %v", now, err)
		}
		if st.Errors > 0 {
			return fail("%d transfer errors at %v", st.Errors, now)
		}
		return nil
	}

	// One op lands every 400ms of virtual time; get ops advance the
	// clock without an event, so quiet gaps occur too.
	now := time.Duration(0)
	for _, op := range ops {
		now += 400 * time.Millisecond
		switch op.Kind {
		case invariant.OpPut:
			r.src.WriteFile(op.Name, content.Random(op.Size, op.ContentSeed).Bytes(), now)
		case invariant.OpDelete:
			r.src.RemoveFile(op.Name)
		}
		if vs := step(now); vs != nil {
			return vs
		}
	}
	// Quiesce: tick until every deferred and buffered change drained.
	for i := 0; r.pipe.PendingPaths() > 0; i++ {
		if i > 1000 {
			return fail("did not quiesce: %d paths pending", r.pipe.PendingPaths())
		}
		now += 400 * time.Millisecond
		if vs := step(now); vs != nil {
			return vs
		}
	}

	// Convergence: server state == local tree, deletions included.
	var out []invariant.Violation
	local := r.src.Files()
	snap := r.srv.Snapshot("prop")
	for name, want := range local {
		got, ok := snap[name]
		switch {
		case !ok || got.Deleted:
			out = append(out, invariant.Violation{Invariant: "watch-convergence",
				Detail: fmt.Sprintf("%s live locally but absent remotely", name)})
		case !bytes.Equal(got.Data, want):
			out = append(out, invariant.Violation{Invariant: "watch-convergence",
				Detail: fmt.Sprintf("%s differs: %d B local vs %d B remote", name, len(want), len(got.Data))})
		}
	}
	for name, f := range snap {
		if _, ok := local[name]; !ok && !f.Deleted {
			out = append(out, invariant.Violation{Invariant: "watch-convergence",
				Detail: fmt.Sprintf("%s live remotely but deleted locally", name)})
		}
	}

	// Exact ledger balance on both ends: close the clients first so
	// residual partial-frame bytes are swept into framing.
	clientWire := r.wire()
	r.close()
	out = append(out, invariant.CheckLedger(clientWire, r.cliLed.Snapshot())...)
	stats := r.srv.Stats()
	out = append(out, invariant.CheckLedger(stats.BytesReceived+stats.BytesSent, r.srvLed.Snapshot())...)
	return out
}

// TestWatchPipelineProperty replays propSeeds random event
// interleavings end to end. On failure it shrinks to the shortest
// failing prefix of the seed's script before reporting, so the log
// shows a minimal reproducer.
func TestWatchPipelineProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property replay is not short")
	}
	for seed := uint64(0); seed < propSeeds; seed++ {
		vs := runWatchScenario(seed, propOps)
		if len(vs) == 0 {
			continue
		}
		shrunk := invariant.ShrinkPrefix(propOps, func(k int) bool {
			return len(runWatchScenario(seed, k)) > 0
		})
		ops := invariant.GenOps(seed, shrunk)
		var script []string
		for i, op := range ops {
			script = append(script, fmt.Sprintf("  %2d. %v", i+1, op))
		}
		t.Fatalf("seed %d fails (shrunk %d → %d ops):\n%s\nviolations: %v\nreplay: runWatchScenario(%d, %d)",
			seed, propOps, shrunk, joinLines(script), runWatchScenario(seed, shrunk), seed, shrunk)
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
