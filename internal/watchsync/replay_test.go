package watchsync

import (
	"testing"
	"time"

	"cloudsync/internal/invariant"
	"cloudsync/internal/planner"
)

func freqModConfig(mode planner.DeferConfig) ReplayConfig {
	return ReplayConfig{
		Files:       2,
		Edits:       8,
		Interval:    500 * time.Millisecond,
		Step:        100 * time.Millisecond,
		InitialSize: 8 << 10,
		EditBytes:   128,
		Seed:        42,
		Defer:       mode,
	}
}

var asdPolicy = planner.DeferConfig{
	Mode:    planner.DeferASD,
	Epsilon: 200 * time.Millisecond,
	TMax:    5 * time.Second,
}

// TestReplayFreqModASDReducesTraffic is the paper's headline live
// result replayed end to end: on a frequent-modification workload
// (edits every 500ms), adaptive sync defer batches the burst — the
// inter-update estimate converges to Δt+2ε = 900ms, beyond the 500ms
// gap — while the no-defer baseline pays a delta round trip per edit.
// Same trace, same server, strictly less wire traffic, and the
// attribution ledgers stay exact on both ends in both runs.
func TestReplayFreqModASDReducesTraffic(t *testing.T) {
	leakCheck(t)
	none, err := ReplayFreqMod(freqModConfig(planner.DeferConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	asd, err := ReplayFreqMod(freqModConfig(asdPolicy))
	if err != nil {
		t.Fatal(err)
	}

	if none.Deferred != 0 {
		t.Fatalf("no-defer run deferred %d times", none.Deferred)
	}
	if asd.Deferred == 0 {
		t.Fatal("ASD run never deferred — the policy is not engaging")
	}
	if asd.SyncPoints >= none.SyncPoints {
		t.Fatalf("ASD sync points = %d, no-defer = %d; batching should reduce them",
			asd.SyncPoints, none.SyncPoints)
	}
	if asd.ClientWire >= none.ClientWire {
		t.Fatalf("ASD wire = %d B, no-defer = %d B; deferment should cost less",
			asd.ClientWire, none.ClientWire)
	}
	if asd.TUE() >= none.TUE() {
		t.Fatalf("ASD TUE = %.2f, no-defer TUE = %.2f", asd.TUE(), none.TUE())
	}

	for name, r := range map[string]*ReplayResult{"none": none, "asd": asd} {
		if vs := invariant.CheckLedger(r.ClientWire, r.ClientLedger); len(vs) != 0 {
			t.Fatalf("%s client ledger: %v", name, vs)
		}
		if vs := invariant.CheckLedger(r.ServerWire, r.ServerLedger); len(vs) != 0 {
			t.Fatalf("%s server ledger: %v", name, vs)
		}
	}
}

// TestReplayFreqModDeterministic: the replay is a virtual-clock
// simulation — two runs of one config must agree byte for byte, or
// the EXPERIMENTS.md numbers would not be reproducible.
func TestReplayFreqModDeterministic(t *testing.T) {
	leakCheck(t)
	a, err := ReplayFreqMod(freqModConfig(asdPolicy))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayFreqMod(freqModConfig(asdPolicy))
	if err != nil {
		t.Fatal(err)
	}
	if a.ClientWire != b.ClientWire || a.ServerWire != b.ServerWire ||
		a.Uploads != b.Uploads || a.Deltas != b.Deltas ||
		a.Deferred != b.Deferred || a.SyncPoints != b.SyncPoints {
		t.Fatalf("replay not deterministic:\nrun1: %+v\nrun2: %+v", a, b)
	}
	if a.ClientLedger != b.ClientLedger {
		t.Fatalf("ledger attribution not deterministic:\nrun1: %v\nrun2: %v",
			a.ClientLedger, b.ClientLedger)
	}
}
