package watchsync

import (
	"crypto/md5"
	"fmt"
	"time"

	"cloudsync/internal/planner"
)

// contentMD5 fingerprints file content the way the whole stack does
// (the paper's target services are MD5-indexed).
func contentMD5(data []byte) [16]byte { return md5.Sum(data) }

// Config are the pipeline's policy knobs.
type Config struct {
	// Debounce is the change buffer's quiet window.
	Debounce time.Duration
	// Defer is the planner's sync-deferment policy.
	Defer planner.DeferConfig
	// BaselinePath, when non-empty, persists the baseline atomically
	// after every round that changed it.
	BaselinePath string
}

// TickStats summarizes one pipeline round.
type TickStats struct {
	Planned   int // actions in the round's plan
	Uploads   int // full uploads executed successfully
	Deltas    int // delta syncs executed successfully
	Deletes   int // deletions executed successfully
	Deferred  int // paths the planner chose to keep local for now
	NoOps     int // actions that moved no bytes
	Errors    int // transfers that failed (kept pending for retry)
	WireBytes int // payload bytes put on the wire by this round's uploads
}

// Pipeline wires observer → buffer → planner → executor → baseline
// into one watch-mode sync loop. All methods run on the caller's
// goroutine and a virtual clock; the pipeline itself never reads wall
// time, spawns goroutines (the executor's workers live only within a
// Tick), or sleeps — scheduling is the caller's job, guided by the
// wake-up times each Tick returns.
type Pipeline struct {
	src  Source
	exec *Executor
	cfg  Config

	buf        *Buffer
	open       map[string]Pending // drained, not yet resolved (deferred or failed)
	baseline   map[string]planner.FileMeta
	remote     map[string]planner.RemoteFile
	remoteOK   bool
	deferState map[string]planner.DeferState
	dirty      bool // baseline changed since last successful save
	scanned    bool // first scan done — baseline reconciled against disk
}

// NewPipeline assembles a pipeline. Call Bootstrap before the first
// Tick to load the persisted baseline and fetch the remote listing.
func NewPipeline(src Source, exec *Executor, cfg Config) *Pipeline {
	return &Pipeline{
		src:        src,
		exec:       exec,
		cfg:        cfg,
		buf:        NewBuffer(cfg.Debounce),
		open:       make(map[string]Pending),
		baseline:   make(map[string]planner.FileMeta),
		remote:     make(map[string]planner.RemoteFile),
		deferState: make(map[string]planner.DeferState),
	}
}

// Baseline exposes the current last-synced snapshot (shared map; do
// not mutate). Tests and the dry-run path read it.
func (p *Pipeline) Baseline() map[string]planner.FileMeta { return p.baseline }

// PendingPaths reports how many paths are waiting in the buffer or
// deferred/retrying — zero means the pipeline is fully converged with
// its last observation.
func (p *Pipeline) PendingPaths() int { return p.buf.Len() + len(p.open) }

// Bootstrap loads the persisted baseline and fetches the remote
// listing, priming every worker. It must run once before Tick.
func (p *Pipeline) Bootstrap() error {
	if p.cfg.BaselinePath != "" {
		base, err := LoadBaseline(p.cfg.BaselinePath)
		if err != nil {
			return err
		}
		p.baseline = base
	}
	entries, err := p.exec.List()
	if err != nil {
		return fmt.Errorf("watchsync: fetching remote listing: %w", err)
	}
	p.remote = make(map[string]planner.RemoteFile, len(entries))
	for _, en := range entries {
		p.remote[en.Name] = planner.RemoteFile{
			FileID:  en.FileID,
			Size:    en.Size,
			MD5:     en.FileHash,
			Version: en.Version,
			Deleted: en.Deleted,
		}
	}
	p.remoteOK = true
	return nil
}

// Poll scans the source once and feeds the observed events into the
// change buffer at observation time now. Run Bootstrap first: the
// initial poll reconciles the loaded baseline against the scan.
func (p *Pipeline) Poll(now time.Duration) error {
	evs, err := p.src.Scan(now)
	if err != nil {
		return err
	}
	for _, ev := range evs {
		p.buf.Note(ev, now)
	}
	// The first scan is a full listing (a fresh watcher reports every
	// existing file as a create), so baseline entries it does not
	// mention were deleted while no watcher was running. Synthesize
	// their removes here — no future event will ever name those paths,
	// and without this a restart strands them on the server forever.
	if !p.scanned {
		p.scanned = true
		seen := make(map[string]bool, len(evs))
		for _, ev := range evs {
			seen[ev.Path] = true
		}
		for path := range p.baseline {
			if !seen[path] {
				p.buf.Note(Event{Path: path, Remove: true}, now)
			}
		}
	}
	return nil
}

// Tick runs one round: drain the debounced buffer, plan, execute the
// ready transfers, fold the results back into baseline and remote
// state, and persist the baseline if it moved. It returns the round's
// stats plus the earliest virtual time at which new work becomes ready
// (wake=false when nothing is pending at all).
func (p *Pipeline) Tick(now time.Duration) (TickStats, time.Duration, bool, error) {
	var st TickStats

	// Merge newly quiet paths into the open set. A path re-modified
	// while deferred accumulates its new writes onto the open record.
	for _, pen := range p.buf.Drain(now) {
		prev, ok := p.open[pen.Path]
		if !ok || pen.Remove || prev.Remove {
			p.open[pen.Path] = pen
			continue
		}
		writes := prev.Writes
		for _, w := range pen.Writes {
			if n := len(writes); n > 0 && w < writes[n-1] {
				w = writes[n-1]
			}
			writes = append(writes, w)
		}
		p.open[pen.Path] = Pending{Path: pen.Path, Writes: writes}
	}

	in := planner.Input{
		Now:         now,
		Baseline:    p.baseline,
		Remote:      p.remote,
		RemoteKnown: p.remoteOK,
		Defer:       p.cfg.Defer,
		DeferState:  p.deferState,
	}
	for path, pen := range p.open {
		ch := planner.Change{Path: path, Remove: pen.Remove, Writes: pen.Writes}
		if !pen.Remove {
			data, err := p.src.Read(path)
			if err != nil {
				// Vanished between observation and read: treat as removed;
				// the delete event will confirm on the next poll.
				ch = planner.Change{Path: path, Remove: true}
			} else {
				ch.Size = int64(len(data))
				ch.MD5 = contentMD5(data)
			}
		}
		in.Changes = append(in.Changes, ch)
	}

	out := planner.Plan(in)
	st.Planned = len(out.Actions)

	// The plan consumed every pending write: whatever stays open (defers,
	// failed transfers) must not replay them, or ASD would double-count.
	for path, pen := range p.open {
		pen.Writes = nil
		p.open[path] = pen
	}
	p.deferState = out.DeferState

	results := p.exec.Apply(out.Actions, p.src.Read)
	ri := 0
	for _, a := range out.Actions {
		switch a.Kind {
		case planner.Upload, planner.Delta, planner.Delete:
			res := results[ri]
			ri++
			if res.Err != nil {
				st.Errors++ // stays open; retried next tick
				continue
			}
			switch a.Kind {
			case planner.Delete:
				st.Deletes++
				delete(p.baseline, a.Path)
				if r, ok := p.remote[a.Path]; ok {
					r.Deleted = true
					r.Version++
					p.remote[a.Path] = r
				}
			default:
				if res.Stats.DeltaSync {
					st.Deltas++
				} else {
					st.Uploads++
				}
				st.WireBytes += res.Stats.PayloadBytes
				meta := planner.FileMeta{Size: a.Size, MD5: a.MD5, Version: res.Version}
				p.baseline[a.Path] = meta
				if p.remoteOK {
					id := p.remote[a.Path].FileID
					p.remote[a.Path] = planner.RemoteFile{
						FileID: id, Size: a.Size, MD5: a.MD5, Version: res.Version,
					}
				}
			}
			p.dirty = true
			delete(p.open, a.Path)
		case planner.NoOp:
			st.NoOps++
			if a.Absent {
				if _, ok := p.baseline[a.Path]; ok {
					delete(p.baseline, a.Path)
					p.dirty = true
				}
			} else {
				meta := planner.FileMeta{Size: a.Size, MD5: a.MD5, Version: a.Version}
				if meta.Version == 0 {
					meta.Version = p.baseline[a.Path].Version
				}
				if p.baseline[a.Path] != meta {
					p.baseline[a.Path] = meta
					p.dirty = true
				}
			}
			delete(p.open, a.Path)
		case planner.Defer:
			st.Deferred++
		}
	}

	if p.dirty && p.cfg.BaselinePath != "" {
		if err := SaveBaseline(p.cfg.BaselinePath, p.baseline); err != nil {
			return st, 0, false, err
		}
		p.dirty = false
	}

	// Next wake: the earlier of the buffer's next release and the plan's
	// next defer deadline. Failed transfers retry at the caller's next
	// natural tick.
	wakeAt, wake := p.buf.NextRelease()
	if out.Wake && (!wake || out.NextWake < wakeAt) {
		wakeAt, wake = out.NextWake, true
	}
	if st.Errors > 0 && !wake {
		wakeAt, wake = now, true
	}
	return st, wakeAt, wake, nil
}
