package watchsync

import (
	"crypto/md5"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudsync/internal/planner"
)

func testBaseline() map[string]planner.FileMeta {
	return map[string]planner.FileMeta{
		"notes.txt": {Size: 11, MD5: md5.Sum([]byte("hello world")), Version: 3},
		"deep/a":    {Size: 0, MD5: md5.Sum(nil), Version: 1},
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	want := testBaseline()
	if err := SaveBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(want))
	}
	for name, w := range want {
		if g := got[name]; g != w {
			t.Fatalf("%q loaded as %+v, want %+v", name, g, w)
		}
	}
}

func TestBaselineMissingIsFreshStart(t *testing.T) {
	got, err := LoadBaseline(filepath.Join(t.TempDir(), "nope", "baseline.json"))
	if err != nil {
		t.Fatalf("missing baseline must be a fresh start, got %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh start has %d entries", len(got))
	}
}

// TestBaselineTruncated: a torn write (no atomic rename, e.g. a
// hand-edited file or a foreign tool) must surface as an error at every
// cut point, never as a silently partial baseline.
func TestBaselineTruncated(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "baseline.json")
	if err := SaveBaseline(full, testBaseline()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "torn.json")
	for cut := 1; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadBaseline(path)
		if err == nil && len(got) != len(testBaseline()) {
			t.Fatalf("cut %d: truncated baseline silently loaded %d entries", cut, len(got))
		}
	}
}

// TestBaselineCorrupt covers the decode-time rejections: invalid JSON,
// a format version from the future, and entries whose hashes do not
// decode to an MD5.
func TestBaselineCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"format": 1, "files"`,
		"wrong type":    `{"format": 1, "files": {"a": "nope"}}`,
		"future format": `{"format": 99, "files": {}}`,
		"bad hex hash":  `{"format": 1, "files": {"a": {"size": 1, "md5": "zz", "version": 1}}}`,
		"short hash":    `{"format": 1, "files": {"a": {"size": 1, "md5": "abcd", "version": 1}}}`,
	}
	for label, body := range cases {
		path := filepath.Join(t.TempDir(), "baseline.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBaseline(path); err == nil {
			t.Errorf("%s: corrupt baseline loaded without error", label)
		}
	}
}

// TestBaselineMidRenameCrash simulates kill -9 between the temp-file
// fsync and the rename: the temp file exists, the target still holds
// the previous baseline. Recovery must load the old baseline untouched,
// and the next successful save must supersede it while the stale temp
// file stays inert (ignored, never resurrected as state).
func TestBaselineMidRenameCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	old := map[string]planner.FileMeta{
		"stable.txt": {Size: 6, MD5: md5.Sum([]byte("stable")), Version: 1},
	}
	if err := SaveBaseline(path, old); err != nil {
		t.Fatal(err)
	}

	// The crash artifact: a fully written, fsynced temp file that never
	// got renamed — exactly what SaveBaseline leaves at that window.
	tmp, err := os.CreateTemp(dir, ".baseline-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte(`{"format": 1, "files": {"doomed.txt": {"size": 1, "md5": "00000000000000000000000000000000", "version": 9}}}`)); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["stable.txt"] != old["stable.txt"] {
		t.Fatalf("recovery loaded %+v, want the pre-crash baseline", got)
	}

	next := testBaseline()
	if err := SaveBaseline(path, next); err != nil {
		t.Fatal(err)
	}
	got, err = LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(next) {
		t.Fatalf("post-crash save loaded %d entries, want %d", len(got), len(next))
	}
	for name := range got {
		if name == "doomed.txt" {
			t.Fatal("stale temp file's content leaked into the baseline")
		}
	}
}

// TestBaselineSaveIntoMissingDir: SaveBaseline does not create parent
// directories (the daemon does, once, at startup); it must fail cleanly
// and leave no droppings.
func TestBaselineSaveIntoMissingDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nope", "baseline.json")
	if err := SaveBaseline(path, testBaseline()); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("failed save left temp dropping %s", e.Name())
		}
	}
}
