package watchsync

import (
	"sort"
	"time"
)

// Pending is one coalesced change waiting to be planned: the final
// disposition of a path (removed or not) plus every write timestamp
// observed since the path last left the buffer, ascending.
type Pending struct {
	Path   string
	Remove bool
	Writes []time.Duration
}

type bufEntry struct {
	remove bool
	writes []time.Duration
	seen   time.Duration // when the most recent event was observed
}

// Buffer is the debounced change buffer between the observer and the
// planner. Every event lands here first; a path is released only once
// it has been quiet for the debounce window, and no matter how many
// events piled up in that window, the path drains as exactly ONE
// Pending record. A write-write-rename burst therefore reaches the
// planner as one record for the new name and one removal for the old —
// never as a stutter of partial changes.
//
// Debounce runs on observation time (when Note was called), not on the
// events' write timestamps: a startup scan reporting hours-old mtimes
// still gets one full quiet window before the first plan. Not safe for
// concurrent use; the pipeline owns it.
type Buffer struct {
	// Debounce is the quiet window. Zero releases entries at the next
	// Drain — coalescing within one poll still applies.
	Debounce time.Duration

	entries map[string]*bufEntry
}

// NewBuffer returns an empty buffer with the given quiet window.
func NewBuffer(debounce time.Duration) *Buffer {
	return &Buffer{Debounce: debounce, entries: make(map[string]*bufEntry)}
}

// Note records one observed event at observation time now. Events for
// one path coalesce: the latest remove/write disposition wins, and
// write timestamps accumulate in ascending order (out-of-order mtimes
// are clamped up, so the planner's monotonicity contract always
// holds).
func (b *Buffer) Note(ev Event, now time.Duration) {
	e := b.entries[ev.Path]
	if e == nil {
		e = &bufEntry{}
		b.entries[ev.Path] = e
	}
	if ev.Remove {
		e.remove = true
		e.writes = nil
	} else {
		e.remove = false
		w := ev.Write
		if n := len(e.writes); n > 0 && w < e.writes[n-1] {
			w = e.writes[n-1]
		}
		e.writes = append(e.writes, w)
	}
	if now > e.seen {
		e.seen = now
	}
}

// Len reports how many paths are currently buffered.
func (b *Buffer) Len() int { return len(b.entries) }

// Drain releases every path whose last event is at least the debounce
// window old, removing it from the buffer. Results are sorted by path.
func (b *Buffer) Drain(now time.Duration) []Pending {
	var out []Pending
	for path, e := range b.entries {
		if now-e.seen < b.Debounce {
			continue
		}
		out = append(out, Pending{Path: path, Remove: e.remove, Writes: e.writes})
		delete(b.entries, path)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// NextRelease reports the earliest virtual time at which a currently
// buffered path becomes drainable (ok=false when the buffer is empty).
func (b *Buffer) NextRelease() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, e := range b.entries {
		due := e.seen + b.Debounce
		if !found || due < min {
			min, found = due, true
		}
	}
	return min, found
}
