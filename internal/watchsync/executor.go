package watchsync

import (
	"fmt"
	"sync"

	"cloudsync/internal/planner"
	"cloudsync/internal/protocol"
	"cloudsync/internal/syncnet"
)

// Result is the outcome of executing one transfer action.
type Result struct {
	Action planner.Action
	// Stats is filled for uploads and deltas.
	Stats syncnet.UploadStats
	// Version is the committed server-side version (uploads/deltas).
	Version uint64
	Err     error
}

// Executor applies a plan's transfer actions over a pool of sync
// clients. Each worker owns one client (syncnet clients are not safe
// for concurrent use); actions are pulled from a shared queue, so a
// slow delta on one file never blocks an independent upload on
// another. The planner emits at most one action per path, which is
// what makes per-path ordering a non-issue here.
type Executor struct {
	workers []*syncnet.Client
}

// NewExecutor builds an executor over the given worker clients. At
// least one worker is required.
func NewExecutor(workers ...*syncnet.Client) *Executor {
	if len(workers) == 0 {
		panic("watchsync: executor needs at least one worker client")
	}
	return &Executor{workers: workers}
}

// Workers reports the pool size.
func (e *Executor) Workers() int { return len(e.workers) }

// List fetches the remote listing through the first worker and primes
// every other worker with the learned file identities, so any worker
// can delta-update or delete any listed file.
func (e *Executor) List() ([]protocol.ListEntry, error) {
	entries, err := e.workers[0].List()
	if err != nil {
		return nil, err
	}
	for _, w := range e.workers[1:] {
		for _, en := range entries {
			w.Prime(en.Name, en.FileID, !en.Deleted)
		}
	}
	return entries, nil
}

// Apply executes the plan's transfer actions (uploads, deltas,
// deletes) in parallel and returns one Result per transfer, in the
// plan's order. Defer and no-op actions are skipped — they carry no
// network work. read supplies file content by path and must be safe
// for concurrent use. After the wave completes, file identities
// learned by one worker are propagated to the whole pool.
func (e *Executor) Apply(actions []planner.Action, read func(string) ([]byte, error)) []Result {
	var transfers []planner.Action
	for _, a := range actions {
		switch a.Kind {
		case planner.Upload, planner.Delta, planner.Delete:
			transfers = append(transfers, a)
		}
	}
	results := make([]Result, len(transfers))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(c *syncnet.Client) {
			defer wg.Done()
			for i := range jobs {
				results[i] = e.run(c, transfers[i], read)
			}
		}(w)
	}
	for i := range transfers {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Propagate learned identities: a file uploaded by worker 2 must be
	// deletable by worker 0 in a later round.
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			continue
		}
		for _, w := range e.workers {
			if id, ok := w.FileID(r.Action.Path); ok {
				for _, other := range e.workers {
					other.Prime(r.Action.Path, id, r.Action.Kind != planner.Delete)
				}
				break
			}
		}
	}
	return results
}

func (e *Executor) run(c *syncnet.Client, a planner.Action, read func(string) ([]byte, error)) Result {
	res := Result{Action: a}
	switch a.Kind {
	case planner.Upload, planner.Delta:
		data, err := read(a.Path)
		if err != nil {
			res.Err = fmt.Errorf("watchsync: reading %s: %w", a.Path, err)
			return res
		}
		stats, err := c.Upload(a.Path, data)
		res.Stats, res.Version, res.Err = stats, stats.Version, err
	case planner.Delete:
		res.Err = c.Delete(a.Path)
	}
	return res
}
