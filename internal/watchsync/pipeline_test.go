package watchsync

import (
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/planner"
	"cloudsync/internal/syncnet"
)

// leakCheck fails the test if any goroutine running sync code outlives
// it. Register FIRST: t.Cleanup is LIFO, so the check runs after the
// rig's own teardown has closed clients and server.
func leakCheck(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked := syncGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%d goroutine(s) leaked:\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// syncGoroutines returns the stacks of goroutines currently inside
// syncnet code — server handlers, executor workers mid-transfer.
func syncGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "cloudsync/internal/syncnet") &&
			!strings.Contains(g, "runtime.Stack") {
			out = append(out, g)
		}
	}
	return out
}

// rig is one in-memory watch-mode deployment: a real server, a worker
// pool over net.Pipe connections sharing one client-side ledger, a
// MemSource tree, and the pipeline wiring them together.
type rig struct {
	srv     *syncnet.Server
	srvLed  *ledger.Ledger
	cliLed  *ledger.Ledger
	clients []*syncnet.Client
	src     *MemSource
	pipe    *Pipeline
	closed  bool
}

func newRig(t *testing.T, workers int, cfg Config) *rig {
	t.Helper()
	leakCheck(t)
	r, err := buildRig(workers, cfg, "alice")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.close() })
	if err := r.pipe.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	return r
}

func buildRig(workers int, cfg Config, user string) (*rig, error) {
	r := &rig{
		srvLed: ledger.New(),
		cliLed: ledger.New(),
		src:    NewMemSource(),
	}
	r.srv = syncnet.NewServer(syncnet.ServerConfig{Ledger: r.srvLed})
	for i := 0; i < workers; i++ {
		cc, sc := net.Pipe()
		go r.srv.HandleConn(sc)
		c, err := syncnet.NewClient(cc, user, fmt.Sprintf("w%d", i), syncnet.WithLedger(r.cliLed))
		if err != nil {
			r.close()
			return nil, err
		}
		r.clients = append(r.clients, c)
	}
	r.pipe = NewPipeline(r.src, NewExecutor(r.clients...), cfg)
	return r, nil
}

// close tears the rig down (idempotent): clients first — sweeping
// ledger residuals — then the server.
func (r *rig) close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, c := range r.clients {
		c.Close()
	}
	r.srv.Close()
}

// wire returns the client-side wire total (both directions, all
// workers).
func (r *rig) wire() int64 {
	var total int64
	for _, c := range r.clients {
		in, out := c.WireTotals()
		total += in + out
	}
	return total
}

// step polls and ticks once at virtual time now.
func (r *rig) step(t *testing.T, now time.Duration) TickStats {
	t.Helper()
	if err := r.pipe.Poll(now); err != nil {
		t.Fatal(err)
	}
	st, _, _, err := r.pipe.Tick(now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors > 0 {
		t.Fatalf("tick at %v had %d transfer errors", now, st.Errors)
	}
	return st
}

func TestPipelineLifecycle(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	r := newRig(t, 2, Config{BaselinePath: base})

	r.src.WriteFile("a.txt", []byte("alpha alpha alpha"), 0)
	r.src.WriteFile("b.txt", []byte("beta beta beta beta"), 0)
	st := r.step(t, 0)
	if st.Uploads != 2 || st.Deltas != 0 {
		t.Fatalf("initial sync: %+v, want 2 uploads", st)
	}

	// Append to a.txt: must go incremental, not full.
	r.src.WriteFile("a.txt", []byte("alpha alpha alpha + more"), time.Second)
	st = r.step(t, time.Second)
	if st.Deltas != 1 || st.Uploads != 0 {
		t.Fatalf("modify: %+v, want 1 delta", st)
	}

	r.src.RemoveFile("b.txt")
	st = r.step(t, 2*time.Second)
	if st.Deletes != 1 {
		t.Fatalf("remove: %+v, want 1 delete", st)
	}

	snap := r.srv.Snapshot("alice")
	if f, ok := snap["a.txt"]; !ok || string(f.Data) != "alpha alpha alpha + more" {
		t.Fatalf("server a.txt = %+v", f)
	}
	if f, ok := snap["b.txt"]; !ok || !f.Deleted {
		t.Fatalf("server b.txt not fake-deleted: %+v", f)
	}

	// A quiet tick plans nothing and stays quiet.
	st = r.step(t, 3*time.Second)
	if st.Planned != 0 {
		t.Fatalf("quiet tick planned %d actions", st.Planned)
	}
	if r.pipe.PendingPaths() != 0 {
		t.Fatalf("%d paths still pending", r.pipe.PendingPaths())
	}

	// The persisted baseline holds exactly the live file.
	loaded, err := LoadBaseline(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("baseline = %v, want just a.txt", loaded)
	}
	if m := loaded["a.txt"]; m.Size != int64(len("alpha alpha alpha + more")) {
		t.Fatalf("baseline a.txt = %+v", m)
	}
}

// TestPipelineRestartResumes is the crash-recovery story: a new daemon
// generation loading the persisted baseline must recognize unchanged
// files without re-uploading a byte, and must still be able to delete
// a file only the previous generation ever uploaded.
func TestPipelineRestartResumes(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	r := newRig(t, 1, Config{BaselinePath: base})
	content := []byte("generation one content, sizeable enough to notice on the wire")
	r.src.WriteFile("doc.txt", content, 0)
	if st := r.step(t, 0); st.Uploads != 1 {
		t.Fatalf("gen1 sync: %+v", st)
	}
	r2copy := r.src.Files() // the tree survives the "crash"
	for _, c := range r.clients {
		c.Close() // daemon dies; server keeps running
	}

	// Generation two: fresh client (empty ids/known), same server, same
	// baseline file.
	cc, sc := net.Pipe()
	go r.srv.HandleConn(sc)
	c2, err := syncnet.NewClient(cc, "alice", "gen2", syncnet.WithLedger(r.cliLed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	src2 := NewMemSource()
	for p, d := range r2copy {
		src2.WriteFile(p, d, 0) // startup rescan reports everything as created
	}
	pipe2 := NewPipeline(src2, NewExecutor(c2), Config{BaselinePath: base})
	if err := pipe2.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := pipe2.Poll(time.Minute); err != nil {
		t.Fatal(err)
	}
	wire0, _ := c2.WireTotals()
	st, _, _, err := pipe2.Tick(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Uploads != 0 || st.Deltas != 0 || st.Errors != 0 {
		t.Fatalf("restart re-synced unchanged content: %+v", st)
	}
	wire1, _ := c2.WireTotals()
	if moved := wire1 - wire0; moved != 0 {
		t.Fatalf("restart reconciliation read %d wire bytes, want 0 (listing happened at bootstrap)", moved)
	}

	// Deleting a file gen2 never uploaded works because the bootstrap
	// listing primed the file's server identity.
	src2.RemoveFile("doc.txt")
	if err := pipe2.Poll(time.Minute + time.Second); err != nil {
		t.Fatal(err)
	}
	st, _, _, err = pipe2.Tick(time.Minute + time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deletes != 1 || st.Errors != 0 {
		t.Fatalf("gen2 delete: %+v", st)
	}
	if f := r.srv.Snapshot("alice")["doc.txt"]; !f.Deleted {
		t.Fatalf("doc.txt still live server-side: %+v", f)
	}
}

// TestPipelineRestartDetectsOfflineDelete: a file deleted while no
// watcher was running produces no event on restart — the rescan simply
// never mentions it. The first poll must reconcile the loaded baseline
// against that full listing and delete the file remotely; otherwise it
// is stranded on the server forever.
func TestPipelineRestartDetectsOfflineDelete(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	r := newRig(t, 1, Config{BaselinePath: base})
	r.src.WriteFile("keep.txt", []byte("survives the outage"), 0)
	r.src.WriteFile("gone.txt", []byte("deleted while the daemon was down"), 0)
	if st := r.step(t, 0); st.Uploads != 2 {
		t.Fatalf("gen1 sync: %+v", st)
	}
	for _, c := range r.clients {
		c.Close()
	}

	// Generation two's rescan sees only keep.txt; gone.txt vanished
	// offline, so no remove event will ever name it.
	cc, sc := net.Pipe()
	go r.srv.HandleConn(sc)
	c2, err := syncnet.NewClient(cc, "alice", "gen2", syncnet.WithLedger(r.cliLed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	src2 := NewMemSource()
	src2.WriteFile("keep.txt", []byte("survives the outage"), 0)
	pipe2 := NewPipeline(src2, NewExecutor(c2), Config{BaselinePath: base})
	if err := pipe2.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := pipe2.Poll(time.Minute); err != nil {
		t.Fatal(err)
	}
	st, _, _, err := pipe2.Tick(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deletes != 1 || st.Uploads != 0 || st.Deltas != 0 || st.Errors != 0 {
		t.Fatalf("offline-delete reconciliation: %+v", st)
	}
	if f := r.srv.Snapshot("alice")["gone.txt"]; !f.Deleted {
		t.Fatalf("gone.txt still live server-side: %+v", f)
	}
	saved, err := LoadBaseline(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := saved["gone.txt"]; ok {
		t.Fatal("gone.txt still in the persisted baseline")
	}
	if _, ok := saved["keep.txt"]; !ok {
		t.Fatal("keep.txt missing from the persisted baseline")
	}
}

// TestPipelineASDBatchesBurst: under ASD a burst of quick edits
// reaches the server as one delta once the burst ends, not one
// transfer per edit.
func TestPipelineASDBatchesBurst(t *testing.T) {
	r := newRig(t, 1, Config{
		Defer: planner.DeferConfig{
			Mode: planner.DeferASD, Epsilon: 200 * time.Millisecond, TMax: 10 * time.Second,
		},
	})
	// Edits every 300ms; ASD's estimate converges to 300ms+2·200ms =
	// 700ms, so the window outlives each gap and the burst coalesces.
	payload := []byte("burst content v0")
	r.src.WriteFile("burst.txt", payload, 0)
	transfers := 0
	var now time.Duration
	for i := 1; i <= 6; i++ {
		now = time.Duration(i) * 300 * time.Millisecond
		payload = append(payload, []byte(fmt.Sprintf(" v%d", i))...)
		r.src.WriteFile("burst.txt", payload, now)
		st := r.step(t, now)
		transfers += st.Uploads + st.Deltas
	}
	if transfers > 1 {
		t.Fatalf("%d transfers during the burst; ASD should have deferred (first write may sync once)", transfers)
	}
	// Quiesce: within TMax the deferred change must flush and converge.
	for i := 0; r.pipe.PendingPaths() > 0; i++ {
		if i > 200 {
			t.Fatalf("pipeline never flushed the deferred change")
		}
		now += 300 * time.Millisecond
		r.step(t, now)
	}
	if got := r.srv.Snapshot("alice")["burst.txt"]; string(got.Data) != string(payload) {
		t.Fatalf("server content %q, want %q", got.Data, payload)
	}
}
