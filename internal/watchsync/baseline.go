package watchsync

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cloudsync/internal/planner"
)

// baselineDoc is the on-disk shape of the persisted baseline. Content
// hashes are hex strings so the file stays inspectable with plain
// tools; the version field guards against future format changes.
type baselineDoc struct {
	Format int                     `json:"format"`
	Files  map[string]baselineFile `json:"files"`
}

type baselineFile struct {
	Size    int64  `json:"size"`
	MD5     string `json:"md5"`
	Version uint64 `json:"version"`
}

const baselineFormat = 1

// LoadBaseline reads the persisted last-synced snapshot. A missing
// file is a fresh start, not an error: the daemon's first run begins
// from an empty baseline.
func LoadBaseline(path string) (map[string]planner.FileMeta, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]planner.FileMeta{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("watchsync: reading baseline: %w", err)
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("watchsync: parsing baseline %s: %w", path, err)
	}
	if doc.Format != baselineFormat {
		return nil, fmt.Errorf("watchsync: baseline %s has format %d, want %d", path, doc.Format, baselineFormat)
	}
	out := make(map[string]planner.FileMeta, len(doc.Files))
	for name, f := range doc.Files {
		m := planner.FileMeta{Size: f.Size, Version: f.Version}
		sum, err := hex.DecodeString(f.MD5)
		if err != nil || len(sum) != len(m.MD5) {
			return nil, fmt.Errorf("watchsync: baseline %s: bad hash for %q", path, name)
		}
		copy(m.MD5[:], sum)
		out[name] = m
	}
	return out, nil
}

// SaveBaseline persists the snapshot atomically: it writes a temporary
// file in the same directory and renames it over the target, so a
// crash mid-save leaves either the old baseline or the new one —
// never a torn file. The planner's idempotence guarantees either
// outcome is safe: re-planning from the stale baseline just re-derives
// no-ops for everything already synced.
func SaveBaseline(path string, files map[string]planner.FileMeta) error {
	doc := baselineDoc{Format: baselineFormat, Files: make(map[string]baselineFile, len(files))}
	for name, m := range files {
		doc.Files[name] = baselineFile{
			Size:    m.Size,
			MD5:     hex.EncodeToString(m.MD5[:]),
			Version: m.Version,
		}
	}
	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return fmt.Errorf("watchsync: encoding baseline: %w", err)
	}
	raw = append(raw, '\n')

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".baseline-*.tmp")
	if err != nil {
		return fmt.Errorf("watchsync: saving baseline: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(raw)
	serr := tmp.Sync()
	cerr := tmp.Close()
	for _, e := range []error{werr, serr, cerr} {
		if e != nil {
			os.Remove(tmpName)
			return fmt.Errorf("watchsync: saving baseline: %w", e)
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("watchsync: saving baseline: %w", err)
	}
	return nil
}
