package watchsync

import (
	"bytes"
	"fmt"
	"net"
	"time"

	"cloudsync/internal/content"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/planner"
	"cloudsync/internal/syncnet"
)

// ReplayConfig parameterizes a frequent-modification replay: Files
// files are created, then each is appended to Edits times every
// Interval of virtual time — the pathological workload of the paper's
// §5 (frequent small modifications), where a naive client syncs every
// keystroke and an adaptive one batches them.
type ReplayConfig struct {
	Files    int
	Edits    int
	Interval time.Duration
	// Step is the virtual poll interval (how often the pipeline looks).
	Step time.Duration
	// InitialSize is each file's starting size; EditBytes is appended
	// per edit.
	InitialSize int
	EditBytes   int
	Seed        int64
	Defer       planner.DeferConfig
	Debounce    time.Duration
	// Workers is the executor pool size (0 = 1).
	Workers int
}

// ReplayResult is what one replay cost and achieved.
type ReplayResult struct {
	// Client/server wire totals (both directions each).
	ClientWire int64
	ServerWire int64
	// Exact per-cause attribution on each end.
	ClientLedger ledger.Snapshot
	ServerLedger ledger.Snapshot
	// FreshBytes is the total content the workload produced locally —
	// the TUE denominator.
	FreshBytes int64
	// Transfer counts.
	Uploads, Deltas, Deferred int
	// Rounds is how many virtual ticks ran; SyncPoints is how many of
	// them moved bytes.
	Rounds, SyncPoints int
}

// TUE is the replay's traffic utilization efficiency: wire bytes spent
// per byte of fresh local data (client side, both directions — the
// paper's Eq. 1 measured at the access link).
func (r *ReplayResult) TUE() float64 {
	if r.FreshBytes == 0 {
		return 0
	}
	return float64(r.ClientWire) / float64(r.FreshBytes)
}

// ReplayFreqMod runs the frequent-modification workload through a real
// client/server pair over in-memory pipes, driven entirely on the
// virtual clock (no sleeps — a multi-minute trace replays in
// milliseconds). It returns the exact wire cost on both ends, with
// per-cause ledgers, and fails if the server did not converge to the
// local tree by the end of the run.
func ReplayFreqMod(cfg ReplayConfig) (*ReplayResult, error) {
	if cfg.Files <= 0 || cfg.Edits < 0 {
		return nil, fmt.Errorf("watchsync: replay needs at least one file")
	}
	if cfg.Step <= 0 {
		cfg.Step = 100 * time.Millisecond
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.InitialSize <= 0 {
		cfg.InitialSize = 16 << 10
	}
	if cfg.EditBytes <= 0 {
		cfg.EditBytes = 256
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}

	srvLed := ledger.New()
	srv := syncnet.NewServer(syncnet.ServerConfig{Ledger: srvLed})
	defer srv.Close()

	cliLed := ledger.New()
	clients := make([]*syncnet.Client, workers)
	for i := range clients {
		cc, sc := net.Pipe()
		go srv.HandleConn(sc)
		c, err := syncnet.NewClient(cc, "replay", fmt.Sprintf("w%d", i),
			syncnet.WithLedger(cliLed))
		if err != nil {
			return nil, err
		}
		defer c.Close()
		clients[i] = c
	}

	src := NewMemSource()
	exec := NewExecutor(clients...)
	pipe := NewPipeline(src, exec, Config{Debounce: cfg.Debounce, Defer: cfg.Defer})
	if err := pipe.Bootstrap(); err != nil {
		return nil, err
	}

	res := &ReplayResult{}

	// The edit script, precomputed: file i is created at t=0 and edited
	// at k*Interval for k=1..Edits. Content is deterministic from the
	// seed; every edit appends fresh bytes (an append is the friendliest
	// case for delta sync and the worst for naive full re-upload).
	files := make([][]byte, cfg.Files)
	for i := range files {
		files[i] = content.Random(int64(cfg.InitialSize), cfg.Seed+int64(i)*7919).Bytes()
		src.WriteFile(fname(i), files[i], 0)
		res.FreshBytes += int64(len(files[i]))
	}

	end := time.Duration(cfg.Edits) * cfg.Interval
	nextEdit := make([]int, cfg.Files) // next edit index per file (1-based)
	for i := range nextEdit {
		nextEdit[i] = 1
	}

	tick := func(now time.Duration) error {
		if err := pipe.Poll(now); err != nil {
			return err
		}
		st, _, _, err := pipe.Tick(now)
		if err != nil {
			return err
		}
		res.Rounds++
		res.Uploads += st.Uploads
		res.Deltas += st.Deltas
		res.Deferred += st.Deferred
		if st.Uploads+st.Deltas+st.Deletes > 0 {
			res.SyncPoints++
		}
		if st.Errors > 0 {
			return fmt.Errorf("watchsync: replay transfer errors at t=%v", now)
		}
		return nil
	}

	for now := time.Duration(0); now <= end; now += cfg.Step {
		for i := 0; i < cfg.Files; i++ {
			for nextEdit[i] <= cfg.Edits && time.Duration(nextEdit[i])*cfg.Interval <= now {
				at := time.Duration(nextEdit[i]) * cfg.Interval
				extra := content.Random(int64(cfg.EditBytes),
					cfg.Seed+int64(i)*7919+int64(nextEdit[i])*104729).Bytes()
				files[i] = append(files[i], extra...)
				src.WriteFile(fname(i), files[i], at)
				res.FreshBytes += int64(len(extra))
				nextEdit[i]++
			}
		}
		if err := tick(now); err != nil {
			return nil, err
		}
	}

	// Quiesce: keep ticking past the last edit until every deferred or
	// buffered change has drained. TMax bounds how long that can take.
	now := end
	for i := 0; pipe.PendingPaths() > 0; i++ {
		if i > 10_000 {
			return nil, fmt.Errorf("watchsync: replay did not quiesce (%d paths pending)", pipe.PendingPaths())
		}
		now += cfg.Step
		if err := tick(now); err != nil {
			return nil, err
		}
	}

	// Convergence oracle: the server's live files must equal the local
	// tree exactly.
	snap := srv.Snapshot("replay")
	local := src.Files()
	for name, want := range local {
		got, ok := snap[name]
		if !ok || got.Deleted {
			return nil, fmt.Errorf("watchsync: replay did not converge: %s missing remotely", name)
		}
		if !bytes.Equal(got.Data, want) {
			return nil, fmt.Errorf("watchsync: replay did not converge: %s differs", name)
		}
	}
	for name, f := range snap {
		if _, ok := local[name]; !ok && !f.Deleted {
			return nil, fmt.Errorf("watchsync: replay did not converge: %s exists remotely only", name)
		}
	}

	// Close the clients before snapshotting the ledgers so residual
	// partial-frame bytes are swept and the balance is exact.
	var in, out int64
	for _, c := range clients {
		ci, co := c.WireTotals()
		in += ci
		out += co
		if err := c.Close(); err != nil {
			return nil, err
		}
	}
	res.ClientWire = in + out
	res.ClientLedger = cliLed.Snapshot()
	// Drain the server before snapshotting its side: Client.Close only
	// closes the client half of the pipe, and the handler goroutine may
	// still be accounting the final message. Close waits for all
	// handlers (and is idempotent, so the defer stays harmless).
	if err := srv.Close(); err != nil {
		return nil, err
	}
	stats := srv.Stats()
	res.ServerWire = stats.BytesReceived + stats.BytesSent
	res.ServerLedger = srvLed.Snapshot()
	return res, nil
}

func fname(i int) string { return fmt.Sprintf("doc-%02d.txt", i) }
