package watchsync

import (
	"reflect"
	"testing"
	"time"
)

// TestBufferCoalescesBurst pins the debounce contract end to end on a
// fake clock: a write-write-rename burst arriving within one debounce
// window must drain as exactly one change record per final path — one
// create for the new name, one removal for the old — never as a
// stutter of intermediate changes.
func TestBufferCoalescesBurst(t *testing.T) {
	b := NewBuffer(500 * time.Millisecond)

	// t=0ms..120ms: two writes to draft.txt, then a rename to final.txt
	// (which a poll observes as create(final) + delete(draft)).
	b.Note(Event{Path: "draft.txt", Write: 0}, 0)
	b.Note(Event{Path: "draft.txt", Write: 60 * time.Millisecond}, 60*time.Millisecond)
	b.Note(Event{Path: "final.txt", Write: 120 * time.Millisecond}, 120*time.Millisecond)
	b.Note(Event{Path: "draft.txt", Remove: true}, 120*time.Millisecond)

	// Mid-window: nothing may drain, no matter how often we ask.
	for _, now := range []time.Duration{200 * time.Millisecond, 400 * time.Millisecond, 619 * time.Millisecond} {
		if got := b.Drain(now); len(got) != 0 {
			t.Fatalf("Drain(%v) released %v before the window closed", now, got)
		}
	}
	if due, ok := b.NextRelease(); !ok || due != 620*time.Millisecond {
		t.Fatalf("NextRelease = (%v, %v), want 620ms", due, ok)
	}

	got := b.Drain(620 * time.Millisecond)
	want := []Pending{
		{Path: "draft.txt", Remove: true},
		{Path: "final.txt", Writes: []time.Duration{120 * time.Millisecond}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("burst drained as %+v, want %+v", got, want)
	}
	if b.Len() != 0 {
		t.Fatalf("%d entries left after drain", b.Len())
	}
	// Draining again must not double-fire.
	if again := b.Drain(10 * time.Second); len(again) != 0 {
		t.Fatalf("second drain released %+v — the burst fired twice", again)
	}
}

// TestBufferWriteAccumulation: every write in the window lands in the
// one drained record, ascending, so the planner's deferment policies
// see the full update history.
func TestBufferWriteAccumulation(t *testing.T) {
	b := NewBuffer(100 * time.Millisecond)
	times := []time.Duration{0, 20 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond}
	for _, w := range times {
		b.Note(Event{Path: "f", Write: w}, w)
	}
	got := b.Drain(time.Second)
	if len(got) != 1 {
		t.Fatalf("drained %d records, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0].Writes, times) {
		t.Fatalf("writes = %v, want %v", got[0].Writes, times)
	}
}

// TestBufferClampsRetrogradeWrites: mtimes can go backwards (clock
// skew, touch -d); the buffer clamps them so the drained record is
// still ascending — the planner panics on anything else.
func TestBufferClampsRetrogradeWrites(t *testing.T) {
	b := NewBuffer(0)
	b.Note(Event{Path: "f", Write: 5 * time.Second}, 5*time.Second)
	b.Note(Event{Path: "f", Write: 2 * time.Second}, 6*time.Second)
	got := b.Drain(6 * time.Second)
	if len(got) != 1 {
		t.Fatalf("drained %d records, want 1", len(got))
	}
	want := []time.Duration{5 * time.Second, 5 * time.Second}
	if !reflect.DeepEqual(got[0].Writes, want) {
		t.Fatalf("writes = %v, want %v (clamped)", got[0].Writes, want)
	}
}

// TestBufferRemoveThenRewrite: a delete followed by a re-create in the
// same window is a write, not a removal — last disposition wins.
func TestBufferRemoveThenRewrite(t *testing.T) {
	b := NewBuffer(0)
	b.Note(Event{Path: "f", Remove: true}, 0)
	b.Note(Event{Path: "f", Write: 10 * time.Millisecond}, 10*time.Millisecond)
	got := b.Drain(time.Second)
	if len(got) != 1 || got[0].Remove {
		t.Fatalf("remove+rewrite drained as %+v, want one non-remove record", got)
	}
}

// TestBufferQuietWindowSlides: each new event pushes the release time
// out — the window measures quiet time, not age.
func TestBufferQuietWindowSlides(t *testing.T) {
	b := NewBuffer(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 90 * time.Millisecond
		b.Note(Event{Path: "f", Write: at}, at)
		if got := b.Drain(at); len(got) != 0 {
			t.Fatalf("entry released at %v while events kept arriving", at)
		}
	}
	if got := b.Drain(9*90*time.Millisecond + 100*time.Millisecond); len(got) != 1 {
		t.Fatalf("entry did not release after the burst went quiet (got %d records)", len(got))
	}
}
