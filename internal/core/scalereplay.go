package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/cloud"
	"cloudsync/internal/metrics"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

// The scale replay answers the capacity question the single-account
// TraceReplay cannot: what does replaying the trace cost at N× the user
// population, and does the simulator's TUE stay exact as the replay
// fans out? Every trace user becomes an independent account (its own
// simclock, folder, client, and capture) replayed as one unit on the
// worker pool; all accounts of one service share one sharded cloud.
// A multiplier of N clones each user population N times with a
// deterministic content-seed offset per clone, so clones are genuinely
// distinct users whose workloads are byte-for-byte equivalent — which
// is what makes per-service TUE provably identical at every N and
// worker count, and any drift a bug.

// cloneContentStride separates the content-identity space of each
// cloned population. Trace ContentIDs are small sequential integers,
// so offsetting by a large stride can never collide.
const cloneContentStride = int64(1) << 40

// ScaleServiceResult aggregates one service's scale replay.
type ScaleServiceResult struct {
	Service string
	// Accounts is the number of user accounts replayed (trace users ×
	// multiplier); Files counts files created across all of them.
	Accounts int
	Files    int
	// UpdateBytes and Traffic sum over all accounts; TUE is their ratio.
	UpdateBytes int64
	Traffic     int64
	TUE         float64
}

// ScaleResult is one scale replay run.
type ScaleResult struct {
	Multiplier int
	Accounts   int
	Files      int
	Services   []ScaleServiceResult
	// Wall is the replay's wall-clock time (scheduling + simulation of
	// every account, excluding trace generation).
	Wall time.Duration
	// AllocBytes and AllocObjects are the replay's heap allocation
	// totals (runtime.MemStats deltas).
	AllocBytes   uint64
	AllocObjects uint64
	// PeakRSSBytes is the process's high-water resident set size
	// (Linux VmHWM) after the replay; 0 when the platform doesn't
	// expose it. It is a process-lifetime high-water mark, not a
	// per-run delta.
	PeakRSSBytes int64
}

// userPartition is one trace user's records, with their global record
// indices preserved for stable file naming.
type userPartition struct {
	user    string
	service string
	idx     []int
}

// partitionByUser groups records by user in first-appearance order.
// The generator emits each user's records contiguously, but the
// grouping does not rely on that.
func partitionByUser(recs []trace.Record) []userPartition {
	order := make(map[string]int)
	var parts []userPartition
	for i, r := range recs {
		p, ok := order[r.User]
		if !ok {
			p = len(parts)
			order[r.User] = p
			parts = append(parts, userPartition{user: r.User, service: r.Service})
		}
		parts[p].idx = append(parts[p].idx, i)
	}
	return parts
}

// scaleServices returns the replayed service set: the six PC clients
// plus the reference design.
func scaleServices() []service.Name {
	return append(service.All(), service.Reference)
}

func scaleCloudConfig(n service.Name) cloud.Config {
	if n == service.Reference {
		return service.ReferenceCloudConfig()
	}
	return service.CloudConfig(n)
}

// replayAccount replays one account's records through a fresh setup
// attached to sharedCloud (nil: the account gets a private cloud).
func replayAccount(n service.Name, sharedCloud *cloud.Cloud, user string,
	recs []trace.Record, idx []int, idOffset int64) (traffic, update int64) {
	s := newSetup(n, client.PC, service.Options{User: user, Cloud: sharedCloud})
	for _, i := range idx {
		update += scheduleRecord(s, fmt.Sprintf("f%06d", i), recs[i], idOffset)
	}
	s.Clock.Run()
	return s.Capture.TotalBytes(), update
}

// ScaleReplay replays the trace at multiplier× the user population
// under every service. Each (service, account) cell is an independent
// simulation handed its inputs up front — content seeds derive from
// record ContentIDs plus the clone's fixed offset, so no global seeds
// are drawn at run time — and the cells fan out on internal/parallel:
// the result is byte-identical at every worker count.
//
// Services without cross-user deduplication share one sharded
// cloud.Cloud per service across all accounts (per-user file tables
// and dedup scopes never interact, so interleaving cannot change any
// account's traffic). Services WITH cross-user deduplication (Ubuntu
// One, the reference design) give every account a private cloud:
// cross-user dedup makes one account's traffic depend on commit order
// across accounts, which would make the replay schedule-dependent.
// The scale mode trades that coupling away for exactness — at every
// multiplier, including 1, so the baseline is measured under the same
// semantics.
func ScaleReplay(recs []trace.Record, multiplier int) ScaleResult {
	if multiplier < 1 {
		panic(fmt.Sprintf("core: ScaleReplay multiplier %d < 1", multiplier))
	}
	parts := partitionByUser(recs)
	services := scaleServices()

	shared := make([]*cloud.Cloud, len(services))
	for i, n := range services {
		if ccfg := scaleCloudConfig(n); !ccfg.DedupCrossUser {
			shared[i] = cloud.New(ccfg)
		}
	}

	type unit struct{ svc, part, clone int }
	units := make([]unit, 0, len(services)*len(parts)*multiplier)
	for svc := range services {
		for part := range parts {
			for clone := 0; clone < multiplier; clone++ {
				units = append(units, unit{svc, part, clone})
			}
		}
	}

	type cell struct{ traffic, update int64 }
	cells := make([]cell, len(units))

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	parallel.ForEach(units, func(i int, u unit) {
		p := parts[u.part]
		user := p.user
		if u.clone > 0 {
			// Clone c of user u003 replays as account "u003+c".
			user = fmt.Sprintf("%s+%d", user, u.clone)
		}
		t, up := replayAccount(services[u.svc], shared[u.svc], user,
			recs, p.idx, int64(u.clone)*cloneContentStride)
		cells[i] = cell{traffic: t, update: up}
	})

	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	res := ScaleResult{
		Multiplier:   multiplier,
		Accounts:     len(parts) * multiplier,
		Files:        len(recs) * multiplier,
		Wall:         wall,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		AllocObjects: after.Mallocs - before.Mallocs,
		PeakRSSBytes: readPeakRSS(),
	}
	for svc, n := range services {
		sr := ScaleServiceResult{
			Service:  n.String(),
			Accounts: res.Accounts,
			Files:    res.Files,
		}
		for i, u := range units {
			if u.svc == svc {
				sr.Traffic += cells[i].traffic
				sr.UpdateBytes += cells[i].update
			}
		}
		sr.TUE = TUE(sr.Traffic, sr.UpdateBytes)
		res.Services = append(res.Services, sr)
	}
	return res
}

// readPeakRSS reports the process's peak resident set size from
// /proc/self/status (VmHWM), or 0 where that interface doesn't exist.
func readPeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// RenderScale formats a scale replay next to its 1× baseline,
// reporting per-service TUE stability: with cloned populations the
// TUEs must agree exactly, so any drift is a determinism bug, not
// noise.
func RenderScale(base, scaled ScaleResult) string {
	tb := metrics.Table{Header: []string{"Service", "TUE n=1",
		fmt.Sprintf("TUE n=%d", scaled.Multiplier), "Traffic", "Stable"}}
	stable := true
	for i, sr := range scaled.Services {
		b := base.Services[i]
		ok := sr.TUE == b.TUE
		stable = stable && ok
		mark := "yes"
		if !ok {
			mark = fmt.Sprintf("DRIFT %+.3g", sr.TUE-b.TUE)
		}
		tb.AddRow(sr.Service, fmtTUE(b.TUE), fmtTUE(sr.TUE),
			metrics.HumanBytes(sr.Traffic), mark)
	}
	verdict := "TUE stable across the population multiplier"
	if !stable {
		verdict = "TUE DRIFTED across the population multiplier"
	}
	out := fmt.Sprintf("Scale replay: %d accounts × %d services (trace × %d, %d workers)\n",
		scaled.Accounts, len(scaled.Services), scaled.Multiplier, parallel.Workers()) +
		tb.String() +
		fmt.Sprintf("%s\nwall %v   heap %s in %d objects",
			verdict, scaled.Wall.Round(time.Millisecond),
			metrics.HumanBytes(int64(scaled.AllocBytes)), scaled.AllocObjects)
	if scaled.PeakRSSBytes > 0 {
		out += fmt.Sprintf("   peak RSS %s", metrics.HumanBytes(scaled.PeakRSSBytes))
	}
	return out + "\n"
}
