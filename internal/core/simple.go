package core

import (
	"fmt"

	"cloudsync/internal/client"
	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
)

// gridCell is one pre-seeded task of a (service × access × size)
// experiment grid. Every input — including the content seed — is fixed
// before the pool runs anything, so results cannot depend on worker
// scheduling.
type gridCell struct {
	n    service.Name
	a    client.AccessMethod
	size int64
	seed int64
}

// grid enumerates the full service × access-method × size grid in the
// paper's table order, sharing one content seed per size: the paper
// uploads the *same* file to every service, and the shared seed lets
// the content fingerprint cache reuse work across cells.
func grid(sizes []int64) []gridCell {
	seeds := make([]int64, len(sizes))
	for i := range sizes {
		seeds[i] = nextSeed()
	}
	cells := make([]gridCell, 0, 6*3*len(sizes))
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			for i, size := range sizes {
				cells = append(cells, gridCell{n: n, a: a, size: size, seed: seeds[i]})
			}
		}
	}
	return cells
}

// Experiment1 measures the sync traffic of creating a highly
// compressed (incompressible) file of each size, for every service and
// access method — the data behind Table 6 and Fig. 3. The grid's cells
// are independent simulations and run on the parallel worker pool.
func Experiment1(sizes []int64) []Cell {
	return parallel.Map(grid(sizes), func(_ int, t gridCell) Cell {
		blob := content.Random(t.size, t.seed)
		up, down := runOp(t.n, t.a, service.Options{}, func(s *service.Setup) {
			if err := s.FS.Create("file.bin", blob); err != nil {
				panic(err)
			}
		})
		return Cell{
			Service: t.n, Access: t.a, Param: float64(t.size),
			Up: up, Down: down, Traffic: up + down,
			TUE: TUE(up+down, t.size),
		}
	})
}

// Experiment1PC is the Fig. 3 slice of Experiment 1: PC clients only.
func Experiment1PC(sizes []int64) []Cell {
	var out []Cell
	for _, c := range Experiment1(sizes) {
		if c.Access == client.PC {
			out = append(out, c)
		}
	}
	return out
}

// BatchCreationResult is one Table 7 row fragment.
type BatchCreationResult struct {
	Service service.Name
	Access  client.AccessMethod
	Traffic int64
	TUE     float64
	// BDSDetected applies the paper's heuristic: BDS is in use when the
	// total traffic stays within an order of magnitude of the 100 KB
	// update size.
	BDSDetected bool
}

// Experiment1Batch reproduces Experiment 1′ / Table 7: move 100
// distinct 1 KB highly compressed files into the sync folder at once
// and measure the total traffic. Each (service, access) cell runs on
// the pool with a pre-reserved block of 100 content seeds.
func Experiment1Batch() []BatchCreationResult {
	const files = 100
	const fileSize = 1 << 10
	type task struct {
		n     service.Name
		a     client.AccessMethod
		seeds *seedSeq
	}
	var tasks []task
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			tasks = append(tasks, task{n: n, a: a, seeds: reserveSeeds(files)})
		}
	}
	return parallel.Map(tasks, func(_ int, t task) BatchCreationResult {
		up, down := runOp(t.n, t.a, service.Options{}, func(s *service.Setup) {
			for i := 0; i < files; i++ {
				name := fmt.Sprintf("batch/f%03d", i)
				if err := s.FS.Create(name, content.Random(fileSize, t.seeds.Next())); err != nil {
					panic(err)
				}
			}
		})
		traffic := up + down
		tue := TUE(traffic, files*fileSize)
		return BatchCreationResult{
			Service: t.n, Access: t.a, Traffic: traffic, TUE: tue,
			BDSDetected: tue <= 10,
		}
	})
}

// Experiment2 measures the sync traffic of deleting a fully
// synchronized file of each size (§ 4.2: expected negligible, because
// deletion is a metadata-only "fake deletion").
func Experiment2(sizes []int64) []Cell {
	return parallel.Map(grid(sizes), func(_ int, t gridCell) Cell {
		blob := content.Random(t.size, t.seed)
		s := newSetup(t.n, t.a, service.Options{})
		if err := s.FS.Create("victim.bin", blob); err != nil {
			panic(err)
		}
		s.Clock.Run()
		mark := s.Capture.Mark()
		if err := s.FS.Delete("victim.bin"); err != nil {
			panic(err)
		}
		s.Clock.Run()
		up, down, _ := s.Capture.Since(mark)
		return Cell{
			Service: t.n, Access: t.a, Param: float64(t.size),
			Up: up, Down: down, Traffic: up + down,
			// For deletions the natural reference is the file
			// size, though the paper reports absolute traffic.
			TUE: TUE(up+down+1, t.size),
		}
	})
}

// Experiment3 measures the sync traffic of modifying one random byte
// of a synchronized compressed file of each size — Fig. 4, the
// experiment that exposes each service's sync granularity.
func Experiment3(sizes []int64) []Cell {
	var kept []int64
	for _, size := range sizes {
		if size >= 1 {
			kept = append(kept, size)
		}
	}
	return parallel.Map(grid(kept), func(_ int, t gridCell) Cell {
		blob := content.Random(t.size, t.seed)
		s := newSetup(t.n, t.a, service.Options{})
		if err := s.FS.Create("target.bin", blob); err != nil {
			panic(err)
		}
		s.Clock.Run()
		mark := s.Capture.Mark()
		if err := s.FS.ModifyByte("target.bin", t.size/2); err != nil {
			panic(err)
		}
		s.Clock.Run()
		up, down, _ := s.Capture.Since(mark)
		return Cell{
			Service: t.n, Access: t.a, Param: float64(t.size),
			Up: up, Down: down, Traffic: up + down,
			TUE: TUE(up+down, 1), // one byte changed
		}
	})
}

// CompressionCell is one Table 8 measurement: a 10 MB text file
// uploaded and then downloaded.
type CompressionCell struct {
	Service  service.Name
	Access   client.AccessMethod
	UpBytes  int64
	DnBytes  int64
	Size     int64
	Detected bool // upload compression detected (traffic ≪ size)
}

// Experiment4 reproduces Table 8: create an X-byte text file (random
// English words), measure upload traffic; then download it and measure
// download traffic. Every cell uploads the same text content (one
// shared seed), as the paper does.
func Experiment4(size int64) []CompressionCell {
	seed := nextSeed()
	return parallel.Map(grid([]int64{size}), func(_ int, t gridCell) CompressionCell {
		blob := content.Text(t.size, seed)
		s := newSetup(t.n, t.a, service.Options{})
		mark := s.Capture.Mark()
		if err := s.FS.Create("words.txt", blob); err != nil {
			panic(err)
		}
		s.Clock.Run()
		upU, upD, _ := s.Capture.Since(mark)

		mark = s.Capture.Mark()
		if err := s.Client.Download("words.txt", nil); err != nil {
			panic(err)
		}
		s.Clock.Run()
		dnU, dnD, _ := s.Capture.Since(mark)

		return CompressionCell{
			Service: t.n, Access: t.a,
			UpBytes: upU + upD, DnBytes: dnU + dnD, Size: t.size,
			Detected: upU+upD < t.size*95/100,
		}
	})
}

// TextIdealRatio reports the best-effort compression ratio of the
// experiment's text corpus (the paper's WinZip reference point: a
// 10 MB text file shrank to ≈ 4.5 MB).
func TextIdealRatio(size int64) float64 {
	blob := content.Text(size, 424242)
	return float64(comp.IdealSize(blob)) / float64(size)
}
