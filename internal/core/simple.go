package core

import (
	"fmt"

	"cloudsync/internal/client"
	"cloudsync/internal/comp"
	"cloudsync/internal/content"
	"cloudsync/internal/service"
)

// Experiment1 measures the sync traffic of creating a highly
// compressed (incompressible) file of each size, for every service and
// access method — the data behind Table 6 and Fig. 3.
func Experiment1(sizes []int64) []Cell {
	var out []Cell
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			for _, size := range sizes {
				blob := content.Random(size, nextSeed())
				up, down := runOp(n, a, service.Options{}, func(s *service.Setup) {
					if err := s.FS.Create("file.bin", blob); err != nil {
						panic(err)
					}
				})
				out = append(out, Cell{
					Service: n, Access: a, Param: float64(size),
					Up: up, Down: down, Traffic: up + down,
					TUE: TUE(up+down, size),
				})
			}
		}
	}
	return out
}

// Experiment1PC is the Fig. 3 slice of Experiment 1: PC clients only.
func Experiment1PC(sizes []int64) []Cell {
	var out []Cell
	for _, c := range Experiment1(sizes) {
		if c.Access == client.PC {
			out = append(out, c)
		}
	}
	return out
}

// BatchCreationResult is one Table 7 row fragment.
type BatchCreationResult struct {
	Service service.Name
	Access  client.AccessMethod
	Traffic int64
	TUE     float64
	// BDSDetected applies the paper's heuristic: BDS is in use when the
	// total traffic stays within an order of magnitude of the 100 KB
	// update size.
	BDSDetected bool
}

// Experiment1Batch reproduces Experiment 1′ / Table 7: move 100
// distinct 1 KB highly compressed files into the sync folder at once
// and measure the total traffic.
func Experiment1Batch() []BatchCreationResult {
	const files = 100
	const fileSize = 1 << 10
	var out []BatchCreationResult
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			up, down := runOp(n, a, service.Options{}, func(s *service.Setup) {
				for i := 0; i < files; i++ {
					name := fmt.Sprintf("batch/f%03d", i)
					if err := s.FS.Create(name, content.Random(fileSize, nextSeed())); err != nil {
						panic(err)
					}
				}
			})
			traffic := up + down
			tue := TUE(traffic, files*fileSize)
			out = append(out, BatchCreationResult{
				Service: n, Access: a, Traffic: traffic, TUE: tue,
				BDSDetected: tue <= 10,
			})
		}
	}
	return out
}

// Experiment2 measures the sync traffic of deleting a fully
// synchronized file of each size (§ 4.2: expected negligible, because
// deletion is a metadata-only "fake deletion").
func Experiment2(sizes []int64) []Cell {
	var out []Cell
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			for _, size := range sizes {
				blob := content.Random(size, nextSeed())
				s := service.NewSetup(n, a, service.Options{})
				if err := s.FS.Create("victim.bin", blob); err != nil {
					panic(err)
				}
				s.Clock.Run()
				mark := s.Capture.Mark()
				if err := s.FS.Delete("victim.bin"); err != nil {
					panic(err)
				}
				s.Clock.Run()
				up, down, _ := s.Capture.Since(mark)
				out = append(out, Cell{
					Service: n, Access: a, Param: float64(size),
					Up: up, Down: down, Traffic: up + down,
					// For deletions the natural reference is the file
					// size, though the paper reports absolute traffic.
					TUE: TUE(up+down+1, size),
				})
			}
		}
	}
	return out
}

// Experiment3 measures the sync traffic of modifying one random byte
// of a synchronized compressed file of each size — Fig. 4, the
// experiment that exposes each service's sync granularity.
func Experiment3(sizes []int64) []Cell {
	var out []Cell
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			for _, size := range sizes {
				if size < 1 {
					continue
				}
				blob := content.Random(size, nextSeed())
				s := service.NewSetup(n, a, service.Options{})
				if err := s.FS.Create("target.bin", blob); err != nil {
					panic(err)
				}
				s.Clock.Run()
				mark := s.Capture.Mark()
				if err := s.FS.ModifyByte("target.bin", size/2); err != nil {
					panic(err)
				}
				s.Clock.Run()
				up, down, _ := s.Capture.Since(mark)
				out = append(out, Cell{
					Service: n, Access: a, Param: float64(size),
					Up: up, Down: down, Traffic: up + down,
					TUE: TUE(up+down, 1), // one byte changed
				})
			}
		}
	}
	return out
}

// CompressionCell is one Table 8 measurement: a 10 MB text file
// uploaded and then downloaded.
type CompressionCell struct {
	Service  service.Name
	Access   client.AccessMethod
	UpBytes  int64
	DnBytes  int64
	Size     int64
	Detected bool // upload compression detected (traffic ≪ size)
}

// Experiment4 reproduces Table 8: create an X-byte text file (random
// English words), measure upload traffic; then download it and measure
// download traffic.
func Experiment4(size int64) []CompressionCell {
	var out []CompressionCell
	for _, n := range service.All() {
		for _, a := range service.AccessMethods() {
			blob := content.Text(size, nextSeed())
			s := service.NewSetup(n, a, service.Options{})
			mark := s.Capture.Mark()
			if err := s.FS.Create("words.txt", blob); err != nil {
				panic(err)
			}
			s.Clock.Run()
			upU, upD, _ := s.Capture.Since(mark)

			mark = s.Capture.Mark()
			if err := s.Client.Download("words.txt", nil); err != nil {
				panic(err)
			}
			s.Clock.Run()
			dnU, dnD, _ := s.Capture.Since(mark)

			out = append(out, CompressionCell{
				Service: n, Access: a,
				UpBytes: upU + upD, DnBytes: dnU + dnD, Size: size,
				Detected: upU+upD < size*95/100,
			})
		}
	}
	return out
}

// TextIdealRatio reports the best-effort compression ratio of the
// experiment's text corpus (the paper's WinZip reference point: a
// 10 MB text file shrank to ≈ 4.5 MB).
func TextIdealRatio(size int64) float64 {
	blob := content.Text(size, 424242)
	return float64(comp.IdealSize(blob)) / float64(size)
}
