package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/metrics"
	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

func fmtTUE(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// cellLookup indexes experiment cells by (service, access, param).
func cellLookup(cells []Cell) map[service.Name]map[client.AccessMethod]map[float64]Cell {
	idx := make(map[service.Name]map[client.AccessMethod]map[float64]Cell)
	for _, c := range cells {
		if idx[c.Service] == nil {
			idx[c.Service] = make(map[client.AccessMethod]map[float64]Cell)
		}
		if idx[c.Service][c.Access] == nil {
			idx[c.Service][c.Access] = make(map[float64]Cell)
		}
		idx[c.Service][c.Access][c.Param] = c
	}
	return idx
}

// RenderTable6 formats Experiment 1 results the way Table 6 does:
// sync traffic of a compressed file creation per service, access
// method, and size.
func RenderTable6(cells []Cell, sizes []int64) string {
	idx := cellLookup(cells)
	tb := metrics.Table{Header: []string{"Service"}}
	for _, a := range service.AccessMethods() {
		for _, size := range sizes {
			tb.Header = append(tb.Header, fmt.Sprintf("%s %s", shortAccess(a), metrics.HumanBytes(size)))
		}
	}
	for _, n := range service.All() {
		row := []string{n.String()}
		for _, a := range service.AccessMethods() {
			for _, size := range sizes {
				c, ok := idx[n][a][float64(size)]
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, metrics.HumanBytes(c.Traffic))
			}
		}
		tb.AddRow(row...)
	}
	return "Table 6: Sync traffic of a (compressed) file creation\n" + tb.String()
}

func shortAccess(a client.AccessMethod) string {
	switch a {
	case client.PC:
		return "PC"
	case client.Web:
		return "Web"
	case client.Mobile:
		return "Mob"
	default:
		return a.String()
	}
}

// RenderFig3 formats the TUE-vs-size curve for PC clients.
func RenderFig3(cells []Cell) string {
	idx := cellLookup(cells)
	var sizes []float64
	seen := map[float64]bool{}
	for _, c := range cells {
		if c.Access == client.PC && !seen[c.Param] {
			seen[c.Param] = true
			sizes = append(sizes, c.Param)
		}
	}
	sort.Float64s(sizes)
	tb := metrics.Table{Header: []string{"File size"}}
	for _, n := range service.All() {
		tb.Header = append(tb.Header, n.String())
	}
	for _, size := range sizes {
		row := []string{metrics.HumanBytes(int64(size))}
		for _, n := range service.All() {
			if c, ok := idx[n][client.PC][size]; ok {
				row = append(row, fmtTUE(c.TUE))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	var series []metrics.Series
	for _, n := range service.All() {
		ser := metrics.Series{Name: n.String()}
		for _, size := range sizes {
			if c, ok := idx[n][client.PC][size]; ok {
				ser.X = append(ser.X, math.Log10(size))
				ser.Y = append(ser.Y, c.TUE)
			}
		}
		series = append(series, ser)
	}
	chart := metrics.Chart("", series, metrics.ChartOptions{
		LogY: true, XLabel: "log10(file size in bytes)", YLabel: "TUE"})
	return "Figure 3: TUE vs. size of the created file (PC clients)\n" + tb.String() + chart
}

// RenderTable7 formats Experiment 1′ results as Table 7 does.
func RenderTable7(results []BatchCreationResult) string {
	idx := map[service.Name]map[client.AccessMethod]BatchCreationResult{}
	for _, r := range results {
		if idx[r.Service] == nil {
			idx[r.Service] = map[client.AccessMethod]BatchCreationResult{}
		}
		idx[r.Service][r.Access] = r
	}
	tb := metrics.Table{Header: []string{"Service",
		"PC traffic", "(TUE)", "Web traffic", "(TUE)", "Mobile traffic", "(TUE)"}}
	for _, n := range service.All() {
		row := []string{n.String()}
		for _, a := range service.AccessMethods() {
			r := idx[n][a]
			row = append(row, metrics.HumanBytes(r.Traffic), "("+fmtTUE(r.TUE)+")")
		}
		tb.AddRow(row...)
	}
	return "Table 7: Total traffic for synchronizing 100 compressed 1 KB file creations\n" + tb.String()
}

// RenderExp2 summarizes deletion traffic.
func RenderExp2(cells []Cell) string {
	tb := metrics.Table{Header: []string{"Service", "Access", "File size", "Deletion traffic"}}
	for _, c := range cells {
		tb.AddRow(c.Service.String(), c.Access.String(),
			metrics.HumanBytes(int64(c.Param)), metrics.HumanBytes(c.Traffic))
	}
	return "Experiment 2: Sync traffic of a file deletion (expected negligible)\n" + tb.String()
}

// RenderFig4 formats Experiment 3 (one-byte modification traffic) as
// the three panels of Fig. 4.
func RenderFig4(cells []Cell) string {
	idx := cellLookup(cells)
	var sizes []float64
	seen := map[float64]bool{}
	for _, c := range cells {
		if !seen[c.Param] {
			seen[c.Param] = true
			sizes = append(sizes, c.Param)
		}
	}
	sort.Float64s(sizes)
	out := "Figure 4: Sync traffic of a random one-byte modification\n"
	for _, a := range service.AccessMethods() {
		tb := metrics.Table{Header: []string{"Service"}}
		for _, size := range sizes {
			tb.Header = append(tb.Header, metrics.HumanBytes(int64(size)))
		}
		for _, n := range service.All() {
			row := []string{n.String()}
			for _, size := range sizes {
				if c, ok := idx[n][a][size]; ok {
					row = append(row, metrics.HumanBytes(c.Traffic))
				} else {
					row = append(row, "-")
				}
			}
			tb.AddRow(row...)
		}
		out += fmt.Sprintf("(%s)\n%s", a, tb.String())
	}
	return out
}

// RenderTable8 formats Experiment 4 as Table 8 does.
func RenderTable8(cells []CompressionCell) string {
	idx := map[service.Name]map[client.AccessMethod]CompressionCell{}
	for _, c := range cells {
		if idx[c.Service] == nil {
			idx[c.Service] = map[client.AccessMethod]CompressionCell{}
		}
		idx[c.Service][c.Access] = c
	}
	tb := metrics.Table{Header: []string{"Service",
		"PC UP", "PC DN", "Web UP", "Web DN", "Mob UP", "Mob DN"}}
	for _, n := range service.All() {
		row := []string{n.String()}
		for _, a := range service.AccessMethods() {
			c := idx[n][a]
			row = append(row, metrics.HumanBytes(c.UpBytes), metrics.HumanBytes(c.DnBytes))
		}
		tb.AddRow(row...)
	}
	return "Table 8: Sync traffic of a 10 MB text file creation (UP) and download (DN)\n" + tb.String()
}

// RenderTable9 formats Experiment 5 as Table 9 does.
func RenderTable9(rows []DedupInference) string {
	tb := metrics.Table{Header: []string{"Service", "Same user", "Cross users"}}
	for _, r := range rows {
		tb.AddRow(r.Service.String(), r.SameUser, r.CrossUser)
	}
	return "Table 9: Data deduplication granularity (PC client & mobile app)\n" + tb.String()
}

// RenderFig5 formats the dedup-ratio-vs-block-size series.
func RenderFig5(points []DedupRatioPoint) string {
	tb := metrics.Table{Header: []string{"Granularity", "Dedup ratio"}}
	for _, p := range points {
		label := "full file"
		if p.BlockSize > 0 {
			label = metrics.HumanBytes(int64(p.BlockSize)) + " blocks"
		}
		tb.AddRow(label, fmt.Sprintf("%.3f", p.Ratio))
	}
	return "Figure 5: Deduplication ratio (cross-user) vs. block size\n" + tb.String()
}

// RenderFig6 formats the Experiment 6 TUE series.
func RenderFig6(cells []Cell, services []service.Name) string {
	idx := cellLookup(cells)
	var xs []float64
	seen := map[float64]bool{}
	for _, c := range cells {
		if !seen[c.Param] {
			seen[c.Param] = true
			xs = append(xs, c.Param)
		}
	}
	sort.Float64s(xs)
	tb := metrics.Table{Header: []string{"X (s)"}}
	for _, n := range services {
		tb.Header = append(tb.Header, n.String())
	}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, n := range services {
			if c, ok := idx[n][client.PC][x]; ok {
				row = append(row, fmtTUE(c.TUE))
			} else {
				row = append(row, "-")
			}
		}
		tb.AddRow(row...)
	}
	var series []metrics.Series
	for _, n := range services {
		ser := metrics.Series{Name: n.String()}
		for _, x := range xs {
			if c, ok := idx[n][client.PC][x]; ok {
				ser.X = append(ser.X, x)
				ser.Y = append(ser.Y, c.TUE)
			}
		}
		series = append(series, ser)
	}
	chart := metrics.Chart("", series, metrics.ChartOptions{
		LogY: true, XLabel: "X (seconds)", YLabel: "TUE"})
	return "Figure 6: TUE under \"X KB / X sec\" appends (PC clients, MN, M1)\n" + tb.String() + chart
}

// RenderPolicies formats the ASD evaluation.
func RenderPolicies(cells []PolicyCell) string {
	byPolicy := map[string]map[float64]float64{}
	var xs []float64
	seenX := map[float64]bool{}
	var policies []string
	seenP := map[string]bool{}
	var svc service.Name
	for _, c := range cells {
		svc = c.Service
		if byPolicy[c.Policy] == nil {
			byPolicy[c.Policy] = map[float64]float64{}
		}
		byPolicy[c.Policy][c.X] = c.TUE
		if !seenX[c.X] {
			seenX[c.X] = true
			xs = append(xs, c.X)
		}
		if !seenP[c.Policy] {
			seenP[c.Policy] = true
			policies = append(policies, c.Policy)
		}
	}
	sort.Float64s(xs)
	tb := metrics.Table{Header: append([]string{"X (s)"}, policies...)}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, p := range policies {
			row = append(row, fmtTUE(byPolicy[p][x]))
		}
		tb.AddRow(row...)
	}
	return fmt.Sprintf("ASD evaluation (%s, appending workload): TUE by defer policy\n%s",
		svc, tb.String())
}

// RenderFig7 formats the location comparison.
func RenderFig7(cells []LocationCell) string {
	type key struct {
		svc service.Name
		loc string
	}
	series := map[key]map[float64]float64{}
	var xs []float64
	seenX := map[float64]bool{}
	var keys []key
	seenK := map[key]bool{}
	for _, c := range cells {
		k := key{c.Service, c.Location}
		if series[k] == nil {
			series[k] = map[float64]float64{}
		}
		series[k][c.X] = c.TUE
		if !seenX[c.X] {
			seenX[c.X] = true
			xs = append(xs, c.X)
		}
		if !seenK[k] {
			seenK[k] = true
			keys = append(keys, k)
		}
	}
	sort.Float64s(xs)
	tb := metrics.Table{Header: []string{"X (s)"}}
	for _, k := range keys {
		tb.Header = append(tb.Header, fmt.Sprintf("%s @%s", k.svc, k.loc))
	}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, k := range keys {
			row = append(row, fmtTUE(series[k][x]))
		}
		tb.AddRow(row...)
	}
	var chartSeries []metrics.Series
	for _, k := range keys {
		ser := metrics.Series{Name: fmt.Sprintf("%s @%s", k.svc, k.loc)}
		for _, x := range xs {
			ser.X = append(ser.X, x)
			ser.Y = append(ser.Y, series[k][x])
		}
		chartSeries = append(chartSeries, ser)
	}
	chart := metrics.Chart("", chartSeries, metrics.ChartOptions{
		LogY: true, XLabel: "X (seconds)", YLabel: "TUE"})
	return "Figure 7: TUE of the appending workload in Minnesota vs. Beijing\n" + tb.String() + chart
}

// RenderFig8ab formats a bandwidth or latency sweep.
func RenderFig8ab(cells []NetCell, sweep string) string {
	tb := metrics.Table{Header: []string{"Bandwidth", "RTT", "TUE"}}
	for _, c := range cells {
		tb.AddRow(fmt.Sprintf("%.1f Mbps", float64(c.Bps)/1e6), c.RTT.String(), fmtTUE(c.TUE))
	}
	return fmt.Sprintf("Figure 8(%s): Dropbox \"1 KB/sec\" appends, %s sweep\n%s",
		map[string]string{"bandwidth": "a", "latency": "b"}[sweep], sweep, tb.String())
}

// RenderFig8c formats the hardware comparison.
func RenderFig8c(cells []HWCell) string {
	byMachine := map[string]map[float64]float64{}
	var machines []string
	seenM := map[string]bool{}
	var xs []float64
	seenX := map[float64]bool{}
	for _, c := range cells {
		if byMachine[c.Machine] == nil {
			byMachine[c.Machine] = map[float64]float64{}
		}
		byMachine[c.Machine][c.X] = c.TUE
		if !seenM[c.Machine] {
			seenM[c.Machine] = true
			machines = append(machines, c.Machine)
		}
		if !seenX[c.X] {
			seenX[c.X] = true
			xs = append(xs, c.X)
		}
	}
	sort.Float64s(xs)
	tb := metrics.Table{Header: append([]string{"X (s)"}, machines...)}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, m := range machines {
			row = append(row, fmtTUE(byMachine[m][x]))
		}
		tb.AddRow(row...)
	}
	return "Figure 8(c): Dropbox appending workload by client hardware\n" + tb.String()
}

// RenderFig2 formats the trace size CDFs.
func RenderFig2(points, orig, comp []float64) string {
	tb := metrics.Table{Header: []string{"Size", "CDF (original)", "CDF (compressed)"}}
	for i := range points {
		tb.AddRow(metrics.HumanBytes(int64(points[i])),
			fmt.Sprintf("%.3f", orig[i]), fmt.Sprintf("%.3f", comp[i]))
	}
	return "Figure 2: CDF of original and compressed file sizes\n" + tb.String()
}

// RenderFindings formats the headline trace statistics against the
// paper's values.
func RenderFindings(s trace.Stats) string {
	tb := metrics.Table{Header: []string{"Statistic", "Measured", "Paper"}}
	tb.AddRow("files", fmt.Sprintf("%d", s.Files), "222632")
	tb.AddRow("users", fmt.Sprintf("%d", s.Users), "153")
	tb.AddRow("median file size", metrics.HumanBytes(int64(s.MedianSize)), "7.5 K")
	tb.AddRow("mean file size", metrics.HumanBytes(int64(s.MeanSize)), "962 K")
	tb.AddRow("small files (<100 KB)", fmt.Sprintf("%.1f%%", 100*s.SmallFraction), "77%")
	tb.AddRow("batchable small files", fmt.Sprintf("%.1f%%", 100*s.BatchableSmallFraction), "66%")
	tb.AddRow("modified at least once", fmt.Sprintf("%.1f%%", 100*s.ModifiedFraction), "84%")
	tb.AddRow("effectively compressible", fmt.Sprintf("%.1f%%", 100*s.CompressibleFraction), "52%")
	tb.AddRow("compression ratio", fmt.Sprintf("%.2f", s.CompressionRatio), "1.31")
	tb.AddRow("duplicate volume", fmt.Sprintf("%.1f%%", 100*s.DuplicateVolumeFraction), "18.8%")
	return "Trace findings vs. the paper's statistics\n" + tb.String()
}

// RenderMidLayer formats the mid-layer ablation.
func RenderMidLayer(rows []MidLayerResult) string {
	tb := metrics.Table{Header: []string{"Mid-layer", "PUTs", "GETs", "DELETEs", "Internal bytes"}}
	for _, r := range rows {
		tb.AddRow(r.Layer, fmt.Sprintf("%d", r.Puts), fmt.Sprintf("%d", r.Gets),
			fmt.Sprintf("%d", r.Deletes), metrics.HumanBytes(r.InternalBytes()))
	}
	return "Mid-layer ablation (§ 4.3): provider-internal cost of IDS on a REST store\n" + tb.String()
}

// RenderCompressDedup formats the compression × dedup ablation.
func RenderCompressDedup(rows []AblationCell) string {
	tb := metrics.Table{Header: []string{"Compression", "Dedup", "Upload traffic", "Server decompression"}}
	for _, r := range rows {
		compression := "off"
		if r.Compression {
			compression = "on"
		}
		tb.AddRow(compression, r.Dedup.String(),
			metrics.HumanBytes(r.Traffic), metrics.HumanBytes(r.DecompressBytes))
	}
	return "Compression × deduplication ablation (§ 5.2)\n" + tb.String()
}

// RenderDeferments formats inferred deferments against § 6.1.
func RenderDeferments(measured map[service.Name]time.Duration) string {
	paper := map[service.Name]string{
		service.GoogleDrive: "4.2 s",
		service.OneDrive:    "10.5 s",
		service.SugarSync:   "6 s",
		service.Dropbox:     "none",
		service.Box:         "none",
		service.UbuntuOne:   "none",
	}
	tb := metrics.Table{Header: []string{"Service", "Measured deferment", "Paper"}}
	for _, n := range service.All() {
		got := "none"
		if t, ok := measured[n]; ok && t > 0 {
			got = fmt.Sprintf("%.1f s", t.Seconds())
		}
		tb.AddRow(n.String(), got, paper[n])
	}
	return "Sync deferment inference (§ 6.1)\n" + tb.String()
}
