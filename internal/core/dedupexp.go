package core

import (
	"fmt"

	"cloudsync/internal/chunker"
	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/parallel"
	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

// smallTraffic is Algorithm 1's "Tr2 is small (≈ tens of KBs)"
// threshold, with headroom for per-sync control chatter.
const smallTraffic = 200 << 10

// maxProbeSize bounds Algorithm 1's search; a service that has not
// deduplicated a self-duplicated file by 16 MB blocks is treated as
// having no block-level deduplication.
const maxProbeSize = 16 << 20

// uploadProbe uploads f1 (b1 random bytes) and then f2 = f1 + f1 on a
// fresh setup, returning the sync traffic of each upload.
func uploadProbe(n service.Name, a client.AccessMethod, b1, seed int64) (tr1, tr2 int64) {
	s := newSetup(n, a, service.Options{})
	// Literal content: Algorithm 1 compares a file against its own
	// self-concatenation, so both must fingerprint through the same
	// (real MD5) path.
	f1 := content.FromBytes(content.Random(b1, seed).Bytes())
	mark := s.Capture.Mark()
	if err := s.FS.Create("probe/f1", f1); err != nil {
		panic(err)
	}
	s.Clock.Run()
	u, d, _ := s.Capture.Since(mark)
	tr1 = u + d

	f2 := f1.Concat(f1)
	mark = s.Capture.Mark()
	if err := s.FS.Create("probe/f2", f2); err != nil {
		panic(err)
	}
	s.Clock.Run()
	u, d, _ = s.Capture.Since(mark)
	return tr1, u + d
}

// Algorithm1 is the paper's Iterative Self Duplication Algorithm: infer
// a service's deduplication block size by uploading a file and its
// self-concatenation, growing the guess until the second upload
// becomes nearly free. It reports the inferred block size and whether
// block-level deduplication was detected at all.
func Algorithm1(n service.Name, a client.AccessMethod) (blockSize int64, found bool) {
	return algorithm1(n, a, reserveSeeds(algorithm1Seeds))
}

// algorithm1Seeds is the seed reservation one algorithm1 run needs:
// one uploadProbe content seed per iteration of its bounded search.
const algorithm1Seeds = 16

// algorithm1 is Algorithm1 drawing content seeds from a pre-reserved
// sequence, so parallel callers (Experiment5) stay deterministic.
func algorithm1(n service.Name, a client.AccessMethod, seeds *seedSeq) (blockSize int64, found bool) {
	b1 := int64(1 << 20) // initial guess
	lower := int64(0)
	upper := int64(0) // 0 = +∞
	for iter := 0; iter < algorithm1Seeds && b1 <= maxProbeSize; iter++ {
		tr1, tr2 := uploadProbe(n, a, b1, seeds.Next())
		switch {
		case tr2 < tr1/4 && tr2 < smallTraffic:
			// Step 3's success case: f2 cost almost nothing, so every
			// block of f2 was already stored — B1 is the granularity.
			return b1, true
		case tr2 < 2*b1 && tr2 >= smallTraffic:
			// Partial savings: the guess exceeds the true block size.
			upper = b1
			b1 = (lower + upper) / 2
		default:
			// No savings: the guess is below (or misaligned with) the
			// block size.
			lower = b1
			if upper == 0 {
				b1 *= 2
			} else {
				b1 = (lower + upper) / 2
			}
		}
		if upper != 0 && upper-lower < 64<<10 {
			break
		}
	}
	return 0, false
}

// duplicateFileProbe uploads a file and then an identically-sized,
// identical-content file under a different name — by the uploading
// user or by a second user sharing the cloud — and reports whether the
// second upload's traffic indicates full-file deduplication.
func duplicateFileProbe(n service.Name, a client.AccessMethod, crossUser bool, seed int64) bool {
	s := newSetup(n, a, service.Options{User: "alice"})
	blob := content.Random(1<<20, seed)
	if err := s.FS.Create("orig.bin", blob); err != nil {
		panic(err)
	}
	s.Clock.Run()

	uploader := s
	if crossUser {
		uploader = newSetup(n, a, service.Options{
			User:    "bob",
			Cloud:   s.Cloud,
			Clock:   s.Clock,
			Capture: s.Capture,
		})
	}
	mark := s.Capture.Mark()
	if err := uploader.FS.Create("copy.bin", content.Random(1<<20, blob.Seed())); err != nil {
		panic(err)
	}
	s.Clock.Run()
	u, d, _ := s.Capture.Since(mark)
	return u+d < smallTraffic
}

// DedupInference is one Table 9 row.
type DedupInference struct {
	Service service.Name
	// SameUser and CrossUser describe the granularity as the paper's
	// Table 9 does: "No", "Full file", or "<n> MB".
	SameUser  string
	CrossUser string
}

// Experiment5 reproduces Table 9: infer every service's deduplication
// granularity for the same-user and cross-user cases via Algorithm 1
// and the duplicate-file probe. Web access is omitted, as in the
// paper, because web-based sync does not deduplicate.
func Experiment5() []DedupInference {
	type task struct {
		n     service.Name
		seeds *seedSeq
	}
	var tasks []task
	for _, n := range service.All() {
		// Per service: one algorithm1 run plus the two duplicate-file
		// probes, each with its own content seed.
		tasks = append(tasks, task{n: n, seeds: reserveSeeds(algorithm1Seeds + 2)})
	}
	return parallel.Map(tasks, func(_ int, t task) DedupInference {
		row := DedupInference{Service: t.n, SameUser: "No", CrossUser: "No"}
		// Draw the probe seeds up front so every branch consumes the same
		// sequence positions regardless of which probes actually run.
		algSeeds := reserveFrom(t.seeds, algorithm1Seeds)
		sameSeed := t.seeds.Next()
		crossSeed := t.seeds.Next()
		if bs, ok := algorithm1(t.n, client.PC, algSeeds); ok {
			row.SameUser = fmt.Sprintf("%d MB", bs>>20)
		} else if duplicateFileProbe(t.n, client.PC, false, sameSeed) {
			row.SameUser = "Full file"
		}
		if duplicateFileProbe(t.n, client.PC, true, crossSeed) {
			// Cross-user hits at least at full-file level; check for
			// block granularity only if same-user found one.
			row.CrossUser = "Full file"
		}
		return row
	})
}

// DedupRatioPoint is one Fig. 5 sample.
type DedupRatioPoint struct {
	// BlockSize in bytes; 0 denotes full-file granularity.
	BlockSize int
	Ratio     float64
}

// Fig5 computes the trace-driven cross-user deduplication ratio at
// full-file granularity and at each of the trace's block granularities
// (128 KB – 16 MB).
func Fig5(recs []trace.Record) []DedupRatioPoint {
	out := []DedupRatioPoint{{BlockSize: 0, Ratio: trace.DedupRatio(recs, 0)}}
	for _, bs := range chunker.StandardBlockSizes {
		out = append(out, DedupRatioPoint{BlockSize: bs, Ratio: trace.DedupRatio(recs, bs)})
	}
	return out
}
