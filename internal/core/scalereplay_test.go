package core

import (
	"testing"

	"cloudsync/internal/invariant"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/parallel"
	"cloudsync/internal/trace"
)

func scaleTrace() []trace.Record {
	return trace.Generate(trace.GenConfig{Seed: 1, Scale: 0.002})
}

// stripTimings zeroes the fields that legitimately vary run to run,
// leaving everything the determinism contract covers.
func stripTimings(r ScaleResult) ScaleResult {
	r.Wall = 0
	r.AllocBytes = 0
	r.AllocObjects = 0
	r.PeakRSSBytes = 0
	return r
}

// TestScaleReplayParallelMatchesSequential: the per-account scale
// replay must produce identical traffic, update sizes, and TUE no
// matter how many workers replay the accounts.
func TestScaleReplayParallelMatchesSequential(t *testing.T) {
	recs := scaleTrace()

	parallel.SetWorkers(1)
	seq := stripTimings(ScaleReplay(recs, 2))
	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)
	par := stripTimings(ScaleReplay(recs, 2))

	if len(seq.Services) != len(par.Services) {
		t.Fatalf("service count differs: %d vs %d", len(seq.Services), len(par.Services))
	}
	for i := range seq.Services {
		if seq.Services[i] != par.Services[i] {
			t.Errorf("service %s differs between workers=1 and workers=8:\nsequential %+v\nparallel   %+v",
				seq.Services[i].Service, seq.Services[i], par.Services[i])
		}
	}
}

// TestScaleReplayTUEStable: cloned populations replay byte-equivalent
// workloads, so per-service TUE must be EXACTLY equal at every
// multiplier — the scale mode's headline invariant.
func TestScaleReplayTUEStable(t *testing.T) {
	recs := scaleTrace()
	base := ScaleReplay(recs, 1)
	for _, n := range []int{2, 4} {
		scaled := ScaleReplay(recs, n)
		for i, sr := range scaled.Services {
			b := base.Services[i]
			if sr.TUE != b.TUE {
				t.Errorf("n=%d: %s TUE %v != baseline %v", n, sr.Service, sr.TUE, b.TUE)
			}
			if sr.Traffic != int64(n)*b.Traffic {
				t.Errorf("n=%d: %s traffic %d != %d × baseline %d",
					n, sr.Service, sr.Traffic, n, b.Traffic)
			}
			if sr.UpdateBytes != int64(n)*b.UpdateBytes {
				t.Errorf("n=%d: %s update bytes %d != %d × baseline %d",
					n, sr.Service, sr.UpdateBytes, n, b.UpdateBytes)
			}
		}
	}
}

// TestScaleReplayLedgerBalance is the satellite property test: with
// the process-wide attribution ledger attached, a sharded parallel
// scale replay must attribute every wire byte to a cause — the
// invariant.CheckLedger balance holds exactly even though dozens of
// accounts charge the (atomic) ledger concurrently.
func TestScaleReplayLedgerBalance(t *testing.T) {
	led := ledger.New()
	SetLedger(led)
	defer SetLedger(nil)

	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)

	res := ScaleReplay(scaleTrace(), 3)

	var total int64
	for _, sr := range res.Services {
		total += sr.Traffic
	}
	if total == 0 {
		t.Fatal("scale replay produced no traffic")
	}
	for _, v := range invariant.CheckLedger(total, led.Snapshot()) {
		t.Errorf("%v", v)
	}
}
