package core

import (
	"strings"
	"testing"

	"cloudsync/internal/invariant"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/parallel"
)

// TestLedgerNeverChangesTables is the accounting analogue of the
// tracing contract: attaching the process-wide attribution ledger must
// leave every experiment table byte-identical. The ledger observes the
// capture; it must not feed back into it.
func TestLedgerNeverChangesTables(t *testing.T) {
	render := func() string {
		creationSeed.Store(10_000)
		return RenderTable6(Experiment1(QuickSizes), QuickSizes)
	}
	SetLedger(nil)
	off := render()

	led := &ledger.Ledger{}
	SetLedger(led)
	defer SetLedger(nil)
	on := render()

	if on != off {
		t.Errorf("Experiment1 table differs with the ledger attached:\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
	if led.Total() == 0 {
		t.Error("global ledger attached but charged nothing")
	}
}

// TestExplainExactSums re-checks the decomposition contract from the
// outside: every explain cell's causes sum exactly to its traffic.
// (explainOp already panics on imbalance; this keeps the contract
// visible even if that panic is ever relaxed.)
func TestExplainExactSums(t *testing.T) {
	creationSeed.Store(10_000)
	res := ExplainAll(true)
	for name, cells := range map[string][]ExplainCell{
		"creation": res.Creation, "modification": res.Modification, "faults": res.Faults,
	} {
		if len(cells) == 0 {
			t.Errorf("%s: no cells", name)
		}
		for _, c := range cells {
			if vs := invariant.CheckLedger(c.Traffic, c.Causes); len(vs) != 0 {
				t.Errorf("%s %s param=%v: %v", name, c.Service, c.Param, vs)
			}
			if c.Traffic <= 0 {
				t.Errorf("%s %s param=%v: no traffic", name, c.Service, c.Param)
			}
		}
	}
	// The fault section's lossy rows must show what the clean row
	// cannot: retransmitted bytes.
	var retrans int64
	for _, c := range res.Faults {
		if c.Param > 0 {
			retrans += c.Causes.Get(ledger.Retransmit)
		}
	}
	if retrans == 0 {
		t.Error("fault section charged no retransmit bytes at any loss rate")
	}
}

// TestExplainDeterministicAcrossWorkers extends the determinism
// contract to the explain experiment: cell decompositions must be
// byte-identical no matter how many workers run the grid.
func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		parallel.SetWorkers(workers)
		creationSeed.Store(10_000)
		return RenderExplain(ExplainAll(true))
	}
	seq := run(1)
	par := run(8)
	parallel.SetWorkers(0)
	if seq != par {
		t.Errorf("explain tables differ between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "delta_literal") {
		t.Errorf("explain render missing cause columns:\n%s", seq)
	}
}
