package core

import (
	"strings"
	"testing"
	"time"

	"cloudsync/internal/service"
	"cloudsync/internal/trace"
)

// TestRenderersSmoke drives every renderer with reduced inputs: each
// must produce a titled, multi-line table mentioning at least one
// service or data label. Catches formatting regressions across the
// whole artifact surface.
func TestRenderersSmoke(t *testing.T) {
	recs := trace.Generate(trace.GenConfig{Seed: 9, Scale: 0.01})
	small := []int64{1 << 10}

	outputs := map[string]string{
		"exp2":      RenderExp2(Experiment2(small)),
		"fig4":      RenderFig4(Experiment3(small)),
		"table8":    RenderTable8(Experiment4(1 << 20)),
		"table9":    RenderTable9([]DedupInference{{Service: service.Dropbox, SameUser: "4 MB", CrossUser: "No"}}),
		"fig5":      RenderFig5(Fig5(recs)),
		"fig2":      renderFig2From(recs),
		"findings":  RenderFindings(trace.Analyze(recs)),
		"midlayer":  RenderMidLayer(MidLayerAblation(256<<10, 5)),
		"compdedup": RenderCompressDedup(CompressDedupAblation(recs, 4<<20)),
		"deferments": RenderDeferments(map[service.Name]time.Duration{
			service.GoogleDrive: 4200 * time.Millisecond,
		}),
		"fig8c": RenderFig8c([]HWCell{{Machine: "M1", X: 1, TUE: 10}, {Machine: "M2", X: 1, TUE: 5}}),
		"replay": RenderReplay([]ReplayResult{{
			Service: "Dropbox", Files: 10, UpdateBytes: 1 << 20,
			Traffic: 1 << 21, TUE: 2, FullTraceGB: 1, CostUSD: 0.05,
		}}),
	}
	for name, s := range outputs {
		if len(s) < 60 {
			t.Errorf("%s: suspiciously short render:\n%s", name, s)
		}
		if !strings.Contains(s, "\n") {
			t.Errorf("%s: single-line render", name)
		}
	}
}

func renderFig2From(recs []trace.Record) string {
	points, orig, comp := Fig2(recs)
	return RenderFig2(points, orig, comp)
}
