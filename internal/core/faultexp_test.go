package core

import (
	"strings"
	"testing"

	"cloudsync/internal/parallel"
)

func TestFaultSweepLossRaisesTUE(t *testing.T) {
	cells := FaultSweep(QuickFaultLossProbs)
	byLoc := map[string][]FaultCell{}
	for _, c := range cells {
		byLoc[c.Location] = append(byLoc[c.Location], c)
	}
	for _, loc := range []string{"MN", "BJ"} {
		rows := byLoc[loc]
		if len(rows) != len(QuickFaultLossProbs) {
			t.Fatalf("%s has %d rows, want %d", loc, len(rows), len(QuickFaultLossProbs))
		}
		clean := rows[0]
		if clean.LossProb != 0 || clean.Faults.Retransmits != 0 {
			t.Fatalf("%s baseline row not clean: %+v", loc, clean)
		}
		worst := rows[len(rows)-1]
		if worst.Faults.Retransmits == 0 {
			t.Fatalf("%s at %v%% loss injected no retransmissions", loc, worst.LossProb*100)
		}
		if worst.TUE <= clean.TUE {
			t.Fatalf("%s TUE did not grow under loss: clean %.3f, lossy %.3f",
				loc, clean.TUE, worst.TUE)
		}
	}
	showcase := byLoc["BJ+faults"]
	if len(showcase) != 1 || showcase[0].Faults.Retransmits == 0 {
		t.Fatalf("FaultyBeijing showcase row missing or clean: %+v", showcase)
	}
	// Every TUE in the sweep respects the floor: faults only add bytes.
	for _, c := range cells {
		if c.TUE < 1 {
			t.Fatalf("cell %+v has TUE below 1", c)
		}
	}
}

func TestFaultSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []FaultCell {
		parallel.SetWorkers(workers)
		creationSeed.Store(10_000)
		return FaultSweep(QuickFaultLossProbs)
	}
	seq := run(1)
	par := run(8)
	parallel.SetWorkers(0)
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d differs: workers=1 %+v, workers=8 %+v", i, seq[i], par[i])
		}
	}
}

func TestRenderFaultSweep(t *testing.T) {
	out := RenderFaultSweep([]FaultCell{{Location: "MN", LossProb: 0.05, TUE: 12.5}})
	for _, want := range []string{"MN", "5%", "Retransmits"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
