package core

import (
	"strings"
	"testing"
)

func TestReferenceBeatsEveryService(t *testing.T) {
	cells := ReferenceComparison()
	if len(cells) != 7 {
		t.Fatalf("workloads = %d", len(cells))
	}
	for _, c := range cells {
		// The reference design should never be worse than the best
		// commercial service by more than a small margin, and should
		// beat the worst by a wide one.
		if c.Reference > c.Best*1.25 {
			t.Errorf("%s: reference TUE %.2f worse than best service %.2f (%s)",
				c.Workload, c.Reference, c.Best, c.BestName)
		}
		if c.Worst < c.Reference {
			t.Errorf("%s: worst service (%s, %.2f) beat the reference (%.2f)?",
				c.Workload, c.WorstName, c.Worst, c.Reference)
		}
	}
	// Specific headline numbers.
	byName := map[string]ReferenceCell{}
	for _, c := range cells {
		byName[c.Workload] = c
	}
	if c := byName["append 8 KB/8 s → 1 MB"]; c.Reference > 2 {
		t.Errorf("reference appending TUE = %.2f, want ≈ 1 (ASD)", c.Reference)
	}
	if c := byName["100 × 1 KB batch"]; c.Reference > 2 {
		t.Errorf("reference batch TUE = %.2f, want ≈ 1 (BDS)", c.Reference)
	}
	if c := byName["re-upload duplicate 1 MB"]; c.Reference > 0.05 {
		t.Errorf("reference duplicate TUE = %.3f, want ≈ 0 (dedup)", c.Reference)
	}
	if c := byName["create 1 MB text file"]; c.Reference > 0.75 {
		t.Errorf("reference text TUE = %.2f, want < 0.75 (compression)", c.Reference)
	}
}

func TestReferenceASDBound(t *testing.T) {
	if worst := ReferenceASDBound([]float64{1, 4, 9, 16}); worst > 2.5 {
		t.Fatalf("reference worst-case appending TUE = %.2f, want ≈ 1 at every cadence", worst)
	}
}

func TestRenderReference(t *testing.T) {
	s := RenderReference(ReferenceComparison())
	if !strings.Contains(s, "Reference") || !strings.Contains(s, "Workload") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}
