package core

import (
	"fmt"
	"math"
	"time"

	"cloudsync/internal/metrics"
	"cloudsync/internal/netem"
	"cloudsync/internal/parallel"
	"cloudsync/internal/wire"
)

// ReliabilityCell is one row of the upload-reliability ablation.
type ReliabilityCell struct {
	Strategy string
	// MTBF is the mean time between connection failures.
	MTBF time.Duration
	// Traffic is the total wire volume spent completing the upload,
	// including wasted partial attempts; Attempts counts connections
	// used; Duration is the completion time.
	Traffic  int64
	Attempts int
	Duration time.Duration
}

// xorshift is a tiny deterministic PRNG for failure arrival sampling
// (math/rand would also be deterministic, but this keeps the draw
// sequence frozen independent of Go releases).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// expSample draws an exponential duration with the given mean.
func (x *xorshift) expSample(mean time.Duration) time.Duration {
	// Inverse CDF on a 53-bit uniform; clamp away from 0.
	u := float64(x.next()>>11)/float64(1<<53) + 1e-12
	d := -float64(mean) * ln(u)
	return time.Duration(d)
}

// ln aliases math.Log so the inverse-CDF sampling above reads clearly.
func ln(x float64) float64 { return math.Log(x) }

// ReliabilityAblation quantifies the cost of non-resumable uploads on
// flaky links — the failure mode behind the paper's warnings about
// mobile/weak-network cloud storage use. A fileSize upload runs over
// the link; the connection dies with exponential inter-failure times
// of the given mean. The restart strategy re-sends from byte zero
// after every failure (web-style single-PUT uploads); the resumable
// strategy (chunked upload, Dropbox-style 4 MB pieces) loses at most
// the in-flight chunk.
func ReliabilityAblation(fileSize int64, link netem.Link, chunk int64, mtbfs []time.Duration) []ReliabilityCell {
	if fileSize <= 0 || chunk <= 0 {
		panic(fmt.Sprintf("core: ReliabilityAblation(%d, %d)", fileSize, chunk))
	}
	params := wire.DefaultParams()
	wireBytes := func(app int64) int64 {
		w, ack, _ := params.FrameSize(int(app))
		return int64(w + ack)
	}
	handshake := int64(6000) // TCP+TLS establishment, both directions
	handshakeTime := time.Duration(wire.HandshakeRTTs) * link.RTT

	type task struct {
		mtbf     time.Duration
		strategy string
	}
	var tasks []task
	for _, mtbf := range mtbfs {
		for _, strategy := range []string{"restart from zero", "resumable chunks"} {
			tasks = append(tasks, task{mtbf: mtbf, strategy: strategy})
		}
	}
	// Every cell seeds its own PRNG from its MTBF, so the cells are
	// fully independent and run on the worker pool.
	return parallel.Map(tasks, func(_ int, t task) ReliabilityCell {
		rng := xorshift(0xC10D + uint64(t.mtbf))
		var traffic int64
		var elapsed time.Duration
		attempts := 0
		var committed int64 // bytes durably uploaded

		for committed < fileSize && attempts < 10_000 {
			attempts++
			traffic += handshake
			elapsed += handshakeTime
			ttf := rng.expSample(t.mtbf)

			if t.strategy == "restart from zero" {
				committed = 0
			}
			remaining := fileSize - committed
			sendTime := link.UpTime(int(wireBytes(remaining)))
			if ttf >= sendTime {
				// Attempt completes.
				traffic += wireBytes(remaining)
				elapsed += sendTime
				committed = fileSize
				continue
			}
			// Failure mid-transfer.
			sentApp := int64(float64(remaining) * float64(ttf) / float64(sendTime))
			traffic += wireBytes(sentApp)
			elapsed += ttf
			if t.strategy == "resumable chunks" {
				// Whole chunks that finished before the failure are
				// durable.
				committed += (sentApp / chunk) * chunk
			}
		}
		return ReliabilityCell{
			Strategy: t.strategy, MTBF: t.mtbf,
			Traffic: traffic, Attempts: attempts, Duration: elapsed,
		}
	})
}

// RenderReliability formats the ablation.
func RenderReliability(cells []ReliabilityCell, fileSize int64) string {
	tb := metrics.Table{Header: []string{"MTBF", "Strategy", "Traffic", "TUE", "Attempts", "Time"}}
	for _, c := range cells {
		tb.AddRow(c.MTBF.String(), c.Strategy,
			metrics.HumanBytes(c.Traffic),
			fmtTUE(TUE(c.Traffic, fileSize)),
			fmt.Sprintf("%d", c.Attempts),
			c.Duration.Round(time.Second).String())
	}
	return fmt.Sprintf("Upload reliability ablation: %s file on a flaky link\n%s",
		metrics.HumanBytes(fileSize), tb.String())
}
