package core

import (
	"fmt"

	"cloudsync/internal/chunker"
	"cloudsync/internal/content"
	"cloudsync/internal/dedup"
	"cloudsync/internal/parallel"
	"cloudsync/internal/store"
	"cloudsync/internal/trace"
)

// MidLayerResult is one row of the § 4.3 mid-layer ablation: what a
// fixed create-modify-read workload costs the provider on each storage
// design.
type MidLayerResult struct {
	Layer string
	store.Stats
}

// MidLayerAblation runs the same workload — create a file, apply many
// small modifications, read it back — through the three REST mid-layer
// designs and reports the store-internal cost of each. It quantifies
// the paper's observation that enabling IDS on a full-file RESTful
// store (the GET+PUT+DELETE transform) trades client traffic for
// provider-internal traffic.
func MidLayerAblation(fileSize int64, modifications int) []MidLayerResult {
	if fileSize <= 0 || fileSize > content.MaterializeLimit {
		panic(fmt.Sprintf("core: mid-layer ablation size %d out of range", fileSize))
	}
	layers := []func(*store.REST) store.MidLayer{
		func(r *store.REST) store.MidLayer { return &store.FullFileLayer{Store: r} },
		func(r *store.REST) store.MidLayer { return &store.TransformLayer{Store: r} },
		func(r *store.REST) store.MidLayer {
			return &store.ChunkObjectLayer{Store: r, ChunkSize: 64 << 10}
		},
	}
	// One shared seed: all three layers process the identical workload.
	seed := nextSeed()
	return parallel.Map(layers, func(_ int, mk func(*store.REST) store.MidLayer) MidLayerResult {
		rest := store.NewREST()
		layer := mk(rest)
		blob := content.Random(fileSize, seed)
		if _, err := layer.Create("doc", blob); err != nil {
			panic(err)
		}
		data := append([]byte(nil), blob.Bytes()...)
		step := fileSize / int64(modifications+1)
		for i := 0; i < modifications; i++ {
			off := int64(i+1) * step
			data[off] ^= 0xFF
			mod := content.FromBytes(append([]byte(nil), data...))
			if _, err := layer.Modify("doc", mod, []chunker.Range{{Off: off, Len: 1}}); err != nil {
				panic(err)
			}
		}
		if _, _, err := layer.Read("doc"); err != nil {
			panic(err)
		}
		return MidLayerResult{Layer: layer.Name(), Stats: rest.Stats()}
	})
}

// AblationCell is one row of the § 5.2 compression × deduplication
// ablation.
type AblationCell struct {
	Compression bool
	Dedup       dedup.Granularity
	// Traffic is the upload volume the combination needs for the
	// workload; DecompressBytes is the server-side decompression work
	// block-level dedup forces when uploads arrive compressed (the
	// "technically challenging" conflict the paper describes).
	Traffic         int64
	DecompressBytes int64
}

// metaPerSkip approximates the control traffic of a fully deduplicated
// upload.
const metaPerSkip = 200

// CompressDedupAblation replays a trace's uploads under every
// combination of compression (off/on) and deduplication granularity
// (none / full-file / block at blockSize) and accounts both the
// network traffic and the server-side decompression volume. The
// paper's conclusion falls out of the numbers: full-file dedup plus
// compression captures nearly all of block-level dedup's savings with
// zero decompression work.
func CompressDedupAblation(recs []trace.Record, blockSize int) []AblationCell {
	if blockSize <= 0 {
		panic("core: CompressDedupAblation requires a block size")
	}
	type combo struct {
		compression bool
		gran        dedup.Granularity
	}
	var combos []combo
	for _, compression := range []bool{false, true} {
		for _, gran := range []dedup.Granularity{dedup.None, dedup.FullFile, dedup.Block} {
			combos = append(combos, combo{compression: compression, gran: gran})
		}
	}
	// Each combination keeps its own seen-sets and only reads the trace
	// records (BlockHash/FullHash are pure), so the six cells run on the
	// worker pool.
	return parallel.Map(combos, func(_ int, c combo) AblationCell {
		cell := AblationCell{Compression: c.compression, Dedup: c.gran}
		seenFiles := make(map[dedup.Fingerprint]struct{})
		seenBlocks := make(map[dedup.Fingerprint]struct{})
		for _, r := range recs {
			wire := r.OriginalSize
			if c.compression {
				wire = r.CompressedSize
			}
			switch c.gran {
			case dedup.None:
				cell.Traffic += wire
			case dedup.FullFile:
				// Full-file dedup fingerprints the (possibly
				// compressed) upload as-is: no decompression ever.
				fp := r.FullHash()
				if _, dup := seenFiles[fp]; dup {
					cell.Traffic += metaPerSkip
					continue
				}
				seenFiles[fp] = struct{}{}
				cell.Traffic += wire
			case dedup.Block:
				// Block dedup must fingerprint raw content blocks;
				// a compressed upload has to be decompressed first.
				n := r.NumBlocks(blockSize)
				var missing int64
				for idx := int64(0); idx < n; idx++ {
					fp := r.BlockHash(blockSize, idx)
					if _, dup := seenBlocks[fp]; !dup {
						seenBlocks[fp] = struct{}{}
						missing++
					}
				}
				if n > 0 {
					cell.Traffic += wire * missing / n
				}
				if missing == 0 {
					cell.Traffic += metaPerSkip
				}
				if c.compression {
					cell.DecompressBytes += r.OriginalSize
				}
			}
		}
		return cell
	})
}

// Fig2Points are the byte values at which the Fig. 2 CDFs are
// reported.
var Fig2Points = []float64{
	100, 1 << 10, 10 << 10, 100 << 10, 1 << 20,
	10 << 20, 100 << 20, 1 << 30, 2 << 30,
}

// Fig2 evaluates the trace's original- and compressed-size CDFs at the
// standard points.
func Fig2(recs []trace.Record) (points []float64, orig, comp []float64) {
	o, c := trace.SizeCDF(recs, Fig2Points)
	return Fig2Points, o, c
}
