// Package core is the paper's primary contribution as a library: the
// TUE (Traffic Usage Efficiency) metric, and the experiment harness
// that reproduces every table and figure of the evaluation —
// Experiments 1 through 7′, Algorithm 1, the trace analyses, the ASD
// evaluation, and the design-choice ablations. Each experiment returns
// structured results; render.go turns them into the paper's tables.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"cloudsync/internal/client"
	"cloudsync/internal/content"
	"cloudsync/internal/obs"
	"cloudsync/internal/obs/ledger"
	"cloudsync/internal/service"
)

// tracer is the process-wide tracer the experiment runners record
// per-cell spans on. Atomic because experiment grids run cells on a
// worker pool.
var tracer atomic.Pointer[obs.Tracer]

// SetTracer installs (or, with nil, removes) the tracer that receives
// one "core.cell" span per simulated experiment cell, timed on the wall
// clock — the measurement tuebench -trace exports. Tracing never
// affects experiment results; the tables stay byte-identical.
func SetTracer(tr *obs.Tracer) { tracer.Store(tr) }

// globalLedger is the process-wide traffic-attribution ledger every
// experiment setup's capture charges into, mirroring the tracer hook:
// atomic because grids run on the worker pool, nil (the default) a
// strict no-op.
var globalLedger atomic.Pointer[ledger.Ledger]

// SetLedger installs (or, with nil, removes) the ledger that receives
// per-cause byte attribution from every simulated experiment. Like
// tracing, attribution is passive: the experiment tables stay
// byte-identical whether or not a ledger is attached (the determinism
// test asserts this).
func SetLedger(l *ledger.Ledger) { globalLedger.Store(l) }

// newSetup is the experiments' only constructor for simulated stacks:
// service.NewSetup plus the process-wide attribution hook. Every
// experiment cell must build its setup here so that SetLedger observes
// the whole harness.
func newSetup(n service.Name, a client.AccessMethod, opts service.Options) *service.Setup {
	s := service.NewSetup(n, a, opts)
	s.Capture.SetLedger(globalLedger.Load())
	return s
}

// newReferenceSetup mirrors newSetup for the reference-design stack.
func newReferenceSetup(opts service.Options) *service.Setup {
	s := service.NewReferenceSetup(opts)
	s.Capture.SetLedger(globalLedger.Load())
	return s
}

// TUE is the paper's Eq. (1): total data sync traffic divided by the
// data update size. A TUE near 1 means the sync mechanism moved about
// as many bytes as the user changed; large values are the traffic
// overuse the paper hunts.
func TUE(syncTraffic, dataUpdateSize int64) float64 {
	if dataUpdateSize <= 0 {
		panic(fmt.Sprintf("core: TUE with data update size %d", dataUpdateSize))
	}
	if syncTraffic < 0 {
		panic(fmt.Sprintf("core: TUE with negative traffic %d", syncTraffic))
	}
	return float64(syncTraffic) / float64(dataUpdateSize)
}

// PaperSizes are Experiment 1/3's file sizes: 1 B to 1 GB in decades.
var PaperSizes = []int64{1, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20, 100 << 20, 1 << 30}

// TableSizes are the four sizes Table 6 prints.
var TableSizes = []int64{1, 1 << 10, 1 << 20, 10 << 20}

// QuickSizes is a reduced sweep for fast runs.
var QuickSizes = []int64{1, 1 << 10, 1 << 20}

// Cell is one measurement of a (service, access method, parameter)
// combination.
type Cell struct {
	Service service.Name
	Access  client.AccessMethod
	// Param is the experiment's swept parameter (file size in bytes,
	// append period in seconds, bandwidth, latency — see each
	// experiment).
	Param float64
	// Up, Down and Traffic are wire bytes (Traffic = Up + Down).
	Up, Down, Traffic int64
	// TUE is Traffic over the experiment's data update size.
	TUE float64
}

// runOp builds a fresh setup, performs op, runs the simulation to
// quiescence, and reports the traffic it generated.
func runOp(n service.Name, a client.AccessMethod, opts service.Options, op func(*service.Setup)) (up, down int64) {
	sp := tracer.Load().Start("core.cell",
		obs.String("service", n.String()), obs.String("access", a.String()))
	s := newSetup(n, a, opts)
	mark := s.Capture.Mark()
	op(s)
	s.Clock.Run()
	u, d, _ := s.Capture.Since(mark)
	sp.Set("up", u)
	sp.Set("down", d)
	sp.End()
	return u, d
}

// creationSeed gives every synthetic file in an experiment distinct,
// reproducible content. The counter is atomic so stray concurrent use
// is race-free, but parallel experiment cells must NOT draw from it at
// run time — the draw order would depend on scheduling. Instead, each
// experiment reserves every seed it needs while it is still building
// its task list (sequentially), either as explicit values or as a
// seedSeq handed to the cell; the pool then only ever sees fully
// pre-seeded tasks. That is the determinism contract that makes
// workers=N byte-identical to workers=1.
var creationSeed atomic.Int64

func init() { creationSeed.Store(10_000) }

func nextSeed() int64 {
	return creationSeed.Add(1)
}

// ResetContentSeeds rewinds the global content-seed counter to its
// process-start value. A fresh tuebench process is deterministic
// because every run starts from this state; the golden-table
// regression test and the determinism tests call this so repeated
// in-process runs reproduce the shipped tables byte-for-byte.
func ResetContentSeeds() { creationSeed.Store(10_000) }

// seedSeq is a pre-reserved run of seeds for one experiment cell: the
// cell draws from its private sequence in its own deterministic order,
// no matter which worker runs it or when.
type seedSeq struct {
	next, end int64
}

// reserveSeeds claims the next n seeds from the global counter.
func reserveSeeds(n int64) *seedSeq {
	if n <= 0 {
		panic(fmt.Sprintf("core: reserveSeeds(%d)", n))
	}
	end := creationSeed.Add(n)
	return &seedSeq{next: end - n + 1, end: end}
}

// reserveFrom carves the next n seeds out of an existing reservation
// as their own sequence — for handing a sub-task its private run of
// seeds without touching the global counter.
func reserveFrom(q *seedSeq, n int64) *seedSeq {
	if n <= 0 {
		panic(fmt.Sprintf("core: reserveFrom(%d)", n))
	}
	start := q.next
	if start+n-1 > q.end {
		panic("core: seed reservation exhausted")
	}
	q.next += n
	return &seedSeq{next: start, end: start + n - 1}
}

// Next yields the sequence's next seed; exhausting the reservation is a
// bug in the reserving experiment's arithmetic.
func (q *seedSeq) Next() int64 {
	if q.next > q.end {
		panic("core: seed reservation exhausted")
	}
	v := q.next
	q.next++
	return v
}

// appendWorkload drives the paper's "X KB / X sec" appending
// experiment on an existing setup: starting from an empty file, append
// X KB every X seconds until total bytes accumulate, then drain. It
// returns the sync traffic the appends caused. seed fixes the file's
// content identity; parallel cells pass a pre-reserved seed.
func appendWorkload(s *service.Setup, x float64, total, seed int64) (traffic int64) {
	const name = "frequent.doc"
	if err := s.FS.Create(name, content.Random(0, seed)); err != nil {
		panic(fmt.Sprintf("core: append workload: %v", err))
	}
	s.Clock.Run()
	mark := s.Capture.Mark()
	step := int64(x * 1024)
	if step <= 0 {
		panic(fmt.Sprintf("core: append workload with X = %v", x))
	}
	period := time.Duration(x * float64(time.Second))
	var scheduled int64
	base := s.Clock.Now()
	for i := int64(1); scheduled < total; i++ {
		n := step
		if scheduled+n > total {
			n = total - scheduled
		}
		scheduled += n
		grow := n
		s.Clock.Post(base+time.Duration(i)*period, func() {
			if err := s.FS.Append(name, grow); err != nil {
				panic(fmt.Sprintf("core: append: %v", err))
			}
		})
	}
	s.Clock.Run()
	up, down, _ := s.Capture.Since(mark)
	return up + down
}
