package core

import (
	"strings"
	"testing"
	"time"

	"cloudsync/internal/netem"
)

func TestReliabilityAblation(t *testing.T) {
	const fileSize = 64 << 20
	link := netem.Beijing() // 1.6 Mbps up: a 64 MB upload takes ~6 min
	mtbfs := []time.Duration{time.Minute, 10 * time.Minute}
	cells := ReliabilityAblation(fileSize, link, 4<<20, mtbfs)
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	byKey := map[string]ReliabilityCell{}
	for _, c := range cells {
		byKey[c.Strategy+c.MTBF.String()] = c
	}
	restartBad := byKey["restart from zero"+time.Minute.String()]
	resumeBad := byKey["resumable chunks"+time.Minute.String()]
	restartOK := byKey["restart from zero"+(10*time.Minute).String()]

	// On a link that fails every minute, a restart upload of a
	// six-minute file wastes enormously; resumable uploads stay near
	// TUE 1.
	if restartBad.Traffic < 3*fileSize {
		t.Errorf("restart traffic = %d, want ≫ file size", restartBad.Traffic)
	}
	if resumeBad.Traffic > fileSize*2 {
		t.Errorf("resumable traffic = %d, want ≈ file size", resumeBad.Traffic)
	}
	if resumeBad.Traffic >= restartBad.Traffic/2 {
		t.Errorf("resumable (%d) should be far below restart (%d)", resumeBad.Traffic, restartBad.Traffic)
	}
	// With rare failures, both approaches approach TUE ≈ 1.
	if restartOK.Traffic > fileSize*3 {
		t.Errorf("restart with rare failures = %d, want near file size", restartOK.Traffic)
	}
	// Completion must always be reached.
	for _, c := range cells {
		if c.Attempts >= 10_000 {
			t.Errorf("%s @%v never completed", c.Strategy, c.MTBF)
		}
	}
}

func TestReliabilityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad args did not panic")
		}
	}()
	ReliabilityAblation(0, netem.Minnesota(), 1, nil)
}

func TestRenderReliability(t *testing.T) {
	cells := ReliabilityAblation(8<<20, netem.Minnesota(), 4<<20,
		[]time.Duration{30 * time.Second})
	s := RenderReliability(cells, 8<<20)
	if !strings.Contains(s, "resumable") || !strings.Contains(s, "TUE") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}
