package core

import (
	"strings"
	"testing"
)

func TestChunkingAblation(t *testing.T) {
	const versions = 6
	const fileSize = 1 << 20
	const editSize = 512
	cells := ChunkingAblation(versions, fileSize, editSize)
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	byName := map[string]ChunkingCell{}
	for _, c := range cells {
		byName[c.Scheme] = c
	}
	fixed := byName["fixed 8 KB blocks"]
	cdc := byName["content-defined (2/8/32 KB)"]
	rsync := byName["rsync delta (8 KB)"]

	// An insertion shifts every later fixed block boundary: nearly the
	// whole file re-uploads per edit.
	if fixed.Uploaded < int64(versions-1)*fileSize/4 {
		t.Errorf("fixed blocking uploaded %d; insertions should devastate it", fixed.Uploaded)
	}
	// CDC keeps most chunks stable: per-edit cost is a few chunks.
	if cdc.Uploaded > fixed.Uploaded/5 {
		t.Errorf("CDC uploaded %d vs fixed %d; want ≥ 5× better", cdc.Uploaded, fixed.Uploaded)
	}
	if perEdit := cdc.Uploaded / (versions - 1); perEdit > 200<<10 {
		t.Errorf("CDC per-edit volume %d, want bounded by a few chunks", perEdit)
	}
	// rsync's rolling match realigns too: small deltas (plus signature
	// downloads).
	if rsync.Uploaded > fixed.Uploaded/5 {
		t.Errorf("rsync uploaded %d vs fixed %d; want ≥ 5× better", rsync.Uploaded, fixed.Uploaded)
	}
	// First uploads are all roughly the file size.
	for _, c := range cells {
		if c.FirstVersion < fileSize*9/10 || c.FirstVersion > fileSize*11/10 {
			t.Errorf("%s: first upload %d, want ≈ %d", c.Scheme, c.FirstVersion, fileSize)
		}
	}
}

// TestChunkingAblationNC: the normalized row rides along without
// disturbing the standard rows, still beats fixed blocking on
// insertions, and uploads the whole file once like every chunk store.
func TestChunkingAblationNC(t *testing.T) {
	const versions = 6
	const fileSize = 1 << 20
	const editSize = 512
	cells := ChunkingAblationNC(versions, fileSize, editSize)
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4 (fixed, cdc, cdc-nc, rsync)", len(cells))
	}
	byName := map[string]ChunkingCell{}
	for _, c := range cells {
		byName[c.Scheme] = c
	}
	fixed, ok := byName["fixed 8 KB blocks"]
	if !ok {
		t.Fatal("fixed row missing")
	}
	nc, ok := byName["content-defined normalized (2/8/32 KB)"]
	if !ok {
		t.Fatal("normalized row missing")
	}
	if nc.Uploaded > fixed.Uploaded/5 {
		t.Errorf("normalized CDC uploaded %d vs fixed %d; want ≥ 5× better", nc.Uploaded, fixed.Uploaded)
	}
	if nc.FirstVersion < fileSize*9/10 || nc.FirstVersion > fileSize*11/10 {
		t.Errorf("normalized first upload %d, want ≈ %d", nc.FirstVersion, fileSize)
	}
}

func TestChunkingAblationValidation(t *testing.T) {
	for _, c := range [][3]int64{{1, 1000, 10}, {3, 0, 10}, {3, 1000, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkingAblation(%v) did not panic", c)
				}
			}()
			ChunkingAblation(int(c[0]), c[1], int(c[2]))
		}()
	}
}

func TestRenderChunking(t *testing.T) {
	s := RenderChunking(ChunkingAblation(3, 256<<10, 256), 3, 256<<10, 256)
	if !strings.Contains(s, "content-defined") || !strings.Contains(s, "rsync") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}
